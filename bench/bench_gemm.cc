// GEMM microbenchmark over the shapes the CDMPP predictor actually runs:
// d_model 64, d_ff 128, feature dim 38, batch 1–256 (times a representative
// leaf count of 8 rows per sample). Reports GFLOP/s for
//   * the seed repo's naive single-threaded ikj MatMul loop (baseline),
//   * the blocked + ParallelFor kernel layer (src/nn/kernels.h),
// and emits machine-readable BENCH_gemm.json so the bench trajectory can be
// tracked across PRs.
//
//   ./build/bench/bench_gemm [--smoke]
//
// --smoke shrinks the sweep and rep counts for CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/nn/kernels.h"
#include "src/support/parallel_for.h"
#include "src/support/rng.h"
#include "src/support/table.h"

using namespace cdmpp;

namespace {

// The seed implementation of MatMul (pre-kernel-layer), kept verbatim as the
// benchmark baseline: single-threaded ikj with a zero-skip branch.
void SeedNaiveMatMul(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    float* out_row = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      out_row[j] = 0.0f;
    }
    const float* a_row = a + static_cast<size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) {
        continue;
      }
      const float* b_row = b + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) {
        out_row[j] += av * b_row[j];
      }
    }
  }
}

std::vector<float> RandomBuffer(size_t size, Rng* rng) {
  std::vector<float> v(size);
  for (float& x : v) {
    x = static_cast<float>(rng->Normal(0.0, 1.0));
  }
  return v;
}

// Best-of-`trials` GFLOP/s for `fn`, each trial running enough reps to cover
// ~`target_ms` of work so tiny shapes are not pure clock noise.
template <typename Fn>
double MeasureGflops(double flops_per_call, double target_ms, int trials, Fn&& fn) {
  // Calibrate rep count from one call.
  auto t0 = std::chrono::steady_clock::now();
  fn();
  double once = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  int reps = std::max(1, static_cast<int>(target_ms / 1e3 / std::max(once, 1e-9)));
  reps = std::min(reps, 1 << 16);

  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    auto s = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      fn();
    }
    double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - s).count();
    best = std::min(best, secs / reps);
  }
  return flops_per_call / best / 1e9;
}

struct ShapeResult {
  int batch, m, k, n;
  double gflops_naive = 0.0;
  double gflops_kernel = 0.0;
  double speedup = 0.0;
};

// Best-effort host CPU model (Linux); GFLOP/s numbers are only comparable
// across runs on the same microarchitecture, so record it in the artifact.
std::string CpuModel() {
  if (FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
      if (std::strncmp(line, "model name", 10) == 0) {
        std::fclose(f);
        const char* colon = std::strchr(line, ':');
        std::string model = colon != nullptr ? colon + 2 : line;
        while (!model.empty() && (model.back() == '\n' || model.back() == '"')) {
          model.pop_back();
        }
        return model;
      }
    }
    std::fclose(f);
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const double target_ms = smoke ? 5.0 : 40.0;
  const int trials = smoke ? 2 : 3;
  const std::vector<int> batches = smoke ? std::vector<int>{1, 64} : std::vector<int>{1, 16, 64, 256};
  constexpr int kLeaves = 8;  // representative compact-AST leaf count

  // (k, n) pairs of the predictor's forward GEMMs:
  // input proj 38->64, attention proj 64->64, FFN 64->128 and 128->64.
  const std::vector<std::pair<int, int>> kn = {{38, 64}, {64, 64}, {64, 128}, {128, 64}};

  std::printf("GEMM data-plane bench: %d threads (CDMPP_NUM_THREADS to override)%s\n\n",
              ThreadPool::Global().num_threads(), smoke ? " [smoke]" : "");

  Rng rng(13);
  std::vector<ShapeResult> results;
  TablePrinter table({"batch", "m", "k", "n", "naive GFLOP/s", "kernel GFLOP/s", "speedup"});
  for (int batch : batches) {
    for (const auto& [k, n] : kn) {
      const int m = batch * kLeaves;
      ShapeResult r;
      r.batch = batch;
      r.m = m;
      r.k = k;
      r.n = n;
      const double flops = 2.0 * m * n * k;
      auto a = RandomBuffer(static_cast<size_t>(m) * k, &rng);
      auto b = RandomBuffer(static_cast<size_t>(k) * n, &rng);
      std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);

      r.gflops_naive = MeasureGflops(flops, target_ms, trials,
                                     [&] { SeedNaiveMatMul(m, n, k, a.data(), b.data(), c.data()); });
      r.gflops_kernel = MeasureGflops(flops, target_ms, trials, [&] {
        kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, 0.0f, c.data(), n);
      });
      r.speedup = r.gflops_kernel / r.gflops_naive;
      results.push_back(r);
      table.AddRow({std::to_string(batch), std::to_string(m), std::to_string(k),
                    std::to_string(n), FormatDouble(r.gflops_naive, 2),
                    FormatDouble(r.gflops_kernel, 2), FormatDouble(r.speedup, 2) + "x"});
    }
  }
  table.Print(stdout);

  // Aggregate headline: geometric-mean speedup at the largest batch.
  double gmean = 1.0;
  int count = 0;
  for (const ShapeResult& r : results) {
    if (r.batch == batches.back()) {
      gmean *= r.speedup;
      ++count;
    }
  }
  if (count > 0) {
    gmean = std::pow(gmean, 1.0 / count);
    std::printf("\nGeomean kernel speedup over seed naive MatMul at batch %d: %.2fx\n",
                batches.back(), gmean);
  }

  // Machine-readable trajectory record.
  const char* json_path = "BENCH_gemm.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"gemm\",\n  \"threads\": %d,\n  \"smoke\": %s,\n"
                 "  \"cpu_model\": \"%s\",\n",
                 ThreadPool::Global().num_threads(), smoke ? "true" : "false",
                 CpuModel().c_str());
    std::fprintf(f, "  \"shapes\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ShapeResult& r = results[i];
      std::fprintf(f,
                   "    {\"batch\": %d, \"m\": %d, \"k\": %d, \"n\": %d, "
                   "\"gflops_naive\": %.4f, \"gflops_kernel\": %.4f, \"speedup\": %.4f}%s\n",
                   r.batch, r.m, r.k, r.n, r.gflops_naive, r.gflops_kernel, r.speedup,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"geomean_speedup_largest_batch\": %.4f\n}\n", gmean);
    std::fclose(f);
    std::printf("Wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path);
  }

  // Regression gate for CI: the kernel layer falling behind the naive seed
  // loop is a dramatic regression that should fail the job even on noisy
  // shared runners.
  if (count > 0 && gmean < 1.0) {
    std::fprintf(stderr, "FAIL: kernel geomean speedup %.2fx < 1.0x over naive baseline\n",
                 gmean);
    return 1;
  }
  return 0;
}

#include "src/support/table.h"

#include <cstdio>

#include "src/support/check.h"

namespace cdmpp {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  CDMPP_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CDMPP_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += sep;
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

bool WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  for (size_t c = 0; c < header.size(); ++c) {
    std::fprintf(f, "%s%s", header[c].c_str(), c + 1 == header.size() ? "\n" : ",");
  }
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(f, "%.9g%s", row[c], c + 1 == row.size() ? "\n" : ",");
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace cdmpp

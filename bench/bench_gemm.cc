// GEMM microbenchmark over the shapes the CDMPP predictor actually runs:
// d_model 64, d_ff 128, feature dim 38, batch 1–256 (times a representative
// leaf count of 8 rows per sample). Reports GFLOP/s for
//   * the seed repo's naive single-threaded ikj MatMul loop (baseline),
//   * the blocked + ParallelFor scalar kernels (portable fallback),
//   * the runtime-dispatched AVX2 microkernels (when the host supports them),
//   * the quantized GemmS8S8S32 kernels (GFLOP-equivalent: 2mnk / time) under
//     both ISAs — the CDMPP_PRECISION=int8 serving tier,
// and emits machine-readable BENCH_gemm.json — including which ISA the
// kernel layer dispatches to by default — so the bench trajectory can be
// tracked across PRs.
//
//   ./build/bench/bench_gemm [--smoke]
//
// --smoke shrinks the sweep and rep counts for CI. Exit status is the CI
// regression gate: nonzero when the scalar kernels fall behind the naive
// baseline, when the AVX2 kernels fall behind scalar on the
// dispatch-eligible shapes, or when the int8 kernels fall behind the 1.5x
// throughput target over the fp32 AVX2 kernels — overall and on the
// encoder-shape subset specifically (the GEMMs CDMPP_PRECISION=int8 now
// serves quantized, reported as "encoder_int8_series" in the JSON). Gates
// whose prerequisite ISA is unavailable on the host are SKIPped (printed as
// such), not failed, so scalar-only hosts and the forced-scalar CI leg stay
// green.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/nn/kernels.h"
#include "src/nn/quantize.h"
#include "src/support/cpu_features.h"
#include "src/support/parallel_for.h"
#include "src/support/rng.h"
#include "src/support/table.h"

using namespace cdmpp;

namespace {

// The seed implementation of MatMul (pre-kernel-layer), kept verbatim as the
// benchmark baseline: single-threaded ikj with a zero-skip branch.
void SeedNaiveMatMul(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    float* out_row = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      out_row[j] = 0.0f;
    }
    const float* a_row = a + static_cast<size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) {
        continue;
      }
      const float* b_row = b + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) {
        out_row[j] += av * b_row[j];
      }
    }
  }
}

std::vector<float> RandomBuffer(size_t size, Rng* rng) {
  std::vector<float> v(size);
  for (float& x : v) {
    x = static_cast<float>(rng->Normal(0.0, 1.0));
  }
  return v;
}

// Best-of-`trials` GFLOP/s for `fn`, each trial running enough reps to cover
// ~`target_ms` of work so tiny shapes are not pure clock noise.
template <typename Fn>
double MeasureGflops(double flops_per_call, double target_ms, int trials, Fn&& fn) {
  // Calibrate rep count from one call.
  auto t0 = std::chrono::steady_clock::now();
  fn();
  double once = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  int reps = std::max(1, static_cast<int>(target_ms / 1e3 / std::max(once, 1e-9)));
  reps = std::min(reps, 1 << 16);

  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    auto s = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      fn();
    }
    double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - s).count();
    best = std::min(best, secs / reps);
  }
  return flops_per_call / best / 1e9;
}

struct ShapeResult {
  int batch, m, k, n;
  bool encoder = false;  // an encoder weight-GEMM shape (attention/FFN)
  double gflops_naive = 0.0;
  double gflops_scalar = 0.0;
  double gflops_avx2 = 0.0;             // 0 when AVX2 is unavailable
  double gops_int8_scalar = 0.0;        // GFLOP-equivalent (2mnk / time)
  double gops_int8_avx2 = 0.0;          // 0 when AVX2 is unavailable
  double speedup_scalar = 0.0;          // scalar / naive
  double speedup_avx2 = 0.0;            // avx2 / scalar; 0 when unavailable
  double speedup_int8 = 0.0;            // int8 / fp32 at the dispatched ISA
};

// Best-effort host CPU model (Linux); GFLOP/s numbers are only comparable
// across runs on the same microarchitecture, so record it in the artifact.
std::string CpuModel() {
  if (FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
      if (std::strncmp(line, "model name", 10) == 0) {
        std::fclose(f);
        const char* colon = std::strchr(line, ':');
        std::string model = colon != nullptr ? colon + 2 : line;
        while (!model.empty() && (model.back() == '\n' || model.back() == '"')) {
          model.pop_back();
        }
        return model;
      }
    }
    std::fclose(f);
  }
  return "unknown";
}

// Geometric-mean of `get(r)` over the results at the largest batch size that
// satisfy `keep(r)`.
template <typename Get, typename Keep>
double GeomeanLargestBatchIf(const std::vector<ShapeResult>& results, int largest_batch,
                             Get&& get, Keep&& keep) {
  double g = 1.0;
  int count = 0;
  for (const ShapeResult& r : results) {
    if (r.batch == largest_batch && keep(r)) {
      g *= get(r);
      ++count;
    }
  }
  return count > 0 ? std::pow(g, 1.0 / count) : 0.0;
}

// Geometric-mean of `get(r)` over the results at the largest batch size.
template <typename Get>
double GeomeanLargestBatch(const std::vector<ShapeResult>& results, int largest_batch,
                           Get&& get) {
  return GeomeanLargestBatchIf(results, largest_batch, get,
                               [](const ShapeResult&) { return true; });
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const double target_ms = smoke ? 5.0 : 40.0;
  const int trials = smoke ? 2 : 3;
  const std::vector<int> batches = smoke ? std::vector<int>{1, 64} : std::vector<int>{1, 16, 64, 256};
  constexpr int kLeaves = 8;  // representative compact-AST leaf count

  // (k, n) pairs of the predictor's forward GEMMs:
  // input proj 38->64, attention proj 64->64, FFN 64->128 and 128->64. All
  // but the input projection are encoder weight GEMMs — the shapes the
  // CDMPP_PRECISION=int8 tier now serves quantized — so they are tagged and
  // additionally aggregated as the encoder fp32-vs-int8 series.
  const std::vector<std::pair<int, int>> kn = {{38, 64}, {64, 64}, {64, 128}, {128, 64}};
  const auto is_encoder_shape = [](int k, int n) { return !(k == 38 && n == 64); };

  const bool has_avx2 = CpuSupportsAvx2Fma();
  const KernelIsa dispatched = ActiveKernelIsa();
  std::printf(
      "GEMM data-plane bench: %d threads (CDMPP_NUM_THREADS to override), "
      "dispatch isa=%s%s (CDMPP_KERNEL_ISA to override)%s\n\n",
      ThreadPool::Global().num_threads(), KernelIsaName(dispatched),
      has_avx2 ? "" : " [avx2 unavailable]", smoke ? " [smoke]" : "");

  Rng rng(13);
  std::vector<ShapeResult> results;
  TablePrinter table({"batch", "m", "k", "n", "naive GFLOP/s", "scalar GFLOP/s",
                      "avx2 GFLOP/s", "int8 GOP/s", "scalar/naive", "avx2/scalar",
                      "int8/fp32"});
  for (int batch : batches) {
    for (const auto& [k, n] : kn) {
      const int m = batch * kLeaves;
      ShapeResult r;
      r.batch = batch;
      r.m = m;
      r.k = k;
      r.n = n;
      r.encoder = is_encoder_shape(k, n);
      const double flops = 2.0 * m * n * k;
      auto a = RandomBuffer(static_cast<size_t>(m) * k, &rng);
      auto b = RandomBuffer(static_cast<size_t>(k) * n, &rng);
      std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);

      r.gflops_naive = MeasureGflops(flops, target_ms, trials,
                                     [&] { SeedNaiveMatMul(m, n, k, a.data(), b.data(), c.data()); });
      SetKernelIsa(KernelIsa::kScalar);
      r.gflops_scalar = MeasureGflops(flops, target_ms, trials, [&] {
        kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, 0.0f, c.data(), n);
      });
      if (has_avx2) {
        SetKernelIsa(KernelIsa::kAvx2);
        r.gflops_avx2 = MeasureGflops(flops, target_ms, trials, [&] {
          kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, 0.0f, c.data(), n);
        });
      }

      // Quantized series: weights packed once (calibration time in serving),
      // activations pre-quantized outside the timed region — the timed op is
      // the GemmS8S8S32 kernel itself, the apples-to-apples GEMM comparison.
      kernels::PackedQ8Weights wq;
      QuantizePackWeights(k, n, b.data(), n, &wq);
      const int ldq = 2 * wq.k2;
      std::vector<int16_t> aq(static_cast<size_t>(m) * ldq);
      std::vector<float> a_scales(static_cast<size_t>(m));
      QuantizeActivationsPerRow(m, k, a.data(), k, aq.data(), ldq, a_scales.data());
      std::vector<int32_t> c32(static_cast<size_t>(m) * n);
      SetKernelIsa(KernelIsa::kScalar);
      r.gops_int8_scalar = MeasureGflops(flops, target_ms, trials, [&] {
        kernels::GemmS8S8S32(m, aq.data(), ldq, wq, c32.data(), n);
      });
      if (has_avx2) {
        SetKernelIsa(KernelIsa::kAvx2);
        r.gops_int8_avx2 = MeasureGflops(flops, target_ms, trials, [&] {
          kernels::GemmS8S8S32(m, aq.data(), ldq, wq, c32.data(), n);
        });
      }
      SetKernelIsa(dispatched);
      r.speedup_scalar = r.gflops_scalar / r.gflops_naive;
      r.speedup_avx2 = has_avx2 ? r.gflops_avx2 / r.gflops_scalar : 0.0;
      r.speedup_int8 = has_avx2 ? r.gops_int8_avx2 / r.gflops_avx2
                                : r.gops_int8_scalar / r.gflops_scalar;
      results.push_back(r);
      table.AddRow({std::to_string(batch), std::to_string(m), std::to_string(k),
                    std::to_string(n), FormatDouble(r.gflops_naive, 2),
                    FormatDouble(r.gflops_scalar, 2),
                    has_avx2 ? FormatDouble(r.gflops_avx2, 2) : "-",
                    has_avx2 ? FormatDouble(r.gops_int8_avx2, 2)
                             : FormatDouble(r.gops_int8_scalar, 2),
                    FormatDouble(r.speedup_scalar, 2) + "x",
                    has_avx2 ? FormatDouble(r.speedup_avx2, 2) + "x" : "-",
                    FormatDouble(r.speedup_int8, 2) + "x"});
    }
  }
  table.Print(stdout);

  // Aggregate headlines: geometric-mean speedups at the largest batch.
  const int largest = batches.back();
  const double gmean_scalar =
      GeomeanLargestBatch(results, largest, [](const ShapeResult& r) { return r.speedup_scalar; });
  std::printf("\nGeomean scalar-kernel speedup over seed naive MatMul at batch %d: %.2fx\n",
              largest, gmean_scalar);
  double gmean_avx2 = 0.0;
  if (has_avx2) {
    gmean_avx2 = GeomeanLargestBatch(results, largest,
                                     [](const ShapeResult& r) { return r.speedup_avx2; });
    // Single-core view: batch 1 shapes sit below the kernels' parallel
    // threshold, so their avx2/scalar ratio isolates the per-core SIMD win.
    const double gmean_avx2_b1 = GeomeanLargestBatch(
        results, batches.front(), [](const ShapeResult& r) { return r.speedup_avx2; });
    std::printf("Geomean AVX2 speedup over scalar kernels: %.2fx at batch %d, "
                "%.2fx at batch %d (single-core shapes)\n",
                gmean_avx2, largest, gmean_avx2_b1, batches.front());
  }
  const double gmean_int8 = GeomeanLargestBatch(
      results, largest, [](const ShapeResult& r) { return r.speedup_int8; });
  const double gmean_int8_b1 = GeomeanLargestBatch(
      results, batches.front(), [](const ShapeResult& r) { return r.speedup_int8; });
  std::printf("Geomean int8 speedup over fp32 %s kernels: %.2fx at batch %d, "
              "%.2fx at batch %d (single-core shapes)\n",
              has_avx2 ? "avx2" : "scalar", gmean_int8, largest, gmean_int8_b1,
              batches.front());
  // Encoder-only view: the weight-GEMM shapes the int8 encoder tier serves
  // quantized (attention projections + FFN pair) at serving row counts.
  const double gmean_int8_encoder = GeomeanLargestBatchIf(
      results, largest, [](const ShapeResult& r) { return r.speedup_int8; },
      [](const ShapeResult& r) { return r.encoder; });
  std::printf("Geomean int8 speedup on encoder shapes (fp32 %s baseline): %.2fx at batch %d\n",
              has_avx2 ? "avx2" : "scalar", gmean_int8_encoder, largest);

  // Machine-readable trajectory record.
  const char* json_path = "BENCH_gemm.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"gemm\",\n  \"threads\": %d,\n  \"smoke\": %s,\n"
                 "  \"cpu_model\": \"%s\",\n  \"isa_dispatched\": \"%s\",\n"
                 "  \"avx2_supported\": %s,\n",
                 ThreadPool::Global().num_threads(), smoke ? "true" : "false",
                 CpuModel().c_str(), KernelIsaName(dispatched), has_avx2 ? "true" : "false");
    // "gflops_kernel" / "speedup" / "geomean_speedup_largest_batch" keep the
    // pre-dispatch schema alive for cross-PR trajectory diffs: they are the
    // numbers for whatever ISA the kernel layer dispatches to by default,
    // exactly what "the kernel layer" meant before the ISA split.
    const auto dispatched_gflops = [&](const ShapeResult& r) {
      return dispatched == KernelIsa::kAvx2 ? r.gflops_avx2 : r.gflops_scalar;
    };
    std::fprintf(f, "  \"shapes\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ShapeResult& r = results[i];
      const double gops_int8 =
          dispatched == KernelIsa::kAvx2 ? r.gops_int8_avx2 : r.gops_int8_scalar;
      std::fprintf(f,
                   "    {\"batch\": %d, \"m\": %d, \"k\": %d, \"n\": %d, "
                   "\"encoder\": %s, "
                   "\"gflops_naive\": %.4f, \"gflops_scalar\": %.4f, \"gflops_avx2\": %.4f, "
                   "\"gops_int8_scalar\": %.4f, \"gops_int8_avx2\": %.4f, "
                   "\"gops_int8\": %.4f, "
                   "\"gflops_kernel\": %.4f, \"speedup\": %.4f, "
                   "\"speedup_scalar_vs_naive\": %.4f, \"speedup_avx2_vs_scalar\": %.4f, "
                   "\"speedup_int8_vs_fp32\": %.4f}%s\n",
                   r.batch, r.m, r.k, r.n, r.encoder ? "true" : "false",
                   r.gflops_naive, r.gflops_scalar, r.gflops_avx2,
                   r.gops_int8_scalar, r.gops_int8_avx2, gops_int8,
                   dispatched_gflops(r), dispatched_gflops(r) / r.gflops_naive,
                   r.speedup_scalar, r.speedup_avx2, r.speedup_int8,
                   i + 1 < results.size() ? "," : "");
    }
    // Encoder fp32-vs-int8 series at serving row counts: the shapes the int8
    // encoder tier runs quantized, one row per (batch, shape).
    std::fprintf(f, "  ],\n  \"encoder_int8_series\": [\n");
    {
      std::vector<const ShapeResult*> enc;
      for (const ShapeResult& r : results) {
        if (r.encoder) {
          enc.push_back(&r);
        }
      }
      for (size_t i = 0; i < enc.size(); ++i) {
        const ShapeResult& r = *enc[i];
        const double gops_int8 =
            dispatched == KernelIsa::kAvx2 ? r.gops_int8_avx2 : r.gops_int8_scalar;
        std::fprintf(f,
                     "    {\"batch\": %d, \"m\": %d, \"k\": %d, \"n\": %d, "
                     "\"gflops_fp32\": %.4f, \"gops_int8\": %.4f, "
                     "\"speedup_int8_vs_fp32\": %.4f}%s\n",
                     r.batch, r.m, r.k, r.n, dispatched_gflops(r), gops_int8, r.speedup_int8,
                     i + 1 < enc.size() ? "," : "");
      }
    }
    const double gmean_dispatched = GeomeanLargestBatch(
        results, largest,
        [&](const ShapeResult& r) { return dispatched_gflops(r) / r.gflops_naive; });
    std::fprintf(f,
                 "  ],\n  \"geomean_speedup_largest_batch\": %.4f,\n"
                 "  \"geomean_scalar_speedup_largest_batch\": %.4f,\n"
                 "  \"geomean_avx2_speedup_largest_batch\": %.4f,\n"
                 "  \"geomean_int8_speedup_largest_batch\": %.4f,\n"
                 "  \"geomean_int8_encoder_speedup_largest_batch\": %.4f\n}\n",
                 gmean_dispatched, gmean_scalar, gmean_avx2, gmean_int8, gmean_int8_encoder);
    std::fclose(f);
    std::printf("Wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path);
  }

  // Regression gates for CI: the kernel layer falling behind the naive seed
  // loop, the AVX2 microkernels falling behind the scalar kernels, or the
  // int8 kernels falling behind their 1.5x target over fp32 AVX2 are
  // dramatic regressions that should fail the job even on noisy shared
  // runners. Gates whose prerequisite ISA the host lacks are reported as
  // SKIP, not FAIL, so the scalar-only matrix leg (and non-x86 hosts) stay
  // green on the gates that can actually run there.
  int rc = 0;
  if (gmean_scalar > 0.0 && gmean_scalar < 1.0) {
    std::fprintf(stderr, "FAIL: scalar-kernel geomean speedup %.2fx < 1.0x over naive baseline\n",
                 gmean_scalar);
    rc = 1;
  }
  if (!has_avx2) {
    std::fprintf(stderr,
                 "SKIP: avx2>=scalar gate (dispatch reports AVX2+FMA unavailable on this "
                 "host/build)\n");
    std::fprintf(stderr,
                 "SKIP: int8>=1.5x-fp32-avx2 gate (no AVX2; int8-scalar measured %.2fx of "
                 "fp32 scalar)\n",
                 gmean_int8);
    std::fprintf(stderr,
                 "SKIP: encoder-int8>=1.5x gate (no AVX2; encoder int8-scalar measured "
                 "%.2fx of fp32 scalar)\n",
                 gmean_int8_encoder);
  } else {
    if (gmean_avx2 < 1.0) {
      std::fprintf(stderr, "FAIL: AVX2 geomean speedup %.2fx < 1.0x over scalar kernels\n",
                   gmean_avx2);
      rc = 1;
    }
    if (gmean_int8 < 1.5) {
      std::fprintf(stderr,
                   "FAIL: int8 geomean speedup %.2fx < 1.5x over fp32 AVX2 kernels\n",
                   gmean_int8);
      rc = 1;
    }
    if (gmean_int8_encoder < 1.5) {
      std::fprintf(stderr,
                   "FAIL: encoder-shape int8 geomean speedup %.2fx < 1.5x over fp32 AVX2 "
                   "kernels\n",
                   gmean_int8_encoder);
      rc = 1;
    }
  }
  return rc;
}

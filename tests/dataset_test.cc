#include <set>

#include <gtest/gtest.h>

#include "src/dataset/batching.h"
#include "src/dataset/dataset.h"
#include "src/dataset/model_zoo.h"

namespace cdmpp {
namespace {

DatasetOptions SmallOptions() {
  DatasetOptions opts;
  opts.device_ids = {0, 3};  // T4, V100
  opts.schedules_per_task = 3;
  opts.max_networks = 12;
  opts.seed = 101;
  return opts;
}

TEST(ModelZooTest, Has120Networks) {
  auto zoo = BuildModelZoo();
  EXPECT_EQ(zoo.size(), 120u);
  std::set<std::string> names;
  for (const NetworkDef& net : zoo) {
    EXPECT_FALSE(net.ops.empty()) << net.name;
    names.insert(net.name);
  }
  EXPECT_EQ(names.size(), zoo.size()) << "duplicate network names";
}

TEST(ModelZooTest, AllTasksValidAndDepsAcyclicByConstruction) {
  for (const NetworkDef& net : BuildModelZoo()) {
    for (size_t i = 0; i < net.ops.size(); ++i) {
      ValidateTask(net.ops[i].task);
      for (int d : net.ops[i].deps) {
        EXPECT_GE(d, 0);
        EXPECT_LT(d, static_cast<int>(i)) << net.name;  // deps precede the op
      }
    }
  }
}

TEST(ModelZooTest, HoldoutNetworksExist) {
  auto zoo = BuildModelZoo();
  for (const std::string& name : HoldoutNetworkNames()) {
    bool found = false;
    for (const NetworkDef& net : zoo) {
      found |= net.name == name;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(ModelZooTest, FamiliesHaveDistinctOpMixes) {
  // Cross-model distribution shift: conv fraction differs strongly between a
  // CNN and a transformer.
  NetworkDef resnet = BuildNetworkByName("resnet50_bs1_r224");
  NetworkDef bert = BuildNetworkByName("bert_base_bs1_s128");
  auto conv_fraction = [](const NetworkDef& net) {
    int convs = 0;
    for (const NetworkOp& op : net.ops) {
      convs += op.task.kind == OpKind::kConv2d ? 1 : 0;
    }
    return static_cast<double>(convs) / static_cast<double>(net.ops.size());
  };
  EXPECT_GT(conv_fraction(resnet), 0.4);
  EXPECT_LT(conv_fraction(bert), 0.05);
}

TEST(DatasetTest, BuildProducesConsistentCounts) {
  Dataset ds = BuildDataset(SmallOptions());
  EXPECT_FALSE(ds.tasks.empty());
  EXPECT_EQ(ds.programs.size(), ds.tasks.size() * 3);
  EXPECT_EQ(ds.samples.size(), ds.programs.size() * 2);  // two devices
  for (const Sample& s : ds.samples) {
    EXPECT_GT(s.latency_seconds, 0.0);
    EXPECT_TRUE(s.device_id == 0 || s.device_id == 3);
  }
}

TEST(DatasetTest, TasksAreDeduplicatedAcrossNetworks) {
  Dataset ds = BuildDataset(SmallOptions());
  size_t total_ops = 0;
  for (const NetworkDef& net : ds.networks) {
    total_ops += net.ops.size();
  }
  EXPECT_LT(ds.tasks.size(), total_ops);  // sharing must occur
  // Each op's task id resolves into the task table.
  for (const NetworkDef& net : ds.networks) {
    for (const NetworkOp& op : net.ops) {
      ASSERT_GE(op.task.id, 0);
      ASSERT_LT(op.task.id, static_cast<int>(ds.tasks.size()));
      EXPECT_EQ(ds.tasks[static_cast<size_t>(op.task.id)].task.kind, op.task.kind);
    }
  }
}

TEST(DatasetTest, DeterministicAcrossBuilds) {
  Dataset a = BuildDataset(SmallOptions());
  Dataset b = BuildDataset(SmallOptions());
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); i += 17) {
    EXPECT_DOUBLE_EQ(a.samples[i].latency_seconds, b.samples[i].latency_seconds);
  }
}

TEST(DatasetTest, SplitRespectsRatiosAndHoldout) {
  Dataset ds = BuildDataset(SmallOptions());
  int holdout_model = ds.ModelIdByName("resnet50_bs1_r224");
  ASSERT_GE(holdout_model, 0);
  Rng rng(5);
  SplitIndices split = SplitDataset(ds, {0}, {holdout_model}, &rng);
  size_t total = split.train.size() + split.valid.size() + split.test.size();
  EXPECT_GT(split.holdout.size(), 0u);

  // Ratios approximately 8:1:1.
  EXPECT_NEAR(static_cast<double>(split.train.size()) / total, 0.8, 0.02);

  // No overlap between sets.
  std::set<int> seen;
  for (const auto* part : {&split.train, &split.valid, &split.test, &split.holdout}) {
    for (int idx : *part) {
      EXPECT_TRUE(seen.insert(idx).second);
      EXPECT_EQ(ds.samples[static_cast<size_t>(idx)].device_id, 0);
    }
  }
  // Nothing in train/valid/test touches a holdout-model task.
  for (const auto* part : {&split.train, &split.valid, &split.test}) {
    for (int idx : *part) {
      EXPECT_FALSE(
          ds.ProgramInModels(ds.samples[static_cast<size_t>(idx)].program_index,
                             {holdout_model}));
    }
  }
}

TEST(DatasetTest, SamplesOfModelOnDevice) {
  Dataset ds = BuildDataset(SmallOptions());
  int model = ds.networks.front().id;
  std::vector<int> idxs = SamplesOfModelOnDevice(ds, model, 3);
  EXPECT_FALSE(idxs.empty());
  for (int idx : idxs) {
    EXPECT_EQ(ds.samples[static_cast<size_t>(idx)].device_id, 3);
    EXPECT_TRUE(ds.ProgramInModels(ds.samples[static_cast<size_t>(idx)].program_index, {model}));
  }
}

TEST(BatchingTest, BucketsPartitionSamples) {
  Dataset ds = BuildDataset(SmallOptions());
  std::vector<int> all = SamplesOnDevice(ds, 0);
  auto buckets = GroupByLeafCount(ds, all);
  size_t total = 0;
  for (const auto& [leaves, idxs] : buckets) {
    EXPECT_GT(leaves, 0);
    total += idxs.size();
    for (int idx : idxs) {
      const Sample& s = ds.samples[static_cast<size_t>(idx)];
      EXPECT_EQ(ds.programs[static_cast<size_t>(s.program_index)].ast.num_leaves, leaves);
    }
  }
  EXPECT_EQ(total, all.size());
}

TEST(BatchingTest, BatchesCoverEveryIndexOnce) {
  Dataset ds = BuildDataset(SmallOptions());
  std::vector<int> all = SamplesOnDevice(ds, 0);
  Rng rng(6);
  auto batches = MakeBatches(GroupByLeafCount(ds, all), 32, &rng);
  std::set<int> seen;
  for (const Batch& b : batches) {
    EXPECT_LE(b.sample_indices.size(), 32u);
    for (int idx : b.sample_indices) {
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  EXPECT_EQ(seen.size(), all.size());
}

TEST(BatchingTest, BatchesAreLeafCountUniform) {
  Dataset ds = BuildDataset(SmallOptions());
  std::vector<int> all = SamplesOnDevice(ds, 0);
  Rng rng(8);
  auto batches = MakeBatches(GroupByLeafCount(ds, all), 24, &rng);
  ASSERT_FALSE(batches.empty());
  for (const Batch& b : batches) {
    ASSERT_FALSE(b.sample_indices.empty());
    for (int idx : b.sample_indices) {
      const Sample& s = ds.samples[static_cast<size_t>(idx)];
      EXPECT_EQ(ds.programs[static_cast<size_t>(s.program_index)].ast.num_leaves, b.seq_len);
    }
  }
}

TEST(BatchingTest, MakeBatchesDeterministicForFixedSeed) {
  Dataset ds = BuildDataset(SmallOptions());
  std::vector<int> all = SamplesOnDevice(ds, 0);
  auto buckets = GroupByLeafCount(ds, all);
  Rng rng_a(99);
  Rng rng_b(99);
  auto batches_a = MakeBatches(buckets, 24, &rng_a);
  auto batches_b = MakeBatches(buckets, 24, &rng_b);
  ASSERT_EQ(batches_a.size(), batches_b.size());
  for (size_t i = 0; i < batches_a.size(); ++i) {
    EXPECT_EQ(batches_a[i].seq_len, batches_b[i].seq_len);
    EXPECT_EQ(batches_a[i].sample_indices, batches_b[i].sample_indices);
  }
  // A different seed shuffles differently (overwhelmingly likely with this
  // many samples); guards against the Rng being ignored.
  Rng rng_c(100);
  auto batches_c = MakeBatches(buckets, 24, &rng_c);
  bool any_difference = batches_a.size() != batches_c.size();
  for (size_t i = 0; !any_difference && i < batches_a.size(); ++i) {
    any_difference = batches_a[i].sample_indices != batches_c[i].sample_indices;
  }
  EXPECT_TRUE(any_difference);
}

TEST(BatchingTest, AstViewAdapterMatchesDatasetPath) {
  // The serving adapter must bucket and featurize free-standing ASTs exactly
  // as the dataset path does for the same programs.
  Dataset ds = BuildDataset(SmallOptions());
  std::vector<int> some = {0, 1, 2, 3, 4, 5, 6, 7};
  AstBatchView view;
  for (int idx : some) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    view.asts.push_back(&ds.programs[static_cast<size_t>(s.program_index)].ast);
    view.device_ids.push_back(s.device_id);
  }
  auto ds_buckets = GroupByLeafCount(ds, some);
  auto view_buckets = GroupByLeafCount(view);
  ASSERT_EQ(ds_buckets.size(), view_buckets.size());
  for (const auto& [leaves, view_positions] : view_buckets) {
    ASSERT_TRUE(ds_buckets.count(leaves));
    ASSERT_EQ(ds_buckets[leaves].size(), view_positions.size());
  }
  // Feature rows agree batch for batch (no shuffle: rng == nullptr).
  auto ds_batches = MakeBatches(ds_buckets, 4, nullptr);
  auto view_batches = MakeBatches(view_buckets, 4, nullptr);
  ASSERT_EQ(ds_batches.size(), view_batches.size());
  for (size_t b = 0; b < ds_batches.size(); ++b) {
    Matrix from_ds = BuildFeatureMatrix(ds, ds_batches[b], nullptr, true);
    Matrix from_view = BuildFeatureMatrix(view, view_batches[b], nullptr, true);
    ASSERT_EQ(from_ds.rows(), from_view.rows());
    ASSERT_EQ(from_ds.cols(), from_view.cols());
    for (int i = 0; i < from_ds.rows(); ++i) {
      for (int j = 0; j < from_ds.cols(); ++j) {
        EXPECT_EQ(from_ds.At(i, j), from_view.At(i, j));
      }
    }
    Matrix dev_ds = BuildDeviceFeatureMatrix(ds, ds_batches[b]);
    Matrix dev_view = BuildDeviceFeatureMatrix(view, view_batches[b]);
    for (int i = 0; i < dev_ds.rows(); ++i) {
      for (int j = 0; j < dev_ds.cols(); ++j) {
        EXPECT_EQ(dev_ds.At(i, j), dev_view.At(i, j));
      }
    }
  }
}

TEST(BatchingTest, FeatureMatrixShapes) {
  Dataset ds = BuildDataset(SmallOptions());
  std::vector<int> all = SamplesOnDevice(ds, 0);
  Rng rng(7);
  auto batches = MakeBatches(GroupByLeafCount(ds, all), 16, &rng);
  ASSERT_FALSE(batches.empty());
  const Batch& b = batches.front();
  Matrix x = BuildFeatureMatrix(ds, b, nullptr, true);
  EXPECT_EQ(x.rows(), static_cast<int>(b.sample_indices.size()) * b.seq_len);
  EXPECT_EQ(x.cols(), kFeatDim);
  Matrix dev = BuildDeviceFeatureMatrix(ds, b);
  EXPECT_EQ(dev.rows(), static_cast<int>(b.sample_indices.size()));
  EXPECT_EQ(dev.cols(), kDeviceFeatDim);
}

TEST(BatchingTest, StackLeafRowsMatchesTotalLeaves) {
  Dataset ds = BuildDataset(SmallOptions());
  std::vector<int> some = {0, 1, 2, 3, 4};
  Matrix rows = StackLeafRows(ds, some);
  int expected = 0;
  for (int idx : some) {
    expected +=
        ds.programs[static_cast<size_t>(ds.samples[static_cast<size_t>(idx)].program_index)]
            .ast.num_leaves;
  }
  EXPECT_EQ(rows.rows(), expected);
}

}  // namespace
}  // namespace cdmpp

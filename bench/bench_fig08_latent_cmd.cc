// Reproduces paper Fig. 8 / Fig. 16: latent-representation comparison with
// and without the CMD regularizer when adapting to a hold-out network
// (BERT-tiny; Fig. 16 adds MobileNet-V2). The paper shows this as t-SNE
// plots; we report the exact CMD distances (the quantity t-SNE visualizes)
// and emit 2-D t-SNE coordinates to CSV for plotting.
#include <cstdio>

#include "src/exp/exp_common.h"
#include "src/ml/cmd.h"
#include "src/ml/tsne.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig08_latent_cmd", "Fig. 8 / Fig. 16",
                   "latent CMD between source models and a hold-out network, w/ and w/o"
                   " CMD regularization (T4)");
  Dataset ds = BuildBenchDataset({0});

  TablePrinter table({"target network", "CMD w/o reg", "CMD w/ reg", "reduction"});
  for (const std::string& target_name :
       {std::string("bert_tiny_bs1_s128"), std::string("mobilenet_v2_w100_bs1_r224")}) {
    int target_id = ds.ModelIdByName(target_name);
    CDMPP_CHECK(target_id >= 0);
    Rng rng(4000);
    SplitIndices split = SplitDataset(ds, {0}, {target_id}, &rng);
    std::vector<int> target = SamplesOfModelOnDevice(ds, target_id, 0);
    std::vector<int> source = Take(split.train, 400);

    // Without CMD: plain pre-training.
    CdmppPredictor plain(BenchPredictorConfig(40));
    plain.Pretrain(ds, split.train, {});
    double cmd_without =
        CmdDistance(plain.EncodeLatent(ds, source), plain.EncodeLatent(ds, Take(target, 400)));

    // With CMD: fine-tune adds the regularizer against the target features.
    CdmppPredictor reg(BenchPredictorConfig(40));
    reg.Pretrain(ds, split.train, {});
    reg.Finetune(ds, split.train, source, Take(target, 400), 4);
    double cmd_with =
        CmdDistance(reg.EncodeLatent(ds, source), reg.EncodeLatent(ds, Take(target, 400)));

    table.AddRow({target_name, FormatDouble(cmd_without, 4), FormatDouble(cmd_with, 4),
                  FormatPercent(1.0 - cmd_with / std::max(1e-12, cmd_without), 1)});

    // t-SNE embedding (source + target latents) for the visual analogue.
    std::vector<int> vis = Take(source, 120);
    std::vector<int> vis_target = Take(target, 120);
    vis.insert(vis.end(), vis_target.begin(), vis_target.end());
    Matrix z = reg.EncodeLatent(ds, vis);
    Rng trng(5);
    TsneOptions topts;
    topts.iterations = 200;
    Matrix emb = TsneEmbed(z, topts, &trng);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < emb.rows(); ++i) {
      rows.push_back({static_cast<double>(emb.At(i, 0)), static_cast<double>(emb.At(i, 1)),
                      i < 120 ? 0.0 : 1.0});
    }
    std::string path = "fig08_tsne_" + target_name + ".csv";
    WriteCsv(path, {"x", "y", "is_target"}, rows);
    std::printf("[t-SNE coordinates written to %s]\n", path.c_str());
  }
  table.Print(stdout);
  std::printf("\nPaper's claim: CMD regularization reduces the representation discrepancy"
              " between source and target networks (Fig. 8(b) vs 8(a)).\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

// Optimizers (Adam, SGD) and learning-rate schedulers (constant, CyclicLR —
// the paper's auto-tuned configuration uses Adam + CyclicLR, Table 6).
#ifndef SRC_NN_OPTIMIZER_H_
#define SRC_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "src/nn/layers.h"

namespace cdmpp {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  // Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  std::vector<Param*> params_;
  double lr_ = 1e-3;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.9);
  void Step() override;

 private:
  double momentum_;
  std::vector<Matrix> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double weight_decay = 0.0, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;

 private:
  double weight_decay_;
  double beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_, v_;
};

// Learning-rate schedule evaluated per optimizer step.
class LrScheduler {
 public:
  virtual ~LrScheduler() = default;
  virtual double LrAt(int64_t step) const = 0;
};

class ConstantLr : public LrScheduler {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double LrAt(int64_t) const override { return lr_; }

 private:
  double lr_;
};

// Triangular cyclic learning rate between base_lr and max_lr with the given
// half-cycle length in steps.
class CyclicLr : public LrScheduler {
 public:
  CyclicLr(double base_lr, double max_lr, int64_t step_size);
  double LrAt(int64_t step) const override;

 private:
  double base_lr_, max_lr_;
  int64_t step_size_;
};

}  // namespace cdmpp

#endif  // SRC_NN_OPTIMIZER_H_

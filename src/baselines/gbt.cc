#include "src/baselines/gbt.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"

namespace cdmpp {

namespace {

// Quantile bin edges for one feature column.
std::vector<float> ComputeBinEdges(const Matrix& x, int feature, int max_bins) {
  std::vector<float> values(static_cast<size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    values[static_cast<size_t>(i)] = x.At(i, feature);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (static_cast<int>(values.size()) <= max_bins) {
    // Midpoints between distinct values.
    std::vector<float> edges;
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      edges.push_back((values[i] + values[i + 1]) / 2.0f);
    }
    return edges;
  }
  std::vector<float> edges;
  edges.reserve(static_cast<size_t>(max_bins) - 1);
  for (int b = 1; b < max_bins; ++b) {
    size_t idx = static_cast<size_t>(static_cast<double>(b) / max_bins *
                                     static_cast<double>(values.size() - 1));
    float e = values[idx];
    if (edges.empty() || e > edges.back()) {
      edges.push_back(e);
    }
  }
  return edges;
}

struct SplitDecision {
  double gain = 0.0;
  int feature = -1;
  float threshold = 0.0;
};

}  // namespace

void GradientBoostedTrees::Fit(const Matrix& x, const std::vector<double>& y, Rng* rng) {
  CDMPP_CHECK(x.rows() == static_cast<int>(y.size()));
  CDMPP_CHECK(x.rows() > 0);
  trees_.clear();
  round_rmse_.clear();

  bin_edges_.clear();
  bin_edges_.reserve(static_cast<size_t>(x.cols()));
  for (int f = 0; f < x.cols(); ++f) {
    bin_edges_.push_back(ComputeBinEdges(x, f, config_.max_bins));
  }

  double sum = 0.0;
  for (double v : y) {
    sum += v;
  }
  base_score_ = sum / static_cast<double>(y.size());

  std::vector<double> pred(y.size(), base_score_);
  std::vector<double> grad(y.size());
  std::vector<double> hess(y.size(), 1.0);

  for (int round = 0; round < config_.num_rounds; ++round) {
    for (size_t i = 0; i < y.size(); ++i) {
      grad[i] = pred[i] - y[i];  // squared-loss gradient
    }
    std::vector<int> rows;
    rows.reserve(y.size());
    for (int i = 0; i < x.rows(); ++i) {
      if (rng == nullptr || config_.subsample >= 1.0 || rng->Bernoulli(config_.subsample)) {
        rows.push_back(i);
      }
    }
    if (rows.empty()) {
      rows.push_back(0);
    }
    Tree tree = BuildTree(x, grad, hess, rows);
    double rmse = 0.0;
    for (int i = 0; i < x.rows(); ++i) {
      pred[static_cast<size_t>(i)] +=
          config_.learning_rate * PredictTree(tree, x.Row(i));
      double d = pred[static_cast<size_t>(i)] - y[static_cast<size_t>(i)];
      rmse += d * d;
    }
    round_rmse_.push_back(std::sqrt(rmse / static_cast<double>(y.size())));
    trees_.push_back(std::move(tree));
  }
}

GradientBoostedTrees::Tree GradientBoostedTrees::BuildTree(const Matrix& x,
                                                           const std::vector<double>& grad,
                                                           const std::vector<double>& hess,
                                                           const std::vector<int>& rows) {
  Tree tree;
  BuildNode(&tree, x, grad, hess, rows, 0);
  return tree;
}

int GradientBoostedTrees::BuildNode(Tree* tree, const Matrix& x,
                                    const std::vector<double>& grad,
                                    const std::vector<double>& hess, std::vector<int> rows,
                                    int depth) {
  double g_total = 0.0;
  double h_total = 0.0;
  for (int r : rows) {
    g_total += grad[static_cast<size_t>(r)];
    h_total += hess[static_cast<size_t>(r)];
  }
  const double lambda = config_.reg_lambda;
  auto leaf_score = [&](double g, double h) { return g * g / (h + lambda); };

  int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();

  bool can_split = depth < config_.max_depth && rows.size() >= 2;
  SplitDecision best;
  if (can_split) {
    double parent_score = leaf_score(g_total, h_total);
    for (int f = 0; f < x.cols(); ++f) {
      const std::vector<float>& edges = bin_edges_[static_cast<size_t>(f)];
      if (edges.empty()) {
        continue;
      }
      // Histogram of (G, H) per bin.
      std::vector<double> g_bin(edges.size() + 1, 0.0);
      std::vector<double> h_bin(edges.size() + 1, 0.0);
      for (int r : rows) {
        float v = x.At(r, f);
        size_t b = static_cast<size_t>(
            std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
        g_bin[b] += grad[static_cast<size_t>(r)];
        h_bin[b] += hess[static_cast<size_t>(r)];
      }
      double g_left = 0.0;
      double h_left = 0.0;
      for (size_t b = 0; b < edges.size(); ++b) {
        g_left += g_bin[b];
        h_left += h_bin[b];
        double g_right = g_total - g_left;
        double h_right = h_total - h_left;
        if (h_left < config_.min_child_weight || h_right < config_.min_child_weight) {
          continue;
        }
        double gain = leaf_score(g_left, h_left) + leaf_score(g_right, h_right) - parent_score;
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = f;
          best.threshold = edges[b];
        }
      }
    }
  }

  if (best.feature < 0 || best.gain < config_.min_gain) {
    tree->nodes[static_cast<size_t>(node_index)].value =
        static_cast<float>(-g_total / (h_total + lambda));
    return node_index;
  }

  std::vector<int> left_rows;
  std::vector<int> right_rows;
  for (int r : rows) {
    if (x.At(r, best.feature) <= best.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  if (left_rows.empty() || right_rows.empty()) {
    tree->nodes[static_cast<size_t>(node_index)].value =
        static_cast<float>(-g_total / (h_total + lambda));
    return node_index;
  }
  rows.clear();
  rows.shrink_to_fit();

  int left = BuildNode(tree, x, grad, hess, std::move(left_rows), depth + 1);
  int right = BuildNode(tree, x, grad, hess, std::move(right_rows), depth + 1);
  Node& node = tree->nodes[static_cast<size_t>(node_index)];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

float GradientBoostedTrees::PredictTree(const Tree& tree, const float* row) const {
  int idx = 0;
  while (tree.nodes[static_cast<size_t>(idx)].feature >= 0) {
    const Node& node = tree.nodes[static_cast<size_t>(idx)];
    idx = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return tree.nodes[static_cast<size_t>(idx)].value;
}

double GradientBoostedTrees::PredictOne(const float* row) const {
  double pred = base_score_;
  for (const Tree& tree : trees_) {
    pred += config_.learning_rate * PredictTree(tree, row);
  }
  return pred;
}

std::vector<double> GradientBoostedTrees::Predict(const Matrix& x) const {
  std::vector<double> out(static_cast<size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    out[static_cast<size_t>(i)] = PredictOne(x.Row(i));
  }
  return out;
}

}  // namespace cdmpp

#include <gtest/gtest.h>

#include "src/device/simulator.h"
#include "src/replay/e2e.h"
#include "src/replay/replayer.h"

namespace cdmpp {
namespace {

// Builds a hand-rolled DFG: durations in seconds, edges (from, to).
Dfg MakeDfg(const std::vector<double>& durations,
            const std::vector<std::pair<int, int>>& edges, double gap = 0.0) {
  Dfg dfg;
  for (size_t i = 0; i < durations.size(); ++i) {
    DfgNode node;
    node.op_index = static_cast<int>(i);
    node.duration_seconds = durations[i];
    node.gap_seconds = gap;
    dfg.nodes.push_back(std::move(node));
  }
  for (auto [from, to] : edges) {
    dfg.nodes[static_cast<size_t>(from)].successors.push_back(to);
    dfg.nodes[static_cast<size_t>(to)].indegree++;
  }
  return dfg;
}

TEST(ReplayTest, SerialChainSumsDurations) {
  Dfg dfg = MakeDfg({1.0, 2.0, 3.0}, {{0, 1}, {1, 2}});
  ReplayResult res = Replay(dfg, 1);
  EXPECT_DOUBLE_EQ(res.iteration_seconds, 6.0);
  EXPECT_DOUBLE_EQ(res.start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(res.start_times[1], 1.0);
  EXPECT_DOUBLE_EQ(res.start_times[2], 3.0);
}

TEST(ReplayTest, GapAddsPerNode) {
  Dfg dfg = MakeDfg({1.0, 1.0}, {{0, 1}}, /*gap=*/0.5);
  EXPECT_DOUBLE_EQ(Replay(dfg, 1).iteration_seconds, 3.0);
}

TEST(ReplayTest, DiamondRespectsCriticalPath) {
  //    0 (1s)
  //   /       \.
  //  1 (5s)    2 (1s)
  //   \       /
  //    3 (1s)       (the trailing dot keeps -Wcomment quiet)
  Dfg dfg = MakeDfg({1.0, 5.0, 1.0, 1.0}, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  // One queue: everything serializes = 8s.
  EXPECT_DOUBLE_EQ(Replay(dfg, 1).iteration_seconds, 8.0);
}

TEST(ReplayTest, MultiQueueOverlapsIndependentBranches) {
  Dfg dfg = MakeDfg({1.0, 5.0, 1.0, 1.0}, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  // Pin branch nodes to different queues so they overlap.
  dfg.nodes[1].queue_hint = 0;
  dfg.nodes[2].queue_hint = 1;
  dfg.nodes[0].queue_hint = 0;
  dfg.nodes[3].queue_hint = 0;
  // Critical path: 0 (1) -> 1 (5) -> 3 (1) = 7s.
  EXPECT_DOUBLE_EQ(Replay(dfg, 2).iteration_seconds, 7.0);
}

TEST(ReplayTest, ResultAtLeastCriticalPathAndAtMostSum) {
  Rng rng(91);
  // Random DAG property test.
  for (int trial = 0; trial < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 12));
    std::vector<double> durations;
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i) {
      durations.push_back(rng.Uniform(0.1, 2.0));
      for (int j = 0; j < i; ++j) {
        if (rng.Bernoulli(0.3)) {
          edges.emplace_back(j, i);
        }
      }
    }
    Dfg dfg = MakeDfg(durations, edges);
    // Longest path via DP.
    std::vector<double> longest(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      longest[static_cast<size_t>(i)] = durations[static_cast<size_t>(i)];
    }
    for (int i = 0; i < n; ++i) {
      for (auto [from, to] : edges) {
        longest[static_cast<size_t>(to)] =
            std::max(longest[static_cast<size_t>(to)],
                     longest[static_cast<size_t>(from)] + durations[static_cast<size_t>(to)]);
      }
    }
    double critical = 0.0;
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      critical = std::max(critical, longest[static_cast<size_t>(i)]);
      total += durations[static_cast<size_t>(i)];
    }
    double t1 = Replay(dfg, 1).iteration_seconds;
    EXPECT_GE(t1 + 1e-9, critical);
    EXPECT_LE(t1, total + 1e-9);
    double t3 = Replay(dfg, 3).iteration_seconds;
    EXPECT_LE(t3, t1 + 1e-9);  // more queues never hurt
    EXPECT_GE(t3 + 1e-9, critical);
  }
}

TEST(ReplayTest, BuildDfgSplitsGemmOnHl100) {
  NetworkDef net = BuildNetworkByName("resnet18_bs1_r224");
  const DeviceSpec& hl = DeviceByName("HL-100");
  const DeviceSpec& gpu = DeviceByName("V100");
  auto unit = [](const NetworkOp&) { return 1e-3; };
  Dfg hl_dfg = BuildDfg(net, hl, unit);
  Dfg gpu_dfg = BuildDfg(net, gpu, unit);
  EXPECT_GT(hl_dfg.nodes.size(), gpu_dfg.nodes.size());
  EXPECT_EQ(gpu_dfg.nodes.size(), net.ops.size());
  // Sub-nodes carry one third the duration.
  for (const DfgNode& node : hl_dfg.nodes) {
    if (node.queue_hint >= 0) {
      EXPECT_NEAR(node.duration_seconds, 1e-3 / 3, 1e-12);
    }
  }
}

TEST(ReplayTest, Hl100SplittingReducesGemmTime) {
  NetworkDef net = BuildNetworkByName("resnet18_bs1_r224");
  const DeviceSpec& hl = DeviceByName("HL-100");
  auto unit = [](const NetworkOp&) { return 3e-3; };
  Dfg split_dfg = BuildDfg(net, hl, unit);
  double split_time = Replay(split_dfg, ReplayQueues(hl)).iteration_seconds;
  // Same network replayed on one queue without splitting.
  const DeviceSpec& gpu = DeviceByName("V100");
  Dfg flat_dfg = BuildDfg(net, gpu, unit);
  double flat_time = Replay(flat_dfg, 1).iteration_seconds;
  EXPECT_LT(split_time, flat_time);
}

TEST(E2eTest, SchedulesDeterministicAndShared) {
  NetworkDef net = BuildNetworkByName("bert_tiny_bs1_s128");
  NetworkSchedules s1 = ChooseSchedules(net, 42);
  NetworkSchedules s2 = ChooseSchedules(net, 42);
  ASSERT_EQ(s1.by_op.size(), net.ops.size());
  for (const auto& [op, sched] : s1.by_op) {
    EXPECT_EQ(sched.primitives.size(), s2.by_op.at(op).primitives.size());
  }
}

TEST(E2eTest, GroundTruthPositiveOnAllDevices) {
  NetworkDef net = BuildNetworkByName("resnet18_bs1_r224");
  NetworkSchedules scheds = ChooseSchedules(net, 7);
  for (const DeviceSpec& spec : DeviceRegistry()) {
    double t = E2eGroundTruth(net, spec, scheds);
    EXPECT_GT(t, 0.0) << spec.name;
    EXPECT_TRUE(std::isfinite(t));
  }
}

TEST(E2eTest, PerfectCostModelReproducesGroundTruth) {
  NetworkDef net = BuildNetworkByName("resnet18_bs1_r224");
  NetworkSchedules scheds = ChooseSchedules(net, 8);
  const DeviceSpec& dev = DeviceByName("P100");
  double truth = E2eGroundTruth(net, dev, scheds);
  // An oracle cost model (simulator itself) must reproduce the replay result.
  // Note ops sharing a task signature share the same schedule, so the oracle
  // sees identical programs.
  double oracle = E2ePredicted(net, dev, scheds, [&](const CompactAst& ast, int device_id) {
    // Recover latency via the simulator on a program with the same AST: we
    // cheat by scanning the network for the matching op (test-only).
    for (size_t i = 0; i < net.ops.size(); ++i) {
      TensorProgram prog =
          GenerateProgram(net.ops[i].task, scheds.by_op.at(static_cast<int>(i)));
      CompactAst candidate = ExtractCompactAst(prog);
      if (candidate.num_leaves == ast.num_leaves && candidate.ordering == ast.ordering &&
          candidate.leaves == ast.leaves) {
        return SimulateLatencyDeterministic(prog, DeviceById(device_id));
      }
    }
    ADD_FAILURE() << "AST not found in network";
    return 0.0;
  });
  EXPECT_NEAR(oracle, truth, 1e-9);
}

}  // namespace
}  // namespace cdmpp

// End-to-end DNN latency prediction via replay (paper §5.5, Appendix C):
// build a TIR-based data-flow graph for a network, label each node with a
// per-tensor-program latency (predicted by a cost model or simulated as
// ground truth), and simulate the execution order with the topological
// priority-queue algorithm of Algorithm 2.
//
// Device-specific replay behaviour: Habana HL-100 has 3 GEMM engines, so
// GEMM/conv nodes are split into 3 parallel sub-operators across 3 execution
// queues (paper §5.5).
#ifndef SRC_REPLAY_REPLAYER_H_
#define SRC_REPLAY_REPLAYER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/dataset/model_zoo.h"
#include "src/device/device.h"

namespace cdmpp {

// One node of the replayable DFG.
struct DfgNode {
  int op_index = -1;            // index into the network's op list
  double duration_seconds = 0.0;
  double gap_seconds = 0.0;     // fixed inter-kernel gap (launch overhead)
  std::vector<int> successors;
  int indegree = 0;
  int queue_hint = -1;          // preferred execution queue (-1 = any)
};

struct Dfg {
  std::vector<DfgNode> nodes;
};

// Timing outcome of a replay.
struct ReplayResult {
  double iteration_seconds = 0.0;
  // Per node: start time (seconds); aligned with Dfg::nodes.
  std::vector<double> start_times;
};

// Callback giving the latency (seconds) of one network op on the device.
using OpLatencyFn = std::function<double(const NetworkOp& op)>;

// Builds the DFG of `net` for `device`, querying `latency_fn` per op.
// On HL-100, GEMM-class ops are split into 3 parallel sub-nodes of one third
// the duration, each pinned to a different GEMM-engine queue.
Dfg BuildDfg(const NetworkDef& net, const DeviceSpec& device, const OpLatencyFn& latency_fn);

// Algorithm 2: topological simulation over `num_queues` execution queues.
// Nodes with queue_hint >= 0 run on that queue; others on queue 0.
ReplayResult Replay(const Dfg& dfg, int num_queues);

// Convenience: end-to-end latency of a network on a device.
double ReplayNetwork(const NetworkDef& net, const DeviceSpec& device,
                     const OpLatencyFn& latency_fn);

// Number of execution queues the replayer uses for a device.
int ReplayQueues(const DeviceSpec& device);

}  // namespace cdmpp

#endif  // SRC_REPLAY_REPLAYER_H_

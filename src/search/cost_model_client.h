// The client seam between the cost model's consumers (schedule search,
// autotuner trial scoring) and the cost model itself.
//
// The paper's whole point (§7.5, Fig. 14(b)) is that a latency cost model
// absorbs millions of candidate queries from a schedule tuner. Before this
// seam existed the search loop called the predictor synchronously one
// candidate at a time, so none of the serving-tier wins (cross-request
// batching, in-flight coalescing, the sharded LRU cache, int8 kernels,
// thread-parallel forwards) were visible to the tuner. A CostModelClient
// scores whole populations at once:
//
//   search / autotuner ──ScoreBatch(queries)──▶ CostModelClient
//        │                                          │
//        │            ┌─────────────────────────────┼──────────────────┐
//        │            ▼                             ▼                  ▼
//        │     DirectCostModel               ServeCostModel       FnCostModel
//        │     (serial, one const            (dedup by AST hash   (arbitrary
//        │      batched forward of            + device finger-     CostModelFn,
//        │      size 1 per query —            print, Submit        e.g. the XGB
//        │      the pre-serving               futures into the     baseline)
//        │      baseline shape)               PredictionService,
//        │                                    collect in index
//        ▼                                    order)
//   stable index-ordered score vector (the determinism contract below)
//
// Determinism contract: for a fixed model state, (*scores)[i] depends only on
// queries[i] — never on thread count, batching boundaries, cache state, or
// future completion order. The serve path honors it because PredictBatched is
// bitwise batch-size- and thread-count-invariant (src/core/predictor.h) and
// scores are collected positionally, not in completion order; search drivers
// rank and mutate only from this index-ordered vector, so a same-seed search
// produces bitwise-identical SearchCurves under every client and
// CDMPP_NUM_THREADS value (tests/search_test.cc pins this).
#ifndef SRC_SEARCH_COST_MODEL_CLIENT_H_
#define SRC_SEARCH_COST_MODEL_CLIENT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/ast/compact_ast.h"
#include "src/core/predictor.h"
#include "src/serve/prediction_service.h"

namespace cdmpp {

// Cost model interface: estimated latency (seconds) of a candidate program.
// Kept for baselines that are plain functions (XGBoost, heuristics in tests);
// FnCostModel adapts it to the client seam.
using CostModelFn = std::function<double(const CompactAst& ast, int device_id)>;

// One candidate to score. The AST is borrowed: it must stay alive and
// unmodified until ScoreBatch returns.
struct CostQuery {
  const CompactAst* ast = nullptr;
  int device_id = 0;
};

// Traffic accounting across a client's lifetime (ResetStats reopens it).
struct CostClientStats {
  uint64_t queries = 0;    // candidates scored
  uint64_t submitted = 0;  // requests actually issued after batch-local dedup
  uint64_t deduped = 0;    // duplicates answered from another query's result
  double score_seconds = 0.0;  // wall-clock spent inside ScoreBatch
};

class CostModelClient {
 public:
  virtual ~CostModelClient() = default;

  // Scores a population: resizes *scores to queries.size() and fills
  // (*scores)[i] with the predicted latency (seconds) of queries[i].
  // Implementations may evaluate asynchronously and out of order, but the
  // result vector is always index-ordered (see the header contract).
  void ScoreBatch(const std::vector<CostQuery>& queries, std::vector<double>* scores);

  const CostClientStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CostClientStats(); }

 protected:
  virtual void ScoreBatchImpl(const std::vector<CostQuery>& queries,
                              std::vector<double>* scores) = 0;
  CostClientStats stats_;
};

// Adapts a plain CostModelFn (XGB baseline, test heuristics) to the seam.
class FnCostModel : public CostModelClient {
 public:
  explicit FnCostModel(CostModelFn fn) : fn_(std::move(fn)) {}

 protected:
  void ScoreBatchImpl(const std::vector<CostQuery>& queries,
                      std::vector<double>* scores) override;

 private:
  CostModelFn fn_;
};

// The direct-serial baseline: one const batched forward of size 1 per query
// on the calling thread — the shape every search loop had before the serving
// integration, kept as a first-class client so the serve-vs-direct A/B in
// bench_tuning measures exactly the batching/caching delta. `precision`
// selects the numeric tier (default: the CDMPP_PRECISION process default, so
// direct and serve runs compare like for like). Not thread-safe: scoring
// creates missing (quantized) heads on the predictor, so one client per
// predictor per thread, and don't score while a PredictionService serves the
// same predictor.
class DirectCostModel : public CostModelClient {
 public:
  explicit DirectCostModel(CdmppPredictor* predictor,
                           Precision precision = DefaultPrecision());

 protected:
  void ScoreBatchImpl(const std::vector<CostQuery>& queries,
                      std::vector<double>* scores) override;

 private:
  CdmppPredictor* predictor_;
  Precision precision_;
  Workspace ws_;
};

// The serving-backed client: submits every unique candidate of the batch to
// the PredictionService as a future (async batched scoring — the service's
// leaf-count buckets fill by construction when a whole population lands at
// once) and collects results in index order. Batch-local duplicates are
// deduplicated client-side by (CompactAst::Hash(), DeviceSpec::Fingerprint())
// before submission; candidates re-visited across batches hit the service's
// sharded LRU cache under the same key instead of the forward pass. ASTs go
// out zero-copy in ONE bulk enqueue (SubmitBorrowedBatch: one queue lock, one
// worker wake-up, population-sized batches with no batch-window wait);
// ScoreBatch waits out every future before returning, which is exactly the
// borrowed-lifetime contract. Pair it with ServeOptions::batch_window_ms = 0
// — the bulk enqueue already forms full batches, so the window only adds
// sleep.
// Thread-compatible: the service is thread-safe, but one ServeCostModel's
// stats are not; use one client per search driver.
class ServeCostModel : public CostModelClient {
 public:
  explicit ServeCostModel(PredictionService* service);

 protected:
  void ScoreBatchImpl(const std::vector<CostQuery>& queries,
                      std::vector<double>* scores) override;

 private:
  PredictionService* service_;
};

}  // namespace cdmpp

#endif  // SRC_SEARCH_COST_MODEL_CLIENT_H_

#include "src/replay/e2e.h"

#include "src/device/simulator.h"
#include "src/support/check.h"

namespace cdmpp {

namespace {

std::string OpSignature(const Task& task) {
  std::string sig = OpKindName(task.kind);
  for (int64_t d : task.dims) {
    sig += "_" + std::to_string(d);
  }
  sig += task.fused_relu ? "_relu" : "";
  return sig;
}

}  // namespace

NetworkSchedules ChooseSchedules(const NetworkDef& net, uint64_t seed) {
  Rng rng(seed);
  NetworkSchedules out;
  std::map<std::string, ScheduleDesc> by_sig;
  for (size_t i = 0; i < net.ops.size(); ++i) {
    std::string sig = OpSignature(net.ops[i].task);
    auto it = by_sig.find(sig);
    if (it == by_sig.end()) {
      it = by_sig.emplace(std::move(sig), SampleSchedule(net.ops[i].task, &rng)).first;
    }
    out.by_op[static_cast<int>(i)] = it->second;
  }
  return out;
}

double E2eGroundTruth(const NetworkDef& net, const DeviceSpec& device,
                      const NetworkSchedules& schedules) {
  return ReplayNetwork(net, device, [&](const NetworkOp& op) {
    int op_index = -1;
    for (size_t i = 0; i < net.ops.size(); ++i) {
      if (&net.ops[i] == &op) {
        op_index = static_cast<int>(i);
        break;
      }
    }
    CDMPP_CHECK(op_index >= 0);
    TensorProgram prog = GenerateProgram(op.task, schedules.by_op.at(op_index));
    return SimulateLatencyDeterministic(prog, device);
  });
}

double E2ePredicted(const NetworkDef& net, const DeviceSpec& device,
                    const NetworkSchedules& schedules,
                    const std::function<double(const CompactAst&, int)>& predict_ast) {
  // Cost-model inference once per distinct task signature (§5.5).
  std::map<std::string, double> cache;
  return ReplayNetwork(net, device, [&](const NetworkOp& op) {
    std::string sig = OpSignature(op.task);
    auto it = cache.find(sig);
    if (it == cache.end()) {
      int op_index = -1;
      for (size_t i = 0; i < net.ops.size(); ++i) {
        if (&net.ops[i] == &op) {
          op_index = static_cast<int>(i);
          break;
        }
      }
      CDMPP_CHECK(op_index >= 0);
      TensorProgram prog = GenerateProgram(op.task, schedules.by_op.at(op_index));
      CompactAst ast = ExtractCompactAst(prog);
      it = cache.emplace(std::move(sig), predict_ast(ast, device.id)).first;
    }
    return it->second;
  });
}

}  // namespace cdmpp

#include "src/serve/server_stats.h"

#include <cstdio>

#include "src/support/cpu_features.h"

namespace cdmpp {

namespace {

int64_t NowTicks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

double TicksToSeconds(int64_t ticks) {
  return std::chrono::duration<double>(std::chrono::steady_clock::duration(ticks)).count();
}

// Recomputes every derived field from the raw counters + histogram.
void FillDerived(ServerStatsSnapshot* s) {
  s->qps = s->wall_seconds > 0.0 ? static_cast<double>(s->requests) / s->wall_seconds : 0.0;
  s->cache_hit_rate =
      s->requests > 0 ? static_cast<double>(s->cache_hits) / static_cast<double>(s->requests)
                      : 0.0;
  s->mean_batch_occupancy =
      s->forward_passes > 0
          ? static_cast<double>(s->batched_rows) / static_cast<double>(s->forward_passes)
          : 0.0;
  s->p50_latency_ms = s->latency_hist.Percentile(50.0);
  s->p99_latency_ms = s->latency_hist.Percentile(99.0);
  s->p999_latency_ms = s->latency_hist.Percentile(99.9);
}

}  // namespace

ServerStats::ServerStats() : start_ticks_(NowTicks()) {}

void ServerStats::Reset() {
  requests_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  coalesced_.store(0, std::memory_order_relaxed);
  forward_passes_.store(0, std::memory_order_relaxed);
  batched_rows_.store(0, std::memory_order_relaxed);
  latency_hist_.Reset();
  start_ticks_.store(NowTicks(), std::memory_order_relaxed);
}

ServerStatsSnapshot ServerStats::Snapshot() const {
  ServerStatsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.forward_passes = forward_passes_.load(std::memory_order_relaxed);
  s.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  s.wall_seconds =
      TicksToSeconds(NowTicks() - start_ticks_.load(std::memory_order_relaxed));
  s.latency_hist = latency_hist_.Snapshot();
  FillDerived(&s);
  s.kernel_isa = KernelIsaName(ActiveKernelIsa());
  s.precision = PrecisionName(DefaultPrecision());
  return s;
}

ServerStatsSnapshot ServerStatsSnapshot::Delta(const ServerStatsSnapshot& earlier) const {
  ServerStatsSnapshot d;
  d.requests = requests >= earlier.requests ? requests - earlier.requests : 0;
  d.cache_hits = cache_hits >= earlier.cache_hits ? cache_hits - earlier.cache_hits : 0;
  d.coalesced = coalesced >= earlier.coalesced ? coalesced - earlier.coalesced : 0;
  d.forward_passes =
      forward_passes >= earlier.forward_passes ? forward_passes - earlier.forward_passes : 0;
  d.batched_rows =
      batched_rows >= earlier.batched_rows ? batched_rows - earlier.batched_rows : 0;
  d.wall_seconds =
      wall_seconds > earlier.wall_seconds ? wall_seconds - earlier.wall_seconds : 0.0;
  d.latency_hist = latency_hist.Delta(earlier.latency_hist);
  FillDerived(&d);
  d.kernel_isa = kernel_isa;
  d.precision = precision;
  return d;
}

std::string ServerStatsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu reqs in %.3fs (%.0f QPS) | hit rate %.1f%% | "
                "%llu fwd passes, mean occupancy %.1f | p50 %.3fms p99 %.3fms "
                "p99.9 %.3fms | isa %s | precision %s",
                static_cast<unsigned long long>(requests), wall_seconds, qps,
                cache_hit_rate * 100.0, static_cast<unsigned long long>(forward_passes),
                mean_batch_occupancy, p50_latency_ms, p99_latency_ms, p999_latency_ms,
                kernel_isa.c_str(), precision.c_str());
  std::string out = buf;
  if (!latency_hist.empty()) {
    out += "\n";
    out += latency_hist.ToString("ms");
  }
  return out;
}

}  // namespace cdmpp

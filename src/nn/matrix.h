// Dense row-major float matrix with the operations the NN library needs.
// The MatMul* entry points are thin wrappers over the cache-blocked,
// ParallelFor-parallelized kernel layer in src/nn/kernels.h — one kernel
// layer to optimize instead of per-call-site loops.
#ifndef SRC_NN_MATRIX_H_
#define SRC_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/support/check.h"
#include "src/support/rng.h"

namespace cdmpp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols) {
    CDMPP_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  // Float capacity retained by the backing storage (>= size()).
  size_t capacity() const { return data_.capacity(); }

  // Reshapes to [rows, cols] without shrinking capacity: no heap traffic once
  // the buffer has grown to its steady-state size (the Workspace arena relies
  // on this). Existing element values are NOT preserved in any meaningful
  // layout; treat contents as unspecified after a Resize. Growing past the
  // previous logical size zero-fills the new tail (vector::resize semantics)
  // — a small one-time cost per slot until the request shapes stabilize, not
  // a steady-state one.
  void Resize(int rows, int cols) {
    CDMPP_CHECK(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }

  float& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  float At(int r, int c) const { return data_[static_cast<size_t>(r) * cols_ + c]; }
  float* Row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* Row(int r) const { return data_.data() + static_cast<size_t>(r) * cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  // Xavier/Glorot uniform initialization for a (fan_in -> fan_out) weight.
  void XavierInit(Rng* rng);

  // this += other (same shape).
  void AddInPlace(const Matrix& other);
  // this += scale * other.
  void AddScaled(const Matrix& other, float scale);
  // this *= scale.
  void Scale(float scale);

  // Frobenius norm squared.
  double SquaredNorm() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// out = a x b. Shapes: [m,k] x [k,n] -> [m,n].
Matrix MatMul(const Matrix& a, const Matrix& b);
// out = a^T x b. Shapes: [k,m] x [k,n] -> [m,n].
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
// out = a x b^T. Shapes: [m,k] x [n,k] -> [m,n].
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

// Adds a [1,n] (or length-n row of `bias`) to every row of x in place.
void AddRowBroadcast(Matrix* x, const Matrix& bias);
// Column-wise sum of x -> [1, n] (gradient of a broadcast bias).
Matrix ColumnSum(const Matrix& x);

// In-place row-wise softmax.
void SoftmaxRows(Matrix* x);

}  // namespace cdmpp

#endif  // SRC_NN_MATRIX_H_

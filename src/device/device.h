// Device registry (paper Table 2) and device-dependent feature extraction
// (paper §4.3).
//
// The registry describes the nine devices of the paper's evaluation. Spec
// values for clock / memory / bandwidth / cores come directly from Table 2;
// derived parameters (peak GFLOPS, cache sizes, launch overheads) use public
// datasheet figures so the simulated performance landscape is plausible.
#ifndef SRC_DEVICE_DEVICE_H_
#define SRC_DEVICE_DEVICE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cdmpp {

enum class DeviceClass { kGpu, kCpu, kAccelerator };

const char* DeviceClassName(DeviceClass cls);

struct DeviceSpec {
  int id = -1;
  std::string name;
  DeviceClass cls = DeviceClass::kGpu;
  double clock_mhz = 0.0;
  double mem_gb = 0.0;
  double mem_bw_gbps = 0.0;  // GB/s
  int cores = 0;             // SMs for GPUs, cores for CPUs, engines for accelerators
  double peak_gflops = 0.0;  // fp32
  double l1_kb = 0.0;        // per-core L1 / shared memory
  double l2_mb = 0.0;
  double launch_overhead_us = 0.0;  // fixed per-kernel overhead
  double vector_width = 1.0;        // SIMD lanes per core (CPU) / warp efficiency proxy
  // Device-specific saturation knee: fraction of `cores` of exposed
  // parallelism needed to reach ~76% of peak throughput (tanh-shaped).
  double occupancy_knee = 1.0;
  // Efficiency multiplier for GEMM-class work (tensor cores / GEMM engines).
  double gemm_affinity = 1.0;

  // Stable 64-bit fingerprint of the full spec (name + every numeric field).
  // Two specs fingerprint equal iff the cost model would see identical device
  // features, so the fingerprint is usable as a persistent cache-key component
  // (src/serve/). Stable across runs and processes.
  uint64_t Fingerprint() const;
};

// All nine devices of Table 2, ids 0..8, stable ordering:
// T4, K80, P100, V100, A100, HL-100, Intel E5-2673, AMD EPYC 7452, Graviton2.
const std::vector<DeviceSpec>& DeviceRegistry();

// Lookup by name; aborts if unknown.
const DeviceSpec& DeviceByName(const std::string& name);
const DeviceSpec& DeviceById(int id);

// Convenience id lists used by the cross-device experiments.
std::vector<int> GpuDeviceIds();
std::vector<int> CpuDeviceIds();
int AcceleratorDeviceId();

// Width of the device-dependent feature vector.
constexpr int kDeviceFeatDim = 12;

// Extracts the device-dependent features v of §4.3: log-compressed hardware
// specification values plus a one-hot device class.
std::vector<float> ExtractDeviceFeatures(const DeviceSpec& spec);

// Allocation-free variant for the serving hot path: writes the same
// kDeviceFeatDim features into `out` (caller-provided, at least that long).
void ExtractDeviceFeaturesInto(const DeviceSpec& spec, float* out);

}  // namespace cdmpp

#endif  // SRC_DEVICE_DEVICE_H_

#include "src/replay/replayer.h"

#include <algorithm>
#include <queue>

#include "src/support/check.h"

namespace cdmpp {

int ReplayQueues(const DeviceSpec& device) {
  // HL-100: 3 GEMM engines modeled as 3 queues (§5.5). Other devices replay
  // on a single stream.
  return device.cls == DeviceClass::kAccelerator ? 3 : 1;
}

namespace {

bool IsGemmClass(OpKind kind) {
  return kind == OpKind::kConv2d || kind == OpKind::kDense || kind == OpKind::kBatchMatmul;
}

}  // namespace

Dfg BuildDfg(const NetworkDef& net, const DeviceSpec& device, const OpLatencyFn& latency_fn) {
  const bool split_gemm = device.cls == DeviceClass::kAccelerator;
  const double gap = device.launch_overhead_us * 1e-6;

  Dfg dfg;
  // Map op index -> the dfg node ids representing it (1 or 3 sub-nodes).
  std::vector<std::vector<int>> op_nodes(net.ops.size());
  for (size_t i = 0; i < net.ops.size(); ++i) {
    const NetworkOp& op = net.ops[i];
    double latency = latency_fn(op);
    CDMPP_CHECK(latency >= 0.0);
    int replicas = (split_gemm && IsGemmClass(op.task.kind)) ? 3 : 1;
    for (int r = 0; r < replicas; ++r) {
      DfgNode node;
      node.op_index = static_cast<int>(i);
      node.duration_seconds = latency / replicas;
      node.gap_seconds = gap;
      node.queue_hint = replicas == 3 ? r : -1;
      op_nodes[i].push_back(static_cast<int>(dfg.nodes.size()));
      dfg.nodes.push_back(std::move(node));
    }
  }
  // Dependencies: every sub-node of a dependent op waits on every sub-node of
  // each of its predecessors.
  for (size_t i = 0; i < net.ops.size(); ++i) {
    for (int dep : net.ops[i].deps) {
      for (int from : op_nodes[static_cast<size_t>(dep)]) {
        for (int to : op_nodes[i]) {
          dfg.nodes[static_cast<size_t>(from)].successors.push_back(to);
          dfg.nodes[static_cast<size_t>(to)].indegree++;
        }
      }
    }
  }
  return dfg;
}

ReplayResult Replay(const Dfg& dfg, int num_queues) {
  CDMPP_CHECK(num_queues >= 1);
  ReplayResult result;
  result.start_times.assign(dfg.nodes.size(), 0.0);

  // Per-node state.
  std::vector<int> ref(dfg.nodes.size());
  std::vector<double> ready_time(dfg.nodes.size(), 0.0);
  for (size_t i = 0; i < dfg.nodes.size(); ++i) {
    ref[i] = dfg.nodes[i].indegree;
  }

  // Per-queue frontier ordered by readyTime (Algorithm 2's priority queues).
  using Entry = std::pair<double, int>;  // (readyTime, node)
  std::vector<std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>> queues(
      static_cast<size_t>(num_queues));
  std::vector<double> device_time(static_cast<size_t>(num_queues), 0.0);

  auto queue_of = [&](int node) {
    int hint = dfg.nodes[static_cast<size_t>(node)].queue_hint;
    return hint >= 0 && hint < num_queues ? hint : 0;
  };
  for (size_t i = 0; i < dfg.nodes.size(); ++i) {
    if (ref[i] == 0) {
      queues[static_cast<size_t>(queue_of(static_cast<int>(i)))].emplace(0.0,
                                                                         static_cast<int>(i));
    }
  }

  size_t executed = 0;
  while (true) {
    // Select the non-empty queue whose next op can start earliest
    // (Algorithm 2 line 14: first device with non-empty queue, devices kept
    // sorted by deviceTime).
    int best_q = -1;
    double best_start = 0.0;
    for (int q = 0; q < num_queues; ++q) {
      if (queues[static_cast<size_t>(q)].empty()) {
        continue;
      }
      double start = std::max(device_time[static_cast<size_t>(q)],
                              queues[static_cast<size_t>(q)].top().first);
      if (best_q < 0 || start < best_start) {
        best_q = q;
        best_start = start;
      }
    }
    if (best_q < 0) {
      break;  // stop simulation
    }
    auto [rt, u] = queues[static_cast<size_t>(best_q)].top();
    queues[static_cast<size_t>(best_q)].pop();
    const DfgNode& node = dfg.nodes[static_cast<size_t>(u)];
    double start = std::max(device_time[static_cast<size_t>(best_q)], rt);
    result.start_times[static_cast<size_t>(u)] = start;
    double finish = start + node.duration_seconds + node.gap_seconds;
    device_time[static_cast<size_t>(best_q)] = finish;
    ++executed;

    for (int succ : node.successors) {
      ready_time[static_cast<size_t>(succ)] =
          std::max(ready_time[static_cast<size_t>(succ)], finish);
      if (--ref[static_cast<size_t>(succ)] == 0) {
        queues[static_cast<size_t>(queue_of(succ))].emplace(
            ready_time[static_cast<size_t>(succ)], succ);
      }
    }
  }
  CDMPP_CHECK_MSG(executed == dfg.nodes.size(), "cycle in DFG");

  result.iteration_seconds = 0.0;
  for (double t : device_time) {
    result.iteration_seconds = std::max(result.iteration_seconds, t);
  }
  return result;
}

double ReplayNetwork(const NetworkDef& net, const DeviceSpec& device,
                     const OpLatencyFn& latency_fn) {
  Dfg dfg = BuildDfg(net, device, latency_fn);
  return Replay(dfg, ReplayQueues(device)).iteration_seconds;
}

}  // namespace cdmpp

#include "src/obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cdmpp {
namespace obs {

LogHistogram::LogHistogram() : zero_count_(0) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

int LogHistogram::BucketIndex(double value) {
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5, 1)
  if (exp < kMinExp) {
    return 0;
  }
  if (exp > kMaxExp) {
    return kNumBuckets - 1;
  }
  int sub = static_cast<int>((frac - 0.5) * (2 * kSubBuckets));
  sub = std::min(std::max(sub, 0), kSubBuckets - 1);
  return (exp - kMinExp) * kSubBuckets + sub;
}

double LogHistogram::BucketMidpoint(int index) {
  const int exp = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const double mid_frac = 0.5 + (sub + 0.5) / (2.0 * kSubBuckets);
  return std::ldexp(mid_frac, exp);
}

// All bucket traffic below is memory_order_relaxed by design: every bucket
// is an independent uint64 tally and the histogram carries no out-of-band
// payload, so there is nothing for acquire/release to order. Readers
// (Snapshot/TotalCount/Merge) take a statistically-consistent sweep — a
// concurrent Add may land in either the old or new reading, which is within
// the instrument's contract. Anything that must observe "all samples up to
// event X" must create its own happens-before with the recording threads
// (e.g. ServerStats snapshots after joining the workers in Shutdown).
void LogHistogram::Add(double value, uint64_t n) {
  if (n == 0) {
    return;
  }
  if (!(value > 0.0)) {  // negatives, zero, and NaN all land in the zero bucket
    zero_count_.fetch_add(n, std::memory_order_relaxed);
    return;
  }
  buckets_[BucketIndex(value)].fetch_add(n, std::memory_order_relaxed);
}

HistogramSnapshot LogHistogram::Snapshot() const {
  HistogramSnapshot s;
  s.zero_count = zero_count_.load(std::memory_order_relaxed);
  s.buckets.resize(kNumBuckets);
  uint64_t total = s.zero_count;
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += s.buckets[i];
  }
  s.count = total;
  return s;
}

void LogHistogram::Merge(const LogHistogram& other) {
  zero_count_.fetch_add(other.zero_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
}

void LogHistogram::Reset() {
  zero_count_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

uint64_t LogHistogram::TotalCount() const {
  uint64_t total = zero_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::min(std::max(p, 0.0), 100.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  rank = std::min(std::max<uint64_t>(rank, 1), count);
  if (rank <= zero_count) {
    return 0.0;
  }
  uint64_t cumulative = zero_count;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return LogHistogram::BucketMidpoint(static_cast<int>(i));
    }
  }
  return LogHistogram::BucketMidpoint(LogHistogram::kNumBuckets - 1);
}

double HistogramSnapshot::Mean() const {
  if (count == 0) {
    return 0.0;
  }
  double sum = 0.0;  // zero bucket contributes 0
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] != 0) {
      sum += static_cast<double>(buckets[i]) * LogHistogram::BucketMidpoint(static_cast<int>(i));
    }
  }
  return sum / static_cast<double>(count);
}

double HistogramSnapshot::MinValue() const {
  if (zero_count > 0) {
    return 0.0;
  }
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] != 0) {
      return LogHistogram::BucketMidpoint(static_cast<int>(i));
    }
  }
  return 0.0;
}

double HistogramSnapshot::MaxValue() const {
  for (size_t i = buckets.size(); i > 0; --i) {
    if (buckets[i - 1] != 0) {
      return LogHistogram::BucketMidpoint(static_cast<int>(i - 1));
    }
  }
  return 0.0;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.empty()) {
    buckets.resize(LogHistogram::kNumBuckets, 0);
  }
  count += other.count;
  zero_count += other.zero_count;
  for (size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

HistogramSnapshot HistogramSnapshot::Delta(const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  d.zero_count = zero_count >= earlier.zero_count ? zero_count - earlier.zero_count : 0;
  d.buckets.resize(buckets.size());
  uint64_t total = d.zero_count;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t prev = i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    d.buckets[i] = buckets[i] >= prev ? buckets[i] - prev : 0;
    total += d.buckets[i];
  }
  d.count = total;
  return d;
}

std::string HistogramSnapshot::ToString(const char* unit) const {
  if (count == 0) {
    return "";
  }
  // Collapse sub-buckets into per-octave rows over the occupied range: the
  // display wants readable decades, not 64 rows per power of two.
  constexpr int kSub = LogHistogram::kSubBuckets;
  const int num_octaves = LogHistogram::kNumOctaves;
  std::vector<uint64_t> octave_counts(static_cast<size_t>(num_octaves), 0);
  int first = num_octaves, last = -1;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const int oct = static_cast<int>(i) / kSub;
    octave_counts[static_cast<size_t>(oct)] += buckets[i];
    first = std::min(first, oct);
    last = std::max(last, oct);
  }
  uint64_t modal = 1;
  for (int o = 0; o <= last && o >= 0; ++o) {
    modal = std::max(modal, octave_counts[static_cast<size_t>(o)]);
  }
  std::string out;
  char line[160];
  if (zero_count > 0) {
    std::snprintf(line, sizeof(line), "  %20s  %-20s %10llu (%5.1f%%)\n", "<= 0", "",
                  static_cast<unsigned long long>(zero_count),
                  100.0 * static_cast<double>(zero_count) / static_cast<double>(count));
    out += line;
  }
  for (int o = first; o <= last; ++o) {
    const uint64_t n = octave_counts[static_cast<size_t>(o)];
    const int exp = LogHistogram::kMinExp + o;
    const double lo = std::ldexp(0.5, exp);
    const double hi = std::ldexp(1.0, exp);
    char range[48];
    std::snprintf(range, sizeof(range), "[%.4g, %.4g)%s", lo, hi, unit);
    const int bar = n == 0 ? 0 : std::max(1, static_cast<int>(20.0 * static_cast<double>(n) /
                                                              static_cast<double>(modal)));
    char bars[24];
    int b = 0;
    for (; b < bar && b < 20; ++b) {
      bars[b] = '#';
    }
    bars[b] = '\0';
    std::snprintf(line, sizeof(line), "  %20s  %-20s %10llu (%5.1f%%)\n", range, bars,
                  static_cast<unsigned long long>(n),
                  100.0 * static_cast<double>(n) / static_cast<double>(count));
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace cdmpp

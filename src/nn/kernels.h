// The single GEMM kernel layer every matrix product in the library lowers to.
//
// All kernels operate on row-major float buffers with explicit leading
// dimensions (lda/ldb/ldc = elements between consecutive rows), so they work
// on whole matrices and on sub-panels alike. Three transpose variants cover
// everything the NN stack needs:
//
//   GemmNN:  C = beta*C + A  · B     A: [m,k] lda, B: [k,n] ldb, C: [m,n] ldc
//   GemmTN:  C = beta*C + Aᵀ · B     A: [k,m] lda, B: [k,n] ldb, C: [m,n] ldc
//   GemmNT:  C = beta*C + A  · Bᵀ    A: [m,k] lda, B: [n,k] ldb, C: [m,n] ldc
//
// The `beta` accumulate parameter fuses "grad += MatMul(...)" patterns
// (beta = 1) and plain products (beta = 0, C is not read) without
// temporaries. GemmBiasAct additionally fuses the Linear-layer epilogue
// act(A·B + bias) into the kernel's register tile.
//
// Implementation contract (relied on by src/serve/ and tests):
//   * The optimized entry points dispatch at runtime between a portable
//     scalar body and hand-written AVX2 (+FMA) microkernels — see
//     src/support/cpu_features.h and the CDMPP_KERNEL_ISA override. Both are
//     register-tiled over 4-row A panels, vectorized/blocked across output
//     columns, and parallelized over row panels via ParallelFor once the
//     product is large enough to pay for the fork.
//   * Every C element is accumulated over p = 0..k-1 in ascending order,
//     independent of the row-panel partition, the register tile a row lands
//     in, and the batch size — so within a given ISA results are bitwise
//     run-to-run deterministic and batch-size-invariant
//     (PredictBatched == PredictAst). Across ISAs results agree to ~1e-6
//     relative, not bitwise: the AVX2 path rounds each multiply-add once
//     (FMA) where the scalar path rounds twice. Degenerate shapes (any of
//     m/n/k zero) are exact under every ISA: beta = 0 zero-fills, k = 0 with
//     beta != 0 is a pure scale of C, and empty C is untouched.
//   * The *Ref kernels are the naive triple loops; they are the golden
//     reference the dispatched kernels are tested against and the baseline
//     bench_gemm reports speedups over.
#ifndef SRC_NN_KERNELS_H_
#define SRC_NN_KERNELS_H_

namespace cdmpp {
namespace kernels {

enum class Activation { kNone, kRelu };

inline float ApplyActivation(float v, Activation act) {
  return act == Activation::kRelu ? (v > 0.0f ? v : 0.0f) : v;
}

// ---- Naive reference kernels (golden baseline). ----------------------------
void GemmNNRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc);
void GemmTNRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc);
void GemmNTRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc);

// ---- Optimized blocked + parallel kernels. ----------------------------------
void GemmNN(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc);
void GemmTN(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc);
void GemmNT(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc);

// C = act(A·B + bias). `bias` is a length-n row broadcast over every output
// row (may be null for "no bias"). This is the Linear-layer forward fused
// into one pass over C; beta is implicitly 0.
void GemmBiasAct(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
                 const float* bias, Activation act, float* c, int ldc);

}  // namespace kernels
}  // namespace cdmpp

#endif  // SRC_NN_KERNELS_H_

#include "src/nn/workspace.h"

namespace cdmpp {

Matrix* Workspace::NewMatrix(int rows, int cols) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Matrix>());
  }
  Matrix* m = slots_[cursor_].get();
  ++cursor_;
  m->Resize(rows, cols);
  return m;
}

size_t Workspace::pooled_floats() const {
  size_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->capacity();
  }
  return total;
}

}  // namespace cdmpp

// Thread-safe serving counters and the derived metrics block reported by the
// load-generator benchmark and the quickstart example.
//
// Counters are lock-free atomics on the hot path; request latencies go into a
// bounded mutex-guarded sample buffer that the snapshot reduces to p50/p99
// with the shared Percentiles helper (src/support/stats.h), which is
// well-defined for empty (0/0) and single-sample buffers.
#ifndef SRC_SERVE_SERVER_STATS_H_
#define SRC_SERVE_SERVER_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cdmpp {

// Point-in-time view of the service, with all derived metrics precomputed.
struct ServerStatsSnapshot {
  uint64_t requests = 0;        // completed requests (cache hits included)
  uint64_t cache_hits = 0;      // requests answered without a forward pass
  uint64_t coalesced = 0;       // duplicate in-flight requests merged into one row
  uint64_t forward_passes = 0;  // model forward invocations (one per leaf bucket chunk)
  uint64_t batched_rows = 0;    // unique rows summed over all forward passes

  double wall_seconds = 0.0;
  double qps = 0.0;                  // requests / wall_seconds
  double cache_hit_rate = 0.0;       // cache_hits / requests
  double mean_batch_occupancy = 0.0; // batched_rows / forward_passes
  double p50_latency_ms = 0.0;       // submit-to-completion, sampled
  double p99_latency_ms = 0.0;

  // Kernel ISA the data plane dispatches to ("scalar" or "avx2") at snapshot
  // time, so serving numbers are attributable to the code path that ran.
  std::string kernel_isa;
  // Numeric tier the forwards ran in ("fp32" or "int8"). ServerStats itself
  // doesn't know the serving mode, so Snapshot() fills in the process default
  // (CDMPP_PRECISION) and PredictionService::Stats() overrides it with the
  // service's configured precision.
  std::string precision;

  std::string ToString() const;
};

class ServerStats {
 public:
  // `max_latency_samples` bounds the latency buffer; once full, further
  // latencies are counted but not sampled (the percentiles stay a snapshot of
  // the first N requests, which is enough for the benchmark sweeps).
  explicit ServerStats(size_t max_latency_samples = 1 << 20);

  void RecordRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  // `n` requests answered from the cache (a queued duplicate group that a
  // concurrent worker's insert resolved counts one hit per request, matching
  // the Submit-path accounting).
  void RecordCacheHits(uint64_t n = 1) { cache_hits_.fetch_add(n, std::memory_order_relaxed); }
  void RecordCoalesced(uint64_t n) { coalesced_.fetch_add(n, std::memory_order_relaxed); }
  void RecordForwardPasses(uint64_t passes, uint64_t rows) {
    forward_passes_.fetch_add(passes, std::memory_order_relaxed);
    batched_rows_.fetch_add(rows, std::memory_order_relaxed);
  }
  void RecordLatencyMs(double ms);

  ServerStatsSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> forward_passes_{0};
  std::atomic<uint64_t> batched_rows_{0};

  mutable std::mutex latency_mu_;
  std::vector<double> latency_ms_;
  size_t max_latency_samples_;

  std::chrono::steady_clock::time_point start_;
};

}  // namespace cdmpp

#endif  // SRC_SERVE_SERVER_STATS_H_

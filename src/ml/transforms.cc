#include "src/ml/transforms.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"
#include "src/support/stats.h"

namespace cdmpp {

const char* NormKindName(NormKind kind) {
  switch (kind) {
    case NormKind::kNone:
      return "original Y";
    case NormKind::kBoxCox:
      return "Box-Cox";
    case NormKind::kYeoJohnson:
      return "Yeo-Johnson";
    case NormKind::kQuantile:
      return "Quantile";
  }
  return "unknown";
}

std::vector<double> LabelTransform::TransformAll(const std::vector<double>& y) const {
  std::vector<double> out(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    out[i] = Transform(y[i]);
  }
  return out;
}

std::vector<double> LabelTransform::InverseAll(const std::vector<double>& t) const {
  std::vector<double> out(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    out[i] = Inverse(t[i]);
  }
  return out;
}

namespace {

// Golden-section maximization of `f` over [lo, hi].
template <typename F>
double GoldenSectionMax(F f, double lo, double hi, int iters = 60) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo;
  double b = hi;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < iters; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = f(x1);
    }
  }
  return (a + b) / 2.0;
}

double BoxCoxCore(double y, double lambda) {
  if (std::abs(lambda) < 1e-9) {
    return std::log(y);
  }
  return (std::pow(y, lambda) - 1.0) / lambda;
}

double BoxCoxCoreInverse(double t, double lambda) {
  if (std::abs(lambda) < 1e-9) {
    return std::exp(t);
  }
  double base = lambda * t + 1.0;
  // Clamp to the transform's valid range to stay finite for extrapolated
  // predictions.
  base = std::max(base, 1e-12);
  return std::pow(base, 1.0 / lambda);
}

// Profile log-likelihood of the Box-Cox parameter (Box & Cox 1964):
//   llf = -n/2 log(var(t)) + (lambda - 1) * sum(log y)
double BoxCoxLogLikelihood(const std::vector<double>& y, double lambda) {
  std::vector<double> t(y.size());
  double sum_log = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    t[i] = BoxCoxCore(y[i], lambda);
    sum_log += std::log(y[i]);
  }
  double var = Stddev(t);
  var = var * var;
  if (var <= 0.0) {
    return -1e30;
  }
  double n = static_cast<double>(y.size());
  return -n / 2.0 * std::log(var) + (lambda - 1.0) * sum_log;
}

double YeoJohnsonCore(double y, double lambda) {
  if (y >= 0.0) {
    if (std::abs(lambda) < 1e-9) {
      return std::log1p(y);
    }
    return (std::pow(y + 1.0, lambda) - 1.0) / lambda;
  }
  double two_ml = 2.0 - lambda;
  if (std::abs(two_ml) < 1e-9) {
    return -std::log1p(-y);
  }
  return -(std::pow(1.0 - y, two_ml) - 1.0) / two_ml;
}

double YeoJohnsonCoreInverse(double t, double lambda) {
  if (t >= 0.0) {
    if (std::abs(lambda) < 1e-9) {
      return std::expm1(t);
    }
    double base = std::max(lambda * t + 1.0, 1e-12);
    return std::pow(base, 1.0 / lambda) - 1.0;
  }
  double two_ml = 2.0 - lambda;
  if (std::abs(two_ml) < 1e-9) {
    return -std::expm1(-t);
  }
  double base = std::max(1.0 - two_ml * t, 1e-12);
  return 1.0 - std::pow(base, 1.0 / two_ml);
}

double YeoJohnsonLogLikelihood(const std::vector<double>& y, double lambda) {
  std::vector<double> t(y.size());
  double jacobian = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    t[i] = YeoJohnsonCore(y[i], lambda);
    jacobian += (lambda - 1.0) * std::copysign(1.0, y[i]) * std::log1p(std::abs(y[i]));
  }
  double var = Stddev(t);
  var = var * var;
  if (var <= 0.0) {
    return -1e30;
  }
  double n = static_cast<double>(y.size());
  return -n / 2.0 * std::log(var) + jacobian;
}

}  // namespace

// ---------------- BoxCox ----------------

void BoxCoxTransform::Fit(const std::vector<double>& y) {
  CDMPP_CHECK(!y.empty());
  for (double v : y) {
    CDMPP_CHECK_MSG(v > 0.0, "Box-Cox requires positive labels");
  }
  lambda_ = GoldenSectionMax([&](double l) { return BoxCoxLogLikelihood(y, l); }, -2.0, 2.0);
  std::vector<double> t(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    t[i] = BoxCoxCore(y[i], lambda_);
  }
  mean_ = Mean(t);
  std_ = std::max(1e-12, Stddev(t));
}

double BoxCoxTransform::Transform(double y) const {
  return (BoxCoxCore(std::max(y, 1e-12), lambda_) - mean_) / std_ + kLabelShift;
}

double BoxCoxTransform::Inverse(double t) const {
  return BoxCoxCoreInverse((t - kLabelShift) * std_ + mean_, lambda_);
}

// ---------------- YeoJohnson ----------------

void YeoJohnsonTransform::Fit(const std::vector<double>& y) {
  CDMPP_CHECK(!y.empty());
  lambda_ = GoldenSectionMax([&](double l) { return YeoJohnsonLogLikelihood(y, l); }, -2.0, 2.0);
  std::vector<double> t(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    t[i] = YeoJohnsonCore(y[i], lambda_);
  }
  mean_ = Mean(t);
  std_ = std::max(1e-12, Stddev(t));
}

double YeoJohnsonTransform::Transform(double y) const {
  return (YeoJohnsonCore(y, lambda_) - mean_) / std_ + kLabelShift;
}

double YeoJohnsonTransform::Inverse(double t) const {
  return YeoJohnsonCoreInverse((t - kLabelShift) * std_ + mean_, lambda_);
}

// ---------------- Quantile ----------------

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double InverseNormalCdf(double p) {
  // Acklam's algorithm.
  CDMPP_CHECK(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

void QuantileTransform::Fit(const std::vector<double>& y) {
  CDMPP_CHECK(!y.empty());
  std::vector<double> sorted = y;
  std::sort(sorted.begin(), sorted.end());
  quantiles_.resize(static_cast<size_t>(num_quantiles_));
  for (int q = 0; q < num_quantiles_; ++q) {
    double pos = static_cast<double>(q) / (num_quantiles_ - 1) *
                 static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    quantiles_[static_cast<size_t>(q)] = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
}

double QuantileTransform::Transform(double y) const {
  CDMPP_CHECK(!quantiles_.empty());
  // Empirical CDF via the quantile grid, clamped away from 0/1.
  auto it = std::lower_bound(quantiles_.begin(), quantiles_.end(), y);
  double p;
  if (it == quantiles_.begin()) {
    p = 0.0;
  } else if (it == quantiles_.end()) {
    p = 1.0;
  } else {
    size_t hi = static_cast<size_t>(it - quantiles_.begin());
    size_t lo = hi - 1;
    double denom = quantiles_[hi] - quantiles_[lo];
    double frac = denom > 0.0 ? (y - quantiles_[lo]) / denom : 0.0;
    p = (static_cast<double>(lo) + frac) / (num_quantiles_ - 1);
  }
  p = std::clamp(p, 1e-6, 1.0 - 1e-6);
  return InverseNormalCdf(p) + kLabelShift;
}

double QuantileTransform::Inverse(double t) const {
  CDMPP_CHECK(!quantiles_.empty());
  double p = std::clamp(NormalCdf(t - kLabelShift), 0.0, 1.0);
  double pos = p * (num_quantiles_ - 1);
  size_t lo = std::min(static_cast<size_t>(pos), quantiles_.size() - 1);
  size_t hi = std::min(lo + 1, quantiles_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return quantiles_[lo] * (1.0 - frac) + quantiles_[hi] * frac;
}

// ---------------- Identity ----------------

void IdentityTransform::Fit(const std::vector<double>& y) {
  CDMPP_CHECK(!y.empty());
  mean_ = Mean(y);
  std_ = std::max(1e-12, Stddev(y));
}

double IdentityTransform::Transform(double y) const { return (y - mean_) / std_ + kLabelShift; }

double IdentityTransform::Inverse(double t) const { return (t - kLabelShift) * std_ + mean_; }

std::unique_ptr<LabelTransform> MakeLabelTransform(NormKind kind) {
  switch (kind) {
    case NormKind::kNone:
      return std::make_unique<IdentityTransform>();
    case NormKind::kBoxCox:
      return std::make_unique<BoxCoxTransform>();
    case NormKind::kYeoJohnson:
      return std::make_unique<YeoJohnsonTransform>();
    case NormKind::kQuantile:
      return std::make_unique<QuantileTransform>();
  }
  return nullptr;
}

}  // namespace cdmpp

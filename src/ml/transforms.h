// Label normalization methods compared in paper §5.4 / Table 3:
// Box-Cox (MLE-fitted lambda), Yeo-Johnson, Quantile-to-normal, and identity.
// All transforms fit on training labels and are invertible so errors are
// measured in the original latency space.
#ifndef SRC_ML_TRANSFORMS_H_
#define SRC_ML_TRANSFORMS_H_

#include <memory>
#include <string>
#include <vector>

namespace cdmpp {

enum class NormKind { kNone, kBoxCox, kYeoJohnson, kQuantile };

// All transforms standardize the post-transform labels and then shift them by
// this constant so the training space is (mostly) positive. This keeps the
// relative-error objectives of the loss ablation (paper Tables 4/5) well
// defined in transformed space; Inverse subtracts it before inverting.
constexpr double kLabelShift = 4.0;

const char* NormKindName(NormKind kind);

// Fitted, invertible 1-D label transform. After Fit, Transform maps labels to
// an approximately standard-normal space (each concrete transform also
// standardizes by the post-transform mean/std); Inverse undoes it exactly
// (up to floating point) for values in the fitted range.
class LabelTransform {
 public:
  virtual ~LabelTransform() = default;
  virtual void Fit(const std::vector<double>& y) = 0;
  virtual double Transform(double y) const = 0;
  virtual double Inverse(double t) const = 0;

  std::vector<double> TransformAll(const std::vector<double>& y) const;
  std::vector<double> InverseAll(const std::vector<double>& t) const;
};

// Factory for the four methods of Table 3.
std::unique_ptr<LabelTransform> MakeLabelTransform(NormKind kind);

// ---- Concrete transforms (exposed for unit tests) ---------------------------

// Box-Cox: t = (y^lambda - 1) / lambda (lambda != 0), log(y) otherwise;
// requires y > 0. Lambda is fitted by maximizing the profile log-likelihood
// with golden-section search over [-2, 2].
class BoxCoxTransform : public LabelTransform {
 public:
  void Fit(const std::vector<double>& y) override;
  double Transform(double y) const override;
  double Inverse(double t) const override;
  double lambda() const { return lambda_; }

 private:
  double lambda_ = 0.0;
  double mean_ = 0.0;
  double std_ = 1.0;
};

// Yeo-Johnson: Box-Cox extended to zero/negative values.
class YeoJohnsonTransform : public LabelTransform {
 public:
  void Fit(const std::vector<double>& y) override;
  double Transform(double y) const override;
  double Inverse(double t) const override;
  double lambda() const { return lambda_; }

 private:
  double lambda_ = 1.0;
  double mean_ = 0.0;
  double std_ = 1.0;
};

// Quantile transform to a standard normal via the empirical CDF (linear
// interpolation between stored quantiles) composed with probit.
class QuantileTransform : public LabelTransform {
 public:
  explicit QuantileTransform(int num_quantiles = 256) : num_quantiles_(num_quantiles) {}
  void Fit(const std::vector<double>& y) override;
  double Transform(double y) const override;
  double Inverse(double t) const override;

 private:
  int num_quantiles_;
  std::vector<double> quantiles_;
};

// Identity with standardization (mean/std), the "original Y" column.
class IdentityTransform : public LabelTransform {
 public:
  void Fit(const std::vector<double>& y) override;
  double Transform(double y) const override;
  double Inverse(double t) const override;

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
};

// Inverse standard-normal CDF (Acklam's rational approximation), |err|<1e-8.
double InverseNormalCdf(double p);
// Standard-normal CDF.
double NormalCdf(double x);

}  // namespace cdmpp

#endif  // SRC_ML_TRANSFORMS_H_

// Compact AST extraction (paper §4.1) and pre-order positional encoding
// (paper §4.2).
//
// A tensor program's AST (loop nodes + computation leaves) is converted to a
// regular structure: one fixed-width computation vector per leaf plus the
// ordering vector of pre-order positions. Loop information (nesting level,
// extents, annotations) is folded into the leaf vectors, so no information
// relevant to performance is lost while the feature shape stays regular.
#ifndef SRC_AST_COMPACT_AST_H_
#define SRC_AST_COMPACT_AST_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/tir/program.h"

namespace cdmpp {

// Width of one computation vector. Layout (all log1p-compressed magnitudes
// unless noted):
//   [0..5]   op counts per iteration: adds, muls, fmas, divs, specials, cmps
//   [6..7]   loads / stores per iteration
//   [8]      iterations (product of ancestor loop extents)
//   [9]      loop depth
//   [10..11] number of spatial / reduction ancestor loops
//   [12..17] extents of up to 6 ancestor loops, outermost first (0-padded)
//   [18]     innermost loop extent
//   [19..20] vectorize flag, vector length
//   [21]     unroll flag
//   [22..23] parallel flag, parallel extent
//   [24..25] read / write footprint bytes
//   [26..28] fraction of accesses per stride class (contiguous/strided/gather)
//   [29..34] one-hot ComputeKind
//   [35]     has-reduction-ancestor flag
//   [36]     total leaf flops (iterations x flops/iter)
//   [37]     arithmetic intensity (flops / bytes moved)
constexpr int kFeatDim = 38;

// Cap on ancestor-extent slots ([12..17] above).
constexpr int kMaxLoopSlots = 6;

using ComputationVector = std::array<float, kFeatDim>;

// The regular, training-friendly representation of one tensor program.
struct CompactAst {
  int num_nodes = 0;   // loops + leaves in the full AST
  int num_leaves = 0;  // == leaves.size()
  int max_depth = 0;
  std::vector<ComputationVector> leaves;
  // Pre-order index of each leaf within the full AST (the ordering vector V
  // of Fig. 1(d)); strictly increasing.
  std::vector<int> ordering;

  // Stable 64-bit content hash (FNV-1a over node counts, the ordering vector,
  // and the raw bit patterns of every leaf feature). Equal ASTs hash equal
  // across runs and processes, so the hash is usable as a persistent cache
  // key; see the serving-layer prediction cache (src/serve/).
  uint64_t Hash() const;
};

// Builds the compact AST of a scheduled program.
CompactAst ExtractCompactAst(const TensorProgram& prog);

// Builds the computation vector of a single leaf in its loop context.
// (Also used by the Tiramisu-style baseline during AST recursion.)
ComputationVector BuildComputationVector(const LeafContext& leaf);

// Sinusoidal positional encoding of one ordering position (paper §4.2):
//   pe[2d]   = sin(v / Theta^{2d / kFeatDim})
//   pe[2d+1] = cos(v / Theta^{2d / kFeatDim})
ComputationVector PositionalEncoding(int ordering_value, double theta);

// Flattens the compact AST to a row-major [num_leaves x kFeatDim] feature
// buffer; when use_pe is set, the positional encoding of each leaf's ordering
// value is added element-wise to its computation vector.
std::vector<float> EncodeFeatures(const CompactAst& ast, bool use_pe,
                                  double theta = 10000.0);

// Mean over leaves of the encoded features — a fixed-size summary used by the
// flat-feature baselines (XGBoost) and the KMeans sampler.
std::vector<float> AggregateFeatures(const CompactAst& ast);

}  // namespace cdmpp

#endif  // SRC_AST_COMPACT_AST_H_

// Serving quickstart: put the CDMPP cost model behind the batched inference
// service and query it like an autotuner would.
//
//  1. Pre-train a small predictor (as in examples/quickstart.cpp).
//  2. Start a PredictionService: worker pool + leaf-count batching +
//     sharded prediction cache.
//  3. Issue blocking Predict calls and async Submit calls.
//  4. Read the ServerStats block (QPS, hit rate, occupancy, tail latency).
//
// Build & run:  ./build/examples/serve_quickstart
#include <cstdio>
#include <future>
#include <vector>

#include "src/serve/prediction_service.h"
#include "src/tir/schedule.h"

using namespace cdmpp;

int main() {
  // --- 1. Train a small cost model on a T4 slice. ---
  DatasetOptions opts;
  opts.device_ids = {0};
  opts.schedules_per_task = 3;
  opts.max_networks = 8;
  opts.seed = 1;
  Dataset ds = BuildDataset(opts);
  PredictorConfig cfg;
  cfg.epochs = 8;
  CdmppPredictor predictor(cfg);
  Rng rng(2);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  std::printf("Pre-training on %zu samples...\n", split.train.size());
  predictor.Pretrain(ds, split.train, split.valid);

  // --- 2. Serve it. ---
  ServeOptions serve_opts;
  serve_opts.num_workers = 2;
  serve_opts.max_batch_size = 64;
  serve_opts.batch_window_ms = 0.5;
  PredictionService service(&predictor, serve_opts);
  std::printf("Service up: %d workers, batch window %.1fms, cache capacity %zu.\n\n",
              serve_opts.num_workers, serve_opts.batch_window_ms, serve_opts.cache_capacity);

  // --- 3a. Blocking queries: compare two candidate schedules of one task. ---
  const Task& task = ds.tasks[1].task;
  Rng srng(3);
  CompactAst candidate_a = ExtractCompactAst(GenerateProgram(task, SampleSchedule(task, &srng)));
  CompactAst candidate_b = ExtractCompactAst(GenerateProgram(task, SampleSchedule(task, &srng)));
  double lat_a = service.Predict(candidate_a, /*device_id=*/0);
  double lat_b = service.Predict(candidate_b, /*device_id=*/0);
  std::printf("Task '%s' on T4: schedule A %.4fms vs schedule B %.4fms -> keep %s.\n",
              task.name.c_str(), lat_a * 1e3, lat_b * 1e3, lat_a <= lat_b ? "A" : "B");

  // A repeat of the same query is a cache hit (no forward pass).
  service.Predict(candidate_a, 0);

  // --- 3b. Async burst: an autotuner scoring a population concurrently. ---
  std::vector<CompactAst> population;
  for (int i = 0; i < 64; ++i) {
    population.push_back(ExtractCompactAst(GenerateProgram(task, SampleSchedule(task, &srng))));
  }
  std::vector<std::future<double>> futures;
  futures.reserve(population.size());
  for (const CompactAst& ast : population) {
    futures.push_back(service.Submit(ast, /*device_id=*/0));
  }
  double best = 1e30;
  int best_idx = -1;
  for (size_t i = 0; i < futures.size(); ++i) {
    double lat = futures[i].get();
    if (lat < best) {
      best = lat;
      best_idx = static_cast<int>(i);
    }
  }
  std::printf("Scored a population of %zu candidates; best is #%d at %.4fms.\n\n",
              population.size(), best_idx, best * 1e3);

  // --- 4. Server stats. ---
  std::printf("Server stats: %s\n", service.Stats().ToString().c_str());
  return 0;
}

// Streaming log-bucketed latency histogram (HDR-style): fixed relative error,
// constant memory, lock-free concurrent recording, mergeable snapshots.
//
// Buckets are (octave, sub-bucket) pairs derived from frexp: each power-of-two
// octave is split into kSubBuckets linear sub-buckets, so the bucket midpoint
// is within ~0.8% relative error of any value it absorbs (well inside the 2%
// contract the tests assert). Recording is two relaxed atomic increments —
// safe from any number of threads, no mutex, no allocation — which is what
// lets ServerStats keep percentiles over the ENTIRE run instead of a bounded
// first-N sample reservoir.
//
// This header depends only on the C++ standard library so that src/support/
// may include obs/ without inverting the layering.
#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cdmpp {
namespace obs {

// Immutable copy of a histogram's bucket counts. Cheap enough to pass around
// (one dense count vector); supports percentile queries, merge (combine two
// runs) and delta (per-interval windows from two cumulative snapshots).
struct HistogramSnapshot {
  uint64_t count = 0;       // total recorded values, zero/negative included
  uint64_t zero_count = 0;  // values <= 0 (clamped into a dedicated bucket)
  std::vector<uint64_t> buckets;  // dense, LogHistogram::kNumBuckets entries

  bool empty() const { return count == 0; }

  // Nearest-rank percentile, p in [0, 100]; returns the bucket midpoint
  // (<= ~0.8% relative error). 0 for an empty snapshot.
  double Percentile(double p) const;
  // Bucket-midpoint-weighted mean; 0 for an empty snapshot.
  double Mean() const;
  // Midpoints of the lowest/highest occupied buckets; 0 for an empty snapshot.
  double MinValue() const;
  double MaxValue() const;

  // Element-wise sum; combines two independent runs. Bucket layouts always
  // match (they are compile-time constants of LogHistogram).
  void Merge(const HistogramSnapshot& other);
  // This snapshot minus an EARLIER snapshot of the same histogram: the
  // per-interval window between the two. Counts are monotonic, so every
  // difference is well-defined; entries are clamped at 0 defensively.
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;

  // Multi-line text rendering: one row per occupied octave with a #-bar
  // scaled to the modal octave, plus a zero row when present. Empty string
  // for an empty snapshot.
  std::string ToString(const char* unit = "ms") const;
};

class LogHistogram {
 public:
  // 64 linear sub-buckets per power-of-two octave: worst-case midpoint
  // relative error = 1 / (2 * (2*64)) / 0.5 ~= 0.78%.
  static constexpr int kSubBucketsLog2 = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketsLog2;
  // frexp exponent range covered exactly; values outside clamp to the edge
  // buckets. [2^-41, 2^44) spans sub-picosecond to ~half-a-millennium in ms.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 44;
  static constexpr int kNumOctaves = kMaxExp - kMinExp + 1;
  static constexpr int kNumBuckets = kNumOctaves * kSubBuckets;

  LogHistogram();

  // Thread-safe, lock-free, allocation-free: two relaxed increments.
  void Record(double value) { Add(value, 1); }
  void Add(double value, uint64_t n);

  // Consistent-enough copy under concurrent recording: each bucket is read
  // atomically; a racing Record may or may not be included.
  HistogramSnapshot Snapshot() const;

  // Folds `other`'s current counts into this histogram.
  void Merge(const LogHistogram& other);

  // Zeroes every bucket. Safe under concurrent recording (racing increments
  // land in the new window).
  void Reset();

  uint64_t TotalCount() const;

  // Bucket index for a value (>= 0, < kNumBuckets; values <= 0 go to the
  // zero bucket which is tracked separately) and the midpoint a bucket
  // reports back. Exposed for the accuracy tests.
  static int BucketIndex(double value);
  static double BucketMidpoint(int index);

 private:
  std::atomic<uint64_t> zero_count_;
  std::atomic<uint64_t> buckets_[kNumBuckets];
};

}  // namespace obs
}  // namespace cdmpp

#endif  // SRC_OBS_HISTOGRAM_H_

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/autotuner.h"
#include "src/dataset/dataset.h"
#include "src/search/cost_model_client.h"
#include "src/search/sa_search.h"
#include "src/search/schedule_search.h"
#include "src/serve/prediction_service.h"
#include "src/support/parallel_for.h"

namespace cdmpp {
namespace {

Task SearchTask() {
  Task t;
  t.kind = OpKind::kDense;
  t.dims = {256, 512, 1024};
  t.name = "search_mm";
  return t;
}

TEST(SearchTest, BestLatencyNonIncreasing) {
  SearchOptions opts;
  opts.rounds = 10;
  opts.population = 12;
  opts.measured_per_round = 3;
  // Oracle cost model = the simulator itself.
  auto oracle = [](const CompactAst&, int) { return 0.0; };
  (void)oracle;
  const DeviceSpec& dev = DeviceByName("T4");
  SearchCurve curve = EvolutionarySearch(
      SearchTask(), dev,
      [&](const CompactAst& ast, int) {
        // A weak heuristic cost model: prefer vectorized/parallel programs.
        double score = 1.0;
        for (const ComputationVector& cv : ast.leaves) {
          score -= 0.1 * cv[19] + 0.1 * cv[22];
        }
        return score;
      },
      opts);
  ASSERT_EQ(curve.best_after_round.size(), 10u);
  for (size_t i = 1; i < curve.best_after_round.size(); ++i) {
    EXPECT_LE(curve.best_after_round[i], curve.best_after_round[i - 1] + 1e-12);
  }
  EXPECT_EQ(curve.total_measurements, 30);
  EXPECT_GT(curve.final_best, 0.0);
}

TEST(SearchTest, OracleCostModelBeatsAntiOracle) {
  // With the simulator as the cost model, search must find schedules at
  // least as good as an adversarial (inverted) cost model, measuring the
  // same number of candidates.
  SearchOptions opts;
  opts.rounds = 15;
  opts.population = 16;
  opts.measured_per_round = 2;
  const DeviceSpec& dev = DeviceByName("T4");
  Task task = SearchTask();

  auto oracle = [&](const CompactAst&, int) { return 0.0; };
  (void)oracle;
  SearchCurve good = EvolutionarySearch(
      task, dev,
      [&](const CompactAst& ast, int) {
        (void)ast;
        return 0.0;  // replaced below
      },
      opts);
  // Proper oracle: regenerate the latency via structural features is not
  // possible from the AST alone in this lambda, so approximate the oracle by
  // a monotone proxy of the simulator: fewer expected seconds ~ more
  // parallel/vectorized and cache-friendly tiles. Instead, compare the
  // simulator-guided random search against anti-guided search:
  SearchCurve anti = EvolutionarySearch(
      task, dev,
      [&](const CompactAst& ast, int) {
        double score = 0.0;
        for (const ComputationVector& cv : ast.leaves) {
          score += cv[19] + cv[22];  // prefers NOT annotated (higher = worse rank)
        }
        return score;
      },
      opts);
  SearchCurve pro = EvolutionarySearch(
      task, dev,
      [&](const CompactAst& ast, int) {
        double score = 0.0;
        for (const ComputationVector& cv : ast.leaves) {
          score -= cv[19] + cv[22];
        }
        return score;
      },
      opts);
  (void)good;
  EXPECT_LE(pro.final_best, anti.final_best * 1.05);
}

TEST(SearchTest, RandomSearchAlsoImproves) {
  SearchOptions opts;
  opts.rounds = 12;
  opts.measured_per_round = 4;
  SearchCurve curve = RandomSearch(SearchTask(), DeviceByName("V100"), opts);
  EXPECT_EQ(curve.total_measurements, 48);
  EXPECT_LE(curve.best_after_round.back(), curve.best_after_round.front());
}

TEST(SearchTest, DeterministicGivenSeed) {
  SearchOptions opts;
  opts.rounds = 5;
  auto cm = [](const CompactAst& ast, int) {
    return static_cast<double>(ast.num_nodes);
  };
  SearchCurve a = EvolutionarySearch(SearchTask(), DeviceByName("T4"), cm, opts);
  SearchCurve b = EvolutionarySearch(SearchTask(), DeviceByName("T4"), cm, opts);
  EXPECT_EQ(a.final_best, b.final_best);
}

// ---- Client-seam tests against a trained predictor -------------------------

// One tiny trained world shared by the client/parity tests (training dominates
// the suite's runtime, so it runs once).
struct SearchWorld {
  Dataset ds;
  std::unique_ptr<CdmppPredictor> predictor;
  std::vector<CompactAst> workload;  // distinct free-standing ASTs
  Task search_task;
};

SearchWorld& World() {
  static SearchWorld* world = [] {
    auto* w = new SearchWorld();
    DatasetOptions opts;
    opts.device_ids = {0};
    opts.schedules_per_task = 2;
    opts.max_networks = 5;
    opts.seed = 11;
    w->ds = BuildDataset(opts);

    PredictorConfig cfg;
    cfg.d_model = 32;
    cfg.num_heads = 2;
    cfg.d_ff = 64;
    cfg.num_layers = 1;
    cfg.z_dim = 16;
    cfg.device_embed_dim = 8;
    cfg.device_hidden_dim = 16;
    cfg.decoder_hidden = {16};
    cfg.epochs = 2;
    cfg.seed = 3;
    w->predictor = std::make_unique<CdmppPredictor>(cfg);
    Rng rng(4);
    SplitIndices split = SplitDataset(w->ds, {0}, {}, &rng);
    w->predictor->Pretrain(w->ds, split.train, split.valid);

    // Fresh schedules the model never trained on, spread over several tasks.
    Rng srng(9);
    for (const TaskInfo& info : w->ds.tasks) {
      for (int k = 0; k < 2; ++k) {
        w->workload.push_back(
            ExtractCompactAst(GenerateProgram(info.task, SampleSchedule(info.task, &srng))));
      }
    }
    // Materialize every head (both precisions) now so neither client's lazy
    // head creation can depend on which side runs first.
    const bool int8_mode = DefaultPrecision() != Precision::kFp32;
    if (int8_mode) {
      w->predictor->PrepareQuantizedInference();
    }
    for (const CompactAst& ast : w->workload) {
      w->predictor->EnsureHead(ast.num_leaves);
      if (int8_mode) {
        w->predictor->EnsureQuantizedHead(ast.num_leaves);
      }
    }
    w->search_task = w->ds.tasks.front().task;
    return w;
  }();
  return *world;
}

ServeOptions TuningServeOptions() {
  ServeOptions opts;
  opts.num_workers = 2;
  opts.max_batch_size = 64;
  // The client bulk-enqueues whole populations; a batch window would only
  // add sleep (see ServeCostModel).
  opts.batch_window_ms = 0.0;
  opts.enable_cache = true;
  return opts;
}

// The seam's core contract: for identical queries, the serve-backed client
// returns bitwise what the direct-serial baseline computes — and in fp32 mode
// both equal the predictor's own single-AST entry point.
TEST(CostClientTest, ServeScoresBitwiseEqualDirect) {
  SearchWorld& w = World();
  std::vector<CostQuery> queries;
  for (const CompactAst& ast : w.workload) {
    queries.push_back(CostQuery{&ast, 0});
  }

  DirectCostModel direct(w.predictor.get());
  std::vector<double> direct_scores;
  direct.ScoreBatch(queries, &direct_scores);

  PredictionService service(w.predictor.get(), TuningServeOptions());
  ServeCostModel serve(&service);
  std::vector<double> serve_scores;
  serve.ScoreBatch(queries, &serve_scores);

  ASSERT_EQ(direct_scores.size(), w.workload.size());
  ASSERT_EQ(serve_scores.size(), w.workload.size());
  for (size_t i = 0; i < w.workload.size(); ++i) {
    EXPECT_EQ(serve_scores[i], direct_scores[i]) << "query " << i;  // bitwise
    if (DefaultPrecision() == Precision::kFp32) {
      EXPECT_EQ(direct_scores[i], w.predictor->PredictAst(w.workload[i], 0))
          << "query " << i;
    }
  }
  EXPECT_EQ(direct.stats().queries, w.workload.size());
  EXPECT_EQ(serve.stats().queries, w.workload.size());
}

// Batch-local duplicates are answered from one submission, and re-visited
// candidates across batches are answered by the service's cache, not the
// forward pass — with bitwise-identical values either way.
TEST(CostClientTest, DedupDrivesCacheHits) {
  SearchWorld& w = World();
  // Every workload AST three times: two of each are batch-local duplicates.
  std::vector<CostQuery> queries;
  for (int rep = 0; rep < 3; ++rep) {
    for (const CompactAst& ast : w.workload) {
      queries.push_back(CostQuery{&ast, 0});
    }
  }
  // Distinct workload entries can still collide by content (two tasks can
  // sample structurally identical schedules) — the dedup identity is the AST
  // hash, so count unique hashes, not vector slots.
  std::set<uint64_t> unique_hashes;
  for (const CompactAst& ast : w.workload) {
    unique_hashes.insert(ast.Hash());
  }
  const size_t uniq = unique_hashes.size();

  PredictionService service(w.predictor.get(), TuningServeOptions());
  ServeCostModel serve(&service);
  std::vector<double> first;
  serve.ScoreBatch(queries, &first);
  EXPECT_EQ(serve.stats().queries, queries.size());
  EXPECT_EQ(serve.stats().submitted, uniq);
  EXPECT_EQ(serve.stats().deduped, queries.size() - uniq);
  EXPECT_GT(serve.stats().deduped, 2 * uniq - 1);
  for (size_t i = 0; i < w.workload.size(); ++i) {
    EXPECT_EQ(first[i], first[i + w.workload.size()]);
    EXPECT_EQ(first[i], first[i + 2 * w.workload.size()]);
  }

  // The same population again: every unique submission is now a cache hit.
  const uint64_t hits_before = service.Stats().cache_hits;
  const uint64_t forwards_before = service.Stats().forward_passes;
  std::vector<double> second;
  serve.ScoreBatch(queries, &second);
  EXPECT_EQ(service.Stats().cache_hits, hits_before + uniq);
  EXPECT_EQ(service.Stats().forward_passes, forwards_before);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(second[i], first[i]);  // cached values are bitwise the computed ones
  }
}

// The cross-client quality-parity gate, in unit-test form: the same seed must
// walk the same candidate sequence and find the exact same schedule whether
// scores come from the direct baseline or the serving tier.
TEST(SearchTest, ServeClientCurveMatchesDirectBitwise) {
  SearchWorld& w = World();
  const DeviceSpec& dev = DeviceByName("T4");
  SearchOptions opts;
  opts.rounds = 6;
  opts.population = 10;
  opts.measured_per_round = 2;
  opts.seed = 77;

  // Warm-up direct run: same seed visits exactly the candidate set the
  // measured runs will, materializing every lazily-created head up front so
  // head-creation order cannot differ between the two sides.
  {
    DirectCostModel warm(w.predictor.get());
    (void)EvolutionarySearch(w.search_task, dev, &warm, opts);
  }

  DirectCostModel direct(w.predictor.get());
  SearchCurve d = EvolutionarySearch(w.search_task, dev, &direct, opts);

  PredictionService service(w.predictor.get(), TuningServeOptions());
  ServeCostModel serve(&service);
  SearchCurve s = EvolutionarySearch(w.search_task, dev, &serve, opts);

  ASSERT_EQ(d.best_after_round.size(), s.best_after_round.size());
  for (size_t i = 0; i < d.best_after_round.size(); ++i) {
    EXPECT_EQ(d.best_after_round[i], s.best_after_round[i]) << "round " << i;
  }
  EXPECT_EQ(d.final_best, s.final_best);
  EXPECT_EQ(d.best_ast_hash, s.best_ast_hash);
  EXPECT_NE(d.best_ast_hash, 0u);
  EXPECT_EQ(d.total_measurements, s.total_measurements);
  EXPECT_EQ(d.total_candidates, s.total_candidates);
}

// Same contract across worker/thread-pool widths: the serve-backed curve is a
// pure function of the seed, never of how many threads computed the scores.
TEST(SearchTest, ServeCurveInvariantToThreadCount) {
  SearchWorld& w = World();
  const DeviceSpec& dev = DeviceByName("T4");
  SearchOptions opts;
  opts.rounds = 5;
  opts.population = 8;
  opts.measured_per_round = 2;
  opts.seed = 123;
  {
    DirectCostModel warm(w.predictor.get());
    (void)EvolutionarySearch(w.search_task, dev, &warm, opts);
  }

  auto run_with_pool = [&](int pool_threads, int serve_workers) {
    ThreadPool pool(pool_threads);
    ThreadPool::SetGlobalForTesting(&pool);
    ServeOptions sopts = TuningServeOptions();
    sopts.num_workers = serve_workers;
    SearchCurve curve;
    {
      PredictionService service(w.predictor.get(), sopts);
      ServeCostModel serve(&service);
      curve = EvolutionarySearch(w.search_task, dev, &serve, opts);
    }
    ThreadPool::SetGlobalForTesting(nullptr);
    return curve;
  };

  SearchCurve one = run_with_pool(/*pool_threads=*/1, /*serve_workers=*/1);
  SearchCurve three = run_with_pool(/*pool_threads=*/3, /*serve_workers=*/3);
  ASSERT_EQ(one.best_after_round.size(), three.best_after_round.size());
  for (size_t i = 0; i < one.best_after_round.size(); ++i) {
    EXPECT_EQ(one.best_after_round[i], three.best_after_round[i]) << "round " << i;
  }
  EXPECT_EQ(one.final_best, three.final_best);
  EXPECT_EQ(one.best_ast_hash, three.best_ast_hash);
}

// ---- Simulated annealing ----------------------------------------------------

TEST(SaSearchTest, CurveNonIncreasingAndSeedReproducible) {
  // A heuristic cost model keeps this test free of training time.
  FnCostModel heuristic([](const CompactAst& ast, int) {
    double score = 1.0;
    for (const ComputationVector& cv : ast.leaves) {
      score -= 0.1 * cv[19] + 0.1 * cv[22];
    }
    return score;
  });
  const DeviceSpec& dev = DeviceByName("T4");
  SaOptions opts;
  opts.sweeps = 12;
  opts.chains = 8;
  opts.measured_per_sweep = 2;
  opts.seed = 5;
  SearchCurve a = SimulatedAnnealingSearch(SearchTask(), dev, &heuristic, opts);
  ASSERT_EQ(a.best_after_round.size(), 12u);
  for (size_t i = 1; i < a.best_after_round.size(); ++i) {
    EXPECT_LE(a.best_after_round[i], a.best_after_round[i - 1] + 1e-12);
  }
  EXPECT_EQ(a.total_measurements, 24);
  // Seeds + 12 sweeps of proposals through the client seam.
  EXPECT_EQ(a.total_candidates, 8 + 12 * 8);
  EXPECT_GT(a.final_best, 0.0);
  EXPECT_NE(a.best_ast_hash, 0u);

  FnCostModel heuristic2([](const CompactAst& ast, int) {
    double score = 1.0;
    for (const ComputationVector& cv : ast.leaves) {
      score -= 0.1 * cv[19] + 0.1 * cv[22];
    }
    return score;
  });
  SearchCurve b = SimulatedAnnealingSearch(SearchTask(), dev, &heuristic2, opts);
  ASSERT_EQ(b.best_after_round.size(), a.best_after_round.size());
  for (size_t i = 0; i < a.best_after_round.size(); ++i) {
    EXPECT_EQ(a.best_after_round[i], b.best_after_round[i]) << "sweep " << i;
  }
  EXPECT_EQ(a.best_ast_hash, b.best_ast_hash);
}

TEST(SaSearchTest, ServeClientCurveMatchesDirectBitwise) {
  SearchWorld& w = World();
  const DeviceSpec& dev = DeviceByName("T4");
  SaOptions opts;
  opts.sweeps = 5;
  opts.chains = 8;
  opts.measured_per_sweep = 2;
  opts.seed = 99;
  {
    DirectCostModel warm(w.predictor.get());
    (void)SimulatedAnnealingSearch(w.search_task, dev, &warm, opts);
  }
  DirectCostModel direct(w.predictor.get());
  SearchCurve d = SimulatedAnnealingSearch(w.search_task, dev, &direct, opts);
  PredictionService service(w.predictor.get(), TuningServeOptions());
  ServeCostModel serve(&service);
  SearchCurve s = SimulatedAnnealingSearch(w.search_task, dev, &serve, opts);
  ASSERT_EQ(d.best_after_round.size(), s.best_after_round.size());
  for (size_t i = 0; i < d.best_after_round.size(); ++i) {
    EXPECT_EQ(d.best_after_round[i], s.best_after_round[i]) << "sweep " << i;
  }
  EXPECT_EQ(d.final_best, s.final_best);
  EXPECT_EQ(d.best_ast_hash, s.best_ast_hash);
}

// ---- Autotuner through the seam ---------------------------------------------

TEST(AutotunerSeamTest, ServeAndDirectScoringAgreeBitwise) {
  SearchWorld& w = World();
  Rng rng(17);
  SplitIndices split = SplitDataset(w.ds, {0}, {}, &rng);
  std::vector<int> train(split.train.begin(),
                         split.train.begin() + std::min<size_t>(split.train.size(), 120));
  std::vector<int> valid(split.valid.begin(),
                         split.valid.begin() + std::min<size_t>(split.valid.size(), 40));
  ASSERT_FALSE(valid.empty());

  AutotuneOptions opts;
  opts.num_trials = 2;
  opts.epochs_per_trial = 1;
  opts.seed = 2024;
  opts.scoring = TrialScoring::kServe;
  AutotuneResult served = Autotune(w.ds, train, valid, opts);

  opts.scoring = TrialScoring::kDirect;
  AutotuneResult direct = Autotune(w.ds, train, valid, opts);

  ASSERT_EQ(served.trials.size(), 2u);
  ASSERT_EQ(direct.trials.size(), 2u);
  for (size_t t = 0; t < served.trials.size(); ++t) {
    EXPECT_EQ(served.trials[t].valid_mape, direct.trials[t].valid_mape)
        << "trial " << t;  // bitwise: scoring is a throughput knob, not a quality one
  }
  EXPECT_EQ(served.best.valid_mape, direct.best.valid_mape);
  EXPECT_EQ(served.scored_candidates, direct.scored_candidates);
  EXPECT_EQ(served.scored_candidates, 2u * valid.size());
  EXPECT_LT(served.best.valid_mape, 1e30);
}

}  // namespace
}  // namespace cdmpp

#include "src/tir/program.h"

#include <functional>

#include "src/support/check.h"

namespace cdmpp {

const char* LoopAnnotationName(LoopAnnotation a) {
  switch (a) {
    case LoopAnnotation::kNone:
      return "none";
    case LoopAnnotation::kVectorize:
      return "vectorize";
    case LoopAnnotation::kUnroll:
      return "unroll";
    case LoopAnnotation::kParallel:
      return "parallel";
  }
  return "unknown";
}

const char* ComputeKindName(ComputeKind kind) {
  switch (kind) {
    case ComputeKind::kInit:
      return "init";
    case ComputeKind::kFma:
      return "fma";
    case ComputeKind::kElementwise:
      return "elementwise";
    case ComputeKind::kReduceUpdate:
      return "reduce_update";
    case ComputeKind::kSpecial:
      return "special";
    case ComputeKind::kCopy:
      return "copy";
  }
  return "unknown";
}

const char* PrimitiveKindName(PrimitiveKind kind) {
  switch (kind) {
    case PrimitiveKind::kSplit:
      return "split";
    case PrimitiveKind::kVectorize:
      return "vectorize";
    case PrimitiveKind::kUnroll:
      return "unroll";
    case PrimitiveKind::kParallel:
      return "parallel";
    case PrimitiveKind::kCacheWrite:
      return "cache_write";
    case PrimitiveKind::kFuseEpilogue:
      return "fuse_epilogue";
  }
  return "unknown";
}

std::unique_ptr<StmtNode> StmtNode::MakeLoop(Loop loop) {
  auto node = std::make_unique<StmtNode>();
  node->is_leaf = false;
  node->loop = std::move(loop);
  return node;
}

std::unique_ptr<StmtNode> StmtNode::MakeLeaf(ComputeStmt compute) {
  auto node = std::make_unique<StmtNode>();
  node->is_leaf = true;
  node->compute = std::move(compute);
  return node;
}

namespace {

void Walk(const StmtNode& node, const std::function<void(const StmtNode&, int depth)>& fn,
          int depth) {
  fn(node, depth);
  for (const auto& child : node.children) {
    Walk(*child, fn, depth + 1);
  }
}

}  // namespace

int CountNodes(const StmtNode& root) {
  int n = 0;
  Walk(root, [&](const StmtNode&, int) { ++n; }, 0);
  return n - 1;  // exclude the synthetic root
}

int CountLeaves(const StmtNode& root) {
  int n = 0;
  Walk(root, [&](const StmtNode& node, int) { n += node.is_leaf ? 1 : 0; }, 0);
  return n;
}

int MaxDepth(const StmtNode& root) {
  int max_depth = 0;
  Walk(root,
       [&](const StmtNode& node, int depth) {
         if (node.is_leaf && depth - 1 > max_depth) {
           max_depth = depth - 1;
         }
       },
       0);
  return max_depth;
}

double LeafContext::Iterations() const {
  double iters = 1.0;
  for (const Loop* loop : loops) {
    iters *= static_cast<double>(loop->extent);
  }
  return iters;
}

namespace {

void CollectLeavesImpl(const StmtNode& node, std::vector<const Loop*>* path, int* counter,
                       std::vector<LeafContext>* out, bool is_root) {
  int my_index = *counter;
  if (!is_root) {
    ++*counter;  // the synthetic root does not occupy a pre-order slot
  }
  if (node.is_leaf) {
    LeafContext ctx;
    ctx.compute = &node.compute;
    ctx.loops = *path;
    ctx.preorder_index = my_index;
    out->push_back(std::move(ctx));
    return;
  }
  if (!is_root) {
    path->push_back(&node.loop);
  }
  for (const auto& child : node.children) {
    CollectLeavesImpl(*child, path, counter, out, /*is_root=*/false);
  }
  if (!is_root) {
    path->pop_back();
  }
}

}  // namespace

std::vector<LeafContext> CollectLeaves(const StmtNode& root) {
  std::vector<LeafContext> out;
  std::vector<const Loop*> path;
  int counter = 0;
  CollectLeavesImpl(root, &path, &counter, &out, /*is_root=*/true);
  return out;
}

double ProgramFlops(const TensorProgram& prog) {
  CDMPP_CHECK(prog.root != nullptr);
  double total = 0.0;
  for (const LeafContext& leaf : CollectLeaves(*prog.root)) {
    total += leaf.Iterations() * leaf.compute->ops.TotalFlops();
  }
  return total;
}

namespace {

void Render(const StmtNode& node, int indent, std::string* out, bool is_root) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (node.is_leaf) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s%s: flops/iter=%.0f loads=%.0f stores=%.0f\n",
                  pad.c_str(), ComputeKindName(node.compute.kind), node.compute.ops.TotalFlops(),
                  node.compute.loads_per_iter, node.compute.stores_per_iter);
    *out += buf;
    return;
  }
  int child_indent = indent;
  if (!is_root) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%sfor %s in 0..%lld%s%s:\n", pad.c_str(),
                  node.loop.var.c_str(), static_cast<long long>(node.loop.extent),
                  node.loop.kind == LoopKind::kReduction ? " [red]" : "",
                  node.loop.annotation == LoopAnnotation::kNone
                      ? ""
                      : (std::string(" [") + LoopAnnotationName(node.loop.annotation) + "]")
                            .c_str());
    *out += buf;
    child_indent = indent + 1;
  }
  for (const auto& child : node.children) {
    Render(*child, child_indent, out, /*is_root=*/false);
  }
}

}  // namespace

std::string ProgramToString(const TensorProgram& prog) {
  std::string out = std::string(OpKindName(prog.task.kind)) + " '" + prog.task.name + "':\n";
  if (prog.root != nullptr) {
    Render(*prog.root, 0, &out, /*is_root=*/true);
  }
  return out;
}

}  // namespace cdmpp

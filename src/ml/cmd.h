// Central Moment Discrepancy (paper Eqn. 6): a distribution-difference metric
// over latent representations, used both as the fine-tuning regularizer
// (Eqn. 7) and as an analysis tool (Figs. 8, 11, 16, 18).
//
//   CMD(P1, P2) = ||E[P1] - E[P2]|| / |b-a|
//               + sum_{j=2..J} ||M_j(P1) - M_j(P2)|| / |b-a|^j
//
// where M_j is the j-th central moment per coordinate. We follow standard
// practice (Zellinger et al.) with J = 5 and |b-a| estimated from the data.
#ifndef SRC_ML_CMD_H_
#define SRC_ML_CMD_H_

#include "src/nn/matrix.h"

namespace cdmpp {

// CMD between the row-distributions of z1 [n1, d] and z2 [n2, d].
// `span` is |b - a|; pass <= 0 to estimate it as the max coordinate range of
// the joint sample (clamped to >= 1 for stability).
double CmdDistance(const Matrix& z1, const Matrix& z2, int num_moments = 5, double span = -1.0);

// CMD plus analytic gradients w.r.t. every row of z1 and z2 (for use as a
// differentiable regularizer). Gradients are *added* into dz1/dz2 scaled by
// `weight`. The span is treated as a constant w.r.t. the inputs.
double CmdDistanceWithGrad(const Matrix& z1, const Matrix& z2, int num_moments, double span,
                           double weight, Matrix* dz1, Matrix* dz2);

}  // namespace cdmpp

#endif  // SRC_ML_CMD_H_

// Reproduces paper Fig. 7 / Fig. 15: cross-model prediction error on unseen
// hold-out networks (ResNet-50, MobileNet-V2, BERT-tiny) on T4 and EPYC.
// CDMPP pre-trains on the remaining models and fine-tunes with the CMD
// regularizer using only *input features* of the target network (§7.2).
#include <cstdio>

#include "src/baselines/tiramisu.h"
#include "src/baselines/xgb_model.h"
#include "src/exp/exp_common.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig07_cross_model_finetune", "Fig. 7 / Fig. 15",
                   "cross-model MAPE on hold-out networks (T4, EPYC)");
  Dataset ds = BuildBenchDataset({0, 7});  // T4, AMD EPYC 7452

  std::vector<int> holdout_ids;
  for (const std::string& name : HoldoutNetworkNames()) {
    int id = ds.ModelIdByName(name);
    CDMPP_CHECK(id >= 0);
    holdout_ids.push_back(id);
  }

  for (int device : {0, 7}) {
    const DeviceSpec& spec = DeviceById(device);
    std::printf("\nCross-model learning on %s:\n", spec.name.c_str());
    Rng rng(3000 + static_cast<uint64_t>(device));
    SplitIndices split = SplitDataset(ds, {device}, holdout_ids, &rng);

    XgbCostModel xgb;
    Rng xrng(3100 + static_cast<uint64_t>(device));
    xgb.Fit(ds, split.train, &xrng);

    TiramisuConfig tcfg;
    tcfg.epochs = 4;
    tcfg.max_train_programs_per_epoch = 1000;
    TiramisuModel tiramisu(tcfg);
    tiramisu.Fit(ds, split.train);

    TablePrinter table({"target network", "CDMPP (finetuned)", "XGBoost", "Tiramisu"});
    for (size_t h = 0; h < holdout_ids.size(); ++h) {
      std::vector<int> target = SamplesOfModelOnDevice(ds, holdout_ids[h], device);
      CDMPP_CHECK(!target.empty());
      // Fine-tune per target network: labels from the source models only,
      // CMD between source latents and the target network's features.
      CdmppPredictor tuned(BenchPredictorConfig(50));
      tuned.Pretrain(ds, split.train, split.valid);
      tuned.Finetune(ds, split.train, Take(split.train, 400), Take(target, 400), 3);

      EvalStats cdmpp_eval = tuned.Evaluate(ds, target);
      EvalStats xgb_eval = EvalPredictions(ds, target, xgb.Predict(ds, target));
      std::vector<int> tiny = Take(target, 120);
      EvalStats t_eval = EvalPredictions(ds, tiny, tiramisu.Predict(ds, tiny));
      table.AddRow({HoldoutNetworkNames()[h], FormatPercent(cdmpp_eval.mape, 2),
                    FormatPercent(xgb_eval.mape, 2), FormatPercent(t_eval.mape, 2)});
    }
    table.Print(stdout);
  }
  std::printf("\nPaper's qualitative claim: CDMPP achieves the lowest error on every"
              " target network (Fig. 7).\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

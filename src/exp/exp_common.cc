#include "src/exp/exp_common.h"

#include <cstdio>

#include "src/support/stats.h"

namespace cdmpp {

namespace {

constexpr int kBenchNetworks = 30;
constexpr int kBenchSchedulesPerTask = 6;
constexpr uint64_t kBenchSeed = 2024;

}  // namespace

Dataset BuildBenchDataset(const std::vector<int>& device_ids) {
  DatasetOptions opts;
  opts.device_ids = device_ids;
  opts.schedules_per_task = kBenchSchedulesPerTask;
  opts.max_networks = kBenchNetworks;
  opts.noise_sigma = 0.03;
  opts.seed = kBenchSeed;
  return BuildDataset(opts);
}

Dataset BuildBenchDataset() { return BuildBenchDataset({}); }

PredictorConfig BenchPredictorConfig(int epochs, uint64_t seed) {
  PredictorConfig cfg;  // defaults are the auto-tuned values
  cfg.epochs = epochs;
  cfg.seed = seed;
  return cfg;
}

EvalStats EvalPredictions(const Dataset& ds, const std::vector<int>& indices,
                          const std::vector<double>& preds_seconds) {
  EvalStats stats;
  std::vector<double> pred_ms(preds_seconds.size());
  std::vector<double> truth_ms(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    pred_ms[i] = preds_seconds[i] * 1e3;
    truth_ms[i] = ds.samples[static_cast<size_t>(indices[i])].latency_seconds * 1e3;
  }
  stats.mape = Mape(pred_ms, truth_ms);
  stats.rmse_ms = Rmse(pred_ms, truth_ms);
  stats.acc20 = AccuracyWithin(pred_ms, truth_ms, 0.2);
  stats.acc10 = AccuracyWithin(pred_ms, truth_ms, 0.1);
  stats.acc5 = AccuracyWithin(pred_ms, truth_ms, 0.05);
  stats.count = static_cast<int>(indices.size());
  return stats;
}

std::vector<int> Take(const std::vector<int>& indices, size_t n) {
  if (indices.size() <= n) {
    return indices;
  }
  return std::vector<int>(indices.begin(), indices.begin() + static_cast<long>(n));
}

void PrintBenchHeader(const std::string& id, const std::string& paper_ref,
                      const std::string& description) {
  std::printf("\n===============================================================\n");
  std::printf("%s — reproduces %s\n%s\n", id.c_str(), paper_ref.c_str(), description.c_str());
  std::printf("===============================================================\n");
  std::fflush(stdout);
}

}  // namespace cdmpp

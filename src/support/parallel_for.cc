#include "src/support/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace cdmpp {

namespace {

// Fork-vs-serial decision counters (obs/ depends only on std, so support/
// including it keeps the layering acyclic). One sharded relaxed add per
// ParallelFor call; registry lookups resolve once per process.
obs::Counter& ForkDecisionCounter(const char* which) {
  return obs::MetricsRegistry::Global().GetCounter(std::string("parallel_for.") + which);
}
void CountForked() {
  static obs::Counter& c = ForkDecisionCounter("forked");
  c.Add();
}
void CountSerialSmall() {
  static obs::Counter& c = ForkDecisionCounter("serial_small");
  c.Add();
}
void CountSerialNested() {
  static obs::Counter& c = ForkDecisionCounter("serial_nested");
  c.Add();
}
void CountSerialContended() {
  static obs::Counter& c = ForkDecisionCounter("serial_contended");
  c.Add();
}

// True while the current thread is executing chunks of some region (either as
// a pool worker or as the calling thread of an active ParallelFor). Nested
// ParallelFor calls from such a thread run serially inline.
thread_local bool tls_in_parallel_region = false;

// Non-null while a test/bench has routed Global() elsewhere.
std::atomic<ThreadPool*> g_global_override{nullptr};

}  // namespace

struct ThreadPool::Impl {
  // Serializes regions: only one ParallelFor drives the pool at a time.
  // Contending callers fall back to inline serial execution (see RunImpl).
  std::mutex region_mu;

  // Protects the region descriptor below plus generation/executors/error.
  std::mutex mu;
  std::condition_variable work_cv;  // workers: a new region is available
  std::condition_variable done_cv;  // caller: all executors left the region
  uint64_t generation = 0;
  bool shutdown = false;
  int executors = 0;  // threads currently draining chunks (incl. the caller)

  // Current region. Plain fields are written under `mu` while executors == 0
  // and read only by executors, which synchronized through `mu` on entry.
  void (*fn)(void*, int64_t, int64_t) = nullptr;
  void* ctx = nullptr;
  int64_t end = 0;
  int64_t grain = 1;
  std::atomic<int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // first failure; guarded by `mu`

  std::vector<std::thread> threads;

  // Claims chunks until the range is exhausted. Once a chunk body throws,
  // remaining chunks are still claimed (so accounting completes) but their
  // bodies are skipped.
  void Drain() {
    for (;;) {
      // Relaxed claim: the ticket value itself is the entire communication —
      // each executor gets a disjoint [i, e) range from the atomic RMW
      // regardless of ordering. The region inputs (fn/ctx/end/grain) were
      // published by the descriptor write under `mu` and acquired by this
      // executor's own `mu` critical section on region entry, so the chunk
      // body never depends on this load for visibility.
      const int64_t i = next.fetch_add(grain, std::memory_order_relaxed);
      if (i >= end) {
        return;
      }
      const int64_t e = std::min(end, i + grain);
      // Relaxed: `failed` is advisory (skip remaining bodies sooner); the
      // exception itself travels through `error` under `mu`, and the caller
      // only reads it after the executors==0 barrier on `done_cv`.
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(ctx, i, e);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          failed.store(true, std::memory_order_relaxed);
          if (!error) {
            error = std::current_exception();
          }
        }
      }
    }
  }

  void WorkerLoop() {
    tls_in_parallel_region = true;  // workers only ever run region chunks
    uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mu);
      work_cv.wait(lock, [&] { return shutdown || generation != seen; });
      if (shutdown) {
        return;
      }
      seen = generation;
      ++executors;
      lock.unlock();
      Drain();
      lock.lock();
      if (--executors == 0) {
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  impl_ = new Impl();
  impl_->threads.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    impl_->threads.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) {
    t.join();
  }
  delete impl_;
}

int ThreadPool::ResolveNumThreads(const char* env_value, int hardware_threads) {
  const int fallback =
      std::min(std::max(1, hardware_threads), kMaxThreads);  // hardware may report 0
  if (env_value == nullptr || env_value[0] == '\0') {
    return fallback;
  }
  char* endp = nullptr;
  const long v = std::strtol(env_value, &endp, 10);
  // Reject partial parses ("8abc"), non-numeric values, and anything below
  // 1 — a pool must always have at least the calling thread. Positive
  // overflow saturates to LONG_MAX and lands in the clamp below.
  if (endp == env_value || *endp != '\0' || v < 1) {
    return fallback;
  }
  return static_cast<int>(std::min<long>(v, kMaxThreads));
}

ThreadPool& ThreadPool::Global() {
  if (ThreadPool* override_pool = g_global_override.load(std::memory_order_acquire)) {
    return *override_pool;
  }
  // Leaked on purpose: worker threads must never outlive their pool, and
  // static destruction order at process exit cannot guarantee that.
  static ThreadPool* pool =
      new ThreadPool(ResolveNumThreads(std::getenv("CDMPP_NUM_THREADS"),
                                       static_cast<int>(std::thread::hardware_concurrency())));
  return *pool;
}

void ThreadPool::SetGlobalForTesting(ThreadPool* pool) {
  g_global_override.store(pool, std::memory_order_release);
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

void ThreadPool::RunImpl(int64_t begin, int64_t end, int64_t grain,
                         void (*fn)(void*, int64_t, int64_t), void* ctx) {
  if (begin >= end) {
    return;
  }
  grain = std::max<int64_t>(1, grain);
  if (num_threads_ == 1 || end - begin <= grain) {
    CountSerialSmall();
    fn(ctx, begin, end);
    return;
  }
  if (tls_in_parallel_region) {
    CountSerialNested();
    fn(ctx, begin, end);
    return;
  }
  // A busy pool means another thread is mid-region; running this range
  // serially beats convoying behind it (the serve workers already provide
  // the outer parallelism in that situation).
  if (!impl_->region_mu.try_lock()) {
    CountSerialContended();
    fn(ctx, begin, end);
    return;
  }
  CountForked();
  std::lock_guard<std::mutex> region(impl_->region_mu, std::adopt_lock);

  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    // A worker that was notified for the *previous* region may only now be
    // waking up; it will claim zero chunks (the old range is exhausted) and
    // leave. Wait it out before overwriting the region descriptor.
    impl_->done_cv.wait(lock, [&] { return impl_->executors == 0; });
    impl_->fn = fn;
    impl_->ctx = ctx;
    impl_->end = end;
    impl_->grain = grain;
    // Relaxed stores are sufficient for the two atomics: this whole
    // descriptor write happens under `mu` with executors == 0, and every
    // worker re-acquires `mu` before entering the region — the mutex is the
    // happens-before edge that publishes next/failed along with the plain
    // fields above.
    impl_->failed.store(false, std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->next.store(begin, std::memory_order_relaxed);
    ++impl_->generation;
    ++impl_->executors;  // the caller participates
  }
  impl_->work_cv.notify_all();

  tls_in_parallel_region = true;
  impl_->Drain();
  tls_in_parallel_region = false;

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    --impl_->executors;
    impl_->done_cv.wait(lock, [&] { return impl_->executors == 0; });
    err = impl_->error;
    impl_->error = nullptr;
  }
  if (err) {
    std::rethrow_exception(err);
  }
}

}  // namespace cdmpp

#include <cmath>

#include <gtest/gtest.h>

#include "src/baselines/gbt.h"
#include "src/baselines/habitat.h"
#include "src/baselines/tiramisu.h"
#include "src/baselines/tlp.h"
#include "src/baselines/xgb_model.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

const Dataset& SmallDataset() {
  static const Dataset* ds = [] {
    DatasetOptions opts;
    opts.device_ids = {0, 3};
    opts.schedules_per_task = 3;
    opts.max_networks = 10;
    opts.seed = 303;
    return new Dataset(BuildDataset(opts));
  }();
  return *ds;
}

TEST(GbtTest, FitsNoisyLinearFunction) {
  Rng rng(81);
  const int n = 600;
  Matrix x(n, 3);
  std::vector<double> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 3; ++j) {
      x.At(i, j) = static_cast<float>(rng.Uniform(-2, 2));
    }
    y[static_cast<size_t>(i)] =
        3.0 * x.At(i, 0) - 2.0 * x.At(i, 1) + 0.5 * x.At(i, 2) + rng.Normal(0, 0.05);
  }
  GbtConfig cfg;
  cfg.num_rounds = 60;
  GradientBoostedTrees gbt(cfg);
  gbt.Fit(x, y, &rng);
  std::vector<double> pred = gbt.Predict(x);
  EXPECT_LT(Rmse(pred, y), 0.6);
}

TEST(GbtTest, TrainingRmseMonotonicallyImproves) {
  Rng rng(82);
  const int n = 300;
  Matrix x(n, 2);
  std::vector<double> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(0, 1));
    x.At(i, 1) = static_cast<float>(rng.Uniform(0, 1));
    y[static_cast<size_t>(i)] = std::sin(6.0 * x.At(i, 0)) + x.At(i, 1);
  }
  GbtConfig cfg;
  cfg.num_rounds = 40;
  cfg.subsample = 1.0;
  GradientBoostedTrees gbt(cfg);
  gbt.Fit(x, y, nullptr);
  const auto& curve = gbt.round_rmse();
  ASSERT_EQ(curve.size(), 40u);
  EXPECT_LT(curve.back(), curve.front() * 0.5);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-9);  // squared loss never worsens
  }
}

TEST(GbtTest, FitsNonlinearInteraction) {
  Rng rng(83);
  const int n = 800;
  Matrix x(n, 2);
  std::vector<double> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(-1, 1));
    x.At(i, 1) = static_cast<float>(rng.Uniform(-1, 1));
    y[static_cast<size_t>(i)] = x.At(i, 0) * x.At(i, 1);  // pure interaction
  }
  GbtConfig cfg;
  cfg.num_rounds = 120;
  GradientBoostedTrees gbt(cfg);
  gbt.Fit(x, y, &rng);
  EXPECT_LT(Rmse(gbt.Predict(x), y), 0.12);
}

TEST(XgbModelTest, BeatsMeanPredictorOnDataset) {
  const Dataset& ds = SmallDataset();
  Rng rng(84);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  XgbCostModel model;
  double throughput = model.Fit(ds, split.train, &rng);
  EXPECT_GT(throughput, 0.0);
  std::vector<double> pred = model.Predict(ds, split.test);
  std::vector<double> truth = GatherLabels(ds, split.test);
  EXPECT_LT(Mape(pred, truth), 0.7);
}

TEST(XgbModelTest, PredictAstConsistentWithPredict) {
  const Dataset& ds = SmallDataset();
  Rng rng(85);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  XgbCostModel model;
  model.Fit(ds, split.train, &rng);
  int idx = split.test.front();
  const Sample& s = ds.samples[static_cast<size_t>(idx)];
  double a = model.Predict(ds, {idx})[0];
  double b = model.PredictAst(ds.programs[static_cast<size_t>(s.program_index)].ast,
                              s.device_id);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(TiramisuTest, TrainsAndPredictsFinite) {
  const Dataset& ds = SmallDataset();
  Rng rng(86);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  std::vector<int> train(split.train.begin(),
                         split.train.begin() + std::min<size_t>(300, split.train.size()));
  TiramisuConfig cfg;
  cfg.epochs = 2;
  TiramisuModel model(cfg);
  double throughput = model.Fit(ds, train);
  EXPECT_GT(throughput, 0.0);
  std::vector<int> test(split.test.begin(),
                        split.test.begin() + std::min<size_t>(50, split.test.size()));
  std::vector<double> pred = model.Predict(ds, test);
  for (double p : pred) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GT(p, 0.0);
  }
}

TEST(TiramisuTest, LearningReducesError) {
  const Dataset& ds = SmallDataset();
  Rng rng(87);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  std::vector<int> train(split.train.begin(),
                         split.train.begin() + std::min<size_t>(400, split.train.size()));
  std::vector<int> test(split.test.begin(),
                        split.test.begin() + std::min<size_t>(80, split.test.size()));
  std::vector<double> truth = GatherLabels(ds, test);

  TiramisuConfig cfg0;
  cfg0.epochs = 0;  // untrained
  TiramisuModel untrained(cfg0);
  // Fit with 0 epochs still fits the label transform.
  untrained.Fit(ds, train);
  double before = Mape(untrained.Predict(ds, test), truth);

  TiramisuConfig cfg;
  cfg.epochs = 8;
  TiramisuModel model(cfg);
  model.Fit(ds, train);
  double after = Mape(model.Predict(ds, test), truth);
  EXPECT_LT(after, before * 1.02);
}

TEST(HabitatTest, FitsSourceDeviceAndScalesAcross) {
  const Dataset& ds = SmallDataset();
  Rng rng(88);
  SplitIndices split = SplitDataset(ds, {0, 3}, {}, &rng);
  HabitatConfig cfg;
  cfg.epochs = 30;
  HabitatModel model(cfg);
  model.Fit(ds, split.train, /*source_device=*/0);
  // On the source device it should be sane (well under 100% error on average
  // is hard for op-level features; just require finite positive predictions
  // and better-than-10x error).
  std::vector<int> src_test;
  std::vector<int> tgt_test;
  for (int idx : split.test) {
    (ds.samples[static_cast<size_t>(idx)].device_id == 0 ? src_test : tgt_test).push_back(idx);
  }
  std::vector<double> pred = model.Predict(ds, src_test);
  std::vector<double> truth = GatherLabels(ds, src_test);
  for (double p : pred) {
    EXPECT_GT(p, 0.0);
  }
  EXPECT_LT(Mape(pred, truth), 10.0);
  // Cross-device predictions exist and are finite.
  std::vector<double> tgt_pred = model.Predict(ds, tgt_test);
  for (double p : tgt_pred) {
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(TlpTest, RelativePredictionRecoversAbsoluteOnSourceDevice) {
  const Dataset& ds = SmallDataset();
  Rng rng(89);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  TlpConfig cfg;
  cfg.epochs = 20;
  TlpModel model(cfg);
  model.Fit(ds, split.train);
  std::vector<double> pred = model.Predict(ds, split.test);
  std::vector<double> truth = GatherLabels(ds, split.test);
  EXPECT_LT(Mape(pred, truth), 1.5);
}

TEST(TlpTest, UnseenTaskFallsBackToGlobalMean) {
  const Dataset& ds = SmallDataset();
  Rng rng(90);
  // Train only on a subset of tasks.
  std::vector<int> train;
  std::vector<int> unseen;
  for (int idx : SamplesOnDevice(ds, 0)) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    int task = ds.programs[static_cast<size_t>(s.program_index)].task_id;
    (task % 3 == 0 ? unseen : train).push_back(idx);
  }
  TlpConfig cfg;
  cfg.epochs = 5;
  TlpModel model(cfg);
  model.Fit(ds, train);
  std::vector<double> pred = model.Predict(ds, unseen);
  for (double p : pred) {
    EXPECT_GT(p, 0.0);
    EXPECT_TRUE(std::isfinite(p));
  }
}

}  // namespace
}  // namespace cdmpp

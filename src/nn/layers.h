// Basic trainable layers with manual forward/backward passes.
//
// Convention: Forward caches whatever the matching Backward needs; Backward
// takes dLoss/dOutput, *accumulates* parameter gradients, and returns
// dLoss/dInput. Call ZeroGrad between steps.
//
// Every layer also exposes ForwardInference: a const forward pass that writes
// no caches and touches no mutable state, computing bitwise-identical outputs
// to Forward. Any number of threads may call ForwardInference concurrently on
// a shared layer as long as no thread mutates parameters at the same time —
// this is the serving hot path (src/serve/).
//
// ForwardInference comes in two flavors:
//   * Matrix* ForwardInference(x, Workspace*): the hot path. Output and all
//     intermediates live in the caller's Workspace arena (valid until its
//     Reset()), so steady-state passes perform zero heap allocations. Each
//     thread needs its own Workspace.
//   * Matrix ForwardInference(x): convenience overload, same values. For the
//     composite layers (Mlp, attention, transformer) it is a true wrapper
//     that runs the arena path on a scratch Workspace and copies the result
//     out — there is exactly ONE inference implementation per layer to keep
//     bitwise-consistent. The primitive layers (Linear, Relu, LayerNorm)
//     share their single kernel call / loop between both overloads instead,
//     avoiding the scratch arena.
#ifndef SRC_NN_LAYERS_H_
#define SRC_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "src/nn/kernels.h"
#include "src/nn/matrix.h"
#include "src/nn/workspace.h"

namespace cdmpp {

// One trainable tensor with its gradient accumulator.
struct Param {
  Matrix value;
  Matrix grad;

  void InitXavier(int rows, int cols, Rng* rng) {
    value = Matrix(rows, cols);
    value.XavierInit(rng);
    grad = Matrix(rows, cols);
  }
  void InitZero(int rows, int cols) {
    value = Matrix(rows, cols);
    grad = Matrix(rows, cols);
  }
};

// Base class for all layers/models: exposes parameters to the optimizer.
class Module {
 public:
  virtual ~Module() = default;
  virtual void CollectParams(std::vector<Param*>* out) = 0;

  void ZeroGrad() {
    std::vector<Param*> params;
    CollectParams(&params);
    for (Param* p : params) {
      p->grad.Zero();
    }
  }
  size_t NumParams() {
    std::vector<Param*> params;
    CollectParams(&params);
    size_t n = 0;
    for (Param* p : params) {
      n += p->value.size();
    }
    return n;
  }
};

// y = x W + b, x: [N, in], W: [in, out].
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng* rng);

  Matrix Forward(const Matrix& x);
  Matrix ForwardInference(const Matrix& x) const;
  // Hot path: y = act(x W + b) in one fused kernel pass (the epilogue runs
  // while the accumulator tile is still in registers). kNone reproduces the
  // plain layer; kRelu folds a following Relu away.
  Matrix* ForwardInference(const Matrix& x, Workspace* ws,
                           kernels::Activation act = kernels::Activation::kNone) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

  int in_dim() const { return w_.value.rows(); }
  int out_dim() const { return w_.value.cols(); }

  // Read-only parameter views: the int8 calibration path (src/nn/quantize.h)
  // snapshots these into packed quantized form.
  const Matrix& weight() const { return w_.value; }
  const Matrix& bias() const { return b_.value; }

 private:
  // The one fused-kernel invocation all three forward entry points share:
  // y = act(x W + b) written into the caller-sized output.
  void ApplyLinear(const Matrix& x, kernels::Activation act, Matrix* y) const;

  Param w_;
  Param b_;
  Matrix cached_x_;
};

// Elementwise max(0, x).
class Relu : public Module {
 public:
  Matrix Forward(const Matrix& x);
  Matrix ForwardInference(const Matrix& x) const;
  // Hot path; large panels split elementwise across cores (bitwise identical
  // for every thread count — the clamp is elementwise with disjoint writes).
  Matrix* ForwardInference(const Matrix& x, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>*) override {}

 private:
  Matrix cached_x_;
};

// Per-row layer normalization with learnable gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  Matrix Forward(const Matrix& x);
  Matrix ForwardInference(const Matrix& x) const;
  // Hot path; rows are split across cores via ParallelFor for large batches.
  Matrix* ForwardInference(const Matrix& x, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

  // Read-only parameter views: the int8 calibration path derives data-free
  // per-channel activation magnitude estimates for post-LayerNorm inputs from
  // gamma/beta (src/nn/quantize.h).
  const Matrix& gamma() const { return gamma_.value; }
  const Matrix& beta() const { return beta_.value; }

 private:
  static constexpr float kEps = 1e-5f;
  Param gamma_;
  Param beta_;
  Matrix cached_norm_;     // normalized activations (pre gamma/beta)
  std::vector<float> cached_inv_std_;
};

// Multi-layer perceptron: Linear -> ReLU repeated, final Linear (no ReLU).
class Mlp : public Module {
 public:
  // dims = {in, h1, ..., out}. Requires at least {in, out}.
  Mlp(const std::vector<int>& dims, Rng* rng);

  Matrix Forward(const Matrix& x);
  Matrix ForwardInference(const Matrix& x) const;
  // Hot path: each hidden Linear+ReLU pair runs as one fused kernel call.
  Matrix* ForwardInference(const Matrix& x, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

  // Read-only layer views for the int8 calibration path.
  size_t num_linear_layers() const { return linears_.size(); }
  const Linear& linear_layer(size_t i) const { return *linears_[i]; }

 private:
  std::vector<std::unique_ptr<Linear>> linears_;
  std::vector<Relu> relus_;
};

// One LSTM step (used by the Tiramisu-style recursive baseline).
// State tensors are [N, hidden]. The forward intermediates live in an
// external cache so the same cell (shared weights) can be applied at many
// tree positions before backward runs in reverse order.
class LstmCell : public Module {
 public:
  LstmCell(int input_dim, int hidden_dim, Rng* rng);

  struct State {
    Matrix h;
    Matrix c;
  };

  // Forward intermediates for one step.
  struct Cache {
    Matrix x, h_prev, c_prev;
    Matrix gates;  // post-activation i, f, g, o stacked along columns
    Matrix c, tanh_c;
  };

  // Gradients w.r.t. the step inputs.
  struct InputGrads {
    Matrix dx;
    Matrix dh_prev;
    Matrix dc_prev;
  };

  // Runs one step, filling `cache` for the matching Backward.
  State Forward(const Matrix& x, const State& prev, Cache* cache);
  // dh/dc are gradients w.r.t. the step outputs (dc may be empty).
  InputGrads Backward(const Cache& cache, const Matrix& dh, const Matrix& dc);
  void CollectParams(std::vector<Param*>* out) override;

  int hidden_dim() const { return hidden_dim_; }
  State ZeroState(int batch) const;

 private:
  int input_dim_;
  int hidden_dim_;
  Param w_x_;  // [input, 4*hidden]: i, f, g, o gates stacked
  Param w_h_;  // [hidden, 4*hidden]
  Param b_;    // [1, 4*hidden]
};

}  // namespace cdmpp

#endif  // SRC_NN_LAYERS_H_

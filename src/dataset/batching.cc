#include "src/dataset/batching.h"

#include <algorithm>

#include "src/support/check.h"

namespace cdmpp {

std::map<int, std::vector<int>> GroupByLeafCount(const Dataset& ds,
                                                 const std::vector<int>& sample_indices) {
  std::map<int, std::vector<int>> buckets;
  for (int idx : sample_indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    const CompactAst& ast = ds.programs[static_cast<size_t>(s.program_index)].ast;
    buckets[ast.num_leaves].push_back(idx);
  }
  return buckets;
}

std::vector<Batch> MakeBatches(const std::map<int, std::vector<int>>& buckets, int batch_size,
                               Rng* rng) {
  CDMPP_CHECK(batch_size > 0);
  std::vector<Batch> batches;
  for (const auto& [leaves, indices] : buckets) {
    std::vector<int> shuffled = indices;
    if (rng != nullptr) {
      rng->Shuffle(&shuffled);
    }
    for (size_t start = 0; start < shuffled.size(); start += static_cast<size_t>(batch_size)) {
      Batch b;
      b.seq_len = leaves;
      size_t end = std::min(shuffled.size(), start + static_cast<size_t>(batch_size));
      b.sample_indices.assign(shuffled.begin() + static_cast<long>(start),
                              shuffled.begin() + static_cast<long>(end));
      batches.push_back(std::move(b));
    }
  }
  if (rng != nullptr) {
    rng->Shuffle(&batches);
  }
  return batches;
}

Matrix BuildFeatureMatrix(const Dataset& ds, const Batch& batch, const StandardScaler* scaler,
                          bool use_pe, double theta) {
  const int b = static_cast<int>(batch.sample_indices.size());
  const int l = batch.seq_len;
  Matrix x(b * l, kFeatDim);
  for (int i = 0; i < b; ++i) {
    const Sample& s = ds.samples[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])];
    const CompactAst& ast = ds.programs[static_cast<size_t>(s.program_index)].ast;
    CDMPP_CHECK(ast.num_leaves == l);
    for (int t = 0; t < l; ++t) {
      float* row = x.Row(i * l + t);
      const ComputationVector& cv = ast.leaves[static_cast<size_t>(t)];
      for (int j = 0; j < kFeatDim; ++j) {
        row[j] = cv[static_cast<size_t>(j)];
      }
      if (scaler != nullptr) {
        scaler->ApplyRow(row);
      }
      if (use_pe) {
        ComputationVector pe = PositionalEncoding(ast.ordering[static_cast<size_t>(t)], theta);
        for (int j = 0; j < kFeatDim; ++j) {
          row[j] += pe[static_cast<size_t>(j)];
        }
      }
    }
  }
  return x;
}

Matrix BuildDeviceFeatureMatrix(const Dataset& ds, const Batch& batch) {
  const int b = static_cast<int>(batch.sample_indices.size());
  Matrix out(b, kDeviceFeatDim);
  for (int i = 0; i < b; ++i) {
    const Sample& s = ds.samples[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])];
    std::vector<float> feats = ExtractDeviceFeatures(DeviceById(s.device_id));
    for (int j = 0; j < kDeviceFeatDim; ++j) {
      out.At(i, j) = feats[static_cast<size_t>(j)];
    }
  }
  return out;
}

Matrix StackLeafRows(const Dataset& ds, const std::vector<int>& sample_indices) {
  size_t total_rows = 0;
  for (int idx : sample_indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    total_rows += static_cast<size_t>(
        ds.programs[static_cast<size_t>(s.program_index)].ast.num_leaves);
  }
  Matrix out(static_cast<int>(total_rows), kFeatDim);
  int r = 0;
  for (int idx : sample_indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    const CompactAst& ast = ds.programs[static_cast<size_t>(s.program_index)].ast;
    for (const ComputationVector& cv : ast.leaves) {
      float* row = out.Row(r++);
      for (int j = 0; j < kFeatDim; ++j) {
        row[j] = cv[static_cast<size_t>(j)];
      }
    }
  }
  return out;
}

std::map<int, std::vector<int>> GroupByLeafCount(const AstBatchView& view) {
  CDMPP_CHECK(view.asts.size() == view.device_ids.size());
  std::map<int, std::vector<int>> buckets;
  for (size_t i = 0; i < view.asts.size(); ++i) {
    CDMPP_CHECK(view.asts[i] != nullptr);
    buckets[view.asts[i]->num_leaves].push_back(static_cast<int>(i));
  }
  return buckets;
}

Matrix BuildFeatureMatrix(const AstBatchView& view, const Batch& batch,
                          const StandardScaler* scaler, bool use_pe, double theta) {
  Matrix x(static_cast<int>(batch.sample_indices.size()) * batch.seq_len, kFeatDim);
  BuildFeatureMatrixInto(view, batch, scaler, use_pe, theta, &x);
  return x;
}

void BuildFeatureMatrixInto(const AstBatchView& view, const Batch& batch,
                            const StandardScaler* scaler, bool use_pe, double theta,
                            Matrix* x_out) {
  const int b = static_cast<int>(batch.sample_indices.size());
  const int l = batch.seq_len;
  Matrix& x = *x_out;
  CDMPP_CHECK(x.rows() == b * l && x.cols() == kFeatDim);
  for (int i = 0; i < b; ++i) {
    const CompactAst& ast =
        *view.asts[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])];
    CDMPP_CHECK(ast.num_leaves == l);
    for (int t = 0; t < l; ++t) {
      float* row = x.Row(i * l + t);
      const ComputationVector& cv = ast.leaves[static_cast<size_t>(t)];
      for (int j = 0; j < kFeatDim; ++j) {
        row[j] = cv[static_cast<size_t>(j)];
      }
      if (scaler != nullptr) {
        scaler->ApplyRow(row);
      }
      if (use_pe) {
        ComputationVector pe = PositionalEncoding(ast.ordering[static_cast<size_t>(t)], theta);
        for (int j = 0; j < kFeatDim; ++j) {
          row[j] += pe[static_cast<size_t>(j)];
        }
      }
    }
  }
}

Matrix BuildDeviceFeatureMatrix(const AstBatchView& view, const Batch& batch) {
  Matrix out(static_cast<int>(batch.sample_indices.size()), kDeviceFeatDim);
  BuildDeviceFeatureMatrixInto(view, batch, &out);
  return out;
}

void BuildDeviceFeatureMatrixInto(const AstBatchView& view, const Batch& batch, Matrix* out) {
  const int b = static_cast<int>(batch.sample_indices.size());
  CDMPP_CHECK(out->rows() == b && out->cols() == kDeviceFeatDim);
  for (int i = 0; i < b; ++i) {
    const int device_id =
        view.device_ids[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])];
    ExtractDeviceFeaturesInto(DeviceById(device_id), out->Row(i));
  }
}

void BatchPlan::Build(const AstBatchView& view, int batch_size) {
  CDMPP_CHECK(batch_size > 0);
  CDMPP_CHECK(view.asts.size() == view.device_ids.size());
  order_.clear();  // clear() keeps capacity: no allocation once warm
  for (size_t i = 0; i < view.asts.size(); ++i) {
    CDMPP_CHECK(view.asts[i] != nullptr);
    order_.push_back(static_cast<int>(i));
  }
  // (leaf count, position) ordering reproduces GroupByLeafCount + MakeBatches
  // with a null rng: buckets ascend by leaf count, view order within each.
  // std::sort is in-place; the position tie-break makes it a stable sort.
  std::sort(order_.begin(), order_.end(), [&view](int lhs, int rhs) {
    const int ll = view.asts[static_cast<size_t>(lhs)]->num_leaves;
    const int rl = view.asts[static_cast<size_t>(rhs)]->num_leaves;
    return ll != rl ? ll < rl : lhs < rhs;
  });

  num_batches_ = 0;
  size_t start = 0;
  while (start < order_.size()) {
    const int leaves = view.asts[static_cast<size_t>(order_[start])]->num_leaves;
    size_t end = start;
    while (end < order_.size() && end - start < static_cast<size_t>(batch_size) &&
           view.asts[static_cast<size_t>(order_[end])]->num_leaves == leaves) {
      ++end;
    }
    if (static_cast<size_t>(num_batches_) == batches_.size()) {
      batches_.emplace_back();
    }
    Batch& b = batches_[static_cast<size_t>(num_batches_)];
    b.seq_len = leaves;
    b.sample_indices.clear();  // keeps capacity
    b.sample_indices.insert(b.sample_indices.end(), order_.begin() + static_cast<long>(start),
                            order_.begin() + static_cast<long>(end));
    ++num_batches_;
    start = end;
  }
}

std::vector<double> GatherLabels(const Dataset& ds, const std::vector<int>& sample_indices) {
  std::vector<double> out;
  out.reserve(sample_indices.size());
  for (int idx : sample_indices) {
    out.push_back(ds.samples[static_cast<size_t>(idx)].latency_seconds);
  }
  return out;
}

}  // namespace cdmpp

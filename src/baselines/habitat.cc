#include "src/baselines/habitat.h"

#include <cmath>

#include "src/support/check.h"

namespace cdmpp {

namespace {

constexpr int kOpFeatDim = 10;  // up to 7 log dims + log flops + log bytes + relu flag

}  // namespace

struct HabitatModel::PerOp {
  std::unique_ptr<Mlp> mlp;
  std::unique_ptr<Adam> adam;
  // Collected training rows: op features and log-ms labels.
  std::vector<std::vector<float>> features;
  std::vector<float> log_labels;
};

HabitatModel::HabitatModel(const HabitatConfig& config) : config_(config) {
  rng_ = std::make_unique<Rng>(config.seed);
}

HabitatModel::~HabitatModel() = default;

std::vector<float> HabitatModel::OpFeatures(const Task& task) {
  std::vector<float> f(kOpFeatDim, 0.0f);
  for (size_t i = 0; i < task.dims.size() && i < 7; ++i) {
    f[i] = static_cast<float>(std::log1p(static_cast<double>(task.dims[i])));
  }
  f[7] = static_cast<float>(std::log1p(task.Flops()));
  f[8] = static_cast<float>(std::log1p(task.MemoryBytes()));
  f[9] = task.fused_relu ? 1.0f : 0.0f;
  return f;
}

double HabitatModel::RooflineScale(const Task& task, int target_device) const {
  const DeviceSpec& src = DeviceById(source_device_);
  const DeviceSpec& tgt = DeviceById(target_device);
  // Arithmetic intensity decides which peak ratio dominates (Williams'09).
  double intensity = task.Flops() / std::max(1.0, task.MemoryBytes());
  double compute_ratio = src.peak_gflops / tgt.peak_gflops;
  double bandwidth_ratio = src.mem_bw_gbps / tgt.mem_bw_gbps;
  // Smooth interpolation around a knee at intensity ~ peak/bw of the source.
  double knee = src.peak_gflops / src.mem_bw_gbps;
  double w = intensity / (intensity + knee);
  return w * compute_ratio + (1.0 - w) * bandwidth_ratio;
}

void HabitatModel::Fit(const Dataset& ds, const std::vector<int>& train, int source_device) {
  source_device_ = source_device;
  per_op_.clear();
  for (int idx : train) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    if (s.device_id != source_device) {
      continue;
    }
    const Task& task = ds.TaskOfProgram(s.program_index);
    auto& slot = per_op_[task.kind];
    if (slot == nullptr) {
      slot = std::make_unique<PerOp>();
    }
    slot->features.push_back(OpFeatures(task));
    slot->log_labels.push_back(static_cast<float>(std::log(s.latency_seconds * 1e3 + 1e-9)));
  }

  for (auto& [kind, op] : per_op_) {
    op->mlp = std::make_unique<Mlp>(
        std::vector<int>{kOpFeatDim, config_.hidden_dim, config_.hidden_dim, 1}, rng_.get());
    std::vector<Param*> params;
    op->mlp->CollectParams(&params);
    op->adam = std::make_unique<Adam>(std::move(params), config_.lr);

    const int n = static_cast<int>(op->features.size());
    std::vector<int> order(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      order[static_cast<size_t>(i)] = i;
    }
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      rng_->Shuffle(&order);
      for (int start = 0; start < n; start += config_.batch_size) {
        int b = std::min(config_.batch_size, n - start);
        Matrix x(b, kOpFeatDim);
        for (int i = 0; i < b; ++i) {
          const auto& f = op->features[static_cast<size_t>(order[static_cast<size_t>(start + i)])];
          for (int j = 0; j < kOpFeatDim; ++j) {
            x.At(i, j) = f[static_cast<size_t>(j)];
          }
        }
        op->mlp->ZeroGrad();
        Matrix pred = op->mlp->Forward(x);
        Matrix dpred(b, 1);
        for (int i = 0; i < b; ++i) {
          float t = op->log_labels[static_cast<size_t>(order[static_cast<size_t>(start + i)])];
          dpred.At(i, 0) = 2.0f * (pred.At(i, 0) - t) / static_cast<float>(b);
        }
        op->mlp->Backward(dpred);
        op->adam->Step();
      }
    }
  }
}

double HabitatModel::PredictTask(const Task& task, int device_id) const {
  CDMPP_CHECK(source_device_ >= 0);
  auto it = per_op_.find(task.kind);
  double pred_ms;
  if (it == per_op_.end() || it->second->mlp == nullptr) {
    pred_ms = 1.0;  // unseen op kind: Habitat cannot predict it
  } else {
    std::vector<float> f = OpFeatures(task);
    Matrix x(1, kOpFeatDim);
    for (int j = 0; j < kOpFeatDim; ++j) {
      x.At(0, j) = f[static_cast<size_t>(j)];
    }
    // Forward mutates layer caches; per_op_ is logically const here.
    Mlp* mlp = it->second->mlp.get();
    pred_ms = std::exp(static_cast<double>(mlp->Forward(x).At(0, 0)));
  }
  if (device_id != source_device_) {
    // time_target = time_source * (peak_source / peak_target), blended.
    pred_ms *= RooflineScale(task, device_id);
  }
  return pred_ms / 1e3;
}

std::vector<double> HabitatModel::Predict(const Dataset& ds,
                                          const std::vector<int>& indices) const {
  std::vector<double> out;
  out.reserve(indices.size());
  for (int idx : indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    out.push_back(PredictTask(ds.TaskOfProgram(s.program_index), s.device_id));
  }
  return out;
}

}  // namespace cdmpp

#include "src/nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/obs/trace.h"
#include "src/support/check.h"
#include "src/support/parallel_for.h"

namespace cdmpp {

namespace {

// Round-to-nearest (current FP environment: ties to even) into [-qmax, qmax].
// Symmetric ranges (no -(qmax+1) code) keep the madd-based kernels' overflow
// analysis a simple magnitude product bound (see kernels.h).
inline int16_t QuantizeValue(float v, float inv_scale, float qmax) {
  float scaled = v * inv_scale;
  if (scaled > qmax) {
    scaled = qmax;
  } else if (scaled < -qmax) {
    scaled = -qmax;
  }
  return static_cast<int16_t>(std::lrintf(scaled));
}

}  // namespace

int ActivationQMax(int k) {
  // Largest activation code magnitude A such that the whole reduction
  // provably fits the i32 accumulator: k * A * 127 <= 2^31 - 1 (weight codes
  // are bounded by 127). Capped at 12 bits: past 4095 the extra codes vanish
  // under the fp32 rounding of the dequant epilogue. Every predictor shape
  // (k <= 4096) gets the full 12 bits; the floor of 1 keeps the formula
  // total for absurd k.
  const int64_t cap = (static_cast<int64_t>(1) << 31) - 1;
  const int64_t a = cap / (127 * std::max<int64_t>(k, 1));
  return static_cast<int>(std::max<int64_t>(1, std::min<int64_t>(a, 4095)));
}

void QuantizePackWeights(int k, int n, const float* w, int ldw,
                         kernels::PackedQ8Weights* out) {
  CDMPP_CHECK(k >= 0 && n >= 0);
  out->k = k;
  out->n = n;
  out->k2 = (k + 1) / 2;
  out->data.assign(static_cast<size_t>(out->k2) * n * 2, 0);
  out->scales.assign(static_cast<size_t>(n), 1.0f);
  for (int j = 0; j < n; ++j) {
    float absmax = 0.0f;
    for (int p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::abs(w[static_cast<int64_t>(p) * ldw + j]));
    }
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    out->scales[static_cast<size_t>(j)] = scale;
    const float inv_scale = 1.0f / scale;
    for (int p = 0; p < k; ++p) {
      out->data[(static_cast<size_t>(p / 2) * n + j) * 2 + (p & 1)] =
          QuantizeValue(w[static_cast<int64_t>(p) * ldw + j], inv_scale, 127.0f);
    }
  }
}

void QuantizeActivationsPerRow(int rows, int k, const float* x, int ldx, int16_t* q, int ldq,
                               float* scales) {
  const int k2 = (k + 1) / 2;
  CDMPP_CHECK(ldq >= 2 * k2);
  const float qmax = static_cast<float>(ActivationQMax(k));
  // Rows are independent (per-ROW scale, by design) and every write — codes
  // and scale — is row-disjoint, so batch rows split across cores without
  // changing a single value; the quantized epilogue stays bitwise identical
  // for every thread count.
  auto quantize_rows = [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = x + i * ldx;
      float absmax = 0.0f;
      for (int p = 0; p < k; ++p) {
        absmax = std::max(absmax, std::abs(row[p]));
      }
      const float scale = absmax > 0.0f ? absmax / qmax : 1.0f;
      scales[i] = scale;
      const float inv_scale = 1.0f / scale;
      int16_t* qrow = q + i * ldq;
      for (int p = 0; p < k; ++p) {
        qrow[p] = QuantizeValue(row[p], inv_scale, qmax);
      }
      for (int p = k; p < 2 * k2; ++p) {
        qrow[p] = 0;  // pad pair: contributes exactly zero to the reduction
      }
    }
  };
  // ~8 work units per element (absmax pass + round/clamp/store pass),
  // against the shared fork policy.
  if (WorthForkingWork(8.0 * static_cast<double>(rows) * k)) {
    ParallelFor(0, rows, ParallelGrain(rows), quantize_rows);
  } else {
    quantize_rows(0, rows);
  }
}

QuantizedLinear::QuantizedLinear(const Linear& linear) {
  const Matrix& w = linear.weight();
  QuantizePackWeights(w.rows(), w.cols(), w.data(), w.cols(), &weights_);
  const Matrix& b = linear.bias();
  bias_.assign(b.data(), b.data() + b.size());
}

Matrix* QuantizedLinear::ForwardInference(const Matrix& x, Workspace* ws,
                                          kernels::Activation act) const {
  CDMPP_CHECK(x.cols() == weights_.k);
  const int m = x.rows();
  const int ldq = 2 * weights_.k2;
  int16_t* q = ws->NewI16(static_cast<size_t>(m) * ldq);
  Matrix* row_scales = ws->NewMatrix(m, 1);
  {
    // The dequant half is fused into the GEMM epilogue below and accounted
    // to the enclosing stage; activation quantization is the separable part.
    obs::ScopedSpan span(obs::Stage::kQuantize);
    QuantizeActivationsPerRow(m, weights_.k, x.data(), x.cols(), q, ldq, row_scales->data());
  }
  Matrix* y = ws->NewMatrix(m, weights_.n);
  kernels::GemmS8S8BiasAct(m, q, ldq, weights_, row_scales->data(), bias_.data(), act,
                           y->data(), y->cols());
  return y;
}

QuantizedMlp::QuantizedMlp(const Mlp& mlp, size_t num_fp32_tail_layers) {
  const size_t total = mlp.num_linear_layers();
  const size_t tail = std::min(num_fp32_tail_layers, total);
  layers_.reserve(total - tail);
  for (size_t i = 0; i < total - tail; ++i) {
    layers_.emplace_back(mlp.linear_layer(i));
  }
  fp32_tail_.reserve(tail);
  for (size_t i = total - tail; i < total; ++i) {
    fp32_tail_.push_back(mlp.linear_layer(i));  // calibration-time fp32 copy
  }
}

Matrix* QuantizedMlp::ForwardInference(const Matrix& x, Workspace* ws) const {
  const size_t total = num_layers();
  const Matrix* h = &x;
  Matrix* out = nullptr;
  for (size_t i = 0; i < total; ++i) {
    const kernels::Activation act =
        i + 1 < total ? kernels::Activation::kRelu : kernels::Activation::kNone;
    out = i < layers_.size() ? layers_[i].ForwardInference(*h, ws, act)
                             : fp32_tail_[i - layers_.size()].ForwardInference(*h, ws, act);
    h = out;
  }
  return out;
}

}  // namespace cdmpp

#include <cmath>

#include <gtest/gtest.h>

#include "src/ast/compact_ast.h"
#include "src/tir/schedule.h"

namespace cdmpp {
namespace {

Task MakeConv() {
  Task t;
  t.kind = OpKind::kConv2d;
  t.dims = {1, 32, 28, 28, 64, 3, 3};
  t.fused_relu = true;
  t.name = "conv";
  return t;
}

TEST(CompactAstTest, BasicInvariants) {
  Rng rng(21);
  Task t = MakeConv();
  for (int trial = 0; trial < 100; ++trial) {
    TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
    CompactAst ast = ExtractCompactAst(prog);
    EXPECT_EQ(static_cast<int>(ast.leaves.size()), ast.num_leaves);
    EXPECT_EQ(ast.leaves.size(), ast.ordering.size());
    EXPECT_LE(ast.num_leaves, ast.num_nodes);
    EXPECT_GT(ast.num_leaves, 0);
    // Ordering strictly increasing and within [0, num_nodes).
    for (size_t i = 0; i < ast.ordering.size(); ++i) {
      if (i > 0) {
        EXPECT_GT(ast.ordering[i], ast.ordering[i - 1]);
      }
      EXPECT_GE(ast.ordering[i], 0);
      EXPECT_LT(ast.ordering[i], ast.num_nodes);
    }
  }
}

TEST(CompactAstTest, LeafRangeIsNarrowerThanNodeRange) {
  // The paper's Fig. 2 motivation: across many schedules, leaf counts vary
  // much less than node counts.
  Rng rng(22);
  Task t = MakeConv();
  int min_nodes = 1 << 30, max_nodes = 0, min_leaves = 1 << 30, max_leaves = 0;
  for (int trial = 0; trial < 300; ++trial) {
    TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
    CompactAst ast = ExtractCompactAst(prog);
    min_nodes = std::min(min_nodes, ast.num_nodes);
    max_nodes = std::max(max_nodes, ast.num_nodes);
    min_leaves = std::min(min_leaves, ast.num_leaves);
    max_leaves = std::max(max_leaves, ast.num_leaves);
  }
  EXPECT_GT(max_nodes - min_nodes, max_leaves - min_leaves);
}

TEST(CompactAstTest, FeatureValuesFinite) {
  Rng rng(23);
  Task t = MakeConv();
  TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
  CompactAst ast = ExtractCompactAst(prog);
  for (const ComputationVector& cv : ast.leaves) {
    for (float v : cv) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(CompactAstTest, OneHotComputeKindSumsToOne) {
  Rng rng(24);
  Task t = MakeConv();
  TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
  CompactAst ast = ExtractCompactAst(prog);
  for (const ComputationVector& cv : ast.leaves) {
    float sum = 0.0f;
    for (int j = 29; j < 35; ++j) {
      sum += cv[static_cast<size_t>(j)];
    }
    EXPECT_FLOAT_EQ(sum, 1.0f);
  }
}

TEST(CompactAstTest, VectorizeFlagReflectsSchedule) {
  Task t = MakeConv();
  ScheduleDesc sched;
  sched.primitives.push_back({PrimitiveKind::kVectorize, -1, 0});
  CompactAst ast = ExtractCompactAst(GenerateProgram(t, sched));
  bool any = false;
  for (const ComputationVector& cv : ast.leaves) {
    any |= cv[19] == 1.0f;
  }
  EXPECT_TRUE(any);

  CompactAst plain = ExtractCompactAst(GenerateProgram(t, ScheduleDesc{}));
  for (const ComputationVector& cv : plain.leaves) {
    EXPECT_EQ(cv[19], 0.0f);
    EXPECT_EQ(cv[22], 0.0f);
  }
}

TEST(CompactAstHashTest, EqualAstsHashEqual) {
  Task t = MakeConv();
  ScheduleDesc sched;
  sched.primitives.push_back({PrimitiveKind::kVectorize, -1, 0});
  CompactAst a = ExtractCompactAst(GenerateProgram(t, sched));
  CompactAst b = ExtractCompactAst(GenerateProgram(t, sched));
  EXPECT_EQ(a.Hash(), b.Hash());
  // Hashing is a pure function: repeated calls agree.
  EXPECT_EQ(a.Hash(), a.Hash());
}

TEST(CompactAstHashTest, DistinctContentsHashDistinct) {
  Task t = MakeConv();
  Rng rng(17);
  std::vector<CompactAst> asts;
  for (int i = 0; i < 16; ++i) {
    asts.push_back(ExtractCompactAst(GenerateProgram(t, SampleSchedule(t, &rng))));
  }
  auto same_content = [](const CompactAst& a, const CompactAst& b) {
    return a.num_nodes == b.num_nodes && a.num_leaves == b.num_leaves &&
           a.max_depth == b.max_depth && a.ordering == b.ordering && a.leaves == b.leaves;
  };
  int distinct_pairs = 0;
  for (size_t i = 0; i < asts.size(); ++i) {
    for (size_t j = i + 1; j < asts.size(); ++j) {
      if (!same_content(asts[i], asts[j])) {
        ++distinct_pairs;
        EXPECT_NE(asts[i].Hash(), asts[j].Hash());
      }
    }
  }
  EXPECT_GT(distinct_pairs, 0);  // sampling actually produced variety
}

TEST(CompactAstHashTest, SensitiveToSingleLeafBit) {
  Task t = MakeConv();
  CompactAst ast = ExtractCompactAst(GenerateProgram(t, ScheduleDesc{}));
  uint64_t before = ast.Hash();
  ast.leaves[0][0] += 1.0f;
  EXPECT_NE(ast.Hash(), before);
}

TEST(PositionalEncodingTest, ValuesBounded) {
  for (int pos = 0; pos < 100; ++pos) {
    ComputationVector pe = PositionalEncoding(pos, 10000.0);
    for (float v : pe) {
      EXPECT_GE(v, -1.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(PositionalEncodingTest, PositionZeroIsSinCosPattern) {
  ComputationVector pe = PositionalEncoding(0, 10000.0);
  for (int d = 0; d * 2 < kFeatDim; ++d) {
    EXPECT_FLOAT_EQ(pe[static_cast<size_t>(2 * d)], 0.0f);      // sin(0)
    if (2 * d + 1 < kFeatDim) {
      EXPECT_FLOAT_EQ(pe[static_cast<size_t>(2 * d + 1)], 1.0f);  // cos(0)
    }
  }
}

TEST(PositionalEncodingTest, DistinctPositionsDistinct) {
  for (int a = 0; a < 20; ++a) {
    for (int b = a + 1; b < 20; ++b) {
      ComputationVector pa = PositionalEncoding(a, 10000.0);
      ComputationVector pb = PositionalEncoding(b, 10000.0);
      double diff = 0.0;
      for (int j = 0; j < kFeatDim; ++j) {
        diff += std::abs(pa[static_cast<size_t>(j)] - pb[static_cast<size_t>(j)]);
      }
      EXPECT_GT(diff, 1e-3) << a << " vs " << b;
    }
  }
}

TEST(EncodeFeaturesTest, PeChangesEncodingOnlyWhenEnabled) {
  Rng rng(25);
  Task t = MakeConv();
  TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
  CompactAst ast = ExtractCompactAst(prog);
  std::vector<float> with_pe = EncodeFeatures(ast, true);
  std::vector<float> without = EncodeFeatures(ast, false);
  ASSERT_EQ(with_pe.size(), without.size());
  ASSERT_EQ(with_pe.size(), static_cast<size_t>(ast.num_leaves) * kFeatDim);
  double diff = 0.0;
  for (size_t i = 0; i < with_pe.size(); ++i) {
    diff += std::abs(with_pe[i] - without[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(AggregateFeaturesTest, TracksLeafAndNodeCounts) {
  Rng rng(26);
  Task t = MakeConv();
  TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
  CompactAst ast = ExtractCompactAst(prog);
  std::vector<float> agg = AggregateFeatures(ast);
  ASSERT_EQ(agg.size(), static_cast<size_t>(kFeatDim + 2));
  EXPECT_FLOAT_EQ(agg[kFeatDim], static_cast<float>(ast.num_leaves));
  EXPECT_FLOAT_EQ(agg[kFeatDim + 1], static_cast<float>(ast.num_nodes));
}

}  // namespace
}  // namespace cdmpp

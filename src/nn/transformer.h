// Transformer encoder layer and stacked encoder (post-LN as in the original
// "Attention Is All You Need", which the paper's predictor follows: Fig. 4).
#ifndef SRC_NN_TRANSFORMER_H_
#define SRC_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "src/nn/attention.h"

namespace cdmpp {

// One encoder block: x -> LN(x + MHA(x)) -> LN(.. + FFN(..)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int d_model, int num_heads, int d_ff, Rng* rng);

  Matrix Forward(const Matrix& x, int seq_len);
  Matrix ForwardInference(const Matrix& x, int seq_len) const;
  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

  // Read-only sublayer views: the int8 calibration path
  // (QuantizedTransformerEncoderLayer) snapshots the weight GEMMs and derives
  // per-channel activation scales from the LayerNorms.
  const MultiHeadSelfAttention& attn() const { return attn_; }
  const LayerNorm& norm1() const { return norm1_; }
  const Linear& ff1() const { return *ff1_; }
  const Linear& ff2() const { return *ff2_; }
  const LayerNorm& norm2() const { return norm2_; }

 private:
  MultiHeadSelfAttention attn_;
  LayerNorm norm1_;
  std::unique_ptr<Linear> ff1_;
  Relu ff_relu_;
  std::unique_ptr<Linear> ff2_;
  LayerNorm norm2_;
};

// A stack of encoder layers.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int d_model, int num_heads, int d_ff, int num_layers, Rng* rng);

  Matrix Forward(const Matrix& x, int seq_len);
  // Cache-free const forward (see src/nn/layers.h): safe for concurrent use
  // on a shared encoder while no thread is training it.
  Matrix ForwardInference(const Matrix& x, int seq_len) const;
  // Hot path: all intermediates from `ws` (one arena per thread); the fused
  // Linear+ReLU kernel runs the FFN's hidden layer in one pass.
  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

  int d_model() const { return d_model_; }

  // Read-only layer views for the int8 calibration path.
  size_t num_layers() const { return layers_.size(); }
  const TransformerEncoderLayer& layer(size_t i) const { return *layers_[i]; }

 private:
  int d_model_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

// The int8 mirror of TransformerEncoderLayer (CDMPP_PRECISION=int8): the
// attention Q/K/V/output projections and the FFN Linear pair run through the
// quantized kernel tier; the LayerNorms are fp32 copies (normalization is
// O(d) per row — no GEMM to win — and its re-normalization keeps the
// per-layer quantization noise from compounding across the stack), and the
// residual adds are fp32. Per-channel activation scales (the column-scale
// epilogue variant in src/nn/quantize.h) are derived data-free from the
// LayerNorm feeding each quantized GEMM:
//   * ff1 input is norm1's output -> scales from norm1's gamma/beta;
//   * the attention projections' input is the PREVIOUS layer's norm2 output
//     (post-LN encoder), passed in as `input_norm` — null for layer 0, whose
//     input is the fp32 input projection (no static channel profile); layer
//     0's Q/K/V then stay fp32 outright (see
//     QuantizedMultiHeadSelfAttention — measured, quantizing them per-row
//     breached the 1% end-to-end contract);
//   * ff2's input is ReLU(ff1) and the output projection's input is the
//     attention context — both data-dependent, both plain per-row.
//
// Calibrated, immutable snapshot of a fp32 layer: ForwardInference is const
// and thread-safe for concurrent readers; re-snapshot after training.
class QuantizedTransformerEncoderLayer {
 public:
  QuantizedTransformerEncoderLayer(const TransformerEncoderLayer& layer,
                                   const LayerNorm* input_norm);

  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;

 private:
  QuantizedMultiHeadSelfAttention attn_;
  LayerNorm norm1_;  // calibration-time fp32 copies
  QuantizedLinear ff1_;
  QuantizedLinear ff2_;
  LayerNorm norm2_;
};

// The int8 mirror of TransformerEncoder: every layer's weight GEMMs
// quantized, chained so layer i >= 1 derives its attention-input column
// scales from layer i-1's norm2.
class QuantizedTransformerEncoder {
 public:
  explicit QuantizedTransformerEncoder(const TransformerEncoder& encoder);

  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;

  int d_model() const { return d_model_; }
  size_t num_layers() const { return layers_.size(); }

 private:
  int d_model_;
  std::vector<QuantizedTransformerEncoderLayer> layers_;
};

}  // namespace cdmpp

#endif  // SRC_NN_TRANSFORMER_H_

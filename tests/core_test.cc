#include <set>

#include <gtest/gtest.h>

#include "src/core/autotuner.h"
#include "src/core/predictor.h"
#include "src/core/sampler.h"
#include "src/ml/cmd.h"

namespace cdmpp {
namespace {

// A small shared dataset so the suite stays fast; built once.
const Dataset& SmallDataset() {
  static const Dataset* ds = [] {
    DatasetOptions opts;
    opts.device_ids = {0, 3};  // T4, V100
    opts.schedules_per_task = 3;
    opts.max_networks = 10;
    opts.seed = 202;
    return new Dataset(BuildDataset(opts));
  }();
  return *ds;
}

PredictorConfig FastConfig() {
  PredictorConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  cfg.num_layers = 1;
  cfg.z_dim = 32;
  cfg.epochs = 16;
  cfg.batch_size = 64;
  cfg.seed = 3;
  return cfg;
}

TEST(PredictorTest, PretrainReachesReasonableError) {
  const Dataset& ds = SmallDataset();
  Rng rng(8);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  CdmppPredictor predictor(FastConfig());
  TrainStats stats = predictor.Pretrain(ds, split.train, split.valid);
  EXPECT_GT(stats.throughput_samples_per_sec, 0.0);
  ASSERT_FALSE(stats.epoch_train_loss.empty());
  // Training loss decreases substantially.
  EXPECT_LT(stats.epoch_train_loss.back(), stats.epoch_train_loss.front() * 0.7);
  // A small model on a small dataset: just require it beats wild guessing.
  EvalStats eval = predictor.Evaluate(ds, split.test);
  EXPECT_LT(eval.mape, 1.0);
  EXPECT_GT(eval.acc20, 0.08);
}

TEST(PredictorTest, PredictionsPositiveAndFinite) {
  const Dataset& ds = SmallDataset();
  Rng rng(9);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  CdmppPredictor predictor(FastConfig());
  predictor.Pretrain(ds, split.train, {});
  std::vector<double> preds = predictor.Predict(ds, split.test);
  ASSERT_EQ(preds.size(), split.test.size());
  for (double p : preds) {
    EXPECT_GT(p, 0.0);
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(PredictorTest, LatentShapeAndDeterminism) {
  const Dataset& ds = SmallDataset();
  Rng rng(10);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  CdmppPredictor predictor(FastConfig());
  predictor.Pretrain(ds, split.train, {});
  std::vector<int> subset(split.test.begin(),
                          split.test.begin() + std::min<size_t>(20, split.test.size()));
  Matrix z1 = predictor.EncodeLatent(ds, subset);
  Matrix z2 = predictor.EncodeLatent(ds, subset);
  ASSERT_EQ(z1.rows(), static_cast<int>(subset.size()));
  EXPECT_EQ(z1.cols(), FastConfig().z_dim + FastConfig().device_embed_dim);
  for (size_t i = 0; i < z1.size(); ++i) {
    EXPECT_FLOAT_EQ(z1.data()[i], z2.data()[i]);
  }
}

TEST(PredictorTest, PredictAstMatchesPredictOnSameProgram) {
  const Dataset& ds = SmallDataset();
  Rng rng(11);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  CdmppPredictor predictor(FastConfig());
  predictor.Pretrain(ds, split.train, {});
  int idx = split.test.front();
  const Sample& s = ds.samples[static_cast<size_t>(idx)];
  double via_sample = predictor.Predict(ds, {idx})[0];
  double via_ast =
      predictor.PredictAst(ds.programs[static_cast<size_t>(s.program_index)].ast, s.device_id);
  EXPECT_NEAR(via_sample, via_ast, 1e-9 + 1e-4 * via_sample);
}

TEST(PredictorTest, CmdFinetuneReducesLatentDiscrepancy) {
  const Dataset& ds = SmallDataset();
  Rng rng(12);
  // Source: T4 samples; target: V100 samples (labels used only for source).
  SplitIndices src = SplitDataset(ds, {0}, {}, &rng);
  std::vector<int> tgt = SamplesOnDevice(ds, 3);
  tgt.resize(std::min<size_t>(tgt.size(), 300));

  PredictorConfig cfg = FastConfig();
  cfg.epochs = 5;
  cfg.alpha_cmd = 1.0;
  CdmppPredictor predictor(cfg);
  predictor.Pretrain(ds, src.train, {});

  std::vector<int> src_sub(src.train.begin(),
                           src.train.begin() + std::min<size_t>(300, src.train.size()));
  double before = CmdDistance(predictor.EncodeLatent(ds, src_sub),
                              predictor.EncodeLatent(ds, tgt));
  predictor.Finetune(ds, src.train, src_sub, tgt, 4);
  double after = CmdDistance(predictor.EncodeLatent(ds, src_sub),
                             predictor.EncodeLatent(ds, tgt));
  EXPECT_LT(after, before);
}

TEST(PredictorTest, NumParamsPositiveAndGrowsWithHeads) {
  CdmppPredictor predictor(FastConfig());
  size_t base = predictor.NumParams();
  EXPECT_GT(base, 1000u);
  const Dataset& ds = SmallDataset();
  std::vector<int> all = SamplesOnDevice(ds, 0);
  predictor.Pretrain(ds, all, {});
  EXPECT_GT(predictor.NumParams(), base);  // leaf heads were added
}

TEST(SamplerTest, KMeansSelectionInvariants) {
  const Dataset& ds = SmallDataset();
  Rng rng(13);
  const int kappa = 8;
  std::vector<int> tasks = SelectTasksKMeans(ds, kappa, &rng);
  ASSERT_EQ(tasks.size(), static_cast<size_t>(kappa));
  std::set<int> unique(tasks.begin(), tasks.end());
  EXPECT_EQ(unique.size(), tasks.size());
  for (int t : tasks) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, static_cast<int>(ds.tasks.size()));
  }
}

TEST(SamplerTest, KMeansCoversFeatureSpaceBetterThanWorstCase) {
  // The selected tasks should cover the program-feature space: the mean
  // distance from each program to its nearest selected task's programs must
  // be finite and the selection deterministic given the seed.
  const Dataset& ds = SmallDataset();
  Rng r1(14);
  Rng r2(14);
  EXPECT_EQ(SelectTasksKMeans(ds, 6, &r1), SelectTasksKMeans(ds, 6, &r2));
}

TEST(SamplerTest, RandomSelectionDistinct) {
  const Dataset& ds = SmallDataset();
  Rng rng(15);
  std::vector<int> tasks = SelectTasksRandom(ds, 10, &rng);
  std::set<int> unique(tasks.begin(), tasks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SamplerTest, SamplesForTasksFilterCorrectly) {
  const Dataset& ds = SmallDataset();
  Rng rng(16);
  std::vector<int> tasks = SelectTasksKMeans(ds, 5, &rng);
  std::vector<int> samples = SamplesForTasksOnDevice(ds, tasks, 3);
  EXPECT_FALSE(samples.empty());
  std::set<int> task_set(tasks.begin(), tasks.end());
  for (int idx : samples) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    EXPECT_EQ(s.device_id, 3);
    EXPECT_TRUE(task_set.count(ds.programs[static_cast<size_t>(s.program_index)].task_id));
  }
}

TEST(AutotunerTest, FindsConfigAndReportsTrials) {
  const Dataset& ds = SmallDataset();
  Rng rng(17);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  // Shrink for test speed.
  std::vector<int> train(split.train.begin(),
                         split.train.begin() + std::min<size_t>(400, split.train.size()));
  std::vector<int> valid(split.valid.begin(),
                         split.valid.begin() + std::min<size_t>(100, split.valid.size()));
  AutotuneOptions opts;
  opts.num_trials = 3;
  opts.epochs_per_trial = 2;
  AutotuneResult result = Autotune(ds, train, valid, opts);
  EXPECT_EQ(result.trials.size(), 3u);
  EXPECT_LT(result.best.valid_mape, 1e29);
  for (const AutotuneTrial& t : result.trials) {
    EXPECT_GE(t.valid_mape, result.best.valid_mape);
  }
}

TEST(AutotunerTest, SampledConfigsAreWithinSearchSpace) {
  Rng rng(18);
  for (int i = 0; i < 50; ++i) {
    PredictorConfig cfg = SampleConfig(&rng);
    EXPECT_GE(cfg.d_model, 32);
    EXPECT_LE(cfg.d_model, 96);
    EXPECT_EQ(cfg.d_model % cfg.num_heads, 0);
    EXPECT_GT(cfg.lr, 0.0);
    EXPECT_GE(cfg.max_lr, cfg.lr);
    EXPECT_FALSE(cfg.decoder_hidden.empty());
  }
}

}  // namespace
}  // namespace cdmpp

// Reproduces paper Tables 4 and 5: pre-training error under the four
// objectives — MSE, MAPE, MSPE and the scale-insensitive hybrid MSE+MAPE
// (Eqn. 3) — on T4, A100 and K80, measured both as MAPE (Table 4) and RMSE
// (Table 5). Expected shape: the hybrid wins on both metrics simultaneously.
#include <cstdio>

#include "src/exp/exp_common.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_tab04_05_loss_ablation", "Tables 4 and 5",
                   "MAPE and RMSE by training objective (T4, A100, K80)");
  Dataset ds = BuildBenchDataset({0, 4, 1});
  TablePrinter mape_table({"device", "MSE", "MAPE", "MSPE", "MSE+MAPE"});
  TablePrinter rmse_table({"device", "MSE", "MAPE", "MSPE", "MSE+MAPE"});
  for (int device : {0, 4, 1}) {
    Rng rng(11000 + static_cast<uint64_t>(device));
    SplitIndices split = SplitDataset(ds, {device}, {}, &rng);
    std::vector<int> train = Take(split.train, 900);
    std::vector<std::string> mape_row = {DeviceById(device).name};
    std::vector<std::string> rmse_row = {DeviceById(device).name};
    for (LossKind loss : {LossKind::kMse, LossKind::kMape, LossKind::kMspe,
                          LossKind::kHybrid}) {
      PredictorConfig cfg = BenchPredictorConfig(28);
      cfg.loss = loss;
      CdmppPredictor predictor(cfg);
      predictor.Pretrain(ds, train, split.valid);
      EvalStats eval = predictor.Evaluate(ds, split.test);
      mape_row.push_back(FormatPercent(eval.mape, 2));
      rmse_row.push_back(FormatDouble(eval.rmse_ms, 3));
    }
    mape_table.AddRow(std::move(mape_row));
    rmse_table.AddRow(std::move(rmse_row));
    std::printf("[%s done]\n", DeviceById(device).name.c_str());
    std::fflush(stdout);
  }
  std::printf("\nTable 4 analogue — MAPE by training objective:\n");
  mape_table.Print(stdout);
  std::printf("\nTable 5 analogue — RMSE (ms) by training objective:\n");
  rmse_table.Print(stdout);
  std::printf("\nPaper shape: MSE alone -> large relative error; MAPE/MSPE alone ->"
              " underestimation and large RMSE; MSE+MAPE best on both metrics.\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

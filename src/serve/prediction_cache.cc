#include "src/serve/prediction_cache.h"

#include "src/support/check.h"

namespace cdmpp {

PredictionCache::PredictionCache(size_t capacity, int num_shards) : capacity_(capacity) {
  CDMPP_CHECK(capacity > 0);
  CDMPP_CHECK(num_shards > 0);
  // Never let integer division starve a shard.
  per_shard_capacity_ = (capacity + static_cast<size_t>(num_shards) - 1) /
                        static_cast<size_t>(num_shards);
  shards_ = std::vector<Shard>(static_cast<size_t>(num_shards));
}

PredictionCache::Shard& PredictionCache::ShardFor(const CacheKey& key) {
  return shards_[CacheKeyHash{}(key) % shards_.size()];
}

bool PredictionCache::Lookup(const CacheKey& key, double* latency_seconds) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *latency_seconds = it->second->latency_seconds;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PredictionCache::Insert(const CacheKey& key, double latency_seconds) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->latency_seconds = latency_seconds;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, latency_seconds});
  shard.index[key] = shard.lru.begin();
}

size_t PredictionCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace cdmpp

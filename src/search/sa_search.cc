#include "src/search/sa_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/support/check.h"

namespace cdmpp {

namespace {

double Measure(const Task& task, const ScheduleDesc& sched, const DeviceSpec& device) {
  TensorProgram prog = GenerateProgram(task, sched);
  return SimulateLatencyDeterministic(prog, device);
}

}  // namespace

SearchCurve SimulatedAnnealingSearch(const Task& task, const DeviceSpec& device,
                                     CostModelClient* client, const SaOptions& opts) {
  CDMPP_CHECK(client != nullptr);
  CDMPP_CHECK(opts.sweeps > 0 && opts.chains > 0);
  CDMPP_CHECK(opts.cooling > 0.0 && opts.cooling < 1.0);
  Rng rng(opts.seed);
  SearchCurve curve;
  double best = std::numeric_limits<double>::max();
  const double score_seconds_at_entry = client->stats().score_seconds;

  const size_t chains = static_cast<size_t>(opts.chains);
  std::vector<ScheduleDesc> state(chains);
  std::vector<CompactAst> state_asts(chains);
  std::vector<double> state_scores(chains);

  // Scratch reused per sweep (proposal ASTs must outlive ScoreBatch — the
  // CostQuery borrow contract).
  std::vector<ScheduleDesc> proposals(chains);
  std::vector<CompactAst> proposal_asts(chains);
  std::vector<CostQuery> queries;
  std::vector<double> proposal_scores;

  // Seed the chains and score them in one batch.
  for (size_t c = 0; c < chains; ++c) {
    state[c] = SampleSchedule(task, &rng);
    state_asts[c] = ExtractCompactAst(GenerateProgram(task, state[c]));
  }
  queries.reserve(chains);
  for (size_t c = 0; c < chains; ++c) {
    queries.push_back(CostQuery{&state_asts[c], device.id});
  }
  client->ScoreBatch(queries, &state_scores);
  curve.total_candidates += static_cast<int>(chains);

  // Self-tuning initial temperature: a fixed fraction of the seed
  // population's score spread, so acceptance odds are task-scale-free. A
  // degenerate spread (all seeds score identically) still anneals — downhill
  // and sideways moves accept, uphill ones effectively never do.
  const auto [min_it, max_it] = std::minmax_element(state_scores.begin(), state_scores.end());
  double spread = *max_it - *min_it;
  if (spread <= 0.0) {
    spread = 1e-12;
  }
  const double t0 = opts.initial_temp * spread;

  for (int sweep = 0; sweep < opts.sweeps; ++sweep) {
    const double temp = t0 * std::pow(opts.cooling, sweep);

    // Propose one neighbor per chain (index order) and score the whole
    // proposal batch at once.
    for (size_t c = 0; c < chains; ++c) {
      proposals[c] = MutateSchedule(task, state[c], &rng);
      proposal_asts[c] = ExtractCompactAst(GenerateProgram(task, proposals[c]));
    }
    queries.clear();
    for (size_t c = 0; c < chains; ++c) {
      queries.push_back(CostQuery{&proposal_asts[c], device.id});
    }
    client->ScoreBatch(queries, &proposal_scores);
    curve.total_candidates += static_cast<int>(chains);

    // Metropolis acceptance per chain. The uniform is drawn unconditionally
    // so the rng stream is independent of the scores (determinism contract).
    for (size_t c = 0; c < chains; ++c) {
      const double delta = proposal_scores[c] - state_scores[c];
      const double u = rng.Uniform(0.0, 1.0);
      if (delta <= 0.0 || (temp > 0.0 && u < std::exp(-delta / temp))) {
        state[c] = std::move(proposals[c]);
        state_asts[c] = std::move(proposal_asts[c]);
        state_scores[c] = proposal_scores[c];
        proposals[c] = ScheduleDesc();
        proposal_asts[c] = CompactAst();
      }
    }

    // Measure the currently best-scored chains on the "device".
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(chains);
    for (size_t c = 0; c < chains; ++c) {
      ranked.emplace_back(state_scores[c], c);  // (score, index): stable tiebreak
    }
    std::sort(ranked.begin(), ranked.end());
    for (int m = 0; m < opts.measured_per_sweep && m < static_cast<int>(chains); ++m) {
      const size_t c = ranked[static_cast<size_t>(m)].second;
      const double latency = Measure(task, state[c], device);
      ++curve.total_measurements;
      if (latency < best) {
        best = latency;
        curve.best_schedule = state[c];
        curve.best_ast_hash = state_asts[c].Hash();
      }
    }
    curve.best_after_round.push_back(best);
  }

  curve.final_best = best;
  curve.score_seconds = client->stats().score_seconds - score_seconds_at_entry;
  return curve;
}

}  // namespace cdmpp

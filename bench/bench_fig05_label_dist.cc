// Reproduces paper Fig. 5: the distribution of tensor-program latency labels
// under the candidate normalization methods (original, Box-Cox, Yeo-Johnson,
// Quantile). The paper's conclusion: raw Y is heavily long-tailed and Box-Cox
// yields the most normal, symmetric distribution.
#include <cstdio>

#include "src/exp/exp_common.h"
#include "src/ml/transforms.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig05_label_dist", "Fig. 5",
                   "latency label distribution under each normalization (T4)");
  Dataset ds = BuildBenchDataset({0});
  std::vector<double> y;
  for (const Sample& s : ds.samples) {
    y.push_back(s.latency_seconds * 1e3);  // ms
  }

  TablePrinter table({"normalization", "skewness", "mean", "stddev", "p1", "p99"});
  for (NormKind kind : {NormKind::kNone, NormKind::kBoxCox, NormKind::kYeoJohnson,
                        NormKind::kQuantile}) {
    auto tf = MakeLabelTransform(kind);
    tf->Fit(y);
    std::vector<double> t = tf->TransformAll(y);
    table.AddRow({NormKindName(kind), FormatDouble(Skewness(t), 3), FormatDouble(Mean(t), 3),
                  FormatDouble(Stddev(t), 3), FormatDouble(Percentile(t, 1), 3),
                  FormatDouble(Percentile(t, 99), 3)});
  }
  table.Print(stdout);
  std::printf("\nRaw-label skewness = %.2f (long tail, paper Fig. 5(a)).\n", Skewness(y));
  std::printf("Box-Cox should show |skewness| closest to 0 (paper Fig. 5(b)).\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

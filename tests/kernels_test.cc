// Golden-equivalence tests for the dispatched GEMM kernels against the naive
// reference kernels, across ragged shapes (rows/cols not divisible by the
// register tile or the 8-lane vector width), empty matrices, and 1xN / Nx1
// edges — plus the batch-size-invariance contract the serving layer relies
// on. Every suite runs under both kernel ISAs (scalar and, when the host
// supports it, AVX2). A dedicated suite asserts the cross-ISA contract: the
// two ISAs agree to tight tolerance everywhere (the AVX2 FMA rounds each
// multiply-add once where scalar rounds twice, so last-ulp differences are
// expected) and bitwise on degenerate shapes, where no products are formed.
// Within each ISA, batch-size invariance is asserted bitwise — that is the
// contract the serving layer relies on.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/kernels.h"
#include "src/nn/matrix.h"
#include "src/nn/quantize.h"
#include "src/support/cpu_features.h"
#include "src/support/rng.h"

namespace cdmpp {
namespace {

using kernels::Activation;

struct Shape {
  int m, n, k;
};

// Ragged on purpose: not divisible by the 4-row register tile, the 128-col
// scalar block, or the 8-lane AVX2 group; includes empty and vector-like
// extremes and shapes big enough to cross the parallel-dispatch threshold.
const Shape kShapes[] = {
    {0, 0, 0},  {0, 3, 2},  {3, 0, 2},   {3, 4, 0},    {1, 1, 1},    {1, 37, 5},
    {37, 1, 5}, {1, 1, 64}, {2, 3, 4},   {5, 5, 5},    {7, 13, 9},   {4, 128, 16},
    {6, 129, 7}, {9, 200, 38}, {33, 64, 22}, {64, 128, 64}, {130, 131, 23}, {257, 65, 19},
    {5, 23, 11}, {3, 15, 3}, {11, 7, 40},
};

// Degenerate shapes from empty leaf-count buckets: any of m/n/k zero must be
// a no-op (beta = 0 zero-fills, k = 0 with beta != 0 is a pure scale of C).
const Shape kDegenerateShapes[] = {
    {0, 0, 0}, {0, 5, 3}, {4, 0, 3}, {4, 5, 0}, {1, 0, 0}, {0, 1, 7}, {9, 13, 0},
};

std::vector<float> RandomBuffer(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng->Normal(0.0, 1.0));
  }
  return v;
}

void ExpectClose(const std::vector<float>& got, const std::vector<float>& want,
                 const char* what, const Shape& s) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const double denom = std::max(1.0, std::abs(static_cast<double>(want[i])));
    EXPECT_LE(std::abs(static_cast<double>(got[i]) - want[i]) / denom, 1e-5)
        << what << " m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
  }
}

void ExpectBitwise(const std::vector<float>& got, const std::vector<float>& want,
                   const char* what, const Shape& s) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " m=" << s.m << " n=" << s.n << " k=" << s.k
                               << " at " << i << " (bitwise)";
  }
}

// Switches the dispatched ISA for the duration of a test and restores the
// previous one afterwards. `ok` is false when the host can't run `isa`.
struct ScopedIsa {
  explicit ScopedIsa(KernelIsa isa) : prev(ActiveKernelIsa()), ok(SetKernelIsa(isa)) {}
  ~ScopedIsa() { SetKernelIsa(prev); }
  KernelIsa prev;
  bool ok;
};

// Runs `body` once per available ISA with that ISA dispatched.
template <typename Body>
void ForEachIsa(Body&& body) {
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2}) {
    ScopedIsa scoped(isa);
    if (!scoped.ok) {
      continue;  // AVX2 not available on this host/build
    }
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(isa));
    body();
  }
}

class GemmGoldenTest : public ::testing::TestWithParam<float> {};

TEST_P(GemmGoldenTest, NNMatchesReference) {
  const float beta = GetParam();
  ForEachIsa([&] {
    Rng rng(101);
    for (const Shape& s : kShapes) {
      auto a = RandomBuffer(static_cast<size_t>(s.m) * std::max(s.k, 1), &rng);
      auto b = RandomBuffer(static_cast<size_t>(std::max(s.k, 1)) * s.n, &rng);
      auto c_init = RandomBuffer(static_cast<size_t>(s.m) * s.n, &rng);
      auto c_ref = c_init;
      auto c_opt = c_init;
      kernels::GemmNNRef(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, beta, c_ref.data(), s.n);
      kernels::GemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, beta, c_opt.data(), s.n);
      ExpectClose(c_opt, c_ref, "GemmNN", s);
    }
  });
}

TEST_P(GemmGoldenTest, TNMatchesReference) {
  const float beta = GetParam();
  ForEachIsa([&] {
    Rng rng(102);
    for (const Shape& s : kShapes) {
      // A stored [k, m] for C = A^T B.
      auto a = RandomBuffer(static_cast<size_t>(std::max(s.k, 1)) * s.m, &rng);
      auto b = RandomBuffer(static_cast<size_t>(std::max(s.k, 1)) * s.n, &rng);
      auto c_init = RandomBuffer(static_cast<size_t>(s.m) * s.n, &rng);
      auto c_ref = c_init;
      auto c_opt = c_init;
      kernels::GemmTNRef(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n, beta, c_ref.data(), s.n);
      kernels::GemmTN(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n, beta, c_opt.data(), s.n);
      ExpectClose(c_opt, c_ref, "GemmTN", s);
    }
  });
}

TEST_P(GemmGoldenTest, NTMatchesReference) {
  const float beta = GetParam();
  ForEachIsa([&] {
    Rng rng(103);
    for (const Shape& s : kShapes) {
      // B stored [n, k] for C = A B^T.
      auto a = RandomBuffer(static_cast<size_t>(s.m) * std::max(s.k, 1), &rng);
      auto b = RandomBuffer(static_cast<size_t>(s.n) * std::max(s.k, 1), &rng);
      auto c_init = RandomBuffer(static_cast<size_t>(s.m) * s.n, &rng);
      auto c_ref = c_init;
      auto c_opt = c_init;
      kernels::GemmNTRef(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k, beta, c_ref.data(), s.n);
      kernels::GemmNT(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k, beta, c_opt.data(), s.n);
      ExpectClose(c_opt, c_ref, "GemmNT", s);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Betas, GemmGoldenTest, ::testing::Values(0.0f, 1.0f, 0.5f));

TEST(GemmBiasActTest, MatchesReferencePlusEpilogue) {
  ForEachIsa([&] {
    Rng rng(104);
    for (const Shape& s : kShapes) {
      auto a = RandomBuffer(static_cast<size_t>(s.m) * std::max(s.k, 1), &rng);
      auto b = RandomBuffer(static_cast<size_t>(std::max(s.k, 1)) * s.n, &rng);
      auto bias = RandomBuffer(static_cast<size_t>(s.n), &rng);
      for (Activation act : {Activation::kNone, Activation::kRelu}) {
        std::vector<float> c_ref(static_cast<size_t>(s.m) * s.n, 0.0f);
        kernels::GemmNNRef(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, 0.0f, c_ref.data(), s.n);
        for (int i = 0; i < s.m; ++i) {
          for (int j = 0; j < s.n; ++j) {
            float v = c_ref[static_cast<size_t>(i) * s.n + j] + bias[static_cast<size_t>(j)];
            if (act == Activation::kRelu) {
              v = std::max(0.0f, v);
            }
            c_ref[static_cast<size_t>(i) * s.n + j] = v;
          }
        }
        std::vector<float> c_opt(static_cast<size_t>(s.m) * s.n, -7.0f);
        kernels::GemmBiasAct(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, bias.data(), act,
                             c_opt.data(), s.n);
        ExpectClose(c_opt, c_ref, act == Activation::kRelu ? "BiasRelu" : "BiasNone", s);
      }
    }
  });
}

// Degenerate-shape contract (empty leaf-count buckets from MakeBatches):
// m/n/k == 0 must agree *bitwise* with the reference semantics — k == 0 with
// beta = 0 zero-fills C, with beta != 0 scales C, and empty C is untouched.
TEST(GemmDegenerateShapeTest, AllVariantsMatchReferenceBitwise) {
  ForEachIsa([&] {
    Rng rng(111);
    for (const Shape& s : kDegenerateShapes) {
      for (float beta : {0.0f, 0.5f, 1.0f, 2.0f}) {
        // With one dimension zero the kernels never read A or B; small
        // non-empty buffers keep the pointers valid for every variant.
        auto a = RandomBuffer(64, &rng);
        auto b = RandomBuffer(64, &rng);
        auto c_init = RandomBuffer(static_cast<size_t>(s.m) * s.n, &rng);

        auto c_ref = c_init;
        auto c_opt = c_init;
        kernels::GemmNNRef(s.m, s.n, s.k, a.data(), std::max(s.k, 1), b.data(),
                           std::max(s.n, 1), beta, c_ref.data(), std::max(s.n, 1));
        kernels::GemmNN(s.m, s.n, s.k, a.data(), std::max(s.k, 1), b.data(),
                        std::max(s.n, 1), beta, c_opt.data(), std::max(s.n, 1));
        ExpectBitwise(c_opt, c_ref, "GemmNN degenerate", s);

        c_ref = c_init;
        c_opt = c_init;
        kernels::GemmTNRef(s.m, s.n, s.k, a.data(), std::max(s.m, 1), b.data(),
                           std::max(s.n, 1), beta, c_ref.data(), std::max(s.n, 1));
        kernels::GemmTN(s.m, s.n, s.k, a.data(), std::max(s.m, 1), b.data(),
                        std::max(s.n, 1), beta, c_opt.data(), std::max(s.n, 1));
        ExpectBitwise(c_opt, c_ref, "GemmTN degenerate", s);

        c_ref = c_init;
        c_opt = c_init;
        kernels::GemmNTRef(s.m, s.n, s.k, a.data(), std::max(s.k, 1), b.data(),
                           std::max(s.k, 1), beta, c_ref.data(), std::max(s.n, 1));
        kernels::GemmNT(s.m, s.n, s.k, a.data(), std::max(s.k, 1), b.data(),
                        std::max(s.k, 1), beta, c_opt.data(), std::max(s.n, 1));
        ExpectBitwise(c_opt, c_ref, "GemmNT degenerate", s);
      }
      // k == 0 GemmBiasAct still applies the epilogue: act(0 + bias).
      auto bias = RandomBuffer(static_cast<size_t>(std::max(s.n, 1)), &rng);
      std::vector<float> c_ref(static_cast<size_t>(s.m) * s.n);
      for (int i = 0; i < s.m; ++i) {
        for (int j = 0; j < s.n; ++j) {
          c_ref[static_cast<size_t>(i) * s.n + j] = std::max(0.0f, bias[static_cast<size_t>(j)]);
        }
      }
      std::vector<float> c_opt(static_cast<size_t>(s.m) * s.n, -3.0f);
      kernels::GemmBiasAct(s.m, s.n, 0, nullptr, 1, nullptr, std::max(s.n, 1), bias.data(),
                           Activation::kRelu, c_opt.data(), std::max(s.n, 1));
      ExpectBitwise(c_opt, c_ref, "GemmBiasAct k=0", s);
    }
  });
}

// The cross-ISA contract: scalar and AVX2 kernels agree on every shape,
// including ragged and unaligned-n cases, to within FMA-vs-mul+add rounding
// (each element differs only by one-vs-two roundings per reduction step, so
// a tight mixed absolute/relative tolerance holds; bitwise equality across
// ISAs is deliberately not promised — see src/support/cpu_features.h).
TEST(GemmCrossIsaTest, ScalarAndAvx2AgreeWithinFmaRounding) {
  if (!CpuSupportsAvx2Fma()) {
    GTEST_SKIP() << "AVX2+FMA not available on this host/build";
  }
  Rng rng(120);
  for (const Shape& s : kShapes) {
    for (float beta : {0.0f, 1.0f, 0.5f}) {
      auto a_nn = RandomBuffer(static_cast<size_t>(s.m) * std::max(s.k, 1), &rng);
      auto a_tn = RandomBuffer(static_cast<size_t>(std::max(s.k, 1)) * s.m, &rng);
      auto b_nn = RandomBuffer(static_cast<size_t>(std::max(s.k, 1)) * s.n, &rng);
      auto b_nt = RandomBuffer(static_cast<size_t>(s.n) * std::max(s.k, 1), &rng);
      auto bias = RandomBuffer(static_cast<size_t>(s.n), &rng);
      auto c_init = RandomBuffer(static_cast<size_t>(s.m) * s.n, &rng);

      auto RunAll = [&](KernelIsa isa, std::vector<float> out[4]) {
        ScopedIsa scoped(isa);
        ASSERT_TRUE(scoped.ok);
        out[0] = c_init;
        kernels::GemmNN(s.m, s.n, s.k, a_nn.data(), s.k, b_nn.data(), s.n, beta,
                        out[0].data(), s.n);
        out[1] = c_init;
        kernels::GemmTN(s.m, s.n, s.k, a_tn.data(), s.m, b_nn.data(), s.n, beta,
                        out[1].data(), s.n);
        out[2] = c_init;
        kernels::GemmNT(s.m, s.n, s.k, a_nn.data(), s.k, b_nt.data(), s.k, beta,
                        out[2].data(), s.n);
        out[3] = c_init;
        kernels::GemmBiasAct(s.m, s.n, s.k, a_nn.data(), s.k, b_nn.data(), s.n, bias.data(),
                             Activation::kRelu, out[3].data(), s.n);
      };
      std::vector<float> scalar_out[4];
      std::vector<float> avx2_out[4];
      RunAll(KernelIsa::kScalar, scalar_out);
      RunAll(KernelIsa::kAvx2, avx2_out);
      ExpectClose(avx2_out[0], scalar_out[0], "cross-ISA GemmNN", s);
      ExpectClose(avx2_out[1], scalar_out[1], "cross-ISA GemmTN", s);
      ExpectClose(avx2_out[2], scalar_out[2], "cross-ISA GemmNT", s);
      ExpectClose(avx2_out[3], scalar_out[3], "cross-ISA GemmBiasAct", s);
      // With k == 0 no products are formed under either ISA, so the beta
      // scale / bias epilogue must match bitwise across ISAs.
      if (s.k == 0) {
        ExpectBitwise(avx2_out[0], scalar_out[0], "cross-ISA GemmNN k=0", s);
        ExpectBitwise(avx2_out[3], scalar_out[3], "cross-ISA GemmBiasAct k=0", s);
      }
    }
  }
}

// ---- Int8 quantized kernels -------------------------------------------------
//
// Integer accumulation is exact and the dequant epilogue is pinned to
// separately rounded mul+add in every ISA, so — unlike fp32 — the quantized
// kernels are asserted BITWISE against the reference under both ISAs and
// across ISAs.

struct QuantizedOperands {
  std::vector<int16_t> a;      // [m, 2*k2] quantized activations
  std::vector<float> a_scales; // [m]
  std::vector<float> bias;     // [n]
  kernels::PackedQ8Weights w;
  int lda = 0;
};

QuantizedOperands MakeQuantizedOperands(const Shape& s, Rng* rng) {
  QuantizedOperands q;
  auto x = RandomBuffer(static_cast<size_t>(s.m) * std::max(s.k, 1), rng);
  auto w = RandomBuffer(static_cast<size_t>(std::max(s.k, 1)) * s.n, rng);
  q.bias = RandomBuffer(static_cast<size_t>(s.n), rng);
  QuantizePackWeights(s.k, s.n, w.data(), s.n, &q.w);
  q.lda = 2 * q.w.k2;
  q.a.assign(static_cast<size_t>(s.m) * std::max(q.lda, 1), 0);
  q.a_scales.assign(static_cast<size_t>(std::max(s.m, 1)), 1.0f);
  QuantizeActivationsPerRow(s.m, s.k, x.data(), std::max(s.k, 1), q.a.data(),
                            std::max(q.lda, 1), q.a_scales.data());
  return q;
}

TEST(GemmQuantizedTest, S32MatchesReferenceBitwiseUnderEveryIsa) {
  ForEachIsa([&] {
    Rng rng(130);
    for (const Shape& s : kShapes) {
      QuantizedOperands q = MakeQuantizedOperands(s, &rng);
      std::vector<int32_t> c_ref(static_cast<size_t>(s.m) * s.n, -1);
      std::vector<int32_t> c_opt(static_cast<size_t>(s.m) * s.n, -2);
      kernels::GemmS8S8S32Ref(s.m, q.a.data(), q.lda, q.w, c_ref.data(), s.n);
      kernels::GemmS8S8S32(s.m, q.a.data(), q.lda, q.w, c_opt.data(), s.n);
      for (size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_EQ(c_opt[i], c_ref[i]) << "m=" << s.m << " n=" << s.n << " k=" << s.k
                                      << " at " << i;
      }
    }
  });
}

TEST(GemmQuantizedTest, FusedEpilogueMatchesReferenceBitwise) {
  ForEachIsa([&] {
    Rng rng(131);
    for (const Shape& s : kShapes) {
      QuantizedOperands q = MakeQuantizedOperands(s, &rng);
      for (Activation act : {Activation::kNone, Activation::kRelu}) {
        for (bool with_bias : {true, false}) {
          const float* bias = with_bias ? q.bias.data() : nullptr;
          std::vector<float> c_ref(static_cast<size_t>(s.m) * s.n, -7.0f);
          std::vector<float> c_opt(static_cast<size_t>(s.m) * s.n, -9.0f);
          kernels::GemmS8S8BiasActRef(s.m, q.a.data(), q.lda, q.w, q.a_scales.data(), bias,
                                      act, c_ref.data(), s.n);
          kernels::GemmS8S8BiasAct(s.m, q.a.data(), q.lda, q.w, q.a_scales.data(), bias, act,
                                   c_opt.data(), s.n);
          ExpectBitwise(c_opt, c_ref, act == Activation::kRelu ? "Q8BiasRelu" : "Q8BiasNone",
                        s);
        }
      }
    }
  });
}

TEST(GemmQuantizedTest, ScalarAndAvx2AgreeBitwise) {
  if (!CpuSupportsAvx2Fma()) {
    GTEST_SKIP() << "AVX2+FMA not available on this host/build";
  }
  Rng rng(132);
  for (const Shape& s : kShapes) {
    QuantizedOperands q = MakeQuantizedOperands(s, &rng);
    std::vector<float> out[2];
    std::vector<int32_t> out32[2];
    int idx = 0;
    for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2}) {
      ScopedIsa scoped(isa);
      ASSERT_TRUE(scoped.ok);
      out[idx].assign(static_cast<size_t>(s.m) * s.n, 0.0f);
      out32[idx].assign(static_cast<size_t>(s.m) * s.n, 0);
      kernels::GemmS8S8BiasAct(s.m, q.a.data(), q.lda, q.w, q.a_scales.data(), q.bias.data(),
                               Activation::kRelu, out[idx].data(), s.n);
      kernels::GemmS8S8S32(s.m, q.a.data(), q.lda, q.w, out32[idx].data(), s.n);
      ++idx;
    }
    ExpectBitwise(out[1], out[0], "cross-ISA GemmS8S8BiasAct", s);
    for (size_t i = 0; i < out32[0].size(); ++i) {
      ASSERT_EQ(out32[1][i], out32[0][i]) << "cross-ISA GemmS8S8S32 at " << i;
    }
  }
}

TEST(GemmDeterminismTest, RowResultsAreBatchSizeInvariant) {
  // The serving layer's bitwise PredictBatched == PredictAst contract: a row
  // computed inside a 64-row product must equal the same row computed alone.
  // Must hold under every dispatched ISA.
  ForEachIsa([&] {
    Rng rng(105);
    const int m = 64, n = 96, k = 38;
    auto a = RandomBuffer(static_cast<size_t>(m) * k, &rng);
    auto b = RandomBuffer(static_cast<size_t>(k) * n, &rng);
    std::vector<float> c_full(static_cast<size_t>(m) * n, 0.0f);
    kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, 0.0f, c_full.data(), n);
    for (int i = 0; i < m; ++i) {
      std::vector<float> c_row(static_cast<size_t>(n), 0.0f);
      kernels::GemmNN(1, n, k, a.data() + static_cast<size_t>(i) * k, k, b.data(), n, 0.0f,
                      c_row.data(), n);
      for (int j = 0; j < n; ++j) {
        // Bitwise, not approximately.
        EXPECT_EQ(c_full[static_cast<size_t>(i) * n + j], c_row[static_cast<size_t>(j)])
            << "row " << i << " col " << j;
      }
    }
  });
}

TEST(GemmStridedTest, LeadingDimensionsAddressSubBlocks) {
  // The attention path multiplies per-head sub-blocks in place inside packed
  // [rows, d_model] activations; verify lda/ldb/ldc > logical width works.
  ForEachIsa([&] {
    Rng rng(106);
    const int big = 32;       // packed width
    const int l = 5, dh = 8;  // seq_len x d_head block at column offset 16
    auto q = RandomBuffer(static_cast<size_t>(l) * big, &rng);
    auto kbuf = RandomBuffer(static_cast<size_t>(l) * big, &rng);
    const int off = 16;
    // Extracted copies.
    std::vector<float> qc(static_cast<size_t>(l) * dh), kc(static_cast<size_t>(l) * dh);
    for (int t = 0; t < l; ++t) {
      for (int j = 0; j < dh; ++j) {
        qc[static_cast<size_t>(t) * dh + j] = q[static_cast<size_t>(t) * big + off + j];
        kc[static_cast<size_t>(t) * dh + j] = kbuf[static_cast<size_t>(t) * big + off + j];
      }
    }
    std::vector<float> s_strided(static_cast<size_t>(l) * l, 0.0f);
    std::vector<float> s_copied(static_cast<size_t>(l) * l, 0.0f);
    kernels::GemmNT(l, l, dh, q.data() + off, big, kbuf.data() + off, big, 0.0f,
                    s_strided.data(), l);
    kernels::GemmNT(l, l, dh, qc.data(), dh, kc.data(), dh, 0.0f, s_copied.data(), l);
    for (size_t i = 0; i < s_strided.size(); ++i) {
      EXPECT_EQ(s_strided[i], s_copied[i]) << "element " << i;
    }
  });
}

TEST(KernelIsaDispatchTest, SetAndQueryRoundTrip) {
  const KernelIsa original = ActiveKernelIsa();
  EXPECT_TRUE(SetKernelIsa(KernelIsa::kScalar));
  EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kScalar);
  EXPECT_STREQ(KernelIsaName(KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(KernelIsaName(KernelIsa::kAvx2), "avx2");
  if (CpuSupportsAvx2Fma()) {
    EXPECT_TRUE(SetKernelIsa(KernelIsa::kAvx2));
    EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kAvx2);
  } else {
    // Requesting an unavailable ISA must be refused, not crash later.
    EXPECT_FALSE(SetKernelIsa(KernelIsa::kAvx2));
    EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kScalar);
  }
  SetKernelIsa(original);
}

TEST(MatrixWrapperTest, MatMulVariantsStillAgreeWithEachOther) {
  // MatMul/MatMulTransA/MatMulTransB are now kernel wrappers; re-verify the
  // transpose identities end to end through the Matrix API.
  ForEachIsa([&] {
    Rng rng(107);
    Matrix a(13, 7);
    Matrix b(7, 9);
    for (size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    for (size_t i = 0; i < b.size(); ++i) {
      b.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    Matrix ref = MatMul(a, b);

    Matrix at(7, 13);
    for (int i = 0; i < a.rows(); ++i) {
      for (int j = 0; j < a.cols(); ++j) {
        at.At(j, i) = a.At(i, j);
      }
    }
    Matrix bt(9, 7);
    for (int i = 0; i < b.rows(); ++i) {
      for (int j = 0; j < b.cols(); ++j) {
        bt.At(j, i) = b.At(i, j);
      }
    }
    Matrix r1 = MatMulTransA(at, b);
    Matrix r2 = MatMulTransB(a, bt);
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(r1.data()[i], ref.data()[i], 1e-5);
      EXPECT_NEAR(r2.data()[i], ref.data()[i], 1e-5);
    }
  });
}

}  // namespace
}  // namespace cdmpp

// Tensor program representation: a tree of loop statements with computation
// statements at the leaves, mirroring the TIR loop nests that CDMPP's feature
// extractor consumes (paper Fig. 1(b)/(c)).
//
// A StmtNode is either
//   * a loop node: `loop` is meaningful, `children` holds the loop body, or
//   * a leaf node: `compute` describes one computation expression.
// The root of a program is a synthetic sequence node (extent-1 loop) whose
// children are the top-level loop nests, so multi-pass operators (softmax,
// layernorm) are trees with several top-level chains.
#ifndef SRC_TIR_PROGRAM_H_
#define SRC_TIR_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/tir/op.h"

namespace cdmpp {

// Whether a loop iterates a spatial (output) axis or a reduction axis.
enum class LoopKind { kSpatial, kReduction };

// Schedule annotation attached to a loop (paper §4.1 category 2 features).
enum class LoopAnnotation { kNone, kVectorize, kUnroll, kParallel };

const char* LoopAnnotationName(LoopAnnotation a);

struct Loop {
  std::string var;
  int64_t extent = 1;
  LoopKind kind = LoopKind::kSpatial;
  LoopAnnotation annotation = LoopAnnotation::kNone;
};

// What a leaf statement computes. Chosen to span the leaves produced by the
// lowering rules: accumulator init, multiply-accumulate updates, pointwise
// math, reductions, transcendental-heavy statements and plain copies.
enum class ComputeKind { kInit, kFma, kElementwise, kReduceUpdate, kSpecial, kCopy };

const char* ComputeKindName(ComputeKind kind);

// Arithmetic operation counts per innermost iteration of a leaf.
struct OpCounts {
  double adds = 0.0;
  double muls = 0.0;
  double fmas = 0.0;  // fused multiply-adds (counted as 2 flops each)
  double divs = 0.0;
  double specials = 0.0;  // exp/sqrt/tanh-class ops
  double cmps = 0.0;      // comparisons (max-pooling, relu)

  double TotalFlops() const { return adds + muls + 2.0 * fmas + divs + specials + cmps; }
};

// One buffer touched by a leaf statement.
struct BufferAccess {
  // Total footprint of the accessed region across the whole statement, bytes.
  double footprint_bytes = 0.0;
  // 0 = contiguous (stride-1), 1 = strided, 2 = gather-like.
  int stride_class = 0;
  bool is_write = false;
};

struct ComputeStmt {
  ComputeKind kind = ComputeKind::kElementwise;
  OpCounts ops;  // per innermost iteration
  double loads_per_iter = 0.0;
  double stores_per_iter = 0.0;
  std::vector<BufferAccess> accesses;
};

struct StmtNode {
  bool is_leaf = false;
  Loop loop;           // valid when !is_leaf
  ComputeStmt compute;  // valid when is_leaf
  std::vector<std::unique_ptr<StmtNode>> children;

  static std::unique_ptr<StmtNode> MakeLoop(Loop loop);
  static std::unique_ptr<StmtNode> MakeLeaf(ComputeStmt compute);
};

// One schedule primitive application, recorded for the TLP baseline which
// featurizes the primitive sequence instead of the program (paper §2.2).
enum class PrimitiveKind { kSplit, kVectorize, kUnroll, kParallel, kCacheWrite, kFuseEpilogue };

const char* PrimitiveKindName(PrimitiveKind kind);
constexpr int kNumPrimitiveKinds = 6;

struct SchedulePrimitive {
  PrimitiveKind kind = PrimitiveKind::kSplit;
  int loop_index = 0;  // which canonical loop it applies to
  int factor = 0;      // split factor / vector width / unroll factor
};

struct ScheduleDesc {
  std::vector<SchedulePrimitive> primitives;
};

// A fully scheduled tensor program for one task.
struct TensorProgram {
  Task task;
  std::unique_ptr<StmtNode> root;
  ScheduleDesc schedule;
};

// ---- Tree inspection helpers -------------------------------------------------

// Total node count of the AST (loops + leaves), excluding the synthetic root.
int CountNodes(const StmtNode& root);
// Number of leaf (computation) nodes.
int CountLeaves(const StmtNode& root);
// Maximum loop depth over all leaves (root excluded).
int MaxDepth(const StmtNode& root);

// Per-leaf context gathered by walking the tree: the loops on the path from
// the root to the leaf, in outermost-to-innermost order, plus the pre-order
// position of the leaf among all nodes.
struct LeafContext {
  const ComputeStmt* compute = nullptr;
  std::vector<const Loop*> loops;  // ancestors, outer to inner
  int preorder_index = 0;          // pre-order index within the whole tree
  // Product of ancestor loop extents = number of executions of the leaf.
  double Iterations() const;
};

// Collects leaves in pre-order. Pre-order indices count every node (loops and
// leaves), matching the paper's serialization in Fig. 1(d).
std::vector<LeafContext> CollectLeaves(const StmtNode& root);

// Total flops executed by the program (sum over leaves of iters * leaf flops).
double ProgramFlops(const TensorProgram& prog);

// Renders the loop nest as indented pseudo-code (for examples/debugging).
std::string ProgramToString(const TensorProgram& prog);

}  // namespace cdmpp

#endif  // SRC_TIR_PROGRAM_H_

#include "src/obs/metrics.h"

#include <cstdio>
#include <vector>

namespace cdmpp {
namespace obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{true};

thread_local int tls_counter_slot = kSlotUnassigned;

namespace {

std::mutex& SlotMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
// Guarded by SlotMutex(). Leaked (never destructed) so slot release during
// late thread exit cannot race static destruction of the list.
std::vector<int>& FreeSlots() {
  static std::vector<int>* slots = new std::vector<int>();
  return *slots;
}
int g_next_slot = 0;

// ODR-used from AllocateCounterSlot so each slot-owning thread registers a
// thread-exit hook. The hook retires (never reassigns) tls_counter_slot:
// other TLS destructors on this thread may still Add() afterwards, and they
// must take the overflow path rather than write a recycled cell some live
// thread now owns.
struct SlotReleaser {
  ~SlotReleaser() {
    std::lock_guard<std::mutex> lock(SlotMutex());
    if (tls_counter_slot >= 0) {
      FreeSlots().push_back(tls_counter_slot);
    }
    tls_counter_slot = kSlotRetired;
  }
};
thread_local SlotReleaser tls_slot_releaser;

}  // namespace

int AllocateCounterSlot() {
  std::lock_guard<std::mutex> lock(SlotMutex());
  (void)tls_slot_releaser;  // force construction: registers the exit hook
  int slot = kSlotRetired;  // out of slots -> permanent overflow for this thread
  if (!FreeSlots().empty()) {
    slot = FreeSlots().back();
    FreeSlots().pop_back();
  } else if (g_next_slot < kCounterSlots) {
    slot = g_next_slot++;
  }
  tls_counter_slot = slot;
  return slot;
}

}  // namespace detail

void SetMetricsEnabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: call sites hold references in function-local statics
  // and instrumented code may run during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];  // node-based map: the reference is stable
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values[name] = counter.Value();
  }
  return values;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> values;
  for (const auto& [name, gauge] : gauges_) {
    values[name] = gauge.Value();
  }
  return values;
}

std::string MetricsRegistry::DumpJson() const {
  const std::map<std::string, uint64_t> counters = CounterValues();
  const std::map<std::string, double> gauges = GaugeValues();
  std::string out = "{\"counters\": {";
  char buf[64];
  bool first = true;
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
    out += first ? "" : ", ";
    out += "\"" + name + "\": " + buf;
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += first ? "" : ", ";
    out += "\"" + name + "\": " + buf;
    first = false;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter.Reset();
  }
}

}  // namespace obs
}  // namespace cdmpp

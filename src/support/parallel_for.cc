#include "src/support/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace cdmpp {

namespace {

// Fork-vs-serial decision counters (obs/ depends only on std, so support/
// including it keeps the layering acyclic). One sharded relaxed add per
// ParallelFor call; registry lookups resolve once per process.
obs::Counter& ForkDecisionCounter(const char* which) {
  return obs::MetricsRegistry::Global().GetCounter(std::string("parallel_for.") + which);
}
void CountForked() {
  static obs::Counter& c = ForkDecisionCounter("forked");
  c.Add();
}
void CountSerialSmall() {
  static obs::Counter& c = ForkDecisionCounter("serial_small");
  c.Add();
}
void CountSerialNested() {
  static obs::Counter& c = ForkDecisionCounter("serial_nested");
  c.Add();
}
void CountSerialContended() {
  static obs::Counter& c = ForkDecisionCounter("serial_contended");
  c.Add();
}
// One add per chunk executed by a thread other than the region's caller.
void CountSteal() {
  static obs::Counter& c = ForkDecisionCounter("steals");
  c.Add();
}
// Monotonic high-water mark of concurrently registered regions, reported as a
// counter so it shows up in counter-delta blocks: the publish path adds the
// increase whenever a new peak is observed, so Value() == the peak itself.
void CountRegionsPeak(uint64_t delta) {
  static obs::Counter& c = ForkDecisionCounter("regions_concurrent_peak");
  c.Add(delta);
}

// True while the current thread is executing chunks of some region (either as
// a pool worker or as the calling thread of an active ParallelFor). Nested
// ParallelFor calls from such a thread run serially inline: every worker is
// by definition already busy with an outer chunk, so a nested region could
// only ever be drained by its own caller plus workers that happen to be idle
// — and the convoy this scheduler exists to fix is precisely the situation
// where none are. Forking the nested range would pay the publish/wake
// handshake to end up serial anyway (and would complicate the
// ParallelForWithScratch single-lease optimization), so nested stays inline.
thread_local bool tls_in_parallel_region = false;

// Non-null while a test/bench has routed Global() elsewhere.
std::atomic<ThreadPool*> g_global_override{nullptr};

}  // namespace

// Multi-region scheduler. Each top-level ParallelFor publishes a Region — a
// stack-allocated chunk-of-work descriptor — into a registry shared by the
// pool; idle workers steal chunks from any registered region, and the caller
// drains only its own region before waiting for stragglers. Regions no longer
// queue or serialize against each other: the old single-region design made a
// contended ParallelFor collapse to inline serial execution exactly when the
// serve workers had the pool busiest.
//
// Determinism: a region's chunk partition is fixed at publish time — chunk j
// is [begin + j*grain, min(end, begin + (j+1)*grain)) and executors claim
// chunks with a single fetch_add cursor — so WHICH thread runs a chunk varies
// run to run but WHAT each chunk computes never does. That is the whole
// bitwise thread-count-invariance argument, and it is also what lets
// ParallelForWithScratch map chunk j to pre-checked-out lease j.
//
// Chase-Lev-style per-worker deques were considered and rejected: with a
// deterministic fixed partition there is no owner-ordered task list to
// protect, so the only shared state per region is one atomic cursor — a
// registry of such cursors under one pool mutex (taken only on publish /
// join / leave / sleep, never per chunk) gives the same steal behavior with
// far less machinery.
struct ThreadPool::Impl {
  struct Region {
    // Immutable after publish; published under `mu` and acquired by each
    // executor's own `mu` critical section when it joins.
    void (*fn)(void*, int64_t, int64_t) = nullptr;
    void* ctx = nullptr;
    int64_t end = 0;
    int64_t grain = 1;
    // Chunk-claim cursor. Relaxed RMW: the ticket value itself is the entire
    // communication — each executor gets a disjoint [i, e) range regardless
    // of ordering, and visibility of fn/ctx/end/grain came from `mu` on join.
    std::atomic<int64_t> next{0};
    // Advisory skip-remaining-bodies flag; the exception itself travels
    // through `error` under `mu`, and the caller only reads it after the
    // executors == 0 barrier.
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // first failure; guarded by `mu`
    int executors = 0;         // threads draining chunks (incl. caller); under `mu`
    // Signaled (while holding `mu` — see DrainRegion's caller in WorkerLoop)
    // when the last executor leaves. Lives on the caller's stack, so workers
    // must never touch it after releasing `mu` post-notify: the caller can
    // only destroy the Region after reacquiring `mu`.
    std::condition_variable done_cv;
  };

  // Every field below is guarded by `mu` unless noted. The mutex is taken on
  // region publish/remove, worker join/leave, and the idle transition — never
  // inside the per-chunk claim loop.
  std::mutex mu;
  std::condition_variable work_cv;  // workers: a region may have chunks
  bool shutdown = false;
  int num_idle = 0;  // workers currently blocked on work_cv

  // Registered regions, dense in [0, num_regions). 256 concurrent top-level
  // regions is far beyond any real fan-in (serve workers x tuning clients is
  // single digits); if the registry ever fills, the caller falls back to
  // inline serial execution and serial_contended counts it — the only
  // remaining way that counter can move.
  static constexpr int kMaxConcurrentRegions = 256;
  Region* regions[kMaxConcurrentRegions] = {};
  int num_regions = 0;
  int scan_start = 0;   // rotates so one long region cannot starve the others
  int peak_regions = 0; // high-water mark feeding regions_concurrent_peak

  std::vector<std::thread> threads;

  // Under `mu`. Returns a region that still has unclaimed chunks, scanning
  // from a rotating start for fairness; nullptr if none.
  Region* FindWork() {
    for (int i = 0; i < num_regions; ++i) {
      const int slot = (scan_start + i) % num_regions;
      Region* r = regions[slot];
      if (r->next.load(std::memory_order_relaxed) < r->end) {
        scan_start = slot + 1;
        return r;
      }
    }
    return nullptr;
  }

  // Under `mu`. Swap-with-last removal; order within the registry carries no
  // meaning (FindWork rotates anyway).
  void Remove(Region* r) {
    for (int i = 0; i < num_regions; ++i) {
      if (regions[i] == r) {
        regions[i] = regions[--num_regions];
        regions[num_regions] = nullptr;
        return;
      }
    }
  }

  // Claims chunks of `r` until its range is exhausted. Lock-free per chunk;
  // called without `mu` held. Once a chunk body throws, remaining chunks are
  // still claimed (so the cursor exhausts and accounting completes) but their
  // bodies are skipped. `stealing` is true for executors other than the
  // region's caller and only feeds the steals counter.
  void DrainRegion(Region* r, bool stealing) {
    for (;;) {
      const int64_t i = r->next.fetch_add(r->grain, std::memory_order_relaxed);
      if (i >= r->end) {
        return;
      }
      const int64_t e = std::min(r->end, i + r->grain);
      if (stealing) {
        CountSteal();
      }
      if (!r->failed.load(std::memory_order_relaxed)) {
        try {
          r->fn(r->ctx, i, e);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          r->failed.store(true, std::memory_order_relaxed);
          if (!r->error) {
            r->error = std::current_exception();
          }
        }
      }
    }
  }

  void WorkerLoop() {
    tls_in_parallel_region = true;  // workers only ever run region chunks
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      if (Region* r = FindWork()) {
        ++r->executors;
        lock.unlock();
        DrainRegion(r, /*stealing=*/true);
        lock.lock();
        if (--r->executors == 0) {
          // Still holding `mu`: the Region lives on its caller's stack and
          // the caller frees it only after winning `mu` back from us.
          r->done_cv.notify_one();
        }
        continue;  // another region may have arrived while we drained
      }
      if (shutdown) {
        return;
      }
      // No lost wakeup: publishers insert into the registry under `mu`
      // before notifying, and we re-ran FindWork under `mu` just now — any
      // region published after that scan finds us counted in num_idle and
      // targets us with a notify_one.
      ++num_idle;
      work_cv.wait(lock);
      --num_idle;
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  impl_ = new Impl();
  impl_->threads.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    impl_->threads.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) {
    t.join();
  }
  delete impl_;
}

int ThreadPool::ResolveNumThreads(const char* env_value, int hardware_threads) {
  const int fallback =
      std::min(std::max(1, hardware_threads), kMaxThreads);  // hardware may report 0
  if (env_value == nullptr || env_value[0] == '\0') {
    return fallback;
  }
  char* endp = nullptr;
  const long v = std::strtol(env_value, &endp, 10);
  // Reject partial parses ("8abc"), non-numeric values, and anything below
  // 1 — a pool must always have at least the calling thread. Positive
  // overflow saturates to LONG_MAX and lands in the clamp below.
  if (endp == env_value || *endp != '\0' || v < 1) {
    return fallback;
  }
  return static_cast<int>(std::min<long>(v, kMaxThreads));
}

ThreadPool& ThreadPool::Global() {
  if (ThreadPool* override_pool = g_global_override.load(std::memory_order_acquire)) {
    return *override_pool;
  }
  // Leaked on purpose: worker threads must never outlive their pool, and
  // static destruction order at process exit cannot guarantee that.
  static ThreadPool* pool =
      new ThreadPool(ResolveNumThreads(std::getenv("CDMPP_NUM_THREADS"),
                                       static_cast<int>(std::thread::hardware_concurrency())));
  return *pool;
}

void ThreadPool::SetGlobalForTesting(ThreadPool* pool) {
  g_global_override.store(pool, std::memory_order_release);
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

void ThreadPool::RunImpl(int64_t begin, int64_t end, int64_t grain,
                         void (*fn)(void*, int64_t, int64_t), void* ctx) {
  if (begin >= end) {
    return;
  }
  grain = std::max<int64_t>(1, grain);
  if (num_threads_ == 1 || end - begin <= grain) {
    CountSerialSmall();
    fn(ctx, begin, end);
    return;
  }
  if (tls_in_parallel_region) {
    CountSerialNested();
    fn(ctx, begin, end);
    return;
  }

  Impl::Region region;
  region.fn = fn;
  region.ctx = ctx;
  region.end = end;
  region.grain = grain;
  region.next.store(begin, std::memory_order_relaxed);
  const int64_t num_chunks = (end - begin + grain - 1) / grain;

  int wake = -1;  // stays -1 on the registry-full fallback
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->num_regions < Impl::kMaxConcurrentRegions) {
      impl_->regions[impl_->num_regions++] = &region;
      region.executors = 1;  // the caller participates
      if (impl_->num_regions > impl_->peak_regions) {
        CountRegionsPeak(static_cast<uint64_t>(impl_->num_regions - impl_->peak_regions));
        impl_->peak_regions = impl_->num_regions;
      }
      // Targeted wake: rousing more workers than there are chunks for other
      // executors (the caller takes chunks too) just stampedes them through
      // FindWork for nothing. Workers that finish another region's chunks
      // re-scan the registry before sleeping, so busy-but-soon-free workers
      // need no notification at all.
      wake = static_cast<int>(
          std::min<int64_t>(impl_->num_idle, num_chunks - 1));
    }
  }
  if (wake < 0) {
    CountSerialContended();
    fn(ctx, begin, end);
    return;
  }
  CountForked();
  for (int i = 0; i < wake; ++i) {
    impl_->work_cv.notify_one();
  }

  tls_in_parallel_region = true;
  impl_->DrainRegion(&region, /*stealing=*/false);
  tls_in_parallel_region = false;

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->Remove(&region);  // no new executors can join past this point
    --region.executors;
    region.done_cv.wait(lock, [&] { return region.executors == 0; });
    err = region.error;
  }
  // `region` (and its done_cv) dies here — safe because the last worker's
  // notify happened under `mu`, which we have since reacquired.
  if (err) {
    std::rethrow_exception(err);
  }
}

}  // namespace cdmpp

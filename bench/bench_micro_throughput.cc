// Micro-benchmarks (google-benchmark) for the pipeline's hot paths: schedule
// generation + lowering, compact-AST feature extraction, device simulation,
// cost-model inference, and one training step. Complements the §7.2
// throughput comparison with per-component numbers.
#include <benchmark/benchmark.h>

#include "src/ast/compact_ast.h"
#include "src/core/predictor.h"
#include "src/device/simulator.h"
#include "src/exp/exp_common.h"
#include "src/tir/schedule.h"

namespace cdmpp {
namespace {

Task BenchTask() {
  Task t;
  t.kind = OpKind::kConv2d;
  t.dims = {1, 64, 56, 56, 128, 3, 3};
  t.fused_relu = true;
  t.name = "bench_conv";
  return t;
}

void BM_GenerateProgram(benchmark::State& state) {
  Task task = BenchTask();
  Rng rng(1);
  ScheduleDesc sched = SampleSchedule(task, &rng);
  for (auto _ : state) {
    TensorProgram prog = GenerateProgram(task, sched);
    benchmark::DoNotOptimize(prog.root);
  }
}
BENCHMARK(BM_GenerateProgram);

void BM_ExtractCompactAst(benchmark::State& state) {
  Task task = BenchTask();
  Rng rng(2);
  TensorProgram prog = GenerateProgram(task, SampleSchedule(task, &rng));
  for (auto _ : state) {
    CompactAst ast = ExtractCompactAst(prog);
    benchmark::DoNotOptimize(ast.leaves.data());
  }
}
BENCHMARK(BM_ExtractCompactAst);

void BM_SimulateLatency(benchmark::State& state) {
  Task task = BenchTask();
  Rng rng(3);
  TensorProgram prog = GenerateProgram(task, SampleSchedule(task, &rng));
  const DeviceSpec& dev = DeviceByName("V100");
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateLatencyDeterministic(prog, dev));
  }
}
BENCHMARK(BM_SimulateLatency);

void BM_PositionalEncoding(benchmark::State& state) {
  for (auto _ : state) {
    for (int pos = 0; pos < 16; ++pos) {
      benchmark::DoNotOptimize(PositionalEncoding(pos, 10000.0));
    }
  }
}
BENCHMARK(BM_PositionalEncoding);

// Shared tiny fixture for the model-level benchmarks.
struct PredictorFixture {
  Dataset ds;
  CdmppPredictor predictor;
  CompactAst ast;

  PredictorFixture() : ds(BuildSmall()), predictor(Config()) {
    Rng rng(4);
    SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
    predictor.Pretrain(ds, Take(split.train, 400), {});
    ast = ds.programs[0].ast;
  }
  static Dataset BuildSmall() {
    DatasetOptions opts;
    opts.device_ids = {0};
    opts.schedules_per_task = 2;
    opts.max_networks = 6;
    opts.seed = 9;
    return BuildDataset(opts);
  }
  static PredictorConfig Config() {
    PredictorConfig cfg;
    cfg.epochs = 2;
    cfg.seed = 10;
    return cfg;
  }
  static PredictorFixture& Get() {
    static PredictorFixture fixture;
    return fixture;
  }
};

void BM_CostModelInference(benchmark::State& state) {
  PredictorFixture& f = PredictorFixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.predictor.PredictAst(f.ast, 0));
  }
}
BENCHMARK(BM_CostModelInference);

void BM_DatasetBuild(benchmark::State& state) {
  for (auto _ : state) {
    DatasetOptions opts;
    opts.device_ids = {0};
    opts.schedules_per_task = 2;
    opts.max_networks = 4;
    opts.seed = 11;
    Dataset ds = BuildDataset(opts);
    benchmark::DoNotOptimize(ds.samples.data());
  }
}
BENCHMARK(BM_DatasetBuild)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cdmpp

BENCHMARK_MAIN();

#include "src/ml/tsne.h"

#include <cmath>
#include <vector>

#include "src/ml/kmeans.h"
#include "src/support/check.h"

namespace cdmpp {

namespace {

// Binary-searches the Gaussian bandwidth for one row so the conditional
// distribution hits the target perplexity.
void FitRowSigma(const std::vector<double>& d2_row, int self, double perplexity,
                 std::vector<double>* p_row) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0;
  double beta_lo = 0.0;
  double beta_hi = 1e30;
  const int n = static_cast<int>(d2_row.size());
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0;
    double sum_dp = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == self) {
        (*p_row)[static_cast<size_t>(j)] = 0.0;
        continue;
      }
      double p = std::exp(-beta * d2_row[static_cast<size_t>(j)]);
      (*p_row)[static_cast<size_t>(j)] = p;
      sum += p;
      sum_dp += p * d2_row[static_cast<size_t>(j)];
    }
    if (sum <= 0.0) {
      break;
    }
    double entropy = std::log(sum) + beta * sum_dp / sum;
    double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) {
      break;
    }
    if (diff > 0.0) {
      beta_lo = beta;
      beta = beta_hi > 1e29 ? beta * 2.0 : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2.0;
    }
  }
  double sum = 0.0;
  for (double p : *p_row) {
    sum += p;
  }
  if (sum > 0.0) {
    for (double& p : *p_row) {
      p /= sum;
    }
  }
}

}  // namespace

Matrix TsneEmbed(const Matrix& points, const TsneOptions& opts, Rng* rng) {
  const int n = points.rows();
  CDMPP_CHECK(n >= 5);
  const int dim = points.cols();

  // Symmetrized affinities P.
  std::vector<std::vector<double>> p(static_cast<size_t>(n),
                                     std::vector<double>(static_cast<size_t>(n), 0.0));
  {
    std::vector<double> d2_row(static_cast<size_t>(n));
    std::vector<std::vector<double>> cond(static_cast<size_t>(n),
                                          std::vector<double>(static_cast<size_t>(n), 0.0));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        d2_row[static_cast<size_t>(j)] = SquaredDistance(points.Row(i), points.Row(j), dim);
      }
      FitRowSigma(d2_row, i, std::min(opts.perplexity, (n - 1) / 3.0),
                  &cond[static_cast<size_t>(i)]);
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        p[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            std::max(1e-12, (cond[static_cast<size_t>(i)][static_cast<size_t>(j)] +
                             cond[static_cast<size_t>(j)][static_cast<size_t>(i)]) /
                                (2.0 * n));
      }
    }
  }

  Matrix y(n, 2);
  for (int i = 0; i < n; ++i) {
    y.At(i, 0) = static_cast<float>(rng->Normal(0.0, 1e-2));
    y.At(i, 1) = static_cast<float>(rng->Normal(0.0, 1e-2));
  }
  Matrix velocity(n, 2);

  std::vector<double> q_num(static_cast<size_t>(n) * n, 0.0);
  const int exaggeration_iters = opts.iterations / 4;
  for (int iter = 0; iter < opts.iterations; ++iter) {
    double exaggeration = iter < exaggeration_iters ? opts.early_exaggeration : 1.0;
    // Student-t kernel numerators and normalizer.
    double q_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double dx = y.At(i, 0) - y.At(j, 0);
        double dy = y.At(i, 1) - y.At(j, 1);
        double num = 1.0 / (1.0 + dx * dx + dy * dy);
        q_num[static_cast<size_t>(i) * n + j] = num;
        q_num[static_cast<size_t>(j) * n + i] = num;
        q_sum += 2.0 * num;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    double momentum = iter < 100 ? 0.5 : 0.8;
    for (int i = 0; i < n; ++i) {
      double g0 = 0.0;
      double g1 = 0.0;
      for (int j = 0; j < n; ++j) {
        if (j == i) {
          continue;
        }
        double num = q_num[static_cast<size_t>(i) * n + j];
        double q = std::max(num / q_sum, 1e-12);
        double mult =
            (exaggeration * p[static_cast<size_t>(i)][static_cast<size_t>(j)] - q) * num;
        g0 += mult * (y.At(i, 0) - y.At(j, 0));
        g1 += mult * (y.At(i, 1) - y.At(j, 1));
      }
      velocity.At(i, 0) = static_cast<float>(momentum * velocity.At(i, 0) -
                                             opts.learning_rate * 4.0 * g0);
      velocity.At(i, 1) = static_cast<float>(momentum * velocity.At(i, 1) -
                                             opts.learning_rate * 4.0 * g1);
    }
    for (int i = 0; i < n; ++i) {
      y.At(i, 0) += velocity.At(i, 0);
      y.At(i, 1) += velocity.At(i, 1);
    }
  }
  return y;
}

}  // namespace cdmpp

// Private interface between the kernel dispatch layer (kernels.cc) and the
// per-ISA microkernel bodies. Not part of the public kernel API.
//
// Every panel function computes rows [i0, i1) of its GEMM variant and must
// uphold the layer-wide determinism contract: each C element accumulates its
// k products in ascending p order with a fixed per-element operation
// sequence, so within an ISA results are bitwise deterministic and
// independent of the ParallelFor partition and the batch size. Degenerate
// panels (n == 0 or k == 0) must be handled: k == 0 still applies the beta
// scale / bias epilogue to C, exactly.
#ifndef SRC_NN_KERNELS_INTERNAL_H_
#define SRC_NN_KERNELS_INTERNAL_H_

#include <cstdint>

#include "src/nn/kernels.h"

namespace cdmpp {
namespace kernels {
namespace detail {

// One NT output element: c_new = (beta == 0 ? 0 : beta*c_prev) + Σp a[p]*b[p],
// products accumulated in ascending p with separately rounded mul and add.
// Shared by the scalar NT body's column remainder and the AVX2 NT panel's
// column tail so the two ISAs keep one definition of the tail arithmetic
// (both translation units build with -ffp-contract=off, so the compiler
// cannot fuse these into FMA in either).
inline float GemmNTDotTail(const float* arow, const float* brow, int k, float beta,
                           float c_prev) {
  float s = 0.0f;
  for (int p = 0; p < k; ++p) {
    s += arow[p] * brow[p];
  }
  return (beta == 0.0f ? 0.0f : beta * c_prev) + s;
}

// Epilogue descriptor for the quantized panels: null means "store raw s32 to
// c32", non-null means "dequantize into cf" as
//   cf[i,j] = act(float(s32) * (a_scales[i] * b_scales[j]) + bias[j])
// with multiply and add rounded separately (both TUs build with
// -ffp-contract=off and the AVX2 body uses mul+add, not FMA), so the float
// results match bitwise across ISAs — integer accumulation is exact anyway.
struct Q8Epilogue {
  const float* a_scales;  // [m] per-row activation scales
  const float* b_scales;  // [n] per-output-channel weight scales
  const float* bias;      // [n] or null
  Activation act;
};

// Quantized panel bodies: rows [i0, i1) of the s32 product over the packed
// pair-interleaved B layout (see PackedQ8Weights in kernels.h). `k2` is the
// packed pair count; `b` points at [k2][n][2] i16 data. Exactly one of
// c32/cf is non-null, selected by `ep`.
void GemmQ8PanelScalar(int64_t i0, int64_t i1, int n, int k2, const int16_t* a, int lda,
                       const int16_t* b, const Q8Epilogue* ep, int32_t* c32, float* cf,
                       int ldc);

// Portable scalar bodies (kernels.cc), written so -O3 can auto-vectorize the
// contiguous j loops with the baseline ISA.
void GemmNNPanelScalar(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                       const float* b, int ldb, float beta, const float* bias,
                       Activation act, float* c, int ldc);
void GemmTNPanelScalar(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                       const float* b, int ldb, float beta, float* c, int ldc);
void GemmNTPanelScalar(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                       const float* b, int ldb, float beta, float* c, int ldc);

#ifdef CDMPP_HAVE_AVX2_KERNELS
// Hand-written AVX2 bodies (kernels_avx2.cc, compiled with -mavx2 -mfma).
// Only defined when CMake detects an x86 target compiler; callers must gate
// on ActiveKernelIsa() == KernelIsa::kAvx2, which is never true otherwise.
void GemmNNPanelAvx2(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                     const float* b, int ldb, float beta, const float* bias,
                     Activation act, float* c, int ldc);
void GemmTNPanelAvx2(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                     const float* b, int ldb, float beta, float* c, int ldc);
void GemmNTPanelAvx2(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                     const float* b, int ldb, float beta, float* c, int ldc);
void GemmQ8PanelAvx2(int64_t i0, int64_t i1, int n, int k2, const int16_t* a, int lda,
                     const int16_t* b, const Q8Epilogue* ep, int32_t* c32, float* cf,
                     int ldc);

// Vectorized body of the per-row activation quantizer (the scalar reference
// lives in src/nn/quantize.cc): rows [i0, i1) of x are scaled, clamped to
// +-qmax, and rounded into 16-bit codes with the row's dequant scale written
// to scales[i]. `inv_col` is null for the plain path, else the per-channel
// 1/c_p multiplied in during BOTH the absmax and rounding passes. BITWISE
// IDENTICAL to the scalar body, element for element: absmax is a max
// reduction (order-independent, so the 8-lane tree reduce changes nothing),
// the per-element multiplies are the same two separately-rounded IEEE
// products (no fused ops anywhere), the clamp is the same min/max, and
// _mm256_cvtps_epi32 rounds nearest-even exactly like the scalar
// std::lrintf under the default FP environment. quantize_test pins the
// equivalence so the int8 tier's cross-ISA bitwise contract survives this
// kernel being dispatched on AVX2 hosts only.
void QuantizeRowsPanelAvx2(int64_t i0, int64_t i1, int k, const float* x, int ldx,
                           const float* inv_col, float qmax, int16_t* q, int ldq,
                           float* scales);
#endif  // CDMPP_HAVE_AVX2_KERNELS

}  // namespace detail
}  // namespace kernels
}  // namespace cdmpp

#endif  // SRC_NN_KERNELS_INTERNAL_H_

#include "src/nn/workspace.h"

#include "src/obs/metrics.h"

namespace cdmpp {

namespace {

// Pool traffic counters: checkouts tell how much per-chunk scratch the data
// plane leases; the steady-state pool size tracks the peak number of live
// leases (serve workers + chunks of every concurrently forked region, now
// that regions compose), so growths that keep climbing after warm-up mean
// arenas are leaking or the workload keeps outgrowing the pool.
obs::Counter& CheckoutCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("workspace_pool.checkouts");
  return c;
}
obs::Counter& GrowthCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("workspace_pool.growths");
  return c;
}

}  // namespace

Matrix* Workspace::NewMatrix(int rows, int cols) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Matrix>());
  }
  Matrix* m = slots_[cursor_].get();
  ++cursor_;
  m->Resize(rows, cols);
  return m;
}

int16_t* Workspace::NewI16(size_t n) {
  if (i16_cursor_ == i16_slots_.size()) {
    i16_slots_.push_back(std::make_unique<std::vector<int16_t>>());
  }
  std::vector<int16_t>* buf = i16_slots_[i16_cursor_].get();
  ++i16_cursor_;
  buf->resize(n);  // vector::resize keeps capacity: no heap traffic once warm
  return buf->data();
}

size_t Workspace::pooled_floats() const {
  size_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->capacity();
  }
  return total;
}

size_t Workspace::pooled_i16() const {
  size_t total = 0;
  for (const auto& slot : i16_slots_) {
    total += slot->capacity();
  }
  return total;
}

Workspace* WorkspacePool::Checkout() {
  CheckoutCounter().Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      Workspace* ws = free_.back();
      free_.pop_back();
      ws->Reset();
      return ws;
    }
  }
  // Growth path: allocate outside the lock (the free list was empty, so no
  // other thread can hand this arena out before we append it).
  GrowthCounter().Add();
  auto owned = std::make_unique<Workspace>();
  Workspace* ws = owned.get();
  std::lock_guard<std::mutex> lock(mu_);
  arenas_.push_back(std::move(owned));
  return ws;
}

void WorkspacePool::Return(Workspace* ws) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(ws);
}

WorkspacePool& WorkspacePool::Global() {
  // Leaked on purpose, like ThreadPool::Global(): leases may be held by
  // worker threads whose shutdown order vs. static destruction is unknowable.
  static WorkspacePool* pool = new WorkspacePool();
  return *pool;
}

size_t WorkspacePool::num_arenas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return arenas_.size();
}

size_t WorkspacePool::num_free() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace cdmpp

#include <set>

#include <gtest/gtest.h>

#include "src/device/device.h"
#include "src/device/simulator.h"
#include "src/tir/schedule.h"

namespace cdmpp {
namespace {

Task BigMatmul() {
  Task t;
  t.kind = OpKind::kDense;
  t.dims = {1024, 1024, 1024};
  t.name = "big_mm";
  return t;
}

ScheduleDesc GoodGpuSchedule() {
  ScheduleDesc s;
  s.primitives.push_back({PrimitiveKind::kSplit, 0, 16});
  s.primitives.push_back({PrimitiveKind::kSplit, 1, 16});
  s.primitives.push_back({PrimitiveKind::kParallel, -1, 0});
  s.primitives.push_back({PrimitiveKind::kVectorize, -1, 0});
  return s;
}

TEST(DeviceTest, RegistryHasNineDevicesFromTable2) {
  const auto& reg = DeviceRegistry();
  ASSERT_EQ(reg.size(), 9u);
  EXPECT_EQ(DeviceByName("T4").clock_mhz, 1590);
  EXPECT_EQ(DeviceByName("K80").mem_gb, 12);
  EXPECT_EQ(DeviceByName("A100").mem_bw_gbps, 1555);
  EXPECT_EQ(DeviceByName("HL-100").cores, 11);
  EXPECT_EQ(DeviceByName("AMD EPYC 7452").cls, DeviceClass::kCpu);
  EXPECT_EQ(DeviceByName("Graviton2").clock_mhz, 2500);
  for (size_t i = 0; i < reg.size(); ++i) {
    EXPECT_EQ(reg[i].id, static_cast<int>(i));
  }
}

TEST(DeviceTest, DeviceClassLists) {
  EXPECT_EQ(GpuDeviceIds().size(), 5u);
  EXPECT_EQ(CpuDeviceIds().size(), 3u);
  for (int id : GpuDeviceIds()) {
    EXPECT_EQ(DeviceById(id).cls, DeviceClass::kGpu);
  }
  for (int id : CpuDeviceIds()) {
    EXPECT_EQ(DeviceById(id).cls, DeviceClass::kCpu);
  }
  EXPECT_EQ(DeviceById(AcceleratorDeviceId()).cls, DeviceClass::kAccelerator);
}

TEST(DeviceTest, FeatureVectorShapeAndClassOneHot) {
  for (const DeviceSpec& spec : DeviceRegistry()) {
    std::vector<float> f = ExtractDeviceFeatures(spec);
    ASSERT_EQ(f.size(), static_cast<size_t>(kDeviceFeatDim));
    EXPECT_FLOAT_EQ(f[9] + f[10] + f[11], 1.0f);
  }
}

TEST(DeviceTest, FingerprintsDistinctAcrossRegistry) {
  std::set<uint64_t> fingerprints;
  for (const DeviceSpec& spec : DeviceRegistry()) {
    fingerprints.insert(spec.Fingerprint());
  }
  EXPECT_EQ(fingerprints.size(), DeviceRegistry().size());
}

TEST(DeviceTest, FingerprintStableAndSpecSensitive) {
  const DeviceSpec& t4 = DeviceByName("T4");
  EXPECT_EQ(t4.Fingerprint(), DeviceByName("T4").Fingerprint());

  DeviceSpec tweaked = t4;
  tweaked.mem_bw_gbps += 1.0;
  EXPECT_NE(tweaked.Fingerprint(), t4.Fingerprint());

  DeviceSpec renamed = t4;
  renamed.name = "T4-b";
  EXPECT_NE(renamed.Fingerprint(), t4.Fingerprint());
}

TEST(SimulatorTest, LatencyPositiveForAllDevices) {
  Rng rng(31);
  Task t = BigMatmul();
  TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
  for (const DeviceSpec& spec : DeviceRegistry()) {
    double lat = SimulateLatencyDeterministic(prog, spec);
    EXPECT_GT(lat, 0.0) << spec.name;
    EXPECT_TRUE(std::isfinite(lat));
  }
}

TEST(SimulatorTest, MoreFlopsTakesLonger) {
  Task small = BigMatmul();
  small.dims = {256, 256, 256};
  Task big = BigMatmul();
  ScheduleDesc sched = GoodGpuSchedule();
  const DeviceSpec& v100 = DeviceByName("V100");
  EXPECT_LT(SimulateLatencyDeterministic(GenerateProgram(small, sched), v100),
            SimulateLatencyDeterministic(GenerateProgram(big, sched), v100));
}

TEST(SimulatorTest, FastGpuBeatsSlowGpuOnBigGemm) {
  TensorProgram prog = GenerateProgram(BigMatmul(), GoodGpuSchedule());
  double a100 = SimulateLatencyDeterministic(prog, DeviceByName("A100"));
  double k80 = SimulateLatencyDeterministic(prog, DeviceByName("K80"));
  EXPECT_LT(a100, k80);
}

TEST(SimulatorTest, ParallelAnnotationHelpsOnCpu) {
  Task t = BigMatmul();
  ScheduleDesc serial;
  ScheduleDesc parallel;
  parallel.primitives.push_back({PrimitiveKind::kParallel, -1, 0});
  const DeviceSpec& cpu = DeviceByName("Graviton2");
  EXPECT_LT(SimulateLatencyDeterministic(GenerateProgram(t, parallel), cpu),
            SimulateLatencyDeterministic(GenerateProgram(t, serial), cpu));
}

TEST(SimulatorTest, VectorizeHelpsOnCpu) {
  Task t = BigMatmul();
  ScheduleDesc plain;
  plain.primitives.push_back({PrimitiveKind::kParallel, -1, 0});
  ScheduleDesc vec = plain;
  vec.primitives.push_back({PrimitiveKind::kVectorize, -1, 0});
  const DeviceSpec& cpu = DeviceByName("Intel E5-2673");
  EXPECT_LT(SimulateLatencyDeterministic(GenerateProgram(t, vec), cpu),
            SimulateLatencyDeterministic(GenerateProgram(t, plain), cpu));
}

TEST(SimulatorTest, TilingAffectsLatency) {
  // Cache-aware tiling must matter, otherwise schedule search is trivial.
  Task t = BigMatmul();
  ScheduleDesc untiled;
  untiled.primitives.push_back({PrimitiveKind::kParallel, -1, 0});
  ScheduleDesc tiled = GoodGpuSchedule();
  const DeviceSpec& t4 = DeviceByName("T4");
  double lat_untiled = SimulateLatencyDeterministic(GenerateProgram(t, untiled), t4);
  double lat_tiled = SimulateLatencyDeterministic(GenerateProgram(t, tiled), t4);
  EXPECT_NE(lat_untiled, lat_tiled);
}

TEST(SimulatorTest, Hl100FavorsGemmOverPointwise) {
  // HL-100's GEMM affinity: the accelerator should look relatively better on
  // a matmul than on a pointwise op, compared to a CPU baseline.
  Task mm = BigMatmul();
  Task ew;
  ew.kind = OpKind::kElementwise;
  ew.dims = {1024 * 1024};
  ew.name = "ew";
  ScheduleDesc sched;
  sched.primitives.push_back({PrimitiveKind::kParallel, -1, 0});
  const DeviceSpec& hl = DeviceByName("HL-100");
  const DeviceSpec& cpu = DeviceByName("Intel E5-2673");
  double mm_ratio = SimulateLatencyDeterministic(GenerateProgram(mm, sched), hl) /
                    SimulateLatencyDeterministic(GenerateProgram(mm, sched), cpu);
  double ew_ratio = SimulateLatencyDeterministic(GenerateProgram(ew, sched), hl) /
                    SimulateLatencyDeterministic(GenerateProgram(ew, sched), cpu);
  EXPECT_LT(mm_ratio, ew_ratio);
}

TEST(SimulatorTest, NoiseIsDeterministicGivenSeed) {
  Rng rng_a(77);
  Rng rng_b(77);
  Task t = BigMatmul();
  TensorProgram prog = GenerateProgram(t, GoodGpuSchedule());
  const DeviceSpec& t4 = DeviceByName("T4");
  EXPECT_DOUBLE_EQ(SimulateLatency(prog, t4, 0.05, &rng_a),
                   SimulateLatency(prog, t4, 0.05, &rng_b));
}

TEST(SimulatorTest, NoiseIsSmallMultiplicative) {
  Rng rng(78);
  Task t = BigMatmul();
  TensorProgram prog = GenerateProgram(t, GoodGpuSchedule());
  const DeviceSpec& t4 = DeviceByName("T4");
  double base = SimulateLatencyDeterministic(prog, t4);
  for (int i = 0; i < 100; ++i) {
    double noisy = SimulateLatency(prog, t4, 0.03, &rng);
    EXPECT_GT(noisy, base * 0.8);
    EXPECT_LT(noisy, base * 1.25);
  }
}

TEST(SimulatorTest, LeafTimingComponentsNonNegative) {
  Rng rng(79);
  Task t = BigMatmul();
  TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
  for (const LeafContext& leaf : CollectLeaves(*prog.root)) {
    LeafTiming timing = SimulateLeaf(leaf, DeviceByName("P100"));
    EXPECT_GE(timing.compute_seconds, 0.0);
    EXPECT_GE(timing.memory_seconds, 0.0);
    EXPECT_GE(timing.overhead_seconds, 0.0);
    EXPECT_GE(timing.Total(), 0.0);
  }
}

// Cross-device latency ordering differs per workload class: the ranking of
// devices on a memory-bound op should not match the compute-bound ranking
// everywhere — that is what makes CDPP a real distribution shift.
TEST(SimulatorTest, DeviceRankingIsWorkloadDependent) {
  Task mm = BigMatmul();
  Task copy;
  copy.kind = OpKind::kTranspose;
  copy.dims = {4096, 4096};
  copy.name = "copy";
  ScheduleDesc sched;
  sched.primitives.push_back({PrimitiveKind::kParallel, -1, 0});

  auto rank = [&](const Task& task) {
    std::vector<std::pair<double, std::string>> lat;
    for (const DeviceSpec& spec : DeviceRegistry()) {
      lat.emplace_back(SimulateLatencyDeterministic(GenerateProgram(task, sched), spec),
                       spec.name);
    }
    std::sort(lat.begin(), lat.end());
    std::vector<std::string> names;
    for (auto& [_, name] : lat) {
      names.push_back(name);
    }
    return names;
  };
  EXPECT_NE(rank(mm), rank(copy));
}

}  // namespace
}  // namespace cdmpp

#include "src/baselines/xgb_model.h"

#include <chrono>

#include "src/support/check.h"

namespace cdmpp {

Matrix XgbCostModel::FeatureMatrix(const Dataset& ds, const std::vector<int>& indices) const {
  CDMPP_CHECK(!indices.empty());
  const int agg_dim = kFeatDim + 2;
  Matrix x(static_cast<int>(indices.size()), agg_dim + kDeviceFeatDim);
  for (size_t i = 0; i < indices.size(); ++i) {
    const Sample& s = ds.samples[static_cast<size_t>(indices[i])];
    std::vector<float> agg =
        AggregateFeatures(ds.programs[static_cast<size_t>(s.program_index)].ast);
    std::vector<float> dev = ExtractDeviceFeatures(DeviceById(s.device_id));
    float* row = x.Row(static_cast<int>(i));
    for (int j = 0; j < agg_dim; ++j) {
      row[j] = agg[static_cast<size_t>(j)];
    }
    for (int j = 0; j < kDeviceFeatDim; ++j) {
      row[agg_dim + j] = dev[static_cast<size_t>(j)];
    }
  }
  return x;
}

double XgbCostModel::Fit(const Dataset& ds, const std::vector<int>& train, Rng* rng) {
  Matrix x = FeatureMatrix(ds, train);
  std::vector<double> y = GatherLabels(ds, train);
  for (double& v : y) {
    v *= 1e3;  // ms
  }
  transform_ = MakeLabelTransform(NormKind::kBoxCox);
  transform_->Fit(y);
  std::vector<double> t = transform_->TransformAll(y);
  auto start = std::chrono::steady_clock::now();
  gbt_.Fit(x, t, rng);
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  return secs > 0.0 ? static_cast<double>(train.size()) * gbt_.num_trees() / secs : 0.0;
}

double XgbCostModel::PredictAst(const CompactAst& ast, int device_id) const {
  CDMPP_CHECK(transform_ != nullptr);
  const int agg_dim = kFeatDim + 2;
  std::vector<float> row(static_cast<size_t>(agg_dim + kDeviceFeatDim));
  std::vector<float> agg = AggregateFeatures(ast);
  std::vector<float> dev = ExtractDeviceFeatures(DeviceById(device_id));
  for (int j = 0; j < agg_dim; ++j) {
    row[static_cast<size_t>(j)] = agg[static_cast<size_t>(j)];
  }
  for (int j = 0; j < kDeviceFeatDim; ++j) {
    row[static_cast<size_t>(agg_dim + j)] = dev[static_cast<size_t>(j)];
  }
  return transform_->Inverse(gbt_.PredictOne(row.data())) / 1e3;
}

std::vector<double> XgbCostModel::Predict(const Dataset& ds,
                                          const std::vector<int>& indices) const {
  CDMPP_CHECK(transform_ != nullptr);
  Matrix x = FeatureMatrix(ds, indices);
  std::vector<double> t = gbt_.Predict(x);
  std::vector<double> out(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    out[i] = transform_->Inverse(t[i]) / 1e3;  // back to seconds
  }
  return out;
}

}  // namespace cdmpp

// Analytical device latency simulator — the ground-truth oracle.
//
// The paper measures tensor programs on real hardware (Tenset + the authors'
// own profiling). This repo has no accelerators, so ground truth is produced
// by an analytical model over the scheduled loop nest: a roofline core
// (compute vs. memory time) refined with cache-tile analysis, occupancy
// saturation, vectorization efficiency, loop overhead and per-kernel launch
// cost, plus multiplicative log-normal measurement noise. The model is
// deliberately nonlinear in both the program structure and the device spec so
// that cross-model and cross-device prediction are non-trivial learning
// problems, as in the paper.
#ifndef SRC_DEVICE_SIMULATOR_H_
#define SRC_DEVICE_SIMULATOR_H_

#include "src/device/device.h"
#include "src/support/rng.h"
#include "src/tir/program.h"

namespace cdmpp {

// Per-leaf timing breakdown, exposed for tests and examples.
struct LeafTiming {
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  double overhead_seconds = 0.0;
  double Total() const;
};

// Deterministic latency (seconds) of one scheduled program on one device.
double SimulateLatencyDeterministic(const TensorProgram& prog, const DeviceSpec& spec);

// Latency with multiplicative log-normal measurement noise exp(N(0, sigma)).
double SimulateLatency(const TensorProgram& prog, const DeviceSpec& spec, double noise_sigma,
                       Rng* rng);

// Timing of a single leaf in its loop context (unit-tested building block).
LeafTiming SimulateLeaf(const LeafContext& leaf, const DeviceSpec& spec);

}  // namespace cdmpp

#endif  // SRC_DEVICE_SIMULATOR_H_

// Workspace: a bump arena of reusable Matrix buffers for the inference hot
// path.
//
// Every ForwardInference(..., Workspace*) overload takes its output and all
// intermediate tensors from the workspace instead of the heap. Usage:
//
//   Workspace ws;                       // one per thread (not thread-safe)
//   ws.Reset();                         // rewind before each forward pass
//   Matrix* y = layer.ForwardInference(x, &ws);  // valid until next Reset()
//
// Reset() rewinds the slot cursor without freeing, so after the first pass
// per shape ("warm"), NewMatrix is a pointer bump plus a capacity-preserving
// resize: steady-state forward passes perform zero heap allocations (see
// tests/dataplane_test.cc, which asserts this with a counting allocator).
// Matrices keep stable addresses across Reset() because slots are pooled
// behind unique_ptr.
#ifndef SRC_NN_WORKSPACE_H_
#define SRC_NN_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/matrix.h"

namespace cdmpp {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Returns a [rows, cols] matrix owned by the workspace, valid until the
  // next Reset(). Contents are unspecified (callers that accumulate must
  // Zero() first); kernels with beta=0 overwrite every element anyway.
  Matrix* NewMatrix(int rows, int cols);

  // Returns an int16 scratch buffer of `n` elements, valid until the next
  // Reset(). The int8-quantized inference path stages its per-row quantized
  // activations here (int8-range values in 16-bit lanes — see
  // src/nn/quantize.h); pooled separately from the Matrix slots but with the
  // same warm-path guarantee: steady-state passes allocate nothing.
  int16_t* NewI16(size_t n);

  // Rewinds the arena. Pooled buffers (and their float capacity) survive, so
  // the next pass with the same shapes allocates nothing.
  void Reset() {
    cursor_ = 0;
    i16_cursor_ = 0;
  }

  // Introspection (tests, stats).
  size_t num_slots() const { return slots_.size(); }
  size_t live_slots() const { return cursor_; }
  size_t pooled_floats() const;
  size_t pooled_i16() const;

 private:
  std::vector<std::unique_ptr<Matrix>> slots_;
  size_t cursor_ = 0;
  std::vector<std::unique_ptr<std::vector<int16_t>>> i16_slots_;
  size_t i16_cursor_ = 0;
};

}  // namespace cdmpp

#endif  // SRC_NN_WORKSPACE_H_

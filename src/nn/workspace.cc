#include "src/nn/workspace.h"

namespace cdmpp {

Matrix* Workspace::NewMatrix(int rows, int cols) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Matrix>());
  }
  Matrix* m = slots_[cursor_].get();
  ++cursor_;
  m->Resize(rows, cols);
  return m;
}

int16_t* Workspace::NewI16(size_t n) {
  if (i16_cursor_ == i16_slots_.size()) {
    i16_slots_.push_back(std::make_unique<std::vector<int16_t>>());
  }
  std::vector<int16_t>* buf = i16_slots_[i16_cursor_].get();
  ++i16_cursor_;
  buf->resize(n);  // vector::resize keeps capacity: no heap traffic once warm
  return buf->data();
}

size_t Workspace::pooled_floats() const {
  size_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->capacity();
  }
  return total;
}

size_t Workspace::pooled_i16() const {
  size_t total = 0;
  for (const auto& slot : i16_slots_) {
    total += slot->capacity();
  }
  return total;
}

}  // namespace cdmpp

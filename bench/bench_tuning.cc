// End-to-end tuning benchmark: schedule search and autotuner trial scoring as
// serving clients (the scenario the whole serving tier exists for — paper
// §7.5 / Fig. 14(b): a cost model absorbing the candidate stream of a tuner).
//
// Folds the former bench_fig14b_schedule_search (cost-model-guided search
// quality: CDMPP vs XGBoost vs random) and bench_tab06_autotuner (Table-6
// style best-config search) into one machine-readable bench. Headline
// numbers, all landing in BENCH_tuning.json:
//   * end-to-end tuning wall-clock and candidates/sec, serve-batched
//     (ServeCostModel -> PredictionService) vs direct-serial
//     (DirectCostModel), evolutionary + simulated-annealing drivers
//   * serving-side cache hit rate and client-side dedup over the search's
//     candidate stream
//   * best-schedule quality parity: same seed must find the bitwise-same
//     schedule under both clients (the SearchCurve determinism contract)
// Two CI gates, best-of-N interleaved pairs like the serve bench's:
//   (a) serve-batched candidates/sec >= 1.5x direct-serial
//   (b) quality parity: identical curves + best-AST hash across clients
// The precision (fp32 / int8) comes from the ServeOptions / DirectCostModel
// defaults, i.e. CDMPP_PRECISION — the int8 CI leg tunes through the
// quantized tier with no bench-side changes.
// Build & run:  ./build/bench/bench_tuning [--smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/baselines/xgb_model.h"
#include "src/core/autotuner.h"
#include "src/dataset/model_zoo.h"
#include "src/exp/exp_common.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/search/cost_model_client.h"
#include "src/search/sa_search.h"
#include "src/search/schedule_search.h"
#include "src/serve/prediction_service.h"
#include "src/support/json_writer.h"
#include "src/support/table.h"

using namespace cdmpp;

namespace {

// One measured tuning run: every task searched once through one client.
struct RunTotals {
  std::vector<SearchCurve> curves;  // one per task
  int candidates = 0;               // cost-model queries issued by the drivers
  double seconds = 0.0;             // wall-clock inside ScoreBatch
  uint64_t deduped = 0;             // client-side batch-local dedup hits
  double cache_hit_rate = 0.0;      // serving cache (serve runs only)
  double candidates_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(candidates) / seconds : 0.0;
  }
};

// Drives every task through `client` with the given search function
// (evolutionary or SA — both emit SearchCurve).
template <typename SearchFn>
RunTotals RunTasks(const std::vector<const Task*>& tasks, const DeviceSpec& device,
                   CostModelClient* client, const SearchFn& search) {
  RunTotals totals;
  for (const Task* task : tasks) {
    SearchCurve curve = search(*task, device, client);
    totals.candidates += curve.total_candidates;
    totals.seconds += curve.score_seconds;
    totals.curves.push_back(std::move(curve));
  }
  totals.deduped = client->stats().deduped;
  return totals;
}

template <typename SearchFn>
RunTotals RunDirect(CdmppPredictor* predictor, const std::vector<const Task*>& tasks,
                    const DeviceSpec& device, const SearchFn& search) {
  DirectCostModel client(predictor);
  return RunTasks(tasks, device, &client, search);
}

ServeOptions TuningServeOptions() {
  ServeOptions opts;
  opts.num_workers = 2;
  opts.max_batch_size = 64;
  // The client bulk-enqueues whole populations, so batches already form at
  // population size; a batch window would only add sleep per ScoreBatch.
  opts.batch_window_ms = 0.0;
  opts.enable_cache = true;
  return opts;
}

// One tuning run against a caller-owned (long-lived) service. The service's
// cache deliberately persists across runs: re-tuning the same tasks is the
// serving tier's bread and butter — re-visited candidates resolve from the
// sharded LRU instead of the forward pass, bitwise identically (the parity
// gate checks every run against the cold direct curves, so a cache that
// changed any score would fail loudly). ResetStats reopens the counter
// window so cache_hit_rate is per run.
template <typename SearchFn>
RunTotals RunServe(PredictionService* service, const std::vector<const Task*>& tasks,
                   const DeviceSpec& device, const SearchFn& search) {
  service->ResetStats();
  ServeCostModel client(service);
  RunTotals totals = RunTasks(tasks, device, &client, search);
  totals.cache_hit_rate = service->Stats().cache_hit_rate;
  return totals;
}

// The quality-parity gate: bitwise-equal curves and the same best schedule.
bool CurvesEqual(const SearchCurve& a, const SearchCurve& b) {
  return a.best_after_round == b.best_after_round && a.final_best == b.final_best &&
         a.best_ast_hash == b.best_ast_hash &&
         a.total_measurements == b.total_measurements;
}

bool RunsParity(const RunTotals& a, const RunTotals& b) {
  if (a.curves.size() != b.curves.size()) {
    return false;
  }
  for (size_t i = 0; i < a.curves.size(); ++i) {
    if (!CurvesEqual(a.curves[i], b.curves[i])) {
      return false;
    }
  }
  return true;
}

void EmitCurve(JsonWriter* w, const SearchCurve& curve) {
  w->BeginObject();
  w->Key("final_best_ms");
  w->Double(curve.final_best * 1e3);
  w->Key("best_ast_hash");
  w->Uint(curve.best_ast_hash);
  w->Key("total_candidates");
  w->Int(curve.total_candidates);
  w->Key("total_measurements");
  w->Int(curve.total_measurements);
  w->Key("best_after_round_ms");
  w->BeginArray();
  for (double v : curve.best_after_round) {
    w->Double(v * 1e3);
  }
  w->EndArray();
  w->EndObject();
}

void EmitRunTotals(JsonWriter* w, const RunTotals& totals, bool serve) {
  w->BeginObject();
  w->Key("candidates");
  w->Int(totals.candidates);
  w->Key("score_seconds");
  w->Double(totals.seconds);
  w->Key("candidates_per_sec");
  w->Double(totals.candidates_per_sec());
  w->Key("deduped");
  w->Uint(totals.deduped);
  if (serve) {
    w->Key("cache_hit_rate");
    w->Double(totals.cache_hit_rate);
  }
  w->EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  PrintBenchHeader("bench_tuning", "Fig. 14(b) + Table 6 + §7.5 timing",
                   "serve-batched vs direct-serial autotuning: wall-clock, "
                   "candidates/sec, cache hits, best-schedule quality");

  // ---- Cost model under tuning: quick pre-train on a T4 slice. ----
  DatasetOptions dopts;
  dopts.device_ids = {0};
  dopts.schedules_per_task = 3;
  dopts.max_networks = smoke ? 5 : 10;
  dopts.seed = 21;
  Dataset ds = BuildDataset(dopts);

  PredictorConfig cfg;
  cfg.epochs = smoke ? 2 : 6;
  cfg.seed = 22;
  CdmppPredictor predictor(cfg);
  Rng rng(23);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  std::printf("Pre-training the cost model (%zu samples, %d epochs)...\n", split.train.size(),
              cfg.epochs);
  predictor.Pretrain(ds, split.train, split.valid);

  XgbCostModel xgb;
  Rng xrng(13100);
  xgb.Fit(ds, split.train, &xrng);

  // ---- Search targets: BERT-tiny's heaviest tasks on T4. ----
  NetworkDef net = BuildNetworkByName("bert_tiny_bs1_s128");
  std::vector<const Task*> tasks;
  for (const NetworkOp& op : net.ops) {
    tasks.push_back(&op.task);
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const Task* a, const Task* b) { return a->Flops() > b->Flops(); });
  tasks.resize(smoke ? 2 : 3);
  const DeviceSpec& t4 = DeviceByName("T4");

  SearchOptions evo_opts;
  evo_opts.rounds = smoke ? 10 : 40;
  evo_opts.population = smoke ? 16 : 24;
  evo_opts.measured_per_round = 4;
  const auto evolutionary = [&](const Task& task, const DeviceSpec& device,
                                CostModelClient* client) {
    return EvolutionarySearch(task, device, client, evo_opts);
  };

  SaOptions sa_opts;
  sa_opts.sweeps = smoke ? 10 : 30;
  sa_opts.chains = 16;
  sa_opts.measured_per_sweep = 2;
  const auto annealing = [&](const Task& task, const DeviceSpec& device,
                             CostModelClient* client) {
    return SimulatedAnnealingSearch(task, device, client, sa_opts);
  };

  // Warm-up pass: a same-seed search visits exactly the candidate set of the
  // measured runs (the determinism contract), so this materializes every
  // (quantized) head the A/B runs will need — head creation cost and ordering
  // then cannot differ between the direct and serve sides.
  RunDirect(&predictor, tasks, t4, evolutionary);
  RunDirect(&predictor, tasks, t4, annealing);

  // ---- Gate (a): serve-batched vs direct-serial candidates/sec. ----
  // One long-lived PredictionService spans the whole A/B (the serving tier
  // outlives any single tuning session); interleaved pairs with alternating
  // order, best pair ratio. Pair 0's serve run is cache-cold and measures the
  // pure bulk-batching delta; later pairs re-tune the same tasks against the
  // warm sharded LRU — the steady-state regime the serving tier exists for.
  // Best-of-pairs therefore gates the warm regime; the per-pair table and
  // JSON record the cold numbers and every hit rate alongside.
  const int kPairs = 3;
  PredictionService tuning_service(&predictor, TuningServeOptions());
  RunTotals evo_direct, evo_serve;  // kept from the first (cache-cold) pair
  double best_evo_ratio = 0.0;
  struct PairRecord {
    double direct_cps = 0.0;
    double serve_cps = 0.0;
    double serve_hit_rate = 0.0;
  };
  std::vector<PairRecord> evo_pairs;
  bool evo_parity_ok = true;
  for (int p = 0; p < kPairs; ++p) {
    RunTotals d, s;
    if (p % 2 == 0) {
      d = RunDirect(&predictor, tasks, t4, evolutionary);
      s = RunServe(&tuning_service, tasks, t4, evolutionary);
    } else {
      s = RunServe(&tuning_service, tasks, t4, evolutionary);
      d = RunDirect(&predictor, tasks, t4, evolutionary);
    }
    if (d.candidates_per_sec() > 0.0) {
      best_evo_ratio = std::max(best_evo_ratio, s.candidates_per_sec() / d.candidates_per_sec());
    }
    evo_pairs.push_back({d.candidates_per_sec(), s.candidates_per_sec(), s.cache_hit_rate});
    // Gate (b), best-schedule quality parity, checked on EVERY pair: the
    // direct and serve curves must be bitwise identical whether the serve
    // side computed each score or answered it from cache.
    evo_parity_ok = evo_parity_ok && RunsParity(d, s);
    if (p == 0) {
      evo_direct = std::move(d);
      evo_serve = std::move(s);
    }
  }
  const bool evo_throughput_ok = best_evo_ratio >= 1.5;

  TablePrinter evo_table({"pair", "direct cand/s", "serve cand/s", "ratio", "serve hit rate"});
  for (size_t p = 0; p < evo_pairs.size(); ++p) {
    evo_table.AddRow({std::to_string(p), FormatDouble(evo_pairs[p].direct_cps, 0),
                      FormatDouble(evo_pairs[p].serve_cps, 0),
                      FormatDouble(evo_pairs[p].direct_cps > 0.0
                                       ? evo_pairs[p].serve_cps / evo_pairs[p].direct_cps
                                       : 0.0,
                                   2),
                      FormatPercent(evo_pairs[p].serve_hit_rate, 1)});
  }
  std::printf("\nEvolutionary search, serve-batched vs direct-serial (%d interleaved pairs):\n",
              kPairs);
  evo_table.Print(stdout);
  std::printf("Best pair ratio %.2fx [%s]; quality parity [%s]\n", best_evo_ratio,
              evo_throughput_ok ? "PASS" : "FAIL: < 1.5x",
              evo_parity_ok ? "PASS" : "FAIL: curves diverge");

  // ---- Simulated annealing: same A/B, one pair (the gate already ran). ----
  // Shares the long-lived service; SA proposes mostly fresh mutants, so its
  // hit rate reflects within-run revisits, not the evolutionary runs above.
  RunTotals sa_direct = RunDirect(&predictor, tasks, t4, annealing);
  RunTotals sa_serve = RunServe(&tuning_service, tasks, t4, annealing);
  const bool sa_parity_ok = RunsParity(sa_direct, sa_serve);
  const double sa_ratio = sa_direct.candidates_per_sec() > 0.0
                              ? sa_serve.candidates_per_sec() / sa_direct.candidates_per_sec()
                              : 0.0;
  std::printf("\nSimulated annealing: direct %.0f cand/s vs serve %.0f cand/s (%.2fx), "
              "serve hit rate %.1f%%, parity [%s]\n",
              sa_direct.candidates_per_sec(), sa_serve.candidates_per_sec(), sa_ratio,
              100.0 * sa_serve.cache_hit_rate, sa_parity_ok ? "PASS" : "FAIL");

  // ---- Fig. 14(b) fold-in: search quality by cost model. ----
  // CDMPP (serve-batched) vs XGBoost (FnCostModel) vs pure random; per-task
  // final bests + per-round curves land in the JSON instead of a CSV.
  struct QualityRecord {
    std::string task;
    SearchCurve cdmpp;
    SearchCurve xgb;
    SearchCurve random;
  };
  std::vector<QualityRecord> quality;
  {
    const CostModelFn xgb_fn = [&](const CompactAst& ast, int dev) {
      return xgb.PredictAst(ast, dev);
    };
    for (size_t i = 0; i < tasks.size(); ++i) {
      QualityRecord rec;
      rec.task = tasks[i]->name;
      rec.cdmpp = evo_serve.curves[i];
      FnCostModel xgb_client(xgb_fn);
      rec.xgb = EvolutionarySearch(*tasks[i], t4, &xgb_client, evo_opts);
      rec.random = RandomSearch(*tasks[i], t4, evo_opts);
      quality.push_back(std::move(rec));
    }
  }
  TablePrinter quality_table({"task", "CDMPP-guided (ms)", "XGB-guided (ms)", "random (ms)"});
  for (const QualityRecord& rec : quality) {
    quality_table.AddRow({rec.task, FormatDouble(rec.cdmpp.final_best * 1e3, 4),
                          FormatDouble(rec.xgb.final_best * 1e3, 4),
                          FormatDouble(rec.random.final_best * 1e3, 4)});
  }
  std::printf("\nSearch quality by cost model (Fig. 14(b) analogue):\n");
  quality_table.Print(stdout);

  // ---- Table 6 fold-in: autotuner best-config search, serve-scored. ----
  AutotuneOptions tune_opts;
  tune_opts.num_trials = smoke ? 2 : 6;
  tune_opts.epochs_per_trial = smoke ? 1 : 4;
  tune_opts.scoring = TrialScoring::kServe;
  AutotuneResult tuned = Autotune(ds, Take(split.train, smoke ? 300 : 1200),
                                  Take(split.valid, smoke ? 80 : 250), tune_opts);
  const PredictorConfig& best_cfg = tuned.best.config;
  std::printf("\nAutotuner (Table 6 analogue, %d trials, serve-scored): best valid MAPE %s\n",
              tune_opts.num_trials, FormatPercent(tuned.best.valid_mape, 2).c_str());
  TablePrinter tune_table({"variable", "value"});
  tune_table.AddRow({"batch size", std::to_string(best_cfg.batch_size)});
  tune_table.AddRow({"d_model (encoder width)", std::to_string(best_cfg.d_model)});
  tune_table.AddRow({"# of transformer layers", std::to_string(best_cfg.num_layers)});
  tune_table.AddRow({"optimizer type",
                     best_cfg.optimizer == OptimizerKind::kAdam ? "Adam" : "SGD"});
  tune_table.AddRow({"learning rate", FormatDouble(best_cfg.lr, 6)});
  tune_table.AddRow({"trial-scoring candidates", std::to_string(tuned.scored_candidates)});
  tune_table.AddRow({"trial-scoring wall-clock (s)", FormatDouble(tuned.scoring_seconds, 3)});
  tune_table.AddRow({"trial-scoring cache hit rate",
                     FormatPercent(tuned.scoring_cache_hit_rate, 1)});
  tune_table.Print(stdout);

  // ---- BENCH_tuning.json: the machine-readable trajectory record. ----
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String("tuning");
    w.Key("smoke");
    w.Bool(smoke);
    w.Key("precision");
    w.String(PrecisionName(DefaultPrecision()));
    w.Key("tasks");
    w.BeginArray();
    for (const Task* task : tasks) {
      w.String(task->name);
    }
    w.EndArray();

    w.Key("evolutionary");
    w.BeginObject();
    w.Key("rounds");
    w.Int(evo_opts.rounds);
    w.Key("population");
    w.Int(evo_opts.population);
    w.Key("direct");
    EmitRunTotals(&w, evo_direct, /*serve=*/false);
    w.Key("serve");
    EmitRunTotals(&w, evo_serve, /*serve=*/true);
    w.Key("pairs");
    w.BeginArray();
    for (const PairRecord& pair : evo_pairs) {
      w.BeginObject();
      w.Key("direct_cps");
      w.Double(pair.direct_cps);
      w.Key("serve_cps");
      w.Double(pair.serve_cps);
      w.Key("serve_hit_rate");
      w.Double(pair.serve_hit_rate);
      w.EndObject();
    }
    w.EndArray();
    w.Key("best_pair_ratio");
    w.Double(best_evo_ratio);
    w.Key("throughput_gate");
    w.String(evo_throughput_ok ? "pass" : "fail");
    w.Key("parity_gate");
    w.String(evo_parity_ok ? "pass" : "fail");
    w.Key("curves");
    w.BeginArray();
    for (size_t i = 0; i < tasks.size(); ++i) {
      w.BeginObject();
      w.Key("task");
      w.String(tasks[i]->name);
      w.Key("serve");
      EmitCurve(&w, evo_serve.curves[i]);
      w.Key("direct");
      EmitCurve(&w, evo_direct.curves[i]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();

    w.Key("sa");
    w.BeginObject();
    w.Key("sweeps");
    w.Int(sa_opts.sweeps);
    w.Key("chains");
    w.Int(sa_opts.chains);
    w.Key("direct");
    EmitRunTotals(&w, sa_direct, /*serve=*/false);
    w.Key("serve");
    EmitRunTotals(&w, sa_serve, /*serve=*/true);
    w.Key("serve_vs_direct_ratio");
    w.Double(sa_ratio);
    w.Key("parity_gate");
    w.String(sa_parity_ok ? "pass" : "fail");
    w.Key("curves");
    w.BeginArray();
    for (size_t i = 0; i < tasks.size(); ++i) {
      w.BeginObject();
      w.Key("task");
      w.String(tasks[i]->name);
      w.Key("serve");
      EmitCurve(&w, sa_serve.curves[i]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();

    w.Key("fig14b");
    w.BeginArray();
    for (const QualityRecord& rec : quality) {
      w.BeginObject();
      w.Key("task");
      w.String(rec.task);
      w.Key("cdmpp_best_ms");
      w.Double(rec.cdmpp.final_best * 1e3);
      w.Key("xgb_best_ms");
      w.Double(rec.xgb.final_best * 1e3);
      w.Key("random_best_ms");
      w.Double(rec.random.final_best * 1e3);
      w.Key("xgb");
      EmitCurve(&w, rec.xgb);
      w.Key("random");
      EmitCurve(&w, rec.random);
      w.EndObject();
    }
    w.EndArray();

    w.Key("tab06");
    w.BeginObject();
    w.Key("num_trials");
    w.Int(tune_opts.num_trials);
    w.Key("best_valid_mape");
    w.Double(tuned.best.valid_mape);
    w.Key("best_config");
    w.BeginObject();
    w.Key("batch_size");
    w.Int(best_cfg.batch_size);
    w.Key("d_model");
    w.Int(best_cfg.d_model);
    w.Key("num_layers");
    w.Int(best_cfg.num_layers);
    w.Key("z_dim");
    w.Int(best_cfg.z_dim);
    w.Key("optimizer");
    w.String(best_cfg.optimizer == OptimizerKind::kAdam ? "adam" : "sgd");
    w.Key("lr");
    w.Double(best_cfg.lr);
    w.Key("use_cyclic_lr");
    w.Bool(best_cfg.use_cyclic_lr);
    w.Key("weight_decay");
    w.Double(best_cfg.weight_decay);
    w.EndObject();
    w.Key("trials");
    w.BeginArray();
    for (const AutotuneTrial& trial : tuned.trials) {
      w.BeginObject();
      w.Key("d_model");
      w.Int(trial.config.d_model);
      w.Key("num_layers");
      w.Int(trial.config.num_layers);
      w.Key("batch_size");
      w.Int(trial.config.batch_size);
      w.Key("lr");
      w.Double(trial.config.lr);
      w.Key("valid_mape");
      w.Double(trial.valid_mape);
      w.EndObject();
    }
    w.EndArray();
    w.Key("scored_candidates");
    w.Uint(tuned.scored_candidates);
    w.Key("scoring_seconds");
    w.Double(tuned.scoring_seconds);
    w.Key("scoring_cache_hit_rate");
    w.Double(tuned.scoring_cache_hit_rate);
    w.EndObject();

    w.EndObject();
    w.WriteFile("BENCH_tuning.json");
    std::printf("\nWrote BENCH_tuning.json\n");
  }

  // Full observability snapshot (the serve runs feed the registry/traces),
  // same artifact name the serve bench uses so CI uploads stay uniform.
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("metrics");
    w.RawValue(obs::MetricsRegistry::Global().DumpJson());
    w.Key("traces");
    w.RawValue(obs::TraceCollector::Global().DumpJson());
    w.EndObject();
    w.WriteFile("METRICS_serve.json");
    std::printf("Wrote METRICS_serve.json\n");
  }

  int rc = 0;
  if (!evo_throughput_ok) {
    std::fprintf(stderr,
                 "FAIL: serve-batched scoring only %.2fx direct-serial candidates/sec "
                 "(need >= 1.5x in the best of %d interleaved pairs)\n",
                 best_evo_ratio, kPairs);
    rc = 1;
  }
  if (!evo_parity_ok || !sa_parity_ok) {
    std::fprintf(stderr,
                 "FAIL: best-schedule quality parity broken (%s driver): same seed must "
                 "produce bitwise-identical curves under both clients\n",
                 !evo_parity_ok ? "evolutionary" : "sa");
    rc = 1;
  }
  return rc;
}

// TLP-style baseline (Zhai et al., ASPLOS'23): featurizes the *schedule
// primitive sequence* (not the program body) and predicts the latency of a
// program *relative* to its task's mean latency. Absolute predictions are
// recovered by multiplying with the task mean measured on the training
// devices — which is exactly why TLP's absolute-time error is large on an
// unseen device (paper §7.3).
#ifndef SRC_BASELINES_TLP_H_
#define SRC_BASELINES_TLP_H_

#include <map>
#include <memory>

#include "src/dataset/dataset.h"
#include "src/nn/layers.h"
#include "src/nn/optimizer.h"

namespace cdmpp {

struct TlpConfig {
  int hidden_dim = 64;
  double lr = 2e-3;
  int epochs = 40;
  int batch_size = 64;
  uint64_t seed = 23;
};

class TlpModel {
 public:
  explicit TlpModel(const TlpConfig& config);

  // Trains on the given samples; task means are computed from these samples'
  // devices only.
  void Fit(const Dataset& ds, const std::vector<int>& train);
  // Absolute latency predictions (seconds): relative output x training-task
  // mean (falls back to the global mean for unseen tasks).
  std::vector<double> Predict(const Dataset& ds, const std::vector<int>& indices);

 private:
  std::vector<float> Features(const Dataset& ds, const Sample& s) const;

  TlpConfig config_;
  Rng rng_;
  std::unique_ptr<Mlp> mlp_;
  std::unique_ptr<Adam> adam_;
  std::map<int, double> task_mean_seconds_;
  double global_mean_seconds_ = 1e-3;
};

}  // namespace cdmpp

#endif  // SRC_BASELINES_TLP_H_

// Reproduces paper Fig. 13: effect of the fine-tuning sampling strategy for
// CDPP. Target device T4, sources = other GPUs. For each budget of sampled
// tasks kappa, fine-tune on the programs of the selected tasks profiled on
// T4 and compare KMeans-based selection (Algorithm 1) against random
// selection (averaged over repeats).
#include <cstdio>

#include "src/core/sampler.h"
#include "src/exp/exp_common.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig13_sampling", "Fig. 13",
                   "KMeans vs random task sampling for cross-device fine-tuning (target T4)");
  Dataset ds = BuildBenchDataset({0, 1, 2, 3, 4});
  const int target = 0;  // T4
  std::vector<int> sources = {1, 2, 3, 4};
  Rng rng(9000);
  SplitIndices src = SplitDataset(ds, sources, {}, &rng);
  SplitIndices tgt = SplitDataset(ds, {target}, {}, &rng);
  std::vector<int> tgt_domain = Take(SamplesOnDevice(ds, target), 400);
  std::vector<int> src_domain = Take(src.train, 400);

  // Pre-train once on the source GPUs; every fine-tuning run restarts from
  // this state, so the sweep isolates the effect of the sampling strategy.
  CdmppPredictor predictor(BenchPredictorConfig(22));
  predictor.Pretrain(ds, Take(src.train, 4000), {});
  // Touch target samples once so the leaf-count heads exist before export.
  predictor.Evaluate(ds, Take(tgt.test, 8));
  std::vector<Matrix> pretrained = predictor.ExportParams();

  auto finetune_and_eval = [&](const std::vector<int>& tasks) {
    predictor.ImportParams(pretrained);
    std::vector<int> target_labeled = SamplesForTasksOnDevice(ds, tasks, target);
    std::vector<int> labeled = Take(src.train, 1500);
    labeled.insert(labeled.end(), target_labeled.begin(), target_labeled.end());
    predictor.Finetune(ds, labeled, src_domain, tgt_domain, 4);
    return predictor.Evaluate(ds, tgt.test).mape;
  };

  TablePrinter table({"# sampled tasks", "KMeans sampling", "random sampling (avg of 3)"});
  for (int kappa : {5, 15, 30, 60}) {
    Rng krng(9100 + static_cast<uint64_t>(kappa));
    double kmeans_mape = finetune_and_eval(SelectTasksKMeans(ds, kappa, &krng));
    std::vector<double> random_mapes;
    for (uint64_t rep = 0; rep < 3; ++rep) {
      Rng rrng(9200 + static_cast<uint64_t>(kappa) * 10 + rep);
      random_mapes.push_back(finetune_and_eval(SelectTasksRandom(ds, kappa, &rrng)));
    }
    table.AddRow({std::to_string(kappa), FormatPercent(kmeans_mape, 2),
                  FormatPercent(Mean(random_mapes), 2)});
    std::printf("[kappa=%d done]\n", kappa);
    std::fflush(stdout);
  }
  table.Print(stdout);
  std::printf("\nPaper's claims: KMeans sampling beats random at equal budgets, and the"
              " error saturates beyond ~50 sampled tasks (Fig. 13).\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

#include "src/nn/matrix.h"

#include <cmath>

namespace cdmpp {

void Matrix::XavierInit(Rng* rng) {
  CDMPP_CHECK(rng != nullptr);
  double limit = std::sqrt(6.0 / (rows_ + cols_));
  for (float& v : data_) {
    v = static_cast<float>(rng->Uniform(-limit, limit));
  }
}

void Matrix::AddInPlace(const Matrix& other) {
  CDMPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Matrix::AddScaled(const Matrix& other, float scale) {
  CDMPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::Scale(float scale) {
  for (float& v : data_) {
    v *= scale;
  }
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) {
    s += static_cast<double>(v) * v;
  }
  return s;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  CDMPP_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  for (int i = 0; i < m; ++i) {
    float* out_row = out.Row(i);
    const float* a_row = a.Row(i);
    for (int p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) {
        continue;
      }
      const float* b_row = b.Row(p);
      for (int j = 0; j < n; ++j) {
        out_row[j] += av * b_row[j];
      }
    }
  }
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  CDMPP_CHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  const int k = a.rows();
  const int m = a.cols();
  const int n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* a_row = a.Row(p);
    const float* b_row = b.Row(p);
    for (int i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) {
        continue;
      }
      float* out_row = out.Row(i);
      for (int j = 0; j < n; ++j) {
        out_row[j] += av * b_row[j];
      }
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  CDMPP_CHECK(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out.Row(i);
    for (int j = 0; j < n; ++j) {
      const float* b_row = b.Row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      out_row[j] = acc;
    }
  }
  return out;
}

void AddRowBroadcast(Matrix* x, const Matrix& bias) {
  CDMPP_CHECK(bias.rows() == 1 && bias.cols() == x->cols());
  const float* b = bias.Row(0);
  for (int i = 0; i < x->rows(); ++i) {
    float* row = x->Row(i);
    for (int j = 0; j < x->cols(); ++j) {
      row[j] += b[j];
    }
  }
}

Matrix ColumnSum(const Matrix& x) {
  Matrix out(1, x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const float* row = x.Row(i);
    for (int j = 0; j < x.cols(); ++j) {
      out.At(0, j) += row[j];
    }
  }
  return out;
}

void SoftmaxRows(Matrix* x) {
  for (int i = 0; i < x->rows(); ++i) {
    float* row = x->Row(i);
    float mx = row[0];
    for (int j = 1; j < x->cols(); ++j) {
      mx = std::max(mx, row[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < x->cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < x->cols(); ++j) {
      row[j] *= inv;
    }
  }
}

}  // namespace cdmpp

// Reproduces paper Fig. 14(a): the positional-encoding ablation — MAPE with
// and without the pre-order positional encoding of §4.2, per device.
#include <cstdio>

#include "src/exp/exp_common.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig14a_pos_encoding", "Fig. 14(a)",
                   "MAPE with and without the pre-order positional encoding");
  Dataset ds = BuildBenchDataset({0, 3});  // T4, V100
  TablePrinter table({"device", "w/ PE", "w/o PE"});
  for (int device : {0, 3}) {
    Rng rng(12000 + static_cast<uint64_t>(device));
    SplitIndices split = SplitDataset(ds, {device}, {}, &rng);
    std::vector<std::string> row = {DeviceById(device).name};
    for (bool use_pe : {true, false}) {
      PredictorConfig cfg = BenchPredictorConfig(90);
      cfg.use_pe = use_pe;
      CdmppPredictor predictor(cfg);
      predictor.Pretrain(ds, split.train, split.valid);
      row.push_back(FormatPercent(predictor.Evaluate(ds, split.test).mape, 2));
    }
    table.AddRow(std::move(row));
    std::printf("[%s done]\n", DeviceById(device).name.c_str());
    std::fflush(stdout);
  }
  table.Print(stdout);
  std::printf("\nPaper's claim: encoding leaf positions reduces prediction error"
              " (Fig. 14(a)).\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

// End-to-end replayer walkthrough (paper §5.5 / Appendix C): builds the
// TIR-based data-flow graph of BERT-tiny, replays it on V100 (single stream)
// and on HL-100 (three GEMM engines, conv/GEMM nodes split 3-way), and prints
// the per-op timeline that Algorithm 2 produces.
//
// Build & run:  ./build/examples/e2e_replayer
#include <cstdio>

#include "src/device/simulator.h"
#include "src/replay/e2e.h"
#include "src/support/table.h"

using namespace cdmpp;

namespace {

void ReplayAndPrint(const NetworkDef& net, const DeviceSpec& device,
                    const NetworkSchedules& scheds, int max_rows) {
  Dfg dfg = BuildDfg(net, device, [&](const NetworkOp& op) {
    for (size_t i = 0; i < net.ops.size(); ++i) {
      if (&net.ops[i] == &op) {
        TensorProgram prog = GenerateProgram(op.task, scheds.by_op.at(static_cast<int>(i)));
        return SimulateLatencyDeterministic(prog, device);
      }
    }
    return 0.0;
  });
  ReplayResult result = Replay(dfg, ReplayQueues(device));

  std::printf("\n%s: %zu DFG nodes on %d queue(s), iteration time %.3f ms\n",
              device.name.c_str(), dfg.nodes.size(), ReplayQueues(device),
              result.iteration_seconds * 1e3);
  TablePrinter table({"node", "op", "queue", "start (us)", "duration (us)"});
  for (size_t i = 0; i < dfg.nodes.size() && static_cast<int>(i) < max_rows; ++i) {
    const DfgNode& node = dfg.nodes[i];
    const Task& task = net.ops[static_cast<size_t>(node.op_index)].task;
    table.AddRow({std::to_string(i), OpKindName(task.kind),
                  node.queue_hint < 0 ? "0" : std::to_string(node.queue_hint),
                  FormatDouble(result.start_times[i] * 1e6, 1),
                  FormatDouble(node.duration_seconds * 1e6, 1)});
  }
  table.Print(stdout);
  if (static_cast<int>(dfg.nodes.size()) > max_rows) {
    std::printf("(... %zu more nodes)\n", dfg.nodes.size() - static_cast<size_t>(max_rows));
  }
}

}  // namespace

int main() {
  NetworkDef net = BuildNetworkByName("bert_tiny_bs1_s128");
  NetworkSchedules scheds = ChooseSchedules(net, 33);
  std::printf("Network %s: %zu operators\n", net.name.c_str(), net.ops.size());

  ReplayAndPrint(net, DeviceByName("V100"), scheds, 14);
  ReplayAndPrint(net, DeviceByName("HL-100"), scheds, 14);

  std::printf("\nNote how HL-100's GEMM-class nodes are split into three sub-operators on"
              " queues 0..2 (paper §5.5) while pointwise ops stay on one TPC queue.\n");
  return 0;
}

#include "src/nn/layers.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"
#include "src/support/parallel_for.h"

namespace cdmpp {

// ---------------- Linear ----------------

Linear::Linear(int in_dim, int out_dim, Rng* rng) {
  w_.InitXavier(in_dim, out_dim, rng);
  b_.InitZero(1, out_dim);
}

void Linear::ApplyLinear(const Matrix& x, kernels::Activation act, Matrix* y) const {
  CDMPP_CHECK(x.cols() == w_.value.rows());
  kernels::GemmBiasAct(x.rows(), y->cols(), x.cols(), x.data(), x.cols(), w_.value.data(),
                       w_.value.cols(), b_.value.data(), act, y->data(), y->cols());
}

Matrix Linear::Forward(const Matrix& x) {
  cached_x_ = x;
  Matrix y(x.rows(), w_.value.cols());
  ApplyLinear(x, kernels::Activation::kNone, &y);
  return y;
}

Matrix Linear::ForwardInference(const Matrix& x) const {
  Workspace ws;
  return *ForwardInference(x, &ws);
}

Matrix* Linear::ForwardInference(const Matrix& x, Workspace* ws,
                                 kernels::Activation act) const {
  Matrix* y = ws->NewMatrix(x.rows(), w_.value.cols());
  ApplyLinear(x, act, y);
  return y;
}

Matrix Linear::Backward(const Matrix& dy) {
  CDMPP_CHECK(dy.rows() == cached_x_.rows() && dy.cols() == w_.value.cols());
  // w_.grad += xᵀ·dy as a single beta=1 accumulate — no gradient temporary.
  kernels::GemmTN(w_.grad.rows(), w_.grad.cols(), dy.rows(), cached_x_.data(),
                  cached_x_.cols(), dy.data(), dy.cols(), /*beta=*/1.0f, w_.grad.data(),
                  w_.grad.cols());
  b_.grad.AddInPlace(ColumnSum(dy));
  return MatMulTransB(dy, w_.value);
}

void Linear::CollectParams(std::vector<Param*>* out) {
  out->push_back(&w_);
  out->push_back(&b_);
}

// ---------------- Relu ----------------

Matrix Relu::Forward(const Matrix& x) {
  cached_x_ = x;
  return ForwardInference(x);
}

Matrix Relu::ForwardInference(const Matrix& x) const {
  Workspace ws;
  return *ForwardInference(x, &ws);
}

Matrix* Relu::ForwardInference(const Matrix& x, Workspace* ws) const {
  Matrix* y = ws->NewMatrix(x.rows(), x.cols());
  const float* src = x.data();
  float* dst = y->data();
  const int64_t total = static_cast<int64_t>(x.size());
  // Elementwise with disjoint writes: the chunk partition cannot change any
  // value, so splitting across cores keeps the bitwise contract for free. A
  // clamp is memory-bound — weigh each element at ~4 work units (2 floats
  // streamed) against the shared fork policy, so only panels too big for one
  // core's cache fork.
  auto clamp_range = [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      dst[i] = std::max(0.0f, src[i]);
    }
  };
  if (WorthForking(ThreadPool::Global(), total, 4.0 * static_cast<double>(total))) {
    ParallelFor(0, total, ParallelGrain(total), clamp_range);
  } else {
    clamp_range(0, total);
  }
  return y;
}

Matrix Relu::Backward(const Matrix& dy) {
  CDMPP_CHECK(dy.rows() == cached_x_.rows() && dy.cols() == cached_x_.cols());
  Matrix dx = dy;
  for (int i = 0; i < dx.rows(); ++i) {
    float* drow = dx.Row(i);
    const float* xrow = cached_x_.Row(i);
    for (int j = 0; j < dx.cols(); ++j) {
      if (xrow[j] <= 0.0f) {
        drow[j] = 0.0f;
      }
    }
  }
  return dx;
}

// ---------------- LayerNorm ----------------

LayerNorm::LayerNorm(int dim) {
  gamma_.InitZero(1, dim);
  for (int j = 0; j < dim; ++j) {
    gamma_.value.At(0, j) = 1.0f;
  }
  beta_.InitZero(1, dim);
}

Matrix LayerNorm::Forward(const Matrix& x) {
  const int n = x.rows();
  const int d = x.cols();
  cached_norm_ = Matrix(n, d);
  cached_inv_std_.assign(static_cast<size_t>(n), 0.0f);
  Matrix y(n, d);
  for (int i = 0; i < n; ++i) {
    const float* row = x.Row(i);
    float mean = 0.0f;
    for (int j = 0; j < d; ++j) {
      mean += row[j];
    }
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (int j = 0; j < d; ++j) {
      var += (row[j] - mean) * (row[j] - mean);
    }
    var /= static_cast<float>(d);
    float inv_std = 1.0f / std::sqrt(var + kEps);
    cached_inv_std_[static_cast<size_t>(i)] = inv_std;
    float* nrow = cached_norm_.Row(i);
    float* yrow = y.Row(i);
    for (int j = 0; j < d; ++j) {
      nrow[j] = (row[j] - mean) * inv_std;
      yrow[j] = nrow[j] * gamma_.value.At(0, j) + beta_.value.At(0, j);
    }
  }
  return y;
}

namespace {

// The single copy of the inference-normalization loop, shared by both
// ForwardInference overloads so they stay bitwise-consistent. Rows are
// independent, so batch rows split across cores; tiny inputs stay serial
// (ParallelFor also runs inline when the range fits one chunk).
void LayerNormRowsInto(const Matrix& x, const float* gamma, const float* beta, float eps,
                       Matrix* y) {
  const int n = x.rows();
  const int d = x.cols();
  auto normalize_rows = [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = x.Row(static_cast<int>(i));
      float mean = 0.0f;
      for (int j = 0; j < d; ++j) {
        mean += row[j];
      }
      mean /= static_cast<float>(d);
      float var = 0.0f;
      for (int j = 0; j < d; ++j) {
        var += (row[j] - mean) * (row[j] - mean);
      }
      var /= static_cast<float>(d);
      const float inv_std = 1.0f / std::sqrt(var + eps);
      float* yrow = y->Row(static_cast<int>(i));
      for (int j = 0; j < d; ++j) {
        yrow[j] = (row[j] - mean) * inv_std * gamma[j] + beta[j];
      }
    }
  };
  // ~10 flops per element over the mean/var/normalize passes, against the
  // shared fork policy.
  if (WorthForking(ThreadPool::Global(), n, 10.0 * static_cast<double>(n) * d)) {
    ParallelFor(0, n, ParallelGrain(n), normalize_rows);
  } else {
    normalize_rows(0, n);
  }
}

}  // namespace

Matrix LayerNorm::ForwardInference(const Matrix& x) const {
  Workspace ws;
  return *ForwardInference(x, &ws);
}

Matrix* LayerNorm::ForwardInference(const Matrix& x, Workspace* ws) const {
  // Nests under the encoder span when a sampled trace is bound; no-op (one
  // thread-local load) otherwise.
  obs::ScopedSpan span(obs::Stage::kLayerNorm);
  Matrix* y = ws->NewMatrix(x.rows(), x.cols());
  LayerNormRowsInto(x, gamma_.value.Row(0), beta_.value.Row(0), kEps, y);
  return y;
}

Matrix LayerNorm::Backward(const Matrix& dy) {
  const int n = dy.rows();
  const int d = dy.cols();
  CDMPP_CHECK(n == cached_norm_.rows() && d == cached_norm_.cols());
  Matrix dx(n, d);
  for (int i = 0; i < n; ++i) {
    const float* dyrow = dy.Row(i);
    const float* nrow = cached_norm_.Row(i);
    float inv_std = cached_inv_std_[static_cast<size_t>(i)];
    // dnorm = dy * gamma; dx = inv_std * (dnorm - mean(dnorm) - norm * mean(dnorm*norm)).
    float mean_dn = 0.0f;
    float mean_dn_n = 0.0f;
    for (int j = 0; j < d; ++j) {
      float dn = dyrow[j] * gamma_.value.At(0, j);
      mean_dn += dn;
      mean_dn_n += dn * nrow[j];
      gamma_.grad.At(0, j) += dyrow[j] * nrow[j];
      beta_.grad.At(0, j) += dyrow[j];
    }
    mean_dn /= static_cast<float>(d);
    mean_dn_n /= static_cast<float>(d);
    float* dxrow = dx.Row(i);
    for (int j = 0; j < d; ++j) {
      float dn = dyrow[j] * gamma_.value.At(0, j);
      dxrow[j] = inv_std * (dn - mean_dn - nrow[j] * mean_dn_n);
    }
  }
  return dx;
}

void LayerNorm::CollectParams(std::vector<Param*>* out) {
  out->push_back(&gamma_);
  out->push_back(&beta_);
}

// ---------------- Mlp ----------------

Mlp::Mlp(const std::vector<int>& dims, Rng* rng) {
  CDMPP_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    linears_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
  }
  relus_.resize(linears_.size() - 1);
}

Matrix Mlp::Forward(const Matrix& x) {
  Matrix h = x;
  for (size_t i = 0; i < linears_.size(); ++i) {
    h = linears_[i]->Forward(h);
    if (i + 1 < linears_.size()) {
      h = relus_[i].Forward(h);
    }
  }
  return h;
}

Matrix Mlp::ForwardInference(const Matrix& x) const {
  Workspace ws;
  return *ForwardInference(x, &ws);
}

Matrix* Mlp::ForwardInference(const Matrix& x, Workspace* ws) const {
  const Matrix* h = &x;
  Matrix* out = nullptr;
  for (size_t i = 0; i < linears_.size(); ++i) {
    const bool hidden = i + 1 < linears_.size();
    out = linears_[i]->ForwardInference(
        *h, ws, hidden ? kernels::Activation::kRelu : kernels::Activation::kNone);
    h = out;
  }
  return out;
}

Matrix Mlp::Backward(const Matrix& dy) {
  Matrix d = dy;
  for (size_t i = linears_.size(); i-- > 0;) {
    if (i + 1 < linears_.size()) {
      d = relus_[i].Backward(d);
    }
    d = linears_[i]->Backward(d);
  }
  return d;
}

void Mlp::CollectParams(std::vector<Param*>* out) {
  for (auto& l : linears_) {
    l->CollectParams(out);
  }
}

// ---------------- LstmCell ----------------

namespace {

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

LstmCell::LstmCell(int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_x_.InitXavier(input_dim, 4 * hidden_dim, rng);
  w_h_.InitXavier(hidden_dim, 4 * hidden_dim, rng);
  b_.InitZero(1, 4 * hidden_dim);
}

LstmCell::State LstmCell::ZeroState(int batch) const {
  State s;
  s.h = Matrix(batch, hidden_dim_);
  s.c = Matrix(batch, hidden_dim_);
  return s;
}

LstmCell::State LstmCell::Forward(const Matrix& x, const State& prev, Cache* cache) {
  CDMPP_CHECK(x.cols() == input_dim_);
  CDMPP_CHECK(prev.h.cols() == hidden_dim_ && prev.c.cols() == hidden_dim_);
  CDMPP_CHECK(cache != nullptr);
  const int n = x.rows();
  cache->x = x;
  cache->h_prev = prev.h;
  cache->c_prev = prev.c;

  Matrix pre = MatMul(x, w_x_.value);
  // pre += h_prev · w_h as a beta=1 accumulate — no temporary.
  kernels::GemmNN(n, 4 * hidden_dim_, hidden_dim_, prev.h.data(), prev.h.cols(),
                  w_h_.value.data(), w_h_.value.cols(), /*beta=*/1.0f, pre.data(), pre.cols());
  AddRowBroadcast(&pre, b_.value);

  cache->gates = Matrix(n, 4 * hidden_dim_);
  State out;
  out.h = Matrix(n, hidden_dim_);
  out.c = Matrix(n, hidden_dim_);
  cache->tanh_c = Matrix(n, hidden_dim_);
  for (int r = 0; r < n; ++r) {
    for (int j = 0; j < hidden_dim_; ++j) {
      float i_g = Sigmoid(pre.At(r, j));
      float f_g = Sigmoid(pre.At(r, hidden_dim_ + j));
      float g_g = std::tanh(pre.At(r, 2 * hidden_dim_ + j));
      float o_g = Sigmoid(pre.At(r, 3 * hidden_dim_ + j));
      cache->gates.At(r, j) = i_g;
      cache->gates.At(r, hidden_dim_ + j) = f_g;
      cache->gates.At(r, 2 * hidden_dim_ + j) = g_g;
      cache->gates.At(r, 3 * hidden_dim_ + j) = o_g;
      float c = f_g * prev.c.At(r, j) + i_g * g_g;
      out.c.At(r, j) = c;
      float tc = std::tanh(c);
      cache->tanh_c.At(r, j) = tc;
      out.h.At(r, j) = o_g * tc;
    }
  }
  cache->c = out.c;
  return out;
}

LstmCell::InputGrads LstmCell::Backward(const Cache& cache, const Matrix& dh,
                                        const Matrix& dc_in) {
  const int n = dh.rows();
  Matrix dpre(n, 4 * hidden_dim_);
  InputGrads grads;
  grads.dc_prev = Matrix(n, hidden_dim_);
  for (int r = 0; r < n; ++r) {
    for (int j = 0; j < hidden_dim_; ++j) {
      float i_g = cache.gates.At(r, j);
      float f_g = cache.gates.At(r, hidden_dim_ + j);
      float g_g = cache.gates.At(r, 2 * hidden_dim_ + j);
      float o_g = cache.gates.At(r, 3 * hidden_dim_ + j);
      float tc = cache.tanh_c.At(r, j);
      float dhv = dh.At(r, j);
      float dc = dc_in.empty() ? 0.0f : dc_in.At(r, j);
      dc += dhv * o_g * (1.0f - tc * tc);
      float do_g = dhv * tc;
      float di = dc * g_g;
      float df = dc * cache.c_prev.At(r, j);
      float dg = dc * i_g;
      grads.dc_prev.At(r, j) = dc * f_g;
      dpre.At(r, j) = di * i_g * (1.0f - i_g);
      dpre.At(r, hidden_dim_ + j) = df * f_g * (1.0f - f_g);
      dpre.At(r, 2 * hidden_dim_ + j) = dg * (1.0f - g_g * g_g);
      dpre.At(r, 3 * hidden_dim_ + j) = do_g * o_g * (1.0f - o_g);
    }
  }
  kernels::GemmTN(w_x_.grad.rows(), w_x_.grad.cols(), n, cache.x.data(), cache.x.cols(),
                  dpre.data(), dpre.cols(), /*beta=*/1.0f, w_x_.grad.data(), w_x_.grad.cols());
  kernels::GemmTN(w_h_.grad.rows(), w_h_.grad.cols(), n, cache.h_prev.data(),
                  cache.h_prev.cols(), dpre.data(), dpre.cols(), /*beta=*/1.0f,
                  w_h_.grad.data(), w_h_.grad.cols());
  b_.grad.AddInPlace(ColumnSum(dpre));
  grads.dx = MatMulTransB(dpre, w_x_.value);
  grads.dh_prev = MatMulTransB(dpre, w_h_.value);
  return grads;
}

void LstmCell::CollectParams(std::vector<Param*>* out) {
  out->push_back(&w_x_);
  out->push_back(&w_h_);
  out->push_back(&b_);
}

}  // namespace cdmpp

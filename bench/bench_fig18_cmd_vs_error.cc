// Reproduces paper Fig. 18 (Appendix D.3): the effect of distribution
// difference on generalizability — scatter of CMD(train-subset, test-subset)
// against the test error on that subset, for (a) cross-model subsets on one
// device and (b) cross-device subsets. The paper observes a positive
// correlation: small CMD => good generalization.
#include <cstdio>

#include "src/exp/exp_common.h"
#include "src/ml/cmd.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig18_cmd_vs_error", "Fig. 18",
                   "correlation between latent CMD(train, test) and test error");
  Dataset ds = BuildBenchDataset();
  Rng rng(14000);

  // (a) Cross-model: train on T4; test subsets = per-model sample sets.
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  CdmppPredictor predictor(BenchPredictorConfig(40));
  predictor.Pretrain(ds, split.train, split.valid);
  std::vector<int> train_sub = Take(split.train, 400);
  Matrix z_train = predictor.EncodeLatent(ds, train_sub);

  std::vector<double> cmds;
  std::vector<double> errors;
  std::vector<std::vector<double>> rows;
  for (const NetworkDef& net : ds.networks) {
    std::vector<int> subset = Take(SamplesOfModelOnDevice(ds, net.id, 0), 200);
    if (subset.size() < 30) {
      continue;
    }
    double cmd = CmdDistance(z_train, predictor.EncodeLatent(ds, subset));
    double mape = predictor.Evaluate(ds, subset).mape;
    cmds.push_back(cmd);
    errors.push_back(mape);
    rows.push_back({cmd, mape, 0.0});
  }
  double corr_model = PearsonCorrelation(cmds, errors);
  std::printf("(a) Cross-model (T4): %zu model subsets, Pearson(CMD, test MAPE) = %.3f\n",
              cmds.size(), corr_model);

  // (b) Cross-device: same model set, test subsets = per-device samples.
  std::vector<double> dev_cmds;
  std::vector<double> dev_errors;
  for (const DeviceSpec& spec : DeviceRegistry()) {
    if (spec.id == 0) {
      continue;
    }
    std::vector<int> subset = Take(SamplesOnDevice(ds, spec.id), 200);
    double cmd = CmdDistance(z_train, predictor.EncodeLatent(ds, subset));
    double mape = predictor.Evaluate(ds, subset).mape;
    dev_cmds.push_back(cmd);
    dev_errors.push_back(mape);
    rows.push_back({cmd, mape, 1.0});
  }
  double corr_device = PearsonCorrelation(dev_cmds, dev_errors);
  std::printf("(b) Cross-device (train T4): %zu device subsets, Pearson(CMD, MAPE) = %.3f\n",
              dev_cmds.size(), corr_device);

  WriteCsv("fig18_cmd_vs_error.csv", {"cmd", "test_mape", "is_cross_device"}, rows);
  std::printf("[scatter data written to fig18_cmd_vs_error.csv]\n");
  std::printf("\nPaper's claim: test error is positively related to the CMD between the"
              " training and test distributions (both correlations should be > 0).\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

#include "src/support/json_writer.h"

#include <cmath>
#include <cstdio>

#include "src/support/check.h"

namespace cdmpp {

void JsonWriter::Indent() {
  out_.push_back('\n');
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::BeforeValue() {
  CDMPP_CHECK_MSG(!done_, "JsonWriter: value after the root closed");
  if (stack_.empty()) {
    return;  // root value
  }
  Frame& top = stack_.back();
  if (top.type == '{') {
    // Inside an object a value may only follow its Key (which already wrote
    // the separator and indent).
    CDMPP_CHECK_MSG(top.key_pending, "JsonWriter: object value without a Key");
    top.key_pending = false;
    return;
  }
  if (top.count > 0) {
    out_.push_back(',');
  }
  Indent();
  ++top.count;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back(Frame{'{', 0, false});
}

void JsonWriter::EndObject() {
  CDMPP_CHECK_MSG(!stack_.empty() && stack_.back().type == '{',
                  "JsonWriter: EndObject without matching BeginObject");
  CDMPP_CHECK_MSG(!stack_.back().key_pending, "JsonWriter: EndObject after a dangling Key");
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) {
    Indent();
  }
  out_.push_back('}');
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back(Frame{'[', 0, false});
}

void JsonWriter::EndArray() {
  CDMPP_CHECK_MSG(!stack_.empty() && stack_.back().type == '[',
                  "JsonWriter: EndArray without matching BeginArray");
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) {
    Indent();
  }
  out_.push_back(']');
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::Key(const std::string& key) {
  CDMPP_CHECK_MSG(!stack_.empty() && stack_.back().type == '{',
                  "JsonWriter: Key outside an object");
  Frame& top = stack_.back();
  CDMPP_CHECK_MSG(!top.key_pending, "JsonWriter: Key after Key");
  if (top.count > 0) {
    out_.push_back(',');
  }
  Indent();
  ++top.count;
  AppendEscaped(key);
  out_.append(": ");
  top.key_pending = true;
}

void JsonWriter::AppendEscaped(const std::string& s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_.append("\\\"");
        break;
      case '\\':
        out_.append("\\\\");
        break;
      case '\n':
        out_.append("\\n");
        break;
      case '\t':
        out_.append("\\t");
        break;
      case '\r':
        out_.append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  AppendEscaped(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_.append(buf);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out_.append(buf);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    value = 0.0;  // keep the artifact json.load-able; NaN/inf are not JSON
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_.append(buf);
}

void JsonWriter::RawValue(const std::string& json) {
  BeforeValue();
  out_.append(json);
}

std::string JsonWriter::str() const {
  CDMPP_CHECK_MSG(done_ && stack_.empty(), "JsonWriter: unclosed object/array at str()");
  return out_;
}

void JsonWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  CDMPP_CHECK_MSG(f != nullptr, "JsonWriter: cannot open output file");
  const std::string doc = str();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace cdmpp

// Serving load generator: measures the batched inference service under an
// autotuner-shaped query stream (many small latency queries, heavy schedule
// re-visiting), sweeping worker count x batch window x batching on/off.
//
// Reports QPS, mean batch occupancy, cache hit rate, and p50/p99 request
// latency per configuration, plus the headline batched-vs-unbatched
// comparison, and emits machine-readable BENCH_serve.json (QPS, p50/p99,
// kernel ISA, serving precision) so CI tracks the serving trajectory next to
// the GEMM one. The serving precision comes from the ServeOptions default,
// i.e. the CDMPP_PRECISION environment override — the int8 CI leg measures
// the quantized serving path with no bench-side changes. A precision A/B
// series (fp32 / int8-heads / int8 on the batched config) additionally
// records each mode's QPS and int8_flop_fraction — the share of GEMM FLOPs
// the int8 tier served, from the per-precision data-plane counters — and
// gates that the int8 encoder tier (a) beats fp32 batched QPS on AVX2 hosts
// (SKIP elsewhere) and (b) serves the majority of GEMM FLOPs quantized.
// Build & run:  ./build/bench/bench_serve_throughput [--smoke]
// (--smoke shrinks the workload and sweep for CI.)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/prediction_service.h"
#include "src/support/cpu_features.h"
#include "src/support/parallel_for.h"
#include "src/support/table.h"
#include "src/tir/schedule.h"

using namespace cdmpp;

namespace {

struct Workload {
  // Pointers into `asts`; schedules repeat with autotuner-like locality so a
  // cache can pay off.
  std::vector<CompactAst> asts;
  std::vector<const CompactAst*> requests;
};

Workload BuildWorkload(const Dataset& ds, int unique_schedules, int total_requests,
                       uint64_t seed) {
  Workload w;
  Rng rng(seed);
  while (static_cast<int>(w.asts.size()) < unique_schedules) {
    const TaskInfo& info = rng.Choice(ds.tasks);
    w.asts.push_back(
        ExtractCompactAst(GenerateProgram(info.task, SampleSchedule(info.task, &rng))));
  }
  w.requests.reserve(static_cast<size_t>(total_requests));
  for (int i = 0; i < total_requests; ++i) {
    // Zipf-ish revisiting: half the stream hammers the first few schedules,
    // the rest scans uniformly — schedule search evaluates neighborhoods.
    size_t idx = rng.Bernoulli(0.5)
                     ? static_cast<size_t>(rng.UniformInt(0, 7)) % w.asts.size()
                     : static_cast<size_t>(
                           rng.UniformInt(0, static_cast<int64_t>(w.asts.size()) - 1));
    w.requests.push_back(&w.asts[idx]);
  }
  return w;
}

struct RunResult {
  double qps = 0.0;
  ServerStatsSnapshot stats;
};

// Drives the request stream against an existing (long-lived) service; the
// concurrency matrix reuses one service across several pool sizes so worker
// threads and their arena leases stay warm while only the pool varies.
// `reps` repeats the request stream within the measured window — the overhead
// gate uses it to stretch a run from a few milliseconds (where clock noise
// swamps a 1% difference) to a resolvable length.
RunResult RunLoadOn(PredictionService& service, const Workload& w, int device_id,
                    int reps = 1) {
  // Warm-up slice: primes workspace arenas, missing heads, the thread pool,
  // and (when enabled) the cache, then reopens the stats window so the
  // headline QPS/percentiles measure steady state instead of first-touch
  // allocation costs. Previously the warm-up requests polluted the window.
  const size_t warmup = std::min<size_t>(w.requests.size() / 10, 64);
  {
    std::vector<std::future<double>> wf;
    wf.reserve(warmup);
    for (size_t i = 0; i < warmup; ++i) {
      wf.push_back(service.Submit(*w.requests[i], device_id));
    }
    for (auto& f : wf) {
      f.get();
    }
  }
  service.ResetStats();
  const size_t measured = (w.requests.size() - warmup) * static_cast<size_t>(std::max(1, reps));
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<double>> futures;
  futures.reserve(measured);
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    for (size_t i = warmup; i < w.requests.size(); ++i) {
      futures.push_back(service.Submit(*w.requests[i], device_id));
    }
  }
  for (auto& f : futures) {
    f.get();
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  RunResult r;
  r.qps = static_cast<double>(measured) / seconds;
  r.stats = service.Stats();
  return r;
}

RunResult RunLoad(CdmppPredictor* predictor, const Workload& w, const ServeOptions& opts,
                  int device_id, int reps = 1) {
  PredictionService service(predictor, opts);
  return RunLoadOn(service, w, device_id, reps);
}

uint64_t CounterOrZero(const std::map<std::string, uint64_t>& counters,
                       const std::string& name) {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

// Counter growth across a measured region (registry counters are cumulative).
std::map<std::string, uint64_t> CounterDelta(const std::map<std::string, uint64_t>& before,
                                             const std::map<std::string, uint64_t>& after) {
  std::map<std::string, uint64_t> delta;
  for (const auto& [name, value] : after) {
    const auto it = before.find(name);
    const uint64_t prev = it == before.end() ? 0 : it->second;
    if (value > prev) {
      delta[name] = value - prev;
    }
  }
  return delta;
}

// Share of GEMM FLOPs that ran through the int8 kernels over a measured
// region, from the per-precision x per-ISA data-plane counters
// (gemm.flops.{fp32,int8}.{scalar,avx2}). ISA-independent: the fraction
// reflects which tier served each GEMM, not which microkernel executed it.
double Int8FlopFraction(const std::map<std::string, uint64_t>& delta) {
  double int8 = 0.0, total = 0.0;
  for (const auto& [name, value] : delta) {
    if (name.rfind("gemm.flops.", 0) == 0) {
      total += static_cast<double>(value);
      if (name.rfind("gemm.flops.int8.", 0) == 0) {
        int8 += static_cast<double>(value);
      }
    }
  }
  return total > 0.0 ? int8 / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  // ---- Model under service: quick pre-train on a T4 slice. ----
  DatasetOptions dopts;
  dopts.device_ids = {0};
  dopts.schedules_per_task = 3;
  dopts.max_networks = smoke ? 5 : 10;
  dopts.seed = 21;
  Dataset ds = BuildDataset(dopts);

  PredictorConfig cfg;
  cfg.epochs = smoke ? 2 : 6;
  cfg.seed = 22;
  CdmppPredictor predictor(cfg);
  Rng rng(23);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  std::printf("Pre-training the served model (%zu samples, %d epochs)...\n",
              split.train.size(), cfg.epochs);
  predictor.Pretrain(ds, split.train, split.valid);

  Workload w = BuildWorkload(ds, /*unique_schedules=*/smoke ? 24 : 96,
                             /*total_requests=*/smoke ? 400 : 3000, /*seed=*/24);
  for (const CompactAst& ast : w.asts) {
    predictor.EnsureHead(ast.num_leaves);
  }
  std::printf("Workload: %zu requests over %zu unique schedules on T4.\n\n", w.requests.size(),
              w.asts.size());

  // ---- Sweep: workers x batch window, cache on. ----
  struct SweepRecord {
    int workers;
    double window_ms;
    RunResult result;
  };
  std::vector<SweepRecord> sweep_records;
  TablePrinter sweep({"workers", "window (ms)", "max batch", "QPS", "occupancy", "hit rate",
                      "p50 (ms)", "p99 (ms)"});
  const std::vector<int> worker_sweep = smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4};
  const std::vector<double> window_sweep =
      smoke ? std::vector<double>{0.2} : std::vector<double>{0.0, 0.2, 1.0};
  for (int workers : worker_sweep) {
    for (double window_ms : window_sweep) {
      ServeOptions opts;
      opts.num_workers = workers;
      opts.batch_window_ms = window_ms;
      opts.max_batch_size = 64;
      opts.enable_cache = true;
      RunResult r = RunLoad(&predictor, w, opts, /*device_id=*/0);
      sweep.AddRow({std::to_string(workers), FormatDouble(window_ms, 1),
                    std::to_string(opts.max_batch_size), FormatDouble(r.qps, 0),
                    FormatDouble(r.stats.mean_batch_occupancy, 1),
                    FormatPercent(r.stats.cache_hit_rate, 1),
                    FormatDouble(r.stats.p50_latency_ms, 3),
                    FormatDouble(r.stats.p99_latency_ms, 3)});
      sweep_records.push_back({workers, window_ms, r});
    }
  }
  std::printf("Sweep (prediction cache enabled):\n");
  sweep.Print(stdout);

  // ---- Headline: batching vs batch size 1 on the same workload, no cache. ----
  ServeOptions batched;
  batched.num_workers = 2;
  batched.max_batch_size = 64;
  batched.batch_window_ms = 1.0;
  batched.enable_cache = false;
  ServeOptions single = batched;
  single.max_batch_size = 1;
  single.batch_window_ms = 0.0;

  RunResult r_single = RunLoad(&predictor, w, single, 0);
  RunResult r_batched = RunLoad(&predictor, w, batched, 0);

  std::printf("\nBatching headline (cache disabled, 2 workers):\n");
  TablePrinter headline({"mode", "QPS", "occupancy", "fwd passes", "p50 (ms)", "p99 (ms)"});
  headline.AddRow({"batch size 1", FormatDouble(r_single.qps, 0),
                   FormatDouble(r_single.stats.mean_batch_occupancy, 1),
                   std::to_string(r_single.stats.forward_passes),
                   FormatDouble(r_single.stats.p50_latency_ms, 3),
                   FormatDouble(r_single.stats.p99_latency_ms, 3)});
  headline.AddRow({"batched (<=64)", FormatDouble(r_batched.qps, 0),
                   FormatDouble(r_batched.stats.mean_batch_occupancy, 1),
                   std::to_string(r_batched.stats.forward_passes),
                   FormatDouble(r_batched.stats.p50_latency_ms, 3),
                   FormatDouble(r_batched.stats.p99_latency_ms, 3)});
  headline.Print(stdout);
  std::printf("\nBatched serving: %.2fx the QPS of one-forward-per-request.\n",
              r_batched.qps / r_single.qps);

  // ---- Precision A/B: fp32 vs int8-heads vs int8 on the batched config. ----
  // One run per mode for the series (QPS + which share of GEMM FLOPs the
  // int8 tier served), then an interleaved best-of-pairs fp32-vs-int8
  // comparison for the throughput gate — single runs on a shared runner
  // swing several percent, and a gate must not flag noise.
  struct PrecisionRecord {
    const char* name;
    Precision mode;
    RunResult result;
    double int8_flop_fraction;
  };
  std::vector<PrecisionRecord> precision_records;
  const std::vector<std::pair<const char*, Precision>> precision_modes = {
      {"fp32", Precision::kFp32},
      {"int8-heads", Precision::kInt8Heads},
      {"int8", Precision::kInt8}};
  for (const auto& [name, mode] : precision_modes) {
    ServeOptions opts = batched;
    opts.precision = mode;
    const auto before = obs::MetricsRegistry::Global().CounterValues();
    RunResult r = RunLoad(&predictor, w, opts, 0, /*reps=*/2);
    const double fraction =
        Int8FlopFraction(CounterDelta(before, obs::MetricsRegistry::Global().CounterValues()));
    precision_records.push_back({name, mode, r, fraction});
  }
  std::printf("\nPrecision A/B (batched, cache disabled, 2 workers):\n");
  TablePrinter precision_table(
      {"precision", "QPS (batched)", "int8 flop share", "p50 (ms)", "p99 (ms)"});
  for (const PrecisionRecord& rec : precision_records) {
    precision_table.AddRow({rec.name, FormatDouble(rec.result.qps, 0),
                            FormatPercent(rec.int8_flop_fraction, 1),
                            FormatDouble(rec.result.stats.p50_latency_ms, 3),
                            FormatDouble(rec.result.stats.p99_latency_ms, 3)});
  }
  precision_table.Print(stdout);
  const double int8_flop_fraction = precision_records.back().int8_flop_fraction;

  // Int8-vs-fp32 throughput gate: interleaved pairs, best pair ratio (same
  // design as the observability overhead gate below). On AVX2 hosts the int8
  // encoder tier must not lose QPS to fp32; without AVX2 the int8 kernels
  // have no SIMD advantage to bank, so the gate is SKIPped, not failed.
  const bool has_avx2 = CpuSupportsAvx2Fma();
  const int kPrecisionPairs = 3;
  const int kPrecisionReps = smoke ? 6 : 2;
  double qps_fp32_gate = 0.0, qps_int8_gate = 0.0, best_int8_ratio = 0.0;
  {
    ServeOptions fp32_opts = batched;
    fp32_opts.precision = Precision::kFp32;
    ServeOptions int8_opts = batched;
    int8_opts.precision = Precision::kInt8;
    for (int i = 0; i < kPrecisionPairs; ++i) {
      double fp32_qps, int8_qps;
      if (i % 2 == 0) {
        fp32_qps = RunLoad(&predictor, w, fp32_opts, 0, kPrecisionReps).qps;
        int8_qps = RunLoad(&predictor, w, int8_opts, 0, kPrecisionReps).qps;
      } else {
        int8_qps = RunLoad(&predictor, w, int8_opts, 0, kPrecisionReps).qps;
        fp32_qps = RunLoad(&predictor, w, fp32_opts, 0, kPrecisionReps).qps;
      }
      qps_fp32_gate = std::max(qps_fp32_gate, fp32_qps);
      qps_int8_gate = std::max(qps_int8_gate, int8_qps);
      if (fp32_qps > 0.0) {
        best_int8_ratio = std::max(best_int8_ratio, int8_qps / fp32_qps);
      }
    }
  }
  const bool int8_qps_gate_ok = !has_avx2 || best_int8_ratio >= 1.0;
  const bool int8_fraction_gate_ok = int8_flop_fraction > 0.5;
  std::printf("Int8 encoder serving vs fp32 (best of %d interleaved pairs): "
              "%.0f vs %.0f QPS, best pair ratio %.3fx [%s]; int8 GEMM flop share %.1f%% [%s]\n",
              kPrecisionPairs, qps_int8_gate, qps_fp32_gate, best_int8_ratio,
              !has_avx2 ? "SKIP: no AVX2"
                        : (int8_qps_gate_ok ? "PASS" : "FAIL: int8 slower than fp32"),
              100.0 * int8_flop_fraction,
              int8_fraction_gate_ok ? "PASS" : "FAIL: not a majority");

  // ---- Threads series: batched QPS vs intra-request thread count. ----
  // The encoder's per-(sample, head) attention blocks and the GEMM row
  // panels fork across ThreadPool::Global(); this sweep re-runs the batched
  // workload under private pools of several sizes (the same code path
  // CDMPP_NUM_THREADS selects at startup) so BENCH_serve.json records how
  // intra-request parallelism scales on this host. One worker, so the pool
  // size is the only variable; the concurrency matrix below measures how
  // worker-level and intra-request parallelism compose. On a single-core
  // host threads > 1 just timeshare — expect flat-to-slightly-worse numbers
  // there.
  ServeOptions intra = batched;
  intra.num_workers = 1;
  struct ThreadsRecord {
    int threads;
    RunResult result;
  };
  std::vector<ThreadsRecord> threads_records;
  const std::vector<int> threads_sweep =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  TablePrinter threads_table({"threads", "QPS (batched)", "p50 (ms)", "p99 (ms)"});
  for (int threads : threads_sweep) {
    ThreadPool pool(threads);
    ThreadPool::SetGlobalForTesting(&pool);
    RunResult r = RunLoad(&predictor, w, intra, 0);
    ThreadPool::SetGlobalForTesting(nullptr);
    threads_table.AddRow({std::to_string(threads), FormatDouble(r.qps, 0),
                          FormatDouble(r.stats.p50_latency_ms, 3),
                          FormatDouble(r.stats.p99_latency_ms, 3)});
    threads_records.push_back({threads, r});
  }
  std::printf("\nIntra-request threads series (1 worker, batched, cache disabled):\n");
  threads_table.Print(stdout);
  const int default_threads = ThreadPool::Global().num_threads();
  std::printf("Default pool size on this host: %d (CDMPP_NUM_THREADS overrides).\n",
              default_threads);

  // ---- Concurrency matrix: serve workers x pool threads, long-lived services. ----
  // The composition the work-stealing scheduler exists for: with several
  // serve workers forwarding concurrently, their ParallelFor regions must
  // compose (steal from each other) instead of convoying — the pre-stealing
  // pool demoted every contended region to inline serial, so workers=2 x
  // threads=2 measured like threads=1. One service per workers value lives
  // across its whole threads sweep (warm arenas, same worker threads); only
  // the pool changes between runs, and only while the service is idle.
  struct MatrixRecord {
    int workers;
    int threads;
    RunResult result;
  };
  std::vector<MatrixRecord> matrix_records;
  const std::vector<int> matrix_axis =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const auto matrix_counters_before = obs::MetricsRegistry::Global().CounterValues();
  TablePrinter matrix_table(
      {"workers", "threads", "QPS (batched)", "p50 (ms)", "p99 (ms)"});
  for (int workers : matrix_axis) {
    ServeOptions mopts = batched;
    mopts.num_workers = workers;
    PredictionService service(&predictor, mopts);
    for (int threads : matrix_axis) {
      ThreadPool mpool(threads);
      ThreadPool::SetGlobalForTesting(&mpool);
      RunResult r = RunLoadOn(service, w, 0);
      ThreadPool::SetGlobalForTesting(nullptr);
      matrix_table.AddRow({std::to_string(workers), std::to_string(threads),
                           FormatDouble(r.qps, 0), FormatDouble(r.stats.p50_latency_ms, 3),
                           FormatDouble(r.stats.p99_latency_ms, 3)});
      matrix_records.push_back({workers, threads, r});
    }
  }
  std::printf("\nConcurrency matrix (batched, cache disabled, long-lived services):\n");
  matrix_table.Print(stdout);

  // Gate: on the workers=2 service, pool threads=2 must beat threads=1 by
  // >= 1.2x aggregate QPS — the exact configuration that used to collapse to
  // serial via serial_contended. Interleaved pairs, best-pair ratio (same
  // noise discipline as the other gates). The speedup needs real cores for
  // 2 workers x 2 threads, so hosts with fewer than 4 hardware threads SKIP
  // the ratio (it is still measured and recorded); the serial_contended
  // assertion below holds on any host.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool conc_gate_applicable = hw_threads >= 4;
  const int kConcPairs = 3;
  const int kConcReps = smoke ? 4 : 2;
  double qps_w2_t1 = 0.0, qps_w2_t2 = 0.0, best_conc_ratio = 0.0;
  {
    ServeOptions gopts = batched;
    gopts.num_workers = 2;
    PredictionService service(&predictor, gopts);
    auto run_with_pool = [&](int threads) {
      ThreadPool p(threads);
      ThreadPool::SetGlobalForTesting(&p);
      const double qps = RunLoadOn(service, w, 0, kConcReps).qps;
      ThreadPool::SetGlobalForTesting(nullptr);
      return qps;
    };
    for (int i = 0; i < kConcPairs; ++i) {
      double t1_qps, t2_qps;
      if (i % 2 == 0) {
        t1_qps = run_with_pool(1);
        t2_qps = run_with_pool(2);
      } else {
        t2_qps = run_with_pool(2);
        t1_qps = run_with_pool(1);
      }
      qps_w2_t1 = std::max(qps_w2_t1, t1_qps);
      qps_w2_t2 = std::max(qps_w2_t2, t2_qps);
      if (t1_qps > 0.0) {
        best_conc_ratio = std::max(best_conc_ratio, t2_qps / t1_qps);
      }
    }
  }
  const auto matrix_counters_after = obs::MetricsRegistry::Global().CounterValues();
  const auto matrix_delta = CounterDelta(matrix_counters_before, matrix_counters_after);
  const uint64_t conc_serial_contended =
      CounterOrZero(matrix_delta, "parallel_for.serial_contended");
  const uint64_t conc_steals = CounterOrZero(matrix_delta, "parallel_for.steals");
  // Absolute value: the peak counter is a process-lifetime high-water mark.
  const uint64_t regions_peak =
      CounterOrZero(matrix_counters_after, "parallel_for.regions_concurrent_peak");
  const bool conc_contended_ok = conc_serial_contended == 0;
  const bool conc_qps_gate_ok = !conc_gate_applicable || best_conc_ratio >= 1.2;
  std::printf("Concurrency gate (2 workers, best of %d interleaved pairs): "
              "threads=2 %.0f vs threads=1 %.0f QPS, best pair ratio %.3fx [%s]; "
              "serial_contended delta %llu [%s], steals %llu, regions peak %llu\n",
              kConcPairs, qps_w2_t2, qps_w2_t1, best_conc_ratio,
              !conc_gate_applicable
                  ? "SKIP: < 4 hardware threads"
                  : (conc_qps_gate_ok ? "PASS" : "FAIL: below 1.2x"),
              static_cast<unsigned long long>(conc_serial_contended),
              conc_contended_ok ? "PASS" : "FAIL: regions still convoy",
              static_cast<unsigned long long>(conc_steals),
              static_cast<unsigned long long>(regions_peak));

  // ---- Per-stage latency breakdown: trace 1-in-4 of the batched workload. ----
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  const int saved_rate = collector.sample_every();
  collector.Reset();
  collector.SetSampleEvery(4);
  const auto counters_before = obs::MetricsRegistry::Global().CounterValues();
  RunResult r_traced = RunLoad(&predictor, w, batched, 0);
  const auto counter_delta =
      CounterDelta(counters_before, obs::MetricsRegistry::Global().CounterValues());
  const obs::TraceCollector::Stats tstats = collector.GetStats();
  collector.SetSampleEvery(0);

  std::printf("\nPer-stage breakdown (batched, cache disabled, 1-in-4 sampled, %llu traces):\n",
              static_cast<unsigned long long>(tstats.traces));
  TablePrinter stages_table({"stage", "total (ms)", "mean/req (ms)", "share"});
  for (int s = 0; s < obs::kNumStages; ++s) {
    const double total = tstats.stage_ms[static_cast<size_t>(s)];
    if (total <= 0.0) {
      continue;
    }
    stages_table.AddRow({obs::StageName(static_cast<obs::Stage>(s)), FormatDouble(total, 2),
                         FormatDouble(tstats.traces > 0 ? total / static_cast<double>(tstats.traces)
                                                        : 0.0,
                                      4),
                         FormatPercent(tstats.total_ms > 0.0 ? total / tstats.total_ms : 0.0, 1)});
  }
  stages_table.Print(stdout);
  std::printf("Named stages attribute %.1f%% of traced request latency.\n",
              100.0 * tstats.AttributedFraction());
  std::printf("Data-plane counters over the traced run:\n");
  for (const auto& [name, value] : counter_delta) {
    std::printf("  %-32s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }

  // ---- Overhead gate: instrumentation on (sampling off) vs suppressed. ----
  // The contract: with tracing compiled in and sampling disabled — the
  // production default — batched QPS must be within 1% of a run where the
  // metrics kill switch additionally suppresses every counter add. Pairs are
  // interleaved and the best of each side is compared, so slow-machine noise
  // hits both sides alike.
  // The gate compares PAIRED runs and takes the most favorable pair: on a
  // shared/1-core runner single-run QPS swings several percent, so comparing
  // independent maxima flags noise as regression. A pair runs back-to-back
  // (alternating order to cancel drift), and a true >1% overhead would have
  // to be hidden by same-direction noise in all kGatePairs pairs to slip by.
  const int kGatePairs = 5;
  const int kGateReps = smoke ? 10 : 3;  // stretch each run well past clock noise
  double qps_instrumented = 0.0, qps_suppressed = 0.0, best_ratio = 0.0;
  for (int i = 0; i < kGatePairs; ++i) {
    double on_qps, off_qps;
    if (i % 2 == 0) {
      obs::SetMetricsEnabled(true);
      on_qps = RunLoad(&predictor, w, batched, 0, kGateReps).qps;
      obs::SetMetricsEnabled(false);
      off_qps = RunLoad(&predictor, w, batched, 0, kGateReps).qps;
    } else {
      obs::SetMetricsEnabled(false);
      off_qps = RunLoad(&predictor, w, batched, 0, kGateReps).qps;
      obs::SetMetricsEnabled(true);
      on_qps = RunLoad(&predictor, w, batched, 0, kGateReps).qps;
    }
    qps_instrumented = std::max(qps_instrumented, on_qps);
    qps_suppressed = std::max(qps_suppressed, off_qps);
    if (off_qps > 0.0) {
      best_ratio = std::max(best_ratio, on_qps / off_qps);
    }
  }
  obs::SetMetricsEnabled(true);
  collector.SetSampleEvery(saved_rate);
  const double overhead = 1.0 - best_ratio;
  const bool gate_ok = best_ratio >= 0.99;
  std::printf("\nObservability overhead (best of %d interleaved pairs): "
              "instrumented %.0f QPS vs suppressed %.0f QPS, best pair ratio %.4f "
              "-> %.2f%% overhead [%s]\n",
              kGatePairs, qps_instrumented, qps_suppressed, best_ratio, 100.0 * overhead,
              gate_ok ? "PASS" : "FAIL: exceeds the 1% budget");

  // Machine-readable trajectory record, uploaded by CI next to
  // BENCH_gemm.json. `precision`/`kernel_isa` come from the batched run's
  // snapshot: the code paths that actually served the headline.
  const char* json_path = "BENCH_serve.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"serve_throughput\",\n  \"smoke\": %s,\n"
                 "  \"kernel_isa\": \"%s\",\n  \"precision\": \"%s\",\n"
                 "  \"requests\": %zu,\n  \"unique_schedules\": %zu,\n"
                 "  \"headline\": {\n"
                 "    \"qps_single\": %.2f,\n    \"qps_batched\": %.2f,\n"
                 "    \"batched_speedup\": %.4f,\n"
                 "    \"p50_ms_single\": %.4f,\n    \"p99_ms_single\": %.4f,\n"
                 "    \"p50_ms_batched\": %.4f,\n    \"p99_ms_batched\": %.4f,\n"
                 "    \"occupancy_batched\": %.2f\n  },\n",
                 smoke ? "true" : "false", r_batched.stats.kernel_isa.c_str(),
                 r_batched.stats.precision.c_str(), w.requests.size(), w.asts.size(),
                 r_single.qps, r_batched.qps, r_batched.qps / r_single.qps,
                 r_single.stats.p50_latency_ms, r_single.stats.p99_latency_ms,
                 r_batched.stats.p50_latency_ms, r_batched.stats.p99_latency_ms,
                 r_batched.stats.mean_batch_occupancy);
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep_records.size(); ++i) {
      const SweepRecord& rec = sweep_records[i];
      std::fprintf(f,
                   "    {\"workers\": %d, \"window_ms\": %.1f, \"qps\": %.2f, "
                   "\"hit_rate\": %.4f, \"occupancy\": %.2f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   rec.workers, rec.window_ms, rec.result.qps,
                   rec.result.stats.cache_hit_rate, rec.result.stats.mean_batch_occupancy,
                   rec.result.stats.p50_latency_ms, rec.result.stats.p99_latency_ms,
                   i + 1 < sweep_records.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"num_threads_default\": %d,\n  \"threads_series\": [\n",
                 default_threads);
    for (size_t i = 0; i < threads_records.size(); ++i) {
      const ThreadsRecord& rec = threads_records[i];
      std::fprintf(f,
                   "    {\"threads\": %d, \"qps_batched\": %.2f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   rec.threads, rec.result.qps, rec.result.stats.p50_latency_ms,
                   rec.result.stats.p99_latency_ms,
                   i + 1 < threads_records.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"concurrency_matrix\": [\n");
    for (size_t i = 0; i < matrix_records.size(); ++i) {
      const MatrixRecord& rec = matrix_records[i];
      std::fprintf(f,
                   "    {\"workers\": %d, \"threads\": %d, \"qps_batched\": %.2f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   rec.workers, rec.threads, rec.result.qps,
                   rec.result.stats.p50_latency_ms, rec.result.stats.p99_latency_ms,
                   i + 1 < matrix_records.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"concurrency_gate\": {\n"
                 "    \"qps_w2_t1\": %.2f,\n    \"qps_w2_t2\": %.2f,\n"
                 "    \"best_pair_ratio\": %.4f,\n    \"hardware_threads\": %u,\n"
                 "    \"serial_contended_delta\": %llu,\n    \"steals_delta\": %llu,\n"
                 "    \"regions_concurrent_peak\": %llu,\n"
                 "    \"qps_gate\": \"%s\",\n    \"contended_gate\": \"%s\"\n  },\n",
                 qps_w2_t1, qps_w2_t2, best_conc_ratio, hw_threads,
                 static_cast<unsigned long long>(conc_serial_contended),
                 static_cast<unsigned long long>(conc_steals),
                 static_cast<unsigned long long>(regions_peak),
                 !conc_gate_applicable ? "skip" : (conc_qps_gate_ok ? "pass" : "fail"),
                 conc_contended_ok ? "pass" : "fail");
    // Precision A/B series and the int8-vs-fp32 batched-QPS gate record.
    std::fprintf(f, "  \"precision_series\": [\n");
    for (size_t i = 0; i < precision_records.size(); ++i) {
      const PrecisionRecord& rec = precision_records[i];
      std::fprintf(f,
                   "    {\"precision\": \"%s\", \"qps_batched\": %.2f, "
                   "\"int8_flop_fraction\": %.4f, \"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   rec.name, rec.result.qps, rec.int8_flop_fraction,
                   rec.result.stats.p50_latency_ms, rec.result.stats.p99_latency_ms,
                   i + 1 < precision_records.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"int8_flop_fraction\": %.4f,\n"
                 "  \"int8_vs_fp32\": {\n"
                 "    \"qps_fp32\": %.2f,\n    \"qps_int8\": %.2f,\n"
                 "    \"best_pair_ratio\": %.4f,\n    \"avx2\": %s,\n"
                 "    \"qps_gate\": \"%s\",\n    \"flop_fraction_gate\": \"%s\"\n  },\n",
                 int8_flop_fraction, qps_fp32_gate, qps_int8_gate, best_int8_ratio,
                 has_avx2 ? "true" : "false",
                 !has_avx2 ? "skip" : (int8_qps_gate_ok ? "pass" : "fail"),
                 int8_fraction_gate_ok ? "pass" : "fail");
    // Per-stage breakdown of the traced batched run (exclusive time, so the
    // shares sum to <= 1 with the remainder being unattributed gaps).
    std::fprintf(f, "  \"stages\": {\n");
    bool first_stage = true;
    for (int s = 0; s < obs::kNumStages; ++s) {
      const double total = tstats.stage_ms[static_cast<size_t>(s)];
      if (total <= 0.0) {
        continue;
      }
      std::fprintf(f, "%s    \"%s\": {\"total_ms\": %.3f, \"mean_ms\": %.5f, \"share\": %.4f}",
                   first_stage ? "" : ",\n", obs::StageName(static_cast<obs::Stage>(s)), total,
                   tstats.traces > 0 ? total / static_cast<double>(tstats.traces) : 0.0,
                   tstats.total_ms > 0.0 ? total / tstats.total_ms : 0.0);
      first_stage = false;
    }
    std::fprintf(f, "\n  },\n  \"traced_requests\": %llu,\n  \"attributed_fraction\": %.4f,\n",
                 static_cast<unsigned long long>(tstats.traces), tstats.AttributedFraction());
    std::fprintf(f, "  \"qps_traced_1in4\": %.2f,\n", r_traced.qps);
    std::fprintf(f, "  \"counters\": {\n");
    bool first_counter = true;
    for (const auto& [name, value] : counter_delta) {
      std::fprintf(f, "%s    \"%s\": %llu", first_counter ? "" : ",\n", name.c_str(),
                   static_cast<unsigned long long>(value));
      first_counter = false;
    }
    std::fprintf(f,
                 "\n  },\n  \"trace_overhead\": {\n"
                 "    \"qps_instrumented\": %.2f,\n    \"qps_suppressed\": %.2f,\n"
                 "    \"overhead_fraction\": %.4f,\n    \"gate\": \"%s\"\n  }\n}\n",
                 qps_instrumented, qps_suppressed, overhead, gate_ok ? "pass" : "fail");
    std::fclose(f);
    std::printf("Wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path);
  }

  // Full observability snapshot (cumulative registry + trace aggregates), the
  // artifact CI uploads on every matrix leg.
  const char* metrics_path = "METRICS_serve.json";
  if (FILE* f = std::fopen(metrics_path, "w")) {
    std::fprintf(f, "{\n\"metrics\": %s,\n\"traces\": %s\n}\n",
                 obs::MetricsRegistry::Global().DumpJson().c_str(),
                 collector.DumpJson().c_str());
    std::fclose(f);
    std::printf("Wrote %s\n", metrics_path);
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", metrics_path);
  }

  int rc = 0;
  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds the 1%% budget "
                 "(instrumented %.0f QPS < 0.99 * suppressed %.0f QPS)\n",
                 100.0 * overhead, qps_instrumented, qps_suppressed);
    rc = 1;
  }
  if (!has_avx2) {
    std::fprintf(stderr,
                 "SKIP: int8>=fp32 batched-QPS gate (no AVX2; best pair ratio measured "
                 "%.3fx)\n",
                 best_int8_ratio);
  } else if (!int8_qps_gate_ok) {
    std::fprintf(stderr,
                 "FAIL: int8 batched QPS below fp32 in every interleaved pair "
                 "(best ratio %.3fx < 1.0x)\n",
                 best_int8_ratio);
    rc = 1;
  }
  if (!int8_fraction_gate_ok) {
    std::fprintf(stderr,
                 "FAIL: int8 tier served only %.1f%% of GEMM FLOPs in CDMPP_PRECISION=int8 "
                 "mode (need a majority)\n",
                 100.0 * int8_flop_fraction);
    rc = 1;
  }
  if (!conc_gate_applicable) {
    std::fprintf(stderr,
                 "SKIP: concurrency 1.2x QPS gate (%u hardware threads < 4; best pair "
                 "ratio measured %.3fx)\n",
                 hw_threads, best_conc_ratio);
  } else if (!conc_qps_gate_ok) {
    std::fprintf(stderr,
                 "FAIL: 2 workers x 2 threads did not reach 1.2x the QPS of 2 workers x "
                 "1 thread (best pair ratio %.3fx)\n",
                 best_conc_ratio);
    rc = 1;
  }
  if (!conc_contended_ok) {
    std::fprintf(stderr,
                 "FAIL: parallel_for.serial_contended moved by %llu during the concurrency "
                 "matrix — contended top-level regions must fork, not serialize\n",
                 static_cast<unsigned long long>(conc_serial_contended));
    rc = 1;
  }
  return rc;
}

// Process-wide metrics registry: named counters and gauges with lock-free
// recording on the hot path.
//
// Counters accumulate into writer-exclusive cache-line-padded cells indexed
// by a per-thread slot: because exactly one thread writes a given cell, the
// increment is a plain relaxed load/add/store — no atomic RMW, no contention,
// a few ns even on the per-GEMM-call path (the ≤1% overhead gate in
// bench_serve_throughput is the budget this buys). Slots are recycled through
// a free list when threads exit, so the fixed cell array bounds *concurrent*
// threads, not process-lifetime thread count; threads beyond the slot supply
// (and thread-exit stragglers) fall back to a shared atomic overflow cell —
// slower but still exact. Value() sums the cells at read time. Call sites
// cache the Counter& returned by MetricsRegistry::Global().GetCounter(...) in
// a function-local static — the registry hands out stable references for the
// life of the process.
//
// SetMetricsEnabled(false) is the kill switch the overhead gate in
// bench_serve_throughput uses to compare instrumented vs. suppressed QPS in
// one process; suppressed Add() is a single relaxed load + branch.
//
// This header depends only on the C++ standard library so that src/support/
// may include obs/ without inverting the layering.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

namespace cdmpp {
namespace obs {

namespace detail {
// Defined in metrics.cc; default true.
extern std::atomic<bool> g_metrics_enabled;

// Writer-exclusive counter slots, shared by every Counter in the process.
constexpr int kCounterSlots = 64;
// tls_counter_slot states: >= 0 an owned slot index; kSlotUnassigned before
// first use; kSlotRetired after this thread's slot was returned to the free
// list at thread exit (later Adds from other TLS destructors must not touch
// the recycled cell — they take the overflow path instead).
constexpr int kSlotUnassigned = -1;
constexpr int kSlotRetired = -2;
// Constant-initialized, so the hot-path access is a raw TLS load with no
// initialization guard.
extern thread_local int tls_counter_slot;
// Slow path: pulls a slot from the free list (or mints a new one), registers
// its return at thread exit, and may return kSlotRetired when more than
// kCounterSlots threads are live at once.
int AllocateCounterSlot();

inline int CounterSlot() {
  const int slot = tls_counter_slot;
  return slot != kSlotUnassigned ? slot : AllocateCounterSlot();
}
}  // namespace detail

inline bool MetricsEnabled() {
  // Relaxed: a standalone kill-switch flag. No data is published through it
  // (instruments are self-contained atomics), so readers need no ordering —
  // a stale read only means one more/fewer sample near the toggle instant.
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

// Monotonic counter. Thread-safe, lock-free, allocation-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) {
      return;
    }
    const int slot = detail::CounterSlot();
    if (slot >= 0) {
      // This thread owns the cell exclusively (free-list handoff at thread
      // exit synchronizes through a mutex), so a plain relaxed load/add/store
      // is exact — no lock-prefixed RMW on the per-GEMM hot path.
      std::atomic<uint64_t>& cell = cells_[slot].v;
      cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
    } else {
      // Shared overflow cell (slot exhaustion / retired threads): a real RMW,
      // still relaxed — the count is the only payload, nothing is ordered
      // against it.
      overflow_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  // Statistical snapshot. Relaxed reads: each cell is individually exact
  // (single writer), but the sweep is not a cross-cell atomic snapshot —
  // concurrent Adds may or may not be included. Callers use the total as a
  // measurement, never as a synchronization signal, so no acquire is needed.
  uint64_t Value() const {
    uint64_t total = overflow_.load(std::memory_order_relaxed);
    for (int i = 0; i < detail::kCounterSlots; ++i) {
      total += cells_[i].v.load(std::memory_order_relaxed);
    }
    return total;
  }
  // Relaxed stores mirror Value(): concurrent Adds land either in the old or
  // the new measurement window, both of which are valid readings.
  void Reset() {
    for (int i = 0; i < detail::kCounterSlots; ++i) {
      cells_[i].v.store(0, std::memory_order_relaxed);
    }
    overflow_.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[detail::kCounterSlots];
  std::atomic<uint64_t> overflow_{0};
};

// Last-writer-wins double-valued gauge (stored as IEEE-754 bits in a
// uint64 atomic, so it stays lock-free everywhere).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if (!MetricsEnabled()) {
      return;
    }
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    // Relaxed: the gauge IS the whole payload — one 64-bit cell, no side
    // data for an acquire/release pair to protect. Readers get some
    // recently-written value, which is the gauge contract.
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  std::atomic<uint64_t> bits_{0};  // all-zero bits == 0.0
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Returns the counter/gauge registered under `name`, creating it on first
  // use. References stay valid for the life of the process; hot call sites
  // should cache them (function-local static).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);

  // Point-in-time values of every registered metric, sorted by name.
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;

  // {"counters": {...}, "gauges": {...}} with sorted keys.
  std::string DumpJson() const;

  // Zeroes every counter (gauges keep their last value). Bench/test hook for
  // measuring per-run deltas; racing Add() calls land in the new window.
  void ResetCounters();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // std::map: stable node addresses AND sorted iteration for DumpJson.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
};

}  // namespace obs
}  // namespace cdmpp

#endif  // SRC_OBS_METRICS_H_

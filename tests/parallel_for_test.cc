// ThreadPool / ParallelFor contract tests: partition correctness, nested
// submits, exception propagation, single-thread determinism, and the
// stealing scheduler's concurrent-region composition.
#include <atomic>
#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/support/parallel_for.h"

namespace cdmpp {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  for (auto& t : touched) {
    t.store(0);
  }
  pool.ParallelFor(0, kN, /*grain=*/64, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      touched[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunksRespectGrainAndPartitionTheRange) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  constexpr int64_t kBegin = 3;
  constexpr int64_t kEnd = 1001;
  constexpr int64_t kGrain = 37;
  pool.ParallelFor(kBegin, kEnd, kGrain, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, kBegin);
  EXPECT_EQ(chunks.back().second, kEnd);
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_LT(chunks[i].first, chunks[i].second);
    EXPECT_LE(chunks[i].second - chunks[i].first, kGrain);
    if (i > 0) {
      EXPECT_EQ(chunks[i].first, chunks[i - 1].second) << "gap or overlap at chunk " << i;
    }
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr int kOuter = 64;
  constexpr int kInner = 256;
  std::vector<std::atomic<int64_t>> sums(kOuter);
  for (auto& s : sums) {
    s.store(0);
  }
  pool.ParallelFor(0, kOuter, 4, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      // Nested submit: must run inline on this thread, never deadlock.
      pool.ParallelFor(0, kInner, 16, [&](int64_t ib, int64_t ie) {
        int64_t local = 0;
        for (int64_t i = ib; i < ie; ++i) {
          local += i;
        }
        sums[static_cast<size_t>(o)].fetch_add(local);
      });
    }
  });
  const int64_t expected = static_cast<int64_t>(kInner) * (kInner - 1) / 2;
  for (int o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[static_cast<size_t>(o)].load(), expected);
  }
}

TEST(ParallelForTest, ExceptionPropagatesToCallerAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 8,
                       [&](int64_t b, int64_t) {
                         if (b >= 496 && b < 504) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);

  // The pool must remain fully usable after a failed region.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 7, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) {
      local += i;
    }
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ParallelForTest, SingleThreadPoolIsSerialAndDeterministic) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<std::pair<int64_t, int64_t>> chunks;  // no mutex needed: serial
    std::vector<int> order;
    pool.ParallelFor(0, 100, 10, [&](int64_t b, int64_t e) {
      chunks.emplace_back(b, e);
      order.push_back(static_cast<int>(b));
    });
    // One inline invocation over the whole range, identical on every run.
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], (std::pair<int64_t, int64_t>{0, 100}));
    EXPECT_EQ(order, std::vector<int>{0});
  }
}

TEST(ResolveNumThreadsTest, FallsBackOnMalformedOrNonPositiveValues) {
  // Regression: a non-numeric or <= 0 CDMPP_NUM_THREADS must never yield a
  // 0/negative pool size — it falls back to the hardware count.
  EXPECT_EQ(ThreadPool::ResolveNumThreads(nullptr, 8), 8);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("", 8), 8);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("abc", 8), 8);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("0", 8), 8);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("-4", 8), 8);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("  ", 8), 8);
  // Partial parses ("8abc") are rejected, not truncated to 8.
  EXPECT_EQ(ThreadPool::ResolveNumThreads("8abc", 4), 4);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("1.5", 4), 4);
}

TEST(ResolveNumThreadsTest, AcceptsAndClampsNumericValues) {
  EXPECT_EQ(ThreadPool::ResolveNumThreads("1", 8), 1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("16", 8), 16);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("+3", 8), 3);
  // Huge and overflowing values clamp to the pool ceiling.
  EXPECT_EQ(ThreadPool::ResolveNumThreads("4096", 8), ThreadPool::kMaxThreads);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("99999999999999999999", 8),
            ThreadPool::kMaxThreads);
}

TEST(ResolveNumThreadsTest, HardwareFallbackIsAlwaysPositive) {
  // hardware_concurrency() may report 0; the pool still needs >= 1 thread.
  EXPECT_EQ(ThreadPool::ResolveNumThreads(nullptr, 0), 1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads("junk", 0), 1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(nullptr, -2), 1);
}

uint64_t CounterOrZero(const std::map<std::string, uint64_t>& counters,
                       const std::string& name) {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

TEST(ParallelForTest, ConcurrentTopLevelRegionsComposeWithoutSerialFallback) {
  // The whole point of the stealing scheduler: top-level callers arriving at
  // a busy pool fork their own region instead of collapsing to inline serial
  // (the old serial_contended path). Regions overlap deterministically here:
  // every chunk body spins until all callers have started their region, so
  // regions_concurrent_peak must reach the caller count too.
  ThreadPool pool(4);
  constexpr int kCallers = 3;
  constexpr int64_t kN = 4096;
  const auto before = obs::MetricsRegistry::Global().CounterValues();

  std::atomic<int> regions_started{0};
  std::vector<int64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::atomic<int64_t> sum{0};
      // Chunks of one region can run on the caller AND on stealing workers
      // concurrently, so the once-per-region latch must be atomic.
      std::atomic<bool> counted{false};
      pool.ParallelFor(0, kN, /*grain=*/256, [&](int64_t b, int64_t e) {
        if (!counted.exchange(true)) {
          regions_started.fetch_add(1);
        }
        while (regions_started.load() < kCallers) {
          std::this_thread::yield();
        }
        int64_t local = 0;
        for (int64_t i = b; i < e; ++i) {
          local += i * (c + 1);
        }
        sum.fetch_add(local);
      });
      sums[static_cast<size_t>(c)] = sum.load();
    });
  }
  for (auto& t : callers) {
    t.join();
  }

  const int64_t base = kN * (kN - 1) / 2;
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[static_cast<size_t>(c)], base * (c + 1)) << "caller " << c;
  }
  const auto after = obs::MetricsRegistry::Global().CounterValues();
  EXPECT_EQ(CounterOrZero(after, "parallel_for.serial_contended"),
            CounterOrZero(before, "parallel_for.serial_contended"));
  EXPECT_GE(CounterOrZero(after, "parallel_for.forked"),
            CounterOrZero(before, "parallel_for.forked") + kCallers);
  // Monotonic high-water counter: its value IS the peak, so after a forced
  // kCallers-way overlap it must read at least kCallers.
  EXPECT_GE(CounterOrZero(after, "parallel_for.regions_concurrent_peak"),
            static_cast<uint64_t>(kCallers));
}

TEST(ParallelForTest, IdleWorkerStealsChunksOfAnActiveRegion) {
  // A region whose first chunk blocks until a second executor arrives can
  // only finish if a pool worker steals the remaining chunks — this pins the
  // publish/wake path (and would hang, loudly, if wake-ups were lost).
  ThreadPool pool(2);
  const auto before = obs::MetricsRegistry::Global().CounterValues();
  std::atomic<int> arrived{0};
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(0, 64, /*grain=*/8, [&](int64_t b, int64_t e) {
    arrived.fetch_add(1);
    while (arrived.load() < 2) {
      std::this_thread::yield();
    }
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 64);
  const auto after = obs::MetricsRegistry::Global().CounterValues();
  EXPECT_GE(CounterOrZero(after, "parallel_for.steals"),
            CounterOrZero(before, "parallel_for.steals") + 1);
}

TEST(ParallelForTest, ExceptionStaysInItsOwnRegion) {
  // Failures must not leak across concurrently draining regions: the
  // throwing caller sees its exception, the healthy caller sees its sums.
  ThreadPool pool(4);
  constexpr int kReps = 25;
  std::atomic<int> caught{0};
  std::thread thrower([&] {
    for (int rep = 0; rep < kReps; ++rep) {
      try {
        pool.ParallelFor(0, 512, 16, [&](int64_t b, int64_t) {
          if (b == 256) {
            throw std::runtime_error("boom");
          }
        });
      } catch (const std::runtime_error&) {
        caught.fetch_add(1);
      }
    }
  });
  std::thread healthy([&] {
    for (int rep = 0; rep < kReps; ++rep) {
      std::atomic<int64_t> sum{0};
      pool.ParallelFor(0, 1000, 32, [&](int64_t b, int64_t e) {
        int64_t local = 0;
        for (int64_t i = b; i < e; ++i) {
          local += i;
        }
        sum.fetch_add(local);
      });
      ASSERT_EQ(sum.load(), 1000 * 999 / 2) << "rep " << rep;
    }
  });
  thrower.join();
  healthy.join();
  EXPECT_EQ(caught.load(), kReps);
}

TEST(ParallelForTest, GlobalPoolWorks) {
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 1000, 32, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) {
      local += i;
    }
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
}

}  // namespace
}  // namespace cdmpp

#include "src/tir/lower.h"

#include "src/support/check.h"

namespace cdmpp {

namespace {

constexpr double kElemBytes = 4.0;  // fp32

Loop Spatial(const char* var, int64_t extent) {
  Loop l;
  l.var = var;
  l.extent = extent;
  l.kind = LoopKind::kSpatial;
  return l;
}

Loop Reduction(const char* var, int64_t extent) {
  Loop l;
  l.var = var;
  l.extent = extent;
  l.kind = LoopKind::kReduction;
  return l;
}

BufferAccess Access(double footprint_elems, int stride_class, bool is_write) {
  BufferAccess a;
  a.footprint_bytes = footprint_elems * kElemBytes;
  a.stride_class = stride_class;
  a.is_write = is_write;
  return a;
}

ComputeStmt InitStmt(double out_elems) {
  ComputeStmt s;
  s.kind = ComputeKind::kInit;
  s.stores_per_iter = 1.0;
  s.accesses = {Access(out_elems, /*stride_class=*/0, /*is_write=*/true)};
  return s;
}

}  // namespace

ComputeStmt MakeReluEpilogue(double out_elems) {
  ComputeStmt s;
  s.kind = ComputeKind::kElementwise;
  s.ops.cmps = 1.0;
  s.ops.adds = 1.0;  // bias add fused with the activation
  s.loads_per_iter = 1.0;
  s.stores_per_iter = 1.0;
  s.accesses = {Access(out_elems, 0, false), Access(out_elems, 0, true)};
  return s;
}

std::vector<CanonicalNest> LowerTask(const Task& task) {
  ValidateTask(task);
  const auto& d = task.dims;
  std::vector<CanonicalNest> nests;

  switch (task.kind) {
    case OpKind::kConv2d: {
      // dims: {N, CI, H, W, CO, KH, KW}
      CanonicalNest nest;
      nest.spatial = {Spatial("n", d[0]), Spatial("co", d[4]), Spatial("h", d[2]),
                      Spatial("w", d[3])};
      nest.reduction = {Reduction("ci", d[1]), Reduction("kh", d[5]), Reduction("kw", d[6])};
      double out = static_cast<double>(task.OutputElems());
      nest.init = InitStmt(out);
      nest.main.kind = ComputeKind::kFma;
      nest.main.ops.fmas = 1.0;
      nest.main.loads_per_iter = 2.0;  // input element + weight element
      nest.main.accesses = {
          Access(static_cast<double>(d[0] * d[1] * d[2] * d[3]), 1, false),   // input
          Access(static_cast<double>(d[4] * d[1] * d[5] * d[6]), 0, false),   // weight
          Access(out, 0, true)};
      nests.push_back(std::move(nest));
      break;
    }
    case OpKind::kDepthwiseConv2d: {
      // dims: {N, C, H, W, KH, KW}
      CanonicalNest nest;
      nest.spatial = {Spatial("n", d[0]), Spatial("c", d[1]), Spatial("h", d[2]),
                      Spatial("w", d[3])};
      nest.reduction = {Reduction("kh", d[4]), Reduction("kw", d[5])};
      double out = static_cast<double>(task.OutputElems());
      nest.init = InitStmt(out);
      nest.main.kind = ComputeKind::kFma;
      nest.main.ops.fmas = 1.0;
      nest.main.loads_per_iter = 2.0;
      nest.main.accesses = {Access(static_cast<double>(d[0] * d[1] * d[2] * d[3]), 1, false),
                            Access(static_cast<double>(d[1] * d[4] * d[5]), 0, false),
                            Access(out, 0, true)};
      nests.push_back(std::move(nest));
      break;
    }
    case OpKind::kDense: {
      // dims: {M, N, K}
      CanonicalNest nest;
      nest.spatial = {Spatial("i", d[0]), Spatial("j", d[1])};
      nest.reduction = {Reduction("k", d[2])};
      double out = static_cast<double>(d[0] * d[1]);
      nest.init = InitStmt(out);
      nest.main.kind = ComputeKind::kFma;
      nest.main.ops.fmas = 1.0;
      nest.main.loads_per_iter = 2.0;
      nest.main.accesses = {Access(static_cast<double>(d[0] * d[2]), 0, false),
                            Access(static_cast<double>(d[2] * d[1]), 1, false),
                            Access(out, 0, true)};
      nests.push_back(std::move(nest));
      break;
    }
    case OpKind::kBatchMatmul: {
      // dims: {B, M, N, K}
      CanonicalNest nest;
      nest.spatial = {Spatial("b", d[0]), Spatial("i", d[1]), Spatial("j", d[2])};
      nest.reduction = {Reduction("k", d[3])};
      double out = static_cast<double>(d[0] * d[1] * d[2]);
      nest.init = InitStmt(out);
      nest.main.kind = ComputeKind::kFma;
      nest.main.ops.fmas = 1.0;
      nest.main.loads_per_iter = 2.0;
      nest.main.accesses = {Access(static_cast<double>(d[0] * d[1] * d[3]), 0, false),
                            Access(static_cast<double>(d[0] * d[3] * d[2]), 1, false),
                            Access(out, 0, true)};
      nests.push_back(std::move(nest));
      break;
    }
    case OpKind::kPool: {
      // dims: {N, C, H, W, KH, KW} — max pooling.
      CanonicalNest nest;
      nest.spatial = {Spatial("n", d[0]), Spatial("c", d[1]), Spatial("h", d[2]),
                      Spatial("w", d[3])};
      nest.reduction = {Reduction("kh", d[4]), Reduction("kw", d[5])};
      double out = static_cast<double>(task.OutputElems());
      nest.init = InitStmt(out);
      nest.main.kind = ComputeKind::kReduceUpdate;
      nest.main.ops.cmps = 1.0;
      nest.main.loads_per_iter = 1.0;
      nest.main.accesses = {Access(static_cast<double>(d[0] * d[1] * d[2] * d[3]), 1, false),
                            Access(out, 0, true)};
      nests.push_back(std::move(nest));
      break;
    }
    case OpKind::kSoftmax: {
      // dims: {M, N}; three passes: row-max, exp+row-sum, divide.
      double rows = static_cast<double>(d[0]);
      double elems = static_cast<double>(d[0] * d[1]);
      {
        CanonicalNest nest;
        nest.spatial = {Spatial("i", d[0])};
        nest.reduction = {Reduction("j", d[1])};
        nest.init = InitStmt(rows);
        nest.main.kind = ComputeKind::kReduceUpdate;
        nest.main.ops.cmps = 1.0;
        nest.main.loads_per_iter = 1.0;
        nest.main.accesses = {Access(elems, 0, false), Access(rows, 0, true)};
        nests.push_back(std::move(nest));
      }
      {
        CanonicalNest nest;
        nest.spatial = {Spatial("i", d[0])};
        nest.reduction = {Reduction("j", d[1])};
        nest.init = InitStmt(rows);
        nest.main.kind = ComputeKind::kSpecial;
        nest.main.ops.specials = 1.0;  // exp
        nest.main.ops.adds = 2.0;      // subtract max, accumulate sum
        nest.main.loads_per_iter = 2.0;
        nest.main.stores_per_iter = 1.0;
        nest.main.accesses = {Access(elems, 0, false), Access(elems, 0, true),
                              Access(rows, 0, true)};
        nests.push_back(std::move(nest));
      }
      {
        CanonicalNest nest;
        nest.spatial = {Spatial("i", d[0]), Spatial("j", d[1])};
        nest.main.kind = ComputeKind::kElementwise;
        nest.main.ops.divs = 1.0;
        nest.main.loads_per_iter = 2.0;
        nest.main.stores_per_iter = 1.0;
        nest.main.accesses = {Access(elems, 0, false), Access(elems, 0, true)};
        nests.push_back(std::move(nest));
      }
      break;
    }
    case OpKind::kLayerNorm: {
      // dims: {M, N}; passes: mean, variance, normalize.
      double rows = static_cast<double>(d[0]);
      double elems = static_cast<double>(d[0] * d[1]);
      {
        CanonicalNest nest;
        nest.spatial = {Spatial("i", d[0])};
        nest.reduction = {Reduction("j", d[1])};
        nest.init = InitStmt(rows);
        nest.main.kind = ComputeKind::kReduceUpdate;
        nest.main.ops.adds = 1.0;
        nest.main.loads_per_iter = 1.0;
        nest.main.accesses = {Access(elems, 0, false), Access(rows, 0, true)};
        nests.push_back(std::move(nest));
      }
      {
        CanonicalNest nest;
        nest.spatial = {Spatial("i", d[0])};
        nest.reduction = {Reduction("j", d[1])};
        nest.init = InitStmt(rows);
        nest.main.kind = ComputeKind::kFma;
        nest.main.ops.fmas = 1.0;  // (x - mu)^2 accumulation
        nest.main.ops.adds = 1.0;
        nest.main.loads_per_iter = 1.0;
        nest.main.accesses = {Access(elems, 0, false), Access(rows, 0, true)};
        nests.push_back(std::move(nest));
      }
      {
        CanonicalNest nest;
        nest.spatial = {Spatial("i", d[0]), Spatial("j", d[1])};
        nest.main.kind = ComputeKind::kSpecial;
        nest.main.ops.specials = 1.0;  // rsqrt
        nest.main.ops.muls = 2.0;      // scale * gamma
        nest.main.ops.adds = 2.0;      // shift + beta
        nest.main.loads_per_iter = 2.0;
        nest.main.stores_per_iter = 1.0;
        nest.main.accesses = {Access(elems, 0, false), Access(elems, 0, true)};
        nests.push_back(std::move(nest));
      }
      break;
    }
    case OpKind::kElementwise: {
      // dims: {LEN} — binary pointwise op (add/mul) with optional activation.
      CanonicalNest nest;
      nest.spatial = {Spatial("i", d[0])};
      double elems = static_cast<double>(d[0]);
      nest.main.kind = ComputeKind::kElementwise;
      nest.main.ops.adds = 1.0;
      nest.main.ops.muls = 1.0;
      nest.main.loads_per_iter = 2.0;
      nest.main.stores_per_iter = 1.0;
      nest.main.accesses = {Access(elems, 0, false), Access(elems, 0, false),
                            Access(elems, 0, true)};
      nests.push_back(std::move(nest));
      break;
    }
    case OpKind::kReduce: {
      // dims: {M, N} — sum along N.
      CanonicalNest nest;
      nest.spatial = {Spatial("i", d[0])};
      nest.reduction = {Reduction("j", d[1])};
      double rows = static_cast<double>(d[0]);
      nest.init = InitStmt(rows);
      nest.main.kind = ComputeKind::kReduceUpdate;
      nest.main.ops.adds = 1.0;
      nest.main.loads_per_iter = 1.0;
      nest.main.accesses = {Access(static_cast<double>(d[0] * d[1]), 0, false),
                            Access(rows, 0, true)};
      nests.push_back(std::move(nest));
      break;
    }
    case OpKind::kTranspose: {
      // dims: {M, N}.
      CanonicalNest nest;
      nest.spatial = {Spatial("i", d[0]), Spatial("j", d[1])};
      double elems = static_cast<double>(d[0] * d[1]);
      nest.main.kind = ComputeKind::kCopy;
      nest.main.loads_per_iter = 1.0;
      nest.main.stores_per_iter = 1.0;
      nest.main.accesses = {Access(elems, 2, false), Access(elems, 0, true)};
      nests.push_back(std::move(nest));
      break;
    }
  }

  if (task.fused_relu) {
    // The epilogue attaches to the last nest by default; the schedule decides
    // whether it stays fused or becomes its own nest (kFuseEpilogue).
    CDMPP_CHECK(!nests.empty());
    nests.back().epilogues.push_back(MakeReluEpilogue(static_cast<double>(task.OutputElems())));
  }
  return nests;
}

}  // namespace cdmpp

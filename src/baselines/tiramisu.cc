#include "src/baselines/tiramisu.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/ast/compact_ast.h"
#include "src/support/check.h"
#include "src/tir/schedule.h"

namespace cdmpp {

namespace {

constexpr int kLoopFeatDim = 5;  // log extent + 4-way annotation one-hot

void FillLoopFeatures(const Loop& loop, float* out) {
  out[0] = static_cast<float>(std::log1p(static_cast<double>(loop.extent)));
  out[1] = loop.annotation == LoopAnnotation::kNone ? 1.0f : 0.0f;
  out[2] = loop.annotation == LoopAnnotation::kVectorize ? 1.0f : 0.0f;
  out[3] = loop.annotation == LoopAnnotation::kUnroll ? 1.0f : 0.0f;
  out[4] = loop.annotation == LoopAnnotation::kParallel ? 1.0f : 0.0f;
}

}  // namespace

struct TiramisuModel::NodeCache {
  // Leaf caches.
  Matrix leaf_x;    // [1, kFeatDim]
  Matrix leaf_pre;  // [1, H], pre-activation
  // Loop caches.
  std::vector<std::unique_ptr<NodeCache>> children;
  std::vector<LstmCell::Cache> lstm_caches;  // one per child step
  Matrix loop_in;                            // [1, H + kLoopFeatDim]
  Matrix loop_pre;                           // [1, H]
  // Pre-order leaf contexts of the program (set on the root cache only).
  std::vector<LeafContext> leaves;
  size_t next_leaf = 0;
};

TiramisuModel::TiramisuModel(const TiramisuConfig& config) : config_(config), rng_(config.seed) {
  const int h = config_.hidden_dim;
  w_leaf_.InitXavier(kFeatDim, h, &rng_);
  b_leaf_.InitZero(1, h);
  lstm_ = std::make_unique<LstmCell>(h, h, &rng_);
  w_loop_.InitXavier(h + kLoopFeatDim, h, &rng_);
  b_loop_.InitZero(1, h);
  w_head_.InitXavier(h, 1, &rng_);
  b_head_.InitZero(1, 1);

  std::vector<Param*> params;
  CollectParams(&params);
  optimizer_ = std::make_unique<Adam>(std::move(params), config_.lr);
}

TiramisuModel::~TiramisuModel() = default;

void TiramisuModel::CollectParams(std::vector<Param*>* out) {
  out->push_back(&w_leaf_);
  out->push_back(&b_leaf_);
  lstm_->CollectParams(out);
  out->push_back(&w_loop_);
  out->push_back(&b_loop_);
  out->push_back(&w_head_);
  out->push_back(&b_head_);
}

Matrix TiramisuModel::LeafForward(const ComputationVector& cv, NodeCache* cache) {
  cache->leaf_x = Matrix(1, kFeatDim);
  for (int j = 0; j < kFeatDim; ++j) {
    cache->leaf_x.At(0, j) = cv[static_cast<size_t>(j)];
  }
  cache->leaf_pre = MatMul(cache->leaf_x, w_leaf_.value);
  AddRowBroadcast(&cache->leaf_pre, b_leaf_.value);
  Matrix h = cache->leaf_pre;
  for (int j = 0; j < h.cols(); ++j) {
    h.At(0, j) = std::max(0.0f, h.At(0, j));
  }
  return h;
}

void TiramisuModel::LeafBackward(NodeCache* cache, const Matrix& dh) {
  Matrix dpre = dh;
  for (int j = 0; j < dpre.cols(); ++j) {
    if (cache->leaf_pre.At(0, j) <= 0.0f) {
      dpre.At(0, j) = 0.0f;
    }
  }
  w_leaf_.grad.AddInPlace(MatMulTransA(cache->leaf_x, dpre));
  b_leaf_.grad.AddInPlace(dpre);
}

Matrix TiramisuModel::LoopProject(const Matrix& h, const Loop& loop, NodeCache* cache) {
  const int hd = config_.hidden_dim;
  cache->loop_in = Matrix(1, hd + kLoopFeatDim);
  for (int j = 0; j < hd; ++j) {
    cache->loop_in.At(0, j) = h.At(0, j);
  }
  FillLoopFeatures(loop, cache->loop_in.Row(0) + hd);
  cache->loop_pre = MatMul(cache->loop_in, w_loop_.value);
  AddRowBroadcast(&cache->loop_pre, b_loop_.value);
  Matrix out = cache->loop_pre;
  for (int j = 0; j < out.cols(); ++j) {
    out.At(0, j) = std::max(0.0f, out.At(0, j));
  }
  return out;
}

Matrix TiramisuModel::LoopProjectBackward(NodeCache* cache, const Matrix& dh) {
  Matrix dpre = dh;
  for (int j = 0; j < dpre.cols(); ++j) {
    if (cache->loop_pre.At(0, j) <= 0.0f) {
      dpre.At(0, j) = 0.0f;
    }
  }
  w_loop_.grad.AddInPlace(MatMulTransA(cache->loop_in, dpre));
  b_loop_.grad.AddInPlace(dpre);
  Matrix din = MatMulTransB(dpre, w_loop_.value);
  Matrix dh_in(1, config_.hidden_dim);
  for (int j = 0; j < config_.hidden_dim; ++j) {
    dh_in.At(0, j) = din.At(0, j);
  }
  return dh_in;
}

Matrix TiramisuModel::EmbedNode(const StmtNode& node, NodeCache* cache, NodeCache* root) {
  if (node.is_leaf) {
    CDMPP_CHECK(root->next_leaf < root->leaves.size());
    ComputationVector cv = BuildComputationVector(root->leaves[root->next_leaf++]);
    return LeafForward(cv, cache);
  }
  LstmCell::State state = lstm_->ZeroState(1);
  for (const auto& child : node.children) {
    auto child_cache = std::make_unique<NodeCache>();
    Matrix child_h = EmbedNode(*child, child_cache.get(), root);
    cache->lstm_caches.emplace_back();
    state = lstm_->Forward(child_h, state, &cache->lstm_caches.back());
    cache->children.push_back(std::move(child_cache));
  }
  return LoopProject(state.h, node.loop, cache);
}

void TiramisuModel::BackpropNode(const StmtNode& node, NodeCache* cache, const Matrix& dh) {
  if (node.is_leaf) {
    LeafBackward(cache, dh);
    return;
  }
  // dh w.r.t. the loop projection output -> gradient of the final LSTM state.
  Matrix dstate_h = LoopProjectBackward(cache, dh);
  Matrix dstate_c;  // empty = zero at the last step
  for (size_t t = cache->children.size(); t-- > 0;) {
    LstmCell::InputGrads grads = lstm_->Backward(cache->lstm_caches[t], dstate_h, dstate_c);
    BackpropNode(*node.children[t], cache->children[t].get(), grads.dx);
    dstate_h = std::move(grads.dh_prev);
    dstate_c = std::move(grads.dc_prev);
  }
}

float TiramisuModel::ForwardProgram(const TensorProgram& prog) {
  last_root_cache_ = std::make_unique<NodeCache>();
  last_root_cache_->leaves = CollectLeaves(*prog.root);
  last_root_h_ = EmbedNode(*prog.root, last_root_cache_.get(), last_root_cache_.get());
  last_prog_ = &prog;
  Matrix out = MatMul(last_root_h_, w_head_.value);
  AddRowBroadcast(&out, b_head_.value);
  return out.At(0, 0);
}

void TiramisuModel::BackpropProgram(float dout) {
  CDMPP_CHECK(last_root_cache_ != nullptr && last_prog_ != nullptr);
  Matrix dout_m(1, 1);
  dout_m.At(0, 0) = dout;
  w_head_.grad.AddInPlace(MatMulTransA(last_root_h_, dout_m));
  b_head_.grad.AddInPlace(dout_m);
  Matrix dh = MatMulTransB(dout_m, w_head_.value);
  BackpropNode(*last_prog_->root, last_root_cache_.get(), dh);
}

double TiramisuModel::Fit(const Dataset& ds, const std::vector<int>& train) {
  CDMPP_CHECK(!train.empty());
  transform_ = MakeLabelTransform(NormKind::kBoxCox);
  std::vector<double> labels_ms = GatherLabels(ds, train);
  for (double& y : labels_ms) {
    y *= 1e3;
  }
  transform_->Fit(labels_ms);

  std::vector<Param*> params;
  CollectParams(&params);

  size_t seen = 0;
  auto start = std::chrono::steady_clock::now();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<int> order = train;
    rng_.Shuffle(&order);
    if (static_cast<int>(order.size()) > config_.max_train_programs_per_epoch) {
      order.resize(static_cast<size_t>(config_.max_train_programs_per_epoch));
    }
    for (int idx : order) {
      const Sample& s = ds.samples[static_cast<size_t>(idx)];
      const ProgramRecord& rec = ds.programs[static_cast<size_t>(s.program_index)];
      TensorProgram prog =
          GenerateProgram(ds.tasks[static_cast<size_t>(rec.task_id)].task, rec.schedule);
      float pred = ForwardProgram(prog);
      float target =
          static_cast<float>(transform_->Transform(s.latency_seconds * 1e3));
      // MAPE objective (Tiramisu's default).
      float denom = std::max(1e-3f, std::abs(target));
      float dout = (pred >= target ? 1.0f : -1.0f) / denom;
      for (Param* p : params) {
        p->grad.Zero();
      }
      BackpropProgram(dout);
      // Per-sample updates are noisy; clip the global gradient norm.
      double norm_sq = 0.0;
      for (Param* p : params) {
        norm_sq += p->grad.SquaredNorm();
      }
      if (norm_sq > 1.0) {
        float scale = static_cast<float>(1.0 / std::sqrt(norm_sq));
        for (Param* p : params) {
          p->grad.Scale(scale);
        }
      }
      optimizer_->Step();
      ++seen;
    }
  }
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  return secs > 0.0 ? static_cast<double>(seen) / secs : 0.0;
}

double TiramisuModel::PredictProgram(const TensorProgram& prog) {
  CDMPP_CHECK(transform_ != nullptr);
  // Clamp to the plausible transformed band to keep the exponential-tailed
  // inverse finite on out-of-distribution programs.
  double t = std::clamp(static_cast<double>(ForwardProgram(prog)), kLabelShift - 6.0,
                        kLabelShift + 6.0);
  return transform_->Inverse(t) / 1e3;
}

std::vector<double> TiramisuModel::Predict(const Dataset& ds, const std::vector<int>& indices) {
  CDMPP_CHECK(transform_ != nullptr);
  std::vector<double> out;
  out.reserve(indices.size());
  for (int idx : indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    const ProgramRecord& rec = ds.programs[static_cast<size_t>(s.program_index)];
    TensorProgram prog =
        GenerateProgram(ds.tasks[static_cast<size_t>(rec.task_id)].task, rec.schedule);
    out.push_back(PredictProgram(prog));
  }
  return out;
}

}  // namespace cdmpp

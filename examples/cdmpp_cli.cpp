// The paper's §6 command-line workflow:
//
//   $ cdmpp <network> <batch_size> <device>
//
// e.g.  ./build/examples/cdmpp_cli resnet50 1 V100
//
// Trains a small cross-device cost model on the fly (this repo keeps no
// serialized checkpoints), dissects the network into tensor programs, queries
// the predictor per program and replays the DFG to report the end-to-end
// iteration latency on the requested device.
#include <cstdio>
#include <string>

#include "src/core/predictor.h"
#include "src/replay/e2e.h"

using namespace cdmpp;

namespace {

// Maps the paper-style short names to zoo network names.
std::string ResolveNetwork(const std::string& short_name, int batch_size) {
  const std::string bs = "_bs" + std::to_string(batch_size);
  if (short_name == "resnet50") {
    return "resnet50" + bs + "_r224";
  }
  if (short_name == "resnet18") {
    return "resnet18" + bs + "_r224";
  }
  if (short_name == "mobilenet_v2") {
    return "mobilenet_v2_w100" + bs + "_r224";
  }
  if (short_name == "inception_v3") {
    return "inception_v3" + bs + "_r224";
  }
  if (short_name == "vgg16") {
    return "vgg16" + bs + "_r224";
  }
  if (short_name == "bert_tiny") {
    return "bert_tiny" + bs + "_s128";
  }
  if (short_name == "bert_base") {
    return "bert_base" + bs + "_s128";
  }
  return short_name;  // assume a full zoo name was given
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <network> <batch_size> <device>\n"
                 "  network: resnet50 | resnet18 | mobilenet_v2 | inception_v3 | vgg16 |\n"
                 "           bert_tiny | bert_base | <full zoo name>\n"
                 "  device:  T4 | K80 | P100 | V100 | A100 | HL-100 | 'Intel E5-2673' |\n"
                 "           'AMD EPYC 7452' | Graviton2\n",
                 argv[0]);
    return 1;
  }
  std::string network = ResolveNetwork(argv[1], std::atoi(argv[2]));
  const DeviceSpec& device = DeviceByName(argv[3]);

  std::printf("cdmpp: training the cost model (one-off; no checkpoint store)...\n");
  DatasetOptions opts;
  opts.device_ids = {0, 3, 7};  // profiled devices: T4, V100, EPYC
  opts.schedules_per_task = 4;
  opts.max_networks = 14;
  opts.seed = 51;
  Dataset ds = BuildDataset(opts);
  Rng rng(52);
  SplitIndices split = SplitDataset(ds, {}, {}, &rng);
  PredictorConfig cfg;
  cfg.epochs = 40;
  CdmppPredictor predictor(cfg);
  predictor.Pretrain(ds, split.train, split.valid);

  NetworkDef net = BuildNetworkByName(network);
  NetworkSchedules scheds = ChooseSchedules(net, 53);
  double predicted = E2ePredicted(net, device, scheds, [&](const CompactAst& ast, int dev) {
    return predictor.PredictAst(ast, dev);
  });
  std::printf("\n%s (batch %s) on %s: predicted iteration latency = %.3f ms"
              " (%zu operators, %d execution queue(s))\n",
              network.c_str(), argv[2], device.name.c_str(), predicted * 1e3, net.ops.size(),
              ReplayQueues(device));
  return 0;
}

// End-to-end network latency helpers built on the replayer: pick one random
// schedule per task (as the paper does for the e2e experiments: "we break
// each DNN model down into a set of tasks and randomly sample a schedule for
// each task"), then replay with ground-truth or cost-model node latencies.
#ifndef SRC_REPLAY_E2E_H_
#define SRC_REPLAY_E2E_H_

#include <map>

#include "src/ast/compact_ast.h"
#include "src/replay/replayer.h"
#include "src/tir/schedule.h"

namespace cdmpp {

// One chosen scheduled program per distinct task signature of the network.
struct NetworkSchedules {
  // Keyed by op index; ops sharing a task share the schedule (and therefore
  // the cost-model query, as in §5.5's TIR-kernel dedup).
  std::map<int, ScheduleDesc> by_op;
};

// Deterministically samples one schedule per op (shared across ops with the
// same task signature).
NetworkSchedules ChooseSchedules(const NetworkDef& net, uint64_t seed);

// Ground-truth end-to-end latency: per-node latencies from the device
// simulator, replayed with Algorithm 2.
double E2eGroundTruth(const NetworkDef& net, const DeviceSpec& device,
                      const NetworkSchedules& schedules);

// Cost-model end-to-end latency: per-node latencies from `predict_ast`
// (compact AST + device id -> seconds), replayed identically. Cost-model
// inference is performed once per distinct task (TIR-kernel dedup).
double E2ePredicted(const NetworkDef& net, const DeviceSpec& device,
                    const NetworkSchedules& schedules,
                    const std::function<double(const CompactAst&, int)>& predict_ast);

}  // namespace cdmpp

#endif  // SRC_REPLAY_E2E_H_

// Shared setup for the benchmark harnesses that regenerate the paper's
// tables and figures: a common dataset configuration, predictor configs, and
// evaluation helpers. Every bench is one process; the dataset is built
// deterministically at startup from the same seed so results are comparable
// across benches.
#ifndef SRC_EXP_EXP_COMMON_H_
#define SRC_EXP_EXP_COMMON_H_

#include <string>

#include "src/core/predictor.h"
#include "src/dataset/dataset.h"
#include "src/support/table.h"

namespace cdmpp {

// The evaluation dataset: all nine Table-2 devices, a representative slice of
// the model zoo, several schedules per task. Scaled down from Tenset's 50M
// records to run on one CPU core (see DESIGN.md "Scaling note").
Dataset BuildBenchDataset();

// Like BuildBenchDataset but restricted to the given devices (faster when a
// bench touches few devices).
Dataset BuildBenchDataset(const std::vector<int>& device_ids);

// The default predictor configuration used across benches (the auto-tuned
// defaults of PredictorConfig) with a bench-specific epoch budget.
PredictorConfig BenchPredictorConfig(int epochs, uint64_t seed = 7);

// MAPE etc. of externally produced predictions (seconds) against the truth.
EvalStats EvalPredictions(const Dataset& ds, const std::vector<int>& indices,
                          const std::vector<double>& preds_seconds);

// Truncates an index list to at most n entries (keeps determinism: prefix).
std::vector<int> Take(const std::vector<int>& indices, size_t n);

// Prints a one-line bench header so concatenated bench logs stay readable.
void PrintBenchHeader(const std::string& id, const std::string& paper_ref,
                      const std::string& description);

}  // namespace cdmpp

#endif  // SRC_EXP_EXP_COMMON_H_

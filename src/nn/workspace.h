// Workspace: a bump arena of reusable Matrix buffers for the inference hot
// path.
//
// Every ForwardInference(..., Workspace*) overload takes its output and all
// intermediate tensors from the workspace instead of the heap. Usage:
//
//   Workspace ws;                       // one per thread (not thread-safe)
//   ws.Reset();                         // rewind before each forward pass
//   Matrix* y = layer.ForwardInference(x, &ws);  // valid until next Reset()
//
// Reset() rewinds the slot cursor without freeing, so after the first pass
// per shape ("warm"), NewMatrix is a pointer bump plus a capacity-preserving
// resize: steady-state forward passes perform zero heap allocations (see
// tests/dataplane_test.cc, which asserts this with a counting allocator).
// Matrices keep stable addresses across Reset() because slots are pooled
// behind unique_ptr.
#ifndef SRC_NN_WORKSPACE_H_
#define SRC_NN_WORKSPACE_H_

#include <memory>
#include <vector>

#include "src/nn/matrix.h"

namespace cdmpp {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Returns a [rows, cols] matrix owned by the workspace, valid until the
  // next Reset(). Contents are unspecified (callers that accumulate must
  // Zero() first); kernels with beta=0 overwrite every element anyway.
  Matrix* NewMatrix(int rows, int cols);

  // Rewinds the arena. Pooled buffers (and their float capacity) survive, so
  // the next pass with the same shapes allocates nothing.
  void Reset() { cursor_ = 0; }

  // Introspection (tests, stats).
  size_t num_slots() const { return slots_.size(); }
  size_t live_slots() const { return cursor_; }
  size_t pooled_floats() const;

 private:
  std::vector<std::unique_ptr<Matrix>> slots_;
  size_t cursor_ = 0;
};

}  // namespace cdmpp

#endif  // SRC_NN_WORKSPACE_H_

#include "src/support/stats.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"

namespace cdmpp {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    ss += (x - mu) * (x - mu);
  }
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

namespace {

// Percentile of an already-sorted, non-empty buffer.
double SortedPercentile(const std::vector<double>& xs, double p) {
  CDMPP_CHECK(p >= 0.0 && p <= 100.0);
  double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  return SortedPercentile(xs, p);
}

std::vector<double> Percentiles(std::vector<double> xs, const std::vector<double>& ps) {
  if (xs.empty()) {
    return std::vector<double>(ps.size(), 0.0);
  }
  std::sort(xs.begin(), xs.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) {
    out.push_back(SortedPercentile(xs, p));
  }
  return out;
}

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  CDMPP_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) {
    return 0.0;
  }
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

double Skewness(const std::vector<double>& xs) {
  if (xs.size() < 3) {
    return 0.0;
  }
  double mu = Mean(xs);
  double sigma = Stddev(xs);
  if (sigma <= 0.0) {
    return 0.0;
  }
  double s3 = 0.0;
  for (double x : xs) {
    double d = (x - mu) / sigma;
    s3 += d * d * d;
  }
  return s3 / static_cast<double>(xs.size());
}

std::vector<size_t> Histogram(const std::vector<double>& xs, size_t bins) {
  CDMPP_CHECK(bins > 0);
  std::vector<size_t> counts(bins, 0);
  if (xs.empty()) {
    return counts;
  }
  auto [mn_it, mx_it] = std::minmax_element(xs.begin(), xs.end());
  double mn = *mn_it;
  double mx = *mx_it;
  double width = mx - mn;
  if (width <= 0.0) {
    counts[0] = xs.size();
    return counts;
  }
  for (double x : xs) {
    size_t b = static_cast<size_t>((x - mn) / width * static_cast<double>(bins));
    if (b >= bins) {
      b = bins - 1;
    }
    counts[b]++;
  }
  return counts;
}

double Mape(const std::vector<double>& pred, const std::vector<double>& truth) {
  CDMPP_CHECK(pred.size() == truth.size());
  double sum = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (truth[i] == 0.0) {
      continue;
    }
    sum += std::abs(pred[i] - truth[i]) / std::abs(truth[i]);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double Rmse(const std::vector<double>& pred, const std::vector<double>& truth) {
  CDMPP_CHECK(pred.size() == truth.size());
  if (pred.empty()) {
    return 0.0;
  }
  double ss = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = pred[i] - truth[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(pred.size()));
}

double AccuracyWithin(const std::vector<double>& pred, const std::vector<double>& truth,
                      double tol) {
  CDMPP_CHECK(pred.size() == truth.size());
  if (pred.empty()) {
    return 0.0;
  }
  size_t hit = 0;
  size_t n = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (truth[i] == 0.0) {
      continue;
    }
    ++n;
    if (std::abs(pred[i] - truth[i]) / std::abs(truth[i]) <= tol) {
      ++hit;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(n);
}

}  // namespace cdmpp

// Lightweight assertion macros used across the CDMPP library.
//
// CDMPP_CHECK fires in every build type: a failed check is a programmer error
// (violated precondition or invariant), so we print the condition and abort.
// The library does not throw exceptions across API boundaries.
#ifndef SRC_SUPPORT_CHECK_H_
#define SRC_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define CDMPP_CHECK(cond)                                                                \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      std::fprintf(stderr, "CDMPP_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                                               \
      std::abort();                                                                      \
    }                                                                                    \
  } while (0)

#define CDMPP_CHECK_MSG(cond, msg)                                                       \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      std::fprintf(stderr, "CDMPP_CHECK failed at %s:%d: %s (%s)\n", __FILE__, __LINE__, \
                   #cond, msg);                                                          \
      std::abort();                                                                      \
    }                                                                                    \
  } while (0)

#endif  // SRC_SUPPORT_CHECK_H_

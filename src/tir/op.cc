#include "src/tir/op.h"

#include "src/support/check.h"

namespace cdmpp {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2d:
      return "conv2d";
    case OpKind::kDepthwiseConv2d:
      return "depthwise_conv2d";
    case OpKind::kDense:
      return "dense";
    case OpKind::kBatchMatmul:
      return "batch_matmul";
    case OpKind::kPool:
      return "pool";
    case OpKind::kSoftmax:
      return "softmax";
    case OpKind::kLayerNorm:
      return "layer_norm";
    case OpKind::kElementwise:
      return "elementwise";
    case OpKind::kReduce:
      return "reduce";
    case OpKind::kTranspose:
      return "transpose";
  }
  return "unknown";
}

namespace {

size_t ExpectedDims(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2d:
      return 7;
    case OpKind::kDepthwiseConv2d:
      return 6;
    case OpKind::kDense:
      return 3;
    case OpKind::kBatchMatmul:
      return 4;
    case OpKind::kPool:
      return 6;
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
    case OpKind::kReduce:
    case OpKind::kTranspose:
      return 2;
    case OpKind::kElementwise:
      return 1;
  }
  return 0;
}

double Product(const std::vector<int64_t>& dims, size_t lo, size_t hi) {
  double p = 1.0;
  for (size_t i = lo; i < hi; ++i) {
    p *= static_cast<double>(dims[i]);
  }
  return p;
}

}  // namespace

void ValidateTask(const Task& task) {
  CDMPP_CHECK_MSG(task.dims.size() == ExpectedDims(task.kind), task.name.c_str());
  for (int64_t d : task.dims) {
    CDMPP_CHECK(d > 0);
  }
}

double Task::Flops() const {
  const auto& d = dims;
  switch (kind) {
    case OpKind::kConv2d:
      // 2 flops (mul+add) per MAC: N*CO*H*W * CI*KH*KW.
      return 2.0 * Product(d, 0, 7);
    case OpKind::kDepthwiseConv2d:
      return 2.0 * Product(d, 0, 6);
    case OpKind::kDense:
      return 2.0 * Product(d, 0, 3);
    case OpKind::kBatchMatmul:
      return 2.0 * Product(d, 0, 4);
    case OpKind::kPool:
      return Product(d, 0, 6);  // one compare per window element
    case OpKind::kSoftmax:
      return 5.0 * Product(d, 0, 2);  // max, sub, exp, sum, div passes
    case OpKind::kLayerNorm:
      return 6.0 * Product(d, 0, 2);
    case OpKind::kElementwise:
      return 2.0 * Product(d, 0, 1);
    case OpKind::kReduce:
      return Product(d, 0, 2);
    case OpKind::kTranspose:
      return 0.0;
  }
  return 0.0;
}

int64_t Task::OutputElems() const {
  const auto& d = dims;
  switch (kind) {
    case OpKind::kConv2d:
      return d[0] * d[4] * d[2] * d[3];
    case OpKind::kDepthwiseConv2d:
    case OpKind::kPool:
      return d[0] * d[1] * d[2] * d[3];
    case OpKind::kDense:
      return d[0] * d[1];
    case OpKind::kBatchMatmul:
      return d[0] * d[1] * d[2];
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
    case OpKind::kTranspose:
      return d[0] * d[1];
    case OpKind::kReduce:
      return d[0];
    case OpKind::kElementwise:
      return d[0];
  }
  return 0;
}

double Task::MemoryBytes() const {
  const auto& d = dims;
  constexpr double kElem = 4.0;  // fp32
  double in_elems = 0.0;
  switch (kind) {
    case OpKind::kConv2d:
      in_elems = static_cast<double>(d[0] * d[1] * d[2] * d[3]) +  // input
                 static_cast<double>(d[4] * d[1] * d[5] * d[6]);   // weight
      break;
    case OpKind::kDepthwiseConv2d:
      in_elems = static_cast<double>(d[0] * d[1] * d[2] * d[3]) +
                 static_cast<double>(d[1] * d[4] * d[5]);
      break;
    case OpKind::kDense:
      in_elems = static_cast<double>(d[0] * d[2]) + static_cast<double>(d[2] * d[1]);
      break;
    case OpKind::kBatchMatmul:
      in_elems = static_cast<double>(d[0]) * (static_cast<double>(d[1] * d[3]) +
                                              static_cast<double>(d[3] * d[2]));
      break;
    case OpKind::kPool:
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
    case OpKind::kReduce:
    case OpKind::kTranspose:
    case OpKind::kElementwise:
      in_elems = kind == OpKind::kPool
                     ? static_cast<double>(d[0] * d[1] * d[2] * d[3])
                     : Product(d, 0, d.size());
      break;
  }
  return kElem * (in_elems + static_cast<double>(OutputElems()));
}

}  // namespace cdmpp

#include "src/nn/transformer.h"

namespace cdmpp {

TransformerEncoderLayer::TransformerEncoderLayer(int d_model, int num_heads, int d_ff, Rng* rng)
    : attn_(d_model, num_heads, rng), norm1_(d_model), norm2_(d_model) {
  ff1_ = std::make_unique<Linear>(d_model, d_ff, rng);
  ff2_ = std::make_unique<Linear>(d_ff, d_model, rng);
}

Matrix TransformerEncoderLayer::Forward(const Matrix& x, int seq_len) {
  Matrix attn_out = attn_.Forward(x, seq_len);
  attn_out.AddInPlace(x);  // residual
  Matrix h = norm1_.Forward(attn_out);

  Matrix ff = ff2_->Forward(ff_relu_.Forward(ff1_->Forward(h)));
  ff.AddInPlace(h);  // residual
  return norm2_.Forward(ff);
}

Matrix TransformerEncoderLayer::ForwardInference(const Matrix& x, int seq_len) const {
  Workspace ws;
  return *ForwardInference(x, seq_len, &ws);
}

Matrix* TransformerEncoderLayer::ForwardInference(const Matrix& x, int seq_len,
                                                  Workspace* ws) const {
  Matrix* attn_out = attn_.ForwardInference(x, seq_len, ws);
  attn_out->AddInPlace(x);  // residual
  Matrix* h = norm1_.ForwardInference(*attn_out, ws);

  // FFN hidden layer: bias + ReLU fused into the GEMM epilogue.
  Matrix* ff1 = ff1_->ForwardInference(*h, ws, kernels::Activation::kRelu);
  Matrix* ff = ff2_->ForwardInference(*ff1, ws);
  ff->AddInPlace(*h);  // residual
  return norm2_.ForwardInference(*ff, ws);
}

Matrix TransformerEncoderLayer::Backward(const Matrix& dy) {
  Matrix d_ff_sum = norm2_.Backward(dy);
  // d_ff_sum flows to both the FFN branch and the residual (h).
  Matrix dh = ff1_->Backward(ff_relu_.Backward(ff2_->Backward(d_ff_sum)));
  dh.AddInPlace(d_ff_sum);

  Matrix d_attn_sum = norm1_.Backward(dh);
  Matrix dx = attn_.Backward(d_attn_sum);
  dx.AddInPlace(d_attn_sum);
  return dx;
}

void TransformerEncoderLayer::CollectParams(std::vector<Param*>* out) {
  attn_.CollectParams(out);
  norm1_.CollectParams(out);
  ff1_->CollectParams(out);
  ff2_->CollectParams(out);
  norm2_.CollectParams(out);
}

TransformerEncoder::TransformerEncoder(int d_model, int num_heads, int d_ff, int num_layers,
                                       Rng* rng)
    : d_model_(d_model) {
  CDMPP_CHECK(num_layers >= 1);
  for (int i = 0; i < num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(d_model, num_heads, d_ff, rng));
  }
}

Matrix TransformerEncoder::Forward(const Matrix& x, int seq_len) {
  Matrix h = x;
  for (auto& layer : layers_) {
    h = layer->Forward(h, seq_len);
  }
  return h;
}

Matrix TransformerEncoder::ForwardInference(const Matrix& x, int seq_len) const {
  Workspace ws;
  return *ForwardInference(x, seq_len, &ws);
}

Matrix* TransformerEncoder::ForwardInference(const Matrix& x, int seq_len,
                                             Workspace* ws) const {
  Matrix* h = layers_[0]->ForwardInference(x, seq_len, ws);
  for (size_t i = 1; i < layers_.size(); ++i) {
    h = layers_[i]->ForwardInference(*h, seq_len, ws);
  }
  return h;
}

Matrix TransformerEncoder::Backward(const Matrix& dy) {
  Matrix d = dy;
  for (size_t i = layers_.size(); i-- > 0;) {
    d = layers_[i]->Backward(d);
  }
  return d;
}

void TransformerEncoder::CollectParams(std::vector<Param*>* out) {
  for (auto& layer : layers_) {
    layer->CollectParams(out);
  }
}

QuantizedTransformerEncoderLayer::QuantizedTransformerEncoderLayer(
    const TransformerEncoderLayer& layer, const LayerNorm* input_norm)
    : attn_(layer.attn(),
            input_norm != nullptr ? LayerNormActAbsMax(*input_norm) : std::vector<float>{}),
      norm1_(layer.norm1()),
      ff1_(layer.ff1(), BalancedColumnScales(LayerNormActAbsMax(layer.norm1()),
                                             layer.ff1().weight())),
      ff2_(layer.ff2()),
      norm2_(layer.norm2()) {}

Matrix* QuantizedTransformerEncoderLayer::ForwardInference(const Matrix& x, int seq_len,
                                                           Workspace* ws) const {
  // Mirrors the fp32 layer exactly, with the weight GEMMs swapped for their
  // quantized snapshots. Residual adds and LayerNorms are fp32: every
  // parallel region inside (attention chunks, LayerNorm rows, activation
  // quantization rows) writes disjoint regions, so the whole layer stays
  // bitwise thread-count-invariant.
  Matrix* attn_out = attn_.ForwardInference(x, seq_len, ws);
  attn_out->AddInPlace(x);  // residual
  Matrix* h = norm1_.ForwardInference(*attn_out, ws);

  // FFN hidden layer: bias + ReLU fused into the int8 dequant epilogue.
  Matrix* ff1 = ff1_.ForwardInference(*h, ws, kernels::Activation::kRelu);
  Matrix* ff = ff2_.ForwardInference(*ff1, ws);
  ff->AddInPlace(*h);  // residual
  return norm2_.ForwardInference(*ff, ws);
}

QuantizedTransformerEncoder::QuantizedTransformerEncoder(const TransformerEncoder& encoder)
    : d_model_(encoder.d_model()) {
  layers_.reserve(encoder.num_layers());
  for (size_t i = 0; i < encoder.num_layers(); ++i) {
    // Post-LN stacking: layer i's attention input is layer i-1's norm2
    // output; layer 0's input is the (fp32) input projection, which has no
    // static channel profile to fold.
    const LayerNorm* input_norm = i > 0 ? &encoder.layer(i - 1).norm2() : nullptr;
    layers_.emplace_back(encoder.layer(i), input_norm);
  }
}

Matrix* QuantizedTransformerEncoder::ForwardInference(const Matrix& x, int seq_len,
                                                      Workspace* ws) const {
  Matrix* h = layers_[0].ForwardInference(x, seq_len, ws);
  for (size_t i = 1; i < layers_.size(); ++i) {
    h = layers_[i].ForwardInference(*h, seq_len, ws);
  }
  return h;
}

}  // namespace cdmpp

// Quantization tests: round-trip error bounds of the per-row activation
// (adaptive code range, ActivationQMax) and per-output-channel int8 weight
// quantizers, packed-layout integrity, the
// analytic error bound of a quantized Linear vs its fp32 source, batch-size
// invariance of the quantized path (per-row scales), and the Workspace i16
// arena's warm-path reuse.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/nn/quantize.h"
#include "src/nn/workspace.h"
#include "src/support/cpu_features.h"
#include "src/support/rng.h"

namespace cdmpp {
namespace {

using kernels::Activation;
using kernels::PackedQ8Weights;

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, scale));
  }
  return m;
}

TEST(QuantizeActivationsTest, RoundTripErrorIsBoundedByHalfScale) {
  Rng rng(41);
  const int rows = 7, k = 37;
  Matrix x = RandomMatrix(rows, k, &rng, 3.0);
  const int k2 = (k + 1) / 2;
  std::vector<int16_t> q(static_cast<size_t>(rows) * 2 * k2, -1);
  std::vector<float> scales(rows, 0.0f);
  QuantizeActivationsPerRow(rows, k, x.data(), k, q.data(), 2 * k2, scales.data());
  const int qmax = ActivationQMax(k);
  EXPECT_EQ(qmax, 4095);  // every predictor-sized reduction gets 12-bit codes
  for (int i = 0; i < rows; ++i) {
    ASSERT_GT(scales[static_cast<size_t>(i)], 0.0f);
    for (int p = 0; p < k; ++p) {
      const int16_t qv = q[static_cast<size_t>(i) * 2 * k2 + p];
      EXPECT_GE(qv, -qmax);
      EXPECT_LE(qv, qmax);
      // Round-to-nearest: |q*scale - x| <= scale/2 (+ tiny fp slack).
      const double err = std::abs(static_cast<double>(qv) * scales[static_cast<size_t>(i)] -
                                  x.At(i, p));
      EXPECT_LE(err, 0.5 * scales[static_cast<size_t>(i)] * (1.0 + 1e-5))
          << "row " << i << " col " << p;
    }
    // The odd-k pad lane must be zero (exact zero contribution).
    EXPECT_EQ(q[static_cast<size_t>(i) * 2 * k2 + k], 0);
  }
}

TEST(QuantizeActivationsTest, ZeroRowGetsUnitScaleAndZeroCodes) {
  const int k = 6;
  std::vector<float> x(k, 0.0f);
  std::vector<int16_t> q(k, -1);
  float scale = 0.0f;
  QuantizeActivationsPerRow(1, k, x.data(), k, q.data(), k, &scale);
  EXPECT_EQ(scale, 1.0f);
  for (int p = 0; p < k; ++p) {
    EXPECT_EQ(q[static_cast<size_t>(p)], 0);
  }
}

TEST(QuantizePackWeightsTest, PerChannelScalesAndPackedLayoutRoundTrip) {
  Rng rng(42);
  const int k = 13, n = 9;  // odd k: exercises the pad pair
  Matrix w = RandomMatrix(k, n, &rng);
  PackedQ8Weights packed;
  QuantizePackWeights(k, n, w.data(), n, &packed);
  EXPECT_EQ(packed.k, k);
  EXPECT_EQ(packed.n, n);
  EXPECT_EQ(packed.k2, (k + 1) / 2);
  for (int j = 0; j < n; ++j) {
    float absmax = 0.0f;
    for (int p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::abs(w.At(p, j)));
    }
    EXPECT_NEAR(packed.scales[static_cast<size_t>(j)], absmax / 127.0f, 1e-6f);
    int16_t qmax = 0;
    for (int p = 0; p < k; ++p) {
      const int16_t qv = packed.At(p, j);
      EXPECT_GE(qv, -127);
      EXPECT_LE(qv, 127);
      qmax = std::max<int16_t>(qmax, static_cast<int16_t>(std::abs(qv)));
      const double err = std::abs(static_cast<double>(qv) * packed.scales[static_cast<size_t>(j)] -
                                  w.At(p, j));
      EXPECT_LE(err, 0.5 * packed.scales[static_cast<size_t>(j)] * (1.0 + 1e-5));
    }
    // The channel absmax must map to (+-)127: the full int8 range is used.
    EXPECT_EQ(qmax, 127);
    // Odd-k pad row is zero.
    EXPECT_EQ(packed.At(k, j), 0);
  }
}

// |y_q - y| for one output element is bounded by the propagated per-element
// quantization errors: sum_p |w| * ex + sum_p |x| * ew + k * ex * ew with
// ex = a_scale/2 (a_scale = rowabsmax / ActivationQMax(k)), ew = w_scale_j/2.
// The quantized Linear must sit inside the analytic bound on every element —
// this is the round-trip error contract of the whole layer, not a tuned
// tolerance.
TEST(QuantizedLinearTest, OutputErrorStaysWithinAnalyticBound) {
  Rng rng(43);
  const int m = 11, k = 38, n = 17;
  Linear linear(k, n, &rng);
  Matrix x = RandomMatrix(m, k, &rng, 2.0);

  Matrix y_fp32 = linear.ForwardInference(x);
  QuantizedLinear qlinear(linear);
  Workspace ws;
  Matrix* y_q = qlinear.ForwardInference(x, &ws);
  ASSERT_EQ(y_q->rows(), m);
  ASSERT_EQ(y_q->cols(), n);

  // Recover the per-row activation scales the layer used.
  const float qmax = static_cast<float>(ActivationQMax(k));
  std::vector<float> a_scales(m, 0.0f);
  for (int i = 0; i < m; ++i) {
    float absmax = 0.0f;
    for (int p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::abs(x.At(i, p)));
    }
    a_scales[static_cast<size_t>(i)] = absmax > 0.0f ? absmax / qmax : 1.0f;
  }
  const PackedQ8Weights& packed = qlinear.weights();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const double ex = 0.5 * a_scales[static_cast<size_t>(i)];
      const double ew = 0.5 * packed.scales[static_cast<size_t>(j)];
      double bound = 0.0;
      for (int p = 0; p < k; ++p) {
        bound += std::abs(linear.weight().At(p, j)) * ex + std::abs(x.At(i, p)) * ew;
      }
      bound += k * ex * ew;
      bound = bound * (1.0 + 1e-4) + 1e-5;  // fp accumulation slack
      EXPECT_LE(std::abs(static_cast<double>(y_q->At(i, j)) - y_fp32.At(i, j)), bound)
          << "element (" << i << ", " << j << ")";
    }
  }
}

TEST(QuantizedLinearTest, FusedReluMatchesSeparateRelu) {
  Rng rng(44);
  Linear linear(24, 16, &rng);
  Matrix x = RandomMatrix(5, 24, &rng);
  QuantizedLinear qlinear(linear);
  Workspace ws1, ws2;
  Matrix* fused = qlinear.ForwardInference(x, &ws1, Activation::kRelu);
  Matrix* plain = qlinear.ForwardInference(x, &ws2, Activation::kNone);
  for (int i = 0; i < fused->rows(); ++i) {
    for (int j = 0; j < fused->cols(); ++j) {
      EXPECT_EQ(fused->At(i, j), std::max(0.0f, plain->At(i, j)));
    }
  }
}

// Per-ROW activation scales make the quantized path batch-size-invariant: a
// row's quantized representation (and so its output) depends only on that
// row. This is the property that lets the int8 serving path keep the
// PredictBatched == PredictAst bitwise contract.
TEST(QuantizedLinearTest, RowResultsAreBatchSizeInvariantBitwise) {
  Rng rng(45);
  const int m = 33, k = 20, n = 31;
  Linear linear(k, n, &rng);
  Matrix x = RandomMatrix(m, k, &rng);
  QuantizedLinear qlinear(linear);
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2}) {
    const KernelIsa prev = ActiveKernelIsa();
    if (!SetKernelIsa(isa)) {
      continue;
    }
    Workspace ws;
    Matrix* full = qlinear.ForwardInference(x, &ws);
    for (int i = 0; i < m; ++i) {
      Matrix row(1, k);
      for (int p = 0; p < k; ++p) {
        row.At(0, p) = x.At(i, p);
      }
      Workspace ws_row;
      Matrix* alone = qlinear.ForwardInference(row, &ws_row);
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(full->At(i, j), alone->At(0, j))
            << "isa=" << KernelIsaName(isa) << " row " << i << " col " << j;
      }
    }
    SetKernelIsa(prev);
  }
}

TEST(QuantizedMlpTest, TracksFp32MlpClosely) {
  Rng rng(46);
  Mlp mlp({30, 24, 16, 1}, &rng);
  Matrix x = RandomMatrix(9, 30, &rng);
  Matrix y_fp32 = mlp.ForwardInference(x);
  QuantizedMlp qmlp(mlp);
  EXPECT_EQ(qmlp.num_layers(), 3u);
  Workspace ws;
  Matrix* y_q = qmlp.ForwardInference(x, &ws);
  // Stacked quantization noise across three layers on random (untrained,
  // Xavier-scale) weights: int8 weight rounding dominates (the 12-bit
  // activation codes contribute ~nothing) and measures well under 2% of the
  // output range; 2% gives seed-independence headroom without masking real
  // breakage.
  double absmax = 1e-12;
  for (size_t i = 0; i < y_fp32.size(); ++i) {
    absmax = std::max(absmax, std::abs(static_cast<double>(y_fp32.data()[i])));
  }
  for (size_t i = 0; i < y_fp32.size(); ++i) {
    EXPECT_LE(std::abs(static_cast<double>(y_q->data()[i]) - y_fp32.data()[i]),
              0.02 * absmax)
        << "element " << i;
  }
}

// ---- Per-channel (column) activation-scale epilogue ------------------------

TEST(QuantizeActivationsScaledTest, UnitColumnScalesReproducePlainPathBitwise) {
  Rng rng(47);
  const int rows = 6, k = 21;
  Matrix x = RandomMatrix(rows, k, &rng, 2.0);
  const int k2 = (k + 1) / 2;
  const std::vector<float> unit(static_cast<size_t>(k), 1.0f);
  std::vector<int16_t> q_plain(static_cast<size_t>(rows) * 2 * k2, -1);
  std::vector<int16_t> q_scaled(static_cast<size_t>(rows) * 2 * k2, -2);
  std::vector<float> s_plain(rows, 0.0f), s_scaled(rows, 0.0f);
  QuantizeActivationsPerRow(rows, k, x.data(), k, q_plain.data(), 2 * k2, s_plain.data());
  QuantizeActivationsPerRowScaled(rows, k, x.data(), k, unit.data(), q_scaled.data(), 2 * k2,
                                  s_scaled.data());
  // x * 1.0f is exact, so the scaled path with unit scales IS the plain path.
  EXPECT_EQ(q_plain, q_scaled);
  EXPECT_EQ(s_plain, s_scaled);
}

// The per-channel analytic round-trip bound: the scaled value x_p / c_p obeys
// the usual half-scale bound, so back in the original domain each channel's
// error is bounded by scale * c_p / 2 — heterogeneous channels get
// proportionally finer treatment, which is the whole point of the variant.
TEST(QuantizeActivationsScaledTest, RoundTripErrorBoundedPerChannel) {
  Rng rng(48);
  const int rows = 5, k = 33;
  Matrix x = RandomMatrix(rows, k, &rng, 2.0);
  std::vector<float> col(static_cast<size_t>(k));
  std::vector<float> inv_col(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    // Two decades of channel-magnitude disparity, the post-LayerNorm regime.
    col[static_cast<size_t>(p)] = static_cast<float>(0.1 + 10.0 * rng.Uniform(0.0, 1.0));
    inv_col[static_cast<size_t>(p)] = 1.0f / col[static_cast<size_t>(p)];
    for (int i = 0; i < rows; ++i) {
      x.At(i, p) *= col[static_cast<size_t>(p)];
    }
  }
  const int k2 = (k + 1) / 2;
  std::vector<int16_t> q(static_cast<size_t>(rows) * 2 * k2, -1);
  std::vector<float> scales(rows, 0.0f);
  QuantizeActivationsPerRowScaled(rows, k, x.data(), k, inv_col.data(), q.data(), 2 * k2,
                                  scales.data());
  for (int i = 0; i < rows; ++i) {
    ASSERT_GT(scales[static_cast<size_t>(i)], 0.0f);
    for (int p = 0; p < k; ++p) {
      const int16_t qv = q[static_cast<size_t>(i) * 2 * k2 + p];
      // Dequantization recovers x via q * scale * c_p; per-channel bound.
      const double recon = static_cast<double>(qv) * scales[static_cast<size_t>(i)] *
                           col[static_cast<size_t>(p)];
      const double bound =
          0.5 * scales[static_cast<size_t>(i)] * col[static_cast<size_t>(p)];
      EXPECT_LE(std::abs(recon - x.At(i, p)), bound * (1.0 + 1e-4) + 1e-7)
          << "row " << i << " col " << p;
    }
  }
}

TEST(QuantizedLinearTest, UnitColumnScalesMatchPlainConstructorBitwise) {
  Rng rng(49);
  const int m = 7, k = 19, n = 13;
  Linear linear(k, n, &rng);
  Matrix x = RandomMatrix(m, k, &rng);
  QuantizedLinear plain(linear);
  QuantizedLinear scaled(linear, std::vector<float>(static_cast<size_t>(k), 1.0f));
  EXPECT_FALSE(plain.has_col_scales());
  EXPECT_TRUE(scaled.has_col_scales());
  Workspace ws1, ws2;
  Matrix* y_plain = plain.ForwardInference(x, &ws1);
  Matrix* y_scaled = scaled.ForwardInference(x, &ws2);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(y_plain->At(i, j), y_scaled->At(i, j)) << "(" << i << ", " << j << ")";
    }
  }
}

// The per-channel variant obeys the same analytic error form as the plain
// path, just in the scaled domain: activations x' = x / c, weights w' = w * c
// (both as the fp32 products the layer actually rounded), so
// |y_q - sum x'w'| <= sum_p |w'| ex + sum_p |x'| ew + k ex ew.
TEST(QuantizedLinearTest, PerChannelEpilogueStaysWithinAnalyticBound) {
  Rng rng(50);
  const int m = 9, k = 26, n = 15;
  Linear linear(k, n, &rng);
  Matrix x = RandomMatrix(m, k, &rng, 2.0);
  std::vector<float> col(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    col[static_cast<size_t>(p)] = static_cast<float>(0.25 + 4.0 * rng.Uniform(0.0, 1.0));
  }
  QuantizedLinear qlinear(linear, col);
  Workspace ws;
  Matrix* y_q = qlinear.ForwardInference(x, &ws);

  const float qmax = static_cast<float>(ActivationQMax(k));
  const std::vector<float>& inv_col = qlinear.inv_col_scales();
  ASSERT_EQ(inv_col.size(), static_cast<size_t>(k));
  const PackedQ8Weights& packed = qlinear.weights();
  for (int i = 0; i < m; ++i) {
    // The scaled-domain activations and per-row scale the layer derived.
    std::vector<float> xs(static_cast<size_t>(k));
    float absmax = 0.0f;
    for (int p = 0; p < k; ++p) {
      xs[static_cast<size_t>(p)] = x.At(i, p) * inv_col[static_cast<size_t>(p)];
      absmax = std::max(absmax, std::abs(xs[static_cast<size_t>(p)]));
    }
    const float a_scale = absmax > 0.0f ? absmax / qmax : 1.0f;
    for (int j = 0; j < n; ++j) {
      // Scaled-domain fp32 reference (the exact float operands the layer
      // quantized) and the propagated-error bound over them.
      double ref = linear.bias().data()[j];
      double bound = 0.0;
      const double ex = 0.5 * a_scale;
      const double ew = 0.5 * packed.scales[static_cast<size_t>(j)];
      for (int p = 0; p < k; ++p) {
        const double wp = static_cast<double>(linear.weight().At(p, j)) *
                          (1.0 / inv_col[static_cast<size_t>(p)]);
        ref += static_cast<double>(xs[static_cast<size_t>(p)]) * wp;
        bound += std::abs(wp) * ex + std::abs(xs[static_cast<size_t>(p)]) * ew;
      }
      bound += k * ex * ew;
      bound = bound * (1.0 + 1e-4) + 1e-5;
      EXPECT_LE(std::abs(static_cast<double>(y_q->At(i, j)) - ref), bound)
          << "element (" << i << ", " << j << ")";
    }
  }
}

// ---- Shared quantization across consumers (the attention Q/K/V pattern) ----

TEST(BalancedColumnScalesTest, SingleWeightDelegatesToMultiConsumer) {
  Rng rng(51);
  const int k = 12, n = 10;
  Linear linear(k, n, &rng);
  std::vector<float> est(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    est[static_cast<size_t>(p)] = static_cast<float>(0.1 + rng.Uniform(0.0, 1.0));
  }
  const std::vector<float> single = BalancedColumnScales(est, linear.weight());
  const std::vector<float> multi = BalancedColumnScales(est, {&linear.weight()});
  EXPECT_EQ(single, multi);
}

TEST(QuantizedLinearTest, ForwardPreQuantizedSharesOneQuantizationAcrossConsumers) {
  Rng rng(52);
  const int m = 8, k = 24, n = 24;
  Linear wq(k, n, &rng), wk(k, n, &rng), wv(k, n, &rng);
  Matrix x = RandomMatrix(m, k, &rng);
  std::vector<float> est(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    est[static_cast<size_t>(p)] = static_cast<float>(0.2 + 2.0 * rng.Uniform(0.0, 1.0));
  }
  // ONE scale vector balanced against all three consumers, folded into each.
  const std::vector<float> shared =
      BalancedColumnScales(est, {&wq.weight(), &wk.weight(), &wv.weight()});
  const QuantizedLinear q0(wq, shared), q1(wk, shared), q2(wv, shared);
  ASSERT_EQ(q0.inv_col_scales(), q1.inv_col_scales());
  ASSERT_EQ(q0.inv_col_scales(), q2.inv_col_scales());

  // Quantize x once; feed the same codes to all three GEMMs.
  const int ldq = 2 * q0.k2();
  std::vector<int16_t> codes(static_cast<size_t>(m) * ldq);
  std::vector<float> row_scales(static_cast<size_t>(m));
  QuantizeActivationsPerRowScaled(m, k, x.data(), k, q0.inv_col_scales().data(), codes.data(),
                                  ldq, row_scales.data());
  const QuantizedLinear* consumers[3] = {&q0, &q1, &q2};
  for (const QuantizedLinear* q : consumers) {
    Workspace ws_pre, ws_direct;
    Matrix* pre = q->ForwardPreQuantized(m, codes.data(), ldq, row_scales.data(), &ws_pre);
    Matrix* direct = q->ForwardInference(x, &ws_direct);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        // ForwardInference is exactly quantize + ForwardPreQuantized.
        ASSERT_EQ(pre->At(i, j), direct->At(i, j)) << "(" << i << ", " << j << ")";
      }
    }
  }
}

// ---- ISA dispatch of the quantize pass -------------------------------------

// The vectorized (AVX2) quantizer must be BITWISE identical to the scalar
// body — plain and per-channel, across vector-width tails and round-to-
// nearest-even ties. This is what lets the quantize pass dispatch per ISA
// without splitting the int8 tier's cross-ISA bitwise contract.
TEST(QuantizeIsaTest, VectorizedQuantizerBitwiseMatchesScalar) {
  const KernelIsa prev = ActiveKernelIsa();
  if (!SetKernelIsa(KernelIsa::kAvx2)) {
    GTEST_SKIP() << "AVX2 unavailable on this host/build";
  }
  SetKernelIsa(prev);
  Rng rng(53);
  for (int k : {1, 7, 8, 9, 16, 23, 64, 100}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const int rows = 5;
    Matrix x = RandomMatrix(rows, k, &rng, 3.0);
    // Row 0 is a tie-stress row: absmax equal to the code range makes the
    // per-row scale exactly 1, so integer-and-a-half values hit exact
    // round-to-nearest-even ties in both implementations.
    const float qmax = static_cast<float>(ActivationQMax(k));
    for (int p = 0; p < k; ++p) {
      x.At(0, p) = (p % 2 == 0 ? 1.0f : -1.0f) * (static_cast<float>(p % 7) + 0.5f);
    }
    x.At(0, 0) = qmax;
    std::vector<float> inv_col(static_cast<size_t>(k));
    for (int p = 0; p < k; ++p) {
      inv_col[static_cast<size_t>(p)] = static_cast<float>(0.25 + 2.0 * rng.Uniform(0.0, 1.0));
    }
    const int k2 = (k + 1) / 2;
    const int ldq = 2 * k2;
    for (bool scaled : {false, true}) {
      SCOPED_TRACE(scaled ? "per-channel" : "plain");
      std::vector<int16_t> q_scalar(static_cast<size_t>(rows) * ldq, -1);
      std::vector<int16_t> q_avx2(static_cast<size_t>(rows) * ldq, -2);
      std::vector<float> s_scalar(rows, -1.0f), s_avx2(rows, -2.0f);
      auto run = [&](std::vector<int16_t>* q, std::vector<float>* s) {
        if (scaled) {
          QuantizeActivationsPerRowScaled(rows, k, x.data(), k, inv_col.data(), q->data(),
                                          ldq, s->data());
        } else {
          QuantizeActivationsPerRow(rows, k, x.data(), k, q->data(), ldq, s->data());
        }
      };
      ASSERT_TRUE(SetKernelIsa(KernelIsa::kScalar));
      run(&q_scalar, &s_scalar);
      ASSERT_TRUE(SetKernelIsa(KernelIsa::kAvx2));
      run(&q_avx2, &s_avx2);
      SetKernelIsa(prev);
      EXPECT_EQ(q_scalar, q_avx2);
      EXPECT_EQ(s_scalar, s_avx2);
    }
  }
}

// ---- i32-overflow headroom across the widened (encoder) shape range --------

// Runtime mirror of the static_asserts in quantize.h: every reduction length
// the data plane can see — and far beyond — keeps k * qmax * 127 inside the
// i32 accumulator, with the code range shrinking gradually once k demands it.
TEST(ActivationQMaxTest, HeadroomHoldsAcrossEncoderShapesAndBeyond) {
  const int64_t cap = (static_cast<int64_t>(1) << 31) - 1;
  // Encoder-era reduction lengths all get the full 12-bit code range:
  // features (38), d_model (64), d_ff (128), head inputs up to 4096.
  for (int k : {1, 38, 64, 128, 256, 4096}) {
    EXPECT_EQ(ActivationQMax(k), 4095) << "k=" << k;
  }
  int prev_qmax = ActivationQMax(1);
  for (int k : {1, 38, 64, 128, 4096, 4131, 4132, 8192, 1 << 16, 1 << 20, 1 << 24}) {
    const int qmax = ActivationQMax(k);
    EXPECT_GE(qmax, 1) << "k=" << k;
    EXPECT_LE(qmax, 4095) << "k=" << k;
    EXPECT_LE(qmax, prev_qmax) << "code range must shrink monotonically, k=" << k;
    EXPECT_LE(static_cast<int64_t>(k) * qmax * 127, cap) << "k=" << k;
    prev_qmax = qmax;
  }
  // The shrink engages exactly where the bound demands, without a cliff.
  EXPECT_LT(ActivationQMax(8192), 4095);
  EXPECT_GE(ActivationQMax(8192), 2048);
}

TEST(WorkspaceTest, I16ArenaReusesBuffersAcrossReset) {
  Workspace ws;
  int16_t* a = ws.NewI16(256);
  ASSERT_NE(a, nullptr);
  const size_t pooled_after_first = ws.pooled_i16();
  EXPECT_GE(pooled_after_first, 256u);
  ws.Reset();
  // Same slot, same backing allocation: warm path allocates nothing.
  int16_t* b = ws.NewI16(128);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ws.pooled_i16(), pooled_after_first);
  // A second live buffer in the same pass gets its own slot.
  int16_t* c = ws.NewI16(64);
  EXPECT_NE(b, c);
}

}  // namespace
}  // namespace cdmpp

// Reproduces paper Table 6 (Appendix B): the auto-tuner's chosen model
// architecture and hyper-parameters. The paper runs ~1000 Optuna trials; we
// run a smaller random search with the same search space and print the best
// configuration in Table-6 format.
#include <cstdio>

#include "src/core/autotuner.h"
#include "src/exp/exp_common.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_tab06_autotuner", "Table 6",
                   "auto-tuner result: best architecture and hyper-parameters");
  Dataset ds = BuildBenchDataset({0});
  Rng rng(15000);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);

  AutotuneOptions opts;
  opts.num_trials = 10;
  opts.epochs_per_trial = 6;
  AutotuneResult result = Autotune(ds, Take(split.train, 1200), Take(split.valid, 250), opts);

  std::printf("\nTrials (validation MAPE per configuration):\n");
  TablePrinter trials({"trial", "d_model", "layers", "batch", "optimizer", "lr", "valid MAPE"});
  for (size_t t = 0; t < result.trials.size(); ++t) {
    const PredictorConfig& c = result.trials[t].config;
    trials.AddRow({std::to_string(t), std::to_string(c.d_model),
                   std::to_string(c.num_layers), std::to_string(c.batch_size),
                   c.optimizer == OptimizerKind::kAdam ? "Adam" : "SGD",
                   FormatDouble(c.lr, 6), FormatPercent(result.trials[t].valid_mape, 2)});
  }
  trials.Print(stdout);

  const PredictorConfig& best = result.best.config;
  std::printf("\nBest configuration (Table 6 analogue):\n");
  TablePrinter table({"variable", "value"});
  table.AddRow({"batch size", std::to_string(best.batch_size)});
  table.AddRow({"d_model (encoder width)", std::to_string(best.d_model)});
  table.AddRow({"# of transformer layers", std::to_string(best.num_layers)});
  table.AddRow({"embedding dim (z)", std::to_string(best.z_dim)});
  table.AddRow({"decoder hidden dims",
                std::to_string(best.decoder_hidden.front()) + " x " +
                    std::to_string(best.decoder_hidden.size()) + " layers"});
  table.AddRow({"learning rate", FormatDouble(best.lr, 6)});
  table.AddRow({"lr scheduler", best.use_cyclic_lr ? "CyclicLR" : "constant"});
  table.AddRow({"optimizer type", best.optimizer == OptimizerKind::kAdam ? "Adam" : "SGD"});
  table.AddRow({"weight decay", FormatDouble(best.weight_decay, 6)});
  table.AddRow({"alpha (CMD coefficient)", FormatDouble(best.alpha_cmd, 3)});
  table.AddRow({"validation MAPE", FormatPercent(result.best.valid_mape, 2)});
  table.Print(stdout);
  std::printf("\nPaper Table 6: batch 600, 11 transformer layers, Adam, lr 1.68e-05,"
              " CyclicLR, weight decay 0.0013, alpha 1, 13.8M params (GPU-scale).\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

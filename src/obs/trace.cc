#include "src/obs/trace.h"

#include <cstdio>
#include <cstdlib>

namespace cdmpp {
namespace obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kBatchFormation:
      return "batch_formation";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kForward:
      return "forward";
    case Stage::kFeaturize:
      return "featurize";
    case Stage::kQuantize:
      return "quantize";
    case Stage::kEncoder:
      return "encoder";
    case Stage::kAttention:
      return "attention";
    case Stage::kLayerNorm:
      return "layer_norm";
    case Stage::kHeads:
      return "heads";
    case Stage::kDeviceMlp:
      return "device_mlp";
    case Stage::kDecoder:
      return "decoder";
    case Stage::kDequant:
      return "dequant";
    case Stage::kFinalize:
      return "finalize";
    case Stage::kNumStages:
      break;
  }
  return "unknown";
}

namespace detail {

TraceContext*& CurrentTraceContext() {
  thread_local TraceContext* ctx = nullptr;
  return ctx;
}

}  // namespace detail

ScopedTraceBinding::ScopedTraceBinding(Trace* trace) {
  if (trace == nullptr) {
    return;
  }
  ctx_.trace = trace;
  detail::TraceContext*& current = detail::CurrentTraceContext();
  prev_ = current;
  current = &ctx_;
  active_ = true;
}

ScopedTraceBinding::~ScopedTraceBinding() {
  if (active_) {
    detail::CurrentTraceContext() = prev_;
  }
}

void RequestTrace::AddSegment(Stage stage, double ms) {
  spans.push_back(SpanRecord{stage, 0, ms, ms});
  stage_ms[static_cast<size_t>(stage)] += ms;
}

void RequestTrace::AppendSpans(const Trace& trace) {
  spans.insert(spans.end(), trace.spans().begin(), trace.spans().end());
  for (const SpanRecord& span : trace.spans()) {
    stage_ms[static_cast<size_t>(span.stage)] += span.exclusive_ms;
  }
}

double RequestTrace::AttributedMs() const {
  double sum = 0.0;
  for (double ms : stage_ms) {
    sum += ms;
  }
  return sum;
}

double RequestTrace::AttributedFraction() const {
  if (total_ms <= 0.0) {
    return 1.0;
  }
  // Clock granularity can make the parts sum past the whole by a hair.
  const double fraction = AttributedMs() / total_ms;
  return fraction > 1.0 ? 1.0 : fraction;
}

TraceCollector::TraceCollector() {
  const char* env = std::getenv("CDMPP_TRACE_SAMPLE");
  if (env == nullptr || env[0] == '\0') {
    return;
  }
  char* endp = nullptr;
  const long v = std::strtol(env, &endp, 10);
  if (endp == env || *endp != '\0' || v < 0) {
    std::fprintf(stderr,
                 "[cdmpp.obs] ignoring malformed CDMPP_TRACE_SAMPLE=\"%s\" "
                 "(want a non-negative integer); tracing stays off\n",
                 env);
    return;
  }
  sample_every_.store(static_cast<int>(v > 1 << 30 ? 1 << 30 : v), std::memory_order_relaxed);
}

TraceCollector& TraceCollector::Global() {
  // Leaked on purpose, like the other process-wide singletons.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Emit(RequestTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.traces += 1;
  stats_.total_ms += trace.total_ms;
  stats_.attributed_ms += trace.AttributedMs() > trace.total_ms && trace.total_ms > 0.0
                              ? trace.total_ms
                              : trace.AttributedMs();
  for (int s = 0; s < kNumStages; ++s) {
    stats_.stage_ms[static_cast<size_t>(s)] += trace.stage_ms[static_cast<size_t>(s)];
  }
  recent_.push_back(std::move(trace));
  if (recent_.size() > kRecentCapacity) {
    recent_.pop_front();
  }
}

TraceCollector::Stats TraceCollector::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<RequestTrace> TraceCollector::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RequestTrace>(recent_.begin(), recent_.end());
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats();
  recent_.clear();
}

std::string TraceCollector::DumpJson() const {
  Stats stats = GetStats();
  char buf[128];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "\"sample_every\": %d, \"traces\": %llu, ", sample_every(),
                static_cast<unsigned long long>(stats.traces));
  out += buf;
  std::snprintf(buf, sizeof(buf), "\"attributed_fraction\": %.4f, ",
                stats.AttributedFraction());
  out += buf;
  out += "\"stages\": {";
  bool first = true;
  for (int s = 0; s < kNumStages; ++s) {
    const double total = stats.stage_ms[static_cast<size_t>(s)];
    if (total <= 0.0) {
      continue;
    }
    const double mean = stats.traces > 0 ? total / static_cast<double>(stats.traces) : 0.0;
    const double share = stats.total_ms > 0.0 ? total / stats.total_ms : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "\"%s\": {\"total_ms\": %.4f, \"mean_ms\": %.6f, \"share\": %.4f}",
                  StageName(static_cast<Stage>(s)), total, mean, share);
    out += first ? "" : ", ";
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace cdmpp

#include "src/nn/matrix.h"

#include <cmath>

#include "src/nn/kernels.h"

namespace cdmpp {

void Matrix::XavierInit(Rng* rng) {
  CDMPP_CHECK(rng != nullptr);
  double limit = std::sqrt(6.0 / (rows_ + cols_));
  for (float& v : data_) {
    v = static_cast<float>(rng->Uniform(-limit, limit));
  }
}

void Matrix::AddInPlace(const Matrix& other) {
  CDMPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Matrix::AddScaled(const Matrix& other, float scale) {
  CDMPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::Scale(float scale) {
  for (float& v : data_) {
    v *= scale;
  }
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) {
    s += static_cast<double>(v) * v;
  }
  return s;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  CDMPP_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  kernels::GemmNN(a.rows(), b.cols(), a.cols(), a.data(), a.cols(), b.data(), b.cols(),
                  /*beta=*/0.0f, out.data(), out.cols());
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  CDMPP_CHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  kernels::GemmTN(a.cols(), b.cols(), a.rows(), a.data(), a.cols(), b.data(), b.cols(),
                  /*beta=*/0.0f, out.data(), out.cols());
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  CDMPP_CHECK(a.cols() == b.cols());
  // The seed implementation's innermost loop strode BOTH operands along p
  // with nothing cached between j iterations: out[i][j] re-streamed a's row
  // for every j and touched a fresh b row each time, so b's rows fell out of
  // L1 long before they were revisited. kernels::GemmNT guarantees the fixed
  // access pattern this call site now relies on: per row i of a, columns j
  // are tiled by 4 so one unit-stride pass over a.Row(i) feeds four resident
  // b rows, and each out element is a single p-ascending dot product —
  // locality-blocked without changing the accumulation order.
  Matrix out(a.rows(), b.rows());
  kernels::GemmNT(a.rows(), b.rows(), a.cols(), a.data(), a.cols(), b.data(), b.cols(),
                  /*beta=*/0.0f, out.data(), out.cols());
  return out;
}

void AddRowBroadcast(Matrix* x, const Matrix& bias) {
  CDMPP_CHECK(bias.rows() == 1 && bias.cols() == x->cols());
  const float* b = bias.Row(0);
  for (int i = 0; i < x->rows(); ++i) {
    float* row = x->Row(i);
    for (int j = 0; j < x->cols(); ++j) {
      row[j] += b[j];
    }
  }
}

Matrix ColumnSum(const Matrix& x) {
  Matrix out(1, x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const float* row = x.Row(i);
    for (int j = 0; j < x.cols(); ++j) {
      out.At(0, j) += row[j];
    }
  }
  return out;
}

void SoftmaxRows(Matrix* x) {
  for (int i = 0; i < x->rows(); ++i) {
    float* row = x->Row(i);
    float mx = row[0];
    for (int j = 1; j < x->cols(); ++j) {
      mx = std::max(mx, row[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < x->cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < x->cols(); ++j) {
      row[j] *= inv;
    }
  }
}

}  // namespace cdmpp

#include "src/search/schedule_search.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/support/check.h"

namespace cdmpp {

namespace {

double Measure(const Task& task, const ScheduleDesc& sched, const DeviceSpec& device) {
  TensorProgram prog = GenerateProgram(task, sched);
  return SimulateLatencyDeterministic(prog, device);
}

}  // namespace

SearchCurve EvolutionarySearch(const Task& task, const DeviceSpec& device,
                               CostModelClient* client, const SearchOptions& opts) {
  CDMPP_CHECK(client != nullptr);
  Rng rng(opts.seed);
  SearchCurve curve;
  double best = std::numeric_limits<double>::max();
  const double score_seconds_at_entry = client->stats().score_seconds;

  // Seed population.
  std::vector<ScheduleDesc> population;
  population.reserve(static_cast<size_t>(opts.population));
  for (int i = 0; i < opts.population; ++i) {
    population.push_back(SampleSchedule(task, &rng));
  }
  std::vector<ScheduleDesc> elite;  // measured good candidates seed mutations

  // Reused per round: extracted ASTs (kept alive across ScoreBatch — the
  // CostQuery borrow contract), query list, index-ordered scores.
  std::vector<CompactAst> asts;
  std::vector<CostQuery> queries;
  std::vector<double> scores;

  for (int round = 0; round < opts.rounds; ++round) {
    // Extract every candidate's AST, then rank the whole population with ONE
    // ScoreBatch. The score vector is index-ordered by contract, so ranking
    // below is independent of how the client evaluated it.
    asts.clear();
    asts.reserve(population.size());
    for (const ScheduleDesc& cand : population) {
      asts.push_back(ExtractCompactAst(GenerateProgram(task, cand)));
    }
    queries.clear();
    queries.reserve(asts.size());
    for (const CompactAst& ast : asts) {
      queries.push_back(CostQuery{&ast, device.id});
    }
    client->ScoreBatch(queries, &scores);
    curve.total_candidates += static_cast<int>(queries.size());

    std::vector<std::pair<double, size_t>> scored;
    scored.reserve(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      scored.emplace_back(scores[i], i);  // (score, index): stable tiebreak
    }
    std::sort(scored.begin(), scored.end());

    // Measure the top candidates on the "device".
    for (int m = 0; m < opts.measured_per_round && m < static_cast<int>(scored.size()); ++m) {
      const size_t idx = scored[static_cast<size_t>(m)].second;
      const ScheduleDesc& cand = population[idx];
      double latency = Measure(task, cand, device);
      ++curve.total_measurements;
      if (latency < best) {
        best = latency;
        curve.best_schedule = cand;
        curve.best_ast_hash = asts[idx].Hash();
        elite.clear();
        elite.push_back(cand);
      } else if (elite.size() < 4) {
        elite.push_back(cand);
      }
    }
    curve.best_after_round.push_back(best);

    // Next generation: mutations of elites + fresh samples.
    std::vector<ScheduleDesc> next;
    next.reserve(population.size());
    while (static_cast<int>(next.size()) < opts.population) {
      if (!elite.empty() && rng.Bernoulli(0.6)) {
        next.push_back(MutateSchedule(task, rng.Choice(elite), &rng));
      } else {
        next.push_back(SampleSchedule(task, &rng));
      }
    }
    population = std::move(next);
  }
  curve.final_best = best;
  curve.score_seconds = client->stats().score_seconds - score_seconds_at_entry;
  return curve;
}

SearchCurve EvolutionarySearch(const Task& task, const DeviceSpec& device,
                               const CostModelFn& cost_model, const SearchOptions& opts) {
  FnCostModel client(cost_model);
  return EvolutionarySearch(task, device, &client, opts);
}

SearchCurve RandomSearch(const Task& task, const DeviceSpec& device, const SearchOptions& opts) {
  Rng rng(opts.seed);
  SearchCurve curve;
  double best = std::numeric_limits<double>::max();
  for (int round = 0; round < opts.rounds; ++round) {
    for (int m = 0; m < opts.measured_per_round; ++m) {
      ScheduleDesc cand = SampleSchedule(task, &rng);
      TensorProgram prog = GenerateProgram(task, cand);
      double latency = SimulateLatencyDeterministic(prog, device);
      ++curve.total_measurements;
      if (latency < best) {
        best = latency;
        curve.best_schedule = std::move(cand);
        curve.best_ast_hash = ExtractCompactAst(prog).Hash();
      }
    }
    curve.best_after_round.push_back(best);
  }
  curve.final_best = best;
  return curve;
}

}  // namespace cdmpp

// Leaf-count-bucketed batching (paper §5.1): compact ASTs with the same
// number of leaves are batched together, giving uniform sequence lengths with
// zero padding/sparsity — the efficiency core of CDMPP's training pipeline.
#ifndef SRC_DATASET_BATCHING_H_
#define SRC_DATASET_BATCHING_H_

#include <map>
#include <vector>

#include "src/dataset/dataset.h"
#include "src/ml/scaler.h"
#include "src/nn/matrix.h"

namespace cdmpp {

// Groups sample indices by their program's leaf count.
std::map<int, std::vector<int>> GroupByLeafCount(const Dataset& ds,
                                                 const std::vector<int>& sample_indices);

// One training batch: all samples share `seq_len` leaves.
struct Batch {
  int seq_len = 0;
  std::vector<int> sample_indices;
};

// Splits buckets into batches of at most `batch_size`, shuffled within and
// across buckets. Every index appears in exactly one batch.
std::vector<Batch> MakeBatches(const std::map<int, std::vector<int>>& buckets, int batch_size,
                               Rng* rng);

// Builds the [B * seq_len, kFeatDim] feature matrix for a batch: per-leaf
// computation vectors standardized by `scaler` (may be null), then the
// positional encoding added if `use_pe`.
Matrix BuildFeatureMatrix(const Dataset& ds, const Batch& batch, const StandardScaler* scaler,
                          bool use_pe, double theta = 10000.0);

// Builds the [B, kDeviceFeatDim] device feature matrix for a batch.
Matrix BuildDeviceFeatureMatrix(const Dataset& ds, const Batch& batch);

// Stacks the raw (unscaled, no-PE) leaf rows of the given samples; used to
// fit the feature scaler on training data.
Matrix StackLeafRows(const Dataset& ds, const std::vector<int>& sample_indices);

// ---- Batch-from-programs adapter (serving path, src/serve/) ----------------
//
// The online serving layer batches free-standing (program, device) requests
// that are not dataset samples. AstBatchView adapts a request list to the
// same leaf-count-bucketed batching machinery: GroupByLeafCount buckets
// *positions into the view*, MakeBatches chunks the buckets unchanged, and
// the two matrix builders below mirror their Dataset counterparts row for
// row, so batched serving reuses the exact feature layout of training.
struct AstBatchView {
  std::vector<const CompactAst*> asts;  // non-owning, parallel to device_ids
  std::vector<int> device_ids;

  size_t size() const { return asts.size(); }
};

// Groups view positions [0, view.size()) by each AST's leaf count.
std::map<int, std::vector<int>> GroupByLeafCount(const AstBatchView& view);

// Feature matrix for a batch whose sample_indices are positions into `view`.
Matrix BuildFeatureMatrix(const AstBatchView& view, const Batch& batch,
                          const StandardScaler* scaler, bool use_pe, double theta = 10000.0);

// Device feature matrix for a batch of view positions.
Matrix BuildDeviceFeatureMatrix(const AstBatchView& view, const Batch& batch);

// Gathers raw latency labels (seconds) of the given samples.
std::vector<double> GatherLabels(const Dataset& ds, const std::vector<int>& sample_indices);

}  // namespace cdmpp

#endif  // SRC_DATASET_BATCHING_H_

#!/usr/bin/env python3
"""Project-invariant linter: mechanically enforces the repo's bespoke
concurrency/determinism contracts that -Wall and clang-tidy cannot see.

Rules (each is a function below; `--self-test` seeds a violation of every rule
in a temp tree and asserts the linter catches it):

  R1 isa-isolation      SIMD intrinsic headers (immintrin.h & friends) may be
                        included only by src/nn/kernels_avx2.cc, and the
                        -mavx2/-mfma flags may appear in CMakeLists.txt only
                        on lines that target that TU (or the compiler-probe
                        line). Anything else silently breaks the runtime
                        dispatch contract: a stray intrinsic in a generic TU
                        executes AVX2 on hosts CPUID said don't have it.

  R2 determinism-sources  src/nn/, src/core/, and src/search/ must not use
                        rand(), std::random_device, or std::unordered_*
                        containers. The data plane's bitwise thread-count/
                        batch-size invariance (threading_test, kernels_test)
                        dies the moment an accumulation iterates a hash
                        container or a nondeterministic source feeds the
                        forward path — and the tuning tier's same-seed ⇒
                        same-SearchCurve contract (search_test, the
                        bench_tuning parity gate) dies the same way if a
                        search driver's dedup map or rng stream is
                        nondeterministic; seeded cdmpp::Rng is the only
                        sanctioned randomness.

  R3 workspace-threading  Every ForwardInference *definition* must either
                        take a Workspace* parameter or construct/lease a
                        Workspace in its body (the convenience overloads
                        delegate to the arena path). A ForwardInference that
                        heap-allocates its output breaks the zero-alloc warm
                        path contract (tests/dataplane_test.cc).

  R4 zero-alloc-fork    ParallelFor / ParallelForWithScratch / RunPanels chunk
                        bodies must not contain allocation tokens (new,
                        malloc, make_unique/shared, push_back, emplace_back,
                        .resize(, .reserve(). Chunk bodies run concurrently on
                        pool workers: an allocation there is both a warm-path
                        heap hit (dataplane_test) and a malloc-lock
                        serialization point. Arena bumps (NewMatrix/NewI16 on
                        leased scratch) are the sanctioned alternative. The
                        rule also scans the work-stealing scheduler itself
                        (src/support/parallel_for.{cc,h}): every *Drain*/
                        *Steal* function body — the per-chunk claim loop every
                        stolen chunk runs through — and every task-descriptor
                        lambda (the type-erasure trampoline and friends) must
                        be token-free, or the scheduler would put a heap hit
                        on every chunk of every region.

Exit status: 0 clean, 1 violations found (printed as path:line: [rule] msg),
2 self-test failure. Run from anywhere; the repo root is located relative to
this file. CI runs both modes and uploads the report artifact.
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

INTRINSIC_HEADERS = re.compile(
    r'#\s*include\s*[<"](?:immintrin|x86intrin|avxintrin|avx2intrin|emmintrin|'
    r'xmmintrin|smmintrin|tmmintrin|pmmintrin|nmmintrin|wmmintrin)\.h[>"]')
ISA_ALLOWED_FILE = os.path.join("src", "nn", "kernels_avx2.cc")

DETERMINISM_BANNED = [
    (re.compile(r'\brand\s*\('), "rand() feeds nondeterminism into the data plane; "
                                 "use the seeded cdmpp::Rng"),
    (re.compile(r'\brandom_device\b'), "std::random_device is nondeterministic; "
                                       "use the seeded cdmpp::Rng"),
    (re.compile(r'\bunordered_(map|set|multimap|multiset)\b'),
     "hash-container iteration order is unspecified and would feed accumulation; "
     "use std::map/std::vector (bitwise-invariance contract)"),
]

ALLOC_TOKENS = [
    (re.compile(r'\bnew\b'), "new"),
    (re.compile(r'\b(?:m|c|re)alloc\s*\('), "malloc/calloc/realloc"),
    (re.compile(r'\bmake_(?:unique|shared)\b'), "make_unique/make_shared"),
    (re.compile(r'(?:\.|->)\s*push_back\s*\('), "push_back("),
    (re.compile(r'(?:\.|->)\s*emplace_back\s*\('), "emplace_back("),
    (re.compile(r'(?:\.|->)\s*resize\s*\('), "resize("),
    (re.compile(r'(?:\.|->)\s*reserve\s*\('), "reserve("),
]

FORK_CALL = re.compile(r'\b(ParallelFor|ParallelForWithScratch|RunPanels)\s*\(')


def strip_comments_and_strings(text):
    """Replaces comment/string contents with spaces, preserving offsets and
    newlines so line numbers stay addressable."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '/' and i + 1 < n and text[i + 1] == '/':
            j = text.find('\n', i)
            j = n if j == -1 else j
            out.append(' ' * (j - i))
            i = j
        elif c == '/' and i + 1 < n and text[i + 1] == '*':
            j = text.find('*/', i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i:j + 2]
            out.append(''.join(ch if ch == '\n' else ' ' for ch in chunk))
            i = j + 2
        elif c in '"\'':
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == '\\' else 1
            out.append(quote + ' ' * (j - i - 1) + (quote if j < n else ''))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return ''.join(out)


def line_of(text, pos):
    return text.count('\n', 0, pos) + 1


def match_bracket(text, open_pos, open_ch, close_ch):
    """Index one past the bracket matching text[open_pos]; -1 if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def iter_source_files(root, subdirs, exts=(".cc", ".h", ".cpp")):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


# ---------------------------------------------------------------------------
# R1: ISA isolation.
# ---------------------------------------------------------------------------
def check_isa_isolation(root):
    findings = []
    allowed = ISA_ALLOWED_FILE.replace(os.sep, "/")
    for path in iter_source_files(root, ["src", "tests", "bench", "examples"]):
        rel = relpath(root, path)
        if rel == allowed:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, 1):
                if INTRINSIC_HEADERS.search(line):
                    findings.append((rel, lineno, "isa-isolation",
                                     "SIMD intrinsic header outside %s breaks the "
                                     "runtime-dispatch portability contract" % allowed))
    cmake = os.path.join(root, "CMakeLists.txt")
    if os.path.exists(cmake):
        with open(cmake, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
        prev = ""
        for lineno, line in enumerate(lines, 1):
            stripped = line.strip()
            if stripped.startswith("#") or stripped.startswith("message("):
                continue  # comments and status messages may mention the flags
            if "-mavx2" in line or "-mfma" in line:
                # A flag line is fine when it (or the continuation's opening
                # line) names the isolated TU, or it is the compiler probe.
                context = prev + line
                if ("kernels_avx2" not in context and
                        "check_cxx_compiler_flag" not in context):
                    findings.append(("CMakeLists.txt", lineno, "isa-isolation",
                                     "-mavx2/-mfma may only be applied to the "
                                     "kernels_avx2.cc TU (or the compiler probe)"))
            if stripped:
                prev = line
    return findings


# ---------------------------------------------------------------------------
# R2: determinism sources.
# ---------------------------------------------------------------------------
def check_determinism_sources(root):
    findings = []
    for path in iter_source_files(root, [os.path.join("src", "nn"),
                                         os.path.join("src", "core"),
                                         os.path.join("src", "search")]):
        rel = relpath(root, path)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = strip_comments_and_strings(f.read())
        for lineno, line in enumerate(text.split('\n'), 1):
            for pattern, msg in DETERMINISM_BANNED:
                if pattern.search(line):
                    findings.append((rel, lineno, "determinism-sources", msg))
    return findings


# ---------------------------------------------------------------------------
# R3: ForwardInference threads a Workspace.
# ---------------------------------------------------------------------------
def check_workspace_threading(root):
    findings = []
    for path in iter_source_files(root, [os.path.join("src", "nn"),
                                         os.path.join("src", "core")],
                                  exts=(".cc",)):
        rel = relpath(root, path)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = strip_comments_and_strings(f.read())
        for m in re.finditer(r'\bForwardInference\s*\(', text):
            params_end = match_bracket(text, m.end() - 1, '(', ')')
            if params_end == -1:
                continue
            params = text[m.end():params_end - 1]
            # Find what follows the parameter list (skipping const/noexcept):
            # '{' starts a definition, ';' is a declaration, anything else
            # (e.g. another '(') is a call site.
            tail = text[params_end:]
            tail_head = re.match(r'\s*(?:const|noexcept|override|final|\s)*', tail)
            next_ch = tail[tail_head.end():tail_head.end() + 1]
            if next_ch != '{':
                continue  # declaration or call, not a definition
            if "Workspace" in params:
                continue
            body_end = match_bracket(text, params_end + tail_head.end(), '{', '}')
            body = text[params_end:body_end] if body_end != -1 else tail
            if "Workspace" not in body:
                findings.append((rel, line_of(text, m.start()), "workspace-threading",
                                 "ForwardInference definition neither takes a "
                                 "Workspace* nor constructs one: output would "
                                 "heap-allocate on the warm path"))
    return findings


# ---------------------------------------------------------------------------
# R4: no allocation tokens in fork chunk bodies.
# ---------------------------------------------------------------------------
def file_scope_lambdas(text):
    """Maps name -> body text for every `auto name = [...](...) {...}`."""
    lambdas = {}
    for m in re.finditer(r'\bauto\s+(\w+)\s*=\s*\[', text):
        cap_end = match_bracket(text, m.end() - 1, '[', ']')
        if cap_end == -1 or cap_end >= len(text) or text[cap_end] != '(':
            continue
        par_end = match_bracket(text, cap_end, '(', ')')
        if par_end == -1:
            continue
        brace = text.find('{', par_end)
        if brace == -1 or text[par_end:brace].strip():
            continue
        body_end = match_bracket(text, brace, '{', '}')
        if body_end != -1:
            lambdas[m.group(1)] = text[brace:body_end]
    return lambdas


def chunk_bodies_at(text, call_match, lambdas):
    """The chunk body text reachable from one fork call site: the inline
    lambda argument (if any) or the named-lambda final argument, plus the
    bodies of file-scope lambdas invoked from there (transitively)."""
    call_end = match_bracket(text, call_match.end() - 1, '(', ')')
    if call_end == -1:
        return []
    args = text[call_match.end():call_end - 1]
    # Skip the primitive's own definition/declaration (parameter lists).
    if re.search(r'\bint64_t\s+begin\b|&&\s*fn\b|&&\s*panel\b', args):
        return []
    bodies = []
    lb = args.find('[')
    if lb != -1:
        # Inline lambda: brace-matched body after its parameter list.
        abs_lb = call_match.end() + lb
        cap_end = match_bracket(text, abs_lb, '[', ']')
        if cap_end != -1:
            brace = text.find('{', cap_end)
            if brace != -1:
                body_end = match_bracket(text, brace, '{', '}')
                if body_end != -1:
                    bodies.append((brace, text[brace:body_end]))
    else:
        last_arg = args.rsplit(',', 1)[-1].strip()
        if last_arg in lambdas:
            pos = text.find(lambdas[last_arg])
            bodies.append((pos, lambdas[last_arg]))
    # Transitive closure over named lambdas called from a chunk body.
    seen = {name for _, body in bodies for name in ()}
    frontier = list(bodies)
    while frontier:
        _, body = frontier.pop()
        for name, lam_body in lambdas.items():
            if name in seen:
                continue
            if re.search(r'\b%s\s*\(' % re.escape(name), body):
                seen.add(name)
                entry = (text.find(lam_body), lam_body)
                bodies.append(entry)
                frontier.append(entry)
    return bodies


# The scheduler's own hot paths: files holding the stealing scheduler, the
# function-name shape of its per-chunk claim/execute loops, and the lambdas
# that serve as task descriptors (the ParallelFor type-erasure trampoline,
# wait predicates, the scratch-dispatch wrapper). Setup/teardown code there
# may allocate (thread spawn, registry bookkeeping under the mutex); the
# drain/steal loops and task lambdas run once per chunk and must not.
SCHEDULER_FILES = ("src/support/parallel_for.cc", "src/support/parallel_for.h")
SCHEDULER_FN = re.compile(r'\b\w*(?:Drain|Steal)\w*\s*\(')


def all_lambda_bodies(text):
    """Yields (body_pos, body) for every lambda literal in `text`, with or
    without a parameter list. Array subscripts and attribute brackets are
    rejected because neither `(` params + `{` nor a bare `{` follows them."""
    for m in re.finditer(r'\[', text):
        cap_end = match_bracket(text, m.start(), '[', ']')
        if cap_end == -1:
            continue
        rest = re.match(r'\s*', text[cap_end:])
        pos = cap_end + rest.end()
        if pos < len(text) and text[pos] == '(':
            par_end = match_bracket(text, pos, '(', ')')
            if par_end == -1:
                continue
            between = re.match(r'\s*(?:mutable|noexcept)?\s*', text[par_end:])
            pos = par_end + between.end()
        if pos < len(text) and text[pos] == '{':
            body_end = match_bracket(text, pos, '{', '}')
            if body_end != -1:
                yield pos, text[pos:body_end]


def scheduler_steal_drain_findings(root):
    """R4's widened scope: alloc tokens inside the scheduler's *Drain*/*Steal*
    function bodies or inside any task-descriptor lambda in the scheduler
    files."""
    findings = []
    for rel in SCHEDULER_FILES:
        path = os.path.join(root, rel.replace("/", os.sep))
        if not os.path.exists(path):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            text = strip_comments_and_strings(f.read())
        regions = []  # (pos, body, what)
        for m in SCHEDULER_FN.finditer(text):
            params_end = match_bracket(text, m.end() - 1, '(', ')')
            if params_end == -1:
                continue
            tail = re.match(r'\s*(?:const|noexcept|\s)*', text[params_end:])
            brace = params_end + tail.end()
            if brace >= len(text) or text[brace] != '{':
                continue  # a call or declaration, not the definition
            body_end = match_bracket(text, brace, '{', '}')
            if body_end != -1:
                regions.append((brace, text[brace:body_end],
                                "steal/drain function"))
        for pos, body in all_lambda_bodies(text):
            regions.append((pos, body, "task-descriptor lambda"))
        for pos, body, what in regions:
            for pattern, token in ALLOC_TOKENS:
                tok = pattern.search(body)
                if tok:
                    findings.append(
                        (rel, line_of(text, pos + tok.start()), "zero-alloc-fork",
                         "allocation token `%s` inside a scheduler %s: the "
                         "steal/drain path runs once per chunk of every "
                         "region and must be heap-free" % (token, what)))
    return findings


def check_zero_alloc_fork(root):
    findings = []
    for path in iter_source_files(root, ["src"], exts=(".cc",)):
        rel = relpath(root, path)
        if rel in SCHEDULER_FILES:
            continue  # the primitive itself is scanned below, not as call sites
        with open(path, encoding="utf-8", errors="replace") as f:
            text = strip_comments_and_strings(f.read())
        lambdas = file_scope_lambdas(text)
        for call in FORK_CALL.finditer(text):
            for body_pos, body in chunk_bodies_at(text, call, lambdas):
                for pattern, token in ALLOC_TOKENS:
                    tok = pattern.search(body)
                    if tok:
                        findings.append(
                            (rel, line_of(text, body_pos + tok.start()),
                             "zero-alloc-fork",
                             "allocation token `%s` inside a %s chunk body: "
                             "chunk bodies must be heap-free (lease arena "
                             "scratch pre-fork instead)" % (token, call.group(1))))
    findings.extend(scheduler_steal_drain_findings(root))
    return findings


ALL_RULES = [
    ("isa-isolation", check_isa_isolation),
    ("determinism-sources", check_determinism_sources),
    ("workspace-threading", check_workspace_threading),
    ("zero-alloc-fork", check_zero_alloc_fork),
]


def run_all(root):
    findings = []
    for _, rule in ALL_RULES:
        findings.extend(rule(root))
    return findings


# ---------------------------------------------------------------------------
# Self-test: seed violations of every rule in a temp tree (one per covered
# scope where a rule spans several directories); every seed must fire
# individually, and every rule must stay quiet on a minimal clean tree.
# ---------------------------------------------------------------------------
SEEDED_VIOLATIONS = {
    "isa-isolation": [("src/nn/bad_simd.cc", "#include <immintrin.h>\n")],
    "determinism-sources": [
        ("src/nn/bad_rand.cc",
         "#include <unordered_map>\n"
         "float Sum() {\n"
         "  std::unordered_map<int, float> acc;\n"
         "  float s = static_cast<float>(rand());\n"
         "  for (const auto& kv : acc) s += kv.second;\n"
         "  return s;\n"
         "}\n"),
        # The widened scope: a search driver whose dedup/randomness would
        # break the same-seed => same-SearchCurve contract.
        ("src/search/bad_dedup.cc",
         "#include <random>\n"
         "#include <unordered_map>\n"
         "size_t Dedup(const std::vector<uint64_t>& keys) {\n"
         "  std::random_device rd;\n"
         "  std::unordered_map<uint64_t, size_t> slots;\n"
         "  for (uint64_t k : keys) slots.emplace(k, slots.size() + rd());\n"
         "  return slots.size();\n"
         "}\n"),
    ],
    "workspace-threading": [
        ("src/nn/bad_layer.cc",
         "Matrix Foo::ForwardInference(const Matrix& x) const {\n"
         "  Matrix y(x.rows(), x.cols());\n"
         "  return y;\n"
         "}\n")],
    "zero-alloc-fork": [
        ("src/nn/bad_fork.cc",
         "void Bar(std::vector<float>* v) {\n"
         "  ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {\n"
         "    for (int64_t i = b; i < e; ++i) v->push_back(0.0f);\n"
         "  });\n"
         "}\n"),
        # The widened scope, leg 1: an allocation smuggled into the stealing
        # scheduler's per-chunk drain loop.
        ("src/support/parallel_for.cc",
         "void ThreadPool::Impl::DrainRegion(Region* r, bool stealing) {\n"
         "  for (;;) {\n"
         "    claimed.push_back(r->next.fetch_add(r->grain));\n"
         "    if (claimed.back() >= r->end) return;\n"
         "  }\n"
         "}\n"),
        # The widened scope, leg 2: a task-descriptor lambda (the kind the
        # type-erasure trampoline is) that allocates per invocation.
        ("src/support/parallel_for.h",
         "inline void SubmitChunk(void* ctx) {\n"
         "  auto task = [](void* c, int64_t b, int64_t e) {\n"
         "    static_cast<std::vector<float>*>(c)->resize(static_cast<size_t>(e - b));\n"
         "  };\n"
         "  task(ctx, 0, 8);\n"
         "}\n"),
    ],
}

CLEAN_FILES = {
    "src/nn/good.cc":
        "Matrix* Foo::ForwardInference(const Matrix& x, Workspace* ws) const {\n"
        "  Matrix* y = ws->NewMatrix(x.rows(), x.cols());\n"
        "  auto fill = [&](int64_t b, int64_t e) {\n"
        "    for (int64_t i = b; i < e; ++i) y->data()[i] = 0.0f;\n"
        "  };\n"
        "  ParallelFor(0, static_cast<int64_t>(x.size()), 8, fill);\n"
        "  return y;\n"
        "}\n"
        "Matrix Foo::ForwardInference(const Matrix& x) const {\n"
        "  Workspace ws;\n"
        "  return *ForwardInference(x, &ws);\n"
        "}\n",
    "CMakeLists.txt":
        'check_cxx_compiler_flag("-mavx2" HAS_MAVX2)\n'
        "set_source_files_properties(src/nn/kernels_avx2.cc PROPERTIES "
        'COMPILE_OPTIONS "-mavx2;-mfma")\n',
}


def self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="lint_invariants_selftest_") as tmp:
        for rel, content in CLEAN_FILES.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        clean = run_all(tmp)
        if clean:
            failures.append("clean tree produced findings: %r" % (clean,))
        seeded = 0
        for rule_name, seeds in SEEDED_VIOLATIONS.items():
            for rel, content in seeds:
                seeded += 1
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(content)
                found = [f4 for f4 in run_all(tmp)
                         if f4[2] == rule_name and f4[0] == rel]
                if not found:
                    failures.append("seeded %s violation in %s was NOT detected" %
                                    (rule_name, rel))
                os.remove(path)
    if failures:
        for msg in failures:
            print("SELF-TEST FAIL: %s" % msg, file=sys.stderr)
        return 2
    print("self-test: %d seeded violations across %d rules all fire, "
          "clean tree passes" % (seeded, len(ALL_RULES)))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint (default: this repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="seed a violation of each rule and assert detection")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    findings = run_all(args.root)
    for rel, lineno, rule, msg in sorted(findings):
        print("%s:%d: [%s] %s" % (rel, lineno, rule, msg))
    if findings:
        print("%d invariant violation(s)" % len(findings), file=sys.stderr)
        return 1
    print("lint_invariants: all %d rules clean" % len(ALL_RULES))
    return 0


if __name__ == "__main__":
    sys.exit(main())

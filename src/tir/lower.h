// Lowering rules: Task -> canonical (unscheduled) loop nests.
//
// A task lowers to one or more CanonicalNest structures. Multi-pass operators
// (softmax, layernorm) produce several nests that execute in sequence; this is
// what gives their ASTs multiple top-level subtrees, as in Tiramisu's AST
// format (paper Fig. 1(c)).
#ifndef SRC_TIR_LOWER_H_
#define SRC_TIR_LOWER_H_

#include <optional>
#include <vector>

#include "src/tir/program.h"

namespace cdmpp {

// One canonical perfect loop nest with optional init / epilogue statements.
// The scheduled tree for a nest has shape
//
//   spatial loops (possibly tiled into levels)
//     [init leaf]                      (if `init`)
//     reduction loops -> main leaf     (or just the main leaf)
//     [epilogue leaves]                (fused epilogues, cache-write copies)
struct CanonicalNest {
  std::vector<Loop> spatial;
  std::vector<Loop> reduction;
  ComputeStmt main;
  std::optional<ComputeStmt> init;
  std::vector<ComputeStmt> epilogues;
};

// Lowers a task to its canonical nests. Aborts on malformed tasks.
std::vector<CanonicalNest> LowerTask(const Task& task);

// Builds the epilogue statement for a fused ReLU over `out_elems` outputs.
ComputeStmt MakeReluEpilogue(double out_elems);

}  // namespace cdmpp

#endif  // SRC_TIR_LOWER_H_

// Thread-safe serving counters and the derived metrics block reported by the
// load-generator benchmark and the quickstart example.
//
// Counters are lock-free atomics on the hot path; request latencies stream
// into a log-bucketed histogram (src/obs/histogram.h) — every request of the
// run is counted, so p50/p99/p99.9 reflect the whole run within ~0.8%
// relative error instead of freezing on a bounded first-N sample buffer.
// Snapshots are cheap copies that support interval deltas (Delta) for
// per-window QPS/percentiles, and Reset() reopens the measurement window.
#ifndef SRC_SERVE_SERVER_STATS_H_
#define SRC_SERVE_SERVER_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "src/obs/histogram.h"

namespace cdmpp {

// Point-in-time view of the service, with all derived metrics precomputed.
struct ServerStatsSnapshot {
  uint64_t requests = 0;        // completed requests (cache hits included)
  uint64_t cache_hits = 0;      // requests answered without a forward pass
  uint64_t coalesced = 0;       // duplicate in-flight requests merged into one row
  uint64_t forward_passes = 0;  // model forward invocations (one per leaf bucket chunk)
  uint64_t batched_rows = 0;    // unique rows summed over all forward passes

  double wall_seconds = 0.0;
  double qps = 0.0;                  // requests / wall_seconds
  double cache_hit_rate = 0.0;       // cache_hits / requests
  double mean_batch_occupancy = 0.0; // batched_rows / forward_passes
  double p50_latency_ms = 0.0;       // submit-to-completion, whole-run streaming
  double p99_latency_ms = 0.0;
  double p999_latency_ms = 0.0;

  // Full latency distribution backing the percentiles above; mergeable and
  // delta-able like the scalar counters.
  obs::HistogramSnapshot latency_hist;

  // Kernel ISA the data plane dispatches to ("scalar" or "avx2") at snapshot
  // time, so serving numbers are attributable to the code path that ran.
  std::string kernel_isa;
  // Numeric tier the forwards ran in ("fp32" or "int8"). ServerStats itself
  // doesn't know the serving mode, so Snapshot() fills in the process default
  // (CDMPP_PRECISION) and PredictionService::Stats() overrides it with the
  // service's configured precision.
  std::string precision;

  // This snapshot minus an EARLIER snapshot of the same ServerStats: the
  // per-interval window (wall_seconds, QPS, hit rate, and percentiles all
  // recomputed over the interval alone). isa/precision copy from `this`.
  ServerStatsSnapshot Delta(const ServerStatsSnapshot& earlier) const;

  // Headline line plus, when latencies were recorded, a per-octave text
  // rendering of the latency histogram.
  std::string ToString() const;
};

// Every atomic below uses memory_order_relaxed deliberately: each counter is
// an independent tally with no associated payload to publish, and Snapshot()
// is a statistical reading, not a synchronization point — a concurrent
// Record* lands in either the pre- or post-snapshot window, both valid.
// Code that needs "all requests up to event X counted" must establish its
// own happens-before with the recording threads; PredictionService does so
// by joining its workers in Shutdown() before the final Stats() call (the
// join is a synchronizes-with edge, so relaxed counts are complete there).
class ServerStats {
 public:
  ServerStats();

  void RecordRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  // `n` requests answered from the cache (a queued duplicate group that a
  // concurrent worker's insert resolved counts one hit per request, matching
  // the Submit-path accounting).
  void RecordCacheHits(uint64_t n = 1) { cache_hits_.fetch_add(n, std::memory_order_relaxed); }
  void RecordCoalesced(uint64_t n) { coalesced_.fetch_add(n, std::memory_order_relaxed); }
  void RecordForwardPasses(uint64_t passes, uint64_t rows) {
    forward_passes_.fetch_add(passes, std::memory_order_relaxed);
    batched_rows_.fetch_add(rows, std::memory_order_relaxed);
  }
  void RecordLatencyMs(double ms) { latency_hist_.Record(ms); }

  ServerStatsSnapshot Snapshot() const;

  // Zeroes every counter and the latency histogram and restarts the wall
  // clock: the next Snapshot() measures only what happened after the Reset.
  // Racing Record* calls land in the new window.
  void Reset();

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> forward_passes_{0};
  std::atomic<uint64_t> batched_rows_{0};

  obs::LogHistogram latency_hist_;

  // steady_clock tick count of the window start; atomic so Reset() can race
  // with Snapshot().
  std::atomic<int64_t> start_ticks_;
};

}  // namespace cdmpp

#endif  // SRC_SERVE_SERVER_STATS_H_

// Auto-tuner (paper §5.3 "NAS and Automatic hyper-parameter tuning"):
// random search over the architecture/hyper-parameter space of Appendix B,
// scoring each trial by short-training validation MAPE. The paper uses
// Optuna with ~1000 trials; here the trial budget is configurable and the
// search strategy is plain random sampling, which reproduces the workflow.
//
// Trial scoring (the prediction of every validation sample under the trial's
// freshly trained predictor) routes through the CostModelClient seam
// (src/search/cost_model_client.h): kServe stands up a PredictionService per
// trial and scores the whole validation set as one batched population —
// dedup, leaf-count-bucketed forwards, and the prediction cache all apply —
// while kDirect keeps the serial one-forward-per-sample baseline. Both
// produce bitwise-identical MAPEs for the same seed (PredictBatched is
// batch-size-invariant), so the choice is a throughput knob, not a quality
// one; tests/search_test.cc pins the parity.
#ifndef SRC_CORE_AUTOTUNER_H_
#define SRC_CORE_AUTOTUNER_H_

#include "src/core/predictor.h"

namespace cdmpp {

// How each trial's validation set is scored. kServe batches through a
// per-trial PredictionService; kDirect runs serial size-1 forwards.
enum class TrialScoring { kServe, kDirect };

struct AutotuneOptions {
  int num_trials = 12;
  int epochs_per_trial = 6;
  uint64_t seed = 1234;
  TrialScoring scoring = TrialScoring::kServe;
  // Worker-pool width of the per-trial PredictionService (kServe only).
  int serve_workers = 2;
};

struct AutotuneTrial {
  PredictorConfig config;
  double valid_mape = 1e30;
};

struct AutotuneResult {
  AutotuneTrial best;
  std::vector<AutotuneTrial> trials;
  // Client-seam traffic accounting, accumulated across trials: validation
  // samples pushed through ScoreBatch, wall-clock spent scoring, and (kServe
  // only) the fraction answered by the prediction cache.
  uint64_t scored_candidates = 0;
  double scoring_seconds = 0.0;
  double scoring_cache_hit_rate = 0.0;
};

// Samples one configuration from the search space of Appendix B.
PredictorConfig SampleConfig(Rng* rng);

// Runs the search on the given train/valid split.
AutotuneResult Autotune(const Dataset& ds, const std::vector<int>& train,
                        const std::vector<int>& valid, const AutotuneOptions& opts);

}  // namespace cdmpp

#endif  // SRC_CORE_AUTOTUNER_H_

#include "src/baselines/tlp.h"

#include <cmath>

#include "src/support/check.h"

namespace cdmpp {

namespace {

// Per-primitive-kind count and mean factor, plus task shape digest and
// device features.
constexpr int kPrimFeat = 2 * kNumPrimitiveKinds;
constexpr int kShapeFeat = 8;
constexpr int kTlpFeatDim = kPrimFeat + kShapeFeat + kDeviceFeatDim;

}  // namespace

TlpModel::TlpModel(const TlpConfig& config) : config_(config), rng_(config.seed) {}

std::vector<float> TlpModel::Features(const Dataset& ds, const Sample& s) const {
  std::vector<float> f(kTlpFeatDim, 0.0f);
  const ProgramRecord& rec = ds.programs[static_cast<size_t>(s.program_index)];
  for (const SchedulePrimitive& p : rec.schedule.primitives) {
    int k = static_cast<int>(p.kind);
    f[static_cast<size_t>(2 * k)] += 1.0f;
    f[static_cast<size_t>(2 * k + 1)] += static_cast<float>(std::log1p(std::max(0, p.factor)));
  }
  const Task& task = ds.TaskOfProgram(s.program_index);
  for (size_t i = 0; i < task.dims.size() && i < 7; ++i) {
    f[kPrimFeat + i] = static_cast<float>(std::log1p(static_cast<double>(task.dims[i])));
  }
  f[kPrimFeat + 7] = static_cast<float>(task.kind);
  std::vector<float> dev = ExtractDeviceFeatures(DeviceById(s.device_id));
  for (int j = 0; j < kDeviceFeatDim; ++j) {
    f[static_cast<size_t>(kPrimFeat + kShapeFeat + j)] = dev[static_cast<size_t>(j)];
  }
  return f;
}

void TlpModel::Fit(const Dataset& ds, const std::vector<int>& train) {
  CDMPP_CHECK(!train.empty());
  // Task means over the training samples.
  std::map<int, std::pair<double, int>> acc;
  double total = 0.0;
  for (int idx : train) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    int task_id = ds.programs[static_cast<size_t>(s.program_index)].task_id;
    acc[task_id].first += s.latency_seconds;
    acc[task_id].second += 1;
    total += s.latency_seconds;
  }
  task_mean_seconds_.clear();
  for (const auto& [task_id, sum_count] : acc) {
    task_mean_seconds_[task_id] = sum_count.first / sum_count.second;
  }
  global_mean_seconds_ = total / static_cast<double>(train.size());

  mlp_ = std::make_unique<Mlp>(
      std::vector<int>{kTlpFeatDim, config_.hidden_dim, config_.hidden_dim, 1}, &rng_);
  std::vector<Param*> params;
  mlp_->CollectParams(&params);
  adam_ = std::make_unique<Adam>(std::move(params), config_.lr);

  std::vector<int> order = train;
  const int n = static_cast<int>(order.size());
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (int start = 0; start < n; start += config_.batch_size) {
      int b = std::min(config_.batch_size, n - start);
      Matrix x(b, kTlpFeatDim);
      std::vector<float> targets(static_cast<size_t>(b));
      for (int i = 0; i < b; ++i) {
        const Sample& s =
            ds.samples[static_cast<size_t>(order[static_cast<size_t>(start + i)])];
        std::vector<float> f = Features(ds, s);
        for (int j = 0; j < kTlpFeatDim; ++j) {
          x.At(i, j) = f[static_cast<size_t>(j)];
        }
        int task_id = ds.programs[static_cast<size_t>(s.program_index)].task_id;
        double mean = task_mean_seconds_.at(task_id);
        targets[static_cast<size_t>(i)] =
            static_cast<float>(std::log(std::max(1e-6, s.latency_seconds / mean)));
      }
      mlp_->ZeroGrad();
      Matrix pred = mlp_->Forward(x);
      Matrix dpred(b, 1);
      for (int i = 0; i < b; ++i) {
        dpred.At(i, 0) =
            2.0f * (pred.At(i, 0) - targets[static_cast<size_t>(i)]) / static_cast<float>(b);
      }
      mlp_->Backward(dpred);
      adam_->Step();
    }
  }
}

std::vector<double> TlpModel::Predict(const Dataset& ds, const std::vector<int>& indices) {
  CDMPP_CHECK(mlp_ != nullptr);
  std::vector<double> out;
  out.reserve(indices.size());
  for (int idx : indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    std::vector<float> f = Features(ds, s);
    Matrix x(1, kTlpFeatDim);
    for (int j = 0; j < kTlpFeatDim; ++j) {
      x.At(0, j) = f[static_cast<size_t>(j)];
    }
    double rel = std::exp(static_cast<double>(mlp_->Forward(x).At(0, 0)));
    int task_id = ds.programs[static_cast<size_t>(s.program_index)].task_id;
    auto it = task_mean_seconds_.find(task_id);
    double mean = it != task_mean_seconds_.end() ? it->second : global_mean_seconds_;
    out.push_back(rel * mean);
  }
  return out;
}

}  // namespace cdmpp

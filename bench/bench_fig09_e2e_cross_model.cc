// Reproduces paper Fig. 9 / Fig. 17: end-to-end latency prediction for
// cross-model learning — the replayer composes per-tensor-program cost-model
// predictions into a full-network iteration time and compares against the
// ground-truth replay. Covers ResNet-50 (BS 1/4/8), InceptionV3, BERT-base
// (BS 1/4) on GPU devices plus the HL-100 suite of Fig. 9(c).
#include <cstdio>

#include "src/baselines/xgb_model.h"
#include "src/exp/exp_common.h"
#include "src/replay/e2e.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig09_e2e_cross_model", "Fig. 9 / Fig. 17",
                   "end-to-end network latency: prediction vs ground-truth replay");
  // One cross-device CDMPP predictor (trained on T4 + V100 + HL-100 jointly);
  // one XGBoost with device features.
  Dataset ds = BuildBenchDataset({0, 3, 5});
  Rng rng(5000);
  SplitIndices split = SplitDataset(ds, {}, {}, &rng);
  CdmppPredictor cdmpp(BenchPredictorConfig(45));
  cdmpp.Pretrain(ds, split.train, split.valid);
  XgbCostModel xgb;
  Rng xrng(5100);
  xgb.Fit(ds, split.train, &xrng);

  const std::vector<std::pair<std::string, std::string>> workloads = {
      {"resnet50_bs1_r224", "ResNet-50 (1)"},   {"resnet50_bs4_r224", "ResNet-50 (4)"},
      {"resnet50_bs8_r224", "ResNet-50 (8)"},   {"inception_v3_bs1_r224", "InceptionV3 (1)"},
      {"bert_base_bs1_s128", "BERT Base (1)"},  {"bert_base_bs4_s128", "BERT Base (4)"},
  };

  std::vector<double> cdmpp_errors;
  std::vector<double> xgb_errors;
  for (int device : {0, 3, 5}) {
    const DeviceSpec& spec = DeviceById(device);
    std::printf("\nEnd-to-end prediction on %s%s:\n", spec.name.c_str(),
                device == 5 ? " (Fig. 9(c) suite, GEMM ops split across 3 engines)" : "");
    TablePrinter table({"network", "truth (ms)", "CDMPP (ms)", "CDMPP err", "XGB (ms)",
                        "XGB err"});
    for (const auto& [name, label] : workloads) {
      NetworkDef net = BuildNetworkByName(name);
      NetworkSchedules scheds = ChooseSchedules(net, 77);
      double truth = E2eGroundTruth(net, spec, scheds);
      double pred_cdmpp = E2ePredicted(net, spec, scheds, [&](const CompactAst& ast, int dev) {
        return cdmpp.PredictAst(ast, dev);
      });
      double pred_xgb = E2ePredicted(net, spec, scheds, [&](const CompactAst& ast, int dev) {
        return xgb.PredictAst(ast, dev);
      });
      double err_c = std::abs(pred_cdmpp - truth) / truth;
      double err_x = std::abs(pred_xgb - truth) / truth;
      cdmpp_errors.push_back(err_c);
      xgb_errors.push_back(err_x);
      table.AddRow({label, FormatDouble(truth * 1e3, 3), FormatDouble(pred_cdmpp * 1e3, 3),
                    FormatPercent(err_c, 1), FormatDouble(pred_xgb * 1e3, 3),
                    FormatPercent(err_x, 1)});
    }
    table.Print(stdout);
  }
  std::printf("\nAverage end-to-end error: CDMPP %.1f%%, XGBoost %.1f%% (paper: 12.4%% vs"
              " 63.8%%; Tiramisu 293.6%%).\n",
              Mean(cdmpp_errors) * 100.0, Mean(xgb_errors) * 100.0);
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

// Reproduces paper Fig. 11: latent-representation comparison before and after
// cross-device fine-tuning with target device EPYC — fine-tuning shrinks the
// distribution shift between GPU latents and CPU latents. Reported as exact
// CMD values plus t-SNE coordinates (CSV) for the visual analogue.
#include <cstdio>

#include "src/exp/exp_common.h"
#include "src/ml/cmd.h"
#include "src/ml/tsne.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig11_cdpp_latent", "Fig. 11",
                   "latent CMD before/after CDPP fine-tuning (target: EPYC)");
  Dataset ds = BuildBenchDataset({0, 3, 7});  // T4, V100 sources; EPYC target
  Rng rng(7000);
  SplitIndices src = SplitDataset(ds, {0, 3}, {}, &rng);
  std::vector<int> src_sub = Take(src.train, 400);
  std::vector<int> tgt_sub = Take(SamplesOnDevice(ds, 7), 400);

  PredictorConfig cfg = BenchPredictorConfig(40);
  cfg.alpha_cmd = 1.5;  // emphasize the CMD term so the alignment is visible
  CdmppPredictor predictor(cfg);
  predictor.Pretrain(ds, src.train, {});
  double before = CmdDistance(predictor.EncodeLatent(ds, src_sub),
                              predictor.EncodeLatent(ds, tgt_sub));

  // One-epoch fine-tune steps: Finetune keeps its best-validation snapshot,
  // which with a single epoch is simply the epoch-end state, so CMD progress
  // accumulates across calls.
  for (int step = 0; step < 8; ++step) {
    predictor.Finetune(ds, Take(src.train, 2000), src_sub, tgt_sub, 1);
  }
  double after = CmdDistance(predictor.EncodeLatent(ds, src_sub),
                             predictor.EncodeLatent(ds, tgt_sub));

  TablePrinter table({"stage", "CMD(GPU latents, EPYC latents)"});
  table.AddRow({"before fine-tuning (Fig. 11(a))", FormatDouble(before, 4)});
  table.AddRow({"after fine-tuning (Fig. 11(b))", FormatDouble(after, 4)});
  table.Print(stdout);
  std::printf("\nReduction: %.1f%% — fine-tuning aligns source and target device"
              " representations (paper Fig. 11).\n",
              (1.0 - after / std::max(1e-12, before)) * 100.0);

  std::vector<int> vis = Take(src_sub, 120);
  std::vector<int> vt = Take(tgt_sub, 120);
  vis.insert(vis.end(), vt.begin(), vt.end());
  Matrix z = predictor.EncodeLatent(ds, vis);
  Rng trng(8);
  TsneOptions topts;
  topts.iterations = 200;
  Matrix emb = TsneEmbed(z, topts, &trng);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < emb.rows(); ++i) {
    rows.push_back({static_cast<double>(emb.At(i, 0)), static_cast<double>(emb.At(i, 1)),
                    i < 120 ? 0.0 : 1.0});
  }
  WriteCsv("fig11_tsne_epyc.csv", {"x", "y", "is_target"}, rows);
  std::printf("[t-SNE coordinates written to fig11_tsne_epyc.csv]\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

// The single GEMM kernel layer every matrix product in the library lowers to.
//
// All kernels operate on row-major float buffers with explicit leading
// dimensions (lda/ldb/ldc = elements between consecutive rows), so they work
// on whole matrices and on sub-panels alike. Three transpose variants cover
// everything the NN stack needs:
//
//   GemmNN:  C = beta*C + A  · B     A: [m,k] lda, B: [k,n] ldb, C: [m,n] ldc
//   GemmTN:  C = beta*C + Aᵀ · B     A: [k,m] lda, B: [k,n] ldb, C: [m,n] ldc
//   GemmNT:  C = beta*C + A  · Bᵀ    A: [m,k] lda, B: [n,k] ldb, C: [m,n] ldc
//
// The `beta` accumulate parameter fuses "grad += MatMul(...)" patterns
// (beta = 1) and plain products (beta = 0, C is not read) without
// temporaries. GemmBiasAct additionally fuses the Linear-layer epilogue
// act(A·B + bias) into the kernel's register tile.
//
// Implementation contract (relied on by src/serve/ and tests):
//   * The optimized entry points dispatch at runtime between a portable
//     scalar body and hand-written AVX2 (+FMA) microkernels — see
//     src/support/cpu_features.h and the CDMPP_KERNEL_ISA override. Both are
//     register-tiled over 4-row A panels, vectorized/blocked across output
//     columns, and parallelized over row panels via ParallelFor once the
//     product is large enough to pay for the fork.
//   * Every C element is accumulated over p = 0..k-1 in ascending order,
//     independent of the row-panel partition, the register tile a row lands
//     in, and the batch size — so within a given ISA results are bitwise
//     run-to-run deterministic and batch-size-invariant
//     (PredictBatched == PredictAst). Across ISAs results agree to ~1e-6
//     relative, not bitwise: the AVX2 path rounds each multiply-add once
//     (FMA) where the scalar path rounds twice. Degenerate shapes (any of
//     m/n/k zero) are exact under every ISA: beta = 0 zero-fills, k = 0 with
//     beta != 0 is a pure scale of C, and empty C is untouched.
//   * The *Ref kernels are the naive triple loops; they are the golden
//     reference the dispatched kernels are tested against and the baseline
//     bench_gemm reports speedups over.
//
// Besides fp32, the layer ships an int8 symmetric-quantized tier
// (GemmS8S8S32 / GemmS8S8BiasAct below): weights are quantized once per
// output channel into the packed PackedQ8Weights format, activations are
// quantized dynamically with one scale per row (src/nn/quantize.h), and the
// integer accumulation is exact — so unlike fp32, the quantized kernels are
// bitwise identical across ISAs, not just within one.
#ifndef SRC_NN_KERNELS_H_
#define SRC_NN_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdmpp {
namespace kernels {

enum class Activation { kNone, kRelu };

inline float ApplyActivation(float v, Activation act) {
  return act == Activation::kRelu ? (v > 0.0f ? v : 0.0f) : v;
}

// ---- Naive reference kernels (golden baseline). ----------------------------
void GemmNNRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc);
void GemmTNRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc);
void GemmNTRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc);

// ---- Optimized blocked + parallel kernels. ----------------------------------
void GemmNN(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc);
void GemmTN(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc);
void GemmNT(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc);

// C = act(A·B + bias). `bias` is a length-n row broadcast over every output
// row (may be null for "no bias"). This is the Linear-layer forward fused
// into one pass over C; beta is implicitly 0.
void GemmBiasAct(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
                 const float* bias, Activation act, float* c, int ldc);

// ---- Int8-weight symmetric-quantized kernels. -------------------------------
//
// Symmetric (zero-point 0) integer codes carried in 16-bit lanes: weight
// codes are int8 ([-127, 127], one scale per output channel); activation
// codes use the headroom the 16-bit lane gives for free, bounded per layer
// by ActivationQMax(k) (src/nn/quantize.h) so that the whole reduction
// provably fits the i32 accumulator: k * qmax_a * 127 <= 2^31 - 1. The AVX2
// body is built on _mm256_madd_epi16, which multiplies i16 lanes into i32
// exactly (no saturation anywhere) — pre-VNNI x86 has no non-saturating
// 8-bit dot product, and the _mm256_maddubs_epi16 sign-trick formulation
// measured *slower* than the fp32 FMA kernels on the predictor's small-k
// shapes, while the madd path measures ~2x over them at identical memory
// traffic for the 16-bit-staged activations. Exact integer accumulation
// makes the quantized kernels bitwise identical across ISAs, batch sizes,
// and thread partitions.
//
// Weights are packed once at quantization time (src/nn/quantize.h) into the
// layout the madd kernel consumes directly:
//   data[(p2 * n + j) * 2 + s] = q_weight(2 * p2 + s, j)
// i.e. reduction index pairs (2p2, 2p2+1) of output channel j sit in
// adjacent i16 lanes (one i32 unit per channel), with odd k zero-padded.
struct PackedQ8Weights {
  int k = 0;                  // logical reduction length (fp32 weight rows)
  int n = 0;                  // output channels (fp32 weight cols)
  int k2 = 0;                 // ceil(k / 2) packed pair-rows
  std::vector<int16_t> data;  // [k2][n][2] pair-interleaved quantized values
  std::vector<float> scales;  // [n] per-output-channel dequantization scales

  // Unpacked view for tests/references: quantized weight at (p, j), p < 2*k2.
  int16_t At(int p, int j) const {
    return data[(static_cast<size_t>(p / 2) * n + j) * 2 + (p & 1)];
  }
};

// C_s32 = A_q · B_q with raw int32 accumulators. A holds quantized rows in
// 16-bit lanes, lda >= 2 * w.k2 elements between rows with columns
// [k, 2 * w.k2) zeroed (QuantizeActivationsPerRow guarantees both).
void GemmS8S8S32Ref(int m, const int16_t* a, int lda, const PackedQ8Weights& w, int32_t* c,
                    int ldc);
void GemmS8S8S32(int m, const int16_t* a, int lda, const PackedQ8Weights& w, int32_t* c,
                 int ldc);

// Fused dequantize+bias+activation epilogue — the quantized Linear forward:
//   C[i,j] = act(float(s32[i,j]) * (a_scales[i] * w.scales[j]) + bias[j])
// with the multiply and add rounded separately (no FMA) in every ISA, so the
// float output is also bitwise identical across ISAs. `bias` may be null.
void GemmS8S8BiasActRef(int m, const int16_t* a, int lda, const PackedQ8Weights& w,
                        const float* a_scales, const float* bias, Activation act, float* c,
                        int ldc);
void GemmS8S8BiasAct(int m, const int16_t* a, int lda, const PackedQ8Weights& w,
                     const float* a_scales, const float* bias, Activation act, float* c,
                     int ldc);

}  // namespace kernels
}  // namespace cdmpp

#endif  // SRC_NN_KERNELS_H_

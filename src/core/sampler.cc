#include "src/core/sampler.h"

#include <algorithm>
#include <limits>

#include "src/ml/kmeans.h"
#include "src/support/check.h"

namespace cdmpp {

namespace {

// Aggregate feature rows, one per program, plus the program -> task mapping.
Matrix ProgramFeatureMatrix(const Dataset& ds) {
  CDMPP_CHECK(!ds.programs.empty());
  std::vector<float> first = AggregateFeatures(ds.programs[0].ast);
  Matrix feats(static_cast<int>(ds.programs.size()), static_cast<int>(first.size()));
  for (size_t p = 0; p < ds.programs.size(); ++p) {
    std::vector<float> row = AggregateFeatures(ds.programs[p].ast);
    for (size_t j = 0; j < row.size(); ++j) {
      feats.At(static_cast<int>(p), static_cast<int>(j)) = row[j];
    }
  }
  return feats;
}

}  // namespace

std::vector<int> SelectTasksKMeans(const Dataset& ds, int kappa, Rng* rng) {
  CDMPP_CHECK(kappa >= 1);
  CDMPP_CHECK(kappa <= static_cast<int>(ds.tasks.size()));
  Matrix feats = ProgramFeatureMatrix(ds);
  KMeansResult clusters = KMeans(feats, kappa, rng);

  // Sort cluster ids by size, descending (Algorithm 1, line 2).
  std::vector<int> order(static_cast<size_t>(kappa));
  for (int e = 0; e < kappa; ++e) {
    order[static_cast<size_t>(e)] = e;
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return clusters.cluster_sizes[static_cast<size_t>(a)] >
           clusters.cluster_sizes[static_cast<size_t>(b)];
  });

  // Psi[e][tau]: mean distance of task tau's program features to center e.
  const int num_tasks = static_cast<int>(ds.tasks.size());
  std::vector<std::vector<double>> psi(
      static_cast<size_t>(kappa), std::vector<double>(static_cast<size_t>(num_tasks), 0.0));
  for (int e = 0; e < kappa; ++e) {
    for (int tau = 0; tau < num_tasks; ++tau) {
      const TaskInfo& info = ds.tasks[static_cast<size_t>(tau)];
      CDMPP_CHECK(!info.program_indices.empty());
      double sum = 0.0;
      for (int p : info.program_indices) {
        sum += std::sqrt(
            SquaredDistance(feats.Row(p), clusters.centroids.Row(e), feats.cols()));
      }
      psi[static_cast<size_t>(e)][static_cast<size_t>(tau)] =
          sum / static_cast<double>(info.program_indices.size());
    }
  }

  std::vector<bool> taken(static_cast<size_t>(num_tasks), false);
  std::vector<int> selected;
  for (int e : order) {
    int best_tau = -1;
    double best_psi = std::numeric_limits<double>::max();
    for (int tau = 0; tau < num_tasks; ++tau) {
      if (taken[static_cast<size_t>(tau)]) {
        continue;
      }
      if (psi[static_cast<size_t>(e)][static_cast<size_t>(tau)] < best_psi) {
        best_psi = psi[static_cast<size_t>(e)][static_cast<size_t>(tau)];
        best_tau = tau;
      }
    }
    CDMPP_CHECK(best_tau >= 0);
    taken[static_cast<size_t>(best_tau)] = true;
    selected.push_back(best_tau);
  }
  return selected;
}

std::vector<int> SelectTasksRandom(const Dataset& ds, int kappa, Rng* rng) {
  CDMPP_CHECK(kappa >= 1 && kappa <= static_cast<int>(ds.tasks.size()));
  std::vector<int> ids(ds.tasks.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int>(i);
  }
  rng->Shuffle(&ids);
  ids.resize(static_cast<size_t>(kappa));
  return ids;
}

std::vector<int> SamplesForTasksOnDevice(const Dataset& ds, const std::vector<int>& task_ids,
                                         int device_id) {
  std::vector<bool> wanted(ds.tasks.size(), false);
  for (int t : task_ids) {
    wanted[static_cast<size_t>(t)] = true;
  }
  std::vector<int> out;
  for (size_t i = 0; i < ds.samples.size(); ++i) {
    const Sample& s = ds.samples[i];
    if (s.device_id != device_id) {
      continue;
    }
    int task_id = ds.programs[static_cast<size_t>(s.program_index)].task_id;
    if (wanted[static_cast<size_t>(task_id)]) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace cdmpp

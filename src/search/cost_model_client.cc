#include "src/search/cost_model_client.h"

#include <chrono>
#include <future>
#include <map>
#include <utility>

#include "src/device/device.h"
#include "src/support/check.h"

namespace cdmpp {

void CostModelClient::ScoreBatch(const std::vector<CostQuery>& queries,
                                 std::vector<double>* scores) {
  CDMPP_CHECK(scores != nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  scores->resize(queries.size());
  ScoreBatchImpl(queries, scores);
  stats_.queries += queries.size();
  stats_.score_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void FnCostModel::ScoreBatchImpl(const std::vector<CostQuery>& queries,
                                 std::vector<double>* scores) {
  for (size_t i = 0; i < queries.size(); ++i) {
    (*scores)[i] = fn_(*queries[i].ast, queries[i].device_id);
  }
  stats_.submitted += queries.size();
}

DirectCostModel::DirectCostModel(CdmppPredictor* predictor, Precision precision)
    : predictor_(predictor), precision_(precision) {
  CDMPP_CHECK(predictor != nullptr);
  CDMPP_CHECK_MSG(predictor->fitted(), "DirectCostModel on an unfitted predictor");
  if (precision_ != Precision::kFp32 && !predictor_->quantized_ready()) {
    predictor_->PrepareQuantizedInference();
  }
}

void DirectCostModel::ScoreBatchImpl(const std::vector<CostQuery>& queries,
                                     std::vector<double>* scores) {
  const bool int8_mode = precision_ != Precision::kFp32;
  for (size_t i = 0; i < queries.size(); ++i) {
    const CostQuery& q = queries[i];
    CDMPP_CHECK(q.ast != nullptr && q.ast->num_leaves > 0);
    if (int8_mode) {
      if (!predictor_->HasQuantizedHead(q.ast->num_leaves)) {
        predictor_->EnsureQuantizedHead(q.ast->num_leaves);
      }
    } else if (!predictor_->HasHead(q.ast->num_leaves)) {
      predictor_->EnsureHead(q.ast->num_leaves);
    }
    AstBatchView view;
    view.asts.push_back(q.ast);
    view.device_ids.push_back(q.device_id);
    double prediction = 0.0;
    if (int8_mode) {
      predictor_->PredictBatchedQuantized(view, &ws_, &prediction, nullptr, precision_);
    } else {
      predictor_->PredictBatched(view, &ws_, &prediction);
    }
    (*scores)[i] = prediction;
  }
  stats_.submitted += queries.size();
}

ServeCostModel::ServeCostModel(PredictionService* service) : service_(service) {
  CDMPP_CHECK(service != nullptr);
}

void ServeCostModel::ScoreBatchImpl(const std::vector<CostQuery>& queries,
                                    std::vector<double>* scores) {
  // Dedup within the batch by the same identity the prediction cache uses:
  // (AST content hash, device fingerprint). std::map, not unordered_map — the
  // search tree is under the determinism linter rule, and ordered lookups on
  // 64-bit key pairs are plenty fast at population sizes.
  std::map<std::pair<uint64_t, uint64_t>, size_t> unique;  // key -> slot index
  std::vector<const CompactAst*> unique_asts;
  std::vector<int> unique_devices;
  std::vector<size_t> slot_of(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const CostQuery& q = queries[i];
    CDMPP_CHECK(q.ast != nullptr && q.ast->num_leaves > 0);
    const std::pair<uint64_t, uint64_t> key{q.ast->Hash(),
                                            DeviceById(q.device_id).Fingerprint()};
    const auto [it, inserted] = unique.emplace(key, unique_asts.size());
    if (inserted) {
      unique_asts.push_back(q.ast);
      unique_devices.push_back(q.device_id);
    }
    slot_of[i] = it->second;
  }
  // One bulk submission for the whole deduplicated population (one queue
  // lock, one worker wake-up — see SubmitBorrowedBatch), then collect in
  // submission order and fan out to duplicates in index order. The futures
  // may resolve in any order on the worker pool; waiting positionally keeps
  // the score vector independent of completion order.
  std::vector<std::future<double>> futures =
      service_->SubmitBorrowedBatch(unique_asts, unique_devices);
  std::vector<double> unique_scores(futures.size());
  for (size_t j = 0; j < futures.size(); ++j) {
    unique_scores[j] = futures[j].get();
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    (*scores)[i] = unique_scores[slot_of[i]];
  }
  stats_.submitted += futures.size();
  stats_.deduped += queries.size() - futures.size();
}

}  // namespace cdmpp

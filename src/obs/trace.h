// Sampled per-request trace spans: where did a request's latency go?
//
// The serving layer samples 1-in-N requests (CDMPP_TRACE_SAMPLE; 0/unset =
// off, 1 = every request). For a sampled request, the worker binds a Trace to
// the thread via ScopedTraceBinding while it forms and runs the batch;
// ScopedSpan instances down the stack (prediction_service.cc, predictor.cc,
// attention.cc, layers.cc, quantize.cc) then record named stage timings into
// it, nested. When no trace is bound — the 1-(1/N) common case, and ALWAYS
// when sampling is off — ScopedSpan is a thread-local load and a branch: no
// clock read, no allocation, nothing the ≤1% overhead gate can see.
//
// Spans are recorded only on the thread that owns the binding. ParallelFor
// chunk bodies never open spans, so tracing cannot perturb chunk scheduling
// and the thread-count bitwise-invariance contract is untouched: a stage that
// forks internally (attention, GEMM panels) is measured as whole-call wall
// time on the calling worker.
//
// Attribution uses EXCLUSIVE time — each span's duration minus its nested
// children — so per-stage numbers sum to (at most) the request total and the
// collector can assert that named stages explain >= 95% of measured latency.
//
// This header depends only on the C++ standard library so that src/support/
// may include obs/ without inverting the layering.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace cdmpp {
namespace obs {

// Stages tile a request's submit-to-fulfill interval. Order is display order.
enum class Stage : int {
  kQueueWait = 0,    // submit -> worker drains the request from the queue
  kBatchFormation,   // coalescing, cache re-check, head creation
  kCacheLookup,      // submit-path cache-hit fast path (whole-request)
  kForward,          // batched forward glue (plan build, lock wait, chunking)
  kFeaturize,        // AST -> feature matrix
  kQuantize,         // fp32 -> int8 activation quantization (int8 tier only)
  kEncoder,          // input projection + transformer encoder
  kAttention,        // multi-head self-attention (nested inside encoder)
  kLayerNorm,        // layer norms (nested inside encoder)
  kHeads,            // leaf-bucket regression head
  kDeviceMlp,        // device-feature embedding MLP
  kDecoder,          // fused [z_x; z_dev] decoder
  kDequant,          // inverse label transform back to seconds (the int8 GEMM
                     // dequant epilogue is fused in-kernel, attributed to its
                     // host stage)
  kFinalize,         // cache insert + promise fulfillment
  kNumStages
};
constexpr int kNumStages = static_cast<int>(Stage::kNumStages);
const char* StageName(Stage stage);

struct SpanRecord {
  Stage stage = Stage::kQueueWait;
  int depth = 0;            // 0 = top-level within the trace
  double total_ms = 0.0;    // wall time including nested spans
  double exclusive_ms = 0.0;  // total minus nested children
};

// Span sink for one batch (or one request). Not thread-safe: written only by
// the worker thread that bound it.
class Trace {
 public:
  void Clear() { spans_.clear(); }
  void AddSpan(Stage stage, int depth, double total_ms, double exclusive_ms) {
    spans_.push_back(SpanRecord{stage, depth, total_ms, exclusive_ms});
  }
  const std::vector<SpanRecord>& spans() const { return spans_; }

 private:
  std::vector<SpanRecord> spans_;
};

namespace detail {
struct TraceContext {
  static constexpr int kMaxDepth = 16;
  Trace* trace = nullptr;
  int depth = 0;
  // child_ms[d] accumulates the duration of completed spans at depth d; a
  // parent at depth d-1 reads child_ms[d] to compute its exclusive time.
  // Sized kMaxDepth + 2: spans saturate at depth kMaxDepth and still index
  // child_ms[kMaxDepth + 1].
  double child_ms[kMaxDepth + 2] = {};
};
TraceContext*& CurrentTraceContext();
}  // namespace detail

// Binds `trace` as the current thread's span sink for this scope; pass
// nullptr for a no-op binding (the untraced batch case reads one branch).
class ScopedTraceBinding {
 public:
  explicit ScopedTraceBinding(Trace* trace);
  ~ScopedTraceBinding();
  ScopedTraceBinding(const ScopedTraceBinding&) = delete;
  ScopedTraceBinding& operator=(const ScopedTraceBinding&) = delete;

 private:
  detail::TraceContext ctx_;
  detail::TraceContext* prev_ = nullptr;
  bool active_ = false;
};

// RAII stage timer. Free when no trace is bound to the thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(Stage stage) : ctx_(detail::CurrentTraceContext()) {
    if (ctx_ == nullptr) {
      return;
    }
    stage_ = stage;
    depth_ = ctx_->depth;
    if (ctx_->depth < detail::TraceContext::kMaxDepth) {
      ++ctx_->depth;
    }
    ctx_->child_ms[depth_ + 1] = 0.0;  // fresh accumulator for my children
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (ctx_ == nullptr) {
      return;
    }
    const double total_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
            .count();
    const double exclusive_ms = total_ms - ctx_->child_ms[depth_ + 1];
    ctx_->trace->AddSpan(stage_, depth_, total_ms, exclusive_ms);
    ctx_->child_ms[depth_] += total_ms;
    if (ctx_->depth > depth_) {
      ctx_->depth = depth_;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  detail::TraceContext* ctx_;
  Stage stage_ = Stage::kQueueWait;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// One completed sampled request, as emitted to the collector.
struct RequestTrace {
  double total_ms = 0.0;  // submit -> promise fulfilled
  std::array<double, kNumStages> stage_ms{};  // exclusive time per stage
  std::vector<SpanRecord> spans;

  // Records an externally-timed top-level segment (queue wait, finalize).
  void AddSegment(Stage stage, double ms);
  // Copies a batch trace's spans in and accrues their exclusive times.
  void AppendSpans(const Trace& trace);
  double AttributedMs() const;
  // Fraction of total_ms explained by named stages, in [0, 1]; 1 for an
  // empty/zero-length trace.
  double AttributedFraction() const;
};

// Process-wide sink for sampled request traces: per-stage aggregates plus a
// small ring of recent traces for inspection. Emission takes a mutex, but
// only sampled requests reach it.
class TraceCollector {
 public:
  // Sampling rate initialized once from CDMPP_TRACE_SAMPLE (complete decimal
  // integer >= 1 enables 1-in-N; anything else, including unset, disables
  // with a stderr warning for malformed values).
  static TraceCollector& Global();

  // Relaxed on both sides: sample_every_ is a self-contained rate knob. A
  // rate change publishes no other data, so a racing ShouldSample() reading
  // the old rate for one more request is correct behavior, not a reorder
  // hazard. Completed traces are handed to the collector under its mutex,
  // which is the actual happens-before edge for trace payloads.
  int sample_every() const { return sample_every_.load(std::memory_order_relaxed); }
  void SetSampleEvery(int n) { sample_every_.store(n, std::memory_order_relaxed); }
  // True 1-in-N by arrival order; false always when sampling is disabled
  // (one relaxed load + branch — the Submit hot path cost).
  bool ShouldSample() {
    const int n = sample_every_.load(std::memory_order_relaxed);
    if (n <= 0) {
      return false;
    }
    return ticket_.fetch_add(1, std::memory_order_relaxed) % static_cast<uint64_t>(n) == 0;
  }

  void Emit(RequestTrace trace);

  struct Stats {
    uint64_t traces = 0;
    double total_ms = 0.0;                       // summed over traces
    std::array<double, kNumStages> stage_ms{};   // summed exclusive time
    double attributed_ms = 0.0;
    // Aggregate fraction of traced latency attributed to named stages.
    double AttributedFraction() const {
      return total_ms > 0.0 ? attributed_ms / total_ms : 1.0;
    }
  };
  Stats GetStats() const;
  std::vector<RequestTrace> Recent() const;

  // Clears aggregates and the recent ring; keeps the sampling rate.
  void Reset();

  // {"sample_every": N, "traces": M, "attributed_fraction": f,
  //  "stages": {name: {"total_ms": t, "mean_ms": m, "share": s}, ...}}
  std::string DumpJson() const;

 private:
  TraceCollector();

  static constexpr size_t kRecentCapacity = 32;

  std::atomic<int> sample_every_{0};
  std::atomic<uint64_t> ticket_{0};
  mutable std::mutex mu_;
  Stats stats_;
  std::deque<RequestTrace> recent_;
};

}  // namespace obs
}  // namespace cdmpp

#endif  // SRC_OBS_TRACE_H_

#include "src/device/simulator.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"

namespace cdmpp {

double LeafTiming::Total() const { return std::max(compute_seconds, memory_seconds) + overhead_seconds; }

namespace {

// Cost weights per arithmetic op class (relative to one add).
double WeightedFlopsPerIter(const OpCounts& ops) {
  return ops.adds + ops.muls + 2.0 * ops.fmas + 4.0 * ops.divs + 8.0 * ops.specials + ops.cmps;
}

struct LoopSummary {
  double iterations = 1.0;          // total executions of the leaf
  double parallel_extent = 1.0;     // product of parallel-annotated extents
  bool parallel = false;
  bool vectorized = false;
  double vector_len = 1.0;
  bool unrolled = false;
  double spatial_iters = 1.0;       // product of spatial extents
  double inner_tile_iters = 1.0;    // product of innermost <=3 loop extents
  int depth = 0;
};

LoopSummary Summarize(const LeafContext& leaf) {
  LoopSummary s;
  s.depth = static_cast<int>(leaf.loops.size());
  for (const Loop* loop : leaf.loops) {
    double e = static_cast<double>(loop->extent);
    s.iterations *= e;
    if (loop->kind == LoopKind::kSpatial) {
      s.spatial_iters *= e;
    }
    switch (loop->annotation) {
      case LoopAnnotation::kParallel:
        s.parallel = true;
        s.parallel_extent *= e;
        break;
      case LoopAnnotation::kVectorize:
        s.vectorized = true;
        s.vector_len = e;
        break;
      case LoopAnnotation::kUnroll:
        s.unrolled = true;
        break;
      case LoopAnnotation::kNone:
        break;
    }
  }
  size_t n = leaf.loops.size();
  for (size_t i = n >= 3 ? n - 3 : 0; i < n; ++i) {
    s.inner_tile_iters *= static_cast<double>(leaf.loops[i]->extent);
  }
  return s;
}

}  // namespace

LeafTiming SimulateLeaf(const LeafContext& leaf, const DeviceSpec& spec) {
  const ComputeStmt& c = *leaf.compute;
  LoopSummary s = Summarize(leaf);
  const bool is_gpu = spec.cls == DeviceClass::kGpu;
  const bool is_cpu = spec.cls == DeviceClass::kCpu;
  const bool is_accel = spec.cls == DeviceClass::kAccelerator;

  // ---- Compute time: weighted flops over derated peak throughput. ----
  double flops = s.iterations * WeightedFlopsPerIter(c.ops);
  double efficiency = 0.38;

  // Vectorization: CPUs depend heavily on SIMD; GPUs see a milder coalescing
  // effect; accelerators ship wide fixed-function SIMD either way.
  if (is_cpu) {
    efficiency *= s.vectorized ? 0.95 : std::max(0.18, 1.6 / spec.vector_width);
  } else {
    efficiency *= s.vectorized ? 1.0 : 0.8;
  }
  if (s.unrolled) {
    efficiency *= 1.12;
  }

  // Occupancy: exposed parallelism saturates throughput with a tanh knee.
  // Programs without a parallel annotation still extract some parallelism on
  // GPUs (implicit thread binding) but much less.
  double exposed = s.parallel ? s.parallel_extent : (is_gpu ? s.spatial_iters * 0.05 : 1.0);
  double knee = std::max(1.0, static_cast<double>(spec.cores) * spec.occupancy_knee);
  double occupancy = std::tanh(exposed / knee + 0.02);
  efficiency *= occupancy;

  // GEMM-affine hardware (tensor cores / HL-100 GEMM engines) accelerates
  // multiply-accumulate leaves; HL-100's TPCs run everything else slowly.
  if (c.kind == ComputeKind::kFma) {
    efficiency *= spec.gemm_affinity;
  } else if (is_accel) {
    efficiency *= 0.35;
  }

  LeafTiming t;
  double peak = spec.peak_gflops * 1e9;
  t.compute_seconds = flops > 0.0 ? flops / (peak * std::max(1e-4, efficiency)) : 0.0;

  // ---- Memory time: compulsory traffic + cache-miss dependent excess. ----
  double naive_bytes = s.iterations * (c.loads_per_iter + c.stores_per_iter) * 4.0;
  double compulsory = 0.0;
  double stride_penalty = 1.0;
  for (const BufferAccess& a : c.accesses) {
    compulsory += a.footprint_bytes;
    if (a.stride_class == 1) {
      stride_penalty += 0.3 / static_cast<double>(c.accesses.size());
    } else if (a.stride_class == 2) {
      stride_penalty += 1.0 / static_cast<double>(c.accesses.size());
    }
  }
  compulsory = std::min(compulsory, naive_bytes);

  double tile_bytes = s.inner_tile_iters * (c.loads_per_iter + c.stores_per_iter) * 4.0;
  double alpha;  // fraction of the non-compulsory traffic that misses cache
  if (tile_bytes <= spec.l1_kb * 1024.0) {
    alpha = 0.04;
  } else if (tile_bytes <= spec.l2_mb * 1e6) {
    alpha = 0.18;
  } else {
    alpha = 0.55;
  }
  double bytes = (compulsory + alpha * std::max(0.0, naive_bytes - compulsory)) * stride_penalty;
  t.memory_seconds = bytes / (spec.mem_bw_gbps * 1e9);

  // ---- Loop overhead: branch/index cost per innermost iteration. ----
  double per_iter = (is_cpu ? 0.35e-9 : 0.04e-9) * (1.0 + 0.15 * s.depth);
  if (s.unrolled) {
    per_iter *= 0.55;
  }
  if (s.vectorized) {
    per_iter *= 0.7;
  }
  // Parallel execution divides the visible overhead across workers.
  double workers = s.parallel ? std::min(s.parallel_extent, static_cast<double>(spec.cores))
                              : 1.0;
  t.overhead_seconds = s.iterations * per_iter / std::max(1.0, workers * (is_gpu ? 8.0 : 1.0));
  return t;
}

double SimulateLatencyDeterministic(const TensorProgram& prog, const DeviceSpec& spec) {
  CDMPP_CHECK(prog.root != nullptr);
  double total = spec.launch_overhead_us * 1e-6;
  for (const LeafContext& leaf : CollectLeaves(*prog.root)) {
    total += SimulateLeaf(leaf, spec).Total();
  }
  return total;
}

double SimulateLatency(const TensorProgram& prog, const DeviceSpec& spec, double noise_sigma,
                       Rng* rng) {
  double base = SimulateLatencyDeterministic(prog, spec);
  if (noise_sigma > 0.0) {
    CDMPP_CHECK(rng != nullptr);
    base *= rng->LogNormalFactor(noise_sigma);
  }
  return base;
}

}  // namespace cdmpp

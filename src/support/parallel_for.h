// A persistent worker pool with a single primitive: ParallelFor over an
// integer range. This is the only threading construct the compute data plane
// (src/nn/kernels.cc and the batch-row loops in the layers) uses, so the
// whole library shares one pool instead of spawning threads per call.
//
// Sizing: the global pool honors the CDMPP_NUM_THREADS environment variable
// (a complete decimal integer in [1, 1024]); malformed or out-of-range values
// fall back to std::thread::hardware_concurrency(), itself clamped to >= 1.
// Tests can construct private pools of any size.
#ifndef SRC_SUPPORT_PARALLEL_FOR_H_
#define SRC_SUPPORT_PARALLEL_FOR_H_

#include <cstdint>
#include <type_traits>
#include <utility>

namespace cdmpp {

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers; the calling thread participates in every
  // region, so num_threads == 1 means "no extra threads, run inline".
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool (created on first use, never destroyed).
  static ThreadPool& Global();

  // Resolves the pool size Global() uses from a CDMPP_NUM_THREADS value
  // (may be null) and the detected hardware concurrency. A value that is not
  // a complete decimal integer, or is < 1, falls back to `hardware_threads`;
  // every result is clamped to [1, kMaxThreads], including the fallback
  // (hardware_concurrency() may legitimately return 0). Exposed for the
  // regression tests; Global() is a singleton so the env var itself is only
  // read once per process.
  static constexpr int kMaxThreads = 1024;
  static int ResolveNumThreads(const char* env_value, int hardware_threads);

  int num_threads() const { return num_threads_; }

  // Splits [begin, end) into chunks of at most `grain` iterations and invokes
  // fn(chunk_begin, chunk_end) across the pool; the calling thread
  // participates. Blocks until every chunk has completed.
  //
  // - Runs serially inline (one fn(begin, end) call) when the range fits a
  //   single chunk, the pool has one thread, the caller is already inside a
  //   ParallelFor (nested submits never deadlock, they just run serial), or
  //   another thread currently drives a region (regions do not queue).
  // - Exceptions thrown by fn are caught; the first one is rethrown on the
  //   calling thread after all remaining chunks have been drained (their
  //   bodies are skipped once a failure is recorded).
  // - fn must be safe to run concurrently on disjoint chunks. Callers that
  //   need run-to-run determinism (the GEMM kernels guarantee bitwise
  //   batch-size-invariant results) must make per-element output independent
  //   of the chunk partition.
  template <typename Fn>
  void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
    using F = typename std::remove_reference<Fn>::type;
    RunImpl(begin, end, grain,
            [](void* ctx, int64_t b, int64_t e) { (*static_cast<F*>(ctx))(b, e); },
            const_cast<void*>(static_cast<const void*>(&fn)));
  }

 private:
  struct Impl;

  void RunImpl(int64_t begin, int64_t end, int64_t grain,
               void (*fn)(void*, int64_t, int64_t), void* ctx);

  int num_threads_ = 1;
  Impl* impl_ = nullptr;
};

// Convenience wrapper over the global pool.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, std::forward<Fn>(fn));
}

}  // namespace cdmpp

#endif  // SRC_SUPPORT_PARALLEL_FOR_H_

#include "src/nn/loss.h"

#include <cmath>

#include "src/support/check.h"

namespace cdmpp {

const char* LossKindName(LossKind kind) {
  switch (kind) {
    case LossKind::kMse:
      return "MSE";
    case LossKind::kMape:
      return "MAPE";
    case LossKind::kMspe:
      return "MSPE";
    case LossKind::kHybrid:
      return "MSE+MAPE";
  }
  return "unknown";
}

namespace {

constexpr double kEps = 1e-6;

double GuardedTarget(float y) {
  double ay = std::abs(static_cast<double>(y));
  return ay < kEps ? kEps : ay;
}

}  // namespace

LossResult ComputeLoss(LossKind kind, const std::vector<float>& pred,
                       const std::vector<float>& target, double lambda) {
  CDMPP_CHECK(pred.size() == target.size());
  CDMPP_CHECK(!pred.empty());
  const double n = static_cast<double>(pred.size());
  LossResult res;
  res.grad.assign(pred.size(), 0.0f);

  auto add_mse = [&](double weight) {
    for (size_t i = 0; i < pred.size(); ++i) {
      double d = static_cast<double>(pred[i]) - target[i];
      res.value += weight * d * d / n;
      res.grad[i] += static_cast<float>(weight * 2.0 * d / n);
    }
  };
  auto add_mape = [&](double weight) {
    for (size_t i = 0; i < pred.size(); ++i) {
      double y = GuardedTarget(target[i]);
      double d = static_cast<double>(pred[i]) - target[i];
      res.value += weight * std::abs(d) / y / n;
      res.grad[i] += static_cast<float>(weight * (d >= 0.0 ? 1.0 : -1.0) / y / n);
    }
  };
  auto add_mspe = [&](double weight) {
    for (size_t i = 0; i < pred.size(); ++i) {
      double y = GuardedTarget(target[i]);
      double d = static_cast<double>(pred[i]) - target[i];
      res.value += weight * d * d / (y * y) / n;
      res.grad[i] += static_cast<float>(weight * 2.0 * d / (y * y) / n);
    }
  };

  switch (kind) {
    case LossKind::kMse:
      add_mse(1.0);
      break;
    case LossKind::kMape:
      add_mape(1.0);
      break;
    case LossKind::kMspe:
      add_mspe(1.0);
      break;
    case LossKind::kHybrid:
      add_mse(1.0);
      add_mape(lambda);
      break;
  }
  return res;
}

}  // namespace cdmpp

// Thread-parallel data-plane contract tests:
//
//   * WorkspacePool checkout/return semantics — exclusivity under concurrent
//     checkout, LIFO warm reuse, reset-on-checkout, exception-safe lease
//     return, nested leases under ParallelFor (the serving composition).
//   * ParallelForWithScratch — coverage, per-chunk private scratch,
//     deterministic chunk->lease assignment.
//   * Thread-count invariance — the serving contract that ForwardInference /
//     PredictBatched results are BITWISE identical for every
//     CDMPP_NUM_THREADS value (pools of 1, 2, and 8 threads), for fp32 and
//     int8, under both kernel ISAs, and across batch splits.
#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/predictor.h"
#include "src/nn/transformer.h"
#include "src/nn/workspace.h"
#include "src/serve/prediction_service.h"
#include "src/support/cpu_features.h"
#include "src/support/parallel_for.h"
#include "src/tir/schedule.h"

namespace cdmpp {
namespace {

// Routes ThreadPool::Global() to a private pool of `threads` threads for the
// enclosing scope. The override is cleared before the pool is destroyed.
struct ScopedGlobalPool {
  explicit ScopedGlobalPool(int threads) : pool(threads) {
    ThreadPool::SetGlobalForTesting(&pool);
  }
  ~ScopedGlobalPool() { ThreadPool::SetGlobalForTesting(nullptr); }
  ThreadPool pool;
};

struct ScopedIsa {
  explicit ScopedIsa(KernelIsa isa) : prev(ActiveKernelIsa()), ok(SetKernelIsa(isa)) {}
  ~ScopedIsa() { SetKernelIsa(prev); }
  KernelIsa prev;
  bool ok;
};

// Runs `body` once per available ISA with that ISA dispatched.
template <typename Body>
void ForEachIsa(Body&& body) {
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2}) {
    ScopedIsa scoped(isa);
    if (!scoped.ok) {
      continue;  // AVX2 not available on this host/build
    }
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(isa));
    body();
  }
}

// ---- WorkspacePool ---------------------------------------------------------

TEST(WorkspacePoolTest, CheckoutHandsOutDistinctResetArenas) {
  WorkspacePool pool;
  Workspace* a = pool.Checkout();
  Workspace* b = pool.Checkout();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.num_arenas(), 2u);
  EXPECT_EQ(pool.num_free(), 0u);
  a->NewMatrix(4, 4);
  pool.Return(a);
  pool.Return(b);
  EXPECT_EQ(pool.num_free(), 2u);
  // LIFO: the most recently returned arena (b) is lent next; the arena that
  // had live slots comes back Reset() but with its capacity intact.
  EXPECT_EQ(pool.Checkout(), b);
  Workspace* a2 = pool.Checkout();
  EXPECT_EQ(a2, a);
  EXPECT_EQ(a2->live_slots(), 0u);
  EXPECT_EQ(a2->num_slots(), 1u);  // slot pooled across the lease boundary
  EXPECT_GE(a2->pooled_floats(), 16u);
  EXPECT_EQ(pool.num_arenas(), 2u);  // no growth on warm re-checkout
}

TEST(WorkspacePoolTest, ConcurrentCheckoutReturnNeverSharesAnArena) {
  WorkspacePool pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::mutex mu;
  std::set<Workspace*> held;
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        WorkspacePool::Lease lease = pool.Acquire();
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!held.insert(lease.get()).second) {
            overlap.store(true);
          }
        }
        // Exercise the arena while held: shapes vary per thread so reuse
        // across threads would be visible as a torn write.
        Matrix* m = lease->NewMatrix(2 + t, 3 + (i % 5));
        m->Fill(static_cast<float>(t));
        EXPECT_EQ(m->At(0, 0), static_cast<float>(t));
        {
          std::lock_guard<std::mutex> lock(mu);
          held.erase(lease.get());
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_FALSE(overlap.load()) << "two threads held the same arena at once";
  EXPECT_LE(pool.num_arenas(), static_cast<size_t>(kThreads));
  EXPECT_EQ(pool.num_free(), pool.num_arenas());  // every lease returned
}

TEST(WorkspacePoolTest, ExceptionInChunkBodyReturnsEveryLease) {
  WorkspacePool pool;
  ThreadPool threads(4);
  EXPECT_THROW(
      threads.ParallelForWithScratch(pool, 0, 64, 4,
                                     [&](Workspace* scratch, int64_t b, int64_t) {
                                       scratch->NewMatrix(2, 2);
                                       if (b >= 32) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
      std::runtime_error);
  EXPECT_GT(pool.num_arenas(), 0u);
  EXPECT_EQ(pool.num_free(), pool.num_arenas())
      << "a lease leaked through the exception unwind";
}

TEST(WorkspacePoolTest, NestedLeasesUnderParallelForDoNotDeadlock) {
  // The serving composition: an outer region (worker-level) whose chunks hold
  // a lease while running a nested ParallelForWithScratch (intra-request).
  // The nested region runs inline and leases more arenas from the same pool;
  // grow-on-demand checkout means this can never block.
  WorkspacePool pool;
  ThreadPool threads(4);
  std::atomic<int64_t> sum{0};
  threads.ParallelFor(0, 16, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      WorkspacePool::Lease outer = pool.Acquire();
      outer->NewMatrix(4, 4);
      threads.ParallelForWithScratch(pool, 0, 8, 2,
                                     [&](Workspace* scratch, int64_t b, int64_t e) {
                                       scratch->NewMatrix(2, 2);
                                       sum.fetch_add(e - b);
                                     });
    }
  });
  EXPECT_EQ(sum.load(), 16 * 8);
  EXPECT_EQ(pool.num_free(), pool.num_arenas());
}

// ---- ParallelForWithScratch ------------------------------------------------

TEST(ParallelForWithScratchTest, CoversRangeOnceWithPrivatePerChunkScratch) {
  WorkspacePool pool;
  ThreadPool threads(4);
  constexpr int kN = 1000;
  constexpr int64_t kGrain = 37;
  std::vector<std::atomic<int>> touched(kN);
  for (auto& t : touched) {
    t.store(0);
  }
  std::mutex mu;
  std::set<Workspace*> scratch_by_chunk;
  int chunks = 0;
  threads.ParallelForWithScratch(pool, 0, kN, kGrain,
                                 [&](Workspace* scratch, int64_t b, int64_t e) {
                                   ASSERT_NE(scratch, nullptr);
                                   for (int64_t i = b; i < e; ++i) {
                                     touched[static_cast<size_t>(i)].fetch_add(1);
                                   }
                                   std::lock_guard<std::mutex> lock(mu);
                                   scratch_by_chunk.insert(scratch);
                                   ++chunks;
                                 });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
  // Chunk j always gets lease j: as many distinct arenas as chunks ran.
  EXPECT_EQ(scratch_by_chunk.size(), static_cast<size_t>(chunks));
  EXPECT_EQ(pool.num_free(), pool.num_arenas());
}

TEST(ParallelForWithScratchTest, InlineRegionsLeaseSingleScratch) {
  // A single-thread pool (and any nested call) is guaranteed to run inline
  // as one chunk — it must not check out leases that can never be used.
  WorkspacePool pool;
  ThreadPool serial(1);
  std::atomic<int64_t> covered{0};
  serial.ParallelForWithScratch(pool, 0, 1000, 10,
                                [&](Workspace* scratch, int64_t b, int64_t e) {
                                  ASSERT_NE(scratch, nullptr);
                                  covered.fetch_add(e - b);
                                });
  EXPECT_EQ(covered.load(), 1000);
  EXPECT_EQ(pool.num_arenas(), 1u);

  // Nested under an outer region: each inner call leases exactly one arena,
  // so the pool tops out at the number of concurrently running outer chunks.
  WorkspacePool nested_pool;
  ThreadPool threads(4);
  threads.ParallelFor(0, 16, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      threads.ParallelForWithScratch(nested_pool, 0, 100, 5,
                                     [&](Workspace*, int64_t, int64_t) {});
    }
  });
  EXPECT_LE(nested_pool.num_arenas(), 4u);
}

TEST(ParallelForWithScratchTest, RaisesGrainToCapTheLeaseTable) {
  WorkspacePool pool;
  ThreadPool threads(2);
  std::atomic<int64_t> covered{0};
  // A grain of 1 over a huge range must not check out one lease per element.
  threads.ParallelForWithScratch(pool, 0, 100000, 1,
                                 [&](Workspace*, int64_t b, int64_t e) {
                                   covered.fetch_add(e - b);
                                 });
  EXPECT_EQ(covered.load(), 100000);
  EXPECT_LE(pool.num_arenas(), static_cast<size_t>(ThreadPool::kMaxScratchChunks));
}

// ---- Thread-count invariance ----------------------------------------------

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, 1.0));
  }
  return m;
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": outputs differ across thread counts";
}

TEST(ThreadInvarianceTest, EncoderForwardInferenceBitwiseAcrossThreadCounts) {
  Rng rng(71);
  // Big enough that the attention block loop actually forks (the flops
  // threshold), with a seq_len that exercises ragged kernel tails.
  TransformerEncoder enc(/*d_model=*/32, /*num_heads=*/4, /*d_ff=*/64, /*num_layers=*/2,
                         &rng);
  const int seq_len = 7;
  const int batch = 48;
  Matrix x = RandomMatrix(batch * seq_len, 32, &rng);
  ForEachIsa([&] {
    Matrix baseline;
    {
      ScopedGlobalPool serial(1);
      baseline = enc.ForwardInference(x, seq_len);
    }
    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ScopedGlobalPool scoped(threads);
      for (int rep = 0; rep < 3; ++rep) {  // chunk->thread mapping varies; results must not
        Matrix y = enc.ForwardInference(x, seq_len);
        ExpectBitwiseEqual(baseline, y, "encoder forward");
      }
    }
  });
}

// One tiny trained predictor shared by the serving-contract tests.
struct TestWorld {
  Dataset ds;
  std::unique_ptr<CdmppPredictor> predictor;
  std::vector<CompactAst> workload;
};

TestWorld& World() {
  static TestWorld* world = [] {
    auto* w = new TestWorld();
    DatasetOptions opts;
    opts.device_ids = {0};
    opts.schedules_per_task = 2;
    opts.max_networks = 4;
    opts.seed = 41;
    w->ds = BuildDataset(opts);

    PredictorConfig cfg;
    cfg.d_model = 16;
    cfg.num_heads = 2;
    cfg.d_ff = 32;
    cfg.num_layers = 1;
    cfg.z_dim = 16;
    cfg.device_embed_dim = 8;
    cfg.device_hidden_dim = 16;
    cfg.decoder_hidden = {16};
    cfg.epochs = 1;
    cfg.seed = 9;
    w->predictor = std::make_unique<CdmppPredictor>(cfg);
    Rng rng(10);
    SplitIndices split = SplitDataset(w->ds, {0}, {}, &rng);
    w->predictor->Pretrain(w->ds, split.train, split.valid);

    Rng srng(11);
    for (const TaskInfo& info : w->ds.tasks) {
      for (int k = 0; k < 2; ++k) {
        w->workload.push_back(
            ExtractCompactAst(GenerateProgram(info.task, SampleSchedule(info.task, &srng))));
      }
    }
    w->predictor->PrepareQuantizedInference();
    for (const CompactAst& ast : w->workload) {
      w->predictor->EnsureQuantizedHead(ast.num_leaves);  // also ensures the fp32 head
    }
    return w;
  }();
  return *world;
}

AstBatchView ViewOf(const TestWorld& w) {
  AstBatchView view;
  for (const CompactAst& ast : w.workload) {
    view.asts.push_back(&ast);
    view.device_ids.push_back(0);
  }
  return view;
}

// The serving contract, acceptance-gated: PredictBatched output is bitwise
// identical across CDMPP_NUM_THREADS in {1, 2, 8} and across batch splits,
// for every precision mode (fp32, the pre-encoder int8-heads subset, and the
// full int8 encoder tier), under both ISAs.
TEST(ThreadInvarianceTest, PredictBatchedBitwiseAcrossThreadCountsFp32AndInt8) {
  TestWorld& w = World();
  AstBatchView view = ViewOf(w);
  for (Precision mode : {Precision::kFp32, Precision::kInt8Heads, Precision::kInt8}) {
    const bool quantized = mode != Precision::kFp32;
    SCOPED_TRACE(PrecisionName(mode));
    ForEachIsa([&] {
      auto predict_batched = [&](std::vector<double>* out) {
        Workspace ws;
        out->assign(view.size(), -1.0);
        if (quantized) {
          w.predictor->PredictBatchedQuantized(view, &ws, out->data(),
                                               /*num_forward_passes=*/nullptr, mode);
        } else {
          w.predictor->PredictBatched(view, &ws, out->data());
        }
      };
      std::vector<double> baseline;
      {
        ScopedGlobalPool serial(1);
        predict_batched(&baseline);
      }
      for (int threads : {2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ScopedGlobalPool scoped(threads);
        std::vector<double> batched;
        for (int rep = 0; rep < 3; ++rep) {
          predict_batched(&batched);
          ASSERT_EQ(batched, baseline) << "thread count changed served predictions";
        }
        // Batch-split invariance under the same multi-thread pool: every AST
        // predicted through its own singleton view must match its row in the
        // full batched view bitwise.
        Workspace single_ws;
        for (size_t i = 0; i < w.workload.size(); ++i) {
          AstBatchView one;
          one.asts = {&w.workload[i]};
          one.device_ids = {0};
          double pred = -1.0;
          if (quantized) {
            w.predictor->PredictBatchedQuantized(one, &single_ws, &pred,
                                                 /*num_forward_passes=*/nullptr, mode);
          } else {
            w.predictor->PredictBatched(one, &single_ws, &pred);
          }
          EXPECT_EQ(baseline[i], pred) << "request " << i;  // bitwise
        }
      }
    });
  }
}

TEST(ThreadInvarianceTest, ServiceUnderIntraRequestThreadsMatchesDirectForward) {
  // Worker-level batching and intra-request parallelism composed end to end:
  // a 2-worker service on a multi-thread pool must neither deadlock (nested
  // pool leases inside the workers' forwards) nor change a single bit of the
  // served predictions.
  TestWorld& w = World();
  AstBatchView view = ViewOf(w);
  std::vector<double> expected(view.size(), -1.0);
  {
    ScopedGlobalPool serial(1);
    Workspace ws;
    w.predictor->PredictBatched(view, &ws, expected.data());
  }
  ScopedGlobalPool scoped(4);
  ServeOptions opts;
  opts.num_workers = 2;
  opts.enable_cache = false;
  opts.precision = Precision::kFp32;
  PredictionService service(w.predictor.get(), opts);
  std::vector<std::future<double>> futures;
  futures.reserve(w.workload.size());
  for (const CompactAst& ast : w.workload) {
    futures.push_back(service.Submit(ast, 0));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), expected[i]) << "request " << i;  // bitwise
  }
}

}  // namespace
}  // namespace cdmpp

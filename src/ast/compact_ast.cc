#include "src/ast/compact_ast.h"

#include <cmath>

#include "src/support/check.h"
#include "src/support/fnv_hash.h"

namespace cdmpp {

namespace {

float Log1p(double x) { return static_cast<float>(std::log1p(std::max(0.0, x))); }

}  // namespace

uint64_t CompactAst::Hash() const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(num_nodes));
  h = FnvMix(h, static_cast<uint64_t>(num_leaves));
  h = FnvMix(h, static_cast<uint64_t>(max_depth));
  for (int v : ordering) {
    h = FnvMix(h, static_cast<uint64_t>(v));
  }
  for (const ComputationVector& cv : leaves) {
    for (float f : cv) {
      h = FnvMixFloat(h, f);
    }
  }
  return h;
}

ComputationVector BuildComputationVector(const LeafContext& leaf) {
  ComputationVector v{};
  const ComputeStmt& c = *leaf.compute;

  v[0] = Log1p(c.ops.adds);
  v[1] = Log1p(c.ops.muls);
  v[2] = Log1p(c.ops.fmas);
  v[3] = Log1p(c.ops.divs);
  v[4] = Log1p(c.ops.specials);
  v[5] = Log1p(c.ops.cmps);
  v[6] = Log1p(c.loads_per_iter);
  v[7] = Log1p(c.stores_per_iter);

  double iters = leaf.Iterations();
  v[8] = Log1p(iters);
  v[9] = static_cast<float>(leaf.loops.size());

  int num_spatial = 0;
  int num_reduction = 0;
  bool vectorized = false;
  double vector_len = 0.0;
  bool unrolled = false;
  bool parallel = false;
  double parallel_extent = 1.0;
  for (const Loop* loop : leaf.loops) {
    if (loop->kind == LoopKind::kSpatial) {
      ++num_spatial;
    } else {
      ++num_reduction;
    }
    switch (loop->annotation) {
      case LoopAnnotation::kVectorize:
        vectorized = true;
        vector_len = static_cast<double>(loop->extent);
        break;
      case LoopAnnotation::kUnroll:
        unrolled = true;
        break;
      case LoopAnnotation::kParallel:
        parallel = true;
        parallel_extent *= static_cast<double>(loop->extent);
        break;
      case LoopAnnotation::kNone:
        break;
    }
  }
  v[10] = static_cast<float>(num_spatial);
  v[11] = static_cast<float>(num_reduction);

  for (int i = 0; i < kMaxLoopSlots; ++i) {
    if (i < static_cast<int>(leaf.loops.size())) {
      v[12 + i] = Log1p(static_cast<double>(leaf.loops[static_cast<size_t>(i)]->extent));
    }
  }
  v[18] = leaf.loops.empty() ? 0.0f
                             : Log1p(static_cast<double>(leaf.loops.back()->extent));
  v[19] = vectorized ? 1.0f : 0.0f;
  v[20] = Log1p(vector_len);
  v[21] = unrolled ? 1.0f : 0.0f;
  v[22] = parallel ? 1.0f : 0.0f;
  v[23] = parallel ? Log1p(parallel_extent) : 0.0f;

  double read_bytes = 0.0;
  double write_bytes = 0.0;
  double stride_counts[3] = {0.0, 0.0, 0.0};
  for (const BufferAccess& a : c.accesses) {
    if (a.is_write) {
      write_bytes += a.footprint_bytes;
    } else {
      read_bytes += a.footprint_bytes;
    }
    if (a.stride_class >= 0 && a.stride_class < 3) {
      stride_counts[a.stride_class] += 1.0;
    }
  }
  v[24] = Log1p(read_bytes);
  v[25] = Log1p(write_bytes);
  double num_accesses = std::max(1.0, static_cast<double>(c.accesses.size()));
  v[26] = static_cast<float>(stride_counts[0] / num_accesses);
  v[27] = static_cast<float>(stride_counts[1] / num_accesses);
  v[28] = static_cast<float>(stride_counts[2] / num_accesses);

  int kind_index = static_cast<int>(c.kind);
  CDMPP_CHECK(kind_index >= 0 && kind_index < 6);
  v[29 + kind_index] = 1.0f;

  v[35] = num_reduction > 0 ? 1.0f : 0.0f;

  double leaf_flops = iters * c.ops.TotalFlops();
  double bytes_moved = iters * (c.loads_per_iter + c.stores_per_iter) * 4.0;
  v[36] = Log1p(leaf_flops);
  v[37] = bytes_moved > 0.0 ? Log1p(leaf_flops / bytes_moved) : 0.0f;
  return v;
}

CompactAst ExtractCompactAst(const TensorProgram& prog) {
  CDMPP_CHECK(prog.root != nullptr);
  CompactAst ast;
  ast.num_nodes = CountNodes(*prog.root);
  ast.num_leaves = CountLeaves(*prog.root);
  ast.max_depth = MaxDepth(*prog.root);

  std::vector<LeafContext> leaves = CollectLeaves(*prog.root);
  CDMPP_CHECK(static_cast<int>(leaves.size()) == ast.num_leaves);
  ast.leaves.reserve(leaves.size());
  ast.ordering.reserve(leaves.size());
  for (const LeafContext& leaf : leaves) {
    ast.leaves.push_back(BuildComputationVector(leaf));
    ast.ordering.push_back(leaf.preorder_index);
  }
  return ast;
}

ComputationVector PositionalEncoding(int ordering_value, double theta) {
  ComputationVector pe{};
  double v = static_cast<double>(ordering_value);
  for (int d = 0; d * 2 < kFeatDim; ++d) {
    double freq = std::pow(theta, 2.0 * d / static_cast<double>(kFeatDim));
    pe[2 * d] = static_cast<float>(std::sin(v / freq));
    if (2 * d + 1 < kFeatDim) {
      pe[2 * d + 1] = static_cast<float>(std::cos(v / freq));
    }
  }
  return pe;
}

std::vector<float> EncodeFeatures(const CompactAst& ast, bool use_pe, double theta) {
  std::vector<float> out(static_cast<size_t>(ast.num_leaves) * kFeatDim);
  for (int i = 0; i < ast.num_leaves; ++i) {
    const ComputationVector& cv = ast.leaves[static_cast<size_t>(i)];
    ComputationVector pe{};
    if (use_pe) {
      pe = PositionalEncoding(ast.ordering[static_cast<size_t>(i)], theta);
    }
    for (int j = 0; j < kFeatDim; ++j) {
      out[static_cast<size_t>(i) * kFeatDim + static_cast<size_t>(j)] =
          cv[static_cast<size_t>(j)] + pe[static_cast<size_t>(j)];
    }
  }
  return out;
}

std::vector<float> AggregateFeatures(const CompactAst& ast) {
  std::vector<float> out(kFeatDim + 2, 0.0f);
  for (const ComputationVector& cv : ast.leaves) {
    for (int j = 0; j < kFeatDim; ++j) {
      out[static_cast<size_t>(j)] += cv[static_cast<size_t>(j)];
    }
  }
  if (ast.num_leaves > 0) {
    for (int j = 0; j < kFeatDim; ++j) {
      out[static_cast<size_t>(j)] /= static_cast<float>(ast.num_leaves);
    }
  }
  out[kFeatDim] = static_cast<float>(ast.num_leaves);
  out[kFeatDim + 1] = static_cast<float>(ast.num_nodes);
  return out;
}

}  // namespace cdmpp

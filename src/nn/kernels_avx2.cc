// Hand-written AVX2 microkernel bodies for the GEMM layer. This translation
// unit is compiled with `-mavx2 -mfma -ffp-contract=off` and is only entered
// when ActiveKernelIsa() == KernelIsa::kAvx2 (see src/support/cpu_features.h).
//
// All three variants vectorize 8-wide across n (the output-column dimension):
// one ymm lane == one C element, and each lane accumulates its k products in
// ascending p order via one FMA per step. Per-element accumulation order is
// therefore independent of the batch size and the row-panel partition, so
// within this ISA results are bitwise run-to-run deterministic and
// batch-size-invariant (the PredictBatched == PredictAst serve contract).
// Versus the scalar bodies the FMA rounds each step once instead of twice,
// so scalar and AVX2 agree to ~1e-6 relative rather than bitwise — the
// deliberate cross-ISA relaxation that buys the >= 2x per-core win (a
// non-FMA AVX2 kernel peaks at exactly 2x the scalar path's SSE
// auto-vectorization and delivers less). kernels_test pins both properties:
// bitwise invariance per ISA, tolerance agreement across ISAs.
//
// NN/TN stream B rows with unit stride, so the 8-lane column group falls out
// of a plain vector load. NT's B is stored [n, k]; the inner kernel loads an
// 8x8 block of B and transposes it in registers, which keeps the per-lane
// accumulation in ascending p order without gather instructions.
//
// The int8-quantized panel (GemmQ8PanelAvx2 at the bottom) is different in
// kind: integer accumulation is exact, so it needs no accumulation-order
// contract at all — it is bitwise identical to the scalar body and across
// partitions by construction. See the comment block above TileQ8x16.
#ifdef CDMPP_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include <cstdint>
#include <cstring>

#include "src/nn/kernels_internal.h"

namespace cdmpp {
namespace kernels {
namespace detail {
namespace {

// Rows of A processed per register tile: 4 accumulator ymms + one B vector
// stay well inside the 16 architectural registers, and 8 vector ALU ops per
// loaded B vector saturate both multiply/add ports.
constexpr int kMr = 4;

// Lane mask selecting the low `lanes` (1..7) of a ymm; maskload/maskstore
// with it never touch memory past the logical row end.
inline __m256i TailMask(int lanes) {
  alignas(32) static const int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                     0,  0,  0,  0,  0,  0,  0,  0};
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMaskTable + 8 - lanes));
}

// C[i..i+R) x [j..j+8) (or the masked low lanes when Partial) of
// C = beta*C + op(A)·B with the optional fused bias/activation epilogue.
// TA selects the A indexing: false reads a[(i+r)*lda + p] (NN), true reads
// a[p*lda + i+r] (TN, A stored [k, m]).
template <int R, bool TA, bool Partial>
void Tile8(int64_t i, int j, __m256i mask, int k, const float* a, int lda, const float* b,
           int ldb, float beta, const float* bias, Activation act, float* c, int ldc) {
  const auto Load = [mask](const float* p) {
    if constexpr (Partial) {
      return _mm256_maskload_ps(p, mask);
    } else {
      (void)mask;
      return _mm256_loadu_ps(p);
    }
  };
  __m256 acc[R];
  if (beta == 0.0f) {
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm256_setzero_ps();
    }
  } else {
    const __m256 bv = _mm256_set1_ps(beta);
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm256_mul_ps(bv, Load(c + (i + r) * ldc + j));
    }
  }
  for (int p = 0; p < k; ++p) {
    const __m256 brow = Load(b + static_cast<int64_t>(p) * ldb + j);
    for (int r = 0; r < R; ++r) {
      const float av = TA ? a[static_cast<int64_t>(p) * lda + i + r] : a[(i + r) * lda + p];
      acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(av), brow, acc[r]);
    }
  }
  if (bias != nullptr) {
    const __m256 bias_v = Load(bias + j);
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm256_add_ps(acc[r], bias_v);
    }
  }
  if (act == Activation::kRelu) {
    const __m256 zero = _mm256_setzero_ps();
    for (int r = 0; r < R; ++r) {
      // max(v, +0) maps -0 and NaN to +0, matching scalar (v > 0 ? v : 0).
      acc[r] = _mm256_max_ps(acc[r], zero);
    }
  }
  for (int r = 0; r < R; ++r) {
    if constexpr (Partial) {
      _mm256_maskstore_ps(c + (i + r) * ldc + j, mask, acc[r]);
    } else {
      _mm256_storeu_ps(c + (i + r) * ldc + j, acc[r]);
    }
  }
}

// C[i..i+R) x [j..j+16): the main-body tile. Two ymm column groups per row
// give R*2 accumulator chains — with R = 4 that is 8 independent FMA chains
// across the two FMA ports, enough to hide the FMA latency that a single
// 8-wide group cannot (one group is latency-bound at half throughput).
template <int R, bool TA>
void Tile16(int64_t i, int j, int k, const float* a, int lda, const float* b, int ldb,
            float beta, const float* bias, Activation act, float* c, int ldc) {
  __m256 acc[R][2];
  if (beta == 0.0f) {
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    }
  } else {
    const __m256 bv = _mm256_set1_ps(beta);
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_mul_ps(bv, _mm256_loadu_ps(c + (i + r) * ldc + j));
      acc[r][1] = _mm256_mul_ps(bv, _mm256_loadu_ps(c + (i + r) * ldc + j + 8));
    }
  }
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<int64_t>(p) * ldb + j;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < R; ++r) {
      const float av = TA ? a[static_cast<int64_t>(p) * lda + i + r] : a[(i + r) * lda + p];
      const __m256 avv = _mm256_set1_ps(av);
      acc[r][0] = _mm256_fmadd_ps(avv, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(avv, b1, acc[r][1]);
    }
  }
  if (bias != nullptr) {
    const __m256 bias0 = _mm256_loadu_ps(bias + j);
    const __m256 bias1 = _mm256_loadu_ps(bias + j + 8);
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_add_ps(acc[r][0], bias0);
      acc[r][1] = _mm256_add_ps(acc[r][1], bias1);
    }
  }
  if (act == Activation::kRelu) {
    const __m256 zero = _mm256_setzero_ps();
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_max_ps(acc[r][0], zero);
      acc[r][1] = _mm256_max_ps(acc[r][1], zero);
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm256_storeu_ps(c + (i + r) * ldc + j, acc[r][0]);
    _mm256_storeu_ps(c + (i + r) * ldc + j + 8, acc[r][1]);
  }
}

// Shared NN/TN panel driver: 16-wide column groups for the main body (the B
// panel for one group is k x 16 floats, L1-resident across the whole row
// panel), an 8-wide group and a masked tail for the column remainder, and
// kMr-row tiles with single-row remainder.
template <bool TA>
void GemmPanelAvx2(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                   const float* b, int ldb, float beta, const float* bias, Activation act,
                   float* c, int ldc) {
  const __m256i no_mask = _mm256_setzero_si256();
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      Tile16<kMr, TA>(i, j, k, a, lda, b, ldb, beta, bias, act, c, ldc);
    }
    for (; i < i1; ++i) {
      Tile16<1, TA>(i, j, k, a, lda, b, ldb, beta, bias, act, c, ldc);
    }
  }
  if (j + 8 <= n) {
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      Tile8<kMr, TA, false>(i, j, no_mask, k, a, lda, b, ldb, beta, bias, act, c, ldc);
    }
    for (; i < i1; ++i) {
      Tile8<1, TA, false>(i, j, no_mask, k, a, lda, b, ldb, beta, bias, act, c, ldc);
    }
    j += 8;
  }
  if (j < n) {
    const __m256i mask = TailMask(n - j);
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      Tile8<kMr, TA, true>(i, j, mask, k, a, lda, b, ldb, beta, bias, act, c, ldc);
    }
    for (; i < i1; ++i) {
      Tile8<1, TA, true>(i, j, mask, k, a, lda, b, ldb, beta, bias, act, c, ldc);
    }
  }
}

// Standard in-register 8x8 float transpose: t[pp] lane l becomes the input
// t[l] lane pp.
inline void Transpose8x8(__m256 t[8]) {
  const __m256 u0 = _mm256_unpacklo_ps(t[0], t[1]);
  const __m256 u1 = _mm256_unpackhi_ps(t[0], t[1]);
  const __m256 u2 = _mm256_unpacklo_ps(t[2], t[3]);
  const __m256 u3 = _mm256_unpackhi_ps(t[2], t[3]);
  const __m256 u4 = _mm256_unpacklo_ps(t[4], t[5]);
  const __m256 u5 = _mm256_unpackhi_ps(t[4], t[5]);
  const __m256 u6 = _mm256_unpacklo_ps(t[6], t[7]);
  const __m256 u7 = _mm256_unpackhi_ps(t[6], t[7]);
  const __m256 v0 = _mm256_shuffle_ps(u0, u2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 v1 = _mm256_shuffle_ps(u0, u2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 v2 = _mm256_shuffle_ps(u1, u3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 v3 = _mm256_shuffle_ps(u1, u3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 v4 = _mm256_shuffle_ps(u4, u6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 v5 = _mm256_shuffle_ps(u4, u6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 v6 = _mm256_shuffle_ps(u5, u7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 v7 = _mm256_shuffle_ps(u5, u7, _MM_SHUFFLE(3, 2, 3, 2));
  t[0] = _mm256_permute2f128_ps(v0, v4, 0x20);
  t[1] = _mm256_permute2f128_ps(v1, v5, 0x20);
  t[2] = _mm256_permute2f128_ps(v2, v6, 0x20);
  t[3] = _mm256_permute2f128_ps(v3, v7, 0x20);
  t[4] = _mm256_permute2f128_ps(v0, v4, 0x31);
  t[5] = _mm256_permute2f128_ps(v1, v5, 0x31);
  t[6] = _mm256_permute2f128_ps(v2, v6, 0x31);
  t[7] = _mm256_permute2f128_ps(v3, v7, 0x31);
}

// C[i..i+R) x [j..j+8) of C = beta*C + A·Bᵀ, B stored [n, k]. Lane l of the
// accumulator is the dot product over row b[j+l]; 8x8 blocks of B are
// transposed in registers so each p step is one broadcast FMA, in ascending
// p order. Mirrors the scalar NT structure: the product sum starts from 0
// and fl(beta*c) is added at the end.
template <int R>
void TileNT8(int64_t i, int j, int k, const float* a, int lda, const float* b, int ldb,
             float beta, float* c, int ldc) {
  __m256 acc[R];
  for (int r = 0; r < R; ++r) {
    acc[r] = _mm256_setzero_ps();
  }
  int p = 0;
  for (; p + 8 <= k; p += 8) {
    __m256 t[8];
    for (int l = 0; l < 8; ++l) {
      t[l] = _mm256_loadu_ps(b + static_cast<int64_t>(j + l) * ldb + p);
    }
    Transpose8x8(t);
    for (int pp = 0; pp < 8; ++pp) {
      for (int r = 0; r < R; ++r) {
        const __m256 av = _mm256_set1_ps(a[(i + r) * lda + p + pp]);
        acc[r] = _mm256_fmadd_ps(av, t[pp], acc[r]);
      }
    }
  }
  for (; p < k; ++p) {
    const __m256 bv = _mm256_set_ps(
        b[static_cast<int64_t>(j + 7) * ldb + p], b[static_cast<int64_t>(j + 6) * ldb + p],
        b[static_cast<int64_t>(j + 5) * ldb + p], b[static_cast<int64_t>(j + 4) * ldb + p],
        b[static_cast<int64_t>(j + 3) * ldb + p], b[static_cast<int64_t>(j + 2) * ldb + p],
        b[static_cast<int64_t>(j + 1) * ldb + p], b[static_cast<int64_t>(j + 0) * ldb + p]);
    for (int r = 0; r < R; ++r) {
      const __m256 av = _mm256_set1_ps(a[(i + r) * lda + p]);
      acc[r] = _mm256_fmadd_ps(av, bv, acc[r]);
    }
  }
  for (int r = 0; r < R; ++r) {
    __m256 res = acc[r];
    if (beta != 0.0f) {
      const __m256 prior = _mm256_loadu_ps(c + (i + r) * ldc + j);
      res = _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(beta), prior), acc[r]);
    }
    _mm256_storeu_ps(c + (i + r) * ldc + j, res);
  }
}

// ---- Int8-quantized panel (vpmaddwd). --------------------------------------
//
// B is pre-packed [k2][n][2]: the (2p2, 2p2+1) reduction pair of output
// channel j occupies one 32-bit unit, so one _mm256_madd_epi16 against a
// broadcast A pair accumulates 2 reduction steps for 8 channels — 16 exact
// i16 multiplies per instruction, which is what beats the fp32 FMA kernels
// ~2x. Integer adds are associative, so no accumulation-order contract is
// needed: results are bitwise identical across ISAs and partitions. The
// dequant epilogue uses cvtdq2ps + mul + add (+ max for ReLU) — elementwise
// the same separately-rounded operations as the scalar epilogue, keeping the
// float output bitwise too.

// Main-body quantized tile: rows [i, i+R) x channels [j, j+16). Two column
// groups per row give R*2 accumulator chains — with R = 4 that is 8
// independent vpmaddwd chains, hiding the multiply latency the same way the
// fp32 Tile16 hides FMA latency.
template <int R>
void TileQ8x16(int64_t i, int j, int n, int k2, const int16_t* a, int lda, const int16_t* b,
               const Q8Epilogue* ep, int32_t* c32, float* cf, int ldc) {
  __m256i acc[R][2];
  for (int r = 0; r < R; ++r) {
    acc[r][0] = _mm256_setzero_si256();
    acc[r][1] = _mm256_setzero_si256();
  }
  for (int p2 = 0; p2 < k2; ++p2) {
    const int16_t* brow = b + (static_cast<int64_t>(p2) * n + j) * 2;
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow));
    const __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + 16));
    for (int r = 0; r < R; ++r) {
      int32_t pair;  // memcpy: the i16 row is only 2-byte aligned
      std::memcpy(&pair, a + (i + r) * lda + 2 * p2, sizeof(pair));
      const __m256i ap = _mm256_set1_epi32(pair);
      acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(ap, b0));
      acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(ap, b1));
    }
  }
  if (ep == nullptr) {
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(c32 + (i + r) * ldc + j), acc[r][0]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(c32 + (i + r) * ldc + j + 8), acc[r][1]);
    }
    return;
  }
  const __m256 bs0 = _mm256_loadu_ps(ep->b_scales + j);
  const __m256 bs1 = _mm256_loadu_ps(ep->b_scales + j + 8);
  __m256 bias0 = _mm256_setzero_ps();
  __m256 bias1 = _mm256_setzero_ps();
  if (ep->bias != nullptr) {
    bias0 = _mm256_loadu_ps(ep->bias + j);
    bias1 = _mm256_loadu_ps(ep->bias + j + 8);
  }
  const __m256 zero = _mm256_setzero_ps();
  for (int r = 0; r < R; ++r) {
    const __m256 as = _mm256_set1_ps(ep->a_scales[i + r]);
    // mul then add, never FMA: bitwise-matches the scalar epilogue.
    __m256 v0 = _mm256_mul_ps(_mm256_cvtepi32_ps(acc[r][0]), _mm256_mul_ps(as, bs0));
    __m256 v1 = _mm256_mul_ps(_mm256_cvtepi32_ps(acc[r][1]), _mm256_mul_ps(as, bs1));
    if (ep->bias != nullptr) {
      v0 = _mm256_add_ps(v0, bias0);
      v1 = _mm256_add_ps(v1, bias1);
    }
    if (ep->act == Activation::kRelu) {
      v0 = _mm256_max_ps(v0, zero);
      v1 = _mm256_max_ps(v1, zero);
    }
    _mm256_storeu_ps(cf + (i + r) * ldc + j, v0);
    _mm256_storeu_ps(cf + (i + r) * ldc + j + 8, v1);
  }
}

// One quantized register tile: rows [i, i+R) x channels [j, j+8) (masked to
// the low `lanes` channels when Partial). Accumulates over all k2 pairs.
template <int R, bool Partial>
void TileQ8(int64_t i, int j, __m256i mask, int n, int k2, const int16_t* a, int lda,
            const int16_t* b, const Q8Epilogue* ep, int32_t* c32, float* cf, int ldc) {
  const auto LoadB = [mask](const int16_t* p) {
    // One 32-bit unit per output channel, so channel masking is i32 masking.
    if constexpr (Partial) {
      return _mm256_maskload_epi32(reinterpret_cast<const int*>(p), mask);
    } else {
      (void)mask;
      return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    }
  };
  __m256i acc[R];
  for (int r = 0; r < R; ++r) {
    acc[r] = _mm256_setzero_si256();
  }
  for (int p2 = 0; p2 < k2; ++p2) {
    const __m256i bv = LoadB(b + (static_cast<int64_t>(p2) * n + j) * 2);
    for (int r = 0; r < R; ++r) {
      int32_t pair;  // memcpy: the i16 row is only 2-byte aligned
      std::memcpy(&pair, a + (i + r) * lda + 2 * p2, sizeof(pair));
      const __m256i ap = _mm256_set1_epi32(pair);
      acc[r] = _mm256_add_epi32(acc[r], _mm256_madd_epi16(ap, bv));
    }
  }
  if (ep == nullptr) {
    for (int r = 0; r < R; ++r) {
      if constexpr (Partial) {
        _mm256_maskstore_epi32(c32 + (i + r) * ldc + j, mask, acc[r]);
      } else {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c32 + (i + r) * ldc + j), acc[r]);
      }
    }
    return;
  }
  const __m256 bscale = Partial ? _mm256_maskload_ps(ep->b_scales + j, mask)
                                : _mm256_loadu_ps(ep->b_scales + j);
  __m256 biasv = _mm256_setzero_ps();
  if (ep->bias != nullptr) {
    biasv = Partial ? _mm256_maskload_ps(ep->bias + j, mask) : _mm256_loadu_ps(ep->bias + j);
  }
  const __m256 zero = _mm256_setzero_ps();
  for (int r = 0; r < R; ++r) {
    const __m256 cs = _mm256_mul_ps(_mm256_set1_ps(ep->a_scales[i + r]), bscale);
    // mul then add, never FMA: bitwise-matches the scalar epilogue.
    __m256 v = _mm256_mul_ps(_mm256_cvtepi32_ps(acc[r]), cs);
    if (ep->bias != nullptr) {
      v = _mm256_add_ps(v, biasv);
    }
    if (ep->act == Activation::kRelu) {
      v = _mm256_max_ps(v, zero);
    }
    if constexpr (Partial) {
      _mm256_maskstore_ps(cf + (i + r) * ldc + j, mask, v);
    } else {
      _mm256_storeu_ps(cf + (i + r) * ldc + j, v);
    }
  }
}

}  // namespace

void GemmNNPanelAvx2(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                     const float* b, int ldb, float beta, const float* bias,
                     Activation act, float* c, int ldc) {
  GemmPanelAvx2<false>(i0, i1, n, k, a, lda, b, ldb, beta, bias, act, c, ldc);
}

void GemmTNPanelAvx2(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                     const float* b, int ldb, float beta, float* c, int ldc) {
  GemmPanelAvx2<true>(i0, i1, n, k, a, lda, b, ldb, beta, nullptr, Activation::kNone, c, ldc);
}

void GemmNTPanelAvx2(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                     const float* b, int ldb, float beta, float* c, int ldc) {
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      TileNT8<kMr>(i, j, k, a, lda, b, ldb, beta, c, ldc);
    }
    for (; i < i1; ++i) {
      TileNT8<1>(i, j, k, a, lda, b, ldb, beta, c, ldc);
    }
  }
  // Column tail: the shared scalar dot. Which path a column takes depends
  // only on (j, n), never on the batch size or row partition, so per-element
  // determinism and batch invariance hold across the vector/tail seam.
  for (; j < n; ++j) {
    const float* brow = b + static_cast<int64_t>(j) * ldb;
    for (int64_t i = i0; i < i1; ++i) {
      float* cp = c + i * ldc + j;
      *cp = GemmNTDotTail(a + i * lda, brow, k, beta, *cp);
    }
  }
}

// ---- Row quantization (the activation half of the int8 tier). --------------
//
// The serving profile showed the scalar two-pass quantizer costing more than
// the int8 GEMM saves at the encoder's k = 64 shapes, so the quantize pass
// itself is vectorized. Bitwise identity with the scalar body (see the
// declaration comment in kernels_internal.h) is load-bearing: it is what lets
// this kernel dispatch per-ISA without splitting the quantized tier's
// cross-ISA bitwise contract.

// |v| by clearing the sign bit — exactly std::abs on every float.
inline __m256 Abs8(__m256 v) { return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v); }

// Max over the 8 lanes. max is order-independent, so the tree reduce equals
// the scalar ascending-p fold bit for bit.
inline float HorizontalMax8(__m256 v) {
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

void QuantizeRowsPanelAvx2(int64_t i0, int64_t i1, int k, const float* x, int ldx,
                           const float* inv_col, float qmax, int16_t* q, int ldq,
                           float* scales) {
  const int k2 = (k + 1) / 2;
  const __m256 vqmax = _mm256_set1_ps(qmax);
  const __m256 vnqmax = _mm256_set1_ps(-qmax);
  for (int64_t i = i0; i < i1; ++i) {
    const float* row = x + i * ldx;
    // Pass 1: row absmax (of the channel-scaled values on the scaled path).
    __m256 vmax = _mm256_setzero_ps();
    float absmax = 0.0f;
    int p = 0;
    if (inv_col != nullptr) {
      for (; p + 8 <= k; p += 8) {
        const __m256 v =
            _mm256_mul_ps(_mm256_loadu_ps(row + p), _mm256_loadu_ps(inv_col + p));
        vmax = _mm256_max_ps(vmax, Abs8(v));
      }
      for (; p < k; ++p) {
        const float v = row[p] * inv_col[p];
        absmax = absmax < (v < 0.0f ? -v : v) ? (v < 0.0f ? -v : v) : absmax;
      }
    } else {
      for (; p + 8 <= k; p += 8) {
        vmax = _mm256_max_ps(vmax, Abs8(_mm256_loadu_ps(row + p)));
      }
      for (; p < k; ++p) {
        const float v = row[p] < 0.0f ? -row[p] : row[p];
        absmax = absmax < v ? v : absmax;
      }
    }
    const float vec_max = HorizontalMax8(vmax);
    absmax = absmax < vec_max ? vec_max : absmax;
    const float scale = absmax > 0.0f ? absmax / qmax : 1.0f;
    scales[i] = scale;
    const float inv_scale = 1.0f / scale;
    const __m256 vinv = _mm256_set1_ps(inv_scale);
    int16_t* qrow = q + i * ldq;
    // Pass 2: scale, clamp, round-to-nearest-even, narrow to i16. cvtps2dq
    // under the default MXCSR rounds exactly like the scalar std::lrintf;
    // values are clamped to +-qmax <= 4095 first, so the i32 -> i16 packs
    // never saturates and lane order is restored by the lo/hi split.
    p = 0;
    for (; p + 8 <= k; p += 8) {
      __m256 v = _mm256_loadu_ps(row + p);
      if (inv_col != nullptr) {
        v = _mm256_mul_ps(v, _mm256_loadu_ps(inv_col + p));
      }
      v = _mm256_mul_ps(v, vinv);
      v = _mm256_min_ps(_mm256_max_ps(v, vnqmax), vqmax);
      const __m256i iv = _mm256_cvtps_epi32(v);
      const __m128i packed =
          _mm_packs_epi32(_mm256_castsi256_si128(iv), _mm256_extracti128_si256(iv, 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(qrow + p), packed);
    }
    for (; p < k; ++p) {
      float scaled = (inv_col != nullptr ? row[p] * inv_col[p] : row[p]) * inv_scale;
      if (scaled > qmax) {
        scaled = qmax;
      } else if (scaled < -qmax) {
        scaled = -qmax;
      }
      qrow[p] = static_cast<int16_t>(_mm_cvtss_si32(_mm_set_ss(scaled)));
    }
    for (int pp = k; pp < 2 * k2; ++pp) {
      qrow[pp] = 0;  // pad pair: contributes exactly zero to the reduction
    }
  }
}

void GemmQ8PanelAvx2(int64_t i0, int64_t i1, int n, int k2, const int16_t* a, int lda,
                     const int16_t* b, const Q8Epilogue* ep, int32_t* c32, float* cf,
                     int ldc) {
  const __m256i no_mask = _mm256_setzero_si256();
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      TileQ8x16<kMr>(i, j, n, k2, a, lda, b, ep, c32, cf, ldc);
    }
    for (; i < i1; ++i) {
      TileQ8x16<1>(i, j, n, k2, a, lda, b, ep, c32, cf, ldc);
    }
  }
  if (j + 8 <= n) {
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      TileQ8<kMr, false>(i, j, no_mask, n, k2, a, lda, b, ep, c32, cf, ldc);
    }
    for (; i < i1; ++i) {
      TileQ8<1, false>(i, j, no_mask, n, k2, a, lda, b, ep, c32, cf, ldc);
    }
    j += 8;
  }
  if (j < n) {
    const __m256i mask = TailMask(n - j);
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      TileQ8<kMr, true>(i, j, mask, n, k2, a, lda, b, ep, c32, cf, ldc);
    }
    for (; i < i1; ++i) {
      TileQ8<1, true>(i, j, mask, n, k2, a, lda, b, ep, c32, cf, ldc);
    }
  }
}

}  // namespace detail
}  // namespace kernels
}  // namespace cdmpp

#endif  // CDMPP_HAVE_AVX2_KERNELS

// Minimal streaming JSON writer for the machine-readable bench artifacts
// (BENCH_*.json). The bench binaries used to hand-roll fprintf JSON per
// file; this centralizes escaping, comma placement, and number formatting so
// every emitter produces parseable output by construction.
//
// Usage is push-based and always well-formed as long as Begin*/End* pair up
// (CHECKed at End/str time):
//
//   JsonWriter w;
//   w.BeginObject();
//     w.Key("qps"); w.Double(12345.6);
//     w.Key("series"); w.BeginArray();
//       w.Int(1); w.Int(2);
//     w.EndArray();
//   w.EndObject();
//   w.WriteFile("BENCH_foo.json");
//
// Not a serialization framework: no reflection, no parsing, just the exact
// output shape the bench tier needs (2-space indent, "%.10g" doubles,
// non-finite doubles clamped to 0.0 so downstream json.load never sees NaN).
#ifndef SRC_SUPPORT_JSON_WRITER_H_
#define SRC_SUPPORT_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cdmpp {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Must be called between values inside an object, before each value.
  void Key(const std::string& key);

  void String(const std::string& value);
  void Bool(bool value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);

  // Embeds a pre-rendered JSON value verbatim (e.g. MetricsRegistry::DumpJson
  // output). The caller vouches for its validity.
  void RawValue(const std::string& json);

  // The finished document. CHECKs that every Begin* was closed.
  std::string str() const;
  // str() + trailing newline written to `path`; CHECK-fails if the file
  // cannot be opened.
  void WriteFile(const std::string& path) const;

 private:
  struct Frame {
    char type = '\0';  // '{' or '['
    int count = 0;     // values emitted so far (comma placement)
    bool key_pending = false;
  };

  void BeforeValue();
  void Indent();
  void AppendEscaped(const std::string& s);

  std::string out_;
  std::vector<Frame> stack_;
  bool done_ = false;
};

}  // namespace cdmpp

#endif  // SRC_SUPPORT_JSON_WRITER_H_

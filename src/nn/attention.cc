#include "src/nn/attention.h"

#include <cmath>

namespace cdmpp {

namespace {

// Copies the [seq_len, d_head] block for (sample, head) out of a packed
// [batch * seq_len, d_model] matrix.
Matrix ExtractBlock(const Matrix& packed, int sample, int head, int seq_len, int d_head) {
  Matrix out(seq_len, d_head);
  for (int t = 0; t < seq_len; ++t) {
    const float* src = packed.Row(sample * seq_len + t) + head * d_head;
    float* dst = out.Row(t);
    for (int j = 0; j < d_head; ++j) {
      dst[j] = src[j];
    }
  }
  return out;
}

// Adds a [seq_len, d_head] block back into the packed layout.
void AccumulateBlock(Matrix* packed, const Matrix& block, int sample, int head, int seq_len,
                     int d_head) {
  for (int t = 0; t < seq_len; ++t) {
    float* dst = packed->Row(sample * seq_len + t) + head * d_head;
    const float* src = block.Row(t);
    for (int j = 0; j < d_head; ++j) {
      dst[j] += src[j];
    }
  }
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(int d_model, int num_heads, Rng* rng)
    : d_model_(d_model), num_heads_(num_heads), d_head_(d_model / num_heads) {
  CDMPP_CHECK(d_model % num_heads == 0);
  wq_ = std::make_unique<Linear>(d_model, d_model, rng);
  wk_ = std::make_unique<Linear>(d_model, d_model, rng);
  wv_ = std::make_unique<Linear>(d_model, d_model, rng);
  wo_ = std::make_unique<Linear>(d_model, d_model, rng);
}

Matrix MultiHeadSelfAttention::Forward(const Matrix& x, int seq_len) {
  CDMPP_CHECK(seq_len > 0);
  CDMPP_CHECK(x.rows() % seq_len == 0);
  CDMPP_CHECK(x.cols() == d_model_);
  cached_seq_len_ = seq_len;
  cached_batch_ = x.rows() / seq_len;

  cached_q_ = wq_->Forward(x);
  cached_k_ = wk_->Forward(x);
  cached_v_ = wv_->Forward(x);

  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  Matrix context(x.rows(), d_model_);
  cached_attn_.assign(static_cast<size_t>(cached_batch_) * num_heads_, Matrix());
  for (int b = 0; b < cached_batch_; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      Matrix q = ExtractBlock(cached_q_, b, h, seq_len, d_head_);
      Matrix k = ExtractBlock(cached_k_, b, h, seq_len, d_head_);
      Matrix v = ExtractBlock(cached_v_, b, h, seq_len, d_head_);
      Matrix scores = MatMulTransB(q, k);
      scores.Scale(scale);
      SoftmaxRows(&scores);
      Matrix out = MatMul(scores, v);
      AccumulateBlock(&context, out, b, h, seq_len, d_head_);
      cached_attn_[static_cast<size_t>(b) * num_heads_ + h] = std::move(scores);
    }
  }
  return wo_->Forward(context);
}

Matrix MultiHeadSelfAttention::ForwardInference(const Matrix& x, int seq_len) const {
  // True wrapper over the arena path: one attention-inference implementation
  // to keep bitwise-consistent (see src/nn/layers.h).
  Workspace ws;
  return *ForwardInference(x, seq_len, &ws);
}

Matrix* MultiHeadSelfAttention::ForwardInference(const Matrix& x, int seq_len,
                                                 Workspace* ws) const {
  CDMPP_CHECK(seq_len > 0);
  CDMPP_CHECK(x.rows() % seq_len == 0);
  CDMPP_CHECK(x.cols() == d_model_);
  const int batch = x.rows() / seq_len;

  Matrix* q_all = wq_->ForwardInference(x, ws);
  Matrix* k_all = wk_->ForwardInference(x, ws);
  Matrix* v_all = wv_->ForwardInference(x, ws);

  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  // Every (sample, head) writes its own disjoint [seq_len, d_head] block of
  // `context`, so no zero-fill or accumulation is needed.
  Matrix* context = ws->NewMatrix(x.rows(), d_model_);
  Matrix* scores = ws->NewMatrix(seq_len, seq_len);
  for (int b = 0; b < batch; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      const float* q = q_all->Row(b * seq_len) + h * d_head_;
      const float* k = k_all->Row(b * seq_len) + h * d_head_;
      const float* v = v_all->Row(b * seq_len) + h * d_head_;
      float* ctx = context->Row(b * seq_len) + h * d_head_;
      // scores = Q·Kᵀ directly on the packed layout (lda/ldb = d_model).
      kernels::GemmNT(seq_len, seq_len, d_head_, q, d_model_, k, d_model_, /*beta=*/0.0f,
                      scores->data(), seq_len);
      scores->Scale(scale);
      SoftmaxRows(scores);
      // context block = softmax(scores)·V, written in place.
      kernels::GemmNN(seq_len, d_head_, seq_len, scores->data(), seq_len, v, d_model_,
                      /*beta=*/0.0f, ctx, d_model_);
    }
  }
  return wo_->ForwardInference(*context, ws);
}

Matrix MultiHeadSelfAttention::Backward(const Matrix& dy) {
  const int seq_len = cached_seq_len_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));

  Matrix dcontext = wo_->Backward(dy);
  Matrix dq(dy.rows(), d_model_);
  Matrix dk(dy.rows(), d_model_);
  Matrix dv(dy.rows(), d_model_);

  for (int b = 0; b < cached_batch_; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      const Matrix& attn = cached_attn_[static_cast<size_t>(b) * num_heads_ + h];
      Matrix q = ExtractBlock(cached_q_, b, h, seq_len, d_head_);
      Matrix k = ExtractBlock(cached_k_, b, h, seq_len, d_head_);
      Matrix v = ExtractBlock(cached_v_, b, h, seq_len, d_head_);
      Matrix dout = ExtractBlock(dcontext, b, h, seq_len, d_head_);

      // out = attn x v.
      Matrix dattn = MatMulTransB(dout, v);
      Matrix dv_block = MatMulTransA(attn, dout);

      // Softmax backward: ds = attn * (dattn - rowsum(dattn * attn)).
      Matrix dscores(seq_len, seq_len);
      for (int i = 0; i < seq_len; ++i) {
        float dot = 0.0f;
        for (int j = 0; j < seq_len; ++j) {
          dot += dattn.At(i, j) * attn.At(i, j);
        }
        for (int j = 0; j < seq_len; ++j) {
          dscores.At(i, j) = attn.At(i, j) * (dattn.At(i, j) - dot);
        }
      }
      dscores.Scale(scale);

      // scores = q x k^T.
      Matrix dq_block = MatMul(dscores, k);
      Matrix dk_block = MatMulTransA(dscores, q);

      AccumulateBlock(&dq, dq_block, b, h, seq_len, d_head_);
      AccumulateBlock(&dk, dk_block, b, h, seq_len, d_head_);
      AccumulateBlock(&dv, dv_block, b, h, seq_len, d_head_);
    }
  }

  Matrix dx = wq_->Backward(dq);
  dx.AddInPlace(wk_->Backward(dk));
  dx.AddInPlace(wv_->Backward(dv));
  return dx;
}

void MultiHeadSelfAttention::CollectParams(std::vector<Param*>* out) {
  wq_->CollectParams(out);
  wk_->CollectParams(out);
  wv_->CollectParams(out);
  wo_->CollectParams(out);
}

}  // namespace cdmpp

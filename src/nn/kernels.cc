// Dispatch layer for the GEMM kernels plus the portable scalar bodies.
//
// The public GemmNN/GemmTN/GemmNT/GemmBiasAct entry points pick a per-ISA
// panel body (scalar here, AVX2 in kernels_avx2.cc) via ActiveKernelIsa(),
// then run it serially or across ParallelFor row panels. Both bodies
// accumulate each element over p ascending, so results are bitwise
// deterministic and batch-size-invariant within an ISA; across ISAs they
// agree to ~1e-6 relative, not bitwise — the AVX2 body fuses each
// multiply-add while this translation unit is pinned to separate mul+add
// roundings via -ffp-contract=off (see src/support/cpu_features.h).
#include "src/nn/kernels.h"

#include <algorithm>
#include <cstdint>

#include "src/nn/kernels_internal.h"
#include "src/obs/metrics.h"
#include "src/support/cpu_features.h"
#include "src/support/parallel_for.h"

namespace cdmpp {
namespace kernels {
namespace {

// Register tile: rows of A processed together so each loaded B row is reused
// kMr times from registers/L1 instead of re-streamed per output row.
constexpr int kMr = 4;
// C/B column block: the accumulator tile (kMr x kNc floats) and the active
// B panel stay resident in L1 while p runs over the full reduction.
constexpr int kNc = 128;

// Row-panel chunk size: the shared ParallelGrain (~4 chunks per thread)
// aligned to the register tile.
int64_t RowGrain(int m) {
  const int64_t grain = ((ParallelGrain(m) + kMr - 1) / kMr) * kMr;
  return std::max<int64_t>(grain, kMr);
}

// Writes one finished accumulator row back to C, applying the optional fused
// bias + activation epilogue.
inline void StoreRow(float* crow, const float* acc, int nc, const float* bias,
                     Activation act) {
  if (bias != nullptr) {
    for (int j = 0; j < nc; ++j) {
      crow[j] = ApplyActivation(acc[j] + bias[j], act);
    }
  } else if (act != Activation::kNone) {
    for (int j = 0; j < nc; ++j) {
      crow[j] = ApplyActivation(acc[j], act);
    }
  } else {
    for (int j = 0; j < nc; ++j) {
      crow[j] = acc[j];
    }
  }
}

inline void InitAccRow(float* acc, const float* crow, int nc, float beta) {
  if (beta == 0.0f) {
    for (int j = 0; j < nc; ++j) {
      acc[j] = 0.0f;
    }
  } else {
    for (int j = 0; j < nc; ++j) {
      acc[j] = beta * crow[j];
    }
  }
}

// Data-plane event counters: every dispatched GEMM bumps a calls counter and
// a flops counter named by precision and the ISA it dispatched to, so a
// metrics snapshot attributes compute volume to the code path that ran it.
// Registry references resolve once (function-local statics, initialized on
// the warm-up pass); each call is then two sharded relaxed adds — invisible
// next to the smallest kernel invocation.
void CountGemm(bool int8, int m, int n, int k) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const calls[2][2] = {
      {&registry.GetCounter("gemm.calls.fp32.scalar"),
       &registry.GetCounter("gemm.calls.fp32.avx2")},
      {&registry.GetCounter("gemm.calls.int8.scalar"),
       &registry.GetCounter("gemm.calls.int8.avx2")},
  };
  static obs::Counter* const flops[2][2] = {
      {&registry.GetCounter("gemm.flops.fp32.scalar"),
       &registry.GetCounter("gemm.flops.fp32.avx2")},
      {&registry.GetCounter("gemm.flops.int8.scalar"),
       &registry.GetCounter("gemm.flops.int8.avx2")},
  };
  const int avx2 = ActiveKernelIsa() == KernelIsa::kAvx2 ? 1 : 0;
  calls[int8 ? 1 : 0][avx2]->Add(1);
  flops[int8 ? 1 : 0][avx2]->Add(2ull * static_cast<uint64_t>(m) * static_cast<uint64_t>(n) *
                                 static_cast<uint64_t>(std::max(k, 1)));
}

// Runs `panel(i0, i1)` over [0, m), forking across the pool only when the
// shared policy says the product pays for it (2*m*n*k flop-equivalents).
template <typename Panel>
void RunPanels(int m, int n, int k, Panel&& panel) {
  if (!WorthForking(ThreadPool::Global(), m, 2.0 * m * n * std::max(k, 1))) {
    panel(0, m);
    return;
  }
  ParallelFor(0, m, RowGrain(m), panel);
}

#ifdef CDMPP_HAVE_AVX2_KERNELS
bool UseAvx2() { return ActiveKernelIsa() == KernelIsa::kAvx2; }
#endif

void GemmNNImpl(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
                float beta, const float* bias, Activation act, float* c, int ldc) {
  if (m <= 0 || n <= 0) {
    return;
  }
  CountGemm(/*int8=*/false, m, n, k);
#ifdef CDMPP_HAVE_AVX2_KERNELS
  if (UseAvx2()) {
    RunPanels(m, n, k, [&](int64_t r0, int64_t r1) {
      detail::GemmNNPanelAvx2(r0, r1, n, k, a, lda, b, ldb, beta, bias, act, c, ldc);
    });
    return;
  }
#endif
  RunPanels(m, n, k, [&](int64_t r0, int64_t r1) {
    detail::GemmNNPanelScalar(r0, r1, n, k, a, lda, b, ldb, beta, bias, act, c, ldc);
  });
}

}  // namespace

namespace detail {

// Rows [i0, i1) of C = beta*C + A·B (+ fused bias/act). Both the kMr-row tile
// and the remainder-row path accumulate each C element over p ascending, so
// per-element results are independent of panel/tile boundaries.
void GemmNNPanelScalar(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                       const float* b, int ldb, float beta, const float* bias,
                       Activation act, float* c, int ldc) {
  float acc[kMr][kNc];
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    const float* bias_panel = bias != nullptr ? bias + jc : nullptr;
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      for (int r = 0; r < kMr; ++r) {
        InitAccRow(acc[r], c + (i + r) * ldc + jc, nc, beta);
      }
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<int64_t>(p) * ldb + jc;
        const float a0 = a[(i + 0) * lda + p];
        const float a1 = a[(i + 1) * lda + p];
        const float a2 = a[(i + 2) * lda + p];
        const float a3 = a[(i + 3) * lda + p];
        for (int j = 0; j < nc; ++j) {
          const float bv = brow[j];
          acc[0][j] += a0 * bv;
          acc[1][j] += a1 * bv;
          acc[2][j] += a2 * bv;
          acc[3][j] += a3 * bv;
        }
      }
      for (int r = 0; r < kMr; ++r) {
        StoreRow(c + (i + r) * ldc + jc, acc[r], nc, bias_panel, act);
      }
    }
    for (; i < i1; ++i) {
      InitAccRow(acc[0], c + i * ldc + jc, nc, beta);
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<int64_t>(p) * ldb + jc;
        const float a0 = a[i * lda + p];
        for (int j = 0; j < nc; ++j) {
          acc[0][j] += a0 * brow[j];
        }
      }
      StoreRow(c + i * ldc + jc, acc[0], nc, bias_panel, act);
    }
  }
}

// Rows [i0, i1) of C = beta*C + Aᵀ·B where A is stored [k, m]: column i of
// the logical Aᵀ row-panel is the contiguous run a[p*lda + i .. i+kMr), so
// the tile loads stay unit-stride even though the operand is transposed.
void GemmTNPanelScalar(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                       const float* b, int ldb, float beta, float* c, int ldc) {
  float acc[kMr][kNc];
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    int64_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
      for (int r = 0; r < kMr; ++r) {
        InitAccRow(acc[r], c + (i + r) * ldc + jc, nc, beta);
      }
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<int64_t>(p) * ldb + jc;
        const float* acol = a + static_cast<int64_t>(p) * lda + i;
        const float a0 = acol[0];
        const float a1 = acol[1];
        const float a2 = acol[2];
        const float a3 = acol[3];
        for (int j = 0; j < nc; ++j) {
          const float bv = brow[j];
          acc[0][j] += a0 * bv;
          acc[1][j] += a1 * bv;
          acc[2][j] += a2 * bv;
          acc[3][j] += a3 * bv;
        }
      }
      for (int r = 0; r < kMr; ++r) {
        StoreRow(c + (i + r) * ldc + jc, acc[r], nc, nullptr, Activation::kNone);
      }
    }
    for (; i < i1; ++i) {
      InitAccRow(acc[0], c + i * ldc + jc, nc, beta);
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<int64_t>(p) * ldb + jc;
        const float a0 = a[static_cast<int64_t>(p) * lda + i];
        for (int j = 0; j < nc; ++j) {
          acc[0][j] += a0 * brow[j];
        }
      }
      StoreRow(c + i * ldc + jc, acc[0], nc, nullptr, Activation::kNone);
    }
  }
}

// Rows [i0, i1) of C = beta*C + A·Bᵀ. Both operands stream along p with unit
// stride; j is tiled by 4 so one pass over A's row feeds four independent
// dot-product chains (ILP) while B rows j..j+3 stay hot in L1. Each dot uses
// a single accumulator over p ascending in both the tile and remainder
// paths — same determinism contract as the other kernels. Note the NT
// formula rounds as fl(fl(beta*c) + sum), with the sum accumulated from 0;
// the AVX2 body mirrors this exactly.
void GemmNTPanelScalar(int64_t i0, int64_t i1, int n, int k, const float* a, int lda,
                       const float* b, int ldb, float beta, float* c, int ldc) {
  constexpr int kNr = 4;
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    int j = 0;
    for (; j + kNr <= n; j += kNr) {
      const float* b0 = b + static_cast<int64_t>(j + 0) * ldb;
      const float* b1 = b + static_cast<int64_t>(j + 1) * ldb;
      const float* b2 = b + static_cast<int64_t>(j + 2) * ldb;
      const float* b3 = b + static_cast<int64_t>(j + 3) * ldb;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      crow[j + 0] = (beta == 0.0f ? 0.0f : beta * crow[j + 0]) + s0;
      crow[j + 1] = (beta == 0.0f ? 0.0f : beta * crow[j + 1]) + s1;
      crow[j + 2] = (beta == 0.0f ? 0.0f : beta * crow[j + 2]) + s2;
      crow[j + 3] = (beta == 0.0f ? 0.0f : beta * crow[j + 3]) + s3;
    }
    for (; j < n; ++j) {
      const float* brow = b + static_cast<int64_t>(j) * ldb;
      crow[j] = GemmNTDotTail(arow, brow, k, beta, crow[j]);
    }
  }
}

// Rows [i0, i1) of the quantized product. The inner loop walks one packed
// pair-row of B (2 * nc adjacent i16s) per reduction pair, accumulating
// a0*b_lo + a1*b_hi into i32 — the same a-pair-times-channel-pair structure
// the AVX2 vpmaddwd body uses, so -O3 can auto-vectorize it with pmaddwd.
// Integer accumulation is exact; the dequant epilogue's mul and add round
// separately (this TU builds with -ffp-contract=off), matching the AVX2
// epilogue bitwise.
void GemmQ8PanelScalar(int64_t i0, int64_t i1, int n, int k2, const int16_t* a, int lda,
                       const int16_t* b, const Q8Epilogue* ep, int32_t* c32, float* cf,
                       int ldc) {
  int32_t acc[kNc];
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    for (int64_t i = i0; i < i1; ++i) {
      const int16_t* arow = a + i * lda;
      for (int j = 0; j < nc; ++j) {
        acc[j] = 0;
      }
      for (int p2 = 0; p2 < k2; ++p2) {
        const int32_t a0 = arow[2 * p2];
        const int32_t a1 = arow[2 * p2 + 1];
        const int16_t* brow = b + (static_cast<int64_t>(p2) * n + jc) * 2;
        for (int j = 0; j < nc; ++j) {
          acc[j] += a0 * brow[2 * j] + a1 * brow[2 * j + 1];
        }
      }
      if (ep == nullptr) {
        int32_t* crow = c32 + i * ldc + jc;
        for (int j = 0; j < nc; ++j) {
          crow[j] = acc[j];
        }
      } else {
        const float a_scale = ep->a_scales[i];
        float* crow = cf + i * ldc + jc;
        for (int j = 0; j < nc; ++j) {
          const float cs = a_scale * ep->b_scales[jc + j];
          float v = static_cast<float>(acc[j]) * cs;
          if (ep->bias != nullptr) {
            v += ep->bias[jc + j];
          }
          crow[j] = ApplyActivation(v, ep->act);
        }
      }
    }
  }
}

}  // namespace detail

namespace {

// Shared dispatch for the two quantized entry points (raw s32 vs fused
// epilogue): same parallel row-panel seam as the fp32 kernels.
void GemmQ8Impl(int m, const int16_t* a, int lda, const PackedQ8Weights& w,
                const detail::Q8Epilogue* ep, int32_t* c32, float* cf, int ldc) {
  if (m <= 0 || w.n <= 0) {
    return;
  }
  CountGemm(/*int8=*/true, m, w.n, 2 * w.k2);
#ifdef CDMPP_HAVE_AVX2_KERNELS
  if (UseAvx2()) {
    RunPanels(m, w.n, 2 * w.k2, [&](int64_t r0, int64_t r1) {
      detail::GemmQ8PanelAvx2(r0, r1, w.n, w.k2, a, lda, w.data.data(), ep, c32, cf, ldc);
    });
    return;
  }
#endif
  RunPanels(m, w.n, 2 * w.k2, [&](int64_t r0, int64_t r1) {
    detail::GemmQ8PanelScalar(r0, r1, w.n, w.k2, a, lda, w.data.data(), ep, c32, cf, ldc);
  });
}

}  // namespace

void GemmS8S8S32Ref(int m, const int16_t* a, int lda, const PackedQ8Weights& w, int32_t* c,
                    int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < w.n; ++j) {
      int32_t s = 0;
      for (int p = 0; p < 2 * w.k2; ++p) {
        s += static_cast<int32_t>(a[static_cast<int64_t>(i) * lda + p]) * w.At(p, j);
      }
      c[static_cast<int64_t>(i) * ldc + j] = s;
    }
  }
}

void GemmS8S8S32(int m, const int16_t* a, int lda, const PackedQ8Weights& w, int32_t* c,
                 int ldc) {
  GemmQ8Impl(m, a, lda, w, /*ep=*/nullptr, c, nullptr, ldc);
}

void GemmS8S8BiasActRef(int m, const int16_t* a, int lda, const PackedQ8Weights& w,
                        const float* a_scales, const float* bias, Activation act, float* c,
                        int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < w.n; ++j) {
      int32_t s = 0;
      for (int p = 0; p < 2 * w.k2; ++p) {
        s += static_cast<int32_t>(a[static_cast<int64_t>(i) * lda + p]) * w.At(p, j);
      }
      const float cs = a_scales[i] * w.scales[j];
      float v = static_cast<float>(s) * cs;
      if (bias != nullptr) {
        v += bias[j];
      }
      c[static_cast<int64_t>(i) * ldc + j] = ApplyActivation(v, act);
    }
  }
}

void GemmS8S8BiasAct(int m, const int16_t* a, int lda, const PackedQ8Weights& w,
                     const float* a_scales, const float* bias, Activation act, float* c,
                     int ldc) {
  detail::Q8Epilogue ep{a_scales, w.scales.data(), bias, act};
  GemmQ8Impl(m, a, lda, w, &ep, nullptr, c, ldc);
}

void GemmNNRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float s = beta == 0.0f ? 0.0f : beta * c[static_cast<int64_t>(i) * ldc + j];
      for (int p = 0; p < k; ++p) {
        s += a[static_cast<int64_t>(i) * lda + p] * b[static_cast<int64_t>(p) * ldb + j];
      }
      c[static_cast<int64_t>(i) * ldc + j] = s;
    }
  }
}

void GemmTNRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float s = beta == 0.0f ? 0.0f : beta * c[static_cast<int64_t>(i) * ldc + j];
      for (int p = 0; p < k; ++p) {
        s += a[static_cast<int64_t>(p) * lda + i] * b[static_cast<int64_t>(p) * ldb + j];
      }
      c[static_cast<int64_t>(i) * ldc + j] = s;
    }
  }
}

void GemmNTRef(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
               float beta, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float s = beta == 0.0f ? 0.0f : beta * c[static_cast<int64_t>(i) * ldc + j];
      for (int p = 0; p < k; ++p) {
        s += a[static_cast<int64_t>(i) * lda + p] * b[static_cast<int64_t>(j) * ldb + p];
      }
      c[static_cast<int64_t>(i) * ldc + j] = s;
    }
  }
}

void GemmNN(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc) {
  GemmNNImpl(m, n, k, a, lda, b, ldb, beta, nullptr, Activation::kNone, c, ldc);
}

void GemmTN(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc) {
  if (m <= 0 || n <= 0) {
    return;
  }
  CountGemm(/*int8=*/false, m, n, k);
#ifdef CDMPP_HAVE_AVX2_KERNELS
  if (UseAvx2()) {
    RunPanels(m, n, k, [&](int64_t r0, int64_t r1) {
      detail::GemmTNPanelAvx2(r0, r1, n, k, a, lda, b, ldb, beta, c, ldc);
    });
    return;
  }
#endif
  RunPanels(m, n, k, [&](int64_t r0, int64_t r1) {
    detail::GemmTNPanelScalar(r0, r1, n, k, a, lda, b, ldb, beta, c, ldc);
  });
}

void GemmNT(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float beta,
            float* c, int ldc) {
  if (m <= 0 || n <= 0) {
    return;
  }
  CountGemm(/*int8=*/false, m, n, k);
#ifdef CDMPP_HAVE_AVX2_KERNELS
  if (UseAvx2()) {
    RunPanels(m, n, k, [&](int64_t r0, int64_t r1) {
      detail::GemmNTPanelAvx2(r0, r1, n, k, a, lda, b, ldb, beta, c, ldc);
    });
    return;
  }
#endif
  RunPanels(m, n, k, [&](int64_t r0, int64_t r1) {
    detail::GemmNTPanelScalar(r0, r1, n, k, a, lda, b, ldb, beta, c, ldc);
  });
}

void GemmBiasAct(int m, int n, int k, const float* a, int lda, const float* b, int ldb,
                 const float* bias, Activation act, float* c, int ldc) {
  GemmNNImpl(m, n, k, a, lda, b, ldb, /*beta=*/0.0f, bias, act, c, ldc);
}

}  // namespace kernels
}  // namespace cdmpp

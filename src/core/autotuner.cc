#include "src/core/autotuner.h"

namespace cdmpp {

PredictorConfig SampleConfig(Rng* rng) {
  PredictorConfig cfg;
  const std::vector<int> d_models = {32, 48, 64, 96};
  const std::vector<int> layers = {1, 2, 3};
  const std::vector<int> heads = {2, 4};
  const std::vector<int> z_dims = {32, 64, 96};
  const std::vector<int> dec_hidden = {32, 64, 96};
  const std::vector<int> batch_sizes = {32, 64, 128};

  cfg.d_model = rng->Choice(d_models);
  cfg.num_heads = rng->Choice(heads);
  cfg.d_ff = cfg.d_model * 2;
  cfg.num_layers = rng->Choice(layers);
  cfg.z_dim = rng->Choice(z_dims);
  int dh = rng->Choice(dec_hidden);
  cfg.decoder_hidden = rng->Bernoulli(0.5) ? std::vector<int>{dh} : std::vector<int>{dh, dh};
  cfg.batch_size = rng->Choice(batch_sizes);

  cfg.optimizer = rng->Bernoulli(0.8) ? OptimizerKind::kAdam : OptimizerKind::kSgd;
  cfg.lr = std::pow(10.0, rng->Uniform(-3.8, -2.3));
  cfg.max_lr = cfg.lr * rng->Uniform(1.5, 4.0);
  cfg.use_cyclic_lr = rng->Bernoulli(0.7);
  cfg.weight_decay = std::pow(10.0, rng->Uniform(-5.0, -2.5));
  cfg.lambda_mape = rng->Uniform(0.05, 0.5);
  cfg.alpha_cmd = rng->Uniform(0.1, 1.0);
  cfg.seed = rng->engine()();
  return cfg;
}

AutotuneResult Autotune(const Dataset& ds, const std::vector<int>& train,
                        const std::vector<int>& valid, const AutotuneOptions& opts) {
  Rng rng(opts.seed);
  AutotuneResult result;
  for (int t = 0; t < opts.num_trials; ++t) {
    AutotuneTrial trial;
    trial.config = SampleConfig(&rng);
    trial.config.epochs = opts.epochs_per_trial;
    CdmppPredictor predictor(trial.config);
    TrainStats stats = predictor.Pretrain(ds, train, valid);
    trial.valid_mape = stats.final_valid.mape;
    if (trial.valid_mape < result.best.valid_mape) {
      result.best = trial;
    }
    result.trials.push_back(std::move(trial));
  }
  return result;
}

}  // namespace cdmpp

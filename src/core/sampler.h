// Clustering-based sampling strategy for cross-device fine-tuning
// (paper §5.3, Algorithm 1): choose kappa tasks whose tensor-program features
// best cover the whole dataset, to profile on the target device.
#ifndef SRC_CORE_SAMPLER_H_
#define SRC_CORE_SAMPLER_H_

#include <vector>

#include "src/dataset/dataset.h"
#include "src/support/rng.h"

namespace cdmpp {

// Selects `kappa` distinct task ids following Algorithm 1:
//  1. KMeans over all per-program aggregate features into kappa clusters,
//     sorted by cluster size (descending).
//  2. Psi[e, tau] = mean distance of task tau's program features to the
//     center of cluster e.
//  3. For each cluster (largest first) pick the not-yet-chosen task with the
//     smallest Psi[e, tau].
std::vector<int> SelectTasksKMeans(const Dataset& ds, int kappa, Rng* rng);

// Baseline: kappa distinct tasks uniformly at random.
std::vector<int> SelectTasksRandom(const Dataset& ds, int kappa, Rng* rng);

// Expands selected task ids to the sample indices of their programs on the
// given device (the records one would collect by profiling those tasks).
std::vector<int> SamplesForTasksOnDevice(const Dataset& ds, const std::vector<int>& task_ids,
                                         int device_id);

}  // namespace cdmpp

#endif  // SRC_CORE_SAMPLER_H_

// The CDMPP cost model (paper Fig. 4, §5):
//
//   compact AST x --(+PE)--> input Linear --> Transformer encoder
//     --> per-leaf-count Linear head --> z_x
//   device features v --> MLP --> z_v
//   z = z_x (+) z_v --> decoder MLP --> predicted (transformed) latency
//
// Training: pre-training with the scale-insensitive hybrid objective
// (§5.2, Eqn. 3) on Box-Cox-normalized labels (§5.4); fine-tuning adds the
// CMD regularizer between source- and target-domain latents (§5.3, Eqn. 7).
#ifndef SRC_CORE_PREDICTOR_H_
#define SRC_CORE_PREDICTOR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/dataset/batching.h"
#include "src/dataset/dataset.h"
#include "src/ml/transforms.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/nn/quantize.h"
#include "src/nn/transformer.h"
#include "src/nn/workspace.h"
#include "src/support/cpu_features.h"

namespace cdmpp {

enum class OptimizerKind { kAdam, kSgd };

struct PredictorConfig {
  // Architecture (searched by the auto-tuner; defaults are its result).
  int d_model = 64;
  int num_heads = 4;
  int d_ff = 128;
  int num_layers = 2;
  int z_dim = 64;
  int device_embed_dim = 16;
  int device_hidden_dim = 32;
  std::vector<int> decoder_hidden = {64, 64};

  // Optimization.
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double lr = 5e-4;
  double max_lr = 1.2e-3;  // CyclicLR ceiling
  bool use_cyclic_lr = true;
  int cyclic_half_cycle = 150;
  double weight_decay = 3e-5;
  double grad_clip = 0.5;
  int batch_size = 96;
  int epochs = 80;

  // Objective (paper §5.2/§5.4).
  LossKind loss = LossKind::kHybrid;
  double lambda_mape = 0.15;  // hybrid MAPE coefficient in transformed space
  NormKind norm = NormKind::kBoxCox;

  // Features.
  bool use_pe = true;
  double pe_theta = 10000.0;

  // Fine-tuning (paper §5.3).
  double alpha_cmd = 0.3;
  int cmd_moments = 5;

  uint64_t seed = 7;
};

struct EvalStats {
  double mape = 0.0;
  double rmse_ms = 0.0;
  double acc20 = 0.0;  // fraction within 20% relative error
  double acc10 = 0.0;
  double acc5 = 0.0;
  int count = 0;
};

struct TrainStats {
  std::vector<double> epoch_train_loss;
  std::vector<double> epoch_valid_mape;
  double throughput_samples_per_sec = 0.0;
  double train_seconds = 0.0;
  EvalStats final_valid;
};

class CdmppPredictor {
 public:
  explicit CdmppPredictor(const PredictorConfig& config);

  // Pre-trains on `train` sample indices (fits the feature scaler and label
  // transform on them); tracks MAPE on `valid`. Keeps the best-validation
  // parameters.
  TrainStats Pretrain(const Dataset& ds, const std::vector<int>& train,
                      const std::vector<int>& valid);

  // CMD-regularized fine-tuning (Eqn. 7): trains the prediction loss on
  // `labeled` samples while minimizing CMD between latents of `source_domain`
  // and `target_domain` batches. Target labels are never used unless they
  // appear in `labeled`.
  TrainStats Finetune(const Dataset& ds, const std::vector<int>& labeled,
                      const std::vector<int>& source_domain,
                      const std::vector<int>& target_domain, int epochs);

  // Predicted latencies in seconds (inverse-transformed).
  std::vector<double> Predict(const Dataset& ds, const std::vector<int>& indices);
  // Predicts a single program (by dataset program index) on a device.
  double PredictProgram(const Dataset& ds, int program_index, int device_id);
  // Predicts a free-standing compact AST on a device (used by the replayer
  // and the schedule-search integration). A head for the AST's leaf count is
  // created on demand if training never saw that count.
  double PredictAst(const CompactAst& ast, int device_id);

  // ---- Serving / const inference path (src/serve/) -------------------------
  //
  // PredictBatched is the online hot path: a *const* batched forward over
  // free-standing (AST, device) requests, one cache-free forward pass per
  // leaf-count bucket (chunked to config().batch_size). Thread-safety
  // contract: any number of threads may call PredictBatched concurrently on a
  // shared predictor without locking, as long as no thread mutates the model
  // (training, EnsureHead, ImportParams) at the same time — the forward pass
  // reads parameters only and writes no member state. Results are
  // bitwise-identical to per-AST PredictAst calls on the same model.
  //
  // Requires fitted() and HasHead() for every leaf count present in the view;
  // the serving layer creates missing heads via EnsureHead under its write
  // lock before entering the lock-free path.
  //
  // When `num_forward_passes` is non-null it receives the number of forward
  // passes actually run (one per leaf-count bucket chunk) — the serving stats
  // report it rather than re-deriving the chunking.
  std::vector<double> PredictBatched(const AstBatchView& view,
                                     uint64_t* num_forward_passes = nullptr) const;

  // Arena-based variant — the serving hot path. All forward-pass tensors come
  // from `ws` (one arena per calling thread; the PredictionService workers
  // each own one) and the `view.size()` predictions are written to `out`, so
  // a warmed-up call performs zero heap allocations end to end (asserted by
  // tests/dataplane_test.cc). Same thread-safety contract and bitwise-equal
  // results as the vector overload, which delegates here.
  void PredictBatched(const AstBatchView& view, Workspace* ws, double* out,
                      uint64_t* num_forward_passes = nullptr) const;

  // ---- Int8 quantized serving path (CDMPP_PRECISION=int8|int8-heads) -------
  //
  // PredictBatchedQuantized is PredictBatched with the weight GEMMs routed
  // through the int8 symmetric-quantized kernel tier (src/nn/quantize.h):
  // int8 GEMMs with per-output-channel weight scales and dynamic per-row
  // activation scales. `mode` selects the coverage:
  //   * Precision::kInt8 (the default tier): the transformer encoder's
  //     QKV/output projections and FFN pair (the bulk of serving FLOPs, with
  //     per-channel activation scales derived from the LayerNorms — see
  //     QuantizedTransformerEncoder), plus the per-leaf-count heads, the
  //     device MLP, and the decoder hiddens.
  //   * Precision::kInt8Heads: the pre-encoder subset (heads + device MLP +
  //     decoder hiddens), kept for A/B-measuring the encoder conversion.
  // In both modes three fringes stay fp32, each from a measured
  // accuracy/throughput trade: attention's activation×activation
  // score/context GEMMs (both operands dynamic — ROADMAP follow-on), the
  // input projection (its quantization noise feeds the whole encoder stack
  // while its GEMM is ~1% of model FLOPs), and the decoder's final [*, 1]
  // projection (absolute noise there lands directly on the transformed label
  // under the exponential-tailed inverse Box-Cox). See the README design
  // note for the measured per-stage error ladder. Same thread-safety
  // contract as PredictBatched (const, lock-free, reads quantized snapshots
  // only), and — because activation scales are per row — the same bitwise
  // batch-size-invariance. Results agree with fp32 to <= 1% relative on the
  // serving fixtures (tests/serve_test.cc), not bitwise: that is the
  // precision/throughput trade the int8 tier makes.
  //
  // Requires PrepareQuantizedInference() after fitting (and again after any
  // parameter mutation — the quantized snapshots do not track training), plus
  // a quantized head for every leaf count served (EnsureQuantizedHead, which
  // the PredictionService calls under its write lock).
  void PrepareQuantizedInference();
  bool quantized_ready() const { return q_decoder_ != nullptr && q_encoder_ != nullptr; }
  bool HasQuantizedHead(int leaf_count) const;
  // Creates the fp32 head if missing, then its quantized snapshot. Mutating —
  // serialize against concurrent PredictBatched*/PredictAst calls.
  void EnsureQuantizedHead(int leaf_count);
  std::vector<double> PredictBatchedQuantized(const AstBatchView& view,
                                              uint64_t* num_forward_passes = nullptr,
                                              Precision mode = Precision::kInt8) const;
  void PredictBatchedQuantized(const AstBatchView& view, Workspace* ws, double* out,
                               uint64_t* num_forward_passes = nullptr,
                               Precision mode = Precision::kInt8) const;

  // True once Pretrain has fitted the feature scaler and label transform.
  bool fitted() const { return fitted_; }
  // True if a per-leaf-count head exists for `leaf_count`.
  bool HasHead(int leaf_count) const;
  // Creates the head for `leaf_count` if missing and rebuilds the optimizer
  // so later training sees every parameter. Mutating — serialize against
  // concurrent PredictBatched calls.
  void EnsureHead(int leaf_count);

  EvalStats Evaluate(const Dataset& ds, const std::vector<int>& indices);

  // Latent representations z = z_x (+) z_v, one row per sample.
  Matrix EncodeLatent(const Dataset& ds, const std::vector<int>& indices);

  const PredictorConfig& config() const { return config_; }
  size_t NumParams();

  // Snapshots / restores all trainable parameters (used by experiments that
  // fine-tune several times from one pre-trained state). Import requires the
  // same architecture and head set as at export time.
  std::vector<Matrix> ExportParams();
  void ImportParams(const std::vector<Matrix>& params);

 private:
  struct BatchForward {
    Matrix z;      // [B, z_dim + device_embed_dim]
    Matrix preds;  // [B, 1]
  };

  // Creates per-leaf-count heads for every leaf count in the dataset subset.
  void EnsureHeads(const Dataset& ds, const std::vector<int>& indices);
  // Per-channel activation scales for a head's packed encoder-output input
  // (the last layer's norm2 profile tiled leaf_count times).
  std::vector<float> HeadColumnScales(int leaf_count, const Linear& head) const;
  void RebuildOptimizer();
  void CollectAllParams(std::vector<Param*>* out);

  // Shared serving forward: the fp32 and both int8 modes differ only in
  // which layer snapshots run the weight-GEMM stages (`mode` selects encoder
  // coverage on top of the heads/device-MLP/decoder swap).
  void PredictBatchedImpl(const AstBatchView& view, Workspace* ws, double* out,
                          uint64_t* num_forward_passes, Precision mode) const;

  BatchForward Forward(const Dataset& ds, const Batch& batch);
  // Backprops d(loss)/d(pred) [B,1] and optionally d(loss)/dz (may be empty).
  void Backward(const Batch& batch, const Matrix& dpred, const Matrix& dz_extra);
  void ClipGradients();
  std::vector<Matrix> SnapshotParams();
  void RestoreParams(const std::vector<Matrix>& snapshot);

  // Shared training loop; when alpha > 0, adds CMD(z_src, z_tgt) per step
  // using batches drawn from the two domains.
  TrainStats RunTraining(const Dataset& ds, const std::vector<int>& train,
                         const std::vector<int>& valid, int epochs, double alpha,
                         const std::vector<int>& source_domain,
                         const std::vector<int>& target_domain);

  PredictorConfig config_;
  Rng rng_;

  std::unique_ptr<Linear> input_proj_;
  std::unique_ptr<TransformerEncoder> encoder_;
  std::map<int, std::unique_ptr<Linear>> leaf_heads_;  // leaf count -> head
  std::unique_ptr<Mlp> device_mlp_;
  std::unique_ptr<Mlp> decoder_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<LrScheduler> scheduler_;
  int64_t global_step_ = 0;

  StandardScaler scaler_;
  std::unique_ptr<LabelTransform> label_transform_;
  bool fitted_ = false;

  // Int8 calibrated snapshots (PrepareQuantizedInference / EnsureQuantizedHead).
  std::map<int, std::unique_ptr<QuantizedLinear>> q_leaf_heads_;
  std::unique_ptr<QuantizedMlp> q_device_mlp_;
  std::unique_ptr<QuantizedMlp> q_decoder_;
  std::unique_ptr<QuantizedTransformerEncoder> q_encoder_;

  // Forward caches for Backward.
  int cached_seq_len_ = 0;
  int cached_batch_size_ = 0;
  Matrix cached_zx_;
};

}  // namespace cdmpp

#endif  // SRC_CORE_PREDICTOR_H_

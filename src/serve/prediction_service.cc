#include "src/serve/prediction_service.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "src/support/check.h"

namespace cdmpp {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

double MsBetween(std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

PredictionService::PredictionService(CdmppPredictor* predictor, const ServeOptions& options)
    : predictor_(predictor),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CDMPP_CHECK(predictor != nullptr);
  CDMPP_CHECK_MSG(predictor->fitted(), "serve an unfitted predictor: run Pretrain first");
  CDMPP_CHECK(options.num_workers > 0);
  CDMPP_CHECK(options.max_batch_size > 0);
  CDMPP_CHECK(options.batch_window_ms >= 0.0);
  if (options.precision != Precision::kFp32) {
    // Calibrate the int8 snapshots (heads, device MLP, decoder, encoder) from
    // the current fp32 parameters before any worker exists (single-threaded
    // here, so mutating is safe). Both int8 modes calibrate everything; the
    // forward picks the encoder tier per mode.
    predictor->PrepareQuantizedInference();
  }
  workers_.reserve(static_cast<size_t>(options.num_workers));
  for (int i = 0; i < options.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options.stats_log_interval_s > 0.0) {
    logger_ = std::thread([this] { StatsLoggerLoop(); });
  }
}

PredictionService::~PredictionService() { Shutdown(); }

void PredictionService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  if (logger_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(logger_mu_);
      logger_stop_ = true;
    }
    logger_cv_.notify_all();
    logger_.join();
  }
}

void PredictionService::Recalibrate() {
  if (options_.precision == Precision::kFp32) {
    return;
  }
  // Exclusive lock: waits out in-flight forwards (shared holders), swaps the
  // quantized snapshots, and releases. PrepareQuantizedInference rebuilds the
  // quantized head map from every materialized fp32 head, so leaf counts the
  // service has already served stay covered after the swap.
  std::unique_lock<std::shared_mutex> lock(model_mu_);
  predictor_->PrepareQuantizedInference();
}

void PredictionService::StatsLoggerLoop() {
  ServerStatsSnapshot prev = Stats();
  std::unique_lock<std::mutex> lock(logger_mu_);
  for (;;) {
    const bool stopping = logger_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.stats_log_interval_s),
        [this] { return logger_stop_; });
    if (stopping) {
      return;
    }
    lock.unlock();
    ServerStatsSnapshot cur = Stats();
    std::fprintf(stderr, "[cdmpp.serve] %s\n", cur.Delta(prev).ToString().c_str());
    prev = std::move(cur);
    lock.lock();
  }
}

bool PredictionService::BuildRequest(const CompactAst& ast, int device_id, bool copy_ast,
                                     Request* req, std::future<double>* ready) {
  const auto t0 = std::chrono::steady_clock::now();
  CDMPP_CHECK(ast.num_leaves > 0);
  CacheKey key{ast.Hash(), DeviceById(device_id).Fingerprint()};
  // Sampling decision up front so the cache-hit fast path is traceable too.
  // With sampling off (the default) this is one relaxed load and a branch.
  const bool traced = obs::TraceCollector::Global().ShouldSample();

  if (options_.enable_cache) {
    double cached = 0.0;
    if (cache_.Lookup(key, &cached)) {
      stats_.RecordRequest();
      stats_.RecordCacheHits();
      stats_.RecordLatencyMs(MsSince(t0));
      std::promise<double> resolved;
      resolved.set_value(cached);
      if (traced) {
        // The whole submit-path hit is the cache lookup stage.
        obs::RequestTrace trace;
        trace.total_ms = MsSince(t0);
        trace.AddSegment(obs::Stage::kCacheLookup, trace.total_ms);
        obs::TraceCollector::Global().Emit(std::move(trace));
      }
      *ready = resolved.get_future();
      return false;
    }
  }

  if (copy_ast) {
    req->owned_ast = ast;
  } else {
    req->borrowed_ast = &ast;
  }
  req->device_id = device_id;
  req->key = key;
  req->submit_time = t0;
  req->traced = traced;
  return true;
}

std::future<double> PredictionService::Submit(const CompactAst& ast, int device_id) {
  Request req;
  std::future<double> ready;
  if (!BuildRequest(ast, device_id, /*copy_ast=*/true, &req, &ready)) {
    return ready;
  }
  std::future<double> result = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    CDMPP_CHECK_MSG(!stop_, "Submit after Shutdown");
    queue_.push_back(std::move(req));
  }
  queue_cv_.notify_one();
  return result;
}

std::vector<std::future<double>> PredictionService::SubmitBorrowedBatch(
    const std::vector<const CompactAst*>& asts, const std::vector<int>& device_ids) {
  CDMPP_CHECK(asts.size() == device_ids.size());
  std::vector<std::future<double>> futures;
  futures.reserve(asts.size());
  std::vector<Request> pending;
  pending.reserve(asts.size());
  for (size_t i = 0; i < asts.size(); ++i) {
    CDMPP_CHECK(asts[i] != nullptr);
    Request req;
    std::future<double> ready;
    if (BuildRequest(*asts[i], device_ids[i], /*copy_ast=*/false, &req, &ready)) {
      futures.push_back(req.promise.get_future());
      pending.push_back(std::move(req));
    } else {
      futures.push_back(std::move(ready));
    }
  }
  if (!pending.empty()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      CDMPP_CHECK_MSG(!stop_, "SubmitBorrowedBatch after Shutdown");
      for (Request& req : pending) {
        queue_.push_back(std::move(req));
      }
    }
    // One wake-up after the whole population is visible: the first worker to
    // drain sees every request at once, so the batch forms at population size
    // without a batch-window wait. (A second worker only helps if the
    // population exceeds max_batch_size — wake it only then.)
    if (static_cast<int>(pending.size()) > options_.max_batch_size) {
      queue_cv_.notify_all();
    } else {
      queue_cv_.notify_one();
    }
  }
  return futures;
}

double PredictionService::Predict(const CompactAst& ast, int device_id) {
  return Submit(ast, device_id).get();
}

void PredictionService::WorkerLoop() {
  // Per-worker arena leased from the process-wide pool for the worker's
  // lifetime (returned warm at shutdown, so the next service or caller
  // reuses it), plus a reusable output buffer: steady-state forward passes
  // touch the heap zero times once warm (src/nn/workspace.h). Intra-request
  // parallelism inside the forward (batch-row attention chunks) leases
  // additional scratch from the same pool; checkout grows on demand and
  // never blocks, so worker-level and per-chunk leases compose without
  // deadlock. Workers no longer need to avoid a busy compute pool either:
  // since the work-stealing scheduler (src/support/parallel_for.cc), each
  // worker's ParallelFor registers its own region and concurrent forwards
  // compose instead of one of them collapsing to serial.
  WorkspacePool::Lease ws = WorkspacePool::Global().Acquire();
  std::vector<double> predictions;
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      // Give concurrent submitters a short window to fill the batch. A plain
      // unlocked sleep, deliberately not a condition wait: every Submit
      // notifies the queue, and re-checking a wait predicate per notification
      // costs a wakeup per request — exactly the per-request overhead
      // batching exists to amortize. Shutdown latency is bounded by the
      // window, which is sub-millisecond in practice.
      if (options_.batch_window_ms > 0.0 && !stop_ &&
          static_cast<int>(queue_.size()) < options_.max_batch_size) {
        lock.unlock();
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(options_.batch_window_ms));
        lock.lock();
      }
      const size_t take =
          std::min(queue_.size(), static_cast<size_t>(options_.max_batch_size));
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    const auto drained_at = std::chrono::steady_clock::now();
    ProcessBatch(std::move(batch), drained_at, ws.get(), &predictions);
  }
}

void PredictionService::ProcessBatch(std::vector<Request> requests,
                                     std::chrono::steady_clock::time_point drained_at,
                                     Workspace* ws, std::vector<double>* predictions) {
  // Trace plumbing: if the sampler picked any request in this batch, bind a
  // batch-level Trace to this thread so the ScopedSpan hooks down the stack
  // (formation, forward sub-stages) record into it. Untraced batches bind
  // nothing and every hook below stays a thread-local load + branch.
  bool traced_any = false;
  for (const Request& req : requests) {
    traced_any |= req.traced;
  }
  obs::Trace batch_trace;
  obs::ScopedTraceBinding trace_binding(traced_any ? &batch_trace : nullptr);
  // forward_done marks the forward/finalize stage boundary for the traces;
  // only traced batches read the clock for it.
  auto forward_done = drained_at;

  // Emits the per-request trace at fulfill time: queue wait (submit ->
  // drained_at), then either the batch's recorded spans plus a finalize
  // segment (computed requests) or the formation time so far (requests a
  // concurrent worker's cache insert resolved mid-formation).
  auto emit_trace = [&](const Request& req, bool computed) {
    obs::RequestTrace trace;
    trace.total_ms = MsSince(req.submit_time);
    trace.AddSegment(obs::Stage::kQueueWait, MsBetween(req.submit_time, drained_at));
    if (computed) {
      trace.AppendSpans(batch_trace);
      trace.AddSegment(obs::Stage::kFinalize, MsSince(forward_done));
    } else {
      trace.AddSegment(obs::Stage::kBatchFormation, MsBetween(drained_at,
                                                              std::chrono::steady_clock::now()));
    }
    obs::TraceCollector::Global().Emit(std::move(trace));
  };

  // Coalesce duplicate in-flight keys: one forward row answers all of them.
  std::unordered_map<CacheKey, std::vector<size_t>, CacheKeyHash> groups;
  std::vector<size_t> unique_order;  // first request position per distinct key
  std::vector<size_t> to_compute;
  AstBatchView view;
  const bool int8_mode = options_.precision != Precision::kFp32;

  auto fulfill = [&](const CacheKey& key, double latency_seconds, bool computed) {
    for (size_t pos : groups.at(key)) {
      // Record before resolving: a client observing the future must also
      // observe its request in Stats().
      stats_.RecordRequest();
      stats_.RecordLatencyMs(MsSince(requests[pos].submit_time));
      requests[pos].promise.set_value(latency_seconds);
      if (requests[pos].traced) {
        emit_trace(requests[pos], computed);
      }
    }
  };

  {
    obs::ScopedSpan formation_span(obs::Stage::kBatchFormation);
    for (size_t i = 0; i < requests.size(); ++i) {
      auto [it, inserted] = groups.try_emplace(requests[i].key);
      if (inserted) {
        unique_order.push_back(i);
      }
      it->second.push_back(i);
    }

    // Re-check the cache: another worker may have computed a key while these
    // requests sat in the queue.
    for (size_t pos : unique_order) {
      double cached = 0.0;
      if (options_.enable_cache && cache_.Lookup(requests[pos].key, &cached)) {
        stats_.RecordCacheHits(groups.at(requests[pos].key).size());
        fulfill(requests[pos].key, cached, /*computed=*/false);
      } else {
        to_compute.push_back(pos);
      }
    }
    if (to_compute.empty()) {
      return;
    }

    view.asts.reserve(to_compute.size());
    view.device_ids.reserve(to_compute.size());
    for (size_t pos : to_compute) {
      view.asts.push_back(&requests[pos].ast());
      view.device_ids.push_back(requests[pos].device_id);
    }
    // Rare slow path: create heads (and, in int8 mode, their quantized
    // snapshots) for leaf counts training never saw, under the exclusive
    // lock. Ensure* re-checks, so racing workers are safe (and duplicate
    // entries here are harmless).
    std::vector<int> missing_heads;
    {
      std::shared_lock<std::shared_mutex> lock(model_mu_);
      for (const CompactAst* ast : view.asts) {
        if (!predictor_->HasHead(ast->num_leaves) ||
            (int8_mode && !predictor_->HasQuantizedHead(ast->num_leaves))) {
          missing_heads.push_back(ast->num_leaves);
        }
      }
    }
    if (!missing_heads.empty()) {
      std::unique_lock<std::shared_mutex> lock(model_mu_);
      for (int leaves : missing_heads) {
        if (int8_mode) {
          predictor_->EnsureQuantizedHead(leaves);
        } else {
          predictor_->EnsureHead(leaves);
        }
      }
    }
  }

  predictions->resize(view.size());  // shrink/grow keeps capacity
  uint64_t passes = 0;
  {
    // Span covers lock acquisition + batched forward; the per-stage spans the
    // predictor opens (featurize/encoder/heads/...) nest inside, so this
    // span's exclusive time is the forward glue (plan build, chunking).
    obs::ScopedSpan forward_span(obs::Stage::kForward);
    std::shared_lock<std::shared_mutex> lock(model_mu_);
    if (int8_mode) {
      predictor_->PredictBatchedQuantized(view, ws, predictions->data(), &passes,
                                          options_.precision);
    } else {
      predictor_->PredictBatched(view, ws, predictions->data(), &passes);
    }
  }
  if (traced_any) {
    forward_done = std::chrono::steady_clock::now();
  }
  stats_.RecordForwardPasses(passes, static_cast<uint64_t>(view.size()));

  for (size_t u = 0; u < to_compute.size(); ++u) {
    const CacheKey& key = requests[to_compute[u]].key;
    const double latency_seconds = (*predictions)[u];
    if (options_.enable_cache) {
      cache_.Insert(key, latency_seconds);
    }
    stats_.RecordCoalesced(groups.at(key).size() - 1);
    fulfill(key, latency_seconds, /*computed=*/true);
  }
}

}  // namespace cdmpp

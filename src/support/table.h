// ASCII table printer used by the benchmark harnesses to reproduce the
// rows/series of the paper's tables and figures, plus a CSV writer for
// figure data that is naturally plotted (t-SNE embeddings, search curves).
#ifndef SRC_SUPPORT_TABLE_H_
#define SRC_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace cdmpp {

// Accumulates rows of string cells and renders them with aligned columns.
//
//   TablePrinter t({"device", "MAPE"});
//   t.AddRow({"T4", "15.2%"});
//   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Renders the table. Columns are padded to the widest cell.
  void Print(std::FILE* out) const;
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);
// Formats a fraction (0.1403) as a percentage string ("14.03%").
std::string FormatPercent(double fraction, int digits);

// Writes rows of doubles as CSV with the given header line.
// Returns false if the file could not be opened.
bool WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows);

}  // namespace cdmpp

#endif  // SRC_SUPPORT_TABLE_H_

#include "src/nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/nn/kernels_internal.h"
#include "src/obs/trace.h"
#include "src/support/check.h"
#include "src/support/cpu_features.h"
#include "src/support/parallel_for.h"

namespace cdmpp {

namespace {

// Round-to-nearest (current FP environment: ties to even) into [-qmax, qmax].
// Symmetric ranges (no -(qmax+1) code) keep the madd-based kernels' overflow
// analysis a simple magnitude product bound (see kernels.h).
inline int16_t QuantizeValue(float v, float inv_scale, float qmax) {
  float scaled = v * inv_scale;
  if (scaled > qmax) {
    scaled = qmax;
  } else if (scaled < -qmax) {
    scaled = -qmax;
  }
  return static_cast<int16_t>(std::lrintf(scaled));
}

// One body for the plain and per-channel-scaled row quantizers. `inv_col`
// is null for the plain path; the scaled path multiplies each element by its
// channel's 1/c_p in BOTH the absmax pass and the rounding pass (the same
// expression, so the row scale is exact for the scaled values). With unit
// scales the multiply by 1.0f is bitwise exact, so the scaled path with
// c_p = 1 reproduces the plain path bit for bit (pinned by quantize_test).
void QuantizeRowsImpl(int rows, int k, const float* x, int ldx, const float* inv_col,
                      int16_t* q, int ldq, float* scales) {
  const int k2 = (k + 1) / 2;
  CDMPP_CHECK(ldq >= 2 * k2);
  const float qmax = static_cast<float>(ActivationQMax(k));
  // Rows are independent (per-ROW scale, by design) and every write — codes
  // and scale — is row-disjoint, so batch rows split across cores without
  // changing a single value; the quantized epilogue stays bitwise identical
  // for every thread count.
  auto quantize_rows = [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = x + i * ldx;
      float absmax = 0.0f;
      if (inv_col != nullptr) {
        for (int p = 0; p < k; ++p) {
          absmax = std::max(absmax, std::abs(row[p] * inv_col[p]));
        }
      } else {
        for (int p = 0; p < k; ++p) {
          absmax = std::max(absmax, std::abs(row[p]));
        }
      }
      const float scale = absmax > 0.0f ? absmax / qmax : 1.0f;
      scales[i] = scale;
      const float inv_scale = 1.0f / scale;
      int16_t* qrow = q + i * ldq;
      if (inv_col != nullptr) {
        for (int p = 0; p < k; ++p) {
          qrow[p] = QuantizeValue(row[p] * inv_col[p], inv_scale, qmax);
        }
      } else {
        for (int p = 0; p < k; ++p) {
          qrow[p] = QuantizeValue(row[p], inv_scale, qmax);
        }
      }
      for (int p = k; p < 2 * k2; ++p) {
        qrow[p] = 0;  // pad pair: contributes exactly zero to the reduction
      }
    }
  };
#ifdef CDMPP_HAVE_AVX2_KERNELS
  // AVX2 hosts run the vectorized body (kernels_avx2.cc) — bitwise identical
  // to the scalar loops below (pinned by quantize_test), so this per-ISA
  // dispatch, unlike the fp32 GEMMs', changes no output anywhere: the
  // quantized tier's cross-ISA bitwise contract is preserved exactly. The
  // serving profile motivated it: at the encoder's k = 64 the scalar two-pass
  // quantizer cost more than the int8 GEMM saved.
  if (ActiveKernelIsa() == KernelIsa::kAvx2) {
    auto quantize_rows_avx2 = [&](int64_t r0, int64_t r1) {
      kernels::detail::QuantizeRowsPanelAvx2(r0, r1, k, x, ldx, inv_col, qmax, q, ldq,
                                             scales);
    };
    if (WorthForking(ThreadPool::Global(), rows, 8.0 * static_cast<double>(rows) * k)) {
      ParallelFor(0, rows, ParallelGrain(rows), quantize_rows_avx2);
    } else {
      quantize_rows_avx2(0, rows);
    }
    return;
  }
#endif
  // ~8 work units per element (absmax pass + round/clamp/store pass),
  // against the shared fork policy.
  if (WorthForking(ThreadPool::Global(), rows, 8.0 * static_cast<double>(rows) * k)) {
    ParallelFor(0, rows, ParallelGrain(rows), quantize_rows);
  } else {
    quantize_rows(0, rows);
  }
}

}  // namespace

void QuantizePackWeights(int k, int n, const float* w, int ldw,
                         kernels::PackedQ8Weights* out) {
  CDMPP_CHECK(k >= 0 && n >= 0);
  out->k = k;
  out->n = n;
  out->k2 = (k + 1) / 2;
  out->data.assign(static_cast<size_t>(out->k2) * n * 2, 0);
  out->scales.assign(static_cast<size_t>(n), 1.0f);
  for (int j = 0; j < n; ++j) {
    float absmax = 0.0f;
    for (int p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::abs(w[static_cast<int64_t>(p) * ldw + j]));
    }
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    out->scales[static_cast<size_t>(j)] = scale;
    const float inv_scale = 1.0f / scale;
    for (int p = 0; p < k; ++p) {
      out->data[(static_cast<size_t>(p / 2) * n + j) * 2 + (p & 1)] =
          QuantizeValue(w[static_cast<int64_t>(p) * ldw + j], inv_scale, 127.0f);
    }
  }
}

void QuantizeActivationsPerRow(int rows, int k, const float* x, int ldx, int16_t* q, int ldq,
                               float* scales) {
  QuantizeRowsImpl(rows, k, x, ldx, /*inv_col=*/nullptr, q, ldq, scales);
}

void QuantizeActivationsPerRowScaled(int rows, int k, const float* x, int ldx,
                                     const float* inv_col_scales, int16_t* q, int ldq,
                                     float* scales) {
  CDMPP_CHECK(inv_col_scales != nullptr);
  QuantizeRowsImpl(rows, k, x, ldx, inv_col_scales, q, ldq, scales);
}

std::vector<float> LayerNormActAbsMax(const LayerNorm& ln) {
  const Matrix& g = ln.gamma();
  const Matrix& b = ln.beta();
  CDMPP_CHECK(g.size() == b.size());
  std::vector<float> est(g.size());
  for (size_t p = 0; p < est.size(); ++p) {
    // |gamma_p * z + beta_p| <= |gamma_p| * |z| + |beta_p| with z the
    // row-normalized activation (|z| ~ O(1)); the common |z| factor is a
    // global scale, which BalancedColumnScales' ratio and the per-row
    // dynamic scale both absorb exactly — only relative magnitudes matter.
    est[p] = std::abs(g.data()[p]) + std::abs(b.data()[p]);
  }
  return est;
}

std::vector<float> BalancedColumnScales(const std::vector<float>& act_absmax,
                                        const Matrix& weight) {
  return BalancedColumnScales(act_absmax, {&weight});
}

std::vector<float> BalancedColumnScales(const std::vector<float>& act_absmax,
                                        const std::vector<const Matrix*>& weights) {
  CDMPP_CHECK(!weights.empty());
  const int k = weights.front()->rows();
  CDMPP_CHECK(static_cast<int>(act_absmax.size()) == k);
  std::vector<float> wrow(static_cast<size_t>(k), 0.0f);
  float wmax = 0.0f;
  float amax = 0.0f;
  for (const Matrix* weight : weights) {
    CDMPP_CHECK(weight->rows() == k);
    const int n = weight->cols();
    for (int p = 0; p < k; ++p) {
      float m = wrow[static_cast<size_t>(p)];
      for (int j = 0; j < n; ++j) {
        m = std::max(m, std::abs(weight->At(p, j)));
      }
      wrow[static_cast<size_t>(p)] = m;
    }
  }
  for (int p = 0; p < k; ++p) {
    wmax = std::max(wmax, wrow[static_cast<size_t>(p)]);
    amax = std::max(amax, act_absmax[static_cast<size_t>(p)]);
  }
  std::vector<float> scales(static_cast<size_t>(k), 1.0f);
  if (wmax <= 0.0f || amax <= 0.0f) {
    return scales;  // degenerate layer: neutral scales, plain-path behavior
  }
  const float a_floor = 1e-3f * amax;
  const float w_floor = 1e-3f * wmax;
  for (int p = 0; p < k; ++p) {
    const float a = std::max(act_absmax[static_cast<size_t>(p)], a_floor);
    const float ww = std::max(wrow[static_cast<size_t>(p)], w_floor);
    scales[static_cast<size_t>(p)] = std::sqrt(a / ww);
  }
  return scales;
}

QuantizedLinear::QuantizedLinear(const Linear& linear) {
  const Matrix& w = linear.weight();
  QuantizePackWeights(w.rows(), w.cols(), w.data(), w.cols(), &weights_);
  const Matrix& b = linear.bias();
  bias_.assign(b.data(), b.data() + b.size());
}

QuantizedLinear::QuantizedLinear(const Linear& linear, const std::vector<float>& col_scales) {
  const Matrix& w = linear.weight();
  const Matrix& b = linear.bias();
  bias_.assign(b.data(), b.data() + b.size());
  if (col_scales.empty()) {
    QuantizePackWeights(w.rows(), w.cols(), w.data(), w.cols(), &weights_);
    return;
  }
  const int k = w.rows();
  const int n = w.cols();
  CDMPP_CHECK(static_cast<int>(col_scales.size()) == k);
  // Fold c_p into the weight rows, then quantize per output channel as usual:
  // the column scales live entirely inside the packed weights and the scaled
  // activation quantizer — kernels and epilogue are untouched.
  std::vector<float> folded(static_cast<size_t>(k) * n);
  inv_col_scales_.resize(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    const float c = col_scales[static_cast<size_t>(p)];
    CDMPP_CHECK_MSG(c > 0.0f && std::isfinite(c), "column scales must be positive and finite");
    inv_col_scales_[static_cast<size_t>(p)] = 1.0f / c;
    for (int j = 0; j < n; ++j) {
      folded[static_cast<size_t>(p) * n + j] = w.At(p, j) * c;
    }
  }
  QuantizePackWeights(k, n, folded.data(), n, &weights_);
}

Matrix* QuantizedLinear::ForwardInference(const Matrix& x, Workspace* ws,
                                          kernels::Activation act) const {
  CDMPP_CHECK(x.cols() == weights_.k);
  const int m = x.rows();
  const int ldq = 2 * weights_.k2;
  int16_t* q = ws->NewI16(static_cast<size_t>(m) * ldq);
  Matrix* row_scales = ws->NewMatrix(m, 1);
  {
    // The dequant half is fused into the GEMM epilogue below and accounted
    // to the enclosing stage; activation quantization is the separable part.
    obs::ScopedSpan span(obs::Stage::kQuantize);
    if (inv_col_scales_.empty()) {
      QuantizeActivationsPerRow(m, weights_.k, x.data(), x.cols(), q, ldq, row_scales->data());
    } else {
      QuantizeActivationsPerRowScaled(m, weights_.k, x.data(), x.cols(), inv_col_scales_.data(),
                                      q, ldq, row_scales->data());
    }
  }
  return ForwardPreQuantized(m, q, ldq, row_scales->data(), ws, act);
}

Matrix* QuantizedLinear::ForwardPreQuantized(int m, const int16_t* q, int ldq,
                                             const float* row_scales, Workspace* ws,
                                             kernels::Activation act) const {
  CDMPP_CHECK(ldq >= 2 * weights_.k2);
  Matrix* y = ws->NewMatrix(m, weights_.n);
  kernels::GemmS8S8BiasAct(m, q, ldq, weights_, row_scales, bias_.data(), act, y->data(),
                           y->cols());
  return y;
}

QuantizedMlp::QuantizedMlp(const Mlp& mlp, size_t num_fp32_tail_layers) {
  const size_t total = mlp.num_linear_layers();
  const size_t tail = std::min(num_fp32_tail_layers, total);
  layers_.reserve(total - tail);
  for (size_t i = 0; i < total - tail; ++i) {
    layers_.emplace_back(mlp.linear_layer(i));
  }
  fp32_tail_.reserve(tail);
  for (size_t i = total - tail; i < total; ++i) {
    fp32_tail_.push_back(mlp.linear_layer(i));  // calibration-time fp32 copy
  }
}

Matrix* QuantizedMlp::ForwardInference(const Matrix& x, Workspace* ws) const {
  const size_t total = num_layers();
  const Matrix* h = &x;
  Matrix* out = nullptr;
  for (size_t i = 0; i < total; ++i) {
    const kernels::Activation act =
        i + 1 < total ? kernels::Activation::kRelu : kernels::Activation::kNone;
    out = i < layers_.size() ? layers_[i].ForwardInference(*h, ws, act)
                             : fp32_tail_[i - layers_.size()].ForwardInference(*h, ws, act);
    h = out;
  }
  return out;
}

}  // namespace cdmpp

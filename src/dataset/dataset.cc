#include "src/dataset/dataset.h"

#include <algorithm>

#include "src/device/simulator.h"
#include "src/support/check.h"

namespace cdmpp {

namespace {

// A stable signature for task deduplication across networks.
std::string TaskSignature(const Task& task) {
  std::string sig = OpKindName(task.kind);
  for (int64_t d : task.dims) {
    sig += "_" + std::to_string(d);
  }
  sig += task.fused_relu ? "_relu" : "";
  return sig;
}

}  // namespace

const Task& Dataset::TaskOfProgram(int program_index) const {
  CDMPP_CHECK(program_index >= 0 && program_index < static_cast<int>(programs.size()));
  return tasks[static_cast<size_t>(programs[static_cast<size_t>(program_index)].task_id)].task;
}

bool Dataset::ProgramInModels(int program_index, const std::vector<int>& model_ids) const {
  int task_id = programs[static_cast<size_t>(program_index)].task_id;
  const TaskInfo& info = tasks[static_cast<size_t>(task_id)];
  for (int m : info.model_ids) {
    if (std::find(model_ids.begin(), model_ids.end(), m) != model_ids.end()) {
      return true;
    }
  }
  return false;
}

int Dataset::ModelIdByName(const std::string& name) const {
  for (const NetworkDef& net : networks) {
    if (net.name == name) {
      return net.id;
    }
  }
  return -1;
}

Dataset BuildDataset(const DatasetOptions& opts) {
  Dataset ds;
  ds.networks = BuildModelZoo();
  if (opts.max_networks > 0 && opts.max_networks < static_cast<int>(ds.networks.size())) {
    // Keep a spread of families plus the hold-out networks.
    std::vector<NetworkDef> kept;
    std::vector<std::string> holdouts = HoldoutNetworkNames();
    for (NetworkDef& net : ds.networks) {
      bool is_holdout =
          std::find(holdouts.begin(), holdouts.end(), net.name) != holdouts.end();
      if (is_holdout) {
        kept.push_back(std::move(net));
      }
    }
    size_t stride = ds.networks.size() / static_cast<size_t>(opts.max_networks) + 1;
    for (size_t i = 0; i < ds.networks.size() && kept.size() < static_cast<size_t>(opts.max_networks);
         i += stride) {
      if (ds.networks[i].ops.empty()) {
        continue;  // already moved out (hold-out)
      }
      kept.push_back(std::move(ds.networks[i]));
    }
    ds.networks = std::move(kept);
    for (size_t i = 0; i < ds.networks.size(); ++i) {
      ds.networks[i].id = static_cast<int>(i);
    }
  }

  // Deduplicate tasks across networks.
  std::unordered_map<std::string, int> sig_to_task;
  for (NetworkDef& net : ds.networks) {
    for (NetworkOp& op : net.ops) {
      std::string sig = TaskSignature(op.task);
      auto it = sig_to_task.find(sig);
      int task_id;
      if (it == sig_to_task.end()) {
        task_id = static_cast<int>(ds.tasks.size());
        sig_to_task.emplace(std::move(sig), task_id);
        TaskInfo info;
        info.task = op.task;
        info.task.id = task_id;
        ds.tasks.push_back(std::move(info));
      } else {
        task_id = it->second;
      }
      op.task.id = task_id;
      TaskInfo& info = ds.tasks[static_cast<size_t>(task_id)];
      if (info.model_ids.empty() || info.model_ids.back() != net.id) {
        info.model_ids.push_back(net.id);
      }
    }
  }

  // Sample schedules per task and extract compact ASTs once per program.
  Rng rng(opts.seed);
  for (TaskInfo& info : ds.tasks) {
    for (int s = 0; s < opts.schedules_per_task; ++s) {
      ProgramRecord rec;
      rec.task_id = info.task.id;
      rec.schedule = SampleSchedule(info.task, &rng);
      TensorProgram prog = GenerateProgram(info.task, rec.schedule);
      rec.ast = ExtractCompactAst(prog);
      info.program_indices.push_back(static_cast<int>(ds.programs.size()));
      ds.programs.push_back(std::move(rec));
    }
  }

  // Simulate latency of every program on every requested device.
  std::vector<int> device_ids = opts.device_ids;
  if (device_ids.empty()) {
    for (const DeviceSpec& spec : DeviceRegistry()) {
      device_ids.push_back(spec.id);
    }
  }
  Rng noise_rng = rng.Fork();
  for (int device_id : device_ids) {
    const DeviceSpec& spec = DeviceById(device_id);
    for (size_t p = 0; p < ds.programs.size(); ++p) {
      const ProgramRecord& rec = ds.programs[p];
      TensorProgram prog =
          GenerateProgram(ds.tasks[static_cast<size_t>(rec.task_id)].task, rec.schedule);
      Sample sample;
      sample.program_index = static_cast<int>(p);
      sample.device_id = device_id;
      sample.latency_seconds = SimulateLatency(prog, spec, opts.noise_sigma, &noise_rng);
      ds.samples.push_back(sample);
    }
  }
  return ds;
}

SplitIndices SplitDataset(const Dataset& ds, const std::vector<int>& device_ids,
                          const std::vector<int>& holdout_model_ids, Rng* rng,
                          double train_frac, double valid_frac) {
  CDMPP_CHECK(rng != nullptr);
  CDMPP_CHECK(train_frac + valid_frac <= 1.0);
  SplitIndices split;
  std::vector<int> pool;
  for (size_t i = 0; i < ds.samples.size(); ++i) {
    const Sample& s = ds.samples[i];
    if (!device_ids.empty() &&
        std::find(device_ids.begin(), device_ids.end(), s.device_id) == device_ids.end()) {
      continue;
    }
    if (!holdout_model_ids.empty() && ds.ProgramInModels(s.program_index, holdout_model_ids)) {
      split.holdout.push_back(static_cast<int>(i));
      continue;
    }
    pool.push_back(static_cast<int>(i));
  }
  rng->Shuffle(&pool);
  size_t n_train = static_cast<size_t>(train_frac * static_cast<double>(pool.size()));
  size_t n_valid = static_cast<size_t>(valid_frac * static_cast<double>(pool.size()));
  for (size_t i = 0; i < pool.size(); ++i) {
    if (i < n_train) {
      split.train.push_back(pool[i]);
    } else if (i < n_train + n_valid) {
      split.valid.push_back(pool[i]);
    } else {
      split.test.push_back(pool[i]);
    }
  }
  return split;
}

std::vector<int> SamplesOfModelOnDevice(const Dataset& ds, int model_id, int device_id) {
  std::vector<int> out;
  for (size_t i = 0; i < ds.samples.size(); ++i) {
    const Sample& s = ds.samples[i];
    if (s.device_id != device_id) {
      continue;
    }
    if (ds.ProgramInModels(s.program_index, {model_id})) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> SamplesOnDevice(const Dataset& ds, int device_id) {
  std::vector<int> out;
  for (size_t i = 0; i < ds.samples.size(); ++i) {
    if (ds.samples[i].device_id == device_id) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace cdmpp

// Reproduces paper Table 3: pre-training MAPE (%) under the four label
// normalization methods (Box-Cox / Yeo-Johnson / Quantile / original Y) on
// T4, A100 and K80. Expected shape: Box-Cox best (or tied with Quantile),
// original Y far worse.
#include <cstdio>

#include "src/exp/exp_common.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_tab03_normalization", "Table 3",
                   "MAPE by label-normalization method (T4, A100, K80)");
  Dataset ds = BuildBenchDataset({0, 4, 1});  // T4, A100, K80
  TablePrinter table({"device", "Box-Cox", "Yeo-Johnson", "Quantile", "original Y"});
  for (int device : {0, 4, 1}) {
    Rng rng(10000 + static_cast<uint64_t>(device));
    SplitIndices split = SplitDataset(ds, {device}, {}, &rng);
    std::vector<int> train = Take(split.train, 900);
    std::vector<std::string> row = {DeviceById(device).name};
    for (NormKind norm : {NormKind::kBoxCox, NormKind::kYeoJohnson, NormKind::kQuantile,
                          NormKind::kNone}) {
      PredictorConfig cfg = BenchPredictorConfig(28);
      cfg.norm = norm;
      CdmppPredictor predictor(cfg);
      predictor.Pretrain(ds, train, split.valid);
      row.push_back(FormatPercent(predictor.Evaluate(ds, split.test).mape, 2));
    }
    table.AddRow(std::move(row));
    std::printf("[%s done]\n", DeviceById(device).name.c_str());
    std::fflush(stdout);
  }
  table.Print(stdout);
  std::printf("\nPaper Table 3 (MAPE %%): T4 15.18/49.30/17.88/72.55;"
              " A100 17.53/20.09/17.38/68.77; K80 14.79/24.88/15.37/71.34.\n"
              "Expected shape: Box-Cox (or Quantile) best; original Y much worse.\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

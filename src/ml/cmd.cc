#include "src/ml/cmd.h"

#include <cmath>
#include <vector>

#include "src/support/check.h"

namespace cdmpp {

namespace {

struct Moments {
  std::vector<double> mean;                       // [d]
  std::vector<std::vector<double>> central;       // central[k-2][d] for k = 2..J
};

Moments ComputeMoments(const Matrix& z, int num_moments) {
  const int n = z.rows();
  const int d = z.cols();
  Moments m;
  m.mean.assign(static_cast<size_t>(d), 0.0);
  for (int i = 0; i < n; ++i) {
    const float* row = z.Row(i);
    for (int j = 0; j < d; ++j) {
      m.mean[static_cast<size_t>(j)] += row[j];
    }
  }
  for (double& v : m.mean) {
    v /= static_cast<double>(n);
  }
  m.central.assign(static_cast<size_t>(num_moments - 1),
                   std::vector<double>(static_cast<size_t>(d), 0.0));
  for (int i = 0; i < n; ++i) {
    const float* row = z.Row(i);
    for (int j = 0; j < d; ++j) {
      double c = row[j] - m.mean[static_cast<size_t>(j)];
      double p = c;
      for (int k = 2; k <= num_moments; ++k) {
        p *= c;
        m.central[static_cast<size_t>(k - 2)][static_cast<size_t>(j)] += p;
      }
    }
  }
  for (auto& vec : m.central) {
    for (double& v : vec) {
      v /= static_cast<double>(n);
    }
  }
  return m;
}

double EstimateSpan(const Matrix& z1, const Matrix& z2) {
  double lo = 1e30;
  double hi = -1e30;
  auto scan = [&](const Matrix& z) {
    for (size_t i = 0; i < z.size(); ++i) {
      lo = std::min(lo, static_cast<double>(z.data()[i]));
      hi = std::max(hi, static_cast<double>(z.data()[i]));
    }
  };
  scan(z1);
  scan(z2);
  return std::max(1.0, hi - lo);
}

double Norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) {
    s += x * x;
  }
  return std::sqrt(s);
}

}  // namespace

double CmdDistance(const Matrix& z1, const Matrix& z2, int num_moments, double span) {
  CDMPP_CHECK(z1.cols() == z2.cols());
  CDMPP_CHECK(z1.rows() > 0 && z2.rows() > 0);
  CDMPP_CHECK(num_moments >= 1);
  if (span <= 0.0) {
    span = EstimateSpan(z1, z2);
  }
  Moments m1 = ComputeMoments(z1, num_moments);
  Moments m2 = ComputeMoments(z2, num_moments);
  const int d = z1.cols();

  std::vector<double> diff(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    diff[static_cast<size_t>(j)] = m1.mean[static_cast<size_t>(j)] - m2.mean[static_cast<size_t>(j)];
  }
  double cmd = Norm(diff) / span;
  double span_pow = span;
  for (int k = 2; k <= num_moments; ++k) {
    span_pow *= span;
    for (int j = 0; j < d; ++j) {
      diff[static_cast<size_t>(j)] = m1.central[static_cast<size_t>(k - 2)][static_cast<size_t>(j)] -
                                     m2.central[static_cast<size_t>(k - 2)][static_cast<size_t>(j)];
    }
    cmd += Norm(diff) / span_pow;
  }
  return cmd;
}

namespace {

// Adds the gradient contribution of one side's sample set.
// sign = +1 for z1 (diff = m1 - m2), -1 for z2.
void AccumulateSideGrad(const Matrix& z, const Moments& m, int num_moments,
                        const std::vector<std::vector<double>>& unit_diffs,
                        const std::vector<double>& scales, double sign, double weight,
                        Matrix* dz) {
  const int n = z.rows();
  const int d = z.cols();
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int i = 0; i < n; ++i) {
    const float* row = z.Row(i);
    float* grow = dz->Row(i);
    for (int j = 0; j < d; ++j) {
      double c = row[j] - m.mean[static_cast<size_t>(j)];
      // Mean term: d mean_j / d z_ij = 1/n.
      double g = unit_diffs[0][static_cast<size_t>(j)] * scales[0] * inv_n;
      // Central moment terms: dM_k/dz_ij = (k/n) * (c^{k-1} - M_{k-1,j}),
      // where M_1 = 0.
      double c_pow = 1.0;  // becomes c^{k-1} at the top of iteration k
      for (int k = 2; k <= num_moments; ++k) {
        c_pow *= c;
        double prev_central =
            k == 2 ? 0.0 : m.central[static_cast<size_t>(k - 3)][static_cast<size_t>(j)];
        double dmk = static_cast<double>(k) * inv_n * (c_pow - prev_central);
        g += unit_diffs[static_cast<size_t>(k - 1)][static_cast<size_t>(j)] *
             scales[static_cast<size_t>(k - 1)] * dmk;
      }
      grow[j] += static_cast<float>(sign * weight * g);
    }
  }
}

}  // namespace

double CmdDistanceWithGrad(const Matrix& z1, const Matrix& z2, int num_moments, double span,
                           double weight, Matrix* dz1, Matrix* dz2) {
  CDMPP_CHECK(z1.cols() == z2.cols());
  CDMPP_CHECK(dz1 != nullptr && dz2 != nullptr);
  CDMPP_CHECK(dz1->rows() == z1.rows() && dz1->cols() == z1.cols());
  CDMPP_CHECK(dz2->rows() == z2.rows() && dz2->cols() == z2.cols());
  if (span <= 0.0) {
    span = EstimateSpan(z1, z2);
  }
  Moments m1 = ComputeMoments(z1, num_moments);
  Moments m2 = ComputeMoments(z2, num_moments);
  const int d = z1.cols();

  // For each term k (index 0 = mean term), the unit direction of the
  // difference vector and the 1/(||diff|| * span^k) scale.
  std::vector<std::vector<double>> unit_diffs(static_cast<size_t>(num_moments),
                                              std::vector<double>(static_cast<size_t>(d), 0.0));
  std::vector<double> scales(static_cast<size_t>(num_moments), 0.0);
  double cmd = 0.0;
  double span_pow = 1.0;
  for (int term = 0; term < num_moments; ++term) {
    span_pow *= span;
    auto& diff = unit_diffs[static_cast<size_t>(term)];
    for (int j = 0; j < d; ++j) {
      if (term == 0) {
        diff[static_cast<size_t>(j)] =
            m1.mean[static_cast<size_t>(j)] - m2.mean[static_cast<size_t>(j)];
      } else {
        diff[static_cast<size_t>(j)] =
            m1.central[static_cast<size_t>(term - 1)][static_cast<size_t>(j)] -
            m2.central[static_cast<size_t>(term - 1)][static_cast<size_t>(j)];
      }
    }
    double norm = Norm(diff);
    cmd += norm / span_pow;
    // d/d(diff_j) of ||diff||/span^k = diff_j / (||diff|| span^k).
    scales[static_cast<size_t>(term)] = norm > 1e-12 ? 1.0 / (norm * span_pow) : 0.0;
  }

  AccumulateSideGrad(z1, m1, num_moments, unit_diffs, scales, +1.0, weight, dz1);
  AccumulateSideGrad(z2, m2, num_moments, unit_diffs, scales, -1.0, weight, dz2);
  return cmd;
}

}  // namespace cdmpp

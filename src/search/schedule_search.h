// Ansor-style evolutionary schedule search guided by a cost model
// (paper §7.5, Fig. 14(b)): each round mutates a population of candidate
// schedules, ranks them with the cost model, "measures" the top candidates on
// the device (here: the simulator), and tracks the best latency found.
//
// Scoring goes through the CostModelClient seam (cost_model_client.h): whole
// populations are scored in one ScoreBatch call, so a ServeCostModel fills the
// PredictionService's leaf-count buckets by construction while the
// DirectCostModel baseline keeps the old one-candidate-at-a-time shape.
//
// Determinism contract: a SearchCurve is a pure function of
// (task, device, model state, opts.seed). Candidates are ranked from the
// index-ordered score vector with (score, index) tiebreaks and the rng stream
// never depends on score values, so the curve is bitwise identical across
// CDMPP_NUM_THREADS values, serve-vs-direct clients, and future completion
// order. (Wall-clock fields — score_seconds — are measurements, not part of
// the contract.)
#ifndef SRC_SEARCH_SCHEDULE_SEARCH_H_
#define SRC_SEARCH_SCHEDULE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "src/ast/compact_ast.h"
#include "src/device/simulator.h"
#include "src/search/cost_model_client.h"
#include "src/tir/schedule.h"

namespace cdmpp {

struct SearchOptions {
  int rounds = 40;
  int population = 24;
  int measured_per_round = 4;  // candidates actually "profiled" per round
  uint64_t seed = 31;
};

// Common result shape for every search driver (evolutionary, SA, random).
struct SearchCurve {
  // Best measured latency (seconds) after each round; non-increasing.
  std::vector<double> best_after_round;
  double final_best = 0.0;
  int total_measurements = 0;

  // The winning schedule and the content hash of its compact AST — the
  // cross-client quality-parity gate compares these (same seed must find the
  // exact same schedule under DirectCostModel and ServeCostModel).
  ScheduleDesc best_schedule;
  uint64_t best_ast_hash = 0;

  // Cost-model traffic: candidates pushed through ScoreBatch and the
  // wall-clock spent there (the bench's candidates/sec numerator and
  // denominator). score_seconds is a measurement — excluded from the
  // determinism contract above.
  int total_candidates = 0;
  double score_seconds = 0.0;
};

// Searches schedules for one task on one device. The cost model prunes the
// population each round; only `measured_per_round` candidates touch the
// simulator (the expensive "real measurement").
SearchCurve EvolutionarySearch(const Task& task, const DeviceSpec& device,
                               CostModelClient* client, const SearchOptions& opts);

// Convenience overload for plain-function cost models (XGB baseline, test
// heuristics): wraps `cost_model` in an FnCostModel.
SearchCurve EvolutionarySearch(const Task& task, const DeviceSpec& device,
                               const CostModelFn& cost_model, const SearchOptions& opts);

// Baseline: random search measuring the same number of candidates.
SearchCurve RandomSearch(const Task& task, const DeviceSpec& device, const SearchOptions& opts);

}  // namespace cdmpp

#endif  // SRC_SEARCH_SCHEDULE_SEARCH_H_

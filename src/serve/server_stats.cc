#include "src/serve/server_stats.h"

#include <algorithm>
#include <cstdio>

#include "src/support/cpu_features.h"
#include "src/support/stats.h"

namespace cdmpp {

ServerStats::ServerStats(size_t max_latency_samples)
    : max_latency_samples_(max_latency_samples), start_(std::chrono::steady_clock::now()) {
  latency_ms_.reserve(std::min<size_t>(max_latency_samples, 4096));
}

void ServerStats::RecordLatencyMs(double ms) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  if (latency_ms_.size() < max_latency_samples_) {
    latency_ms_.push_back(ms);
  }
}

ServerStatsSnapshot ServerStats::Snapshot() const {
  ServerStatsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.forward_passes = forward_passes_.load(std::memory_order_relaxed);
  s.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  s.qps = s.wall_seconds > 0.0 ? static_cast<double>(s.requests) / s.wall_seconds : 0.0;
  s.cache_hit_rate =
      s.requests > 0 ? static_cast<double>(s.cache_hits) / static_cast<double>(s.requests) : 0.0;
  s.mean_batch_occupancy =
      s.forward_passes > 0
          ? static_cast<double>(s.batched_rows) / static_cast<double>(s.forward_passes)
          : 0.0;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    latencies = latency_ms_;
  }
  // Percentiles sorts once and is defined for the edge cases: an empty
  // buffer reduces to 0/0, a single sample is its own p50 and p99.
  const std::vector<double> pcts = Percentiles(std::move(latencies), {50.0, 99.0});
  s.p50_latency_ms = pcts[0];
  s.p99_latency_ms = pcts[1];
  s.kernel_isa = KernelIsaName(ActiveKernelIsa());
  s.precision = PrecisionName(DefaultPrecision());
  return s;
}

std::string ServerStatsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu reqs in %.3fs (%.0f QPS) | hit rate %.1f%% | "
                "%llu fwd passes, mean occupancy %.1f | p50 %.3fms p99 %.3fms | isa %s | "
                "precision %s",
                static_cast<unsigned long long>(requests), wall_seconds, qps,
                cache_hit_rate * 100.0, static_cast<unsigned long long>(forward_passes),
                mean_batch_occupancy, p50_latency_ms, p99_latency_ms, kernel_isa.c_str(),
                precision.c_str());
  return buf;
}

}  // namespace cdmpp

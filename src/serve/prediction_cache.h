// Sharded LRU cache for served latency predictions.
//
// Keyed by (CompactAst::Hash(), DeviceSpec::Fingerprint()): two requests hit
// the same entry iff the cost model would see identical program features and
// identical device features, so a hit can skip the forward pass entirely.
// Autotuners re-query the same candidate schedules constantly (paper §6), so
// hit rates under real search traffic are high.
//
// Sharding: entries are distributed over independently locked shards by key
// hash, so concurrent lookups from the serving worker pool contend only when
// they land on the same shard.
#ifndef SRC_SERVE_PREDICTION_CACHE_H_
#define SRC_SERVE_PREDICTION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cdmpp {

// Cache identity of one (program, device) request.
struct CacheKey {
  uint64_t ast_hash = 0;
  uint64_t device_fingerprint = 0;

  bool operator==(const CacheKey& other) const {
    return ast_hash == other.ast_hash && device_fingerprint == other.device_fingerprint;
  }
};

// Mixes both halves so shard selection and bucket placement see all key bits.
struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    uint64_t h = key.ast_hash;
    h ^= key.device_fingerprint + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

class PredictionCache {
 public:
  // `capacity` is the total entry budget, split evenly across `num_shards`.
  PredictionCache(size_t capacity, int num_shards);

  PredictionCache(const PredictionCache&) = delete;
  PredictionCache& operator=(const PredictionCache&) = delete;

  // On hit, writes the cached prediction (latency in seconds) and refreshes
  // the entry's recency. Thread-safe.
  bool Lookup(const CacheKey& key, double* latency_seconds);

  // Inserts or refreshes; evicts the shard's least-recently-used entry when
  // the shard is at capacity. Thread-safe.
  void Insert(const CacheKey& key, double latency_seconds);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Relaxed: pure tallies read for reporting. Cache entries themselves are
  // only ever touched under the owning shard's mutex — that lock is the
  // happens-before edge for cached data; these counters order nothing.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    CacheKey key;
    double latency_seconds = 0.0;
  };
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index;
  };

  Shard& ShardFor(const CacheKey& key);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace cdmpp

#endif  // SRC_SERVE_PREDICTION_CACHE_H_

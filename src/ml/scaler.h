// Per-column feature standardization fitted on training data.
#ifndef SRC_ML_SCALER_H_
#define SRC_ML_SCALER_H_

#include <vector>

#include "src/nn/matrix.h"

namespace cdmpp {

class StandardScaler {
 public:
  // Fits per-column mean and std on the rows of x.
  void Fit(const Matrix& x);
  // In-place standardization; columns with ~zero variance are left centered.
  void Apply(Matrix* x) const;
  // Standardizes a single packed row buffer of `cols` floats.
  void ApplyRow(float* row) const;

  bool fitted() const { return !mean_.empty(); }
  int dim() const { return static_cast<int>(mean_.size()); }

 private:
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace cdmpp

#endif  // SRC_ML_SCALER_H_

#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/attention.h"
#include "src/nn/loss.h"
#include "src/nn/matrix.h"
#include "src/nn/optimizer.h"
#include "src/nn/transformer.h"
#include "tests/grad_check.h"

namespace cdmpp {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, scale));
  }
  return m;
}

// Scalar loss = sum(output * weights) for gradient checking: d(loss)/d(out)
// is just the weight matrix.
double WeightedSum(const Matrix& out, const Matrix& weights) {
  double s = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    s += static_cast<double>(out.data()[i]) * weights.data()[i];
  }
  return s;
}

TEST(MatrixTest, MatMulMatchesManual) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, TransposedVariantsAgree) {
  Rng rng(41);
  Matrix a = RandomMatrix(4, 5, &rng);
  Matrix b = RandomMatrix(5, 3, &rng);
  Matrix ref = MatMul(a, b);

  // a^T stored transposed: at [5,4]; MatMulTransA(at, b) == a x b.
  Matrix at(5, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) {
      at.At(j, i) = a.At(i, j);
    }
  }
  Matrix r1 = MatMulTransA(at, b);
  // b^T stored transposed: bt [3,5]; MatMulTransB(a, bt) == a x b.
  Matrix bt(3, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) {
      bt.At(j, i) = b.At(i, j);
    }
  }
  Matrix r2 = MatMulTransB(a, bt);
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(r1.data()[i], ref.data()[i], 1e-5);
    EXPECT_NEAR(r2.data()[i], ref.data()[i], 1e-5);
  }
}

TEST(MatrixTest, SoftmaxRowsSumToOne) {
  Rng rng(42);
  Matrix m = RandomMatrix(6, 9, &rng, 3.0);
  SoftmaxRows(&m);
  for (int i = 0; i < m.rows(); ++i) {
    float sum = 0.0f;
    for (int j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m.At(i, j), 0.0f);
      sum += m.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(LinearTest, GradientCheck) {
  Rng rng(43);
  Linear layer(5, 4, &rng);
  Matrix x = RandomMatrix(3, 5, &rng);
  Matrix w = RandomMatrix(3, 4, &rng);

  auto loss = [&]() { return WeightedSum(layer.Forward(x), w); };
  layer.ZeroGrad();
  loss();
  layer.Backward(w);
  std::vector<Param*> params;
  layer.CollectParams(&params);
  CheckParamGradients(params, loss);
}

TEST(LinearTest, InputGradientCheck) {
  Rng rng(44);
  Linear layer(4, 3, &rng);
  Matrix x = RandomMatrix(2, 4, &rng);
  Matrix w = RandomMatrix(2, 3, &rng);
  layer.ZeroGrad();
  layer.Forward(x);
  Matrix dx = layer.Backward(w);
  const double eps = 1e-3;
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      float orig = x.At(i, j);
      x.At(i, j) = orig + static_cast<float>(eps);
      double up = WeightedSum(layer.Forward(x), w);
      x.At(i, j) = orig - static_cast<float>(eps);
      double down = WeightedSum(layer.Forward(x), w);
      x.At(i, j) = orig;
      EXPECT_NEAR(dx.At(i, j), (up - down) / (2 * eps), 1e-2);
    }
  }
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(45);
  LayerNorm ln(8);
  Matrix x = RandomMatrix(4, 8, &rng, 5.0);
  Matrix y = ln.Forward(x);
  for (int i = 0; i < y.rows(); ++i) {
    double mean = 0.0;
    for (int j = 0; j < 8; ++j) {
      mean += y.At(i, j);
    }
    mean /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
  }
}

TEST(LayerNormTest, GradientCheck) {
  Rng rng(46);
  LayerNorm ln(6);
  Matrix x = RandomMatrix(3, 6, &rng);
  Matrix w = RandomMatrix(3, 6, &rng);
  auto loss = [&]() { return WeightedSum(ln.Forward(x), w); };
  ln.ZeroGrad();
  loss();
  ln.Backward(w);
  std::vector<Param*> params;
  ln.CollectParams(&params);
  CheckParamGradients(params, loss);
}

TEST(MlpTest, GradientCheck) {
  Rng rng(47);
  Mlp mlp({4, 6, 1}, &rng);
  Matrix x = RandomMatrix(5, 4, &rng);
  Matrix w = RandomMatrix(5, 1, &rng);
  auto loss = [&]() { return WeightedSum(mlp.Forward(x), w); };
  mlp.ZeroGrad();
  loss();
  mlp.Backward(w);
  std::vector<Param*> params;
  mlp.CollectParams(&params);
  CheckParamGradients(params, loss);
}

TEST(AttentionTest, OutputShapeMatchesInput) {
  Rng rng(48);
  MultiHeadSelfAttention attn(8, 2, &rng);
  Matrix x = RandomMatrix(6, 8, &rng);  // 2 samples x seq_len 3
  Matrix y = attn.Forward(x, 3);
  EXPECT_EQ(y.rows(), 6);
  EXPECT_EQ(y.cols(), 8);
}

TEST(AttentionTest, SamplesAreIndependent) {
  // Changing sample 1's input must not change sample 0's output.
  Rng rng(49);
  MultiHeadSelfAttention attn(8, 2, &rng);
  Matrix x = RandomMatrix(6, 8, &rng);
  Matrix y1 = attn.Forward(x, 3);
  x.At(4, 2) += 1.0f;  // perturb a row in the second sample
  Matrix y2 = attn.Forward(x, 3);
  for (int t = 0; t < 3; ++t) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(y1.At(t, j), y2.At(t, j));
    }
  }
}

TEST(AttentionTest, GradientCheck) {
  Rng rng(50);
  MultiHeadSelfAttention attn(4, 2, &rng);
  Matrix x = RandomMatrix(4, 4, &rng);  // 2 samples x seq_len 2
  Matrix w = RandomMatrix(4, 4, &rng);
  auto loss = [&]() { return WeightedSum(attn.Forward(x, 2), w); };
  attn.ZeroGrad();
  loss();
  attn.Backward(w);
  std::vector<Param*> params;
  attn.CollectParams(&params);
  CheckParamGradients(params, loss, 1e-3, 3e-2);
}

TEST(TransformerTest, GradientCheck) {
  Rng rng(51);
  TransformerEncoderLayer layer(4, 2, 8, &rng);
  Matrix x = RandomMatrix(4, 4, &rng);
  Matrix w = RandomMatrix(4, 4, &rng);
  auto loss = [&]() { return WeightedSum(layer.Forward(x, 2), w); };
  layer.ZeroGrad();
  loss();
  layer.Backward(w);
  std::vector<Param*> params;
  layer.CollectParams(&params);
  CheckParamGradients(params, loss, 1e-3, 5e-2, 6);
}

TEST(TransformerTest, StackedEncoderInputGradient) {
  Rng rng(52);
  TransformerEncoder enc(4, 2, 8, 2, &rng);
  Matrix x = RandomMatrix(4, 4, &rng);
  Matrix w = RandomMatrix(4, 4, &rng);
  enc.ZeroGrad();
  enc.Forward(x, 2);
  Matrix dx = enc.Backward(w);
  const double eps = 1e-2;
  int checked = 0;
  for (int i = 0; i < x.rows() && checked < 6; ++i) {
    for (int j = 0; j < x.cols() && checked < 6; ++j, ++checked) {
      float orig = x.At(i, j);
      x.At(i, j) = orig + static_cast<float>(eps);
      double up = WeightedSum(enc.Forward(x, 2), w);
      x.At(i, j) = orig - static_cast<float>(eps);
      double down = WeightedSum(enc.Forward(x, 2), w);
      x.At(i, j) = orig;
      double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(dx.At(i, j), numeric, 0.05 * std::max(1.0, std::abs(numeric)));
    }
  }
}

TEST(LstmTest, GradientCheck) {
  Rng rng(53);
  LstmCell cell(3, 4, &rng);
  Matrix x = RandomMatrix(2, 3, &rng);
  LstmCell::State prev = cell.ZeroState(2);
  prev.h = RandomMatrix(2, 4, &rng, 0.5);
  prev.c = RandomMatrix(2, 4, &rng, 0.5);
  Matrix w = RandomMatrix(2, 4, &rng);

  LstmCell::Cache cache;
  auto loss = [&]() {
    LstmCell::Cache tmp;
    return WeightedSum(cell.Forward(x, prev, &tmp).h, w);
  };
  cell.ZeroGrad();
  cell.Forward(x, prev, &cache);
  cell.Backward(cache, w, Matrix());
  std::vector<Param*> params;
  cell.CollectParams(&params);
  CheckParamGradients(params, loss, 1e-3, 3e-2);
}

TEST(OptimizerTest, AdamReducesQuadraticLoss) {
  // Minimize ||w - target||^2 with Adam.
  Param p;
  p.InitZero(1, 8);
  std::vector<float> target = {1, -2, 3, 0.5, -0.25, 2, -1, 0};
  Adam adam({&p}, 0.05);
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 300; ++step) {
    double loss = 0.0;
    for (int j = 0; j < 8; ++j) {
      float d = p.value.At(0, j) - target[static_cast<size_t>(j)];
      loss += d * d;
      p.grad.At(0, j) = 2 * d;
    }
    if (step == 0) {
      first_loss = loss;
    }
    last_loss = loss;
    adam.Step();
    p.grad.Zero();
  }
  EXPECT_LT(last_loss, first_loss * 1e-3);
}

TEST(OptimizerTest, SgdMomentumConverges) {
  Param p;
  p.InitZero(1, 4);
  Sgd sgd({&p}, 0.02);
  for (int step = 0; step < 400; ++step) {
    for (int j = 0; j < 4; ++j) {
      p.grad.At(0, j) = 2 * (p.value.At(0, j) - 1.0f);
    }
    sgd.Step();
    p.grad.Zero();
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(p.value.At(0, j), 1.0f, 1e-2);
  }
}

TEST(OptimizerTest, CyclicLrIsTriangular) {
  CyclicLr sched(0.1, 0.5, 10);
  EXPECT_DOUBLE_EQ(sched.LrAt(0), 0.1);
  EXPECT_DOUBLE_EQ(sched.LrAt(10), 0.5);
  EXPECT_DOUBLE_EQ(sched.LrAt(20), 0.1);
  EXPECT_DOUBLE_EQ(sched.LrAt(5), 0.3);
  EXPECT_DOUBLE_EQ(sched.LrAt(15), 0.3);
}

class LossGradTest : public ::testing::TestWithParam<LossKind> {};

TEST_P(LossGradTest, GradientMatchesFiniteDifference) {
  LossKind kind = GetParam();
  std::vector<float> pred = {1.2f, 3.4f, 0.8f, 2.0f};
  std::vector<float> target = {1.0f, 3.0f, 1.0f, 2.5f};
  LossResult res = ComputeLoss(kind, pred, target, 0.2);
  const double eps = 1e-4;
  for (size_t i = 0; i < pred.size(); ++i) {
    std::vector<float> up = pred;
    std::vector<float> down = pred;
    up[i] += static_cast<float>(eps);
    down[i] -= static_cast<float>(eps);
    double numeric = (ComputeLoss(kind, up, target, 0.2).value -
                      ComputeLoss(kind, down, target, 0.2).value) /
                     (2 * eps);
    EXPECT_NEAR(res.grad[i], numeric, 1e-3) << LossKindName(kind) << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradTest,
                         ::testing::Values(LossKind::kMse, LossKind::kMape, LossKind::kMspe,
                                           LossKind::kHybrid));

TEST(LossTest, HybridIsMsePlusLambdaMape) {
  std::vector<float> pred = {2.0f, 4.0f};
  std::vector<float> target = {1.0f, 5.0f};
  double mse = ComputeLoss(LossKind::kMse, pred, target, 0).value;
  double mape = ComputeLoss(LossKind::kMape, pred, target, 0).value;
  double hybrid = ComputeLoss(LossKind::kHybrid, pred, target, 0.3).value;
  EXPECT_NEAR(hybrid, mse + 0.3 * mape, 1e-9);
}

TEST(TrainingSmokeTest, TransformerFitsSimpleFunction) {
  // End-to-end: a tiny transformer + linear head should fit y = mean(x).
  Rng rng(54);
  const int seq = 3;
  const int d = 8;
  TransformerEncoder enc(d, 2, 16, 1, &rng);
  Linear head(seq * d, 1, &rng);
  std::vector<Param*> params;
  enc.CollectParams(&params);
  head.CollectParams(&params);
  Adam adam(params, 3e-3);

  auto make_batch = [&](int n, Matrix* x, std::vector<float>* y) {
    *x = RandomMatrix(n * seq, d, &rng);
    y->resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      float sum = 0.0f;
      for (int t = 0; t < seq; ++t) {
        for (int j = 0; j < d; ++j) {
          sum += x->At(i * seq + t, j);
        }
      }
      (*y)[static_cast<size_t>(i)] = sum / (seq * d);
    }
  };

  double first_loss = -1.0;
  double last_loss = 0.0;
  for (int step = 0; step < 150; ++step) {
    Matrix x;
    std::vector<float> y;
    make_batch(16, &x, &y);
    for (Param* p : params) {
      p->grad.Zero();
    }
    Matrix h = enc.Forward(x, seq);
    // Flatten each sample's rows into one row for the head.
    Matrix flat(16, seq * d);
    for (int i = 0; i < 16; ++i) {
      for (int t = 0; t < seq; ++t) {
        for (int j = 0; j < d; ++j) {
          flat.At(i, t * d + j) = h.At(i * seq + t, j);
        }
      }
    }
    Matrix pred = head.Forward(flat);
    double loss = 0.0;
    Matrix dpred(16, 1);
    for (int i = 0; i < 16; ++i) {
      float diff = pred.At(i, 0) - y[static_cast<size_t>(i)];
      loss += diff * diff / 16.0;
      dpred.At(i, 0) = 2.0f * diff / 16.0f;
    }
    if (first_loss < 0) {
      first_loss = loss;
    }
    last_loss = loss;
    Matrix dflat = head.Backward(dpred);
    Matrix dh(16 * seq, d);
    for (int i = 0; i < 16; ++i) {
      for (int t = 0; t < seq; ++t) {
        for (int j = 0; j < d; ++j) {
          dh.At(i * seq + t, j) = dflat.At(i, t * d + j);
        }
      }
    }
    enc.Backward(dh);
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

}  // namespace
}  // namespace cdmpp

// Cross-module integration tests: the full CDMPP pipeline end to end at
// miniature scale — dataset build -> pre-train -> cross-device sample +
// fine-tune -> end-to-end replay prediction.
#include <gtest/gtest.h>

#include "src/core/predictor.h"
#include "src/core/sampler.h"
#include "src/replay/e2e.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

const Dataset& PipelineDataset() {
  static const Dataset* ds = [] {
    DatasetOptions opts;
    opts.device_ids = {0, 2, 3};  // T4, P100, V100
    opts.schedules_per_task = 3;
    opts.max_networks = 10;
    opts.seed = 404;
    return new Dataset(BuildDataset(opts));
  }();
  return *ds;
}

PredictorConfig FastConfig() {
  PredictorConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  cfg.num_layers = 1;
  cfg.z_dim = 32;
  cfg.epochs = 8;
  cfg.seed = 5;
  return cfg;
}

TEST(IntegrationTest, CrossDevicePipelineImprovesWithFinetune) {
  const Dataset& ds = PipelineDataset();
  Rng rng(71);
  // Sources: T4 + P100. Target: V100.
  SplitIndices src = SplitDataset(ds, {0, 2}, {}, &rng);
  SplitIndices tgt = SplitDataset(ds, {3}, {}, &rng);

  CdmppPredictor predictor(FastConfig());
  predictor.Pretrain(ds, src.train, src.valid);
  double before = predictor.Evaluate(ds, tgt.test).mape;

  // KMeans-sampled tasks profiled on the target device.
  std::vector<int> tasks = SelectTasksKMeans(ds, 10, &rng);
  std::vector<int> target_labeled = SamplesForTasksOnDevice(ds, tasks, 3);
  // Fine-tune: prediction loss on source + target-labeled; CMD source/target.
  std::vector<int> labeled = src.train;
  labeled.insert(labeled.end(), target_labeled.begin(), target_labeled.end());
  std::vector<int> src_domain(src.train.begin(),
                              src.train.begin() + std::min<size_t>(400, src.train.size()));
  std::vector<int> tgt_domain = SamplesOnDevice(ds, 3);
  tgt_domain.resize(std::min<size_t>(tgt_domain.size(), 400));
  predictor.Finetune(ds, labeled, src_domain, tgt_domain, 4);
  double after = predictor.Evaluate(ds, tgt.test).mape;
  EXPECT_LT(after, before);
}

TEST(IntegrationTest, E2ePredictionWithinFactorOfTruth) {
  const Dataset& ds = PipelineDataset();
  Rng rng(72);
  SplitIndices split = SplitDataset(ds, {0, 2, 3}, {}, &rng);
  CdmppPredictor predictor(FastConfig());
  predictor.Pretrain(ds, split.train, {});

  NetworkDef net = BuildNetworkByName("resnet18_bs1_r224");
  NetworkSchedules scheds = ChooseSchedules(net, 9);
  const DeviceSpec& dev = DeviceByName("T4");
  double truth = E2eGroundTruth(net, dev, scheds);
  double pred = E2ePredicted(net, dev, scheds, [&](const CompactAst& ast, int device_id) {
    return predictor.PredictAst(ast, device_id);
  });
  EXPECT_GT(pred, 0.0);
  // A miniature model trained on 3 schedules/task: demand factor-of-3 only.
  EXPECT_LT(std::abs(pred - truth) / truth, 3.0);
}

TEST(IntegrationTest, HoldoutModelsNeverLeakIntoTraining) {
  const Dataset& ds = PipelineDataset();
  std::vector<int> holdout_ids;
  for (const std::string& name : HoldoutNetworkNames()) {
    int id = ds.ModelIdByName(name);
    if (id >= 0) {
      holdout_ids.push_back(id);
    }
  }
  ASSERT_FALSE(holdout_ids.empty());
  Rng rng(73);
  SplitIndices split = SplitDataset(ds, {}, holdout_ids, &rng);
  for (int idx : split.train) {
    EXPECT_FALSE(
        ds.ProgramInModels(ds.samples[static_cast<size_t>(idx)].program_index, holdout_ids));
  }
  EXPECT_FALSE(split.holdout.empty());
}

}  // namespace
}  // namespace cdmpp

// Serving-subsystem tests: sharded LRU cache semantics, concurrency safety,
// bitwise equivalence of batched serving with single-threaded prediction, and
// the throughput advantage of cross-request batching.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/prediction_service.h"
#include "src/support/cpu_features.h"
#include "src/support/parallel_for.h"
#include "src/tir/schedule.h"

namespace cdmpp {
namespace {

// Wall-clock comparisons measure batching, not scheduler thrash: when the
// global pool is oversubscribed (CDMPP_NUM_THREADS above the core count —
// e.g. the thread-count invariance configurations, which care about values,
// not speed), forked regions add context-switch noise that can randomly
// flip ~ms margins. The timing tests pin themselves to a pool no larger
// than the hardware for the duration of the measurement.
struct ScopedTimingPool {
  ScopedTimingPool()
      : pool(std::min(ThreadPool::Global().num_threads(),
                      std::max(1, static_cast<int>(std::thread::hardware_concurrency())))) {
    ThreadPool::SetGlobalForTesting(&pool);
  }
  ~ScopedTimingPool() { ThreadPool::SetGlobalForTesting(nullptr); }
  ThreadPool pool;
};

// ---- Cache unit tests ------------------------------------------------------

CacheKey Key(uint64_t a, uint64_t d) { return CacheKey{a, d}; }

TEST(PredictionCacheTest, HitMissAndValueRoundTrip) {
  PredictionCache cache(8, 1);
  double out = 0.0;
  EXPECT_FALSE(cache.Lookup(Key(1, 1), &out));
  cache.Insert(Key(1, 1), 0.25);
  ASSERT_TRUE(cache.Lookup(Key(1, 1), &out));
  EXPECT_EQ(out, 0.25);
  // Same AST on a different device is a different entry.
  EXPECT_FALSE(cache.Lookup(Key(1, 2), &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PredictionCacheTest, LruEvictsLeastRecentlyUsed) {
  PredictionCache cache(4, 1);
  for (uint64_t i = 1; i <= 4; ++i) {
    cache.Insert(Key(i, 0), static_cast<double>(i));
  }
  double out = 0.0;
  // Touch key 1 so key 2 becomes the eviction victim.
  ASSERT_TRUE(cache.Lookup(Key(1, 0), &out));
  cache.Insert(Key(5, 0), 5.0);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup(Key(1, 0), &out));
  EXPECT_FALSE(cache.Lookup(Key(2, 0), &out));
  EXPECT_TRUE(cache.Lookup(Key(3, 0), &out));
  EXPECT_TRUE(cache.Lookup(Key(5, 0), &out));
}

TEST(PredictionCacheTest, InsertRefreshesExistingEntry) {
  PredictionCache cache(2, 1);
  cache.Insert(Key(1, 0), 1.0);
  cache.Insert(Key(2, 0), 2.0);
  cache.Insert(Key(1, 0), 10.0);  // refresh, not a new entry
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert(Key(3, 0), 3.0);  // evicts key 2 (LRU after the refresh)
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(Key(1, 0), &out));
  EXPECT_EQ(out, 10.0);
  EXPECT_FALSE(cache.Lookup(Key(2, 0), &out));
}

TEST(PredictionCacheTest, ConcurrentAccessIsConsistent) {
  PredictionCache cache(256, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  std::atomic<int> value_mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &value_mismatches, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>((t * 37 + i) % 512);
        if (i % 3 == 0) {
          cache.Insert(Key(k, 0), static_cast<double>(k));
        } else {
          double out = -1.0;
          if (cache.Lookup(Key(k, 0), &out) && out != static_cast<double>(k)) {
            value_mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(value_mismatches.load(), 0);
  EXPECT_LE(cache.size(), 256u);
  EXPECT_GT(cache.hits(), 0u);
}

// ---- Service tests against a trained predictor -----------------------------

// One tiny trained world shared by all service tests (training dominates the
// suite's runtime, so it runs once).
struct ServeWorld {
  Dataset ds;
  std::unique_ptr<CdmppPredictor> predictor;
  std::vector<CompactAst> workload;  // distinct free-standing ASTs
};

ServeWorld& World() {
  static ServeWorld* world = [] {
    auto* w = new ServeWorld();
    DatasetOptions opts;
    opts.device_ids = {0};
    opts.schedules_per_task = 2;
    opts.max_networks = 6;
    opts.seed = 11;
    w->ds = BuildDataset(opts);

    PredictorConfig cfg;
    // Big enough that a forward pass has real GEMM work to amortize — with a
    // toy d_model the (identical) per-request queue/promise overhead drowns
    // the batching-vs-single comparison below in noise.
    cfg.d_model = 32;
    cfg.num_heads = 2;
    cfg.d_ff = 64;
    cfg.num_layers = 1;
    cfg.z_dim = 16;
    cfg.device_embed_dim = 8;
    cfg.device_hidden_dim = 16;
    cfg.decoder_hidden = {16};
    cfg.epochs = 2;
    cfg.seed = 3;
    w->predictor = std::make_unique<CdmppPredictor>(cfg);
    Rng rng(4);
    SplitIndices split = SplitDataset(w->ds, {0}, {}, &rng);
    w->predictor->Pretrain(w->ds, split.train, split.valid);

    // Fresh schedules the model never trained on, spread over many tasks so
    // several leaf-count buckets occur.
    Rng srng(9);
    for (const TaskInfo& info : w->ds.tasks) {
      for (int k = 0; k < 3; ++k) {
        w->workload.push_back(
            ExtractCompactAst(GenerateProgram(info.task, SampleSchedule(info.task, &srng))));
      }
    }
    // Materialize every head now so later const serving paths never mutate.
    for (const CompactAst& ast : w->workload) {
      w->predictor->EnsureHead(ast.num_leaves);
    }
    return w;
  }();
  return *world;
}

TEST(PredictBatchedTest, MatchesPredictAstBitwise) {
  ServeWorld& w = World();
  AstBatchView view;
  for (const CompactAst& ast : w.workload) {
    view.asts.push_back(&ast);
    view.device_ids.push_back(0);
  }
  std::vector<double> batched = w.predictor->PredictBatched(view);
  ASSERT_EQ(batched.size(), w.workload.size());
  for (size_t i = 0; i < w.workload.size(); ++i) {
    double single = w.predictor->PredictAst(w.workload[i], 0);
    EXPECT_EQ(batched[i], single) << "request " << i;  // bitwise-identical
  }
}

TEST(ServeTest, ConcurrentSubmitMatchesSingleThreadedPredictor) {
  ServeWorld& w = World();
  // The bitwise serving contract is per precision: the service must serve
  // exactly what the active precision's direct single-request forward
  // computes. Under CDMPP_PRECISION=int8 (the int8 CI leg) that is the
  // quantized path — which is batch-size-invariant bitwise thanks to its
  // per-row activation scales, so the same equality holds.
  // Expectations must come from the same data plane the service will use:
  // the active CDMPP_PRECISION (any of the three tiers on the CI matrix).
  const Precision mode = DefaultPrecision();
  if (mode != Precision::kFp32) {
    w.predictor->PrepareQuantizedInference();
    for (const CompactAst& ast : w.workload) {
      w.predictor->EnsureQuantizedHead(ast.num_leaves);
    }
  }
  std::vector<double> expected;
  expected.reserve(w.workload.size());
  for (const CompactAst& ast : w.workload) {
    if (mode != Precision::kFp32) {
      AstBatchView single;
      single.asts.push_back(&ast);
      single.device_ids.push_back(0);
      expected.push_back(
          w.predictor->PredictBatchedQuantized(single, /*num_forward_passes=*/nullptr, mode)[0]);
    } else {
      expected.push_back(w.predictor->PredictAst(ast, 0));
    }
  }

  ServeOptions opts;
  opts.num_workers = 4;
  opts.max_batch_size = 32;
  opts.batch_window_ms = 0.5;
  opts.enable_cache = false;  // force every request through a forward pass
  PredictionService service(w.predictor.get(), opts);

  constexpr int kClientThreads = 4;
  std::vector<std::vector<std::future<double>>> futures(kClientThreads);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&w, &service, &futures, c] {
      for (size_t i = static_cast<size_t>(c); i < w.workload.size(); i += kClientThreads) {
        futures[static_cast<size_t>(c)].push_back(service.Submit(w.workload[i], 0));
      }
    });
  }
  for (std::thread& th : clients) {
    th.join();
  }
  for (int c = 0; c < kClientThreads; ++c) {
    size_t slot = 0;
    for (size_t i = static_cast<size_t>(c); i < w.workload.size(); i += kClientThreads) {
      EXPECT_EQ(futures[static_cast<size_t>(c)][slot++].get(), expected[i])
          << "request " << i;  // bitwise-identical to the single-threaded result
    }
  }
  ServerStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests, w.workload.size());
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_GT(stats.forward_passes, 0u);
}

TEST(ServeTest, CacheHitSkipsForwardPass) {
  ServeWorld& w = World();
  ServeOptions opts;
  opts.num_workers = 1;
  opts.batch_window_ms = 0.0;
  opts.enable_cache = true;
  PredictionService service(w.predictor.get(), opts);

  const CompactAst& ast = w.workload.front();
  double first = service.Predict(ast, 0);
  ServerStatsSnapshot after_first = service.Stats();
  ASSERT_GE(after_first.forward_passes, 1u);
  EXPECT_EQ(after_first.cache_hits, 0u);

  double second = service.Predict(ast, 0);
  ServerStatsSnapshot after_second = service.Stats();
  EXPECT_EQ(second, first);
  EXPECT_EQ(after_second.cache_hits, 1u);
  // The hit was answered without touching the model.
  EXPECT_EQ(after_second.forward_passes, after_first.forward_passes);
  EXPECT_EQ(service.cache().hits(), 1u);

  // A different device misses: the device fingerprint is part of the key.
  service.Predict(ast, 3);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
}

TEST(ServeTest, DuplicateInFlightRequestsCoalesce) {
  ServeWorld& w = World();
  ServeOptions opts;
  opts.num_workers = 1;
  opts.max_batch_size = 64;
  opts.batch_window_ms = 50.0;  // generous window so all duplicates queue up
  opts.enable_cache = false;
  PredictionService service(w.predictor.get(), opts);

  constexpr int kDuplicates = 16;
  std::vector<std::future<double>> futures;
  for (int i = 0; i < kDuplicates; ++i) {
    futures.push_back(service.Submit(w.workload.front(), 0));
  }
  std::vector<double> results;
  for (auto& f : futures) {
    results.push_back(f.get());
  }
  for (double r : results) {
    EXPECT_EQ(r, results.front());
  }
  ServerStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kDuplicates));
  // At least one merge happened (timing decides exactly how many duplicates
  // land in one drain, but a 50ms window makes near-total coalescing typical).
  EXPECT_GT(stats.coalesced, 0u);
  EXPECT_LT(stats.batched_rows, static_cast<uint64_t>(kDuplicates));
}

TEST(ServeTest, BatchingDeliversHigherQpsThanBatchSizeOne) {
  ScopedTimingPool timing_pool;
  ServeWorld& w = World();
  // Same workload, replayed against a batching service and a batch-size-1
  // service. Repeats give the batched path coalescing-free volume (distinct
  // keys only: each AST appears once per pass, cache disabled).
  std::vector<const CompactAst*> requests;
  for (int pass = 0; pass < 4; ++pass) {
    for (const CompactAst& ast : w.workload) {
      requests.push_back(&ast);
    }
  }

  auto run_once = [&w, &requests](int max_batch, double window_ms) {
    ServeOptions opts;
    opts.num_workers = 2;
    opts.max_batch_size = max_batch;
    opts.batch_window_ms = window_ms;
    opts.enable_cache = false;
    PredictionService service(w.predictor.get(), opts);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<double>> futures;
    futures.reserve(requests.size());
    for (const CompactAst* ast : requests) {
      futures.push_back(service.Submit(*ast, 0));
    }
    for (auto& f : futures) {
      f.get();
    }
    double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    ServerStatsSnapshot stats = service.Stats();
    return std::make_pair(static_cast<double>(requests.size()) / seconds, stats);
  };

  // Best-of-N per mode: a throughput-capability comparison, insulated from
  // one-sided scheduler noise on loaded CI machines.
  constexpr int kRuns = 3;
  double qps_single = 0.0;
  double qps_batched = 0.0;
  ServerStatsSnapshot stats_single;
  ServerStatsSnapshot stats_batched;
  for (int r = 0; r < kRuns; ++r) {
    auto [qps_s, st_s] = run_once(/*max_batch=*/1, /*window_ms=*/0.0);
    if (qps_s > qps_single) {
      qps_single = qps_s;
      stats_single = st_s;
    }
    auto [qps_b, st_b] = run_once(/*max_batch=*/64, /*window_ms=*/0.2);
    if (qps_b > qps_batched) {
      qps_batched = qps_b;
      stats_batched = st_b;
    }
  }

  EXPECT_GT(stats_batched.mean_batch_occupancy, 1.5);
  EXPECT_NEAR(stats_single.mean_batch_occupancy, 1.0, 1e-9);
  // The acceptance bar: batching must beat one-forward-per-request. A shared
  // CI core can starve one side of a best-of-3 comparison; escalate to one
  // larger re-measurement before declaring a real regression.
  if (qps_batched <= qps_single) {
    qps_single = 0.0;
    qps_batched = 0.0;
    for (int r = 0; r < 2 * kRuns; ++r) {
      qps_single = std::max(qps_single, run_once(/*max_batch=*/1, /*window_ms=*/0.0).first);
      qps_batched = std::max(qps_batched, run_once(/*max_batch=*/64, /*window_ms=*/0.2).first);
    }
  }
  EXPECT_GT(qps_batched, qps_single);
}

TEST(PredictBatchedTest, BatchedForwardFasterThanPerRequestForward) {
  // The worker-side view of the same claim, free of queueing and scheduling
  // noise: one batched forward over the workload vs one forward per request.
  ScopedTimingPool timing_pool;
  ServeWorld& w = World();
  AstBatchView view;
  for (const CompactAst& ast : w.workload) {
    view.asts.push_back(&ast);
    view.device_ids.push_back(0);
  }
  w.predictor->PredictBatched(view);  // warm-up
  // Timing discipline for shared 1-core runners: each sample must span many
  // scheduler quanta (tens of ms), so a concurrent test binary slows both
  // modes proportionally instead of randomly flipping a ~1 ms comparison;
  // best-of-3 then discards whole-sample outliers.
  constexpr int kRepsPerSample = 20;
  constexpr int kSamples = 3;
  auto best_of = [](int samples, const std::function<void()>& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int s = 0; s < samples; ++s) {
      auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kRepsPerSample; ++r) {
        fn();
      }
      auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  auto measure_batched = [&](int samples) {
    return best_of(samples, [&] { w.predictor->PredictBatched(view); });
  };
  auto measure_single = [&](int samples) {
    return best_of(samples, [&] {
      for (const CompactAst& ast : w.workload) {
        w.predictor->PredictAst(ast, 0);
      }
    });
  };
  double batched = measure_batched(kSamples);
  double single = measure_single(kSamples);
  if (batched >= single) {
    // One symmetric escalation re-measurement before failing: both sides get
    // the same number of draws (see the QPS test above).
    batched = measure_batched(2 * kSamples);
    single = measure_single(2 * kSamples);
  }
  EXPECT_LT(batched, single);
}

// ---- Int8 quantized serving ------------------------------------------------

// The int8 accuracy contract (quantize.h): served predictions through the
// quantized path agree with fp32 to <= 1% relative on the serving fixtures.
TEST(QuantizedServingTest, Int8PredictorAgreesWithFp32WithinOnePercent) {
  ServeWorld& w = World();
  w.predictor->PrepareQuantizedInference();
  for (const CompactAst& ast : w.workload) {
    w.predictor->EnsureQuantizedHead(ast.num_leaves);
  }
  AstBatchView view;
  for (const CompactAst& ast : w.workload) {
    view.asts.push_back(&ast);
    view.device_ids.push_back(0);
  }
  std::vector<double> fp32 = w.predictor->PredictBatched(view);
  std::vector<double> int8 = w.predictor->PredictBatchedQuantized(view);
  ASSERT_EQ(int8.size(), fp32.size());
  for (size_t i = 0; i < fp32.size(); ++i) {
    ASSERT_GT(fp32[i], 0.0);
    EXPECT_GT(int8[i], 0.0);
    EXPECT_LE(std::abs(int8[i] - fp32[i]) / fp32[i], 0.01)
        << "request " << i << ": int8 " << int8[i] << " vs fp32 " << fp32[i];
  }
}

// Per-row activation scales keep the quantized path batch-size-invariant:
// a request served inside any batch is bitwise what it is served alone.
TEST(QuantizedServingTest, QuantizedBatchedMatchesQuantizedSingleBitwise) {
  ServeWorld& w = World();
  w.predictor->PrepareQuantizedInference();
  for (const CompactAst& ast : w.workload) {
    w.predictor->EnsureQuantizedHead(ast.num_leaves);
  }
  AstBatchView view;
  for (const CompactAst& ast : w.workload) {
    view.asts.push_back(&ast);
    view.device_ids.push_back(0);
  }
  std::vector<double> batched = w.predictor->PredictBatchedQuantized(view);
  for (size_t i = 0; i < w.workload.size(); ++i) {
    AstBatchView single;
    single.asts.push_back(&w.workload[i]);
    single.device_ids.push_back(0);
    std::vector<double> alone = w.predictor->PredictBatchedQuantized(single);
    EXPECT_EQ(batched[i], alone[0]) << "request " << i;  // bitwise-identical
  }
}

TEST(QuantizedServingTest, Int8ServiceMatchesDirectQuantizedForward) {
  ServeWorld& w = World();
  ServeOptions opts;
  opts.num_workers = 2;
  opts.max_batch_size = 32;
  opts.batch_window_ms = 0.2;
  opts.enable_cache = false;
  opts.precision = Precision::kInt8;
  // The constructor runs PrepareQuantizedInference; missing quantized heads
  // are created by the workers under the write lock.
  PredictionService service(w.predictor.get(), opts);
  std::vector<std::future<double>> futures;
  for (const CompactAst& ast : w.workload) {
    futures.push_back(service.Submit(ast, 0));
  }
  for (size_t i = 0; i < w.workload.size(); ++i) {
    AstBatchView single;
    single.asts.push_back(&w.workload[i]);
    single.device_ids.push_back(0);
    const double expected = w.predictor->PredictBatchedQuantized(single)[0];
    EXPECT_EQ(futures[i].get(), expected) << "request " << i;  // bitwise (per-row scales)
  }
  ServerStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.precision, "int8");
  EXPECT_GT(stats.forward_passes, 0u);
  EXPECT_NE(stats.ToString().find("precision int8"), std::string::npos);
}

// The A/B spelling: int8-heads keeps the pre-encoder quantization subset
// (heads + device MLP + decoder hiddens, encoder fully fp32) and must hold
// the same <= 1% agreement contract — it quantizes strictly less than int8.
TEST(QuantizedServingTest, Int8HeadsPredictorAgreesWithFp32WithinOnePercent) {
  ServeWorld& w = World();
  w.predictor->PrepareQuantizedInference();
  for (const CompactAst& ast : w.workload) {
    w.predictor->EnsureQuantizedHead(ast.num_leaves);
  }
  AstBatchView view;
  for (const CompactAst& ast : w.workload) {
    view.asts.push_back(&ast);
    view.device_ids.push_back(0);
  }
  std::vector<double> fp32 = w.predictor->PredictBatched(view);
  std::vector<double> heads = w.predictor->PredictBatchedQuantized(
      view, /*num_forward_passes=*/nullptr, Precision::kInt8Heads);
  ASSERT_EQ(heads.size(), fp32.size());
  for (size_t i = 0; i < fp32.size(); ++i) {
    ASSERT_GT(fp32[i], 0.0);
    EXPECT_GT(heads[i], 0.0);
    EXPECT_LE(std::abs(heads[i] - fp32[i]) / fp32[i], 0.01)
        << "request " << i << ": int8-heads " << heads[i] << " vs fp32 " << fp32[i];
  }
}

TEST(QuantizedServingTest, Int8HeadsServiceMatchesDirectSubsetForward) {
  ServeWorld& w = World();
  ServeOptions opts;
  opts.num_workers = 2;
  opts.max_batch_size = 32;
  opts.batch_window_ms = 0.2;
  opts.enable_cache = false;
  opts.precision = Precision::kInt8Heads;
  PredictionService service(w.predictor.get(), opts);
  std::vector<std::future<double>> futures;
  for (const CompactAst& ast : w.workload) {
    futures.push_back(service.Submit(ast, 0));
  }
  for (size_t i = 0; i < w.workload.size(); ++i) {
    AstBatchView single;
    single.asts.push_back(&w.workload[i]);
    single.device_ids.push_back(0);
    const double expected = w.predictor->PredictBatchedQuantized(
        single, /*num_forward_passes=*/nullptr, Precision::kInt8Heads)[0];
    EXPECT_EQ(futures[i].get(), expected) << "request " << i;  // bitwise (per-row scales)
  }
  ServerStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.precision, "int8-heads");
  EXPECT_NE(stats.ToString().find("precision int8-heads"), std::string::npos);
}

// The two quantized tiers must actually be different data planes: on the
// serving fixtures the encoder conversion changes served values (if it did
// not, the int8 mode would not be exercising the encoder at all).
TEST(QuantizedServingTest, Int8AndInt8HeadsAreDistinctDataPlanes) {
  ServeWorld& w = World();
  w.predictor->PrepareQuantizedInference();
  for (const CompactAst& ast : w.workload) {
    w.predictor->EnsureQuantizedHead(ast.num_leaves);
  }
  AstBatchView view;
  for (const CompactAst& ast : w.workload) {
    view.asts.push_back(&ast);
    view.device_ids.push_back(0);
  }
  std::vector<double> full = w.predictor->PredictBatchedQuantized(view);
  std::vector<double> heads = w.predictor->PredictBatchedQuantized(
      view, /*num_forward_passes=*/nullptr, Precision::kInt8Heads);
  ASSERT_EQ(full.size(), heads.size());
  bool any_diff = false;
  for (size_t i = 0; i < full.size(); ++i) {
    any_diff = any_diff || full[i] != heads[i];
  }
  EXPECT_TRUE(any_diff) << "int8 and int8-heads served identical values everywhere";
}

// ---- ServerStats unit tests ------------------------------------------------

TEST(ServerStatsTest, EmptyLatencyBufferSnapshotsToZeroPercentiles) {
  // Regression: snapshotting before any request completes must be
  // well-defined, not UB in the percentile reduction.
  ServerStats stats;
  ServerStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_DOUBLE_EQ(s.p50_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.qps, 0.0);
  // ToString on the empty snapshot must not crash either.
  EXPECT_FALSE(s.ToString().empty());
}

TEST(ServerStatsTest, SingleSampleIsItsOwnPercentiles) {
  ServerStats stats;
  stats.RecordLatencyMs(3.25);
  ServerStatsSnapshot s = stats.Snapshot();
  // The streaming histogram reports bucket midpoints: within the documented
  // ~0.8% relative error, not exact.
  EXPECT_NEAR(s.p50_latency_ms, 3.25, 3.25 * 0.02);
  EXPECT_NEAR(s.p99_latency_ms, 3.25, 3.25 * 0.02);
  EXPECT_DOUBLE_EQ(s.p50_latency_ms, s.p99_latency_ms);  // same bucket exactly
}

TEST(ServerStatsTest, PercentilesAreOrderedAndSnapshotIsRepeatable) {
  ServerStats stats;
  for (int i = 100; i >= 1; --i) {
    stats.RecordLatencyMs(static_cast<double>(i));
  }
  ServerStatsSnapshot s1 = stats.Snapshot();
  EXPECT_LE(s1.p50_latency_ms, s1.p99_latency_ms);
  EXPECT_LE(s1.p99_latency_ms, s1.p999_latency_ms);
  EXPECT_NEAR(s1.p50_latency_ms, 50.5, 50.5 * 0.02);
  // A second snapshot must see the same histogram (the reduction may not
  // consume or corrupt it).
  ServerStatsSnapshot s2 = stats.Snapshot();
  EXPECT_DOUBLE_EQ(s2.p50_latency_ms, s1.p50_latency_ms);
  EXPECT_DOUBLE_EQ(s2.p99_latency_ms, s1.p99_latency_ms);
}

TEST(ServerStatsTest, LateRunLatencySpikesMoveP99) {
  // Regression for the old bounded reservoir, which froze percentiles on the
  // first max_latency_samples requests: a latency regression arriving late in
  // a long run was invisible. The streaming histogram counts every request,
  // so late spikes move the tail percentiles.
  ServerStats stats;
  for (int i = 0; i < (1 << 15); ++i) {
    stats.RecordLatencyMs(1.0);
  }
  ServerStatsSnapshot before = stats.Snapshot();
  EXPECT_NEAR(before.p99_latency_ms, 1.0, 1.0 * 0.02);
  // A late 3% spike band at 500ms: with the old first-N freeze this never
  // registered; now p99 must land in it.
  for (int i = 0; i < 1200; ++i) {
    stats.RecordLatencyMs(500.0);
  }
  ServerStatsSnapshot after = stats.Snapshot();
  EXPECT_EQ(after.latency_hist.count, (1u << 15) + 1200u);
  EXPECT_NEAR(after.p99_latency_ms, 500.0, 500.0 * 0.02);
  EXPECT_NEAR(after.p50_latency_ms, 1.0, 1.0 * 0.02);
}

TEST(ServerStatsTest, ResetReopensTheMeasurementWindow) {
  ServerStats stats;
  stats.RecordRequest();
  stats.RecordLatencyMs(10.0);
  stats.RecordForwardPasses(1, 1);
  stats.Reset();
  ServerStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.forward_passes, 0u);
  EXPECT_EQ(s.latency_hist.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50_latency_ms, 0.0);
  stats.RecordRequest();
  stats.RecordLatencyMs(2.0);
  ServerStatsSnapshot s2 = stats.Snapshot();
  EXPECT_EQ(s2.requests, 1u);
  EXPECT_NEAR(s2.p50_latency_ms, 2.0, 2.0 * 0.02);
}

TEST(ServerStatsTest, SnapshotDeltaMeasuresTheInterval) {
  ServerStats stats;
  for (int i = 0; i < 100; ++i) {
    stats.RecordRequest();
    stats.RecordLatencyMs(1.0);
  }
  ServerStatsSnapshot first = stats.Snapshot();
  for (int i = 0; i < 50; ++i) {
    stats.RecordRequest();
    stats.RecordCacheHits();
    stats.RecordLatencyMs(100.0);
  }
  ServerStatsSnapshot second = stats.Snapshot();
  ServerStatsSnapshot delta = second.Delta(first);
  EXPECT_EQ(delta.requests, 50u);
  EXPECT_EQ(delta.cache_hits, 50u);
  EXPECT_EQ(delta.latency_hist.count, 50u);
  // Cumulative percentiles still see the early 1ms mass; the interval delta
  // must see only the 100ms window.
  EXPECT_NEAR(second.p50_latency_ms, 1.0, 1.0 * 0.02);
  EXPECT_NEAR(delta.p50_latency_ms, 100.0, 100.0 * 0.02);
  EXPECT_DOUBLE_EQ(delta.cache_hit_rate, 1.0);
  EXPECT_GT(delta.wall_seconds, 0.0);
  EXPECT_LE(delta.wall_seconds, second.wall_seconds);
}

TEST(ServerStatsTest, ToStringRendersTheLatencyHistogram) {
  ServerStats stats;
  stats.RecordLatencyMs(0.8);
  stats.RecordLatencyMs(1.6);
  const std::string text = stats.Snapshot().ToString();
  // Headline line plus per-octave histogram rows with counts and bars.
  EXPECT_NE(text.find("p99.9"), std::string::npos);
  EXPECT_NE(text.find('\n'), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find(")ms"), std::string::npos);
}

TEST(ServerStatsTest, SnapshotReportsDispatchedKernelIsa) {
  ServerStats stats;
  ServerStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.kernel_isa, KernelIsaName(ActiveKernelIsa()));
  EXPECT_NE(s.ToString().find("isa " + s.kernel_isa), std::string::npos);
}

}  // namespace
}  // namespace cdmpp

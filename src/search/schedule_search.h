// Ansor-style evolutionary schedule search guided by a cost model
// (paper §7.5, Fig. 14(b)): each round mutates a population of candidate
// schedules, ranks them with the cost model, "measures" the top candidates on
// the device (here: the simulator), and tracks the best latency found.
#ifndef SRC_SEARCH_SCHEDULE_SEARCH_H_
#define SRC_SEARCH_SCHEDULE_SEARCH_H_

#include <functional>

#include "src/ast/compact_ast.h"
#include "src/device/simulator.h"
#include "src/tir/schedule.h"

namespace cdmpp {

struct SearchOptions {
  int rounds = 40;
  int population = 24;
  int measured_per_round = 4;  // candidates actually "profiled" per round
  uint64_t seed = 31;
};

struct SearchCurve {
  // Best measured latency (seconds) after each round; non-increasing.
  std::vector<double> best_after_round;
  double final_best = 0.0;
  int total_measurements = 0;
};

// Cost model interface: estimated latency (seconds) of a candidate program.
using CostModelFn = std::function<double(const CompactAst& ast, int device_id)>;

// Searches schedules for one task on one device. The cost model prunes the
// population each round; only `measured_per_round` candidates touch the
// simulator (the expensive "real measurement").
SearchCurve EvolutionarySearch(const Task& task, const DeviceSpec& device,
                               const CostModelFn& cost_model, const SearchOptions& opts);

// Baseline: random search measuring the same number of candidates.
SearchCurve RandomSearch(const Task& task, const DeviceSpec& device, const SearchOptions& opts);

}  // namespace cdmpp

#endif  // SRC_SEARCH_SCHEDULE_SEARCH_H_

// Runtime CPU-feature detection and the kernel-ISA dispatch knob.
//
// The GEMM kernel layer (src/nn/kernels.h) ships one portable scalar
// implementation plus hand-written AVX2 microkernels compiled into their own
// translation unit with -mavx2. Which body runs is decided here, at runtime,
// so a single binary is portable across x86 microarchitectures:
//
//   * `CpuSupportsAvx2Fma()` asks CPUID (via the compiler builtin, which also
//     verifies OS xsave support) whether AVX2+FMA are usable on this host.
//   * `ActiveKernelIsa()` is what the kernels actually dispatch on. It
//     defaults to the best supported ISA and honors the CDMPP_KERNEL_ISA
//     environment variable (`scalar` or `avx2`) read once at first use —
//     the knob CI's scalar-fallback job and A/B benchmarking use. Requesting
//     an unsupported ISA falls back to scalar with a warning on stderr.
//   * `SetKernelIsa()` overrides the active ISA programmatically; tests and
//     bench_gemm use it to run both paths in one process.
//
// Both kernel bodies accumulate each output element over the reduction in
// ascending p order, independent of batch size and thread partition, so the
// serving layer's bitwise batch-size-invariance contract holds under either
// ISA. Switching ISA changes last-ulp rounding only: the AVX2 body fuses each
// multiply-add (FMA, one rounding) while the scalar body — pinned to plain
// IEEE mul+add via -ffp-contract=off — rounds twice, so the two agree to
// ~1e-6 relative. Pick the ISA per process, not per request.
#ifndef SRC_SUPPORT_CPU_FEATURES_H_
#define SRC_SUPPORT_CPU_FEATURES_H_

namespace cdmpp {

enum class KernelIsa { kScalar, kAvx2 };

// True when this build has the AVX2 kernel bodies and the host CPU + OS
// support AVX2 and FMA. False on non-x86 builds.
bool CpuSupportsAvx2Fma();

// The ISA the kernel layer dispatches to right now.
KernelIsa ActiveKernelIsa();

// Overrides the active ISA. Returns false (and changes nothing) when the
// requested ISA is not available on this host/build.
bool SetKernelIsa(KernelIsa isa);

// "scalar" / "avx2" — the spelling CDMPP_KERNEL_ISA accepts and the benches
// and ServerStats report.
const char* KernelIsaName(KernelIsa isa);

// ---- Serving numeric precision (the CDMPP_KERNEL_ISA sibling knob). ---------
//
// kFp32 is the default data plane. The two quantized tiers route serving
// forwards through the int8 symmetric-quantized kernel layer
// (src/nn/quantize.h) with different coverage:
//   * kInt8 — the full quantized data plane: transformer-encoder QKV/output
//     projections and FFN pair, per-leaf-count heads, device MLP, and decoder
//     hiddens (attention's activation×activation score/context GEMMs, the
//     input projection, LayerNorms, and the decoder's final [*, 1] projection
//     stay fp32 — see README "Int8 quantized serving").
//   * kInt8Heads — the pre-encoder subset (heads + device MLP + decoder
//     hiddens only), kept as a spelling for A/B-measuring the encoder
//     conversion against the previous tier.
// Unlike the ISA, precision is a per-service choice (ServeOptions::precision),
// not a global dispatch: DefaultPrecision() only resolves the CDMPP_PRECISION
// environment override ("fp32" | "int8" | "int8-heads", read once at first
// use) that seeds that option — the knob CI's int8 matrix legs and A/B
// benchmarking use. Unknown values are rejected loudly on stderr and fall
// back to fp32.
enum class Precision { kFp32, kInt8Heads, kInt8 };

// Strict full-string parse of a CDMPP_PRECISION spelling ("fp32" |
// "int8-heads" | "int8"). Returns false — writing nothing — for anything
// else, including null, empty, whitespace, prefixes ("int"), and trailing
// garbage ("int8x"): misconfigured values must be rejected, never silently
// coerced (the ResolveNumThreads hardening pattern). Exposed for regression
// tests; DefaultPrecision() is the one production caller.
bool ParsePrecision(const char* value, Precision* out);

Precision DefaultPrecision();

// "fp32" / "int8-heads" / "int8" — the spelling CDMPP_PRECISION accepts and
// the benches and ServerStats report.
const char* PrecisionName(Precision precision);

}  // namespace cdmpp

#endif  // SRC_SUPPORT_CPU_FEATURES_H_

// Transformer encoder layer and stacked encoder (post-LN as in the original
// "Attention Is All You Need", which the paper's predictor follows: Fig. 4).
#ifndef SRC_NN_TRANSFORMER_H_
#define SRC_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "src/nn/attention.h"

namespace cdmpp {

// One encoder block: x -> LN(x + MHA(x)) -> LN(.. + FFN(..)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int d_model, int num_heads, int d_ff, Rng* rng);

  Matrix Forward(const Matrix& x, int seq_len);
  Matrix ForwardInference(const Matrix& x, int seq_len) const;
  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

 private:
  MultiHeadSelfAttention attn_;
  LayerNorm norm1_;
  std::unique_ptr<Linear> ff1_;
  Relu ff_relu_;
  std::unique_ptr<Linear> ff2_;
  LayerNorm norm2_;
};

// A stack of encoder layers.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int d_model, int num_heads, int d_ff, int num_layers, Rng* rng);

  Matrix Forward(const Matrix& x, int seq_len);
  // Cache-free const forward (see src/nn/layers.h): safe for concurrent use
  // on a shared encoder while no thread is training it.
  Matrix ForwardInference(const Matrix& x, int seq_len) const;
  // Hot path: all intermediates from `ws` (one arena per thread); the fused
  // Linear+ReLU kernel runs the FFN's hidden layer in one pass.
  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

  int d_model() const { return d_model_; }

 private:
  int d_model_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

}  // namespace cdmpp

#endif  // SRC_NN_TRANSFORMER_H_

// Data-plane allocation tests: a counting global allocator asserts that the
// steady-state inference hot path — layer ForwardInference over a Workspace
// arena, and the full CdmppPredictor::PredictBatched — performs ZERO heap
// allocations once warm. Plus bitwise equivalence of the arena path with the
// allocating convenience path.
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/predictor.h"
#include "src/nn/workspace.h"
#include "src/tir/schedule.h"

// ---- Counting allocator ----------------------------------------------------
//
// Thread-local counter of operator-new calls on this thread. Trivially
// initialized (static zero-init), so it is safe to touch before thread-local
// dynamic initialization runs. Worker-pool threads count into their own
// counters; the assertions below only examine the calling thread, which is
// the thread the Workspace/BatchPlan reuse contract applies to.
static thread_local long g_thread_allocs = 0;

static void* CountedAlloc(std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}

// These replacements pair consistently: operator new hands out malloc-backed
// memory, so operator delete must free() it. GCC's -Wmismatched-new-delete
// heuristic inlines CountedAlloc, sees new/free at call sites, and cannot
// tell that these definitions ARE the matching pair — suppress it here only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace cdmpp {
namespace {

// One tiny trained predictor shared by the tests (training dominates).
struct TestWorld {
  Dataset ds;
  std::unique_ptr<CdmppPredictor> predictor;
  std::vector<CompactAst> workload;
};

TestWorld& World() {
  static TestWorld* world = [] {
    auto* w = new TestWorld();
    DatasetOptions opts;
    opts.device_ids = {0};
    opts.schedules_per_task = 2;
    opts.max_networks = 4;
    opts.seed = 31;
    w->ds = BuildDataset(opts);

    PredictorConfig cfg;
    cfg.d_model = 16;
    cfg.num_heads = 2;
    cfg.d_ff = 32;
    cfg.num_layers = 1;
    cfg.z_dim = 16;
    cfg.device_embed_dim = 8;
    cfg.device_hidden_dim = 16;
    cfg.decoder_hidden = {16};
    cfg.epochs = 1;
    cfg.seed = 5;
    w->predictor = std::make_unique<CdmppPredictor>(cfg);
    Rng rng(6);
    SplitIndices split = SplitDataset(w->ds, {0}, {}, &rng);
    w->predictor->Pretrain(w->ds, split.train, split.valid);

    Rng srng(7);
    for (const TaskInfo& info : w->ds.tasks) {
      for (int k = 0; k < 2; ++k) {
        w->workload.push_back(
            ExtractCompactAst(GenerateProgram(info.task, SampleSchedule(info.task, &srng))));
      }
    }
    for (const CompactAst& ast : w->workload) {
      w->predictor->EnsureHead(ast.num_leaves);
    }
    return w;
  }();
  return *world;
}

AstBatchView ViewOf(const TestWorld& w) {
  AstBatchView view;
  for (const CompactAst& ast : w.workload) {
    view.asts.push_back(&ast);
    view.device_ids.push_back(0);
  }
  return view;
}

TEST(WorkspaceTest, SlotsAndAddressesAreStableAcrossReset) {
  Workspace ws;
  Matrix* a = ws.NewMatrix(8, 16);
  Matrix* b = ws.NewMatrix(3, 5);
  EXPECT_EQ(ws.num_slots(), 2u);
  EXPECT_EQ(ws.live_slots(), 2u);
  ws.Reset();
  EXPECT_EQ(ws.live_slots(), 0u);
  // Same slots handed back, capacity retained, shapes rewritable.
  Matrix* a2 = ws.NewMatrix(4, 4);
  Matrix* b2 = ws.NewMatrix(3, 7);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(b2, b);
  EXPECT_EQ(ws.num_slots(), 2u);
  EXPECT_EQ(a2->rows(), 4);
  EXPECT_EQ(a2->cols(), 4);
  EXPECT_GE(ws.pooled_floats(), 8u * 16u);
}

TEST(WorkspaceTest, WarmNewMatrixDoesNotAllocate) {
  Workspace ws;
  ws.NewMatrix(32, 64);
  ws.NewMatrix(16, 16);
  ws.Reset();
  const long before = g_thread_allocs;
  Matrix* a = ws.NewMatrix(32, 64);
  Matrix* b = ws.NewMatrix(16, 16);
  const long delta = g_thread_allocs - before;
  EXPECT_EQ(delta, 0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
}

TEST(DataPlaneAllocTest, LayerArenaOverloadsMatchAllocatingOverloads) {
  Rng rng(12);
  Relu relu;
  LayerNorm ln(16);
  Matrix x(9, 16);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 2.0));
  }
  Workspace ws;
  const Matrix* relu_ws = relu.ForwardInference(x, &ws);
  Matrix relu_alloc = relu.ForwardInference(x);
  const Matrix* ln_ws = ln.ForwardInference(x, &ws);
  Matrix ln_alloc = ln.ForwardInference(x);
  ASSERT_EQ(relu_ws->size(), relu_alloc.size());
  ASSERT_EQ(ln_ws->size(), ln_alloc.size());
  for (size_t i = 0; i < relu_alloc.size(); ++i) {
    EXPECT_EQ(relu_ws->data()[i], relu_alloc.data()[i]);  // bitwise
    EXPECT_EQ(ln_ws->data()[i], ln_alloc.data()[i]);
  }
}

TEST(DataPlaneAllocTest, EncoderForwardInferenceIsAllocationFreeWhenWarm) {
  Rng rng(11);
  TransformerEncoder enc(/*d_model=*/16, /*num_heads=*/2, /*d_ff=*/32, /*num_layers=*/2,
                         &rng);
  Matrix x(6 * 4, 16);  // 4 samples x seq_len 6
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  Workspace ws;
  ws.Reset();
  enc.ForwardInference(x, 6, &ws);  // warm the arena
  ws.Reset();
  const long before = g_thread_allocs;
  Matrix* y = enc.ForwardInference(x, 6, &ws);
  const long delta = g_thread_allocs - before;
  EXPECT_EQ(delta, 0) << "encoder inference must not touch the heap when warm";
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->rows(), 24);
  EXPECT_EQ(y->cols(), 16);
}

TEST(DataPlaneAllocTest, PredictBatchedSteadyStateIsAllocationFree) {
  TestWorld& w = World();
  AstBatchView view = ViewOf(w);
  Workspace ws;
  std::vector<double> out(view.size(), 0.0);
  // Two warm-up passes: the first grows every arena/plan buffer, the second
  // proves the shapes stabilized.
  w.predictor->PredictBatched(view, &ws, out.data());
  w.predictor->PredictBatched(view, &ws, out.data());
  const long before = g_thread_allocs;
  uint64_t passes = 0;
  w.predictor->PredictBatched(view, &ws, out.data(), &passes);
  const long delta = g_thread_allocs - before;
  EXPECT_EQ(delta, 0) << "steady-state PredictBatched must be allocation-free per request";
  EXPECT_GE(passes, 1u);
}

TEST(DataPlaneEquivalenceTest, EmptyViewPredictsNothing) {
  // Regression: an empty view's vector overload passes data() == nullptr;
  // this must return an empty result, not trip the null-output check.
  TestWorld& w = World();
  AstBatchView empty;
  uint64_t passes = 123;
  std::vector<double> out = w.predictor->PredictBatched(empty, &passes);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(passes, 0u);
}

TEST(DataPlaneEquivalenceTest, BatchedViewMatchesSingletonViewsBitwise) {
  // The kernels' batch-size-invariance contract surfaced at the predictor
  // level: predicting a full multi-bucket view in one call must be bitwise
  // identical to predicting each AST through its own single-element view
  // with a different arena. (The vector PredictBatched overload delegates to
  // the arena overload, so comparing those two would be a tautology — this
  // compares different batch compositions instead.)
  TestWorld& w = World();
  AstBatchView view = ViewOf(w);
  Workspace batch_ws;
  std::vector<double> batched(view.size(), -1.0);
  w.predictor->PredictBatched(view, &batch_ws, batched.data());

  Workspace single_ws;
  for (size_t i = 0; i < w.workload.size(); ++i) {
    AstBatchView one;
    one.asts = {&w.workload[i]};
    one.device_ids = {0};
    double pred = -1.0;
    w.predictor->PredictBatched(one, &single_ws, &pred);
    EXPECT_EQ(batched[i], pred) << "request " << i;  // bitwise
    EXPECT_GT(pred, 0.0);
    EXPECT_TRUE(std::isfinite(pred));
  }
}

}  // namespace
}  // namespace cdmpp

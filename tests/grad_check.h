// Shared numerical-gradient checking utilities for the NN test suite.
#ifndef TESTS_GRAD_CHECK_H_
#define TESTS_GRAD_CHECK_H_

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/nn/layers.h"

namespace cdmpp {

// Compares the analytic gradients stored in `params` against central finite
// differences of `loss_fn` (which must re-run the forward pass and return the
// scalar loss). `loss_fn` must not perturb state other than via the params.
inline void CheckParamGradients(std::vector<Param*> params,
                                const std::function<double()>& loss_fn, double eps = 1e-3,
                                double tol = 2e-2, int max_entries_per_param = 12) {
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Param* p = params[pi];
    size_t stride = std::max<size_t>(1, p->value.size() / static_cast<size_t>(max_entries_per_param));
    for (size_t j = 0; j < p->value.size(); j += stride) {
      float orig = p->value.data()[j];
      p->value.data()[j] = orig + static_cast<float>(eps);
      double up = loss_fn();
      p->value.data()[j] = orig - static_cast<float>(eps);
      double down = loss_fn();
      p->value.data()[j] = orig;
      double numeric = (up - down) / (2.0 * eps);
      double analytic = p->grad.data()[j];
      double scale = std::max({1.0, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * scale)
          << "param " << pi << " entry " << j;
    }
  }
}

}  // namespace cdmpp

#endif  // TESTS_GRAD_CHECK_H_

// Simulated-annealing schedule search over the same Ansor-style space as the
// evolutionary driver, scoring through the CostModelClient seam.
//
// Shape: a population of independent chains (not one walker — a batch of
// proposals per sweep is what fills the serving tier's leaf-count buckets),
// a geometric temperature schedule, and Metropolis acceptance on the cost
// model's predicted latency. Each sweep mutates every chain once
// (MutateSchedule neighborhood), scores all proposals in ONE ScoreBatch, and
// accepts per chain; the top chains by current score are then "measured" on
// the simulator, which is what the SearchCurve tracks — the same
// cheap-score/expensive-measure split as EvolutionarySearch, so the two
// drivers' curves are directly comparable.
//
// Determinism: same contract as schedule_search.h. Acceptance draws one
// uniform per chain per sweep UNCONDITIONALLY (even when delta <= 0 would
// accept without it), so the rng stream never depends on score values and the
// curve is bitwise-identical across clients and thread counts. The initial
// temperature is scaled from the seed population's score spread, making the
// schedule self-tuning per task without breaking the contract (scores are
// themselves deterministic for fixed model state).
#ifndef SRC_SEARCH_SA_SEARCH_H_
#define SRC_SEARCH_SA_SEARCH_H_

#include <cstdint>

#include "src/search/schedule_search.h"

namespace cdmpp {

struct SaOptions {
  int sweeps = 40;              // one curve point per sweep
  int chains = 16;              // independent walkers == proposals per ScoreBatch
  double initial_temp = 0.25;   // x the seed population's score spread
  double cooling = 0.92;        // geometric: T(sweep) = T0 * cooling^sweep
  int measured_per_sweep = 2;   // chains "profiled" on the simulator per sweep
  uint64_t seed = 31;
};

// Anneals `chains` schedules for one task on one device; emits the same
// SearchCurve shape as EvolutionarySearch/RandomSearch.
SearchCurve SimulatedAnnealingSearch(const Task& task, const DeviceSpec& device,
                                     CostModelClient* client, const SaOptions& opts);

}  // namespace cdmpp

#endif  // SRC_SEARCH_SA_SEARCH_H_

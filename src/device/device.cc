#include "src/device/device.h"

#include <cmath>

#include "src/support/check.h"
#include "src/support/fnv_hash.h"

namespace cdmpp {

uint64_t DeviceSpec::Fingerprint() const {
  uint64_t h = kFnvOffset;
  h = FnvMixBytes(h, name.data(), name.size());
  uint64_t id_and_class =
      (static_cast<uint64_t>(static_cast<uint32_t>(id)) << 8) | static_cast<uint64_t>(cls);
  h = FnvMix(h, id_and_class);
  for (double d : {clock_mhz, mem_gb, mem_bw_gbps, static_cast<double>(cores), peak_gflops,
                   l1_kb, l2_mb, launch_overhead_us, vector_width, occupancy_knee,
                   gemm_affinity}) {
    h = FnvMixDouble(h, d);
  }
  return h;
}

const char* DeviceClassName(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kGpu:
      return "GPU";
    case DeviceClass::kCpu:
      return "CPU";
    case DeviceClass::kAccelerator:
      return "Accelerator";
  }
  return "unknown";
}

namespace {

DeviceSpec MakeSpec(int id, const char* name, DeviceClass cls, double clock_mhz, double mem_gb,
                    double bw, int cores, double peak_gflops, double l1_kb, double l2_mb,
                    double launch_us, double vector_width, double knee, double gemm_affinity) {
  DeviceSpec s;
  s.id = id;
  s.name = name;
  s.cls = cls;
  s.clock_mhz = clock_mhz;
  s.mem_gb = mem_gb;
  s.mem_bw_gbps = bw;
  s.cores = cores;
  s.peak_gflops = peak_gflops;
  s.l1_kb = l1_kb;
  s.l2_mb = l2_mb;
  s.launch_overhead_us = launch_us;
  s.vector_width = vector_width;
  s.occupancy_knee = knee;
  s.gemm_affinity = gemm_affinity;
  return s;
}

}  // namespace

const std::vector<DeviceSpec>& DeviceRegistry() {
  // Clock / memory / bandwidth / cores are Table 2 values; the rest are
  // datasheet-derived. Knees and affinities differentiate device behaviour so
  // cross-device prediction is a genuine distribution shift.
  static const std::vector<DeviceSpec> kRegistry = {
      MakeSpec(0, "T4", DeviceClass::kGpu, 1590, 16, 320, 40, 8100, 64, 4.0, 5.0, 32, 8.0, 1.2),
      MakeSpec(1, "K80", DeviceClass::kGpu, 824, 12, 240.6, 26, 4100, 48, 1.5, 8.0, 32, 6.0,
               1.0),
      MakeSpec(2, "P100", DeviceClass::kGpu, 1329, 16, 732.2, 56, 9300, 64, 4.0, 5.0, 32, 10.0,
               1.0),
      MakeSpec(3, "V100", DeviceClass::kGpu, 1530, 32, 900, 80, 14000, 96, 6.0, 4.5, 32, 14.0,
               1.5),
      MakeSpec(4, "A100", DeviceClass::kGpu, 1410, 40, 1555, 108, 19500, 192, 40.0, 4.0, 32,
               20.0, 1.8),
      MakeSpec(5, "HL-100", DeviceClass::kAccelerator, 1575, 8, 40, 11, 11000, 128, 24.0, 9.0,
               64, 2.0, 2.6),
      MakeSpec(6, "Intel E5-2673", DeviceClass::kCpu, 2300, 2048, 572.24, 8, 590, 32, 2.5, 0.8,
               8, 1.0, 0.9),
      MakeSpec(7, "AMD EPYC 7452", DeviceClass::kCpu, 2350, 2048, 1525.6, 4, 301, 32, 2.0, 0.7,
               8, 0.8, 0.9),
      MakeSpec(8, "Graviton2", DeviceClass::kCpu, 2500, 32, 4.75, 32, 1280, 64, 1.0, 1.0, 4,
               2.5, 0.8),
  };
  return kRegistry;
}

const DeviceSpec& DeviceByName(const std::string& name) {
  for (const DeviceSpec& spec : DeviceRegistry()) {
    if (spec.name == name) {
      return spec;
    }
  }
  CDMPP_CHECK_MSG(false, name.c_str());
  __builtin_unreachable();
}

const DeviceSpec& DeviceById(int id) {
  const auto& registry = DeviceRegistry();
  CDMPP_CHECK(id >= 0 && id < static_cast<int>(registry.size()));
  return registry[static_cast<size_t>(id)];
}

std::vector<int> GpuDeviceIds() { return {0, 1, 2, 3, 4}; }
std::vector<int> CpuDeviceIds() { return {6, 7, 8}; }
int AcceleratorDeviceId() { return 5; }

std::vector<float> ExtractDeviceFeatures(const DeviceSpec& spec) {
  std::vector<float> v(kDeviceFeatDim, 0.0f);
  ExtractDeviceFeaturesInto(spec, v.data());
  return v;
}

void ExtractDeviceFeaturesInto(const DeviceSpec& spec, float* out) {
  auto lg = [](double x) { return static_cast<float>(std::log1p(x)); };
  out[0] = lg(spec.clock_mhz) / 10.0f;
  out[1] = lg(spec.mem_gb) / 10.0f;
  out[2] = lg(spec.mem_bw_gbps) / 10.0f;
  out[3] = lg(spec.cores) / 10.0f;
  out[4] = lg(spec.peak_gflops) / 10.0f;
  out[5] = lg(spec.l1_kb) / 10.0f;
  out[6] = lg(spec.l2_mb) / 10.0f;
  out[7] = lg(spec.vector_width) / 10.0f;
  out[8] = lg(spec.launch_overhead_us) / 10.0f;
  out[9] = spec.cls == DeviceClass::kGpu ? 1.0f : 0.0f;
  out[10] = spec.cls == DeviceClass::kCpu ? 1.0f : 0.0f;
  out[11] = spec.cls == DeviceClass::kAccelerator ? 1.0f : 0.0f;
}

}  // namespace cdmpp

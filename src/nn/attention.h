// Multi-head self-attention over batches of equal-length sequences.
//
// Inputs are packed row-major as [batch * seq_len, d_model]. Because CDMPP
// batches compact ASTs by leaf count (paper §5.1), every batch has a uniform
// sequence length and no padding/masking is needed — this is exactly the
// efficiency claim of the compact-AST design.
#ifndef SRC_NN_ATTENTION_H_
#define SRC_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "src/nn/layers.h"

namespace cdmpp {

class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int d_model, int num_heads, Rng* rng);

  // x: [batch * seq_len, d_model]. Returns the same shape.
  Matrix Forward(const Matrix& x, int seq_len);
  // Cache-free const forward (see src/nn/layers.h); attention weights are
  // computed into locals and discarded.
  Matrix ForwardInference(const Matrix& x, int seq_len) const;
  // Hot path: per-head Q/K/V blocks are addressed in place inside the packed
  // [batch*seq_len, d_model] activations via the kernels' leading-dimension
  // parameters — zero block extraction copies. The per-(sample, head) blocks
  // split across cores (each writes a disjoint context block; chunks lease
  // scores scratch from WorkspacePool::Global()), and the output is bitwise
  // identical for every CDMPP_NUM_THREADS value. Layer-owned scratch comes
  // from `ws`, which stays single-owner.
  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

  int d_model() const { return d_model_; }

 private:
  int d_model_;
  int num_heads_;
  int d_head_;
  std::unique_ptr<Linear> wq_, wk_, wv_, wo_;

  // Forward caches.
  int cached_seq_len_ = 0;
  int cached_batch_ = 0;
  Matrix cached_q_, cached_k_, cached_v_;
  std::vector<Matrix> cached_attn_;  // per (sample, head): [L, L] softmax weights
};

}  // namespace cdmpp

#endif  // SRC_NN_ATTENTION_H_

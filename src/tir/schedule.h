// Schedule application and random schedule sampling (the Ansor-style search
// space). GenerateProgram is a pure function of (task, schedule), so a
// recorded ScheduleDesc fully reproduces a tensor program.
#ifndef SRC_TIR_SCHEDULE_H_
#define SRC_TIR_SCHEDULE_H_

#include "src/support/rng.h"
#include "src/tir/lower.h"
#include "src/tir/program.h"

namespace cdmpp {

// Builds the scheduled tensor program for `task` under `sched`.
//
// Primitive semantics (loop_index refers to the canonical loop list of the
// first nest: spatial loops first, then reduction loops):
//   kSplit(i, f)      tile loop i by factor f (f must divide the current
//                     innermost piece of that loop); repeated splits tile
//                     further. Tiles are emitted level-major, i.e. all level-0
//                     loops, then all level-1 loops, etc.
//   kVectorize(_, _)  annotate the innermost spatial loop of every nest
//   kUnroll(_, f)     annotate the innermost reduction loop (or the innermost
//                     spatial loop if the nest has no reduction)
//   kParallel(_, _)   annotate the outermost loop of every nest
//   kCacheWrite       append a cache-write copy leaf to the first nest
//   kFuseEpilogue(_, f) f == 1 keeps the ReLU epilogue fused into its nest;
//                     f == 0 hoists it into a separate top-level nest
TensorProgram GenerateProgram(const Task& task, const ScheduleDesc& sched);

// Samples a random valid schedule for the task from the Ansor-like space
// (multi-level tiling + annotations + cache write).
ScheduleDesc SampleSchedule(const Task& task, Rng* rng);

// Mutates one primitive of the schedule (for evolutionary search); always
// returns a schedule that is valid for the task.
ScheduleDesc MutateSchedule(const Task& task, const ScheduleDesc& sched, Rng* rng);

// Divisors of `extent` in [2, max_factor]; used by split sampling.
std::vector<int> FeasibleSplitFactors(int64_t extent, int max_factor);

}  // namespace cdmpp

#endif  // SRC_TIR_SCHEDULE_H_

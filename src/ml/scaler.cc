#include "src/ml/scaler.h"

#include <cmath>

#include "src/support/check.h"

namespace cdmpp {

void StandardScaler::Fit(const Matrix& x) {
  CDMPP_CHECK(x.rows() > 0);
  const int n = x.rows();
  const int d = x.cols();
  mean_.assign(static_cast<size_t>(d), 0.0f);
  inv_std_.assign(static_cast<size_t>(d), 1.0f);
  std::vector<double> sum(static_cast<size_t>(d), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(d), 0.0);
  for (int i = 0; i < n; ++i) {
    const float* row = x.Row(i);
    for (int j = 0; j < d; ++j) {
      sum[static_cast<size_t>(j)] += row[j];
      sum_sq[static_cast<size_t>(j)] += static_cast<double>(row[j]) * row[j];
    }
  }
  for (int j = 0; j < d; ++j) {
    double mu = sum[static_cast<size_t>(j)] / n;
    double var = sum_sq[static_cast<size_t>(j)] / n - mu * mu;
    mean_[static_cast<size_t>(j)] = static_cast<float>(mu);
    inv_std_[static_cast<size_t>(j)] =
        var > 1e-10 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.0f;
  }
}

void StandardScaler::Apply(Matrix* x) const {
  CDMPP_CHECK(fitted());
  CDMPP_CHECK(x->cols() == dim());
  for (int i = 0; i < x->rows(); ++i) {
    ApplyRow(x->Row(i));
  }
}

void StandardScaler::ApplyRow(float* row) const {
  for (size_t j = 0; j < mean_.size(); ++j) {
    row[j] = (row[j] - mean_[j]) * inv_std_[j];
  }
}

}  // namespace cdmpp

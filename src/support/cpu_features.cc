#include "src/support/cpu_features.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cdmpp {
namespace {

bool DetectAvx2Fma() {
#if defined(CDMPP_HAVE_AVX2_KERNELS) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports checks the CPUID feature bits and, for AVX-family
  // features, that the OS has enabled the YMM state via XGETBV.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelIsa ResolveFromEnv() {
  const bool avx2_ok = CpuSupportsAvx2Fma();
  if (const char* env = std::getenv("CDMPP_KERNEL_ISA")) {
    if (std::strcmp(env, "scalar") == 0) {
      return KernelIsa::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2_ok) {
        return KernelIsa::kAvx2;
      }
      std::fprintf(stderr,
                   "cdmpp: CDMPP_KERNEL_ISA=avx2 requested but AVX2+FMA is unavailable "
                   "on this host/build; using scalar kernels\n");
      return KernelIsa::kScalar;
    }
    if (env[0] != '\0') {
      std::fprintf(stderr,
                   "cdmpp: unknown CDMPP_KERNEL_ISA '%s' (expected scalar|avx2); "
                   "auto-detecting\n",
                   env);
    }
  }
  return avx2_ok ? KernelIsa::kAvx2 : KernelIsa::kScalar;
}

std::atomic<int>& ActiveIsaSlot() {
  static std::atomic<int> slot{static_cast<int>(ResolveFromEnv())};
  return slot;
}

}  // namespace

bool CpuSupportsAvx2Fma() {
  static const bool supported = DetectAvx2Fma();
  return supported;
}

// Relaxed on the ISA slot: it selects between kernel implementations that
// are pure functions of their arguments — no data is published alongside
// the enum, so there is no ordering for acquire/release to enforce. Tests
// that flip the ISA then assert on results do both from the same thread
// (sequenced-before covers them).
KernelIsa ActiveKernelIsa() {
  return static_cast<KernelIsa>(ActiveIsaSlot().load(std::memory_order_relaxed));
}

bool SetKernelIsa(KernelIsa isa) {
  if (isa == KernelIsa::kAvx2 && !CpuSupportsAvx2Fma()) {
    return false;
  }
  ActiveIsaSlot().store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

const char* KernelIsaName(KernelIsa isa) {
  return isa == KernelIsa::kAvx2 ? "avx2" : "scalar";
}

bool ParsePrecision(const char* value, Precision* out) {
  if (value == nullptr) {
    return false;
  }
  // Exact full-string matches only: "int8heads", "int8 ", "INT8", or "int8x"
  // must all be rejected, not coerced to the nearest tier — a typo'd knob
  // silently serving a different precision is the failure mode this guards.
  if (std::strcmp(value, "fp32") == 0) {
    *out = Precision::kFp32;
    return true;
  }
  if (std::strcmp(value, "int8-heads") == 0) {
    *out = Precision::kInt8Heads;
    return true;
  }
  if (std::strcmp(value, "int8") == 0) {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

Precision DefaultPrecision() {
  static const Precision resolved = [] {
    if (const char* env = std::getenv("CDMPP_PRECISION")) {
      Precision parsed;
      if (ParsePrecision(env, &parsed)) {
        return parsed;
      }
      // Empty means unset (CI matrix legs export '' for the default config);
      // anything else is a misconfiguration worth shouting about.
      if (env[0] != '\0') {
        std::fprintf(stderr,
                     "cdmpp: rejected CDMPP_PRECISION '%s' (expected exactly "
                     "fp32|int8-heads|int8); using fp32\n",
                     env);
      }
    }
    return Precision::kFp32;
  }();
  return resolved;
}

const char* PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kInt8:
      return "int8";
    case Precision::kInt8Heads:
      return "int8-heads";
    case Precision::kFp32:
      break;
  }
  return "fp32";
}

}  // namespace cdmpp

// Tiramisu-style recursive LSTM cost model (Baghdadi et al., MLSys'21), the
// AST-based baseline of Figs. 6/7/9. The model aggregates an AST bottom-up:
// leaf computation vectors are embedded by a feed-forward layer; each loop
// node runs a shared LSTM over its children's embeddings and projects the
// final state together with the loop's extent/annotation features.
//
// Because the recursion follows the AST structure, only programs with
// identical structures could be batched; like the original, this
// implementation processes one program per optimizer step, which is precisely
// the training-throughput weakness the paper measures against.
#ifndef SRC_BASELINES_TIRAMISU_H_
#define SRC_BASELINES_TIRAMISU_H_

#include <memory>

#include "src/dataset/batching.h"
#include "src/dataset/dataset.h"
#include "src/ml/transforms.h"
#include "src/nn/layers.h"
#include "src/nn/optimizer.h"

namespace cdmpp {

struct TiramisuConfig {
  int hidden_dim = 48;
  double lr = 8e-4;
  int epochs = 6;
  uint64_t seed = 11;
  int max_train_programs_per_epoch = 2500;  // caps the slow per-program loop
};

class TiramisuModel {
 public:
  explicit TiramisuModel(const TiramisuConfig& config);
  ~TiramisuModel();

  // Trains per-program (batch size 1, MAPE objective on normalized labels).
  // Returns training throughput in samples/second.
  double Fit(const Dataset& ds, const std::vector<int>& train);
  // Predicted latencies in seconds.
  std::vector<double> Predict(const Dataset& ds, const std::vector<int>& indices);

  // Predicts a free-standing scheduled program (seconds).
  double PredictProgram(const TensorProgram& prog);

 private:
  struct NodeCache;

  // Forward pass over one program; fills the cache tree for BackpropProgram.
  float ForwardProgram(const TensorProgram& prog);
  // Backprop of d(loss)/d(output); must follow a matching ForwardProgram.
  void BackpropProgram(float dout);

  Matrix EmbedNode(const StmtNode& node, NodeCache* cache, NodeCache* root);
  void BackpropNode(const StmtNode& node, NodeCache* cache, const Matrix& dh);

  Matrix LeafForward(const ComputationVector& cv, NodeCache* cache);
  void LeafBackward(NodeCache* cache, const Matrix& dh);
  Matrix LoopProject(const Matrix& h, const Loop& loop, NodeCache* cache);
  Matrix LoopProjectBackward(NodeCache* cache, const Matrix& dh);

  void CollectParams(std::vector<Param*>* out);

  TiramisuConfig config_;
  Rng rng_;
  Param w_leaf_, b_leaf_;
  std::unique_ptr<LstmCell> lstm_;
  Param w_loop_, b_loop_;
  Param w_head_, b_head_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<LabelTransform> transform_;

  // State of the last ForwardProgram, consumed by BackpropProgram.
  std::unique_ptr<NodeCache> last_root_cache_;
  Matrix last_root_h_;
  const TensorProgram* last_prog_ = nullptr;
};

}  // namespace cdmpp

#endif  // SRC_BASELINES_TIRAMISU_H_

#include "src/dataset/batching.h"

#include "src/support/check.h"

namespace cdmpp {

std::map<int, std::vector<int>> GroupByLeafCount(const Dataset& ds,
                                                 const std::vector<int>& sample_indices) {
  std::map<int, std::vector<int>> buckets;
  for (int idx : sample_indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    const CompactAst& ast = ds.programs[static_cast<size_t>(s.program_index)].ast;
    buckets[ast.num_leaves].push_back(idx);
  }
  return buckets;
}

std::vector<Batch> MakeBatches(const std::map<int, std::vector<int>>& buckets, int batch_size,
                               Rng* rng) {
  CDMPP_CHECK(batch_size > 0);
  std::vector<Batch> batches;
  for (const auto& [leaves, indices] : buckets) {
    std::vector<int> shuffled = indices;
    if (rng != nullptr) {
      rng->Shuffle(&shuffled);
    }
    for (size_t start = 0; start < shuffled.size(); start += static_cast<size_t>(batch_size)) {
      Batch b;
      b.seq_len = leaves;
      size_t end = std::min(shuffled.size(), start + static_cast<size_t>(batch_size));
      b.sample_indices.assign(shuffled.begin() + static_cast<long>(start),
                              shuffled.begin() + static_cast<long>(end));
      batches.push_back(std::move(b));
    }
  }
  if (rng != nullptr) {
    rng->Shuffle(&batches);
  }
  return batches;
}

Matrix BuildFeatureMatrix(const Dataset& ds, const Batch& batch, const StandardScaler* scaler,
                          bool use_pe, double theta) {
  const int b = static_cast<int>(batch.sample_indices.size());
  const int l = batch.seq_len;
  Matrix x(b * l, kFeatDim);
  for (int i = 0; i < b; ++i) {
    const Sample& s = ds.samples[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])];
    const CompactAst& ast = ds.programs[static_cast<size_t>(s.program_index)].ast;
    CDMPP_CHECK(ast.num_leaves == l);
    for (int t = 0; t < l; ++t) {
      float* row = x.Row(i * l + t);
      const ComputationVector& cv = ast.leaves[static_cast<size_t>(t)];
      for (int j = 0; j < kFeatDim; ++j) {
        row[j] = cv[static_cast<size_t>(j)];
      }
      if (scaler != nullptr) {
        scaler->ApplyRow(row);
      }
      if (use_pe) {
        ComputationVector pe = PositionalEncoding(ast.ordering[static_cast<size_t>(t)], theta);
        for (int j = 0; j < kFeatDim; ++j) {
          row[j] += pe[static_cast<size_t>(j)];
        }
      }
    }
  }
  return x;
}

Matrix BuildDeviceFeatureMatrix(const Dataset& ds, const Batch& batch) {
  const int b = static_cast<int>(batch.sample_indices.size());
  Matrix out(b, kDeviceFeatDim);
  for (int i = 0; i < b; ++i) {
    const Sample& s = ds.samples[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])];
    std::vector<float> feats = ExtractDeviceFeatures(DeviceById(s.device_id));
    for (int j = 0; j < kDeviceFeatDim; ++j) {
      out.At(i, j) = feats[static_cast<size_t>(j)];
    }
  }
  return out;
}

Matrix StackLeafRows(const Dataset& ds, const std::vector<int>& sample_indices) {
  size_t total_rows = 0;
  for (int idx : sample_indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    total_rows += static_cast<size_t>(
        ds.programs[static_cast<size_t>(s.program_index)].ast.num_leaves);
  }
  Matrix out(static_cast<int>(total_rows), kFeatDim);
  int r = 0;
  for (int idx : sample_indices) {
    const Sample& s = ds.samples[static_cast<size_t>(idx)];
    const CompactAst& ast = ds.programs[static_cast<size_t>(s.program_index)].ast;
    for (const ComputationVector& cv : ast.leaves) {
      float* row = out.Row(r++);
      for (int j = 0; j < kFeatDim; ++j) {
        row[j] = cv[static_cast<size_t>(j)];
      }
    }
  }
  return out;
}

std::map<int, std::vector<int>> GroupByLeafCount(const AstBatchView& view) {
  CDMPP_CHECK(view.asts.size() == view.device_ids.size());
  std::map<int, std::vector<int>> buckets;
  for (size_t i = 0; i < view.asts.size(); ++i) {
    CDMPP_CHECK(view.asts[i] != nullptr);
    buckets[view.asts[i]->num_leaves].push_back(static_cast<int>(i));
  }
  return buckets;
}

Matrix BuildFeatureMatrix(const AstBatchView& view, const Batch& batch,
                          const StandardScaler* scaler, bool use_pe, double theta) {
  const int b = static_cast<int>(batch.sample_indices.size());
  const int l = batch.seq_len;
  Matrix x(b * l, kFeatDim);
  for (int i = 0; i < b; ++i) {
    const CompactAst& ast =
        *view.asts[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])];
    CDMPP_CHECK(ast.num_leaves == l);
    for (int t = 0; t < l; ++t) {
      float* row = x.Row(i * l + t);
      const ComputationVector& cv = ast.leaves[static_cast<size_t>(t)];
      for (int j = 0; j < kFeatDim; ++j) {
        row[j] = cv[static_cast<size_t>(j)];
      }
      if (scaler != nullptr) {
        scaler->ApplyRow(row);
      }
      if (use_pe) {
        ComputationVector pe = PositionalEncoding(ast.ordering[static_cast<size_t>(t)], theta);
        for (int j = 0; j < kFeatDim; ++j) {
          row[j] += pe[static_cast<size_t>(j)];
        }
      }
    }
  }
  return x;
}

Matrix BuildDeviceFeatureMatrix(const AstBatchView& view, const Batch& batch) {
  const int b = static_cast<int>(batch.sample_indices.size());
  Matrix out(b, kDeviceFeatDim);
  for (int i = 0; i < b; ++i) {
    const int device_id =
        view.device_ids[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])];
    std::vector<float> feats = ExtractDeviceFeatures(DeviceById(device_id));
    for (int j = 0; j < kDeviceFeatDim; ++j) {
      out.At(i, j) = feats[static_cast<size_t>(j)];
    }
  }
  return out;
}

std::vector<double> GatherLabels(const Dataset& ds, const std::vector<int>& sample_indices) {
  std::vector<double> out;
  out.reserve(sample_indices.size());
  for (int idx : sample_indices) {
    out.push_back(ds.samples[static_cast<size_t>(idx)].latency_seconds);
  }
  return out;
}

}  // namespace cdmpp

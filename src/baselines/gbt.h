// Gradient-boosted regression trees — the XGBoost baseline of the paper's
// evaluation (Figs. 6, 7, 9; AutoTVM's cost model). Second-order boosting
// with squared loss (hessian = 1), histogram-based greedy splits, and
// XGBoost-style gain with L2 leaf regularization.
#ifndef SRC_BASELINES_GBT_H_
#define SRC_BASELINES_GBT_H_

#include <memory>
#include <vector>

#include "src/nn/matrix.h"
#include "src/support/rng.h"

namespace cdmpp {

struct GbtConfig {
  int num_rounds = 120;
  int max_depth = 6;
  double learning_rate = 0.1;
  double reg_lambda = 1.0;
  double min_child_weight = 2.0;  // minimum hessian sum per child
  double min_gain = 1e-6;
  int max_bins = 32;
  double subsample = 0.9;
};

class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(const GbtConfig& config) : config_(config) {}

  // Fits on rows of x with targets y (any scale; callers normalize).
  void Fit(const Matrix& x, const std::vector<double>& y, Rng* rng);
  std::vector<double> Predict(const Matrix& x) const;
  double PredictOne(const float* row) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  // Training loss (RMSE on the training set) after each boosting round;
  // exposed so tests can assert monotone improvement.
  const std::vector<double>& round_rmse() const { return round_rmse_; }

 private:
  struct Node {
    int feature = -1;      // -1 for leaves
    float threshold = 0.0;
    int left = -1;
    int right = -1;
    float value = 0.0;     // leaf weight
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  float PredictTree(const Tree& tree, const float* row) const;
  Tree BuildTree(const Matrix& x, const std::vector<double>& grad,
                 const std::vector<double>& hess, const std::vector<int>& rows);
  // Recursive split; returns index of the created node.
  int BuildNode(Tree* tree, const Matrix& x, const std::vector<double>& grad,
                const std::vector<double>& hess, std::vector<int> rows, int depth);

  GbtConfig config_;
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
  std::vector<std::vector<float>> bin_edges_;  // per feature
  std::vector<double> round_rmse_;
};

}  // namespace cdmpp

#endif  // SRC_BASELINES_GBT_H_

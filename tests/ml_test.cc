#include <cmath>

#include <gtest/gtest.h>

#include "src/ml/cmd.h"
#include "src/ml/kmeans.h"
#include "src/ml/scaler.h"
#include "src/ml/transforms.h"
#include "src/ml/tsne.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

Matrix GaussianBlob(int n, int dim, double cx, double stddev, Rng* rng) {
  Matrix m(n, dim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      m.At(i, j) = static_cast<float>(rng->Normal(cx, stddev));
    }
  }
  return m;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  Rng rng(61);
  Matrix points(60, 2);
  for (int i = 0; i < 30; ++i) {
    points.At(i, 0) = static_cast<float>(rng.Normal(0.0, 0.2));
    points.At(i, 1) = static_cast<float>(rng.Normal(0.0, 0.2));
    points.At(30 + i, 0) = static_cast<float>(rng.Normal(10.0, 0.2));
    points.At(30 + i, 1) = static_cast<float>(rng.Normal(10.0, 0.2));
  }
  KMeansResult res = KMeans(points, 2, &rng);
  // All points in the same blob share an assignment.
  for (int i = 1; i < 30; ++i) {
    EXPECT_EQ(res.assignment[static_cast<size_t>(i)], res.assignment[0]);
    EXPECT_EQ(res.assignment[static_cast<size_t>(30 + i)], res.assignment[30]);
  }
  EXPECT_NE(res.assignment[0], res.assignment[30]);
}

TEST(KMeansTest, AssignmentIsNearestCentroid) {
  Rng rng(62);
  Matrix points = GaussianBlob(80, 4, 0.0, 2.0, &rng);
  int k = 5;
  KMeansResult res = KMeans(points, k, &rng);
  for (int i = 0; i < points.rows(); ++i) {
    double own = SquaredDistance(points.Row(i),
                                 res.centroids.Row(res.assignment[static_cast<size_t>(i)]), 4);
    for (int c = 0; c < k; ++c) {
      EXPECT_LE(own, SquaredDistance(points.Row(i), res.centroids.Row(c), 4) + 1e-6);
    }
  }
}

TEST(KMeansTest, ClusterSizesSumToN) {
  Rng rng(63);
  Matrix points = GaussianBlob(50, 3, 1.0, 1.0, &rng);
  KMeansResult res = KMeans(points, 7, &rng);
  int total = 0;
  for (int c : res.cluster_sizes) {
    total += c;
  }
  EXPECT_EQ(total, 50);
}

TEST(KMeansTest, MoreClustersLowerInertia) {
  Rng rng(64);
  Matrix points = GaussianBlob(100, 3, 0.0, 3.0, &rng);
  Rng r1(1);
  Rng r2(1);
  double inertia2 = KMeans(points, 2, &r1).inertia;
  double inertia10 = KMeans(points, 10, &r2).inertia;
  EXPECT_LT(inertia10, inertia2);
}

TEST(CmdTest, IdenticalDistributionsNearZero) {
  Rng rng(65);
  Matrix z = GaussianBlob(400, 4, 0.0, 1.0, &rng);
  // Two halves of the same distribution.
  Matrix z1(200, 4);
  Matrix z2(200, 4);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 4; ++j) {
      z1.At(i, j) = z.At(i, j);
      z2.At(i, j) = z.At(200 + i, j);
    }
  }
  double same = CmdDistance(z1, z2);
  Matrix far = GaussianBlob(200, 4, 3.0, 1.0, &rng);
  double diff = CmdDistance(z1, far);
  EXPECT_LT(same, diff * 0.5);
  EXPECT_GE(same, 0.0);
}

TEST(CmdTest, SymmetricAndShiftSensitive) {
  Rng rng(66);
  Matrix a = GaussianBlob(100, 3, 0.0, 1.0, &rng);
  Matrix b = GaussianBlob(100, 3, 2.0, 1.0, &rng);
  EXPECT_NEAR(CmdDistance(a, b, 5, 10.0), CmdDistance(b, a, 5, 10.0), 1e-9);
  EXPECT_GT(CmdDistance(a, b, 5, 10.0), 0.01);
}

TEST(CmdTest, GradientMatchesFiniteDifference) {
  Rng rng(67);
  Matrix z1 = GaussianBlob(8, 3, 0.0, 1.0, &rng);
  Matrix z2 = GaussianBlob(6, 3, 1.0, 1.0, &rng);
  const double span = 8.0;  // fixed so the value is differentiable
  Matrix dz1(8, 3);
  Matrix dz2(6, 3);
  CmdDistanceWithGrad(z1, z2, 5, span, 1.0, &dz1, &dz2);

  const double eps = 1e-3;
  for (int i = 0; i < z1.rows(); ++i) {
    for (int j = 0; j < z1.cols(); ++j) {
      float orig = z1.At(i, j);
      z1.At(i, j) = orig + static_cast<float>(eps);
      double up = CmdDistance(z1, z2, 5, span);
      z1.At(i, j) = orig - static_cast<float>(eps);
      double down = CmdDistance(z1, z2, 5, span);
      z1.At(i, j) = orig;
      EXPECT_NEAR(dz1.At(i, j), (up - down) / (2 * eps), 5e-3);
    }
  }
  for (int i = 0; i < z2.rows(); ++i) {
    for (int j = 0; j < z2.cols(); ++j) {
      float orig = z2.At(i, j);
      z2.At(i, j) = orig + static_cast<float>(eps);
      double up = CmdDistance(z1, z2, 5, span);
      z2.At(i, j) = orig - static_cast<float>(eps);
      double down = CmdDistance(z1, z2, 5, span);
      z2.At(i, j) = orig;
      EXPECT_NEAR(dz2.At(i, j), (up - down) / (2 * eps), 5e-3);
    }
  }
}

TEST(CmdTest, ValueAgreesWithAndWithoutGrad) {
  Rng rng(68);
  Matrix a = GaussianBlob(50, 4, 0.0, 1.0, &rng);
  Matrix b = GaussianBlob(50, 4, 0.5, 1.5, &rng);
  Matrix da(50, 4);
  Matrix db(50, 4);
  EXPECT_NEAR(CmdDistance(a, b, 5, 12.0), CmdDistanceWithGrad(a, b, 5, 12.0, 1.0, &da, &db),
              1e-9);
}

class TransformRoundTripTest : public ::testing::TestWithParam<NormKind> {};

TEST_P(TransformRoundTripTest, InverseUndoesTransform) {
  Rng rng(69);
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    y.push_back(std::exp(rng.Normal(0.0, 1.5)));  // log-normal, all positive
  }
  auto tf = MakeLabelTransform(GetParam());
  tf->Fit(y);
  for (size_t i = 0; i < y.size(); i += 7) {
    double t = tf->Transform(y[i]);
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_NEAR(tf->Inverse(t), y[i], std::max(1e-5, 0.02 * y[i])) << NormKindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllNorms, TransformRoundTripTest,
                         ::testing::Values(NormKind::kNone, NormKind::kBoxCox,
                                           NormKind::kYeoJohnson, NormKind::kQuantile));

TEST(BoxCoxTest, ReducesSkewOfLogNormalData) {
  Rng rng(70);
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    y.push_back(std::exp(rng.Normal(0.0, 1.0)));
  }
  BoxCoxTransform bc;
  bc.Fit(y);
  std::vector<double> t = bc.TransformAll(y);
  EXPECT_LT(std::abs(Skewness(t)), std::abs(Skewness(y)) * 0.3);
  // For log-normal data the MLE lambda should be close to 0 (log transform).
  EXPECT_NEAR(bc.lambda(), 0.0, 0.15);
}

TEST(BoxCoxTest, LambdaOneForAlreadyNormalData) {
  Rng rng(71);
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    y.push_back(rng.Normal(100.0, 5.0));
  }
  BoxCoxTransform bc;
  bc.Fit(y);
  // Normal data needs no power correction; lambda stays near 1 (identity-ish).
  EXPECT_GT(bc.lambda(), 0.4);
}

TEST(QuantileTest, MapsToApproxStandardNormal) {
  Rng rng(72);
  std::vector<double> y;
  for (int i = 0; i < 3000; ++i) {
    y.push_back(std::exp(rng.Normal(0.0, 2.0)));
  }
  QuantileTransform qt;
  qt.Fit(y);
  std::vector<double> t = qt.TransformAll(y);
  EXPECT_NEAR(Mean(t), kLabelShift, 0.05);
  EXPECT_NEAR(Stddev(t), 1.0, 0.1);
}

TEST(InverseNormalCdfTest, RoundTripsWithCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(InverseNormalCdf(p)), p, 1e-6);
  }
}

TEST(ScalerTest, StandardizesColumns) {
  Rng rng(73);
  Matrix x(200, 3);
  for (int i = 0; i < 200; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Normal(5.0, 2.0));
    x.At(i, 1) = static_cast<float>(rng.Normal(-3.0, 0.5));
    x.At(i, 2) = 7.0f;  // constant column
  }
  StandardScaler scaler;
  scaler.Fit(x);
  Matrix y = x;
  scaler.Apply(&y);
  for (int j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (int i = 0; i < 200; ++i) {
      mean += y.At(i, j);
    }
    mean /= 200.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
  }
  // Constant column is centered, not blown up.
  EXPECT_NEAR(y.At(0, 2), 0.0, 1e-4);
}

TEST(ScalerTest, LargeMagnitudeColumnsDoNotCancelCatastrophically) {
  // Regression test for the naive sum_sq/n - mu*mu variance, which loses all
  // significant bits (and can go negative) when |mu| >> stddev. Welford's
  // update keeps the small true variance.
  const float base = 2.0e7f;  // float-representable, spacing 2.0 at this magnitude
  Matrix x(4, 1);
  x.At(0, 0) = base - 4.0f;
  x.At(1, 0) = base - 2.0f;
  x.At(2, 0) = base + 2.0f;
  x.At(3, 0) = base + 4.0f;
  StandardScaler scaler;
  scaler.Fit(x);
  Matrix y = x;
  scaler.Apply(&y);
  // True population stddev is sqrt(10); standardized values are finite and
  // match +-{4,2}/sqrt(10).
  const float expected = 4.0f / std::sqrt(10.0f);
  ASSERT_TRUE(std::isfinite(y.At(0, 0)));
  EXPECT_NEAR(y.At(0, 0), -expected, 5e-3);
  EXPECT_NEAR(y.At(3, 0), expected, 5e-3);
  EXPECT_NEAR(y.At(1, 0), -expected / 2.0f, 5e-3);
}

TEST(TsneTest, ProducesFiniteSeparatedEmbedding) {
  Rng rng(74);
  Matrix hi(60, 8);
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 8; ++j) {
      hi.At(i, j) = static_cast<float>(rng.Normal(0.0, 0.3));
      hi.At(30 + i, j) = static_cast<float>(rng.Normal(6.0, 0.3));
    }
  }
  TsneOptions opts;
  opts.iterations = 150;
  Matrix emb = TsneEmbed(hi, opts, &rng);
  ASSERT_EQ(emb.rows(), 60);
  ASSERT_EQ(emb.cols(), 2);
  for (size_t i = 0; i < emb.size(); ++i) {
    EXPECT_TRUE(std::isfinite(emb.data()[i]));
  }
  // Cluster centroids in 2-D should be farther apart than the average
  // within-cluster spread.
  double cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
  for (int i = 0; i < 30; ++i) {
    cx0 += emb.At(i, 0);
    cy0 += emb.At(i, 1);
    cx1 += emb.At(30 + i, 0);
    cy1 += emb.At(30 + i, 1);
  }
  cx0 /= 30;
  cy0 /= 30;
  cx1 /= 30;
  cy1 /= 30;
  double centroid_dist = std::hypot(cx0 - cx1, cy0 - cy1);
  double spread = 0.0;
  for (int i = 0; i < 30; ++i) {
    spread += std::hypot(emb.At(i, 0) - cx0, emb.At(i, 1) - cy0);
  }
  spread /= 30;
  EXPECT_GT(centroid_dist, spread);
}

}  // namespace
}  // namespace cdmpp

#include "src/nn/optimizer.h"

#include <cmath>

namespace cdmpp {

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    Matrix& vel = velocity_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      float g = p->grad.data()[j];
      vel.data()[j] = static_cast<float>(momentum_) * vel.data()[j] + g;
      p->value.data()[j] -= static_cast<float>(lr_) * vel.data()[j];
    }
  }
}

Adam::Adam(std::vector<Param*> params, double lr, double weight_decay, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      // Decoupled weight decay (AdamW style).
      float g = p->grad.data()[j];
      m.data()[j] = static_cast<float>(beta1_ * m.data()[j] + (1.0 - beta1_) * g);
      v.data()[j] = static_cast<float>(beta2_ * v.data()[j] + (1.0 - beta2_) * g * g);
      double m_hat = m.data()[j] / bias1;
      double v_hat = v.data()[j] / bias2;
      double update = m_hat / (std::sqrt(v_hat) + eps_) + weight_decay_ * p->value.data()[j];
      p->value.data()[j] -= static_cast<float>(lr_ * update);
    }
  }
}

CyclicLr::CyclicLr(double base_lr, double max_lr, int64_t step_size)
    : base_lr_(base_lr), max_lr_(max_lr), step_size_(step_size) {
  CDMPP_CHECK(step_size > 0);
  CDMPP_CHECK(max_lr >= base_lr);
}

double CyclicLr::LrAt(int64_t step) const {
  int64_t cycle_pos = step % (2 * step_size_);
  double frac = static_cast<double>(cycle_pos) / static_cast<double>(step_size_);
  if (frac > 1.0) {
    frac = 2.0 - frac;  // descending half
  }
  return base_lr_ + (max_lr_ - base_lr_) * frac;
}

}  // namespace cdmpp

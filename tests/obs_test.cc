// Observability-subsystem tests: log-bucketed histogram accuracy against
// exact-sort percentiles (uniform, bimodal, heavy-tail), concurrent-recording
// stress, merge/delta correctness, sharded counter exactness, trace-span
// nesting/exclusive attribution, and end-to-end latency attribution of
// sampled traces through a multi-worker PredictionService.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/prediction_service.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/tir/schedule.h"

namespace cdmpp {
namespace {

// ---- Histogram accuracy ----------------------------------------------------

// Exact-sort nearest-rank percentile: the value of the ceil(p/100 * n)-th
// smallest sample. This matches the histogram's quantile definition, so the
// comparison below isolates pure bucketing error. (The shared Percentile()
// helper interpolates between order statistics instead; on distributions with
// gaps — bimodal, sparse heavy tails — the two *definitions* legitimately
// disagree by far more than the bucket width, which is not a histogram bug.)
double ExactNearestRank(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(values.size())));
  rank = std::min(std::max<size_t>(rank, 1), values.size());
  return values[rank - 1];
}

// Records `values` and checks the histogram percentiles against the exact
// sorted order statistic within 2% relative error (the subsystem's documented
// contract; the log-bucket midpoint guarantees ~0.8%).
void CheckPercentiles(const std::vector<double>& values, const char* label) {
  obs::LogHistogram hist;
  for (double v : values) {
    hist.Record(v);
  }
  obs::HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, values.size()) << label;
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = ExactNearestRank(values, p);
    const double approx = snap.Percentile(p);
    EXPECT_NEAR(approx, exact, std::abs(exact) * 0.02)
        << label << " p" << p << ": histogram " << approx << " vs exact " << exact;
  }
}

TEST(LogHistogramTest, PercentilesMatchExactSortOnUniform) {
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> dist(0.05, 40.0);
  std::vector<double> values(20000);
  for (double& v : values) {
    v = dist(rng);
  }
  CheckPercentiles(values, "uniform");
  // On dense data the interpolating shared helper agrees with nearest-rank,
  // so also pin the histogram against the repo's canonical Percentile().
  obs::LogHistogram hist;
  for (double v : values) {
    hist.Record(v);
  }
  obs::HistogramSnapshot snap = hist.Snapshot();
  for (double p : {50.0, 99.0}) {
    const double exact = Percentile(values, p);
    EXPECT_NEAR(snap.Percentile(p), exact, exact * 0.02);
  }
}

TEST(LogHistogramTest, PercentilesMatchExactSortOnBimodal) {
  // Adversarial for a bounded reservoir and for coarse buckets: two narrow
  // modes three orders of magnitude apart (fast cache hits vs slow misses).
  std::mt19937_64 rng(77);
  std::normal_distribution<double> fast(0.02, 0.002);
  std::normal_distribution<double> slow(30.0, 2.0);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = (i % 10 == 0) ? slow(rng) : fast(rng);
    values.push_back(std::max(v, 1e-6));
  }
  CheckPercentiles(values, "bimodal");
}

TEST(LogHistogramTest, PercentilesMatchExactSortOnHeavyTail) {
  // Log-normal with sigma 2: ~5 decades of spread, the regime where a
  // fixed-width histogram or a first-N reservoir is useless.
  std::mt19937_64 rng(2024);
  std::lognormal_distribution<double> dist(0.0, 2.0);
  std::vector<double> values(20000);
  for (double& v : values) {
    v = dist(rng);
  }
  CheckPercentiles(values, "heavy-tail");
}

TEST(LogHistogramTest, ZeroAndNegativeValuesLandInTheZeroBucket) {
  obs::LogHistogram hist;
  hist.Record(0.0);
  hist.Record(-3.5);
  hist.Record(1.0);
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.zero_count, 2u);
  EXPECT_DOUBLE_EQ(snap.Percentile(50.0), 0.0);
  EXPECT_NEAR(snap.Percentile(99.0), 1.0, 0.02);
}

TEST(LogHistogramTest, BucketMidpointIsWithinRelativeErrorBound) {
  // Sweep values across many decades: the midpoint a bucket reports must be
  // within the documented ~0.8% of every value that maps into it.
  for (double v = 1e-6; v < 1e6; v *= 1.37) {
    const int idx = obs::LogHistogram::BucketIndex(v);
    const double mid = obs::LogHistogram::BucketMidpoint(idx);
    EXPECT_NEAR(mid, v, v * 0.008) << "value " << v;
  }
}

TEST(LogHistogramTest, ConcurrentRecordingLosesNothing) {
  obs::LogHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) + 1);
      std::uniform_real_distribution<double> dist(0.1, 100.0);
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(dist(rng));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(snap.Percentile(50.0), 0.1);
  EXPECT_LT(snap.Percentile(50.0), 100.0);
}

TEST(LogHistogramTest, MergeMatchesRecordingEverythingIntoOne) {
  std::mt19937_64 rng(5);
  std::lognormal_distribution<double> dist(1.0, 1.5);
  obs::LogHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  obs::HistogramSnapshot merged = a.Snapshot();
  obs::HistogramSnapshot expected = combined.Snapshot();
  ASSERT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.buckets, expected.buckets);
  // Snapshot-level merge agrees with histogram-level merge.
  obs::HistogramSnapshot s1 = combined.Snapshot();
  obs::HistogramSnapshot empty;
  empty.Merge(s1);
  EXPECT_EQ(empty.count, s1.count);
  EXPECT_DOUBLE_EQ(empty.Percentile(99.0), s1.Percentile(99.0));
}

TEST(LogHistogramTest, DeltaIsolatesTheInterval) {
  obs::LogHistogram hist;
  for (int i = 0; i < 1000; ++i) {
    hist.Record(1.0);
  }
  obs::HistogramSnapshot first = hist.Snapshot();
  for (int i = 0; i < 500; ++i) {
    hist.Record(64.0);
  }
  obs::HistogramSnapshot delta = hist.Snapshot().Delta(first);
  EXPECT_EQ(delta.count, 500u);
  EXPECT_NEAR(delta.Percentile(50.0), 64.0, 64.0 * 0.02);
  EXPECT_NEAR(delta.MinValue(), 64.0, 64.0 * 0.02);
}

TEST(LogHistogramTest, ResetZeroesEverything) {
  obs::LogHistogram hist;
  hist.Record(3.0);
  hist.Reset();
  EXPECT_EQ(hist.TotalCount(), 0u);
  EXPECT_TRUE(hist.Snapshot().empty());
}

// ---- Metrics registry ------------------------------------------------------

TEST(MetricsTest, PerThreadCounterCellsAreExactUnderConcurrency) {
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter("test.concurrent_adds");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, CounterStaysExactAcrossSlotRecyclingAndOverflow) {
  // More concurrent threads than writer-exclusive slots exist (some must take
  // the shared overflow cell), run in waves so exiting threads recycle their
  // slots into later waves. Every increment must still land.
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter("test.slot_churn");
  counter.Reset();
  constexpr int kWaves = 3;
  constexpr int kThreads = 96;  // > detail::kCounterSlots
  constexpr int kPerThread = 1000;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&counter] {
        for (int i = 0; i < kPerThread; ++i) {
          counter.Add();
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kWaves) * kThreads * kPerThread);
}

TEST(MetricsTest, RegistryHandsOutStableReferencesAndDumpsJson) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter& c1 = registry.GetCounter("test.stable");
  obs::Counter& c2 = registry.GetCounter("test.stable");
  EXPECT_EQ(&c1, &c2);
  c1.Reset();
  c1.Add(41);
  c2.Add(1);
  EXPECT_EQ(registry.CounterValues().at("test.stable"), 42u);
  registry.GetGauge("test.gauge").Set(2.5);
  const std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"test.stable\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

TEST(MetricsTest, KillSwitchSuppressesRecording) {
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter("test.killswitch");
  counter.Reset();
  obs::SetMetricsEnabled(false);
  counter.Add(100);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(1);
  EXPECT_EQ(counter.Value(), 1u);
}

TEST(MetricsTest, DataPlaneCountersAccumulate) {
  // The GEMM dispatch layer counts calls and flops by precision and ISA; any
  // forward pass must move the counters. Use a tiny direct GEMM through the
  // public layer API instead: Linear::ForwardInference dispatches GemmBiasAct.
  auto before_all = obs::MetricsRegistry::Global().CounterValues();
  uint64_t before = 0;
  for (const auto& [name, value] : before_all) {
    if (name.rfind("gemm.calls.", 0) == 0) {
      before += value;
    }
  }
  Rng rng(3);
  Linear lin(8, 8, &rng);
  Matrix x(4, 8);
  Workspace ws;
  lin.ForwardInference(x, &ws);
  uint64_t after = 0;
  for (const auto& [name, value] : obs::MetricsRegistry::Global().CounterValues()) {
    if (name.rfind("gemm.calls.", 0) == 0) {
      after += value;
    }
  }
  EXPECT_GT(after, before);
}

// ---- Trace spans -----------------------------------------------------------

TEST(TraceTest, NestedSpansRecordDepthAndExclusiveTime) {
  obs::Trace trace;
  {
    obs::ScopedTraceBinding binding(&trace);
    obs::ScopedSpan outer(obs::Stage::kEncoder);
    {
      obs::ScopedSpan inner(obs::Stage::kAttention);
      // Busy-wait so the inner span has measurable width.
      const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
      while (std::chrono::steady_clock::now() < until) {
      }
    }
    {
      obs::ScopedSpan inner2(obs::Stage::kLayerNorm);
    }
  }
  ASSERT_EQ(trace.spans().size(), 3u);
  // Children complete (and record) before the parent.
  const obs::SpanRecord& attn = trace.spans()[0];
  const obs::SpanRecord& norm = trace.spans()[1];
  const obs::SpanRecord& enc = trace.spans()[2];
  EXPECT_EQ(attn.stage, obs::Stage::kAttention);
  EXPECT_EQ(attn.depth, 1);
  EXPECT_EQ(norm.depth, 1);
  EXPECT_EQ(enc.stage, obs::Stage::kEncoder);
  EXPECT_EQ(enc.depth, 0);
  EXPECT_GE(attn.total_ms, 2.0 * 0.9);
  // Exclusive = total minus children, within clock noise.
  EXPECT_NEAR(enc.exclusive_ms, enc.total_ms - attn.total_ms - norm.total_ms,
              0.05 * enc.total_ms + 1e-3);
  EXPECT_LE(enc.exclusive_ms, enc.total_ms);
}

TEST(TraceTest, SpansAreNoOpsWithoutABinding) {
  // Must not crash, allocate into anything, or record anywhere.
  obs::ScopedSpan span(obs::Stage::kEncoder);
  obs::ScopedSpan nested(obs::Stage::kAttention);
  SUCCEED();
}

TEST(TraceTest, RequestTraceAttributionSums) {
  obs::RequestTrace trace;
  trace.total_ms = 10.0;
  trace.AddSegment(obs::Stage::kQueueWait, 4.0);
  trace.AddSegment(obs::Stage::kFinalize, 1.0);
  obs::Trace batch;
  {
    obs::ScopedTraceBinding binding(&batch);
    obs::ScopedSpan fwd(obs::Stage::kForward);
  }
  trace.AppendSpans(batch);
  EXPECT_GE(trace.AttributedMs(), 5.0);
  EXPECT_GT(trace.AttributedFraction(), 0.5);
  EXPECT_LE(trace.AttributedFraction(), 1.0);
}

TEST(TraceCollectorTest, SamplesOneInN) {
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  const int saved = collector.sample_every();
  collector.SetSampleEvery(4);
  int sampled = 0;
  for (int i = 0; i < 400; ++i) {
    sampled += collector.ShouldSample() ? 1 : 0;
  }
  EXPECT_EQ(sampled, 100);
  collector.SetSampleEvery(0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(collector.ShouldSample());
  }
  collector.SetSampleEvery(saved);
}

// ---- End-to-end: sampled traces through a multi-worker service -------------

struct ObsWorld {
  Dataset ds;
  std::unique_ptr<CdmppPredictor> predictor;
  std::vector<CompactAst> workload;
};

ObsWorld& World() {
  static ObsWorld* world = [] {
    auto* w = new ObsWorld();
    DatasetOptions opts;
    opts.device_ids = {0};
    opts.schedules_per_task = 2;
    opts.max_networks = 4;
    opts.seed = 21;
    w->ds = BuildDataset(opts);

    PredictorConfig cfg;
    cfg.d_model = 16;
    cfg.num_heads = 2;
    cfg.d_ff = 32;
    cfg.num_layers = 1;
    cfg.z_dim = 16;
    cfg.device_embed_dim = 8;
    cfg.device_hidden_dim = 16;
    cfg.decoder_hidden = {16};
    cfg.epochs = 1;
    cfg.seed = 8;
    w->predictor = std::make_unique<CdmppPredictor>(cfg);
    Rng rng(14);
    SplitIndices split = SplitDataset(w->ds, {0}, {}, &rng);
    w->predictor->Pretrain(w->ds, split.train, split.valid);

    Rng srng(15);
    for (const TaskInfo& info : w->ds.tasks) {
      for (int k = 0; k < 3; ++k) {
        w->workload.push_back(
            ExtractCompactAst(GenerateProgram(info.task, SampleSchedule(info.task, &srng))));
      }
    }
    for (const CompactAst& ast : w->workload) {
      w->predictor->EnsureHead(ast.num_leaves);
    }
    return w;
  }();
  return *world;
}

TEST(ServiceTracingTest, SampledTracesAttributeRequestLatencyToStages) {
  ObsWorld& w = World();
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  const int saved = collector.sample_every();
  collector.Reset();
  collector.SetSampleEvery(1);  // trace everything: exercise the worst case

  {
    ServeOptions opts;
    opts.num_workers = 3;
    opts.max_batch_size = 16;
    opts.batch_window_ms = 0.2;
    opts.enable_cache = false;  // every request takes the full batched path
    PredictionService service(w.predictor.get(), opts);
    std::vector<std::future<double>> futures;
    for (int round = 0; round < 8; ++round) {
      for (const CompactAst& ast : w.workload) {
        futures.push_back(service.Submit(ast, 0));
      }
    }
    for (auto& f : futures) {
      EXPECT_GT(f.get(), 0.0);
    }
  }

  obs::TraceCollector::Stats stats = collector.GetStats();
  collector.SetSampleEvery(saved);
  ASSERT_GT(stats.traces, 0u);
  // The acceptance bar: named stages explain >= 95% of traced latency.
  EXPECT_GE(stats.AttributedFraction(), 0.95)
      << "attributed " << stats.attributed_ms << "ms of " << stats.total_ms << "ms";
  // The big structural stages must all have registered.
  auto stage_total = [&stats](obs::Stage s) {
    return stats.stage_ms[static_cast<size_t>(s)];
  };
  EXPECT_GT(stage_total(obs::Stage::kQueueWait), 0.0);
  EXPECT_GT(stage_total(obs::Stage::kEncoder), 0.0);
  EXPECT_GT(stage_total(obs::Stage::kAttention), 0.0);
  EXPECT_GT(stage_total(obs::Stage::kLayerNorm), 0.0);
  EXPECT_GT(stage_total(obs::Stage::kHeads), 0.0);
  EXPECT_GT(stage_total(obs::Stage::kDecoder), 0.0);

  // Span nesting surfaced end-to-end: attention spans sit strictly below the
  // encoder span in at least one recorded trace.
  bool saw_nested_attention = false;
  for (const obs::RequestTrace& trace : collector.Recent()) {
    for (const obs::SpanRecord& span : trace.spans) {
      if (span.stage == obs::Stage::kAttention && span.depth > 0) {
        saw_nested_attention = true;
      }
    }
  }
  EXPECT_TRUE(saw_nested_attention);
  EXPECT_NE(collector.DumpJson().find("\"encoder\""), std::string::npos);
}

TEST(ServiceTracingTest, CacheHitFastPathEmitsCacheLookupTraces) {
  ObsWorld& w = World();
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  const int saved = collector.sample_every();
  collector.Reset();
  collector.SetSampleEvery(1);
  {
    ServeOptions opts;
    opts.num_workers = 1;
    opts.enable_cache = true;
    PredictionService service(w.predictor.get(), opts);
    // First submit computes; the repeats hit the submit-path cache.
    for (int i = 0; i < 3; ++i) {
      service.Predict(w.workload[0], 0);
    }
  }
  obs::TraceCollector::Stats stats = collector.GetStats();
  collector.SetSampleEvery(saved);
  EXPECT_GE(stats.traces, 3u);
  EXPECT_GT(stats.stage_ms[static_cast<size_t>(obs::Stage::kCacheLookup)], 0.0);
}

}  // namespace
}  // namespace cdmpp

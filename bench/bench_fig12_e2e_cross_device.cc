// Reproduces paper Fig. 12: cross-device end-to-end performance prediction —
// predictors trained on source GPUs predict full-network iteration times on
// unseen target GPUs (P100, V100), compared against Habitat's roofline
// scaling. TLP is excluded as in the paper (relative times cannot be
// accumulated into an end-to-end latency).
#include <cstdio>

#include "src/baselines/habitat.h"
#include "src/core/sampler.h"
#include "src/exp/exp_common.h"
#include "src/replay/e2e.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig12_e2e_cross_device", "Fig. 12",
                   "cross-device end-to-end prediction (targets P100, V100) vs Habitat");
  Dataset ds = BuildBenchDataset({0, 1, 2, 3, 4});  // all GPUs
  const std::vector<std::string> nets = {"resnet50_bs1_r224", "bert_tiny_bs1_s128",
                                         "inception_v3_bs1_r224"};

  for (int target : {2, 3}) {  // P100, V100
    std::vector<int> sources;
    for (int g : GpuDeviceIds()) {
      if (g != target) {
        sources.push_back(g);
      }
    }
    Rng rng(8000 + static_cast<uint64_t>(target));
    SplitIndices src = SplitDataset(ds, sources, {}, &rng);

    CdmppPredictor cdmpp(BenchPredictorConfig(22));
    cdmpp.Pretrain(ds, Take(src.train, 4000), src.valid);
    std::vector<int> tasks = SelectTasksKMeans(ds, 20, &rng);
    std::vector<int> target_labeled = SamplesForTasksOnDevice(ds, tasks, target);
    std::vector<int> labeled = Take(src.train, 2000);
    labeled.insert(labeled.end(), target_labeled.begin(), target_labeled.end());
    cdmpp.Finetune(ds, labeled, Take(src.train, 400), Take(SamplesOnDevice(ds, target), 400),
                   4);

    HabitatModel habitat{HabitatConfig{}};
    habitat.Fit(ds, src.train, sources.front());

    const DeviceSpec& spec = DeviceById(target);
    std::printf("\nPrediction onto %s:\n", spec.name.c_str());
    TablePrinter table({"network", "truth (ms)", "CDMPP (ms)", "CDMPP err", "Habitat (ms)",
                        "Habitat err"});
    std::vector<double> cerr, herr;
    for (const std::string& name : nets) {
      NetworkDef net = BuildNetworkByName(name);
      NetworkSchedules scheds = ChooseSchedules(net, 88);
      double truth = E2eGroundTruth(net, spec, scheds);
      double pc = E2ePredicted(net, spec, scheds, [&](const CompactAst& ast, int dev) {
        return cdmpp.PredictAst(ast, dev);
      });
      // Habitat predicts at the operator level (schedule-blind).
      double ph = ReplayNetwork(net, spec, [&](const NetworkOp& op) {
        return habitat.PredictTask(op.task, target);
      });
      cerr.push_back(std::abs(pc - truth) / truth);
      herr.push_back(std::abs(ph - truth) / truth);
      table.AddRow({name, FormatDouble(truth * 1e3, 3), FormatDouble(pc * 1e3, 3),
                    FormatPercent(cerr.back(), 1), FormatDouble(ph * 1e3, 3),
                    FormatPercent(herr.back(), 1)});
    }
    table.Print(stdout);
    std::printf("Average: CDMPP %.1f%% vs Habitat %.1f%% (paper: 15.72%% vs 28.01%%).\n",
                Mean(cerr) * 100.0, Mean(herr) * 100.0);
  }
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

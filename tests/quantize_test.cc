// Quantization tests: round-trip error bounds of the per-row activation
// (adaptive code range, ActivationQMax) and per-output-channel int8 weight
// quantizers, packed-layout integrity, the
// analytic error bound of a quantized Linear vs its fp32 source, batch-size
// invariance of the quantized path (per-row scales), and the Workspace i16
// arena's warm-path reuse.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/nn/quantize.h"
#include "src/nn/workspace.h"
#include "src/support/cpu_features.h"
#include "src/support/rng.h"

namespace cdmpp {
namespace {

using kernels::Activation;
using kernels::PackedQ8Weights;

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, scale));
  }
  return m;
}

TEST(QuantizeActivationsTest, RoundTripErrorIsBoundedByHalfScale) {
  Rng rng(41);
  const int rows = 7, k = 37;
  Matrix x = RandomMatrix(rows, k, &rng, 3.0);
  const int k2 = (k + 1) / 2;
  std::vector<int16_t> q(static_cast<size_t>(rows) * 2 * k2, -1);
  std::vector<float> scales(rows, 0.0f);
  QuantizeActivationsPerRow(rows, k, x.data(), k, q.data(), 2 * k2, scales.data());
  const int qmax = ActivationQMax(k);
  EXPECT_EQ(qmax, 4095);  // every predictor-sized reduction gets 12-bit codes
  for (int i = 0; i < rows; ++i) {
    ASSERT_GT(scales[static_cast<size_t>(i)], 0.0f);
    for (int p = 0; p < k; ++p) {
      const int16_t qv = q[static_cast<size_t>(i) * 2 * k2 + p];
      EXPECT_GE(qv, -qmax);
      EXPECT_LE(qv, qmax);
      // Round-to-nearest: |q*scale - x| <= scale/2 (+ tiny fp slack).
      const double err = std::abs(static_cast<double>(qv) * scales[static_cast<size_t>(i)] -
                                  x.At(i, p));
      EXPECT_LE(err, 0.5 * scales[static_cast<size_t>(i)] * (1.0 + 1e-5))
          << "row " << i << " col " << p;
    }
    // The odd-k pad lane must be zero (exact zero contribution).
    EXPECT_EQ(q[static_cast<size_t>(i) * 2 * k2 + k], 0);
  }
}

TEST(QuantizeActivationsTest, ZeroRowGetsUnitScaleAndZeroCodes) {
  const int k = 6;
  std::vector<float> x(k, 0.0f);
  std::vector<int16_t> q(k, -1);
  float scale = 0.0f;
  QuantizeActivationsPerRow(1, k, x.data(), k, q.data(), k, &scale);
  EXPECT_EQ(scale, 1.0f);
  for (int p = 0; p < k; ++p) {
    EXPECT_EQ(q[static_cast<size_t>(p)], 0);
  }
}

TEST(QuantizePackWeightsTest, PerChannelScalesAndPackedLayoutRoundTrip) {
  Rng rng(42);
  const int k = 13, n = 9;  // odd k: exercises the pad pair
  Matrix w = RandomMatrix(k, n, &rng);
  PackedQ8Weights packed;
  QuantizePackWeights(k, n, w.data(), n, &packed);
  EXPECT_EQ(packed.k, k);
  EXPECT_EQ(packed.n, n);
  EXPECT_EQ(packed.k2, (k + 1) / 2);
  for (int j = 0; j < n; ++j) {
    float absmax = 0.0f;
    for (int p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::abs(w.At(p, j)));
    }
    EXPECT_NEAR(packed.scales[static_cast<size_t>(j)], absmax / 127.0f, 1e-6f);
    int16_t qmax = 0;
    for (int p = 0; p < k; ++p) {
      const int16_t qv = packed.At(p, j);
      EXPECT_GE(qv, -127);
      EXPECT_LE(qv, 127);
      qmax = std::max<int16_t>(qmax, static_cast<int16_t>(std::abs(qv)));
      const double err = std::abs(static_cast<double>(qv) * packed.scales[static_cast<size_t>(j)] -
                                  w.At(p, j));
      EXPECT_LE(err, 0.5 * packed.scales[static_cast<size_t>(j)] * (1.0 + 1e-5));
    }
    // The channel absmax must map to (+-)127: the full int8 range is used.
    EXPECT_EQ(qmax, 127);
    // Odd-k pad row is zero.
    EXPECT_EQ(packed.At(k, j), 0);
  }
}

// |y_q - y| for one output element is bounded by the propagated per-element
// quantization errors: sum_p |w| * ex + sum_p |x| * ew + k * ex * ew with
// ex = a_scale/2 (a_scale = rowabsmax / ActivationQMax(k)), ew = w_scale_j/2.
// The quantized Linear must sit inside the analytic bound on every element —
// this is the round-trip error contract of the whole layer, not a tuned
// tolerance.
TEST(QuantizedLinearTest, OutputErrorStaysWithinAnalyticBound) {
  Rng rng(43);
  const int m = 11, k = 38, n = 17;
  Linear linear(k, n, &rng);
  Matrix x = RandomMatrix(m, k, &rng, 2.0);

  Matrix y_fp32 = linear.ForwardInference(x);
  QuantizedLinear qlinear(linear);
  Workspace ws;
  Matrix* y_q = qlinear.ForwardInference(x, &ws);
  ASSERT_EQ(y_q->rows(), m);
  ASSERT_EQ(y_q->cols(), n);

  // Recover the per-row activation scales the layer used.
  const float qmax = static_cast<float>(ActivationQMax(k));
  std::vector<float> a_scales(m, 0.0f);
  for (int i = 0; i < m; ++i) {
    float absmax = 0.0f;
    for (int p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::abs(x.At(i, p)));
    }
    a_scales[static_cast<size_t>(i)] = absmax > 0.0f ? absmax / qmax : 1.0f;
  }
  const PackedQ8Weights& packed = qlinear.weights();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const double ex = 0.5 * a_scales[static_cast<size_t>(i)];
      const double ew = 0.5 * packed.scales[static_cast<size_t>(j)];
      double bound = 0.0;
      for (int p = 0; p < k; ++p) {
        bound += std::abs(linear.weight().At(p, j)) * ex + std::abs(x.At(i, p)) * ew;
      }
      bound += k * ex * ew;
      bound = bound * (1.0 + 1e-4) + 1e-5;  // fp accumulation slack
      EXPECT_LE(std::abs(static_cast<double>(y_q->At(i, j)) - y_fp32.At(i, j)), bound)
          << "element (" << i << ", " << j << ")";
    }
  }
}

TEST(QuantizedLinearTest, FusedReluMatchesSeparateRelu) {
  Rng rng(44);
  Linear linear(24, 16, &rng);
  Matrix x = RandomMatrix(5, 24, &rng);
  QuantizedLinear qlinear(linear);
  Workspace ws1, ws2;
  Matrix* fused = qlinear.ForwardInference(x, &ws1, Activation::kRelu);
  Matrix* plain = qlinear.ForwardInference(x, &ws2, Activation::kNone);
  for (int i = 0; i < fused->rows(); ++i) {
    for (int j = 0; j < fused->cols(); ++j) {
      EXPECT_EQ(fused->At(i, j), std::max(0.0f, plain->At(i, j)));
    }
  }
}

// Per-ROW activation scales make the quantized path batch-size-invariant: a
// row's quantized representation (and so its output) depends only on that
// row. This is the property that lets the int8 serving path keep the
// PredictBatched == PredictAst bitwise contract.
TEST(QuantizedLinearTest, RowResultsAreBatchSizeInvariantBitwise) {
  Rng rng(45);
  const int m = 33, k = 20, n = 31;
  Linear linear(k, n, &rng);
  Matrix x = RandomMatrix(m, k, &rng);
  QuantizedLinear qlinear(linear);
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2}) {
    const KernelIsa prev = ActiveKernelIsa();
    if (!SetKernelIsa(isa)) {
      continue;
    }
    Workspace ws;
    Matrix* full = qlinear.ForwardInference(x, &ws);
    for (int i = 0; i < m; ++i) {
      Matrix row(1, k);
      for (int p = 0; p < k; ++p) {
        row.At(0, p) = x.At(i, p);
      }
      Workspace ws_row;
      Matrix* alone = qlinear.ForwardInference(row, &ws_row);
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(full->At(i, j), alone->At(0, j))
            << "isa=" << KernelIsaName(isa) << " row " << i << " col " << j;
      }
    }
    SetKernelIsa(prev);
  }
}

TEST(QuantizedMlpTest, TracksFp32MlpClosely) {
  Rng rng(46);
  Mlp mlp({30, 24, 16, 1}, &rng);
  Matrix x = RandomMatrix(9, 30, &rng);
  Matrix y_fp32 = mlp.ForwardInference(x);
  QuantizedMlp qmlp(mlp);
  EXPECT_EQ(qmlp.num_layers(), 3u);
  Workspace ws;
  Matrix* y_q = qmlp.ForwardInference(x, &ws);
  // Stacked quantization noise across three layers on random (untrained,
  // Xavier-scale) weights: int8 weight rounding dominates (the 12-bit
  // activation codes contribute ~nothing) and measures well under 2% of the
  // output range; 2% gives seed-independence headroom without masking real
  // breakage.
  double absmax = 1e-12;
  for (size_t i = 0; i < y_fp32.size(); ++i) {
    absmax = std::max(absmax, std::abs(static_cast<double>(y_fp32.data()[i])));
  }
  for (size_t i = 0; i < y_fp32.size(); ++i) {
    EXPECT_LE(std::abs(static_cast<double>(y_q->data()[i]) - y_fp32.data()[i]),
              0.02 * absmax)
        << "element " << i;
  }
}

TEST(WorkspaceTest, I16ArenaReusesBuffersAcrossReset) {
  Workspace ws;
  int16_t* a = ws.NewI16(256);
  ASSERT_NE(a, nullptr);
  const size_t pooled_after_first = ws.pooled_i16();
  EXPECT_GE(pooled_after_first, 256u);
  ws.Reset();
  // Same slot, same backing allocation: warm path allocates nothing.
  int16_t* b = ws.NewI16(128);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ws.pooled_i16(), pooled_after_first);
  // A second live buffer in the same pass gets its own slot.
  int16_t* c = ws.NewI16(64);
  EXPECT_NE(b, c);
}

}  // namespace
}  // namespace cdmpp

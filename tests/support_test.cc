#include <gtest/gtest.h>

#include "src/support/cpu_features.h"

#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/table.h"

namespace cdmpp {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000) == b.UniformInt(0, 1000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 10);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 7);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(4);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(6);
  Rng child = a.Fork();
  EXPECT_NE(a.UniformInt(0, 1 << 30), child.UniformInt(0, 1 << 30));
}

TEST(StatsTest, MeanAndStddev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Stddev(xs), 2.0);
}

TEST(StatsTest, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(Skewness({}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 2.5);
}

TEST(StatsTest, PercentileDegenerateInputs) {
  // Empty reduces to 0 (matching Mean/Stddev); one sample is every
  // percentile of itself.
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 99), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.5}, 0), 7.5);
  EXPECT_DOUBLE_EQ(Percentile({7.5}, 50), 7.5);
  EXPECT_DOUBLE_EQ(Percentile({7.5}, 100), 7.5);
}

TEST(StatsTest, PercentilesMatchesRepeatedPercentileCalls) {
  std::vector<double> xs = {9, 1, 5, 3, 7};
  std::vector<double> got = Percentiles(xs, {0.0, 50.0, 99.0, 100.0});
  ASSERT_EQ(got.size(), 4u);
  EXPECT_DOUBLE_EQ(got[0], Percentile(xs, 0.0));
  EXPECT_DOUBLE_EQ(got[1], Percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(got[2], Percentile(xs, 99.0));
  EXPECT_DOUBLE_EQ(got[3], Percentile(xs, 100.0));

  std::vector<double> empty = Percentiles({}, {50.0, 99.0});
  ASSERT_EQ(empty.size(), 2u);
  EXPECT_DOUBLE_EQ(empty[0], 0.0);
  EXPECT_DOUBLE_EQ(empty[1], 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  for (double& y : ys) {
    y = -y;
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(StatsTest, SkewnessSignReflectsTail) {
  std::vector<double> right_tail = {1, 1, 1, 1, 2, 2, 3, 20};
  EXPECT_GT(Skewness(right_tail), 1.0);
}

TEST(StatsTest, HistogramCountsSumToN) {
  std::vector<double> xs;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.Uniform(0, 10));
  }
  auto h = Histogram(xs, 16);
  size_t total = 0;
  for (size_t c : h) {
    total += c;
  }
  EXPECT_EQ(total, xs.size());
}

TEST(StatsTest, MapeAndRmse) {
  std::vector<double> truth = {10, 20};
  std::vector<double> pred = {11, 18};
  EXPECT_NEAR(Mape(pred, truth), (0.1 + 0.1) / 2.0, 1e-12);
  EXPECT_NEAR(Rmse(pred, truth), std::sqrt((1.0 + 4.0) / 2.0), 1e-12);
}

TEST(StatsTest, MapeSkipsZeroTruth) {
  EXPECT_DOUBLE_EQ(Mape({5.0, 10.0}, {0.0, 10.0}), 0.0);
}

TEST(StatsTest, AccuracyWithinTolerance) {
  std::vector<double> truth = {100, 100, 100, 100};
  std::vector<double> pred = {105, 115, 125, 90};
  EXPECT_DOUBLE_EQ(AccuracyWithin(pred, truth, 0.2), 0.75);
  EXPECT_DOUBLE_EQ(AccuracyWithin(pred, truth, 0.1), 0.5);
}

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.1403, 2), "14.03%");
}

TEST(TableTest, CsvRoundTrip) {
  std::string path = "/tmp/cdmpp_table_test.csv";
  ASSERT_TRUE(WriteCsv(path, {"a", "b"}, {{1.5, 2.5}, {3.0, 4.0}}));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_EQ(std::string(buf), "a,b\n");
  std::fclose(f);
}

// ---- CDMPP_PRECISION parsing (the ResolveNumThreads hardening pattern) -----

TEST(ParsePrecisionTest, AcceptsExactSpellingsOnly) {
  Precision p = Precision::kInt8;
  ASSERT_TRUE(ParsePrecision("fp32", &p));
  EXPECT_EQ(p, Precision::kFp32);
  ASSERT_TRUE(ParsePrecision("int8", &p));
  EXPECT_EQ(p, Precision::kInt8);
  ASSERT_TRUE(ParsePrecision("int8-heads", &p));
  EXPECT_EQ(p, Precision::kInt8Heads);
}

TEST(ParsePrecisionTest, RejectsMalformedValuesWritingNothing) {
  // Misconfigured values must be rejected whole, never prefix-matched or
  // silently coerced — a typo'd CDMPP_PRECISION should fall back loudly, not
  // serve the wrong tier. The sentinel verifies *out is untouched on reject.
  const Precision sentinel = Precision::kInt8Heads;
  for (const char* bad : {static_cast<const char*>(nullptr), "", " ", "int", "int8x",
                          "int8 ", " int8", "INT8", "Fp32", "fp", "fp32x", "int8-head",
                          "int8-headss", "int8-heads ", "int8heads", "int16", "8"}) {
    Precision p = sentinel;
    EXPECT_FALSE(ParsePrecision(bad, &p)) << "accepted: '" << (bad ? bad : "<null>") << "'";
    EXPECT_EQ(p, sentinel) << "wrote on reject: '" << (bad ? bad : "<null>") << "'";
  }
}

TEST(ParsePrecisionTest, NameRoundTripsEveryPrecision) {
  for (Precision p : {Precision::kFp32, Precision::kInt8Heads, Precision::kInt8}) {
    Precision parsed = p == Precision::kFp32 ? Precision::kInt8 : Precision::kFp32;
    ASSERT_TRUE(ParsePrecision(PrecisionName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
}

}  // namespace
}  // namespace cdmpp

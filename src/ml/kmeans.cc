#include "src/ml/kmeans.h"

#include <limits>

#include "src/support/check.h"

namespace cdmpp {

double SquaredDistance(const float* a, const float* b, int dim) {
  double s = 0.0;
  for (int j = 0; j < dim; ++j) {
    double d = static_cast<double>(a[j]) - b[j];
    s += d * d;
  }
  return s;
}

namespace {

// KMeans++ seeding: first centroid uniform, then proportional to squared
// distance from the nearest chosen centroid.
Matrix SeedCentroids(const Matrix& points, int k, Rng* rng) {
  const int n = points.rows();
  const int dim = points.cols();
  Matrix centroids(k, dim);
  int first = static_cast<int>(rng->UniformInt(0, n - 1));
  for (int j = 0; j < dim; ++j) {
    centroids.At(0, j) = points.At(first, j);
  }
  std::vector<double> d2(static_cast<size_t>(n), std::numeric_limits<double>::max());
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      double d = SquaredDistance(points.Row(i), centroids.Row(c - 1), dim);
      d2[static_cast<size_t>(i)] = std::min(d2[static_cast<size_t>(i)], d);
      total += d2[static_cast<size_t>(i)];
    }
    int chosen = n - 1;
    if (total > 0.0) {
      double r = rng->Uniform(0.0, total);
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        acc += d2[static_cast<size_t>(i)];
        if (acc >= r) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<int>(rng->UniformInt(0, n - 1));
    }
    for (int j = 0; j < dim; ++j) {
      centroids.At(c, j) = points.At(chosen, j);
    }
  }
  return centroids;
}

}  // namespace

KMeansResult KMeans(const Matrix& points, int k, Rng* rng, int max_iters) {
  const int n = points.rows();
  const int dim = points.cols();
  CDMPP_CHECK(k >= 1 && k <= n);

  KMeansResult res;
  res.centroids = SeedCentroids(points, k, rng);
  res.assignment.assign(static_cast<size_t>(n), 0);

  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    res.inertia = 0.0;
    for (int i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        double d = SquaredDistance(points.Row(i), res.centroids.Row(c), dim);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (res.assignment[static_cast<size_t>(i)] != best) {
        res.assignment[static_cast<size_t>(i)] = best;
        changed = true;
      }
      res.inertia += best_d;
    }
    // Recompute centroids; empty clusters keep their previous position.
    Matrix sums(k, dim);
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
      int c = res.assignment[static_cast<size_t>(i)];
      counts[static_cast<size_t>(c)]++;
      for (int j = 0; j < dim; ++j) {
        sums.At(c, j) += points.At(i, j);
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        continue;
      }
      for (int j = 0; j < dim; ++j) {
        res.centroids.At(c, j) = sums.At(c, j) / static_cast<float>(counts[static_cast<size_t>(c)]);
      }
    }
    res.cluster_sizes = counts;
    if (!changed && iter > 0) {
      break;
    }
  }
  return res;
}

}  // namespace cdmpp

#include "src/support/cpu_features.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cdmpp {
namespace {

bool DetectAvx2Fma() {
#if defined(CDMPP_HAVE_AVX2_KERNELS) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports checks the CPUID feature bits and, for AVX-family
  // features, that the OS has enabled the YMM state via XGETBV.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelIsa ResolveFromEnv() {
  const bool avx2_ok = CpuSupportsAvx2Fma();
  if (const char* env = std::getenv("CDMPP_KERNEL_ISA")) {
    if (std::strcmp(env, "scalar") == 0) {
      return KernelIsa::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2_ok) {
        return KernelIsa::kAvx2;
      }
      std::fprintf(stderr,
                   "cdmpp: CDMPP_KERNEL_ISA=avx2 requested but AVX2+FMA is unavailable "
                   "on this host/build; using scalar kernels\n");
      return KernelIsa::kScalar;
    }
    if (env[0] != '\0') {
      std::fprintf(stderr,
                   "cdmpp: unknown CDMPP_KERNEL_ISA '%s' (expected scalar|avx2); "
                   "auto-detecting\n",
                   env);
    }
  }
  return avx2_ok ? KernelIsa::kAvx2 : KernelIsa::kScalar;
}

std::atomic<int>& ActiveIsaSlot() {
  static std::atomic<int> slot{static_cast<int>(ResolveFromEnv())};
  return slot;
}

}  // namespace

bool CpuSupportsAvx2Fma() {
  static const bool supported = DetectAvx2Fma();
  return supported;
}

KernelIsa ActiveKernelIsa() {
  return static_cast<KernelIsa>(ActiveIsaSlot().load(std::memory_order_relaxed));
}

bool SetKernelIsa(KernelIsa isa) {
  if (isa == KernelIsa::kAvx2 && !CpuSupportsAvx2Fma()) {
    return false;
  }
  ActiveIsaSlot().store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

const char* KernelIsaName(KernelIsa isa) {
  return isa == KernelIsa::kAvx2 ? "avx2" : "scalar";
}

Precision DefaultPrecision() {
  static const Precision resolved = [] {
    if (const char* env = std::getenv("CDMPP_PRECISION")) {
      if (std::strcmp(env, "int8") == 0) {
        return Precision::kInt8;
      }
      if (std::strcmp(env, "fp32") != 0 && env[0] != '\0') {
        std::fprintf(stderr,
                     "cdmpp: unknown CDMPP_PRECISION '%s' (expected fp32|int8); "
                     "using fp32\n",
                     env);
      }
    }
    return Precision::kFp32;
  }();
  return resolved;
}

const char* PrecisionName(Precision precision) {
  return precision == Precision::kInt8 ? "int8" : "fp32";
}

}  // namespace cdmpp

#include "src/search/schedule_search.h"

#include <algorithm>
#include <limits>

#include "src/support/check.h"

namespace cdmpp {

namespace {

double Measure(const Task& task, const ScheduleDesc& sched, const DeviceSpec& device) {
  TensorProgram prog = GenerateProgram(task, sched);
  return SimulateLatencyDeterministic(prog, device);
}

}  // namespace

SearchCurve EvolutionarySearch(const Task& task, const DeviceSpec& device,
                               const CostModelFn& cost_model, const SearchOptions& opts) {
  Rng rng(opts.seed);
  SearchCurve curve;
  double best = std::numeric_limits<double>::max();

  // Seed population.
  std::vector<ScheduleDesc> population;
  population.reserve(static_cast<size_t>(opts.population));
  for (int i = 0; i < opts.population; ++i) {
    population.push_back(SampleSchedule(task, &rng));
  }
  std::vector<ScheduleDesc> elite;  // measured good candidates seed mutations

  for (int round = 0; round < opts.rounds; ++round) {
    // Rank the population with the cost model.
    std::vector<std::pair<double, size_t>> scored;
    scored.reserve(population.size());
    for (size_t i = 0; i < population.size(); ++i) {
      TensorProgram prog = GenerateProgram(task, population[i]);
      CompactAst ast = ExtractCompactAst(prog);
      scored.emplace_back(cost_model(ast, device.id), i);
    }
    std::sort(scored.begin(), scored.end());

    // Measure the top candidates on the "device".
    for (int m = 0; m < opts.measured_per_round && m < static_cast<int>(scored.size()); ++m) {
      const ScheduleDesc& cand = population[scored[static_cast<size_t>(m)].second];
      double latency = Measure(task, cand, device);
      ++curve.total_measurements;
      if (latency < best) {
        best = latency;
        elite.clear();
        elite.push_back(cand);
      } else if (elite.size() < 4) {
        elite.push_back(cand);
      }
    }
    curve.best_after_round.push_back(best);

    // Next generation: mutations of elites + fresh samples.
    std::vector<ScheduleDesc> next;
    next.reserve(population.size());
    while (static_cast<int>(next.size()) < opts.population) {
      if (!elite.empty() && rng.Bernoulli(0.6)) {
        next.push_back(MutateSchedule(task, rng.Choice(elite), &rng));
      } else {
        next.push_back(SampleSchedule(task, &rng));
      }
    }
    population = std::move(next);
  }
  curve.final_best = best;
  return curve;
}

SearchCurve RandomSearch(const Task& task, const DeviceSpec& device, const SearchOptions& opts) {
  Rng rng(opts.seed);
  SearchCurve curve;
  double best = std::numeric_limits<double>::max();
  for (int round = 0; round < opts.rounds; ++round) {
    for (int m = 0; m < opts.measured_per_round; ++m) {
      double latency = Measure(task, SampleSchedule(task, &rng), device);
      ++curve.total_measurements;
      best = std::min(best, latency);
    }
    curve.best_after_round.push_back(best);
  }
  curve.final_best = best;
  return curve;
}

}  // namespace cdmpp

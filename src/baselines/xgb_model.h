// XGBoost-style cost model over flattened compact-AST features (the AutoTVM
// baseline of Figs. 6/7/9). Consumes per-program aggregate features plus
// device features; labels are Box-Cox normalized like the main pipeline.
#ifndef SRC_BASELINES_XGB_MODEL_H_
#define SRC_BASELINES_XGB_MODEL_H_

#include <memory>

#include "src/baselines/gbt.h"
#include "src/dataset/batching.h"
#include "src/dataset/dataset.h"
#include "src/ml/transforms.h"

namespace cdmpp {

class XgbCostModel {
 public:
  explicit XgbCostModel(const GbtConfig& config = GbtConfig()) : gbt_(config) {}

  // Trains on the given sample indices. Returns training throughput
  // (samples/second) for the paper's efficiency comparison.
  double Fit(const Dataset& ds, const std::vector<int>& train, Rng* rng);

  // Predicted latencies in seconds.
  std::vector<double> Predict(const Dataset& ds, const std::vector<int>& indices) const;

  // Predicts a free-standing compact AST on a device (replayer / search).
  double PredictAst(const CompactAst& ast, int device_id) const;

 private:
  Matrix FeatureMatrix(const Dataset& ds, const std::vector<int>& indices) const;

  GradientBoostedTrees gbt_;
  std::unique_ptr<LabelTransform> transform_;
};

}  // namespace cdmpp

#endif  // SRC_BASELINES_XGB_MODEL_H_

// Reproduces paper Fig. 2: the distribution of AST node counts vs leaf-node
// counts over the dataset — the observation motivating the Compact AST
// (node counts vary wildly; leaf counts stay in a narrow range).
#include <cstdio>

#include "src/exp/exp_common.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

void PrintDistribution(const char* label, const std::vector<double>& xs) {
  std::printf("\n%s: min=%.0f p25=%.0f median=%.0f p75=%.0f max=%.0f\n", label,
              Percentile(xs, 0), Percentile(xs, 25), Percentile(xs, 50), Percentile(xs, 75),
              Percentile(xs, 100));
  const size_t bins = 12;
  auto hist = Histogram(xs, bins);
  double lo = Percentile(xs, 0);
  double hi = Percentile(xs, 100);
  size_t peak = 1;
  for (size_t c : hist) {
    peak = std::max(peak, c);
  }
  for (size_t b = 0; b < bins; ++b) {
    double from = lo + (hi - lo) * static_cast<double>(b) / bins;
    double to = lo + (hi - lo) * static_cast<double>(b + 1) / bins;
    int bar = static_cast<int>(50.0 * static_cast<double>(hist[b]) / static_cast<double>(peak));
    std::printf("  [%5.1f, %5.1f) %6zu %s\n", from, to, hist[b], std::string(bar, '#').c_str());
  }
}

int Run() {
  PrintBenchHeader("bench_fig02_ast_stats", "Fig. 2",
                   "AST node-count vs leaf-node-count distributions over the dataset");
  Dataset ds = BuildBenchDataset({0});
  std::vector<double> nodes;
  std::vector<double> leaves;
  for (const ProgramRecord& rec : ds.programs) {
    nodes.push_back(rec.ast.num_nodes);
    leaves.push_back(rec.ast.num_leaves);
  }
  PrintDistribution("(a) AST node count", nodes);
  PrintDistribution("(b) AST leaf-node count", leaves);
  double node_range = Percentile(nodes, 100) - Percentile(nodes, 0);
  double leaf_range = Percentile(leaves, 100) - Percentile(leaves, 0);
  std::printf("\nRange(node count) = %.0f vs Range(leaf count) = %.0f — leaf range is %.1fx"
              " narrower, enabling leaf-count-bucketed batching (paper's key observation).\n",
              node_range, leaf_range, node_range / std::max(1.0, leaf_range));
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

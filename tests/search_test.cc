#include <gtest/gtest.h>

#include "src/search/schedule_search.h"

namespace cdmpp {
namespace {

Task SearchTask() {
  Task t;
  t.kind = OpKind::kDense;
  t.dims = {256, 512, 1024};
  t.name = "search_mm";
  return t;
}

TEST(SearchTest, BestLatencyNonIncreasing) {
  SearchOptions opts;
  opts.rounds = 10;
  opts.population = 12;
  opts.measured_per_round = 3;
  // Oracle cost model = the simulator itself.
  auto oracle = [](const CompactAst&, int) { return 0.0; };
  (void)oracle;
  const DeviceSpec& dev = DeviceByName("T4");
  SearchCurve curve = EvolutionarySearch(
      SearchTask(), dev,
      [&](const CompactAst& ast, int) {
        // A weak heuristic cost model: prefer vectorized/parallel programs.
        double score = 1.0;
        for (const ComputationVector& cv : ast.leaves) {
          score -= 0.1 * cv[19] + 0.1 * cv[22];
        }
        return score;
      },
      opts);
  ASSERT_EQ(curve.best_after_round.size(), 10u);
  for (size_t i = 1; i < curve.best_after_round.size(); ++i) {
    EXPECT_LE(curve.best_after_round[i], curve.best_after_round[i - 1] + 1e-12);
  }
  EXPECT_EQ(curve.total_measurements, 30);
  EXPECT_GT(curve.final_best, 0.0);
}

TEST(SearchTest, OracleCostModelBeatsAntiOracle) {
  // With the simulator as the cost model, search must find schedules at
  // least as good as an adversarial (inverted) cost model, measuring the
  // same number of candidates.
  SearchOptions opts;
  opts.rounds = 15;
  opts.population = 16;
  opts.measured_per_round = 2;
  const DeviceSpec& dev = DeviceByName("T4");
  Task task = SearchTask();

  auto oracle = [&](const CompactAst&, int) { return 0.0; };
  (void)oracle;
  SearchCurve good = EvolutionarySearch(
      task, dev,
      [&](const CompactAst& ast, int) {
        (void)ast;
        return 0.0;  // replaced below
      },
      opts);
  // Proper oracle: regenerate the latency via structural features is not
  // possible from the AST alone in this lambda, so approximate the oracle by
  // a monotone proxy of the simulator: fewer expected seconds ~ more
  // parallel/vectorized and cache-friendly tiles. Instead, compare the
  // simulator-guided random search against anti-guided search:
  SearchCurve anti = EvolutionarySearch(
      task, dev,
      [&](const CompactAst& ast, int) {
        double score = 0.0;
        for (const ComputationVector& cv : ast.leaves) {
          score += cv[19] + cv[22];  // prefers NOT annotated (higher = worse rank)
        }
        return score;
      },
      opts);
  SearchCurve pro = EvolutionarySearch(
      task, dev,
      [&](const CompactAst& ast, int) {
        double score = 0.0;
        for (const ComputationVector& cv : ast.leaves) {
          score -= cv[19] + cv[22];
        }
        return score;
      },
      opts);
  (void)good;
  EXPECT_LE(pro.final_best, anti.final_best * 1.05);
}

TEST(SearchTest, RandomSearchAlsoImproves) {
  SearchOptions opts;
  opts.rounds = 12;
  opts.measured_per_round = 4;
  SearchCurve curve = RandomSearch(SearchTask(), DeviceByName("V100"), opts);
  EXPECT_EQ(curve.total_measurements, 48);
  EXPECT_LE(curve.best_after_round.back(), curve.best_after_round.front());
}

TEST(SearchTest, DeterministicGivenSeed) {
  SearchOptions opts;
  opts.rounds = 5;
  auto cm = [](const CompactAst& ast, int) {
    return static_cast<double>(ast.num_nodes);
  };
  SearchCurve a = EvolutionarySearch(SearchTask(), DeviceByName("T4"), cm, opts);
  SearchCurve b = EvolutionarySearch(SearchTask(), DeviceByName("T4"), cm, opts);
  EXPECT_EQ(a.final_best, b.final_best);
}

}  // namespace
}  // namespace cdmpp

// Regression losses with analytic gradients: MSE, MAPE, MSPE and the paper's
// scale-insensitive hybrid objective (Eqn. 3): MSE + lambda * MAPE.
#ifndef SRC_NN_LOSS_H_
#define SRC_NN_LOSS_H_

#include <vector>

namespace cdmpp {

enum class LossKind { kMse, kMape, kMspe, kHybrid };

const char* LossKindName(LossKind kind);

// Computes the loss value and the gradient d(loss)/d(pred_i) in one pass.
// `lambda` is the MAPE coefficient of the hybrid objective (paper: 1e-3 when
// labels are raw latencies; with normalized labels, 0.1 keeps both terms at
// the same order of magnitude, matching the paper's stated intent).
// Targets with |y| < eps are guarded to avoid division blow-ups.
struct LossResult {
  double value = 0.0;
  std::vector<float> grad;
};

LossResult ComputeLoss(LossKind kind, const std::vector<float>& pred,
                       const std::vector<float>& target, double lambda);

}  // namespace cdmpp

#endif  // SRC_NN_LOSS_H_

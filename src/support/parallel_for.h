// A persistent worker pool with a single primitive: ParallelFor over an
// integer range. This is the only threading construct the compute data plane
// (src/nn/kernels.cc and the batch-row loops in the layers) uses, so the
// whole library shares one pool instead of spawning threads per call.
//
// Multiple top-level regions may be in flight at once: each ParallelFor
// publishes its chunk descriptor into a registry, drains its own region, and
// idle pool workers steal chunks from whichever registered region still has
// some. Concurrent callers therefore compose instead of convoying — a serve
// worker's GEMM no longer collapses to serial because another worker's
// forward got to the pool first. See parallel_for.cc for the scheduler and
// the README "Threading model" section for the determinism argument.
//
// Sizing: the global pool honors the CDMPP_NUM_THREADS environment variable
// (a complete decimal integer in [1, 1024]); malformed or out-of-range values
// fall back to std::thread::hardware_concurrency(), itself clamped to >= 1.
// Tests can construct private pools of any size.
#ifndef SRC_SUPPORT_PARALLEL_FOR_H_
#define SRC_SUPPORT_PARALLEL_FOR_H_

#include <cstdint>
#include <type_traits>
#include <utility>

namespace cdmpp {

// ---- Shared serial-vs-fork policy for the data-plane loops. -----------------
//
// Forking a region costs a fixed wake/join handshake, so small loops run
// faster inline. Every data-plane loop (GEMM row panels in kernels.cc,
// attention's per-(sample, head) blocks, the row/elementwise loops in
// layers.cc and quantize.cc) shares this one threshold instead of inventing
// its own: call sites pass their estimated work in flop-equivalents
// (memory-bound loops weight each element by its rough op count), and the
// constant is tuned in exactly one place. 2*m*n*k for the d_model=64
// predictor GEMM shapes crosses this around batch 16.
constexpr double kParallelMinWork = 256.0 * 1024.0;

inline bool WorthForkingWork(double work) { return work >= kParallelMinWork; }

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers; the calling thread participates in every
  // region, so num_threads == 1 means "no extra threads, run inline".
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool (created on first use, never destroyed).
  static ThreadPool& Global();

  // Routes Global() to `pool` until called again (nullptr restores the real
  // global). Test/bench hook: the real global reads CDMPP_NUM_THREADS once
  // per process, so measuring the data plane under several pool sizes in one
  // process needs this seam (tests/threading_test.cc, the
  // bench_serve_throughput threads series). Switch only while no ParallelFor
  // region is in flight, and clear the override before destroying `pool`.
  static void SetGlobalForTesting(ThreadPool* pool);

  // True on a thread currently executing chunks of some ParallelFor region
  // (a pool worker, or the caller driving a region). Nested ParallelFor
  // calls from such a thread always run inline and serial;
  // ParallelForWithScratch uses this to lease a single scratch arena in
  // that case instead of one per would-be chunk.
  static bool InParallelRegion();

  // Resolves the pool size Global() uses from a CDMPP_NUM_THREADS value
  // (may be null) and the detected hardware concurrency. A value that is not
  // a complete decimal integer, or is < 1, falls back to `hardware_threads`;
  // every result is clamped to [1, kMaxThreads], including the fallback
  // (hardware_concurrency() may legitimately return 0). Exposed for the
  // regression tests; Global() is a singleton so the env var itself is only
  // read once per process.
  static constexpr int kMaxThreads = 1024;
  static int ResolveNumThreads(const char* env_value, int hardware_threads);

  int num_threads() const { return num_threads_; }

  // Splits [begin, end) into chunks of at most `grain` iterations and invokes
  // fn(chunk_begin, chunk_end) across the pool; the calling thread
  // participates. Blocks until every chunk has completed.
  //
  // - Concurrent top-level callers compose: each call registers its own
  //   region and idle workers steal chunks from any live region, so a busy
  //   pool never demotes a top-level call to serial (the pre-stealing
  //   scheduler did exactly that, counted as serial_contended; that counter
  //   now only moves on registry overflow at 256 concurrent regions).
  // - Runs serially inline (one fn(begin, end) call) when the range fits a
  //   single chunk, the pool has one thread, or the caller is already inside
  //   a ParallelFor (nested submits never deadlock; see parallel_for.cc for
  //   why nested stays inline-serial).
  // - Exceptions thrown by fn are caught; the first one is rethrown on the
  //   calling thread after all remaining chunks have been drained (their
  //   bodies are skipped once a failure is recorded). Failures never leak
  //   across regions: a stealing worker reports into the region that owns
  //   the chunk it was running.
  // - fn must be safe to run concurrently on disjoint chunks. Callers that
  //   need run-to-run determinism (the GEMM kernels guarantee bitwise
  //   batch-size-invariant results) must make per-element output independent
  //   of the chunk partition; the partition itself is fixed at begin + j*grain
  //   no matter which threads claim the chunks.
  template <typename Fn>
  void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
    using F = typename std::remove_reference<Fn>::type;
    RunImpl(begin, end, grain,
            [](void* ctx, int64_t b, int64_t e) { (*static_cast<F*>(ctx))(b, e); },
            const_cast<void*>(static_cast<const void*>(&fn)));
  }

  // Hard cap on the number of chunks ParallelForWithScratch will create; the
  // grain is raised as needed so the lease table fits on the stack. 4 chunks
  // per thread up to 64 threads — far past the point where more chunks stop
  // helping load balance.
  static constexpr int kMaxScratchChunks = 256;

  // Like ParallelFor, but hands each chunk a private scratch object leased
  // from `pool`: fn(scratch, chunk_begin, chunk_end). Pool is any type with
  // `T* Checkout()` / `void Return(T*)` — in practice WorkspacePool
  // (src/nn/workspace.h); keeping it a template parameter keeps support/
  // layered below nn/.
  //
  // Every lease is checked out by the CALLING thread before the region forks
  // and chunk j always receives lease j, so which arena serves which chunk
  // does not depend on thread scheduling: a single-threaded caller repeats
  // the same checkout sequence every pass, which is what lets a warm pool
  // serve the whole region without touching the heap (the dataplane
  // zero-allocation tests rely on this determinism). All leases are returned
  // even when a chunk body throws. The scratch contents are chunk-private;
  // callers needing bitwise run-to-run determinism must still keep
  // per-element output independent of the chunk partition, exactly as with
  // plain ParallelFor.
  template <typename Pool, typename Fn>
  void ParallelForWithScratch(Pool& pool, int64_t begin, int64_t end, int64_t grain,
                              Fn&& fn) {
    if (begin >= end) {
      return;
    }
    grain = grain < 1 ? 1 : grain;
    int64_t num_chunks = (end - begin + grain - 1) / grain;
    if (num_chunks > kMaxScratchChunks) {
      grain = (end - begin + kMaxScratchChunks - 1) / kMaxScratchChunks;
      num_chunks = (end - begin + grain - 1) / grain;
    }
    // A single-thread pool or a nested call is guaranteed to run inline as
    // one chunk (same conditions RunImpl checks): don't lease scratch that
    // cannot be used. (The only other inline fallback left is registry
    // overflow at 256 concurrent regions, discovered inside RunImpl; that
    // vanishingly rare case pays for its unused leases.)
    if (num_threads_ == 1 || InParallelRegion()) {
      grain = end - begin;
      num_chunks = 1;
    }
    using Scratch = typename std::remove_pointer<decltype(pool.Checkout())>::type;
    Scratch* scratch[kMaxScratchChunks];
    struct Returner {
      Pool& pool;
      Scratch** scratch;
      int64_t n = 0;
      ~Returner() {
        for (int64_t i = 0; i < n; ++i) {
          pool.Return(scratch[i]);
        }
      }
    } returner{pool, scratch};
    for (int64_t i = 0; i < num_chunks; ++i) {
      scratch[i] = pool.Checkout();
      returner.n = i + 1;
    }
    // Chunks are claimed at begin + j*grain exactly (RunImpl advances a
    // shared cursor by `grain`), so the chunk index below is total.
    ParallelFor(begin, end, grain, [&](int64_t b, int64_t e) {
      fn(scratch[(b - begin) / grain], b, e);
    });
  }

 private:
  struct Impl;

  void RunImpl(int64_t begin, int64_t end, int64_t grain,
               void (*fn)(void*, int64_t, int64_t), void* ctx);

  int num_threads_ = 1;
  Impl* impl_ = nullptr;
};

// Convenience wrapper over the global pool.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, std::forward<Fn>(fn));
}

// The full fork decision every data-plane call site shares: forking pays off
// only when the pool actually has extra threads, the range splits into more
// than one item, and the estimated work (flop-equivalents, see
// kParallelMinWork) amortizes the publish/wake handshake. Call sites that
// skip the fork run their body inline without even touching the pool.
// Centralizing this beats each TU re-deriving the pool/items checks — with
// regions now composing, the policy is purely about overhead, not about
// dodging a busy pool.
inline bool WorthForking(const ThreadPool& pool, int64_t items, double work) {
  return pool.num_threads() > 1 && items > 1 && WorthForkingWork(work);
}

// Load-balance grain over `n` items: ~4 chunks per global-pool thread
// (clamped to >= 1). The kernel row panels further align this to their
// register tile; everyone else uses it as-is.
inline int64_t ParallelGrain(int64_t n) {
  const int64_t chunks = static_cast<int64_t>(ThreadPool::Global().num_threads()) * 4;
  return n <= chunks ? 1 : (n + chunks - 1) / chunks;
}

}  // namespace cdmpp

#endif  // SRC_SUPPORT_PARALLEL_FOR_H_

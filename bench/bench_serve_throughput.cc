// Serving load generator: measures the batched inference service under an
// autotuner-shaped query stream (many small latency queries, heavy schedule
// re-visiting), sweeping worker count x batch window x batching on/off.
//
// Reports QPS, mean batch occupancy, cache hit rate, and p50/p99 request
// latency per configuration, plus the headline batched-vs-unbatched
// comparison, and emits machine-readable BENCH_serve.json (QPS, p50/p99,
// kernel ISA, serving precision) so CI tracks the serving trajectory next to
// the GEMM one. The serving precision comes from the ServeOptions default,
// i.e. the CDMPP_PRECISION environment override — the int8 CI leg measures
// the quantized serving path with no bench-side changes.
// Build & run:  ./build/bench/bench_serve_throughput [--smoke]
// (--smoke shrinks the workload and sweep for CI.)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "src/serve/prediction_service.h"
#include "src/support/cpu_features.h"
#include "src/support/parallel_for.h"
#include "src/support/table.h"
#include "src/tir/schedule.h"

using namespace cdmpp;

namespace {

struct Workload {
  // Pointers into `asts`; schedules repeat with autotuner-like locality so a
  // cache can pay off.
  std::vector<CompactAst> asts;
  std::vector<const CompactAst*> requests;
};

Workload BuildWorkload(const Dataset& ds, int unique_schedules, int total_requests,
                       uint64_t seed) {
  Workload w;
  Rng rng(seed);
  while (static_cast<int>(w.asts.size()) < unique_schedules) {
    const TaskInfo& info = rng.Choice(ds.tasks);
    w.asts.push_back(
        ExtractCompactAst(GenerateProgram(info.task, SampleSchedule(info.task, &rng))));
  }
  w.requests.reserve(static_cast<size_t>(total_requests));
  for (int i = 0; i < total_requests; ++i) {
    // Zipf-ish revisiting: half the stream hammers the first few schedules,
    // the rest scans uniformly — schedule search evaluates neighborhoods.
    size_t idx = rng.Bernoulli(0.5)
                     ? static_cast<size_t>(rng.UniformInt(0, 7)) % w.asts.size()
                     : static_cast<size_t>(
                           rng.UniformInt(0, static_cast<int64_t>(w.asts.size()) - 1));
    w.requests.push_back(&w.asts[idx]);
  }
  return w;
}

struct RunResult {
  double qps = 0.0;
  ServerStatsSnapshot stats;
};

RunResult RunLoad(CdmppPredictor* predictor, const Workload& w, const ServeOptions& opts,
                  int device_id) {
  PredictionService service(predictor, opts);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<double>> futures;
  futures.reserve(w.requests.size());
  for (const CompactAst* ast : w.requests) {
    futures.push_back(service.Submit(*ast, device_id));
  }
  for (auto& f : futures) {
    f.get();
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  RunResult r;
  r.qps = static_cast<double>(w.requests.size()) / seconds;
  r.stats = service.Stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  // ---- Model under service: quick pre-train on a T4 slice. ----
  DatasetOptions dopts;
  dopts.device_ids = {0};
  dopts.schedules_per_task = 3;
  dopts.max_networks = smoke ? 5 : 10;
  dopts.seed = 21;
  Dataset ds = BuildDataset(dopts);

  PredictorConfig cfg;
  cfg.epochs = smoke ? 2 : 6;
  cfg.seed = 22;
  CdmppPredictor predictor(cfg);
  Rng rng(23);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  std::printf("Pre-training the served model (%zu samples, %d epochs)...\n",
              split.train.size(), cfg.epochs);
  predictor.Pretrain(ds, split.train, split.valid);

  Workload w = BuildWorkload(ds, /*unique_schedules=*/smoke ? 24 : 96,
                             /*total_requests=*/smoke ? 400 : 3000, /*seed=*/24);
  for (const CompactAst& ast : w.asts) {
    predictor.EnsureHead(ast.num_leaves);
  }
  std::printf("Workload: %zu requests over %zu unique schedules on T4.\n\n", w.requests.size(),
              w.asts.size());

  // ---- Sweep: workers x batch window, cache on. ----
  struct SweepRecord {
    int workers;
    double window_ms;
    RunResult result;
  };
  std::vector<SweepRecord> sweep_records;
  TablePrinter sweep({"workers", "window (ms)", "max batch", "QPS", "occupancy", "hit rate",
                      "p50 (ms)", "p99 (ms)"});
  const std::vector<int> worker_sweep = smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4};
  const std::vector<double> window_sweep =
      smoke ? std::vector<double>{0.2} : std::vector<double>{0.0, 0.2, 1.0};
  for (int workers : worker_sweep) {
    for (double window_ms : window_sweep) {
      ServeOptions opts;
      opts.num_workers = workers;
      opts.batch_window_ms = window_ms;
      opts.max_batch_size = 64;
      opts.enable_cache = true;
      RunResult r = RunLoad(&predictor, w, opts, /*device_id=*/0);
      sweep.AddRow({std::to_string(workers), FormatDouble(window_ms, 1),
                    std::to_string(opts.max_batch_size), FormatDouble(r.qps, 0),
                    FormatDouble(r.stats.mean_batch_occupancy, 1),
                    FormatPercent(r.stats.cache_hit_rate, 1),
                    FormatDouble(r.stats.p50_latency_ms, 3),
                    FormatDouble(r.stats.p99_latency_ms, 3)});
      sweep_records.push_back({workers, window_ms, r});
    }
  }
  std::printf("Sweep (prediction cache enabled):\n");
  sweep.Print(stdout);

  // ---- Headline: batching vs batch size 1 on the same workload, no cache. ----
  ServeOptions batched;
  batched.num_workers = 2;
  batched.max_batch_size = 64;
  batched.batch_window_ms = 1.0;
  batched.enable_cache = false;
  ServeOptions single = batched;
  single.max_batch_size = 1;
  single.batch_window_ms = 0.0;

  RunResult r_single = RunLoad(&predictor, w, single, 0);
  RunResult r_batched = RunLoad(&predictor, w, batched, 0);

  std::printf("\nBatching headline (cache disabled, 2 workers):\n");
  TablePrinter headline({"mode", "QPS", "occupancy", "fwd passes", "p50 (ms)", "p99 (ms)"});
  headline.AddRow({"batch size 1", FormatDouble(r_single.qps, 0),
                   FormatDouble(r_single.stats.mean_batch_occupancy, 1),
                   std::to_string(r_single.stats.forward_passes),
                   FormatDouble(r_single.stats.p50_latency_ms, 3),
                   FormatDouble(r_single.stats.p99_latency_ms, 3)});
  headline.AddRow({"batched (<=64)", FormatDouble(r_batched.qps, 0),
                   FormatDouble(r_batched.stats.mean_batch_occupancy, 1),
                   std::to_string(r_batched.stats.forward_passes),
                   FormatDouble(r_batched.stats.p50_latency_ms, 3),
                   FormatDouble(r_batched.stats.p99_latency_ms, 3)});
  headline.Print(stdout);
  std::printf("\nBatched serving: %.2fx the QPS of one-forward-per-request.\n",
              r_batched.qps / r_single.qps);

  // ---- Threads series: batched QPS vs intra-request thread count. ----
  // The encoder's per-(sample, head) attention blocks and the GEMM row
  // panels fork across ThreadPool::Global(); this sweep re-runs the batched
  // workload under private pools of several sizes (the same code path
  // CDMPP_NUM_THREADS selects at startup) so BENCH_serve.json records how
  // intra-request parallelism scales on this host. One worker, so the pool
  // size is the only variable: with concurrent workers, contended regions
  // fall back to inline serial execution and would confound the series. On
  // a single-core host threads > 1 just timeshare — expect flat-to-slightly
  // -worse numbers there.
  ServeOptions intra = batched;
  intra.num_workers = 1;
  struct ThreadsRecord {
    int threads;
    RunResult result;
  };
  std::vector<ThreadsRecord> threads_records;
  const std::vector<int> threads_sweep =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  TablePrinter threads_table({"threads", "QPS (batched)", "p50 (ms)", "p99 (ms)"});
  for (int threads : threads_sweep) {
    ThreadPool pool(threads);
    ThreadPool::SetGlobalForTesting(&pool);
    RunResult r = RunLoad(&predictor, w, intra, 0);
    ThreadPool::SetGlobalForTesting(nullptr);
    threads_table.AddRow({std::to_string(threads), FormatDouble(r.qps, 0),
                          FormatDouble(r.stats.p50_latency_ms, 3),
                          FormatDouble(r.stats.p99_latency_ms, 3)});
    threads_records.push_back({threads, r});
  }
  std::printf("\nIntra-request threads series (1 worker, batched, cache disabled):\n");
  threads_table.Print(stdout);
  const int default_threads = ThreadPool::Global().num_threads();
  std::printf("Default pool size on this host: %d (CDMPP_NUM_THREADS overrides).\n",
              default_threads);

  // Machine-readable trajectory record, uploaded by CI next to
  // BENCH_gemm.json. `precision`/`kernel_isa` come from the batched run's
  // snapshot: the code paths that actually served the headline.
  const char* json_path = "BENCH_serve.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"serve_throughput\",\n  \"smoke\": %s,\n"
                 "  \"kernel_isa\": \"%s\",\n  \"precision\": \"%s\",\n"
                 "  \"requests\": %zu,\n  \"unique_schedules\": %zu,\n"
                 "  \"headline\": {\n"
                 "    \"qps_single\": %.2f,\n    \"qps_batched\": %.2f,\n"
                 "    \"batched_speedup\": %.4f,\n"
                 "    \"p50_ms_single\": %.4f,\n    \"p99_ms_single\": %.4f,\n"
                 "    \"p50_ms_batched\": %.4f,\n    \"p99_ms_batched\": %.4f,\n"
                 "    \"occupancy_batched\": %.2f\n  },\n",
                 smoke ? "true" : "false", r_batched.stats.kernel_isa.c_str(),
                 r_batched.stats.precision.c_str(), w.requests.size(), w.asts.size(),
                 r_single.qps, r_batched.qps, r_batched.qps / r_single.qps,
                 r_single.stats.p50_latency_ms, r_single.stats.p99_latency_ms,
                 r_batched.stats.p50_latency_ms, r_batched.stats.p99_latency_ms,
                 r_batched.stats.mean_batch_occupancy);
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep_records.size(); ++i) {
      const SweepRecord& rec = sweep_records[i];
      std::fprintf(f,
                   "    {\"workers\": %d, \"window_ms\": %.1f, \"qps\": %.2f, "
                   "\"hit_rate\": %.4f, \"occupancy\": %.2f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   rec.workers, rec.window_ms, rec.result.qps,
                   rec.result.stats.cache_hit_rate, rec.result.stats.mean_batch_occupancy,
                   rec.result.stats.p50_latency_ms, rec.result.stats.p99_latency_ms,
                   i + 1 < sweep_records.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"num_threads_default\": %d,\n  \"threads_series\": [\n",
                 default_threads);
    for (size_t i = 0; i < threads_records.size(); ++i) {
      const ThreadsRecord& rec = threads_records[i];
      std::fprintf(f,
                   "    {\"threads\": %d, \"qps_batched\": %.2f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   rec.threads, rec.result.qps, rec.result.stats.p50_latency_ms,
                   rec.result.stats.p99_latency_ms,
                   i + 1 < threads_records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("Wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path);
  }
  return 0;
}

// Small numeric statistics helpers shared by the ML utilities, the
// evaluation harness and the benchmark tables.
#ifndef SRC_SUPPORT_STATS_H_
#define SRC_SUPPORT_STATS_H_

#include <cstddef>
#include <vector>

namespace cdmpp {

// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

// Population standard deviation; 0 for fewer than two elements.
double Stddev(const std::vector<double>& xs);

// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
// 0 for an empty input; a single sample is every percentile of itself.
double Percentile(std::vector<double> xs, double p);

// Evaluates several percentiles with one sort: returns Percentile(xs, p) for
// each p in `ps`, in order. 0 per entry for an empty input. Prefer this over
// repeated Percentile calls when reducing one buffer to p50/p99 etc.
std::vector<double> Percentiles(std::vector<double> xs, const std::vector<double>& ps);

// Pearson correlation coefficient; 0 if either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

// Skewness (Fisher-Pearson, population form); 0 for degenerate inputs.
double Skewness(const std::vector<double>& xs);

// Fixed-width histogram over [min(xs), max(xs)] with `bins` buckets.
// Returns per-bucket counts; the last bucket is right-inclusive.
std::vector<size_t> Histogram(const std::vector<double>& xs, size_t bins);

// Mean absolute percentage error: mean(|pred - truth| / truth).
// Entries with truth == 0 are skipped.
double Mape(const std::vector<double>& pred, const std::vector<double>& truth);

// Root mean squared error.
double Rmse(const std::vector<double>& pred, const std::vector<double>& truth);

// Fraction of predictions within `tol` relative error of the truth
// (the paper's "20% accuracy" metric with tol = 0.2).
double AccuracyWithin(const std::vector<double>& pred, const std::vector<double>& truth,
                      double tol);

}  // namespace cdmpp

#endif  // SRC_SUPPORT_STATS_H_

// In-process batched inference serving in front of CdmppPredictor.
//
// The offline library answers one latency query per forward pass; an
// autotuner or schedule searcher issues millions of small queries, so the
// serving layer turns request concurrency into batch parallelism using the
// same leaf-count bucketing that makes CDMPP training cheap (paper §5.1):
//
//   Submit(ast, device) ──▶ prediction cache ──hit──▶ resolved future
//                                │ miss
//                                ▼
//                          request queue ──▶ worker pool drains pending
//                          requests, coalesces duplicates, groups by leaf
//                          count (AstBatchView adapter, src/dataset/
//                          batching.h), and runs ONE cache-free const
//                          forward pass per bucket (PredictBatched).
//
// Threading model: workers never take an exclusive lock on the hot path. The
// model is shared read-only through CdmppPredictor::PredictBatched (const,
// cache-free — see src/core/predictor.h); an exclusive lock is taken only on
// the rare first sighting of a new leaf count, to create its head. Two
// parallelism levels compose: worker-level batching (one arena per worker,
// leased from WorkspacePool::Global() for the worker's lifetime) and
// intra-request parallelism inside each forward (GEMM row panels and the
// encoder's batch-row attention chunks fork across ThreadPool::Global(),
// leasing per-chunk scratch from the same pool — checkout grows on demand
// and never blocks, so nested leases cannot deadlock). Results are bitwise
// identical for every CDMPP_NUM_THREADS value; see README "Threading model"
// for when intra-request threads help (big batches) vs hurt (QPS-bound
// many-worker serving).
#ifndef SRC_SERVE_PREDICTION_SERVICE_H_
#define SRC_SERVE_PREDICTION_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "src/core/predictor.h"
#include "src/obs/trace.h"
#include "src/serve/prediction_cache.h"
#include "src/serve/server_stats.h"
#include "src/support/cpu_features.h"

namespace cdmpp {

struct ServeOptions {
  int num_workers = 2;
  // Numeric tier the workers' forward passes run in. kInt8 serves through the
  // int8 symmetric-quantized kernel path (PredictBatchedQuantized, <= 1%
  // relative deviation from fp32, ~2x GEMM throughput/core) covering the
  // encoder weight GEMMs plus heads/device-MLP/decoder; kInt8Heads is the
  // pre-encoder subset kept for A/B comparison. The default is taken from the
  // CDMPP_PRECISION environment override (fp32 when unset or unrecognized).
  Precision precision = DefaultPrecision();
  // Upper bound on requests drained per worker wake-up; buckets inside a
  // drain are additionally chunked to the predictor's config batch size.
  int max_batch_size = 64;
  // After the first pending request, a worker waits up to this long for more
  // requests to accumulate before running the forward pass. 0 disables the
  // window (every request is served as soon as a worker is free).
  double batch_window_ms = 0.2;
  bool enable_cache = true;
  size_t cache_capacity = 1 << 16;
  int cache_shards = 16;
  // > 0 starts a background thread that logs an interval-delta
  // ServerStatsSnapshot (QPS, hit rate, latency percentiles + histogram) to
  // stderr every this-many seconds. 0 (default) disables the logger.
  double stats_log_interval_s = 0.0;
};

class PredictionService {
 public:
  // `predictor` must be fitted (Pretrain has run) and must outlive the
  // service. The service serializes its own head creation against its
  // forward passes; the caller must not train or mutate the predictor while
  // the service is running. With options.precision != kFp32 the constructor
  // calibrates the predictor's int8 snapshots (PrepareQuantizedInference) —
  // a mutation, so don't construct concurrently with other predictor use.
  PredictionService(CdmppPredictor* predictor, const ServeOptions& options);
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  // Asynchronous prediction. The future resolves to the predicted latency in
  // seconds — immediately on a cache hit, after a batched forward pass
  // otherwise. Thread-safe; callable from any number of client threads.
  std::future<double> Submit(const CompactAst& ast, int device_id);

  // Bulk zero-copy variant of Submit for population-scoring clients
  // (src/search/cost_model_client.h). Two differences from a Submit loop,
  // both load-bearing for tuning throughput:
  //   * borrowed ASTs — the service keeps pointers instead of copying node
  //     arrays, so submitting a whole candidate population costs no copies.
  //     Lifetime contract: the caller must keep every AST alive and
  //     unmodified until its future resolves (a client that waits out all
  //     futures before touching its population — as
  //     CostModelClient::ScoreBatch does — satisfies this by construction).
  //   * one queue lock and ONE worker wake-up for the whole population, after
  //     every request is enqueued — the draining worker sees the full batch
  //     immediately, so population-sized forwards form with no batch-window
  //     wait and no per-request notify/wake churn.
  // Same semantics per request otherwise: cache fast path, coalescing,
  // leaf-count-bucketed batching. futures[i] corresponds to (asts[i],
  // device_ids[i]).
  std::vector<std::future<double>> SubmitBorrowedBatch(
      const std::vector<const CompactAst*>& asts, const std::vector<int>& device_ids);

  // Blocking convenience wrapper around Submit. Must not be called from a
  // worker thread (it waits on the worker pool).
  double Predict(const CompactAst& ast, int device_id);

  // Drains outstanding requests, then stops the workers. Idempotent; also
  // run by the destructor. Submit must not be called afterwards.
  void Shutdown();

  // Re-derives the predictor's int8 calibration snapshots (encoder, device
  // MLP, decoder, and every quantized head seen so far) from its CURRENT fp32
  // parameters, under the exclusive model lock: in-flight batched forwards
  // finish on the old snapshots first (they hold the shared lock), requests
  // served afterwards read the new ones, and no traffic is dropped. This is
  // the only safe way to re-calibrate a live service — calling
  // predictor->PrepareQuantizedInference() directly while workers run races
  // the snapshot swap against the lock-free forwards reading it
  // (tests/tsan_stress_test.cc exercises this path under ThreadSanitizer).
  // No-op in fp32 mode, where there are no snapshots to refresh. Because the
  // snapshots are a deterministic function of the fp32 parameters,
  // recalibrating without an intervening parameter change is bitwise
  // invisible to clients. Thread-safe; callable from any non-worker thread.
  void Recalibrate();

  ServerStatsSnapshot Stats() const {
    ServerStatsSnapshot s = stats_.Snapshot();
    s.precision = PrecisionName(options_.precision);
    return s;
  }
  // Reopens the stats measurement window (counters, latency histogram, wall
  // clock). Benchmarks call this after warm-up so headline QPS/percentiles
  // measure steady state only; in-flight requests land in the new window.
  void ResetStats() { stats_.Reset(); }
  const PredictionCache& cache() const { return cache_; }
  const ServeOptions& options() const { return options_; }

 private:
  struct Request {
    // Submit stores an owned copy (the request may outlive the caller's
    // object); SubmitBorrowed stores only the pointer under the caller's
    // keep-alive contract. ast() picks whichever this request carries.
    CompactAst owned_ast;
    const CompactAst* borrowed_ast = nullptr;
    const CompactAst& ast() const { return borrowed_ast ? *borrowed_ast : owned_ast; }
    int device_id = -1;
    CacheKey key;
    std::promise<double> promise;
    std::chrono::steady_clock::time_point submit_time;
    // True for the 1-in-N requests the trace sampler selected at Submit; the
    // worker that fulfills the request emits a per-stage RequestTrace for it.
    bool traced = false;
  };

  // Builds one request (or resolves it straight from the cache, returning an
  // already-satisfied future in *ready). Shared by Submit and
  // SubmitBorrowedBatch; `copy_ast` selects owned vs borrowed AST storage.
  // Returns true if the request must be enqueued (written to *req).
  bool BuildRequest(const CompactAst& ast, int device_id, bool copy_ast, Request* req,
                    std::future<double>* ready);
  void WorkerLoop();
  // Coalesces duplicates, re-checks the cache, runs the batched forward for
  // the remaining unique rows, and fulfills every promise. `ws` and
  // `predictions` are the calling worker's private arena and reusable output
  // buffer: after warm-up the forward pass itself (PredictBatched) allocates
  // nothing. Request bookkeeping — queue entries, promises, and this
  // method's coalescing map/index vectors — still heap-allocates per batch;
  // pooling those per worker is a ROADMAP follow-on.
  // `drained_at` is the instant the worker popped the batch off the queue —
  // the boundary between each request's queue-wait and batch-formation trace
  // stages.
  void ProcessBatch(std::vector<Request> requests,
                    std::chrono::steady_clock::time_point drained_at, Workspace* ws,
                    std::vector<double>* predictions);
  void StatsLoggerLoop();

  CdmppPredictor* predictor_;
  ServeOptions options_;
  PredictionCache cache_;
  ServerStats stats_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stop_ = false;

  // Shared: batched forward passes. Exclusive: head creation for a leaf
  // count the model has never seen.
  std::shared_mutex model_mu_;

  std::vector<std::thread> workers_;

  // Periodic stats logger (options_.stats_log_interval_s > 0 only).
  std::mutex logger_mu_;
  std::condition_variable logger_cv_;
  bool logger_stop_ = false;
  std::thread logger_;
};

}  // namespace cdmpp

#endif  // SRC_SERVE_PREDICTION_SERVICE_H_

// Int8 symmetric quantization for the inference data plane.
//
// Scheme (the serving tier behind CDMPP_PRECISION=int8):
//   * Weights: int8, quantized once at calibration time, one scale per
//     OUTPUT CHANNEL (column of W): scale_j = colabsmax_j / 127, values
//     round-to-nearest into [-127, 127] and packed into the kernel layer's
//     pair-interleaved PackedQ8Weights layout (src/nn/kernels.h).
//   * Activations: quantized dynamically at every layer, one scale per ROW
//     (per sample): scale_i = rowabsmax_i / ActivationQMax(k). Per-row — not
//     per-batch — scales are deliberate: a row's quantized representation
//     depends only on that row, so the quantized path keeps the serving
//     layer's bitwise batch-size-invariance contract
//     (PredictBatchedQuantized of one request == the same request inside any
//     batch) that a whole-tensor scale would break, and each sample gets its
//     own dynamic range for free. The code range is NOT capped at 127: the
//     madd kernels stage activations in 16-bit lanes either way, so
//     activation codes use that headroom (12 bits on every predictor shape,
//     bounded so the i32 accumulator provably cannot overflow) — measurably
//     tighter accuracy at identical kernel speed and memory traffic.
//   * Accumulation: exact int32; the fused dequantize+bias+ReLU epilogue
//     rounds multiply and add separately, so quantized layer outputs are
//     bitwise identical across kernel ISAs (stronger than the fp32 tier's
//     ~1e-6 cross-ISA agreement).
//
// Accuracy contract: |q*scale - x| <= scale/2 per element (round-to-nearest,
// pinned by tests/quantize_test.cc); end-to-end the int8 predictor agrees
// with fp32 to <= 1% relative on the serving fixtures (tests/serve_test.cc).
//
// QuantizedLinear/QuantizedMlp are calibrated read-only copies of their fp32
// layers: construction is mutating-world only, ForwardInference is const and
// touches no mutable state, so any number of threads may run it concurrently
// on a shared instance (the PredictionService int8 mode relies on this).
// Re-quantize after the fp32 parameters change (training, ImportParams).
#ifndef SRC_NN_QUANTIZE_H_
#define SRC_NN_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "src/nn/kernels.h"
#include "src/nn/layers.h"
#include "src/nn/matrix.h"
#include "src/nn/workspace.h"

namespace cdmpp {

// Quantizes + packs a fp32 weight matrix W [k, n] (row-major, ld >= n)
// symmetric per output channel into the kernel layer's packed layout.
void QuantizePackWeights(int k, int n, const float* w, int ldw, kernels::PackedQ8Weights* out);

// Activation code magnitude for a reduction of length k: the full headroom
// the 16-bit madd lanes give for free, bounded so the i32 accumulation
// provably cannot overflow (k * qmax * 127 <= 2^31 - 1) and capped at 12
// bits. Every predictor shape (k <= 4096) gets 4095; this is why activations
// are quantized finer than the int8 weights at identical kernel speed and
// memory traffic — the i16 lane is paid for either way.
int ActivationQMax(int k);

// Dynamic per-row symmetric activation quantization: for each of `rows` rows
// of x (ldx elements apart), writes 2*k2 i16 lanes (ldq >= 2*k2 apart, the
// [k, 2*k2) pad zeroed) and the row's dequantization scale into scales[i].
// Zero rows get scale 1 (all-zero quantized values). k2 = ceil(k / 2).
void QuantizeActivationsPerRow(int rows, int k, const float* x, int ldx, int16_t* q, int ldq,
                               float* scales);

// y = x W + b with W pre-quantized per output channel and x quantized per row
// on the fly. A calibrated, immutable snapshot of a fp32 Linear.
class QuantizedLinear {
 public:
  explicit QuantizedLinear(const Linear& linear);

  // Hot path: quantizes x into `ws` scratch and runs the fused
  // int8-GEMM + dequantize + bias + activation kernel. Output and scratch
  // live in `ws` (one per thread), valid until its Reset().
  Matrix* ForwardInference(const Matrix& x, Workspace* ws,
                           kernels::Activation act = kernels::Activation::kNone) const;

  int in_dim() const { return weights_.k; }
  int out_dim() const { return weights_.n; }
  const kernels::PackedQ8Weights& weights() const { return weights_; }

 private:
  kernels::PackedQ8Weights weights_;
  std::vector<float> bias_;
};

// The int8 mirror of Mlp: every Linear quantized, hidden ReLUs fused into the
// kernel epilogue. Intermediate activations are dequantized to fp32 between
// layers and re-quantized per row at the next layer (dynamic quantization).
//
// `num_fp32_tail_layers` keeps that many trailing Linears in fp32 (copied at
// calibration time). The predictor's decoder uses 1: its final projection is
// a [*, 1] GEMM whose absolute quantization noise lands directly on the
// transformed label — where the exponential-tailed inverse Box-Cox amplifies
// it — while contributing ~nothing to serving throughput. Keeping the scalar
// head fp32 is what holds the end-to-end <= 1% agreement contract.
class QuantizedMlp {
 public:
  explicit QuantizedMlp(const Mlp& mlp, size_t num_fp32_tail_layers = 0);

  Matrix* ForwardInference(const Matrix& x, Workspace* ws) const;

  size_t num_layers() const { return layers_.size() + fp32_tail_.size(); }
  size_t num_quantized_layers() const { return layers_.size(); }
  const QuantizedLinear& layer(size_t i) const { return layers_[i]; }

 private:
  std::vector<QuantizedLinear> layers_;
  std::vector<Linear> fp32_tail_;
};

}  // namespace cdmpp

#endif  // SRC_NN_QUANTIZE_H_

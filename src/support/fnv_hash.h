// FNV-1a (64-bit) mixing helpers shared by the stable content hashes that
// form the serving cache key: CompactAst::Hash() and DeviceSpec::
// Fingerprint(). Values are mixed as fixed-width little-endian words / raw
// bit patterns, so hashes are stable across runs and processes on all
// supported platforms.
#ifndef SRC_SUPPORT_FNV_HASH_H_
#define SRC_SUPPORT_FNV_HASH_H_

#include <cstdint>
#include <cstring>

namespace cdmpp {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvMixBytes(uint64_t h, const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

// Mixes a 64-bit value byte by byte, low byte first (endianness-stable).
inline uint64_t FnvMix(uint64_t h, uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xffull;
    h *= kFnvPrime;
  }
  return h;
}

// Hashes the bit pattern, not the value: +0.0f/-0.0f differ, NaNs are stable.
inline uint64_t FnvMixFloat(uint64_t h, float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  return FnvMix(h, bits);
}

inline uint64_t FnvMixDouble(uint64_t h, double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return FnvMix(h, bits);
}

}  // namespace cdmpp

#endif  // SRC_SUPPORT_FNV_HASH_H_

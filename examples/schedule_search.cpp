// Cost-model-guided schedule tuning (paper §7.5): tune one convolution task
// on T4 with the evolutionary searcher, once guided by a freshly trained
// CDMPP cost model and once by pure random sampling, and print the search
// curves. This is the Ansor-style auto-tuning use case from the paper's
// introduction.
//
// Build & run:  ./build/examples/schedule_search
#include <cstdio>

#include "src/core/predictor.h"
#include "src/search/schedule_search.h"
#include "src/support/table.h"

using namespace cdmpp;

int main() {
  // Train a small cost model on T4 traces.
  DatasetOptions opts;
  opts.device_ids = {0};
  opts.schedules_per_task = 5;
  opts.max_networks = 12;
  opts.seed = 41;
  Dataset ds = BuildDataset(opts);
  Rng rng(42);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  PredictorConfig cfg;
  cfg.epochs = 40;
  CdmppPredictor predictor(cfg);
  std::printf("Training the cost model on %zu T4 records...\n", split.train.size());
  predictor.Pretrain(ds, split.train, split.valid);

  // The task to tune: a mid-size convolution.
  Task task;
  task.kind = OpKind::kConv2d;
  task.dims = {1, 128, 28, 28, 256, 3, 3};
  task.fused_relu = true;
  task.name = "tuned_conv";

  SearchOptions sopts;
  sopts.rounds = 25;
  sopts.population = 24;
  sopts.measured_per_round = 4;
  const DeviceSpec& t4 = DeviceByName("T4");

  std::printf("Tuning %s for %d rounds (%d measurements/round)...\n", task.name.c_str(),
              sopts.rounds, sopts.measured_per_round);
  SearchCurve guided = EvolutionarySearch(
      task, t4, [&](const CompactAst& ast, int dev) { return predictor.PredictAst(ast, dev); },
      sopts);
  SearchCurve random = RandomSearch(task, t4, sopts);

  TablePrinter table({"round", "CDMPP-guided best (ms)", "random best (ms)"});
  for (size_t r = 0; r < guided.best_after_round.size(); r += 4) {
    table.AddRow({std::to_string(r), FormatDouble(guided.best_after_round[r] * 1e3, 4),
                  FormatDouble(random.best_after_round[r] * 1e3, 4)});
  }
  table.AddRow({"final", FormatDouble(guided.final_best * 1e3, 4),
                FormatDouble(random.final_best * 1e3, 4)});
  table.Print(stdout);
  std::printf("\nThe cost model prunes the population each round, so the guided search"
              " reaches better schedules with the same measurement budget (Fig. 14(b)).\n");
  return 0;
}

#include "src/tir/schedule.h"

#include <algorithm>

#include "src/support/check.h"

namespace cdmpp {

std::vector<int> FeasibleSplitFactors(int64_t extent, int max_factor) {
  std::vector<int> out;
  for (int f = 2; f <= max_factor && f < extent; ++f) {
    if (extent % f == 0) {
      out.push_back(f);
    }
  }
  return out;
}

namespace {

// Working state while applying a schedule: each canonical loop of nest 0
// becomes a chain of tile loops (outer-to-inner).
struct LoopChain {
  std::vector<Loop> pieces;  // pieces[0] is the outermost tile
};

ComputeStmt MakeCacheWriteCopy(double out_elems) {
  ComputeStmt s;
  s.kind = ComputeKind::kCopy;
  s.loads_per_iter = 1.0;
  s.stores_per_iter = 1.0;
  BufferAccess rd;
  rd.footprint_bytes = out_elems * 4.0;
  rd.stride_class = 0;
  rd.is_write = false;
  BufferAccess wr = rd;
  wr.is_write = true;
  s.accesses = {rd, wr};
  return s;
}

// Splits the innermost piece of the chain by `factor`. Returns false if the
// factor does not divide the current innermost extent.
bool SplitChain(LoopChain* chain, int factor) {
  if (factor < 2) {
    return false;
  }
  Loop& inner = chain->pieces.back();
  if (inner.extent % factor != 0 || inner.extent / factor < 1) {
    return false;
  }
  Loop new_inner = inner;
  new_inner.var = inner.var + "i";
  new_inner.extent = factor;
  inner.extent /= factor;
  inner.var += "o";
  chain->pieces.push_back(std::move(new_inner));
  return true;
}

// Emits the chains level-major (all level-0 pieces, then level-1, ...) as a
// nested loop chain. Returns {outermost, innermost} nodes; both null when the
// chain set is empty.
struct ChainEmit {
  StmtNode* outer = nullptr;
  StmtNode* inner = nullptr;
  std::unique_ptr<StmtNode> head;
};

ChainEmit EmitChains(const std::vector<LoopChain>& chains) {
  ChainEmit result;
  size_t max_level = 0;
  for (const LoopChain& c : chains) {
    max_level = std::max(max_level, c.pieces.size());
  }
  for (size_t level = 0; level < max_level; ++level) {
    for (const LoopChain& c : chains) {
      if (level >= c.pieces.size()) {
        continue;
      }
      auto node = StmtNode::MakeLoop(c.pieces[level]);
      StmtNode* raw = node.get();
      if (result.head == nullptr) {
        result.head = std::move(node);
        result.outer = raw;
      } else {
        result.inner->children.push_back(std::move(node));
      }
      result.inner = raw;
    }
  }
  return result;
}

struct NestState {
  std::vector<LoopChain> spatial;
  std::vector<LoopChain> reduction;
  ComputeStmt main;
  std::optional<ComputeStmt> init;
  std::vector<ComputeStmt> epilogues;
};

NestState ToState(const CanonicalNest& nest) {
  NestState st;
  for (const Loop& l : nest.spatial) {
    st.spatial.push_back(LoopChain{{l}});
  }
  for (const Loop& l : nest.reduction) {
    st.reduction.push_back(LoopChain{{l}});
  }
  st.main = nest.main;
  st.init = nest.init;
  st.epilogues = nest.epilogues;
  return st;
}

// Builds the tree for one nest and appends it to `root`.
void EmitNest(const NestState& st, bool vectorize, bool parallel, int unroll_factor,
              StmtNode* root) {
  ChainEmit spatial = EmitChains(st.spatial);
  CDMPP_CHECK(spatial.head != nullptr);

  // Reduction chain (if any) carrying the main leaf.
  std::unique_ptr<StmtNode> body_main;
  StmtNode* innermost_red = nullptr;
  if (!st.reduction.empty()) {
    ChainEmit red = EmitChains(st.reduction);
    innermost_red = red.inner;
    red.inner->children.push_back(StmtNode::MakeLeaf(st.main));
    body_main = std::move(red.head);
  } else {
    body_main = StmtNode::MakeLeaf(st.main);
  }

  StmtNode* innermost_spatial = spatial.inner;
  if (st.init.has_value()) {
    innermost_spatial->children.push_back(StmtNode::MakeLeaf(*st.init));
  }
  innermost_spatial->children.push_back(std::move(body_main));
  for (const ComputeStmt& e : st.epilogues) {
    innermost_spatial->children.push_back(StmtNode::MakeLeaf(e));
  }

  if (vectorize) {
    innermost_spatial->loop.annotation = LoopAnnotation::kVectorize;
  }
  if (unroll_factor > 0) {
    StmtNode* target = innermost_red != nullptr ? innermost_red : innermost_spatial;
    if (target->loop.annotation == LoopAnnotation::kNone) {
      target->loop.annotation = LoopAnnotation::kUnroll;
    }
  }
  if (parallel && spatial.outer->loop.annotation == LoopAnnotation::kNone) {
    spatial.outer->loop.annotation = LoopAnnotation::kParallel;
  }
  root->children.push_back(std::move(spatial.head));
}

}  // namespace

TensorProgram GenerateProgram(const Task& task, const ScheduleDesc& sched) {
  std::vector<CanonicalNest> nests = LowerTask(task);
  CDMPP_CHECK(!nests.empty());

  std::vector<NestState> states;
  states.reserve(nests.size());
  for (const CanonicalNest& n : nests) {
    states.push_back(ToState(n));
  }
  NestState& first = states.front();
  const size_t num_spatial = first.spatial.size();

  bool vectorize = false;
  bool parallel = false;
  int unroll_factor = 0;
  bool hoist_epilogue = false;

  for (const SchedulePrimitive& p : sched.primitives) {
    switch (p.kind) {
      case PrimitiveKind::kSplit: {
        size_t idx = static_cast<size_t>(p.loop_index);
        LoopChain* chain = nullptr;
        if (idx < num_spatial) {
          chain = &first.spatial[idx];
        } else if (idx - num_spatial < first.reduction.size()) {
          chain = &first.reduction[idx - num_spatial];
        }
        CDMPP_CHECK_MSG(chain != nullptr, "split loop_index out of range");
        CDMPP_CHECK_MSG(SplitChain(chain, p.factor), "invalid split factor");
        break;
      }
      case PrimitiveKind::kVectorize:
        vectorize = true;
        break;
      case PrimitiveKind::kUnroll:
        unroll_factor = p.factor;
        break;
      case PrimitiveKind::kParallel:
        parallel = true;
        break;
      case PrimitiveKind::kCacheWrite:
        first.epilogues.push_back(MakeCacheWriteCopy(static_cast<double>(task.OutputElems())));
        break;
      case PrimitiveKind::kFuseEpilogue:
        hoist_epilogue = p.factor == 0;
        break;
    }
  }

  if (hoist_epilogue) {
    // Move the ReLU epilogue of the last nest into its own top-level nest.
    NestState& last = states.back();
    auto it = std::find_if(last.epilogues.begin(), last.epilogues.end(),
                           [](const ComputeStmt& s) { return s.kind == ComputeKind::kElementwise; });
    if (it != last.epilogues.end()) {
      NestState hoisted;
      hoisted.spatial.push_back(
          LoopChain{{Loop{"e", task.OutputElems(), LoopKind::kSpatial, LoopAnnotation::kNone}}});
      hoisted.main = *it;
      last.epilogues.erase(it);
      states.push_back(std::move(hoisted));
    }
  }

  TensorProgram prog;
  prog.task = task;
  prog.schedule = sched;
  Loop root_loop;
  root_loop.var = "root";
  root_loop.extent = 1;
  prog.root = StmtNode::MakeLoop(root_loop);
  for (const NestState& st : states) {
    EmitNest(st, vectorize, parallel, unroll_factor, prog.root.get());
  }
  return prog;
}

namespace {

// Tracks innermost piece extents per chain so sampled splits are guaranteed
// valid when GenerateProgram replays them.
struct ExtentTracker {
  std::vector<int64_t> inner_extent;

  explicit ExtentTracker(const CanonicalNest& nest) {
    for (const Loop& l : nest.spatial) {
      inner_extent.push_back(l.extent);
    }
    for (const Loop& l : nest.reduction) {
      inner_extent.push_back(l.extent);
    }
  }

  // Tries to add a split on loop `i`; returns the chosen factor or 0.
  int TrySplit(size_t i, Rng* rng, int max_factor) {
    std::vector<int> factors = FeasibleSplitFactors(inner_extent[i], max_factor);
    if (factors.empty()) {
      return 0;
    }
    int f = rng->Choice(factors);
    inner_extent[i] = f;  // further splits apply to the new inner piece
    return f;
  }
};

}  // namespace

ScheduleDesc SampleSchedule(const Task& task, Rng* rng) {
  std::vector<CanonicalNest> nests = LowerTask(task);
  const CanonicalNest& nest = nests.front();
  const size_t num_spatial = nest.spatial.size();
  const size_t num_loops = num_spatial + nest.reduction.size();

  ScheduleDesc sched;
  ExtentTracker tracker(nest);

  for (size_t i = 0; i < num_loops; ++i) {
    bool is_spatial = i < num_spatial;
    double split_prob = is_spatial ? 0.6 : 0.35;
    if (tracker.inner_extent[i] >= 4 && rng->Bernoulli(split_prob)) {
      int f = tracker.TrySplit(i, rng, 16);
      if (f > 0) {
        sched.primitives.push_back({PrimitiveKind::kSplit, static_cast<int>(i), f});
        // Occasionally tile one more level.
        if (is_spatial && tracker.inner_extent[i] >= 4 && rng->Bernoulli(0.3)) {
          int f2 = tracker.TrySplit(i, rng, 8);
          if (f2 > 0) {
            sched.primitives.push_back({PrimitiveKind::kSplit, static_cast<int>(i), f2});
          }
        }
      }
    }
  }

  int64_t innermost_spatial_extent = tracker.inner_extent[num_spatial - 1];
  if (innermost_spatial_extent >= 2 && innermost_spatial_extent <= 64 && rng->Bernoulli(0.5)) {
    sched.primitives.push_back({PrimitiveKind::kVectorize, -1, 0});
  }
  if (rng->Bernoulli(0.4)) {
    const std::vector<int> unroll_factors = {2, 4, 8};
    sched.primitives.push_back({PrimitiveKind::kUnroll, -1, rng->Choice(unroll_factors)});
  }
  if (rng->Bernoulli(0.7)) {
    sched.primitives.push_back({PrimitiveKind::kParallel, -1, 0});
  }
  if (rng->Bernoulli(0.3)) {
    sched.primitives.push_back({PrimitiveKind::kCacheWrite, -1, 0});
  }
  if (task.fused_relu) {
    sched.primitives.push_back({PrimitiveKind::kFuseEpilogue, -1, rng->Bernoulli(0.6) ? 1 : 0});
  }
  return sched;
}

ScheduleDesc MutateSchedule(const Task& task, const ScheduleDesc& sched, Rng* rng) {
  // Mutation strategy: drop one random primitive, then with high probability
  // resample fresh annotations. Splits are interdependent (later factors must
  // divide the piece left by earlier ones), so when a split is dropped we keep
  // only the split prefix that remains valid.
  if (sched.primitives.empty() || rng->Bernoulli(0.25)) {
    return SampleSchedule(task, rng);
  }
  ScheduleDesc out = sched;
  size_t victim = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(out.primitives.size()) - 1));
  out.primitives.erase(out.primitives.begin() + static_cast<long>(victim));

  // Re-validate splits: replay them against the canonical extents and drop any
  // that no longer divide evenly.
  std::vector<CanonicalNest> nests = LowerTask(task);
  ExtentTracker tracker(nests.front());
  ScheduleDesc valid;
  for (const SchedulePrimitive& p : out.primitives) {
    if (p.kind != PrimitiveKind::kSplit) {
      valid.primitives.push_back(p);
      continue;
    }
    size_t i = static_cast<size_t>(p.loop_index);
    if (i < tracker.inner_extent.size() && tracker.inner_extent[i] % p.factor == 0 &&
        tracker.inner_extent[i] > p.factor) {
      tracker.inner_extent[i] = p.factor;
      valid.primitives.push_back(p);
    }
  }
  // Occasionally add a fresh annotation toggle.
  if (rng->Bernoulli(0.5)) {
    switch (rng->UniformInt(0, 2)) {
      case 0:
        valid.primitives.push_back({PrimitiveKind::kVectorize, -1, 0});
        break;
      case 1:
        valid.primitives.push_back({PrimitiveKind::kParallel, -1, 0});
        break;
      default:
        valid.primitives.push_back({PrimitiveKind::kCacheWrite, -1, 0});
        break;
    }
  }
  return valid;
}

}  // namespace cdmpp

// Auto-tuner (paper §5.3 "NAS and Automatic hyper-parameter tuning"):
// random search over the architecture/hyper-parameter space of Appendix B,
// scoring each trial by short-training validation MAPE. The paper uses
// Optuna with ~1000 trials; here the trial budget is configurable and the
// search strategy is plain random sampling, which reproduces the workflow.
#ifndef SRC_CORE_AUTOTUNER_H_
#define SRC_CORE_AUTOTUNER_H_

#include "src/core/predictor.h"

namespace cdmpp {

struct AutotuneOptions {
  int num_trials = 12;
  int epochs_per_trial = 6;
  uint64_t seed = 1234;
};

struct AutotuneTrial {
  PredictorConfig config;
  double valid_mape = 1e30;
};

struct AutotuneResult {
  AutotuneTrial best;
  std::vector<AutotuneTrial> trials;
};

// Samples one configuration from the search space of Appendix B.
PredictorConfig SampleConfig(Rng* rng);

// Runs the search on the given train/valid split.
AutotuneResult Autotune(const Dataset& ds, const std::vector<int>& train,
                        const std::vector<int>& valid, const AutotuneOptions& opts);

}  // namespace cdmpp

#endif  // SRC_CORE_AUTOTUNER_H_

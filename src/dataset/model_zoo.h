// The model zoo: 120 DNN network definitions spanning CNN, transformer and
// recurrent families, standing in for the 120 ML models of the Tenset-based
// dataset (paper §7.1). Each network is a DFG of operator tasks; different
// families have very different op mixes (convs vs. batched matmuls vs.
// pointwise), which is the source of the cross-model distribution shift the
// paper studies.
#ifndef SRC_DATASET_MODEL_ZOO_H_
#define SRC_DATASET_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "src/tir/op.h"

namespace cdmpp {

// One node of a network's data-flow graph. `deps` are indices of predecessor
// ops within the same network.
struct NetworkOp {
  Task task;  // task.id is assigned during dataset construction (dedup)
  std::vector<int> deps;
};

struct NetworkDef {
  int id = -1;
  std::string name;    // e.g. "resnet50_bs1_r224"
  std::string family;  // e.g. "resnet"
  int batch_size = 1;
  std::vector<NetworkOp> ops;
};

// Builds the full 120-network zoo (deterministic, no RNG involved).
std::vector<NetworkDef> BuildModelZoo();

// Builds a single named network; aborts on unknown names. Recognized names
// follow the zoo convention, e.g. "resnet50_bs1_r224", "bert_tiny_bs1_s128",
// "mobilenet_v2_w100_bs1_r224", "inception_v3_bs1_r224", "vgg16_bs4_r224".
NetworkDef BuildNetworkByName(const std::string& name);

// The paper's cross-model hold-out set: ResNet-50, MobileNet-V2, BERT-tiny
// (§7.1), at batch size 1 and default resolution/sequence length.
std::vector<std::string> HoldoutNetworkNames();

}  // namespace cdmpp

#endif  // SRC_DATASET_MODEL_ZOO_H_

#include "src/nn/attention.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"
#include "src/support/parallel_for.h"

namespace cdmpp {

namespace {

// Copies the [seq_len, d_head] block for (sample, head) out of a packed
// [batch * seq_len, d_model] matrix into `out` (capacity-preserving resize:
// the training loops reuse one hoisted block across every (sample, head)
// instead of churning a heap temporary per iteration).
void ExtractBlockInto(const Matrix& packed, int sample, int head, int seq_len, int d_head,
                      Matrix* out) {
  out->Resize(seq_len, d_head);
  for (int t = 0; t < seq_len; ++t) {
    const float* src = packed.Row(sample * seq_len + t) + head * d_head;
    float* dst = out->Row(t);
    for (int j = 0; j < d_head; ++j) {
      dst[j] = src[j];
    }
  }
}

// Adds a [seq_len, d_head] block back into the packed layout.
void AccumulateBlock(Matrix* packed, const Matrix& block, int sample, int head, int seq_len,
                     int d_head) {
  for (int t = 0; t < seq_len; ++t) {
    float* dst = packed->Row(sample * seq_len + t) + head * d_head;
    const float* src = block.Row(t);
    for (int j = 0; j < d_head; ++j) {
      dst[j] += src[j];
    }
  }
}

// The per-(sample, head) fp32 score/context loop shared verbatim by the fp32
// and int8 attention forwards (only the Q/K/V/output *projections* differ
// between the two tiers; the activation×activation GEMMs are identical).
// q_all must already carry the folded 1/sqrt(d_head) softmax scale. Every
// (sample, head) writes its own disjoint [seq_len, d_head] block of the
// returned context, so no zero-fill or reduction is needed — and the blocks
// split across cores. Each forked chunk leases a scores scratch arena from
// the global WorkspacePool (the caller's `ws` stays single-owner);
// per-element accumulation order inside each block is fixed by the kernels
// regardless of partition, so the output is bitwise identical for every
// thread count. Inner GEMMs of forked chunks run inline (nested ParallelFor
// is serial), which the kernels' partition-independence keeps bitwise too.
Matrix* AttentionContext(const Matrix& q_all, const Matrix& k_all, const Matrix& v_all,
                         int batch, int seq_len, int num_heads, int d_head, int d_model,
                         Workspace* ws) {
  Matrix* context = ws->NewMatrix(batch * seq_len, d_model);
  const int64_t blocks = static_cast<int64_t>(batch) * num_heads;
  // One chunk of the block loop: scores is that chunk's private scratch; all
  // other reads/writes are disjoint per block, so the arithmetic is the same
  // whichever scratch backs it.
  auto process = [&](Matrix* scores, int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int b = static_cast<int>(i / num_heads);
      const int h = static_cast<int>(i % num_heads);
      const float* q = q_all.Row(b * seq_len) + h * d_head;
      const float* k = k_all.Row(b * seq_len) + h * d_head;
      const float* v = v_all.Row(b * seq_len) + h * d_head;
      float* ctx = context->Row(b * seq_len) + h * d_head;
      // scores = (Q/sqrt(d))·Kᵀ directly on the packed layout
      // (lda/ldb = d_model).
      kernels::GemmNT(seq_len, seq_len, d_head, q, d_model, k, d_model,
                      /*beta=*/0.0f, scores->data(), seq_len);
      SoftmaxRows(scores);
      // context block = softmax(scores)·V, written in place.
      kernels::GemmNN(seq_len, d_head, seq_len, scores->data(), seq_len, v, d_model,
                      /*beta=*/0.0f, ctx, d_model);
    }
  };
  // ~2 GEMMs of 2*L*L*d_head flops per block, against the shared fork policy.
  const double flops =
      4.0 * static_cast<double>(blocks) * seq_len * static_cast<double>(seq_len) * d_head;
  ThreadPool& pool = ThreadPool::Global();
  if (WorthForking(pool, blocks, flops)) {
    // Forked: each chunk leases its scores scratch from the global pool (the
    // caller's `ws` stays single-owner).
    pool.ParallelForWithScratch(WorkspacePool::Global(), 0, blocks, ParallelGrain(blocks),
                                [&](Workspace* scratch, int64_t i0, int64_t i1) {
                                  process(scratch->NewMatrix(seq_len, seq_len), i0, i1);
                                });
  } else {
    // Serial: scores from the caller's arena, zero synchronization — the
    // QPS-bound many-worker configuration (CDMPP_NUM_THREADS=1) never
    // touches the pool mutex.
    process(ws->NewMatrix(seq_len, seq_len), 0, blocks);
  }
  return context;
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(int d_model, int num_heads, Rng* rng)
    : d_model_(d_model), num_heads_(num_heads), d_head_(d_model / num_heads) {
  CDMPP_CHECK(d_model % num_heads == 0);
  wq_ = std::make_unique<Linear>(d_model, d_model, rng);
  wk_ = std::make_unique<Linear>(d_model, d_model, rng);
  wv_ = std::make_unique<Linear>(d_model, d_model, rng);
  wo_ = std::make_unique<Linear>(d_model, d_model, rng);
}

Matrix MultiHeadSelfAttention::Forward(const Matrix& x, int seq_len) {
  CDMPP_CHECK(seq_len > 0);
  CDMPP_CHECK(x.rows() % seq_len == 0);
  CDMPP_CHECK(x.cols() == d_model_);
  cached_seq_len_ = seq_len;
  cached_batch_ = x.rows() / seq_len;

  cached_q_ = wq_->Forward(x);
  cached_k_ = wk_->Forward(x);
  cached_v_ = wv_->Forward(x);

  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  Matrix context(x.rows(), d_model_);
  // resize (not assign) keeps the per-(sample, head) attention matrices'
  // capacity across steps; softmax weights are computed straight into them.
  cached_attn_.resize(static_cast<size_t>(cached_batch_) * num_heads_);
  Matrix q, k, v, out;  // hoisted block scratch, reused across the loop
  for (int b = 0; b < cached_batch_; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      ExtractBlockInto(cached_q_, b, h, seq_len, d_head_, &q);
      // The 1/sqrt(d_head) softmax scale is folded into the Q operand — one
      // pass over a [L, d_head] block instead of a [L, L] scores pass. The
      // inference path pins the identical formulation, so Forward and
      // ForwardInference stay bitwise equal. cached_q_ stays unscaled;
      // Backward's dscores.Scale(scale) already accounts for the factor on
      // both the dq and dk sides.
      q.Scale(scale);
      ExtractBlockInto(cached_k_, b, h, seq_len, d_head_, &k);
      ExtractBlockInto(cached_v_, b, h, seq_len, d_head_, &v);
      Matrix& attn = cached_attn_[static_cast<size_t>(b) * num_heads_ + h];
      attn.Resize(seq_len, seq_len);
      kernels::GemmNT(seq_len, seq_len, d_head_, q.data(), d_head_, k.data(), d_head_,
                      /*beta=*/0.0f, attn.data(), seq_len);
      SoftmaxRows(&attn);
      out.Resize(seq_len, d_head_);
      kernels::GemmNN(seq_len, d_head_, seq_len, attn.data(), seq_len, v.data(), d_head_,
                      /*beta=*/0.0f, out.data(), d_head_);
      AccumulateBlock(&context, out, b, h, seq_len, d_head_);
    }
  }
  return wo_->Forward(context);
}

Matrix MultiHeadSelfAttention::ForwardInference(const Matrix& x, int seq_len) const {
  // True wrapper over the arena path: one attention-inference implementation
  // to keep bitwise-consistent (see src/nn/layers.h).
  Workspace ws;
  return *ForwardInference(x, seq_len, &ws);
}

Matrix* MultiHeadSelfAttention::ForwardInference(const Matrix& x, int seq_len,
                                                 Workspace* ws) const {
  // Whole-call wall time on the calling thread, forked chunks included — the
  // span never reaches into the parallel region, so chunk scheduling and the
  // bitwise thread-count invariance are unaffected. No-op unless the serving
  // layer bound a sampled trace to this thread.
  obs::ScopedSpan span(obs::Stage::kAttention);
  CDMPP_CHECK(seq_len > 0);
  CDMPP_CHECK(x.rows() % seq_len == 0);
  CDMPP_CHECK(x.cols() == d_model_);
  const int batch = x.rows() / seq_len;

  Matrix* q_all = wq_->ForwardInference(x, ws);
  Matrix* k_all = wk_->ForwardInference(x, ws);
  Matrix* v_all = wv_->ForwardInference(x, ws);

  // Softmax scale folded into the Q operand (see Forward).
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  q_all->Scale(scale);

  Matrix* context =
      AttentionContext(*q_all, *k_all, *v_all, batch, seq_len, num_heads_, d_head_, d_model_, ws);
  return wo_->ForwardInference(*context, ws);
}

QuantizedMultiHeadSelfAttention::QuantizedMultiHeadSelfAttention(
    const MultiHeadSelfAttention& attn, const std::vector<float>& act_absmax)
    : d_model_(attn.d_model()),
      num_heads_(attn.num_heads()),
      d_head_(attn.d_model() / attn.num_heads()),
      wo_(attn.wo()) {
  if (act_absmax.empty()) {
    // No static channel profile for the input (the encoder's first layer,
    // fed by the fp32 input projection): keep Q/K/V fp32. Measured: plain
    // per-row quantization here is what pushed full-encoder agreement past
    // the 1% contract — the noise enters before every downstream stage and
    // the softmax's exponentials are sensitive to it.
    fp32_qkv_.reserve(3);
    fp32_qkv_.push_back(attn.wq());
    fp32_qkv_.push_back(attn.wk());
    fp32_qkv_.push_back(attn.wv());
  } else {
    // ONE column-scale vector balanced against all three projection weights:
    // sharing the scales (and therefore the quantized input codes) lets the
    // forward quantize x once and run three GEMMs over the same codes —
    // measured, the per-row quantize pass is the dominant non-GEMM cost of
    // the int8 encoder, so collapsing 3 passes to 1 here is a straight
    // serving win over marginally finer per-projection balance.
    const std::vector<float> shared_scales = BalancedColumnScales(
        act_absmax, {&attn.wq().weight(), &attn.wk().weight(), &attn.wv().weight()});
    qkv_.reserve(3);
    qkv_.emplace_back(attn.wq(), shared_scales);
    qkv_.emplace_back(attn.wk(), shared_scales);
    qkv_.emplace_back(attn.wv(), shared_scales);
  }
}

Matrix* QuantizedMultiHeadSelfAttention::ForwardInference(const Matrix& x, int seq_len,
                                                          Workspace* ws) const {
  // Same span discipline as the fp32 path: whole-call wall time on the
  // calling thread, never reaching into the parallel region.
  obs::ScopedSpan span(obs::Stage::kAttention);
  CDMPP_CHECK(seq_len > 0);
  CDMPP_CHECK(x.rows() % seq_len == 0);
  CDMPP_CHECK(x.cols() == d_model_);
  const int batch = x.rows() / seq_len;

  // The three input projections share ONE quantization of x (the constructor
  // gave them identical folded column scales), done before any fork with
  // row-deterministic per-row scales — both bitwise invariance contracts
  // hold, and the quantize pass runs once instead of three times. Without a
  // channel profile the fp32 copies run instead (see the constructor).
  Matrix* q_all;
  Matrix* k_all;
  Matrix* v_all;
  if (!qkv_.empty()) {
    const int m = x.rows();
    const int ldq = 2 * qkv_[0].k2();
    int16_t* qx = ws->NewI16(static_cast<size_t>(m) * ldq);
    Matrix* row_scales = ws->NewMatrix(m, 1);
    {
      obs::ScopedSpan qspan(obs::Stage::kQuantize);
      QuantizeActivationsPerRowScaled(m, d_model_, x.data(), x.cols(),
                                      qkv_[0].inv_col_scales().data(), qx, ldq,
                                      row_scales->data());
    }
    q_all = qkv_[0].ForwardPreQuantized(m, qx, ldq, row_scales->data(), ws);
    k_all = qkv_[1].ForwardPreQuantized(m, qx, ldq, row_scales->data(), ws);
    v_all = qkv_[2].ForwardPreQuantized(m, qx, ldq, row_scales->data(), ws);
  } else {
    q_all = fp32_qkv_[0].ForwardInference(x, ws);
    k_all = fp32_qkv_[1].ForwardInference(x, ws);
    v_all = fp32_qkv_[2].ForwardInference(x, ws);
  }

  // Softmax scale folded into the (dequantized fp32) Q operand, identical
  // formulation to the fp32 path.
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  q_all->Scale(scale);

  Matrix* context =
      AttentionContext(*q_all, *k_all, *v_all, batch, seq_len, num_heads_, d_head_, d_model_, ws);
  return wo_.ForwardInference(*context, ws);
}

Matrix MultiHeadSelfAttention::Backward(const Matrix& dy) {
  const int seq_len = cached_seq_len_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));

  Matrix dcontext = wo_->Backward(dy);
  Matrix dq(dy.rows(), d_model_);
  Matrix dk(dy.rows(), d_model_);
  Matrix dv(dy.rows(), d_model_);

  // Hoisted block scratch, reused across every (sample, head).
  Matrix q, k, v, dout;
  Matrix dattn, dv_block, dscores, dq_block, dk_block;
  for (int b = 0; b < cached_batch_; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      const Matrix& attn = cached_attn_[static_cast<size_t>(b) * num_heads_ + h];
      ExtractBlockInto(cached_q_, b, h, seq_len, d_head_, &q);
      ExtractBlockInto(cached_k_, b, h, seq_len, d_head_, &k);
      ExtractBlockInto(cached_v_, b, h, seq_len, d_head_, &v);
      ExtractBlockInto(dcontext, b, h, seq_len, d_head_, &dout);

      // out = attn x v.
      dattn.Resize(seq_len, seq_len);
      kernels::GemmNT(seq_len, seq_len, d_head_, dout.data(), d_head_, v.data(), d_head_,
                      /*beta=*/0.0f, dattn.data(), seq_len);
      dv_block.Resize(seq_len, d_head_);
      kernels::GemmTN(seq_len, d_head_, seq_len, attn.data(), seq_len, dout.data(), d_head_,
                      /*beta=*/0.0f, dv_block.data(), d_head_);

      // Softmax backward: ds = attn * (dattn - rowsum(dattn * attn)).
      dscores.Resize(seq_len, seq_len);
      for (int i = 0; i < seq_len; ++i) {
        float dot = 0.0f;
        for (int j = 0; j < seq_len; ++j) {
          dot += dattn.At(i, j) * attn.At(i, j);
        }
        for (int j = 0; j < seq_len; ++j) {
          dscores.At(i, j) = attn.At(i, j) * (dattn.At(i, j) - dot);
        }
      }
      dscores.Scale(scale);

      // scores = (q * scale) x k^T; cached_q_ is unscaled, the Scale above
      // carries the factor to both dq and dk.
      dq_block.Resize(seq_len, d_head_);
      kernels::GemmNN(seq_len, d_head_, seq_len, dscores.data(), seq_len, k.data(), d_head_,
                      /*beta=*/0.0f, dq_block.data(), d_head_);
      dk_block.Resize(seq_len, d_head_);
      kernels::GemmTN(seq_len, d_head_, seq_len, dscores.data(), seq_len, q.data(), d_head_,
                      /*beta=*/0.0f, dk_block.data(), d_head_);

      AccumulateBlock(&dq, dq_block, b, h, seq_len, d_head_);
      AccumulateBlock(&dk, dk_block, b, h, seq_len, d_head_);
      AccumulateBlock(&dv, dv_block, b, h, seq_len, d_head_);
    }
  }

  Matrix dx = wq_->Backward(dq);
  dx.AddInPlace(wk_->Backward(dk));
  dx.AddInPlace(wv_->Backward(dv));
  return dx;
}

void MultiHeadSelfAttention::CollectParams(std::vector<Param*>* out) {
  wq_->CollectParams(out);
  wk_->CollectParams(out);
  wv_->CollectParams(out);
  wo_->CollectParams(out);
}

}  // namespace cdmpp

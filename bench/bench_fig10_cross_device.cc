// Reproduces paper Fig. 10: cross-device prediction error at the TIR level
// under the three source->target combinations of §7.3:
//   1) GPUs -> a GPU          (T4 target; sources = other GPUs)
//   2) GPUs + CPUs -> a CPU   (EPYC target)
//   3) GPUs -> the accelerator (HL-100 target)
// CDMPP = pre-train on sources + KMeans-sampled fine-tuning on the target,
// vs TLP (relative-time model) and Habitat (roofline scaling; GPUs only).
#include <cstdio>

#include "src/baselines/habitat.h"
#include "src/baselines/tlp.h"
#include "src/core/sampler.h"
#include "src/exp/exp_common.h"

namespace cdmpp {
namespace {

struct Scenario {
  std::string label;
  std::vector<int> sources;
  int target;
  bool habitat_supported;
};

int Run() {
  PrintBenchHeader("bench_fig10_cross_device", "Fig. 10",
                   "cross-device MAPE: CDMPP vs TLP vs Habitat");
  Dataset ds = BuildBenchDataset();

  const std::vector<Scenario> scenarios = {
      {"GPUs -> T4 (GPU)", {1, 2, 3, 4}, 0, true},
      {"GPUs+CPUs -> EPYC (CPU)", {0, 1, 2, 3, 4, 6, 8}, 7, false},
      {"GPUs -> HL-100 (accel)", {0, 1, 2, 3, 4}, 5, false},
  };

  TablePrinter table({"scenario", "CDMPP", "TLP", "Habitat"});
  for (const Scenario& sc : scenarios) {
    Rng rng(6000 + static_cast<uint64_t>(sc.target));
    SplitIndices src = SplitDataset(ds, sc.sources, {}, &rng);
    SplitIndices tgt = SplitDataset(ds, {sc.target}, {}, &rng);

    // CDMPP: pre-train on sources, fine-tune with 20 KMeans-sampled tasks
    // profiled on the target (paper: 50 of ~2000 tasks; we have ~340).
    PredictorConfig cfg = BenchPredictorConfig(30);
    CdmppPredictor cdmpp(cfg);
    cdmpp.Pretrain(ds, Take(src.train, 4000), src.valid);
    std::vector<int> tasks = SelectTasksKMeans(ds, 20, &rng);
    std::vector<int> target_labeled = SamplesForTasksOnDevice(ds, tasks, sc.target);
    std::vector<int> labeled = Take(src.train, 2000);
    labeled.insert(labeled.end(), target_labeled.begin(), target_labeled.end());
    cdmpp.Finetune(ds, labeled, Take(src.train, 400), Take(SamplesOnDevice(ds, sc.target), 400),
                   4);
    EvalStats cdmpp_eval = cdmpp.Evaluate(ds, tgt.test);

    // TLP: trained on sources (device features included), absolute time via
    // the source task means.
    TlpConfig tlp_cfg;
    tlp_cfg.epochs = 15;
    TlpModel tlp(tlp_cfg);
    tlp.Fit(ds, Take(src.train, 4000));
    EvalStats tlp_eval = EvalPredictions(ds, tgt.test, tlp.Predict(ds, tgt.test));

    std::string habitat_cell = "n/a (GPUs only)";
    if (sc.habitat_supported) {
      HabitatModel habitat{HabitatConfig{}};
      habitat.Fit(ds, src.train, /*source_device=*/sc.sources.front());
      EvalStats h_eval = EvalPredictions(ds, tgt.test, habitat.Predict(ds, tgt.test));
      habitat_cell = FormatPercent(h_eval.mape, 2);
    }
    table.AddRow({sc.label, FormatPercent(cdmpp_eval.mape, 2), FormatPercent(tlp_eval.mape, 2),
                  habitat_cell});
    std::printf("[%s done]\n", sc.label.c_str());
    std::fflush(stdout);
  }
  table.Print(stdout);
  std::printf("\nPaper's claims: CDMPP lowest everywhere (10.85%% avg); TLP large on"
              " absolute time; Habitat GPU-only and schedule-blind.\n");
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

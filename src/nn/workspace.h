// Workspace: a bump arena of reusable Matrix buffers for the inference hot
// path, plus WorkspacePool: a thread-safe lending library of such arenas.
//
// Every ForwardInference(..., Workspace*) overload takes its output and all
// intermediate tensors from the workspace instead of the heap. Usage:
//
//   Workspace ws;                       // one per thread (not thread-safe)
//   ws.Reset();                         // rewind before each forward pass
//   Matrix* y = layer.ForwardInference(x, &ws);  // valid until next Reset()
//
// Reset() rewinds the slot cursor without freeing, so after the first pass
// per shape ("warm"), NewMatrix is a pointer bump plus a capacity-preserving
// resize: steady-state forward passes perform zero heap allocations (see
// tests/dataplane_test.cc, which asserts this with a counting allocator).
// Matrices keep stable addresses across Reset() because slots are pooled
// behind unique_ptr.
//
// A single-owner Workspace stays the fast path. The pool exists for the two
// places ownership is not one-thread-one-arena: serving workers lease their
// batch arena for the worker's lifetime, and the batch-row-parallel layers
// (attention's per-(sample, head) chunks) lease short-lived scratch arenas
// per ParallelFor chunk. Checkout never blocks — the pool grows on demand —
// so nested leases (a worker holding its arena while attention chunks lease
// scratch inside the same forward) cannot deadlock by construction.
#ifndef SRC_NN_WORKSPACE_H_
#define SRC_NN_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/nn/matrix.h"

namespace cdmpp {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Returns a [rows, cols] matrix owned by the workspace, valid until the
  // next Reset(). Contents are unspecified (callers that accumulate must
  // Zero() first); kernels with beta=0 overwrite every element anyway.
  Matrix* NewMatrix(int rows, int cols);

  // Returns an int16 scratch buffer of `n` elements, valid until the next
  // Reset(). The int8-quantized inference path stages its per-row quantized
  // activations here (int8-range values in 16-bit lanes — see
  // src/nn/quantize.h); pooled separately from the Matrix slots but with the
  // same warm-path guarantee: steady-state passes allocate nothing.
  int16_t* NewI16(size_t n);

  // Rewinds the arena. Pooled buffers (and their float capacity) survive, so
  // the next pass with the same shapes allocates nothing.
  void Reset() {
    cursor_ = 0;
    i16_cursor_ = 0;
  }

  // Introspection (tests, stats).
  size_t num_slots() const { return slots_.size(); }
  size_t live_slots() const { return cursor_; }
  size_t pooled_floats() const;
  size_t pooled_i16() const;

 private:
  std::vector<std::unique_ptr<Matrix>> slots_;
  size_t cursor_ = 0;
  std::vector<std::unique_ptr<std::vector<int16_t>>> i16_slots_;
  size_t i16_cursor_ = 0;
};

// Thread-safe checkout/return pool of Workspace arenas.
//
// Ownership rules (also in README "Threading model"):
//   * Checkout() hands out an exclusive, already-Reset() arena. It never
//     blocks: an empty free list grows the pool instead, which is what makes
//     nested leases deadlock-free. Returned arenas keep their pooled buffer
//     capacity, so a pool that has served a shape before hands out warm
//     arenas and steady-state checkouts allocate nothing.
//   * Return() must receive exactly the pointers Checkout() handed out, once
//     each. Prefer the RAII Lease (exception-safe) over manual pairing.
//   * The free list is LIFO: the most recently returned — cache-hot, already
//     grown — arena is the next one lent.
//   * An arena may be USED by a thread other than the one that checked it
//     out: ParallelForWithScratch checks out every lease on the calling
//     thread before the region forks, and a stealing pool worker then runs
//     the chunk that bumps that arena. This is safe because each chunk has
//     the arena exclusively, the region publish/join path (a mutex in
//     parallel_for.cc) orders the checkout before any stolen chunk runs, and
//     the executors-drained barrier orders every chunk's arena writes before
//     the caller returns the leases.
class WorkspacePool {
 public:
  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  // Exclusive use until Return(); never blocks (grows the pool on demand).
  // The arena comes back Reset() but warm.
  Workspace* Checkout();
  void Return(Workspace* ws);

  // Move-only RAII lease; returns the arena on destruction (including
  // unwinding through an exception).
  class Lease {
   public:
    Lease() = default;
    explicit Lease(WorkspacePool* pool) : pool_(pool), ws_(pool->Checkout()) {}
    ~Lease() { reset(); }
    Lease(Lease&& other) noexcept : pool_(other.pool_), ws_(other.ws_) {
      other.pool_ = nullptr;
      other.ws_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        reset();
        pool_ = other.pool_;
        ws_ = other.ws_;
        other.pool_ = nullptr;
        other.ws_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Workspace* get() const { return ws_; }
    Workspace* operator->() const { return ws_; }
    explicit operator bool() const { return ws_ != nullptr; }
    void reset() {
      if (ws_ != nullptr) {
        pool_->Return(ws_);
        ws_ = nullptr;
        pool_ = nullptr;
      }
    }

   private:
    WorkspacePool* pool_ = nullptr;
    Workspace* ws_ = nullptr;
  };
  Lease Acquire() { return Lease(this); }

  // Process-wide pool the inference data plane leases from: serving workers,
  // the convenience PredictBatched overloads, and the batch-row-parallel
  // layer chunks all share it, so warm arenas migrate to wherever the load
  // is instead of accumulating per thread.
  static WorkspacePool& Global();

  // Introspection (tests, stats). num_arenas() - num_free() arenas are
  // currently checked out.
  size_t num_arenas() const;
  size_t num_free() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Workspace>> arenas_;  // ownership, append-only
  std::vector<Workspace*> free_;                    // LIFO free list
};

}  // namespace cdmpp

#endif  // SRC_NN_WORKSPACE_H_

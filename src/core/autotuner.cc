#include "src/core/autotuner.h"

#include <cmath>
#include <memory>

#include "src/search/cost_model_client.h"
#include "src/serve/prediction_service.h"
#include "src/support/check.h"

namespace cdmpp {

PredictorConfig SampleConfig(Rng* rng) {
  PredictorConfig cfg;
  const std::vector<int> d_models = {32, 48, 64, 96};
  const std::vector<int> layers = {1, 2, 3};
  const std::vector<int> heads = {2, 4};
  const std::vector<int> z_dims = {32, 64, 96};
  const std::vector<int> dec_hidden = {32, 64, 96};
  const std::vector<int> batch_sizes = {32, 64, 128};

  cfg.d_model = rng->Choice(d_models);
  cfg.num_heads = rng->Choice(heads);
  cfg.d_ff = cfg.d_model * 2;
  cfg.num_layers = rng->Choice(layers);
  cfg.z_dim = rng->Choice(z_dims);
  int dh = rng->Choice(dec_hidden);
  cfg.decoder_hidden = rng->Bernoulli(0.5) ? std::vector<int>{dh} : std::vector<int>{dh, dh};
  cfg.batch_size = rng->Choice(batch_sizes);

  cfg.optimizer = rng->Bernoulli(0.8) ? OptimizerKind::kAdam : OptimizerKind::kSgd;
  cfg.lr = std::pow(10.0, rng->Uniform(-3.8, -2.3));
  cfg.max_lr = cfg.lr * rng->Uniform(1.5, 4.0);
  cfg.use_cyclic_lr = rng->Bernoulli(0.7);
  cfg.weight_decay = std::pow(10.0, rng->Uniform(-5.0, -2.5));
  cfg.lambda_mape = rng->Uniform(0.05, 0.5);
  cfg.alpha_cmd = rng->Uniform(0.1, 1.0);
  cfg.seed = rng->engine()();
  return cfg;
}

namespace {

// Validation MAPE of one trial's trained predictor, computed through the
// client seam: all validation (AST, device) pairs go out as one population.
// Returns the mean of |pred - truth| / truth over samples with truth > 0.
double ScoreTrial(const Dataset& ds, const std::vector<int>& valid,
                  CostModelClient* client) {
  std::vector<CostQuery> queries;
  queries.reserve(valid.size());
  for (int s : valid) {
    const Sample& sample = ds.samples[static_cast<size_t>(s)];
    queries.push_back(
        CostQuery{&ds.programs[static_cast<size_t>(sample.program_index)].ast,
                  sample.device_id});
  }
  std::vector<double> predictions;
  client->ScoreBatch(queries, &predictions);

  double sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < valid.size(); ++i) {
    const double truth = ds.samples[static_cast<size_t>(valid[i])].latency_seconds;
    if (truth > 0.0) {
      sum += std::abs(predictions[i] - truth) / truth;
      ++counted;
    }
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace

AutotuneResult Autotune(const Dataset& ds, const std::vector<int>& train,
                        const std::vector<int>& valid, const AutotuneOptions& opts) {
  Rng rng(opts.seed);
  AutotuneResult result;
  uint64_t cache_hits = 0;
  uint64_t serve_requests = 0;
  for (int t = 0; t < opts.num_trials; ++t) {
    AutotuneTrial trial;
    trial.config = SampleConfig(&rng);
    trial.config.epochs = opts.epochs_per_trial;
    CdmppPredictor predictor(trial.config);
    TrainStats stats = predictor.Pretrain(ds, train, valid);
    if (valid.empty()) {
      // Nothing to score through the client; keep the training loop's number.
      trial.valid_mape = stats.final_valid.mape;
    } else if (opts.scoring == TrialScoring::kServe) {
      ServeOptions serve_opts;
      serve_opts.num_workers = opts.serve_workers;
      // The client bulk-enqueues the whole validation set per trial; a batch
      // window would only add sleep (see ServeCostModel).
      serve_opts.batch_window_ms = 0.0;
      PredictionService service(&predictor, serve_opts);
      ServeCostModel client(&service);
      trial.valid_mape = ScoreTrial(ds, valid, &client);
      result.scored_candidates += client.stats().queries;
      result.scoring_seconds += client.stats().score_seconds;
      const ServerStatsSnapshot snap = service.Stats();
      cache_hits += snap.cache_hits;
      serve_requests += snap.requests;
    } else {
      DirectCostModel client(&predictor);
      trial.valid_mape = ScoreTrial(ds, valid, &client);
      result.scored_candidates += client.stats().queries;
      result.scoring_seconds += client.stats().score_seconds;
    }
    if (trial.valid_mape < result.best.valid_mape) {
      result.best = trial;
    }
    result.trials.push_back(std::move(trial));
  }
  if (serve_requests > 0) {
    result.scoring_cache_hit_rate =
        static_cast<double>(cache_hits) / static_cast<double>(serve_requests);
  }
  return result;
}

}  // namespace cdmpp

// Reproduces paper Fig. 6: TIR-level prediction error of the pre-trained cost
// models on every device — (a) GPUs, (b) inference accelerator + CPUs — for
// CDMPP vs XGBoost vs Tiramisu, plus the §7.2 training-throughput comparison
// (CDMPP ~1 order of magnitude above Tiramisu; XGBoost far above both).
#include <cstdio>

#include "src/baselines/tiramisu.h"
#include "src/baselines/xgb_model.h"
#include "src/exp/exp_common.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig06_cross_model_pretrain", "Fig. 6 + §7.2 throughput",
                   "per-device pre-training MAPE: CDMPP vs XGBoost vs Tiramisu");
  Dataset ds = BuildBenchDataset();

  TablePrinter gpu_table({"device", "CDMPP", "XGBoost", "Tiramisu"});
  TablePrinter other_table({"device", "CDMPP", "XGBoost", "Tiramisu"});
  std::vector<double> thr_cdmpp, thr_xgb, thr_tiramisu;

  for (const DeviceSpec& spec : DeviceRegistry()) {
    Rng rng(1000 + static_cast<uint64_t>(spec.id));
    SplitIndices split = SplitDataset(ds, {spec.id}, {}, &rng);

    CdmppPredictor cdmpp(BenchPredictorConfig(/*epochs=*/110));
    TrainStats cdmpp_stats = cdmpp.Pretrain(ds, split.train, split.valid);
    EvalStats cdmpp_eval = cdmpp.Evaluate(ds, split.test);
    thr_cdmpp.push_back(cdmpp_stats.throughput_samples_per_sec);

    XgbCostModel xgb;
    Rng xrng(2000 + static_cast<uint64_t>(spec.id));
    thr_xgb.push_back(xgb.Fit(ds, split.train, &xrng));
    EvalStats xgb_eval = EvalPredictions(ds, split.test, xgb.Predict(ds, split.test));

    TiramisuConfig tcfg;
    tcfg.epochs = 4;
    tcfg.max_train_programs_per_epoch = 1000;
    TiramisuModel tiramisu(tcfg);
    thr_tiramisu.push_back(tiramisu.Fit(ds, split.train));
    std::vector<int> tiny_test = Take(split.test, 150);
    EvalStats t_eval = EvalPredictions(ds, tiny_test, tiramisu.Predict(ds, tiny_test));

    TablePrinter& table = spec.cls == DeviceClass::kGpu ? gpu_table : other_table;
    table.AddRow({spec.name, FormatPercent(cdmpp_eval.mape, 2), FormatPercent(xgb_eval.mape, 2),
                  FormatPercent(t_eval.mape, 2)});
    std::printf("[%s done]\n", spec.name.c_str());
    std::fflush(stdout);
  }

  std::printf("\n(a) GPUs — MAPE at the TIR level:\n");
  gpu_table.Print(stdout);
  std::printf("\n(b) Inference accelerator and CPUs — MAPE at the TIR level:\n");
  other_table.Print(stdout);

  std::printf("\nTraining throughput (samples/s, averaged over devices) — paper §7.2 reports"
              " XGBoost 644588 >> CDMPP 14241 >> Tiramisu 1870:\n");
  TablePrinter thr({"method", "samples/s"});
  thr.AddRow({"XGBoost", FormatDouble(Mean(thr_xgb), 0)});
  thr.AddRow({"CDMPP", FormatDouble(Mean(thr_cdmpp), 0)});
  thr.AddRow({"Tiramisu", FormatDouble(Mean(thr_tiramisu), 0)});
  thr.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

// Int8 symmetric quantization for the inference data plane.
//
// Scheme (the serving tier behind CDMPP_PRECISION=int8):
//   * Weights: int8, quantized once at calibration time, one scale per
//     OUTPUT CHANNEL (column of W): scale_j = colabsmax_j / 127, values
//     round-to-nearest into [-127, 127] and packed into the kernel layer's
//     pair-interleaved PackedQ8Weights layout (src/nn/kernels.h).
//   * Activations: quantized dynamically at every layer, one scale per ROW
//     (per sample): scale_i = rowabsmax_i / ActivationQMax(k). Per-row — not
//     per-batch — scales are deliberate: a row's quantized representation
//     depends only on that row, so the quantized path keeps the serving
//     layer's bitwise batch-size-invariance contract
//     (PredictBatchedQuantized of one request == the same request inside any
//     batch) that a whole-tensor scale would break, and each sample gets its
//     own dynamic range for free. The code range is NOT capped at 127: the
//     madd kernels stage activations in 16-bit lanes either way, so
//     activation codes use that headroom (12 bits on every predictor shape,
//     bounded so the i32 accumulator provably cannot overflow) — measurably
//     tighter accuracy at identical kernel speed and memory traffic.
//   * Accumulation: exact int32; the fused dequantize+bias+ReLU epilogue
//     rounds multiply and add separately, so quantized layer outputs are
//     bitwise identical across kernel ISAs (stronger than the fp32 tier's
//     ~1e-6 cross-ISA agreement).
//
// Accuracy contract: |q*scale - x| <= scale/2 per element (round-to-nearest,
// pinned by tests/quantize_test.cc); end-to-end the int8 predictor agrees
// with fp32 to <= 1% relative on the serving fixtures (tests/serve_test.cc).
//
// QuantizedLinear/QuantizedMlp are calibrated read-only copies of their fp32
// layers: construction is mutating-world only, ForwardInference is const and
// touches no mutable state, so any number of threads may run it concurrently
// on a shared instance (the PredictionService int8 mode relies on this).
// Re-quantize after the fp32 parameters change (training, ImportParams).
#ifndef SRC_NN_QUANTIZE_H_
#define SRC_NN_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "src/nn/kernels.h"
#include "src/nn/layers.h"
#include "src/nn/matrix.h"
#include "src/nn/workspace.h"

namespace cdmpp {

// Quantizes + packs a fp32 weight matrix W [k, n] (row-major, ld >= n)
// symmetric per output channel into the kernel layer's packed layout.
void QuantizePackWeights(int k, int n, const float* w, int ldw, kernels::PackedQ8Weights* out);

// Activation code magnitude for a reduction of length k: the full headroom
// the 16-bit madd lanes give for free, bounded so the i32 accumulation
// provably cannot overflow (k * qmax * 127 <= 2^31 - 1) and capped at 12
// bits. Every predictor shape — d_model 64, d_ff 128, and head inputs up to
// leaf_count * d_model = 4096 — gets the full 4095; code bits shrink above
// that exactly as fast as k demands. This is why activations are quantized
// finer than the int8 weights at identical kernel speed and memory traffic —
// the i16 lane is paid for either way. constexpr so the overflow-headroom
// analysis is checked at compile time (static_asserts below).
constexpr int ActivationQMax(int k) {
  const int64_t cap = (static_cast<int64_t>(1) << 31) - 1;
  const int64_t kk = k > 1 ? k : 1;  // floor of 1 keeps the formula total
  const int64_t a = cap / (127 * kk);
  return static_cast<int>(a < 1 ? 1 : (a > 4095 ? 4095 : a));
}

// Compile-time i32-overflow headroom proof across the encoder's reduction
// sizes and beyond. A reduction of length k accumulates k products bounded by
// qmax * 127; the static check is that this magnitude never exceeds the i32
// accumulator for any shape the data plane runs — and that the code range
// actually shrinks (instead of overflowing) once k is large enough to demand
// it.
namespace quantize_headroom_detail {
constexpr bool Fits(int k) {
  return static_cast<int64_t>(k) * ActivationQMax(k) * 127 <=
         (static_cast<int64_t>(1) << 31) - 1;
}
static_assert(ActivationQMax(38) == 4095, "feature dim gets full 12-bit codes");
static_assert(ActivationQMax(64) == 4095, "d_model gets full 12-bit codes");
static_assert(ActivationQMax(128) == 4095, "d_ff gets full 12-bit codes");
static_assert(ActivationQMax(4096) == 4095,
              "largest head input (leaf_count * d_model) still gets full codes");
static_assert(ActivationQMax(8192) < 4095,
              "code bits must shrink once k demands it, not overflow");
static_assert(ActivationQMax(8192) >= 2048, "shrink is gradual, not a cliff");
static_assert(Fits(1) && Fits(38) && Fits(64) && Fits(128) && Fits(4096) &&
                  Fits(4131) && Fits(4132) && Fits(8192) && Fits(1 << 20),
              "k * ActivationQMax(k) * 127 must never exceed the i32 accumulator");
// Past k = (2^31 - 1) / 127 (~16.9M) even 1-bit codes would overflow; the
// qmax floor of 1 keeps the formula total but such k is unreachable (the
// largest data-plane reduction is leaf_count * d_model, and Fits holds with
// two decimal orders of magnitude to spare at k = 2^20).
static_assert(ActivationQMax((1 << 24)) == 1,
              "far past every data-plane shape the floor engages");
}  // namespace quantize_headroom_detail

// Dynamic per-row symmetric activation quantization: for each of `rows` rows
// of x (ldx elements apart), writes 2*k2 i16 lanes (ldq >= 2*k2 apart, the
// [k, 2*k2) pad zeroed) and the row's dequantization scale into scales[i].
// Zero rows get scale 1 (all-zero quantized values). k2 = ceil(k / 2).
void QuantizeActivationsPerRow(int rows, int k, const float* x, int ldx, int16_t* q, int ldq,
                               float* scales);

// Per-channel (column) activation-scale variant: quantizes x'[i, p] =
// x[i, p] * inv_col_scales[p] under the usual dynamic per-row scale. Paired
// with weights that had the matching col_scales folded into their rows at
// calibration time (w'[p, j] = w[p, j] * c_p — the QuantizedLinear col-scale
// constructor), the integer GEMM and the per-(row, column) dequant epilogue
// are unchanged in form:
//   a_i * s_j * sum_p q(x_ip / c_p) q(w_pj c_p)  ~=  sum_p x_ip w_pj,
// so every bitwise contract of the plain path carries over verbatim: per-row
// scales keep batch-size invariance, row-disjoint writes keep thread-count
// invariance, and the pinned mul+add epilogue keeps cross-ISA identity.
// What changes is the error: dividing out static per-channel magnitudes
// homogenizes heterogeneous feature blocks (post-LayerNorm activations where
// one hot gamma channel would otherwise set the whole row's scale), so the
// remaining channels quantize measurably finer. Unit scales reproduce the
// plain path bitwise (x * 1.0f is exact).
void QuantizeActivationsPerRowScaled(int rows, int k, const float* x, int ldx,
                                     const float* inv_col_scales, int16_t* q, int ldq,
                                     float* scales);

// Data-free per-input-channel activation |absmax| estimate for a GEMM fed by
// the output of `ln`: a post-LayerNorm activation is gamma_p * z + beta_p
// with z normalized per row, so |gamma_p| + |beta_p| tracks each channel's
// magnitude without any calibration data (the serving layer quantizes at
// service construction, where none exists).
std::vector<float> LayerNormActAbsMax(const LayerNorm& ln);

// SmoothQuant-style balanced column scales for the per-channel activation
// path: c_p = sqrt(act_absmax_p / wrow_absmax_p) (alpha = 1/2) migrates half
// of each channel's dynamic-range disparity from the activations into the
// weight rows, where per-output-channel weight scales absorb it. Degenerate
// channels (dead activations or zero weight rows) are floored to 1e-3 of the
// dominant channel so no scale explodes; an all-degenerate input yields unit
// scales. `weight` is the fp32 [k, n] Linear weight the scales will be folded
// into.
std::vector<float> BalancedColumnScales(const std::vector<float>& act_absmax,
                                        const Matrix& weight);

// Multi-consumer variant: balances the activation estimate against the
// row-wise absmax over SEVERAL weight matrices sharing the same input (the
// attention Q/K/V projections). Producing ONE scale vector for all consumers
// is what lets the caller quantize their shared input once and feed the same
// codes to every GEMM (QuantizedLinear::ForwardPreQuantized) — per-projection
// scales would force one quantization pass per projection for a marginal
// balance refinement. All matrices must have act_absmax.size() rows.
std::vector<float> BalancedColumnScales(const std::vector<float>& act_absmax,
                                        const std::vector<const Matrix*>& weights);

// y = x W + b with W pre-quantized per output channel and x quantized per row
// on the fly. A calibrated, immutable snapshot of a fp32 Linear.
class QuantizedLinear {
 public:
  explicit QuantizedLinear(const Linear& linear);

  // Per-channel activation-scale (column-scale epilogue) variant: folds the
  // positive per-input-channel scales c_p into the weight rows before
  // per-output-channel quantization and divides them out of the activations
  // at run time (QuantizeActivationsPerRowScaled). col_scales.size() must be
  // in_dim(); typically BalancedColumnScales over a LayerNormActAbsMax
  // estimate. An empty vector degrades to the plain constructor.
  QuantizedLinear(const Linear& linear, const std::vector<float>& col_scales);

  // Hot path: quantizes x into `ws` scratch and runs the fused
  // int8-GEMM + dequantize + bias + activation kernel. Output and scratch
  // live in `ws` (one per thread), valid until its Reset().
  Matrix* ForwardInference(const Matrix& x, Workspace* ws,
                           kernels::Activation act = kernels::Activation::kNone) const;

  // Multi-consumer hot path: runs the fused GEMM over activations the CALLER
  // already quantized — `q` [m rows, ldq >= 2*k2() apart, pad zeroed] with
  // per-row dequant scales `row_scales` [m]. The codes must have been
  // produced with column scales matching inv_col_scales() (shared scales
  // across consumers — the attention Q/K/V path quantizes x once and feeds
  // the same codes to all three projections). ForwardInference is exactly
  // quantize + this.
  Matrix* ForwardPreQuantized(int m, const int16_t* q, int ldq, const float* row_scales,
                              Workspace* ws,
                              kernels::Activation act = kernels::Activation::kNone) const;

  int in_dim() const { return weights_.k; }
  int out_dim() const { return weights_.n; }
  int k2() const { return weights_.k2; }
  const kernels::PackedQ8Weights& weights() const { return weights_; }
  bool has_col_scales() const { return !inv_col_scales_.empty(); }
  // 1/c_p per input channel; empty on the plain path. A caller pre-quantizing
  // for ForwardPreQuantized must use exactly these.
  const std::vector<float>& inv_col_scales() const { return inv_col_scales_; }

 private:
  kernels::PackedQ8Weights weights_;
  std::vector<float> bias_;
  // 1 / c_p per input channel; empty means unit scales (the plain path).
  std::vector<float> inv_col_scales_;
};

// The int8 mirror of Mlp: every Linear quantized, hidden ReLUs fused into the
// kernel epilogue. Intermediate activations are dequantized to fp32 between
// layers and re-quantized per row at the next layer (dynamic quantization).
//
// `num_fp32_tail_layers` keeps that many trailing Linears in fp32 (copied at
// calibration time). The predictor's decoder uses 1: its final projection is
// a [*, 1] GEMM whose absolute quantization noise lands directly on the
// transformed label — where the exponential-tailed inverse Box-Cox amplifies
// it — while contributing ~nothing to serving throughput. Keeping the scalar
// head fp32 is what holds the end-to-end <= 1% agreement contract.
class QuantizedMlp {
 public:
  explicit QuantizedMlp(const Mlp& mlp, size_t num_fp32_tail_layers = 0);

  Matrix* ForwardInference(const Matrix& x, Workspace* ws) const;

  size_t num_layers() const { return layers_.size() + fp32_tail_.size(); }
  size_t num_quantized_layers() const { return layers_.size(); }
  const QuantizedLinear& layer(size_t i) const { return layers_[i]; }

 private:
  std::vector<QuantizedLinear> layers_;
  std::vector<Linear> fp32_tail_;
};

}  // namespace cdmpp

#endif  // SRC_NN_QUANTIZE_H_

// Deterministic random number generation.
//
// Every stochastic component in the library (schedule sampling, dataset
// generation, weight initialization, measurement noise) draws from an
// explicitly seeded Rng so that tests and benchmark tables are reproducible
// run-to-run. Never use std::rand or a default-seeded engine.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "src/support/check.h"

namespace cdmpp {

// A seeded Mersenne-Twister wrapper with the handful of draw shapes the
// library needs. Copyable; copies continue the same stream independently.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CDMPP_CHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Standard normal scaled to (mean, stddev).
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  // Multiplicative log-normal noise factor: exp(N(0, sigma)).
  double LogNormalFactor(double sigma) { return std::exp(Normal(0.0, sigma)); }

  // True with probability p.
  bool Bernoulli(double p) { return Uniform(0.0, 1.0) < p; }

  // Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    CDMPP_CHECK(!items.empty());
    return items[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  // Derives an independent child stream; useful to decorrelate subsystems
  // that share a top-level seed.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cdmpp

#endif  // SRC_SUPPORT_RNG_H_

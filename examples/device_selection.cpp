// Device selection — the paper's §2.2 "why cross-device?" motivation:
// a developer choosing between renting a desktop GPU, server GPUs, CPUs or an
// inference accelerator. We train one cross-device cost model, predict the
// end-to-end latency of a network on every Table-2 device via the replayer,
// and rank the devices — without "running" the model on most of them.
//
// Build & run:  ./build/examples/device_selection [network]
#include <algorithm>
#include <cstdio>

#include "src/core/predictor.h"
#include "src/replay/e2e.h"
#include "src/support/table.h"

using namespace cdmpp;

int main(int argc, char** argv) {
  std::string network = argc > 1 ? argv[1] : "resnet50_bs1_r224";

  // Train one device-model-agnostic predictor on three "profiled" devices.
  DatasetOptions opts;
  opts.device_ids = {0, 3, 7};  // T4, V100, EPYC: the devices we have access to
  opts.schedules_per_task = 4;
  opts.max_networks = 14;
  opts.seed = 21;
  Dataset ds = BuildDataset(opts);
  Rng rng(22);
  SplitIndices split = SplitDataset(ds, {}, {}, &rng);
  PredictorConfig cfg;
  cfg.epochs = 40;
  CdmppPredictor predictor(cfg);
  std::printf("Training a cross-device cost model on T4 + V100 + EPYC traces...\n");
  predictor.Pretrain(ds, split.train, split.valid);

  NetworkDef net = BuildNetworkByName(network);
  NetworkSchedules scheds = ChooseSchedules(net, 23);
  std::printf("\nPredicted end-to-end latency of %s on every device:\n", network.c_str());

  struct Row {
    std::string device;
    double predicted;
    double simulated;
  };
  std::vector<Row> rows;
  for (const DeviceSpec& spec : DeviceRegistry()) {
    double predicted = E2ePredicted(net, spec, scheds, [&](const CompactAst& ast, int dev) {
      return predictor.PredictAst(ast, dev);
    });
    double simulated = E2eGroundTruth(net, spec, scheds);
    rows.push_back({spec.name, predicted, simulated});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.predicted < b.predicted; });

  TablePrinter table({"rank", "device", "predicted (ms)", "simulated truth (ms)"});
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow({std::to_string(i + 1), rows[i].device, FormatDouble(rows[i].predicted * 1e3, 3),
                  FormatDouble(rows[i].simulated * 1e3, 3)});
  }
  table.Print(stdout);
  std::printf("\nThe ranking (not the absolute numbers) is what drives a rent-or-buy"
              " decision; only 3 of the 9 devices were ever profiled.\n");
  return 0;
}

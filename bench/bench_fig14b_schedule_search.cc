// Reproduces paper Fig. 14(b): schedule-search quality when the cost model
// prunes the candidate population — CDMPP vs XGBoost as the cost model, plus
// pure random search, tuning BERT-tiny's heaviest tasks on T4. The paper also
// reports cost-model inference time (CDMPP 8 ms vs XGBoost 0.2 ms on V100;
// search wall-clock ratio 1.5-2x), which we measure on our substrate.
#include <chrono>
#include <cstdio>

#include "src/baselines/xgb_model.h"
#include "src/exp/exp_common.h"
#include "src/replay/e2e.h"
#include "src/search/schedule_search.h"
#include "src/support/stats.h"

namespace cdmpp {
namespace {

int Run() {
  PrintBenchHeader("bench_fig14b_schedule_search", "Fig. 14(b) + §7.5 timing",
                   "cost-model-guided schedule search for BERT-tiny tasks on T4");
  Dataset ds = BuildBenchDataset({0});
  Rng rng(13000);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);

  CdmppPredictor cdmpp(BenchPredictorConfig(60));
  cdmpp.Pretrain(ds, split.train, split.valid);
  XgbCostModel xgb;
  Rng xrng(13100);
  xgb.Fit(ds, split.train, &xrng);

  // The heaviest tasks of BERT-tiny (by flops): the search targets.
  NetworkDef net = BuildNetworkByName("bert_tiny_bs1_s128");
  std::vector<const Task*> tasks;
  for (const NetworkOp& op : net.ops) {
    tasks.push_back(&op.task);
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const Task* a, const Task* b) { return a->Flops() > b->Flops(); });
  tasks.resize(3);

  SearchOptions opts;
  opts.rounds = 40;
  opts.population = 24;
  opts.measured_per_round = 4;

  const DeviceSpec& t4 = DeviceByName("T4");
  TablePrinter table({"task", "CDMPP-guided (ms)", "XGB-guided (ms)", "random (ms)"});
  std::vector<std::vector<double>> curve_rows;
  double cdmpp_query_s = 0.0;
  double xgb_query_s = 0.0;
  int queries = 0;
  for (const Task* task : tasks) {
    auto t0 = std::chrono::steady_clock::now();
    SearchCurve c_cdmpp = EvolutionarySearch(
        *task, t4, [&](const CompactAst& ast, int dev) { return cdmpp.PredictAst(ast, dev); },
        opts);
    auto t1 = std::chrono::steady_clock::now();
    SearchCurve c_xgb = EvolutionarySearch(
        *task, t4, [&](const CompactAst& ast, int dev) { return xgb.PredictAst(ast, dev); },
        opts);
    auto t2 = std::chrono::steady_clock::now();
    SearchCurve c_rand = RandomSearch(*task, t4, opts);
    cdmpp_query_s += std::chrono::duration<double>(t1 - t0).count();
    xgb_query_s += std::chrono::duration<double>(t2 - t1).count();
    queries += opts.rounds * opts.population;
    table.AddRow({task->name, FormatDouble(c_cdmpp.final_best * 1e3, 4),
                  FormatDouble(c_xgb.final_best * 1e3, 4),
                  FormatDouble(c_rand.final_best * 1e3, 4)});
    for (size_t r = 0; r < c_cdmpp.best_after_round.size(); ++r) {
      curve_rows.push_back({static_cast<double>(r), c_cdmpp.best_after_round[r] * 1e3,
                            c_xgb.best_after_round[r] * 1e3,
                            c_rand.best_after_round[r] * 1e3});
    }
  }
  table.Print(stdout);
  WriteCsv("fig14b_search_curves.csv", {"round", "cdmpp_ms", "xgb_ms", "random_ms"},
           curve_rows);
  std::printf("[per-round best-latency curves written to fig14b_search_curves.csv]\n");
  std::printf("\nCost-model query cost: CDMPP %.3f ms/query vs XGBoost %.3f ms/query;"
              " search wall-clock ratio %.2f:1 (paper: 8 ms vs 0.2 ms, 1.5-2:1 including"
              " real measurements).\n",
              cdmpp_query_s / queries * 1e3, xgb_query_s / queries * 1e3,
              cdmpp_query_s / std::max(1e-9, xgb_query_s));
  return 0;
}

}  // namespace
}  // namespace cdmpp

int main() { return cdmpp::Run(); }

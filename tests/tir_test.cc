#include <gtest/gtest.h>

#include "src/tir/lower.h"
#include "src/tir/op.h"
#include "src/tir/program.h"
#include "src/tir/schedule.h"

namespace cdmpp {
namespace {

Task MakeConv() {
  Task t;
  t.kind = OpKind::kConv2d;
  t.dims = {1, 64, 56, 56, 128, 3, 3};
  t.fused_relu = true;
  t.name = "test_conv";
  return t;
}

Task MakeDense() {
  Task t;
  t.kind = OpKind::kDense;
  t.dims = {128, 256, 512};
  t.name = "test_dense";
  return t;
}

TEST(OpTest, ConvFlopsMatchFormula) {
  Task t = MakeConv();
  // 2 * N*CI*H*W*CO*KH*KW
  double expected = 2.0 * 1 * 64 * 56 * 56 * 128 * 3 * 3;
  EXPECT_DOUBLE_EQ(t.Flops(), expected);
}

TEST(OpTest, DenseFlopsAndOutput) {
  Task t = MakeDense();
  EXPECT_DOUBLE_EQ(t.Flops(), 2.0 * 128 * 256 * 512);
  EXPECT_EQ(t.OutputElems(), 128 * 256);
}

TEST(OpTest, MemoryBytesPositiveForAllKinds) {
  for (int k = 0; k < kNumOpKinds; ++k) {
    Task t;
    t.kind = static_cast<OpKind>(k);
    switch (t.kind) {
      case OpKind::kConv2d:
        t.dims = {1, 8, 16, 16, 8, 3, 3};
        break;
      case OpKind::kDepthwiseConv2d:
      case OpKind::kPool:
        t.dims = {1, 8, 16, 16, 3, 3};
        break;
      case OpKind::kDense:
        t.dims = {8, 8, 8};
        break;
      case OpKind::kBatchMatmul:
        t.dims = {2, 8, 8, 8};
        break;
      case OpKind::kElementwise:
        t.dims = {64};
        break;
      default:
        t.dims = {8, 8};
        break;
    }
    ValidateTask(t);
    EXPECT_GT(t.MemoryBytes(), 0.0) << OpKindName(t.kind);
    EXPECT_GT(t.OutputElems(), 0) << OpKindName(t.kind);
  }
}

TEST(LowerTest, ConvNestShape) {
  auto nests = LowerTask(MakeConv());
  ASSERT_EQ(nests.size(), 1u);
  EXPECT_EQ(nests[0].spatial.size(), 4u);
  EXPECT_EQ(nests[0].reduction.size(), 3u);
  EXPECT_TRUE(nests[0].init.has_value());
  EXPECT_EQ(nests[0].main.kind, ComputeKind::kFma);
  ASSERT_EQ(nests[0].epilogues.size(), 1u);  // fused relu
}

TEST(LowerTest, SoftmaxHasThreePasses) {
  Task t;
  t.kind = OpKind::kSoftmax;
  t.dims = {64, 128};
  t.name = "sm";
  auto nests = LowerTask(t);
  EXPECT_EQ(nests.size(), 3u);
}

TEST(ProgramTest, EmptyScheduleProducesCanonicalTree) {
  Task t = MakeDense();
  TensorProgram prog = GenerateProgram(t, ScheduleDesc{});
  // i, j spatial + k reduction + init leaf + main leaf = 5 nodes.
  EXPECT_EQ(CountNodes(*prog.root), 5);
  EXPECT_EQ(CountLeaves(*prog.root), 2);
  EXPECT_EQ(MaxDepth(*prog.root), 3);  // main leaf under i -> j -> k
}

TEST(ProgramTest, FlopsPreservedUnderAnySchedule) {
  Task t = MakeDense();
  double canonical_flops = ProgramFlops(GenerateProgram(t, ScheduleDesc{}));
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    ScheduleDesc sched = SampleSchedule(t, &rng);
    TensorProgram prog = GenerateProgram(t, sched);
    // Splits and annotations never change the amount of main-statement work;
    // cache_write/epilogue add work, so compare only >= and main-term parity.
    EXPECT_GE(ProgramFlops(prog) + 1e-9, canonical_flops);
  }
}

TEST(ProgramTest, SplitPreservesIterationDomain) {
  Task t = MakeDense();
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    ScheduleDesc sched = SampleSchedule(t, &rng);
    TensorProgram prog = GenerateProgram(t, sched);
    // The main FMA leaf must execute exactly M*N*K times under any tiling.
    bool found = false;
    for (const LeafContext& leaf : CollectLeaves(*prog.root)) {
      if (leaf.compute->kind == ComputeKind::kFma) {
        EXPECT_DOUBLE_EQ(leaf.Iterations(), 128.0 * 256.0 * 512.0);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(ProgramTest, PreorderIndicesStrictlyIncrease) {
  Rng rng(11);
  Task t = MakeConv();
  for (int trial = 0; trial < 30; ++trial) {
    TensorProgram prog = GenerateProgram(t, SampleSchedule(t, &rng));
    auto leaves = CollectLeaves(*prog.root);
    for (size_t i = 1; i < leaves.size(); ++i) {
      EXPECT_GT(leaves[i].preorder_index, leaves[i - 1].preorder_index);
    }
    EXPECT_LT(leaves.back().preorder_index, CountNodes(*prog.root));
  }
}

TEST(ScheduleTest, FeasibleFactorsDivide) {
  for (int f : FeasibleSplitFactors(24, 16)) {
    EXPECT_EQ(24 % f, 0);
    EXPECT_GE(f, 2);
    EXPECT_LE(f, 16);
  }
  EXPECT_TRUE(FeasibleSplitFactors(7, 16).empty());  // prime < factors
  EXPECT_TRUE(FeasibleSplitFactors(2, 16).empty());  // factor must be < extent
}

TEST(ScheduleTest, SampledSchedulesAlwaysValid) {
  Rng rng(12);
  std::vector<Task> tasks = {MakeConv(), MakeDense()};
  Task sm;
  sm.kind = OpKind::kSoftmax;
  sm.dims = {32, 64};
  sm.name = "sm";
  tasks.push_back(sm);
  for (const Task& t : tasks) {
    for (int trial = 0; trial < 200; ++trial) {
      ScheduleDesc sched = SampleSchedule(t, &rng);
      TensorProgram prog = GenerateProgram(t, sched);  // would abort if invalid
      EXPECT_GT(CountLeaves(*prog.root), 0);
    }
  }
}

TEST(ScheduleTest, MutationsAlwaysValid) {
  Rng rng(13);
  Task t = MakeConv();
  ScheduleDesc sched = SampleSchedule(t, &rng);
  for (int trial = 0; trial < 200; ++trial) {
    sched = MutateSchedule(t, sched, &rng);
    TensorProgram prog = GenerateProgram(t, sched);
    EXPECT_GT(CountNodes(*prog.root), 0);
  }
}

TEST(ScheduleTest, CacheWriteAddsCopyLeaf) {
  Task t = MakeDense();
  ScheduleDesc plain;
  ScheduleDesc with_cw;
  with_cw.primitives.push_back({PrimitiveKind::kCacheWrite, -1, 0});
  int base = CountLeaves(*GenerateProgram(t, plain).root);
  int with_copy = CountLeaves(*GenerateProgram(t, with_cw).root);
  EXPECT_EQ(with_copy, base + 1);
}

TEST(ScheduleTest, HoistedEpilogueAddsTopLevelNest) {
  Task t = MakeConv();
  ScheduleDesc fused;
  fused.primitives.push_back({PrimitiveKind::kFuseEpilogue, -1, 1});
  ScheduleDesc hoisted;
  hoisted.primitives.push_back({PrimitiveKind::kFuseEpilogue, -1, 0});
  TensorProgram fused_prog = GenerateProgram(t, fused);
  TensorProgram hoisted_prog = GenerateProgram(t, hoisted);
  EXPECT_EQ(fused_prog.root->children.size() + 1, hoisted_prog.root->children.size());
  EXPECT_EQ(CountLeaves(*fused_prog.root), CountLeaves(*hoisted_prog.root));
}

TEST(ScheduleTest, AnnotationsAppearInTree) {
  Task t = MakeDense();
  ScheduleDesc sched;
  sched.primitives.push_back({PrimitiveKind::kParallel, -1, 0});
  sched.primitives.push_back({PrimitiveKind::kVectorize, -1, 0});
  TensorProgram prog = GenerateProgram(t, sched);
  bool saw_parallel = false;
  bool saw_vectorize = false;
  for (const LeafContext& leaf : CollectLeaves(*prog.root)) {
    for (const Loop* loop : leaf.loops) {
      saw_parallel |= loop->annotation == LoopAnnotation::kParallel;
      saw_vectorize |= loop->annotation == LoopAnnotation::kVectorize;
    }
  }
  EXPECT_TRUE(saw_parallel);
  EXPECT_TRUE(saw_vectorize);
}

TEST(ProgramTest, ToStringMentionsLoopsAndKind) {
  Task t = MakeDense();
  TensorProgram prog = GenerateProgram(t, ScheduleDesc{});
  std::string s = ProgramToString(prog);
  EXPECT_NE(s.find("dense"), std::string::npos);
  EXPECT_NE(s.find("for i"), std::string::npos);
  EXPECT_NE(s.find("[red]"), std::string::npos);
}

}  // namespace
}  // namespace cdmpp

// Leaf-count-bucketed batching (paper §5.1): compact ASTs with the same
// number of leaves are batched together, giving uniform sequence lengths with
// zero padding/sparsity — the efficiency core of CDMPP's training pipeline.
#ifndef SRC_DATASET_BATCHING_H_
#define SRC_DATASET_BATCHING_H_

#include <map>
#include <vector>

#include "src/dataset/dataset.h"
#include "src/ml/scaler.h"
#include "src/nn/matrix.h"

namespace cdmpp {

// Groups sample indices by their program's leaf count.
std::map<int, std::vector<int>> GroupByLeafCount(const Dataset& ds,
                                                 const std::vector<int>& sample_indices);

// One training batch: all samples share `seq_len` leaves.
struct Batch {
  int seq_len = 0;
  std::vector<int> sample_indices;
};

// Splits buckets into batches of at most `batch_size`, shuffled within and
// across buckets. Every index appears in exactly one batch.
std::vector<Batch> MakeBatches(const std::map<int, std::vector<int>>& buckets, int batch_size,
                               Rng* rng);

// Builds the [B * seq_len, kFeatDim] feature matrix for a batch: per-leaf
// computation vectors standardized by `scaler` (may be null), then the
// positional encoding added if `use_pe`.
Matrix BuildFeatureMatrix(const Dataset& ds, const Batch& batch, const StandardScaler* scaler,
                          bool use_pe, double theta = 10000.0);

// Builds the [B, kDeviceFeatDim] device feature matrix for a batch.
Matrix BuildDeviceFeatureMatrix(const Dataset& ds, const Batch& batch);

// Stacks the raw (unscaled, no-PE) leaf rows of the given samples; used to
// fit the feature scaler on training data.
Matrix StackLeafRows(const Dataset& ds, const std::vector<int>& sample_indices);

// ---- Batch-from-programs adapter (serving path, src/serve/) ----------------
//
// The online serving layer batches free-standing (program, device) requests
// that are not dataset samples. AstBatchView adapts a request list to the
// same leaf-count-bucketed batching machinery: GroupByLeafCount buckets
// *positions into the view*, MakeBatches chunks the buckets unchanged, and
// the two matrix builders below mirror their Dataset counterparts row for
// row, so batched serving reuses the exact feature layout of training.
struct AstBatchView {
  std::vector<const CompactAst*> asts;  // non-owning, parallel to device_ids
  std::vector<int> device_ids;

  size_t size() const { return asts.size(); }
};

// Groups view positions [0, view.size()) by each AST's leaf count.
std::map<int, std::vector<int>> GroupByLeafCount(const AstBatchView& view);

// Feature matrix for a batch whose sample_indices are positions into `view`.
Matrix BuildFeatureMatrix(const AstBatchView& view, const Batch& batch,
                          const StandardScaler* scaler, bool use_pe, double theta = 10000.0);

// Device feature matrix for a batch of view positions.
Matrix BuildDeviceFeatureMatrix(const AstBatchView& view, const Batch& batch);

// Allocation-free variants for the serving hot path: fill a caller-provided
// matrix (e.g. from a Workspace arena) already sized to the expected shape.
void BuildFeatureMatrixInto(const AstBatchView& view, const Batch& batch,
                            const StandardScaler* scaler, bool use_pe, double theta,
                            Matrix* x);
void BuildDeviceFeatureMatrixInto(const AstBatchView& view, const Batch& batch, Matrix* out);

// Reusable replacement for GroupByLeafCount + MakeBatches on the serving hot
// path: produces the identical deterministic batch sequence (buckets in
// ascending leaf count, view order preserved within a bucket, chunked to
// batch_size) but recycles its vectors, so Build() allocates nothing once the
// plan has warmed up on the largest request shape. One plan per thread.
class BatchPlan {
 public:
  void Build(const AstBatchView& view, int batch_size);

  int num_batches() const { return num_batches_; }
  const Batch& batch(int i) const { return batches_[static_cast<size_t>(i)]; }

 private:
  std::vector<int> order_;     // view positions sorted by (leaf count, position)
  std::vector<Batch> batches_; // slots persist; only [0, num_batches_) are live
  int num_batches_ = 0;
};

// Gathers raw latency labels (seconds) of the given samples.
std::vector<double> GatherLabels(const Dataset& ds, const std::vector<int>& sample_indices);

}  // namespace cdmpp

#endif  // SRC_DATASET_BATCHING_H_

// Quickstart: the five-minute tour of the CDMPP library.
//
//  1. Inspect the device registry (paper Table 2).
//  2. Build a small dataset: tasks -> random schedules -> tensor programs ->
//     compact ASTs -> simulated latencies.
//  3. Pre-train the CDMPP cost model on one device.
//  4. Query latencies of unseen tensor programs (the `cdmpp <network>
//     <batch_size> <device>` workflow of paper §6).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/predictor.h"
#include "src/device/simulator.h"
#include "src/support/table.h"
#include "src/tir/schedule.h"

using namespace cdmpp;

int main() {
  // --- 1. Device registry (Table 2). ---
  std::printf("Devices (paper Table 2):\n");
  TablePrinter devices({"device", "class", "clock (MHz)", "mem (GB)", "bw (GB/s)", "cores"});
  for (const DeviceSpec& spec : DeviceRegistry()) {
    devices.AddRow({spec.name, DeviceClassName(spec.cls), FormatDouble(spec.clock_mhz, 0),
                    FormatDouble(spec.mem_gb, 0), FormatDouble(spec.mem_bw_gbps, 1),
                    std::to_string(spec.cores)});
  }
  devices.Print(stdout);

  // --- 2. Dataset: a slice of the model zoo on T4. ---
  DatasetOptions opts;
  opts.device_ids = {0};  // T4
  opts.schedules_per_task = 4;
  opts.max_networks = 12;
  opts.seed = 1;
  Dataset ds = BuildDataset(opts);
  std::printf("\nDataset: %zu networks, %zu unique tasks, %zu programs, %zu samples\n",
              ds.networks.size(), ds.tasks.size(), ds.programs.size(), ds.samples.size());

  // Peek at one scheduled tensor program.
  const TaskInfo& info = ds.tasks[2];
  TensorProgram prog = GenerateProgram(info.task, ds.programs[static_cast<size_t>(
                                                     info.program_indices[0])].schedule);
  std::printf("\nExample scheduled tensor program:\n%s", ProgramToString(prog).c_str());

  // --- 3. Train the cost model. ---
  Rng rng(2);
  SplitIndices split = SplitDataset(ds, {0}, {}, &rng);
  PredictorConfig cfg;
  cfg.epochs = 30;  // quick demo; benches train longer
  CdmppPredictor predictor(cfg);
  std::printf("\nPre-training CDMPP (%zu samples, %d epochs)...\n", split.train.size(),
              cfg.epochs);
  TrainStats stats = predictor.Pretrain(ds, split.train, split.valid);
  EvalStats eval = predictor.Evaluate(ds, split.test);
  std::printf("Done in %.1fs (%.0f samples/s). Test MAPE %.2f%%, 20%%-accuracy %.1f%%.\n",
              stats.train_seconds, stats.throughput_samples_per_sec, eval.mape * 100.0,
              eval.acc20 * 100.0);

  // --- 4. Query latencies for fresh programs. ---
  std::printf("\nPredicted vs simulated latency for fresh schedules of '%s':\n",
              info.task.name.c_str());
  TablePrinter preds({"schedule", "predicted (ms)", "simulated (ms)"});
  Rng srng(3);
  for (int i = 0; i < 4; ++i) {
    ScheduleDesc sched = SampleSchedule(info.task, &srng);
    TensorProgram candidate = GenerateProgram(info.task, sched);
    double predicted = predictor.PredictAst(ExtractCompactAst(candidate), /*device_id=*/0);
    double simulated = SimulateLatencyDeterministic(candidate, DeviceById(0));
    preds.AddRow({"#" + std::to_string(i), FormatDouble(predicted * 1e3, 4),
                  FormatDouble(simulated * 1e3, 4)});
  }
  preds.Print(stdout);
  return 0;
}
